// VPIC checkpoint example: a scaled-down version of the paper's §V-C1
// workload. A plasma simulation checkpoints eight float32 particle
// properties per time step into an h5lite container; HCompress places each
// checkpoint across the hierarchy with write-optimized priorities.
package main

import (
	"bytes"
	"fmt"
	"log"

	"hcompress"
	"hcompress/internal/workload"
)

const (
	timesteps = 6
	particles = 1 << 16 // 64K particles -> ~2 MB per checkpoint
)

func main() {
	client, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 4 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "nvme", CapacityBytes: 8 << 20, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2},
			{Name: "burstbuffer", CapacityBytes: 64 << 20, LatencySec: 400e-6, BandwidthBps: 1e9, Lanes: 4},
			{Name: "pfs", CapacityBytes: 4 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
		},
		// VPIC-IO is write-only: prioritize compression speed and ratio
		// (Table II of the paper), decompression time is irrelevant.
		Priorities: hcompress.Priorities{CompressionSpeed: 0.5, Ratio: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cfg := workload.PaperVPIC(1, timesteps)
	var checkpoints [][]byte
	for step := 0; step < timesteps; step++ {
		// Eight float32 properties per particle, as VPIC writes them.
		buf, err := cfg.GenStepBuffer(0, step, particles)
		if err != nil {
			log.Fatal(err)
		}
		checkpoints = append(checkpoints, buf)
		key := fmt.Sprintf("checkpoint-%d", step)
		rep, err := client.Compress(hcompress.Task{
			Key:  key,
			Data: buf,
			// The h5lite container self-describes its contents; pass the
			// attributes through instead of re-detecting.
			DataType:     "float",
			Distribution: "gamma",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: %5.2f MB -> %5.2f MB (ratio %.2f), placed on",
			step, mb(rep.OriginalBytes), mb(rep.StoredBytes), rep.Ratio)
		for _, st := range rep.SubTasks {
			fmt.Printf(" %s/%s", st.Tier, st.Codec)
		}
		fmt.Println()
	}

	// Restart: read the last checkpoint back and verify.
	last := fmt.Sprintf("checkpoint-%d", timesteps-1)
	rep, err := client.Decompress(last)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(rep.Data, checkpoints[timesteps-1]) {
		log.Fatal("restart data corrupt")
	}
	fmt.Printf("restart from %s verified (%.2f MB)\n", last, mb(int64(len(rep.Data))))

	st := client.Stats()
	fmt.Printf("model accuracy %.1f%%, %d feedback events, %d/%d memo hits/misses\n",
		st.ModelAccuracy*100, st.FeedbackAbsorbed, st.MemoHits, st.MemoMisses)
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }
