// Producer/consumer workflow example: the paper's §V-C2 pattern. A VPIC
// producer writes time-step checkpoints, then a BD-CATS-style consumer
// reads them all back for clustering. With read-after-write priorities,
// HCompress balances compression, decompression, and ratio.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"hcompress"
	"hcompress/internal/h5lite"
	"hcompress/internal/workload"
)

const (
	timesteps = 4
	particles = 1 << 15
)

func main() {
	client, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 2 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "nvme", CapacityBytes: 6 << 20, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2},
			{Name: "pfs", CapacityBytes: 2 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
		},
		Priorities: hcompress.PriorityReadAfterWrite,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// --- producer: VPIC writes checkpoints ---
	cfg := workload.PaperVPIC(1, timesteps)
	for step := 0; step < timesteps; step++ {
		buf, err := cfg.GenStepBuffer(0, step, particles)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := client.Compress(hcompress.Task{
			Key: key(step), Data: buf, DataType: "float", Distribution: "gamma",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("produced step %d: ratio %.2f across %d sub-tasks\n",
			step, rep.Ratio, len(rep.SubTasks))
	}

	// --- consumer: BD-CATS reads every step and clusters energies ---
	var all []float32
	for step := 0; step < timesteps; step++ {
		rep, err := client.Decompress(key(step))
		if err != nil {
			log.Fatal(err)
		}
		f, err := h5lite.Decode(rep.Data)
		if err != nil {
			log.Fatal(err)
		}
		ds, ok := f.Lookup("energy")
		if !ok {
			log.Fatal("energy dataset missing")
		}
		for i := 0; i+4 <= len(ds.Data); i += 4 {
			all = append(all, math.Float32frombits(binary.LittleEndian.Uint32(ds.Data[i:])))
		}
	}

	// A toy 1-D clustering pass (the role BD-CATS plays): bucket particle
	// energies and report the dominant clusters.
	const buckets = 8
	var minE, maxE float32 = all[0], all[0]
	for _, v := range all {
		if v < minE {
			minE = v
		}
		if v > maxE {
			maxE = v
		}
	}
	counts := make([]int, buckets)
	width := (maxE - minE) / buckets
	for _, v := range all {
		b := int((v - minE) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	fmt.Printf("consumed %d particles over %d steps; energy histogram:\n", len(all), timesteps)
	for b, c := range counts {
		fmt.Printf("  [%8.1f, %8.1f): %6d\n", minE+float32(b)*width, minE+float32(b+1)*width, c)
	}
}

func key(step int) string { return fmt.Sprintf("vpic-step-%d", step) }
