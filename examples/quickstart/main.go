// Quickstart: compress a buffer into a tiered hierarchy, inspect what the
// HCDP engine decided, and read it back.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"hcompress"
)

func main() {
	// A small hierarchy: scarce fast RAM in front of a slow disk tier.
	// Capacity pressure is what makes hierarchical compression pay.
	client, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 4 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "ssd", CapacityBytes: 256 << 20, LatencySec: 50e-6, BandwidthBps: 500e6, Lanes: 2},
			{Name: "disk", CapacityBytes: 8 << 30, LatencySec: 5e-3, BandwidthBps: 80e6, Lanes: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	data := []byte(strings.Repeat(
		"Scientific applications read and write massive amounts of data. ", 200_000))

	rep, err := client.Compress(hcompress.Task{Key: "quickstart", Data: data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes as %d stored bytes (ratio %.2f)\n",
		rep.OriginalBytes, rep.StoredBytes, rep.Ratio)
	fmt.Printf("analyzer saw: type=%s distribution=%s\n", rep.DataType, rep.Distribution)
	for _, st := range rep.SubTasks {
		fmt.Printf("  sub-task: %s holds %d bytes compressed with %s\n",
			st.Tier, st.StoredBytes, st.Codec)
	}

	back, err := client.Decompress("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		log.Fatal("round-trip mismatch")
	}
	fmt.Printf("read back %d bytes intact (modeled read: %.2f ms)\n",
		len(back.Data), back.VirtualSeconds*1e3)

	for _, ts := range client.Status() {
		fmt.Printf("tier %-5s: %d / %d bytes used\n", ts.Name, ts.UsedBytes, ts.CapacityBytes)
	}
}
