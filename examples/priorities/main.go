// Priorities example: how Table II's weighting schemes change codec
// selection at runtime. The same data is written under each priority; the
// engine favors fast codecs for asynchronous I/O, maximum-ratio codecs for
// archival, and a balance for read-after-write workflows.
package main

import (
	"fmt"
	"log"

	"hcompress"
	"hcompress/internal/stats"
)

func main() {
	client, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 1 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "pfs", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Structured integer data: every codec achieves a different
	// speed/ratio trade-off on it, so the priorities are discriminating.
	data := stats.GenBuffer(stats.TypeInt, stats.Gamma, 8<<20, 42)

	scenarios := []struct {
		name string
		p    hcompress.Priorities
	}{
		{"async (compression speed only)", hcompress.PriorityAsync},
		{"archival (ratio only)", hcompress.PriorityArchival},
		{"read-after-write (0.3/0.3/0.4)", hcompress.PriorityReadAfterWrite},
		{"equal", hcompress.PriorityEqual},
	}
	for i, sc := range scenarios {
		// §IV-F2: weights are switchable at runtime through the API.
		client.SetPriorities(sc.p)
		key := fmt.Sprintf("task-%d", i)
		rep, err := client.Compress(hcompress.Task{Key: key, Data: data})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s ratio %.2f, codec/tier:", sc.name, rep.Ratio)
		for _, st := range rep.SubTasks {
			fmt.Printf(" %s@%s", st.Codec, st.Tier)
		}
		fmt.Printf("  (modeled %.2fms)\n", rep.VirtualSeconds*1e3)
		if err := client.Delete(key); err != nil {
			log.Fatal(err)
		}
	}
}
