package hcompress

// Tests for the request-tracing, latency-attribution, and slow-op-log
// surfaces: span-tree structure and its width invariant, trace identity
// under cancellation storms, the slow-op admission policy, and the
// stage-attribution histograms. The byte-identity contract itself is
// pinned in telemetry_client_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parseSpans decodes a JSONL trace and groups its span records by trace
// ID, preserving emission order within each group.
func parseSpans(t *testing.T, raw []byte) map[string][]TraceSpan {
	t.Helper()
	groups := make(map[string][]TraceSpan)
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Record != "span" {
			continue
		}
		var sp TraceSpan
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if sp.Trace == "" {
			t.Fatalf("span without a trace ID: %+v", sp)
		}
		groups[sp.Trace] = append(groups[sp.Trace], sp)
	}
	return groups
}

// checkSpanTree asserts one trace group is a complete, well-formed span
// tree: a single root (stage "op", span 1), IDs assigned in emission
// order, parents referencing earlier spans, zero-width markers pinned to
// the op start, and — the attribution invariant — codec, retry, and io
// leaf widths summing exactly (to fp rounding) to the root's width.
func checkSpanTree(t *testing.T, trace string, spans []TraceSpan) {
	t.Helper()
	root := spans[0]
	if root.Span != 1 || root.Parent != 0 || root.Stage != "op" {
		t.Fatalf("trace %s: first span is not the root: %+v", trace, root)
	}
	rootWidth := root.VEnd - root.VStart
	if rootWidth < 0 {
		t.Fatalf("trace %s: negative root width %v", trace, rootWidth)
	}
	var leafSum float64
	execSeen := false
	for i, sp := range spans {
		if sp.Span != i+1 {
			t.Fatalf("trace %s: span IDs not in emission order: got %d at position %d", trace, sp.Span, i)
		}
		if sp.Op != root.Op || sp.Key != root.Key {
			t.Fatalf("trace %s: span %d op/key (%s,%s) disagrees with root (%s,%s)",
				trace, sp.Span, sp.Op, sp.Key, root.Op, root.Key)
		}
		if sp.Span == 1 {
			continue
		}
		if sp.Parent < 1 || sp.Parent >= sp.Span {
			t.Fatalf("trace %s: span %d (%s) parent %d does not reference an earlier span",
				trace, sp.Span, sp.Stage, sp.Parent)
		}
		switch sp.Stage {
		case "analyze", "plan", "replan":
			if sp.VStart != root.VStart || sp.VEnd != root.VStart {
				t.Errorf("trace %s: marker %s not zero-width at op start: [%v, %v]",
					trace, sp.Stage, sp.VStart, sp.VEnd)
			}
		case "execute":
			execSeen = true
			if sp.VStart != root.VStart || sp.VEnd != root.VEnd {
				t.Errorf("trace %s: execute span [%v, %v] does not cover the root [%v, %v]",
					trace, sp.VStart, sp.VEnd, root.VStart, root.VEnd)
			}
		case "queue":
			// Queue leaves measure serial wait: they start at the op start
			// and end where the sub-task's own work begins.
			if sp.VStart != root.VStart || sp.VEnd < sp.VStart || sp.VEnd > root.VEnd {
				t.Errorf("trace %s: queue leaf sub %d out of bounds: [%v, %v] in [%v, %v]",
					trace, sp.Sub, sp.VStart, sp.VEnd, root.VStart, root.VEnd)
			}
		case "codec", "retry", "io":
			if sp.VEnd < sp.VStart {
				t.Errorf("trace %s: %s leaf sub %d has negative width [%v, %v]",
					trace, sp.Stage, sp.Sub, sp.VStart, sp.VEnd)
			}
			leafSum += sp.VEnd - sp.VStart
		default:
			t.Errorf("trace %s: unknown stage %q", trace, sp.Stage)
		}
	}
	if !execSeen {
		t.Errorf("trace %s: no execute span", trace)
	}
	if eps := 1e-9 * (1 + rootWidth); leafSum < rootWidth-eps || leafSum > rootWidth+eps {
		t.Errorf("trace %s (%s %s): codec+retry+io leaf widths sum to %v, root width is %v",
			trace, root.Op, root.Key, leafSum, rootWidth)
	}
}

// TestSpanTreeAttribution is the acceptance check for the span export:
// every operation's trace group is a complete tree whose per-stage
// virtual durations reconstruct the op's wall span on the virtual
// timeline.
func TestSpanTreeAttribution(t *testing.T) {
	var buf bytes.Buffer
	c := newClient(t, Config{Tiers: scarceTiers(), TraceWriter: &buf, modeled: true})
	telemetryWorkload(t, c)

	groups := parseSpans(t, buf.Bytes())
	// 6 writes + 4 reads; deletes do not emit spans. The single-shard
	// client synthesizes unprefixed IDs r1..r10 in submission order.
	if len(groups) != 10 {
		t.Fatalf("%d trace groups, want 10", len(groups))
	}
	ops := map[string]int{}
	for trace, spans := range groups {
		checkSpanTree(t, trace, spans)
		if !strings.HasPrefix(trace, "r") {
			t.Errorf("unexpected synthesized trace ID %q", trace)
		}
		root := spans[0]
		ops[root.Op]++
		if root.Class != "interactive" {
			t.Errorf("trace %s: class %q, want interactive", trace, root.Class)
		}
		if root.Op == "compress" {
			// Writes carry analyze and plan markers with their attributes.
			var analyzed, planned bool
			for _, sp := range spans {
				switch sp.Stage {
				case "analyze":
					analyzed = sp.Bytes > 0 && sp.DataType != ""
				case "plan":
					planned = sp.SubTasks > 0
				}
			}
			if !analyzed || !planned {
				t.Errorf("trace %s: write missing analyze/plan markers (analyze=%v plan=%v)",
					trace, analyzed, planned)
			}
		}
	}
	if ops["compress"] != 6 || ops["decompress"] != 4 {
		t.Errorf("trace ops %v, want 6 compress / 4 decompress", ops)
	}
}

// TestCancellationStorm hammers the client with racing cancellations and
// asserts the telemetry contract under churn: a cancelled operation
// leaves nothing behind — every emitted trace group is still a complete
// tree, and (with SampleEvery 1) the slow-op log holds exactly one entry
// per operation that actually succeeded.
func TestCancellationStorm(t *testing.T) {
	var buf bytes.Buffer
	c := newClient(t, Config{
		Tiers:             scarceTiers(),
		TraceWriter:       &syncWriter{w: &buf},
		SlowOpSampleEvery: 1,
		modeled:           true,
	})
	const workers, opsPer = 8, 12
	var successes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := []byte(strings.Repeat(fmt.Sprintf("storm %d payload. ", w), 3000))
			for i := 0; i < opsPer; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				switch i % 3 {
				case 0:
					cancel() // pre-cancelled: the op must not start
				case 1:
					go cancel() // racing cancel, may land mid-flight
				}
				_, err := c.CompressContext(ctx, Task{Key: fmt.Sprintf("s%d-%d", w, i), Data: data})
				switch {
				case err == nil:
					successes.Add(1)
				case !errors.Is(err, context.Canceled):
					t.Errorf("storm op s%d-%d: %v", w, i, err)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	ok := int(successes.Load())
	if ok == 0 || ok == workers*opsPer {
		t.Fatalf("storm produced %d/%d successes; the test needs a mix", ok, workers*opsPer)
	}
	groups := parseSpans(t, buf.Bytes())
	if len(groups) != ok {
		t.Errorf("%d trace groups for %d successful ops — cancelled ops leaked spans or successes lost theirs",
			len(groups), ok)
	}
	for trace, spans := range groups {
		checkSpanTree(t, trace, spans)
	}
	if slow := c.SlowOps(); len(slow) != ok {
		t.Errorf("%d slow-op entries for %d successful ops (SampleEvery=1)", len(slow), ok)
	}
}

// TestSlowOpThresholdArm: with a tiny threshold every completed op
// crosses it, and each record carries the full, self-consistent stage
// breakdown plus the write's audit records.
func TestSlowOpThresholdArm(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), SlowOpThreshold: time.Nanosecond})
	data := []byte(strings.Repeat("slow op payload. ", 8000))
	for i := 0; i < 3; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Decompress("k0")
	if err != nil {
		t.Fatal(err)
	}

	ops := c.SlowOps()
	if len(ops) != 4 {
		t.Fatalf("%d slow-op records, want 4", len(ops))
	}
	for i, op := range ops {
		if op.Record != "slowop" || op.Trace == "" || op.Key == "" {
			t.Errorf("record %d malformed: %+v", i, op)
		}
		if op.WallSeconds <= 0 {
			t.Errorf("record %d WallSeconds %v", i, op.WallSeconds)
		}
		sum := op.CodecSeconds + op.IOSeconds + op.RetrySeconds
		if eps := 1e-9 * (1 + op.VirtualSeconds); sum < op.VirtualSeconds-eps || sum > op.VirtualSeconds+eps {
			t.Errorf("record %d: stage sum %v != virtual %v", i, sum, op.VirtualSeconds)
		}
	}
	writes, reads := ops[:3], ops[3]
	for i, op := range writes {
		if op.Op != "compress" || op.AnalyzeSeconds <= 0 || op.PlanSeconds <= 0 {
			t.Errorf("write record %d missing wall stage breakdown: %+v", i, op)
		}
		if len(op.Audits) == 0 {
			t.Errorf("write record %d carries no audit records", i)
		}
	}
	if reads.Op != "decompress" || len(reads.Audits) != 0 {
		t.Errorf("read record: %+v (reads plan nothing, so no audits)", reads)
	}
	if d := reads.VirtualSeconds - rep.VirtualSeconds; d < -1e-9 || d > 1e-9 {
		t.Errorf("read record virtual %v, report says %v", reads.VirtualSeconds, rep.VirtualSeconds)
	}
	if again := c.SlowOps(); len(again) != 0 {
		t.Errorf("SlowOps did not drain: %d left", len(again))
	}
}

// TestSlowOpSamplingArm: SampleEvery records every Nth completed op
// regardless of latency — the "Nth completed" counter, not "Nth slow".
func TestSlowOpSamplingArm(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), SlowOpSampleEvery: 2})
	data := []byte(strings.Repeat("sampled payload. ", 4000))
	for i := 0; i < 6; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	ops := c.SlowOps()
	if len(ops) != 3 {
		t.Fatalf("%d sampled records for 6 ops at every=2, want 3", len(ops))
	}
	for i, want := range []string{"k1", "k3", "k5"} {
		if ops[i].Key != want {
			t.Errorf("sampled record %d is %q, want %q", i, ops[i].Key, want)
		}
	}
}

// TestSlowOpRingBound: the ring keeps the newest SlowOpLogSize records.
func TestSlowOpRingBound(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), SlowOpSampleEvery: 1, SlowOpLogSize: 3})
	data := []byte(strings.Repeat("ring payload. ", 4000))
	for i := 0; i < 5; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("r%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	ops := c.SlowOps()
	if len(ops) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(ops))
	}
	for i, want := range []string{"r2", "r3", "r4"} {
		if ops[i].Key != want {
			t.Errorf("ring record %d is %q, want %q (newest kept)", i, ops[i].Key, want)
		}
	}
}

// TestStageAttributionMetrics: the hc_stage_seconds family is populated
// across every stage after a mixed workload, and the pool health gauges
// are registered.
func TestStageAttributionMetrics(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), EnableTelemetry: true})
	telemetryWorkload(t, c)

	snap := c.Snapshot()
	for _, stage := range []string{"analyze", "plan", "codec", "io", "retry", "queue"} {
		h, ok := snap.Histograms[fmt.Sprintf("hc_stage_seconds{stage=%q}", stage)]
		if !ok {
			t.Errorf("hc_stage_seconds{stage=%q} not registered", stage)
			continue
		}
		if h.Count == 0 {
			t.Errorf("hc_stage_seconds{stage=%q} never observed", stage)
		}
	}
	// analyze/plan observe once per write; codec/io/retry once per
	// compress or decompress (6 + 4 here).
	if h := snap.Histograms[`hc_stage_seconds{stage="analyze"}`]; h.Count != 6 {
		t.Errorf("analyze stage observed %d times, want 6", h.Count)
	}
	if h := snap.Histograms[`hc_stage_seconds{stage="codec"}`]; h.Count != 10 {
		t.Errorf("codec stage observed %d times, want 10", h.Count)
	}
	for _, gauge := range []string{"hc_pool_queued", "hc_pool_workers_busy"} {
		if _, ok := snap.Gauges[gauge]; !ok {
			t.Errorf("gauge %s not registered", gauge)
		}
	}
}

// TestSpanJSONFastPathParity pins the hand-rolled encoder to
// encoding/json byte for byte across omitempty edges, escaping-hostile
// strings, and float formatting corners — the contract that lets record
// kinds move between the sink's fast and reflected paths freely.
func TestSpanJSONFastPathParity(t *testing.T) {
	spans := []TraceSpan{
		{Record: "span", Stage: "op", Op: "compress", Key: "k"},
		{Record: "span", Trace: "r1", Span: 1, Tenant: "acme", Class: "interactive",
			Op: "compress", Key: "k0", Stage: "op", VStart: 0, VEnd: 0.012345678901234567,
			CodecSeconds: 3.5e-7, IOSeconds: 1e21, StoredBytes: 4096},
		{Record: "span", Trace: `q"uo\te`, Span: 3, Parent: 1, Op: "decompress",
			Key: "path/<weird>&\n\tkey\x01", Stage: "io", Sub: 2, VStart: 1.5, VEnd: 2,
			Tier: "ram", PlannedTier: "pfs", Retries: 4},
		{Record: "span", Span: 2, Parent: 1, Op: "compress", Key: "k", Stage: "analyze",
			DataType: "float", Distribution: "gamma", Bytes: 1 << 20,
			SubTasks: 3, PredSeconds: 0.25},
	}
	for i, sp := range spans {
		want, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got := sp.AppendJSON(nil); !bytes.Equal(got, want) {
			t.Errorf("span %d fast path diverges:\n fast %s\n json %s", i, got, want)
		}
	}
	audits := []AuditRecord{
		{Record: "audit"},
		{Record: "audit", Key: "k<&>", Sub: 1, PlannedTier: "ram", Tier: "pfs",
			Codec: "snappy", OrigBytes: 1 << 20, PredBytes: 12345, StoredBytes: 23456,
			PredSeconds: 1e-9, CodecSeconds: 0.5, IOSeconds: 2e-6,
			SizeErr: -0.25, TimeErr: 1.75},
	}
	for i, a := range audits {
		want, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.AppendJSON(nil); !bytes.Equal(got, want) {
			t.Errorf("audit %d fast path diverges:\n fast %s\n json %s", i, got, want)
		}
	}
}

// obsWriteLoad drives total write+delete cycles of compressible text
// across 8 goroutines and returns ops/second. Unlike runWriteLoad it
// passes no type hints, so every op runs the full analyze-plan-codec
// pipeline — the regime the overhead bound is meant for (raw memcpy
// stores would make any fixed tracing cost look enormous).
func obsWriteLoad(tb testing.TB, c *Client, data []byte, total int) float64 {
	tb.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	startAll := time.Now()
	for w := 0; w < throughputWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				key := fmt.Sprintf("obs%d-%d", w, i)
				if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
					tb.Error(err)
					return
				}
				if err := c.Delete(key); err != nil {
					tb.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(total) / time.Since(startAll).Seconds()
}

// TestObservabilityOverheadGate enforces the PR's overhead bar: the full
// observability stack — metrics registry, span export, stage histograms,
// slow-op sampling — must stay within 7% of the telemetry-off write
// rate (plus a small absolute allowance for CI timer noise).
func TestObservabilityOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is meaningless under -short")
	}
	if raceEnabled {
		t.Skip("-race serializes everything; throughput ratios are meaningless")
	}
	newC := func(obs bool) *Client {
		cfg := Config{}
		if obs {
			cfg.EnableTelemetry = true
			cfg.TraceWriter = io.Discard
			cfg.SlowOpThreshold = 50 * time.Millisecond
			cfg.SlowOpSampleEvery = 32
		}
		return newClient(t, cfg)
	}
	cOff, cOn := newC(false), newC(true)
	data := []byte(strings.Repeat("observable, compressible prose block 12345. ", 6000))
	const total = 1200
	obsWriteLoad(t, cOff, data, 200) // warm caches and models
	obsWriteLoad(t, cOn, data, 200)
	// Interleaved best-of-3: each client's best rate, so a scheduling
	// hiccup in one rep cannot fail the gate.
	var off, on float64
	for rep := 0; rep < 3; rep++ {
		if v := obsWriteLoad(t, cOff, data, total); v > off {
			off = v
		}
		if v := obsWriteLoad(t, cOn, data, total); v > on {
			on = v
		}
	}
	t.Logf("telemetry off %.0f ops/s, full observability %.0f ops/s (%.2fx)", off, on, on/off)
	// 7% plus 3% absolute slack for CI noise.
	if on < off*0.90 {
		t.Errorf("full observability runs at %.2fx the telemetry-off rate (%.0f vs %.0f ops/s), want >= 0.90x",
			on/off, on, off)
	}
	if slow := cOn.SlowOps(); len(slow) == 0 {
		t.Error("sampled slow-op log empty after the gate workload")
	}
}
