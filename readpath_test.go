package hcompress

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcompress/internal/bufpool"
	"hcompress/internal/stats"
)

// cacheConfig is the read-accelerator test baseline: cache on at a
// quarter of tier 0, first-read admission (so tests warm in one read),
// prefetch off for determinism. Tests override fields as needed.
func cacheConfig() Config {
	return Config{
		ReadCacheFraction:   0.25,
		ReadCacheMinTouches: 1,
		DisablePrefetch:     true,
	}
}

// readRep decompresses key and fails the test on error.
func readRep(t *testing.T, c *Client, key string) *Report {
	t.Helper()
	rep, err := c.Decompress(key)
	if err != nil {
		t.Fatalf("read %q: %v", key, err)
	}
	return rep
}

// TestCacheHitGoldenBytes is the golden byte-identity gate: the bytes a
// cache hit serves must be exactly the bytes the miss path decodes.
func TestCacheHitGoldenBytes(t *testing.T) {
	c := newClient(t, cacheConfig())
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 128<<10, 3)
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	miss := readRep(t, c, "k")
	if miss.CacheHit {
		t.Fatal("first read must miss")
	}
	if !bytes.Equal(miss.Data, data) {
		t.Fatal("miss-path round-trip mismatch")
	}
	miss.Release()
	hit := readRep(t, c, "k")
	if !hit.CacheHit {
		t.Fatal("second read must be served from the cache")
	}
	if !bytes.Equal(hit.Data, data) {
		t.Fatal("cache hit returned different bytes than the miss path")
	}
	if hit.OriginalBytes != miss.OriginalBytes || hit.StoredBytes != miss.StoredBytes ||
		hit.DataType != miss.DataType || hit.Distribution != miss.Distribution {
		t.Errorf("hit report attribution differs: hit=%+v miss=%+v", hit, miss)
	}
	hit.Release()
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Admissions != 1 {
		t.Errorf("stats = %+v, want Hits=1 Misses=1 Admissions=1", st)
	}
}

// TestCacheAdmissionRejectsSingleTouch: with the default two-touch gate a
// one-shot scan never caches; only the second read of a key opens a fill.
func TestCacheAdmissionRejectsSingleTouch(t *testing.T) {
	cfg := cacheConfig()
	cfg.ReadCacheMinTouches = 0 // default: 2
	c := newClient(t, cfg)
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 32<<10, 5)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("scan%d", i)
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Fatal(err)
		}
		readRep(t, c, key).Release()
	}
	st := c.CacheStats()
	if st.Admissions != 0 || st.Entries != 0 {
		t.Fatalf("single-touch keys cached: %+v", st)
	}
	if st.Rejects < 4 {
		t.Errorf("rejects = %d, want >= 4 (one per single-touch fill attempt)", st.Rejects)
	}
	// Second touch of one key passes the gate; the third read hits.
	readRep(t, c, "scan0").Release()
	rep := readRep(t, c, "scan0")
	if !rep.CacheHit {
		t.Error("third read of a twice-touched key must hit")
	}
	rep.Release()
}

// TestCacheInvalidationOnOverwrite: an overwrite must strictly invalidate
// — the next read returns the new bytes via the store, never stale cache.
func TestCacheInvalidationOnOverwrite(t *testing.T) {
	c := newClient(t, cacheConfig())
	oldData := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 1)
	newData := stats.GenBuffer(stats.TypeFloat, stats.Normal, 64<<10, 2)
	if _, err := c.Compress(Task{Key: "k", Data: oldData}); err != nil {
		t.Fatal(err)
	}
	readRep(t, c, "k").Release()
	rep := readRep(t, c, "k")
	if !rep.CacheHit || !bytes.Equal(rep.Data, oldData) {
		t.Fatal("warming read broken")
	}
	rep.Release()
	if _, err := c.Compress(Task{Key: "k", Data: newData}); err != nil {
		t.Fatal(err)
	}
	rep = readRep(t, c, "k")
	if rep.CacheHit {
		t.Error("read after overwrite must miss (entry invalidated)")
	}
	if !bytes.Equal(rep.Data, newData) {
		t.Error("read after overwrite returned stale bytes")
	}
	rep.Release()
	// And the batch write path invalidates the same way.
	readRep(t, c, "k").Release() // re-warm
	if _, err := c.CompressBatch([]Task{{Key: "k", Data: oldData}}); err != nil {
		t.Fatal(err)
	}
	rep = readRep(t, c, "k")
	if rep.CacheHit || !bytes.Equal(rep.Data, oldData) {
		t.Errorf("read after batch overwrite: hit=%v, stale=%v", rep.CacheHit, !bytes.Equal(rep.Data, oldData))
	}
	rep.Release()
}

// TestCacheInvalidationOnDelete: a deleted key's cached payload is gone.
func TestCacheInvalidationOnDelete(t *testing.T) {
	c := newClient(t, cacheConfig())
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 1)
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	readRep(t, c, "k").Release()
	readRep(t, c, "k").Release() // resident now
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
	st := c.CacheStats()
	if st.Entries != 0 || st.Invalidations < 1 {
		t.Errorf("stats after delete = %+v, want no entries, >=1 invalidation", st)
	}
}

// TestCacheInvalidationOnDemotion: when the demoter moves a key's blobs
// down a tier, the cached payload is invalidated through the demote
// notification — the next read misses (and still returns correct bytes).
func TestCacheInvalidationOnDemotion(t *testing.T) {
	cfg := cacheConfig()
	cfg.Tiers = demoteTiers()
	c := newClient(t, cfg)
	fillTier0(t, c, 0.86)
	data0 := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 0)
	readRep(t, c, "fill0").Release() // warm the oldest key — first to demote
	rep := readRep(t, c, "fill0")
	if !rep.CacheHit {
		t.Fatal("warming read must hit")
	}
	rep.Release()

	c.demoteOnce(0.85, 0.70, 64)

	st := c.CacheStats()
	if st.Invalidations < 1 {
		t.Errorf("stats after demotion = %+v, want >= 1 invalidation", st)
	}
	rep = readRep(t, c, "fill0")
	if rep.CacheHit {
		t.Error("read after demotion must miss (entry invalidated)")
	}
	if !bytes.Equal(rep.Data, data0) {
		t.Error("read after demotion returned wrong bytes")
	}
	rep.Release()
}

// TestCacheInvalidationOnHealthFlip: a tier health transition purges the
// whole cache — after the flip the store's shape changed under us.
func TestCacheInvalidationOnHealthFlip(t *testing.T) {
	cfg := cacheConfig()
	cfg.Tiers = faultTiers()
	cfg.FaultInjector = &FaultInjector{Windows: []FaultWindow{
		{Tier: "ram", StartSec: 1000, Mode: FaultOutage}, // never closes
	}}
	c := newClient(t, cfg)
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 1)
	if _, err := c.Compress(Task{Key: "pre", Data: data}); err != nil {
		t.Fatal(err)
	}
	readRep(t, c, "pre").Release()
	readRep(t, c, "pre").Release()
	if st := c.CacheStats(); st.Entries != 1 {
		t.Fatalf("warming failed: %+v", st)
	}

	// Enter the outage window; failing writes cross the offline threshold
	// and the health machine fires the event that purges the cache.
	c.Advance(2000)
	for i := 0; i < 4; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("post%d", i), Data: data}); err != nil {
			t.Fatalf("write %d under single-tier outage must spill, got %v", i, err)
		}
	}
	if h := c.Health(); h[0].State != "offline" {
		t.Fatalf("ram should be offline: %+v", h)
	}
	st := c.CacheStats()
	if st.Entries != 0 || st.Invalidations < 1 {
		t.Errorf("stats after health flip = %+v, want empty cache", st)
	}
	// Keys written after the flip live on the healthy tier and read fine.
	rep := readRep(t, c, "post0")
	if rep.CacheHit || !bytes.Equal(rep.Data, data) {
		t.Errorf("post-flip read: hit=%v", rep.CacheHit)
	}
	rep.Release()
}

// TestReportSurvivesConcurrentInvalidation is the read-side refcount
// hazard gate (deterministic): a Report handed out by Decompress keeps
// its bytes through an overwrite AND a delete of the key, and Release is
// idempotent — never a double-free (bufpool debug mode panics on one).
func TestReportSurvivesConcurrentInvalidation(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	c := newClient(t, cacheConfig())
	oldData := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 1)
	newData := stats.GenBuffer(stats.TypeFloat, stats.Normal, 64<<10, 2)
	if _, err := c.Compress(Task{Key: "k", Data: oldData}); err != nil {
		t.Fatal(err)
	}
	readRep(t, c, "k").Release()
	held := readRep(t, c, "k") // pinned cache hit
	if !held.CacheHit {
		t.Fatal("warming read must hit")
	}

	// Overwrite, then delete, while the Report is held: the cache drops
	// its reference both times; the pin must keep the buffer alive.
	if _, err := c.Compress(Task{Key: "k", Data: newData}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(held.Data, oldData) {
		t.Fatal("held report's bytes changed under invalidation")
	}
	held.Release()
	held.Release() // second release must be a no-op, not a double-free
}

// TestCacheReadWriteRace hammers one key with concurrent overwrites,
// deletes, and cached reads. Every successful read must observe one of
// the two payload versions in full — never torn bytes, never a stale mix
// — and the run must be race-clean under -race.
func TestCacheReadWriteRace(t *testing.T) {
	c := newClient(t, cacheConfig())
	const size = 8 << 10
	versions := [2][]byte{
		stats.GenBuffer(stats.TypeFloat, stats.Gamma, size, 1),
		stats.GenBuffer(stats.TypeFloat, stats.Normal, size, 2),
	}
	if _, err := c.Compress(Task{Key: "k", Data: versions[0]}); err != nil {
		t.Fatal(err)
	}
	const writers, readers, iters = 2, 4, 150
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				if _, err := c.Compress(Task{Key: "k", Data: versions[(w+i)%2]}); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 9 {
					_ = c.Delete("k") // concurrent writer may have raced us; either outcome is fine
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				rep, err := c.Decompress("k")
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // a delete won the race
					}
					t.Error(err)
					return
				}
				if !bytes.Equal(rep.Data, versions[0]) && !bytes.Equal(rep.Data, versions[1]) {
					t.Error("read observed torn or stale bytes")
					rep.Release()
					stop.Store(true)
					return
				}
				rep.Release()
			}
		}()
	}
	wg.Wait()
}

// TestSequentialPrefetchWarmsCache: reading a run of sequential keys must
// make the prefetcher decompress the next keys ahead of demand, so the
// first demand read of the predicted key is already a cache hit.
func TestSequentialPrefetchWarmsCache(t *testing.T) {
	cfg := cacheConfig()
	cfg.DisablePrefetch = false
	cfg.ReadCacheMinTouches = 2 // demand reads below are single-touch: any resident entry came from prefetch
	cfg.PrefetchDepth = 2
	c := newClient(t, cfg)
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 3)
	for i := 0; i < 8; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("s%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		readRep(t, c, fmt.Sprintf("s%d", i)).Release()
	}
	// The run s0,s1,s2 predicts s3 and s4; wait for the worker to commit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.CacheStats()
		if st.PrefetchIssued >= 2 && st.Entries >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher never warmed the predicted keys: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	rep := readRep(t, c, "s3")
	if !rep.CacheHit {
		t.Error("demand read of the predicted key must hit the prefetched entry")
	}
	if !bytes.Equal(rep.Data, data) {
		t.Error("prefetched entry holds wrong bytes")
	}
	rep.Release()
	if st := c.CacheStats(); st.PrefetchUsed < 1 {
		t.Errorf("stats = %+v, want PrefetchUsed >= 1", st)
	}
}

// TestPrefetchCancellationStorm extends the cancellation-storm suite to
// the prefetching read path: clients are opened, hammered with reads
// (many under already-cancelled contexts) that keep the prefetch worker
// busy, and torn down immediately — repeatedly — without leaking a
// single goroutine or wedging Close.
func TestPrefetchCancellationStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 32<<10, 3)
	for iter := 0; iter < 4; iter++ {
		cfg := cacheConfig()
		cfg.DisablePrefetch = false
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := c.Compress(Task{Key: fmt.Sprintf("s%d", i), Data: data}); err != nil {
				t.Fatal(err)
			}
		}
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		for i := 0; i < 6; i++ {
			key := fmt.Sprintf("s%d", i%4)
			if i%3 == 0 {
				// Pre-cancelled demand reads still record accesses and kick
				// the prefetcher before failing.
				if _, err := c.DecompressContext(cancelled, key); err == nil {
					t.Error("pre-cancelled read succeeded")
				}
				continue
			}
			rep, err := c.Decompress(key)
			if err != nil {
				t.Fatal(err)
			}
			rep.Release()
		}
		// Close races the prefetch worker mid-pass: it must cancel any
		// in-flight speculative read and join before teardown.
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked across prefetching clients: %d -> %d", before, after)
	}
}

// TestHotReadSpeedupGate enforces the read-acceleration acceptance bar:
// on a zipfian-hot read set, the cache must deliver at least a 5x
// hot-read throughput speedup over the uncached tier-walk-plus-codec
// path (the committed BENCH_reads.json records ~20x).
func TestHotReadSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is meaningless under -short")
	}
	if raceEnabled {
		t.Skip("-race distorts the codec/cache cost ratio; the gate is meaningless")
	}
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 256<<10, 3)
	const hotKeys = 4
	const rounds = 50
	run := func(frac float64) (float64, CacheStats) {
		cfg := cacheConfig()
		cfg.ReadCacheFraction = frac
		c := newClient(t, cfg)
		for k := 0; k < hotKeys; k++ {
			if _, err := c.Compress(Task{Key: fmt.Sprintf("hot%d", k), Data: data,
				DataType: "float", Distribution: "gamma"}); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < hotKeys; k++ { // warm: models, OS caches, admission
			readRep(t, c, fmt.Sprintf("hot%d", k)).Release()
		}
		begin := time.Now()
		for r := 0; r < rounds; r++ {
			for k := 0; k < hotKeys; k++ {
				readRep(t, c, fmt.Sprintf("hot%d", k)).Release()
			}
		}
		return float64(rounds*hotKeys) / time.Since(begin).Seconds(), c.CacheStats()
	}
	off, _ := run(0)
	on, st := run(0.25)
	hitRatio := float64(st.Hits) / float64(st.Hits+st.Misses)
	speedup := on / off
	t.Logf("hot reads: cache off %.0f ops/s, cache on %.0f ops/s: %.1fx speedup, hit ratio %.3f", off, on, speedup, hitRatio)
	if speedup < 5 {
		t.Errorf("hot-read speedup = %.2fx, want >= 5x", speedup)
	}
}

// TestWriteP99RegressionGate enforces the no-write-regression bar: with
// the cache enabled, write p99 must stay within 10% of cache-off (plus a
// small absolute allowance for CI timer noise — the write path only
// gained one map lookup per overwrite).
func TestWriteP99RegressionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement is meaningless under -short")
	}
	if raceEnabled {
		t.Skip("-race distorts latency; the gate is meaningless")
	}
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 256<<10, 3)
	const total = 1200
	run := func(frac float64) time.Duration {
		c := newClient(t, Config{ReadCacheFraction: frac})
		writeP99(t, c, data, 200) // warm-up
		return writeP99(t, c, data, total)
	}
	off := run(0)
	on := run(0.25)
	t.Logf("write p99: cache off %v, cache on %v", off, on)
	limit := off + off/10 + 2*time.Millisecond
	if on > limit {
		t.Errorf("write p99 with cache on = %v, want <= %v (off %v + 10%% + 2ms)", on, limit, off)
	}
}
