package hcompress_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"hcompress"
)

// Example demonstrates the basic compress/decompress cycle through a
// two-tier hierarchy.
func Example() {
	client, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 1 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "disk", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 80e6, Lanes: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	data := []byte(strings.Repeat("tiered storage ", 100000))
	rep, err := client.Compress(hcompress.Task{Key: "demo", Data: data})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compressed:", rep.StoredBytes < rep.OriginalBytes)
	fmt.Println("type:", rep.DataType)

	back, err := client.Decompress("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intact:", bytes.Equal(back.Data, data))
	// Output:
	// compressed: true
	// type: text
	// intact: true
}

// ExampleClient_SetPriorities shows runtime priority switching (§IV-F2 of
// the paper): the same client serves an archival phase after a
// latency-sensitive phase.
func ExampleClient_SetPriorities() {
	client, err := hcompress.New(hcompress.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	data := []byte(strings.Repeat("checkpoint data ", 50000))
	client.SetPriorities(hcompress.PriorityAsync) // hot path: fast codecs
	if _, err := client.Compress(hcompress.Task{Key: "hot", Data: data}); err != nil {
		log.Fatal(err)
	}
	client.SetPriorities(hcompress.PriorityArchival) // cold path: max ratio
	if _, err := client.Compress(hcompress.Task{Key: "cold", Data: data}); err != nil {
		log.Fatal(err)
	}
	hot, _ := client.Decompress("hot")
	cold, _ := client.Decompress("cold")
	fmt.Println("both intact:", bytes.Equal(hot.Data, data) && bytes.Equal(cold.Data, data))
	// Output:
	// both intact: true
}

// ExampleClient_Status shows the System Monitor's view of the hierarchy.
func ExampleClient_Status() {
	client, err := hcompress.New(hcompress.Config{Tiers: []hcompress.TierSpec{
		{Name: "fast", CapacityBytes: 1 << 30, LatencySec: 1e-6, BandwidthBps: 1e9, Lanes: 2},
		{Name: "slow", CapacityBytes: 1 << 34, LatencySec: 1e-3, BandwidthBps: 1e8, Lanes: 2},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for _, ts := range client.Status() {
		fmt.Printf("%s: %d bytes used\n", ts.Name, ts.UsedBytes)
	}
	// Output:
	// fast: 0 bytes used
	// slow: 0 bytes used
}
