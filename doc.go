// Package hcompress is a Go implementation of HCompress, the hierarchical
// data compression engine for multi-tiered storage environments described
// in:
//
//	H. Devarajan, A. Kougkas, L. Logan, X.-H. Sun.
//	"HCompress: Hierarchical Data Compression for Multi-Tiered Storage
//	Environments." IEEE IPDPS 2020.
//
// HCompress jointly chooses, for every I/O task, a compression library and
// a placement in a storage hierarchy (RAM, NVMe, burst buffers, parallel
// file system), so that fast tiers hold more (better-compressed) data and
// slow tiers are touched less. The selection is made by the HCDP engine, a
// memoized dynamic program over (tier, codec) combinations driven by:
//
//   - an Input Analyzer that infers data type and content distribution,
//   - a Compression Cost Predictor (linear regression with an online
//     feedback loop) estimating each codec's speed and ratio,
//   - a System Monitor tracking per-tier remaining capacity and load.
//
// The package ships twelve compression codecs behind one interface
// (huffman, rle, lz4, lzo, pithy, snappy, quicklz, brotli, zlib, bzip2,
// bsc, lzma — all but zlib implemented from scratch), a virtual-time
// multi-tier storage simulator, Hermes-style baselines, and the full
// benchmark harness reproducing the paper's figures.
//
// # Quick start
//
//	client, err := hcompress.New(hcompress.Config{})
//	if err != nil { ... }
//	defer client.Close()
//
//	rep, err := client.Compress(hcompress.Task{Key: "step0", Data: buf})
//	// rep.Ratio, rep.SubTasks: what was chosen, where it went
//
//	back, err := client.Decompress("step0")
//	// back.Data == buf
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the paper-reproduction harness.
package hcompress
