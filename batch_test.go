package hcompress

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hcompress/internal/stats"
)

func TestCompressBatchRoundTrip(t *testing.T) {
	c := newClient(t, Config{})
	var tasks []Task
	var want [][]byte
	for i := 0; i < 6; i++ {
		var data []byte
		if i%2 == 0 {
			data = stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, int64(i))
		} else {
			data = []byte(strings.Repeat(fmt.Sprintf("tiered storage burst %d. ", i), 20000))
		}
		tasks = append(tasks, Task{Key: fmt.Sprintf("batch%d", i), Data: data})
		want = append(want, data)
	}
	reps, err := c.CompressBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(tasks) {
		t.Fatalf("%d reports for %d tasks", len(reps), len(tasks))
	}
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("report %d is nil", i)
		}
		if rep.Key != tasks[i].Key {
			t.Errorf("report %d key %q, want %q (input order)", i, rep.Key, tasks[i].Key)
		}
		if rep.OriginalBytes != int64(len(want[i])) || rep.StoredBytes <= 0 {
			t.Errorf("report %d: orig %d stored %d", i, rep.OriginalBytes, rep.StoredBytes)
		}
	}

	keys := make([]string, len(tasks))
	for i := range tasks {
		keys[i] = tasks[i].Key
	}
	rreps, err := c.DecompressBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range rreps {
		if rep == nil {
			t.Fatalf("read report %d is nil", i)
		}
		if !bytes.Equal(rep.Data, want[i]) {
			t.Fatalf("read %d: %d bytes, want %d", i, len(rep.Data), len(want[i]))
		}
		rep.Release()
	}
}

// TestBatchMatchesSingleOpResults: a batch of one task must make the
// same decisions the single-op path makes for the same data — same
// schema, same placement, same stored bytes. Times are excluded: the
// real oracle measures codec wall clocks, which never repeat exactly
// (the virtual-time byte-identical contract is asserted in the manager
// package under the deterministic model oracle).
func TestBatchMatchesSingleOpResults(t *testing.T) {
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 7)
	single := newClient(t, Config{})
	batch := newClient(t, Config{})

	srep, err := single.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	breps, err := batch.CompressBatch([]Task{{Key: "k", Data: data}})
	if err != nil {
		t.Fatal(err)
	}
	brep := breps[0]
	if srep.StoredBytes != brep.StoredBytes || srep.Ratio != brep.Ratio ||
		srep.PredictedSeconds != brep.PredictedSeconds ||
		srep.DataType != brep.DataType || srep.Distribution != brep.Distribution ||
		len(srep.SubTasks) != len(brep.SubTasks) {
		t.Fatalf("batch result differs from single-op:\nsingle %+v\nbatch  %+v", srep, brep)
	}
	for i := range srep.SubTasks {
		s, b := srep.SubTasks[i], brep.SubTasks[i]
		s.CodecSeconds, b.CodecSeconds = 0, 0 // wall-clock measured, not comparable
		s.IOSeconds, b.IOSeconds = 0, 0       // offset by codec wall time, ulp-different
		if s != b {
			t.Fatalf("sub-task %d differs: single %+v batch %+v", i, s, b)
		}
	}
}

func TestCompressBatchFailsIndependently(t *testing.T) {
	c := newClient(t, Config{})
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<19, 3)
	reps, err := c.CompressBatch([]Task{
		{Key: "ok0", Data: data},
		{Key: "", Data: data},      // invalid: no key
		{Key: "nodata", Data: nil}, // invalid: empty data
		{Key: "ok1", Data: data},
	})
	if err == nil {
		t.Fatal("batch with invalid tasks returned nil error")
	}
	if reps[0] == nil || reps[3] == nil {
		t.Fatal("valid tasks did not produce reports")
	}
	if reps[1] != nil || reps[2] != nil {
		t.Fatal("invalid tasks produced reports")
	}
	for _, key := range []string{"ok0", "ok1"} {
		rep, err := c.Decompress(key)
		if err != nil {
			t.Fatalf("valid task %q unreadable after mixed batch: %v", key, err)
		}
		if !bytes.Equal(rep.Data, data) {
			t.Fatalf("%q round-trip mismatch", key)
		}
		rep.Release()
	}

	rreps, err := c.DecompressBatch([]string{"ok0", "missing", "ok1"})
	if err == nil {
		t.Fatal("batch read with unknown key returned nil error")
	}
	if rreps[0] == nil || rreps[2] == nil || rreps[1] != nil {
		t.Fatalf("read independence violated: %v", rreps)
	}
}

func TestBatchOnClosedClient(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	data := []byte("x")
	if _, err := c.CompressBatch([]Task{{Key: "k", Data: data}}); err != ErrClosed {
		t.Errorf("CompressBatch on closed client: %v, want ErrClosed", err)
	}
	if _, err := c.DecompressBatch([]string{"k"}); err != ErrClosed {
		t.Errorf("DecompressBatch on closed client: %v, want ErrClosed", err)
	}
	if _, err := c.CompressBatch(nil); err != nil {
		t.Errorf("empty batch: %v, want nil", err)
	}
}
