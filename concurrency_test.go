package hcompress

// Concurrent-correctness coverage for the staged pipeline: these tests
// are the reason CI runs `go test -race ./...` — they interleave every
// public operation from many goroutines and assert the invariants that
// must survive arbitrary scheduling (round-trip byte equality,
// non-negative tier accounting, monotone virtual time).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hcompress/internal/stats"
)

// TestDecompressReportsWriteTimeAttributes covers the read-path metadata
// fix: the analyzer result persisted at write time must come back on the
// Decompress report instead of blank fields.
func TestDecompressReportsWriteTimeAttributes(t *testing.T) {
	c := newClient(t, Config{})
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 7)
	wrep, err := c.Compress(Task{Key: "k", Data: data, DataType: "float", Distribution: "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	rrep, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if rrep.DataType != wrep.DataType || rrep.Distribution != wrep.Distribution {
		t.Errorf("read report attrs %q/%q, write saw %q/%q",
			rrep.DataType, rrep.Distribution, wrep.DataType, wrep.Distribution)
	}
	if rrep.DataType != "float" || rrep.Distribution != "gamma" {
		t.Errorf("attrs not persisted: %q/%q", rrep.DataType, rrep.Distribution)
	}
	if rrep.StoredBytes != wrep.StoredBytes || rrep.Ratio <= 0 {
		t.Errorf("read report stored=%d ratio=%v, write stored=%d",
			rrep.StoredBytes, rrep.Ratio, wrep.StoredBytes)
	}
}

// TestConcurrentStress interleaves Compress, Decompress, Delete, Status,
// Stats, and SetPriorities from many goroutines against one Client and
// checks round-trip byte equality plus non-negative tier accounting.
func TestConcurrentStress(t *testing.T) {
	c := newClient(t, Config{})
	const (
		workers       = 8
		tasksPerGoro  = 12
		statusPollers = 2
	)

	// Each worker owns a distinct key space and data class, so equality
	// checks are deterministic even though scheduling is not.
	types := stats.AllTypes()
	dists := stats.AllDists()

	var workerWG, pollerWG sync.WaitGroup
	errc := make(chan error, workers+statusPollers)
	done := make(chan struct{})

	for g := 0; g < workers; g++ {
		workerWG.Add(1)
		go func(g int) {
			defer workerWG.Done()
			dt := types[g%len(types)]
			dist := dists[g%len(dists)]
			data := stats.GenBuffer(dt, dist, 256<<10, int64(g)+1)
			for i := 0; i < tasksPerGoro; i++ {
				key := fmt.Sprintf("g%d-t%d", g, i)
				if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
					errc <- fmt.Errorf("%s: compress: %w", key, err)
					return
				}
				rep, err := c.Decompress(key)
				if err != nil {
					errc <- fmt.Errorf("%s: decompress: %w", key, err)
					return
				}
				if !bytes.Equal(rep.Data, data) {
					errc <- fmt.Errorf("%s: round-trip mismatch", key)
					return
				}
				if rep.VirtualSeconds < 0 {
					errc <- fmt.Errorf("%s: negative virtual time %v", key, rep.VirtualSeconds)
					return
				}
				// Delete every other task so capacity churns concurrently.
				if i%2 == 0 {
					if err := c.Delete(key); err != nil {
						errc <- fmt.Errorf("%s: delete: %w", key, err)
						return
					}
				}
				if i%5 == 0 && g%2 == 0 {
					c.SetPriorities(PriorityReadAfterWrite)
				}
			}
		}(g)
	}

	// Status/Stats pollers run for the whole stress window; they must
	// never observe negative accounting and never block on codec work.
	for p := 0; p < statusPollers; p++ {
		pollerWG.Add(1)
		go func() {
			defer pollerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, s := range c.Status() {
					if s.UsedBytes < 0 || s.RemainingBytes < 0 || s.UsedBytes > s.CapacityBytes {
						errc <- fmt.Errorf("tier %s accounting: used %d remaining %d cap %d",
							s.Name, s.UsedBytes, s.RemainingBytes, s.CapacityBytes)
						return
					}
				}
				if st := c.Stats(); st.VirtualSeconds < 0 {
					errc <- fmt.Errorf("negative virtual seconds %v", st.VirtualSeconds)
					return
				}
			}
		}()
	}

	doneWorkers := make(chan struct{})
	go func() {
		workerWG.Wait()
		close(doneWorkers)
	}()

	// Close the poller window once all workers finish. Workers signal
	// errors through errc; the first one fails the test.
	for {
		select {
		case err := <-errc:
			close(done)
			pollerWG.Wait()
			t.Fatal(err)
		case <-doneWorkers:
			close(done)
			pollerWG.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			// Survivors must still round-trip after the storm.
			for g := 0; g < workers; g++ {
				dt := types[g%len(types)]
				dist := dists[g%len(dists)]
				data := stats.GenBuffer(dt, dist, 256<<10, int64(g)+1)
				for i := 1; i < tasksPerGoro; i += 2 {
					key := fmt.Sprintf("g%d-t%d", g, i)
					rep, err := c.Decompress(key)
					if err != nil {
						t.Fatalf("%s: post-stress decompress: %v", key, err)
					}
					if !bytes.Equal(rep.Data, data) {
						t.Fatalf("%s: post-stress mismatch", key)
					}
				}
			}
			// Total accounting must balance: deleting everything must
			// return every tier to zero.
			st := c.Stats()
			if st.Tasks != workers*tasksPerGoro/2 {
				t.Errorf("surviving tasks %d, want %d", st.Tasks, workers*tasksPerGoro/2)
			}
			for g := 0; g < workers; g++ {
				for i := 1; i < tasksPerGoro; i += 2 {
					if err := c.Delete(fmt.Sprintf("g%d-t%d", g, i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, s := range c.Status() {
				if s.UsedBytes != 0 {
					t.Errorf("tier %s leaked %d bytes", s.Name, s.UsedBytes)
				}
			}
			return
		}
	}
}

// TestConcurrentCompressSameClientDistinctKeys is a tighter variant: all
// goroutines write simultaneously (no reads interleaved), then everything
// is read back sequentially — the pattern of a bulk-synchronous
// checkpoint phase.
func TestConcurrentCompressSameClientDistinctKeys(t *testing.T) {
	c := newClient(t, Config{})
	const n = 16
	data := stats.GenBuffer(stats.TypeText, stats.Uniform, 512<<10, 3)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Compress(Task{Key: fmt.Sprintf("w%d", i), Data: data})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		rep, err := c.Decompress(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep.Data, data) {
			t.Fatalf("w%d: mismatch", i)
		}
	}
	if st := c.Stats(); st.Tasks != n {
		t.Errorf("tasks %d want %d", st.Tasks, n)
	}
}

// TestCloseDrainsInFlightOperations verifies the lifecycle lock: Close
// must wait for in-flight operations rather than yanking state from under
// them, and operations issued after Close fail with ErrClosed.
func TestCloseDrainsInFlightOperations(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := stats.GenBuffer(stats.TypeInt, stats.Normal, 1<<20, 11)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Success or ErrClosed are both legal depending on timing;
			// anything else (or a panic/race) is a failure.
			if _, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil && err != ErrClosed {
				t.Errorf("k%d: %v", i, err)
			}
		}(i)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := c.Compress(Task{Key: "late", Data: data}); err != ErrClosed {
		t.Errorf("post-close compress: %v", err)
	}
}
