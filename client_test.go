package hcompress

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"hcompress/internal/seed"
	"hcompress/internal/stats"
)

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	// A scarce RAM tier ahead of slow media creates the capacity pressure
	// under which compression pays (on fast, empty RAM the engine rightly
	// chooses "none" — see TestPlanSkipsCompressionOnFastEmptyRAM).
	c := newClient(t, Config{Tiers: []TierSpec{
		{Name: "ram", CapacityBytes: 64 << 10, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
	}})
	data := []byte(strings.Repeat("hierarchical compression for tiered storage. ", 10000))
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginalBytes != int64(len(data)) {
		t.Errorf("original %d", rep.OriginalBytes)
	}
	if rep.StoredBytes <= 0 || rep.StoredBytes >= rep.OriginalBytes {
		t.Errorf("text should compress: stored %d of %d", rep.StoredBytes, rep.OriginalBytes)
	}
	if rep.Ratio <= 1 {
		t.Errorf("ratio %v", rep.Ratio)
	}
	if len(rep.SubTasks) == 0 {
		t.Error("no sub-tasks reported")
	}
	if rep.DataType != "text" {
		t.Errorf("detected type %q", rep.DataType)
	}
	back, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("round-trip mismatch")
	}
	if back.VirtualSeconds <= 0 {
		t.Error("read must cost virtual time")
	}
}

func TestRoundTripAllDataClasses(t *testing.T) {
	c := newClient(t, Config{})
	for _, dt := range stats.AllTypes() {
		for _, d := range stats.AllDists() {
			key := dt.String() + "-" + d.String()
			data := stats.GenBuffer(dt, d, 1<<20, int64(dt)*10+int64(d))
			if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			rep, err := c.Decompress(key)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if !bytes.Equal(rep.Data, data) {
				t.Fatalf("%s: mismatch", key)
			}
		}
	}
}

func TestTaskValidation(t *testing.T) {
	c := newClient(t, Config{})
	if _, err := c.Compress(Task{Data: []byte("x")}); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := c.Compress(Task{Key: "k"}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := c.Decompress("missing"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestHints(t *testing.T) {
	c := newClient(t, Config{})
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 5)
	rep, err := c.Compress(Task{Key: "k", Data: data, DataType: "float", Distribution: "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataType != "float" || rep.Distribution != "gamma" {
		t.Errorf("hints ignored: %s/%s", rep.DataType, rep.Distribution)
	}
}

func TestDelete(t *testing.T) {
	c := newClient(t, Config{})
	data := []byte(strings.Repeat("z", 1<<20))
	c.Compress(Task{Key: "k", Data: data})
	used := func() int64 {
		var total int64
		for _, s := range c.Status() {
			total += s.UsedBytes
		}
		return total
	}
	if used() == 0 {
		t.Fatal("nothing stored")
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if used() != 0 {
		t.Error("capacity leaked")
	}
}

func TestStatusAndStats(t *testing.T) {
	c := newClient(t, Config{})
	data := []byte(strings.Repeat("status ", 200000))
	c.Compress(Task{Key: "k", Data: data})
	st := c.Status()
	if len(st) != 4 {
		t.Fatalf("tiers %d", len(st))
	}
	var used int64
	for _, s := range st {
		used += s.UsedBytes
	}
	if used == 0 {
		t.Error("no usage reported")
	}
	s := c.Stats()
	if s.VirtualSeconds <= 0 || s.Tasks != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestClosedClient(t *testing.T) {
	c := newClient(t, Config{})
	c.Close()
	if _, err := c.Compress(Task{Key: "k", Data: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if _, err := c.Decompress("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCustomTiers(t *testing.T) {
	cfg := Config{Tiers: []TierSpec{
		{Name: "fast", CapacityBytes: 1 << 20, LatencySec: 1e-6, BandwidthBps: 1e9, Lanes: 1},
		{Name: "slow", CapacityBytes: 1 << 30, LatencySec: 1e-3, BandwidthBps: 1e7, Lanes: 1},
	}}
	c := newClient(t, cfg)
	data := stats.GenBuffer(stats.TypeText, stats.Uniform, 4<<20, 1)
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.SubTasks {
		if st.Tier != "fast" && st.Tier != "slow" {
			t.Errorf("unknown tier %q", st.Tier)
		}
	}
	back, _ := c.Decompress("k")
	if !bytes.Equal(back.Data, data) {
		t.Fatal("mismatch")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{Tiers: []TierSpec{{Name: "x"}}}); err == nil {
		t.Error("invalid tier accepted")
	}
	if _, err := New(Config{Codecs: []string{"zstd"}}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := New(Config{SeedPath: "/nonexistent.json"}); err == nil {
		t.Error("missing seed accepted")
	}
}

func TestDisableCompression(t *testing.T) {
	c := newClient(t, Config{DisableCompression: true})
	data := []byte(strings.Repeat("compressible! ", 100000))
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.SubTasks {
		if st.Codec != "none" {
			t.Errorf("MTNC mode compressed with %s", st.Codec)
		}
	}
}

func TestRestrictedCodecs(t *testing.T) {
	c := newClient(t, Config{Codecs: []string{"snappy"}})
	data := []byte(strings.Repeat("snappy only ", 100000))
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.SubTasks {
		if st.Codec != "none" && st.Codec != "snappy" {
			t.Errorf("codec %s outside pool", st.Codec)
		}
	}
}

func TestSetPrioritiesRuntime(t *testing.T) {
	c := newClient(t, Config{})
	data := []byte(strings.Repeat("priority switch ", 50000))
	if _, err := c.Compress(Task{Key: "a", Data: data}); err != nil {
		t.Fatal(err)
	}
	c.SetPriorities(PriorityArchival)
	if _, err := c.Compress(Task{Key: "b", Data: data}); err != nil {
		t.Fatal(err)
	}
	// Both must round-trip regardless of priorities.
	for _, k := range []string{"a", "b"} {
		rep, err := c.Decompress(k)
		if err != nil || !bytes.Equal(rep.Data, data) {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestSeedPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.json")
	h, err := Config{}.hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Builtin(h).Save(path); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{SeedPath: path, SaveSeedOnClose: true})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("persist ", 100000))
	c.Compress(Task{Key: "k", Data: data})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := seed.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ModelCoef) == 0 {
		t.Error("evolved model not persisted")
	}
}

func TestManySmallTasks(t *testing.T) {
	c := newClient(t, Config{})
	data := stats.GenBuffer(stats.TypeInt, stats.Normal, 64<<10, 9)
	for i := 0; i < 50; i++ {
		key := "task-" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Tasks != 50 {
		t.Errorf("tasks %d", s.Tasks)
	}
	if s.MemoHits == 0 {
		t.Error("repeated identical tasks should hit the DP memo")
	}
}
