package hcompress

// This file is the shard's face of the read accelerator
// (internal/readcache): the cache-hit fast path shared by Decompress and
// DecompressBatch, the background access-pattern prefetcher, and the
// CacheStats surface. The cache itself — admission, refcounting, LRU,
// invalidation tokens — lives in internal/readcache; everything here is
// wiring it into the pipeline's lifecycle, telemetry, and fanout pool.

import (
	"context"
	"time"

	"hcompress/internal/bufpool"
	"hcompress/internal/fanout"
	"hcompress/internal/manager"
	"hcompress/internal/readcache"
	"hcompress/internal/telemetry"
)

// cacheGet is the telemetry-free core of the hit path: look key up,
// record the access (feeding admission counts and the prefetcher's
// ring), and on a hit assemble a report sharing the cached buffer under
// a refcount pin. A hit costs zero virtual seconds and never touches the
// manager, the store, or the predictor. Called with c.mu read-held and
// c.cache non-nil.
func (c *Shard) cacheGet(key string) (*Report, readcache.Meta, bool) {
	data, meta, release, ok := c.cache.Get(key)
	if !ok {
		return nil, meta, false
	}
	rep := &Report{
		Key:           key,
		OriginalBytes: meta.Size,
		StoredBytes:   meta.Stored,
		DataType:      meta.DataType,
		Distribution:  meta.Distribution,
		Data:          data,
		CacheHit:      true,
		release:       release,
	}
	if meta.Stored > 0 {
		rep.Ratio = float64(meta.Size) / float64(meta.Stored)
	}
	return rep, meta, true
}

// cacheHit is cacheGet plus the single-op telemetry contract: op
// counters, the cache-hit span tree, and slow-op sampling — what
// DecompressContext needs to serve a hit as a complete operation.
func (c *Shard) cacheHit(ctx context.Context, key string, wall time.Time) (*Report, bool) {
	rep, meta, ok := c.cacheGet(key)
	c.kickPrefetch()
	if !ok {
		return nil, false
	}
	if c.tel != nil {
		wallSecs := time.Since(wall).Seconds()
		c.cm.ops["decompress"].Inc()
		c.cm.opSeconds["decompress"].Observe(wallSecs)
		ri := c.reqInfo(ctx)
		c.cacheHitTrace(ri, key, meta)
		if c.slow.shouldRecord(wallSecs) {
			// Zero virtual anatomy: a hit is off the modeled timeline.
			c.slowOp(ri, "decompress", key, manager.Result{Stored: meta.Stored}, wallSecs, 0, 0, false, false, nil)
		}
	}
	return rep, true
}

// cacheHitTrace emits the hit's span tree: a zero-width root at the
// current virtual time with a single zero-width "cache" leaf — the op
// consumed no modeled time, walked no tiers, and ran no codec, and the
// trace says exactly that.
func (c *Shard) cacheHitTrace(ri telemetry.ReqInfo, key string, meta readcache.Meta) {
	if c.sink == nil {
		return
	}
	now := c.clock.Now()
	spans := [2]TraceSpan{
		{Record: "span", Trace: ri.ID, Span: 1, Tenant: ri.Tenant, Class: ri.Class,
			Op: "decompress", Key: key, Stage: "op",
			VStart: now, VEnd: now, StoredBytes: meta.Stored},
		{Record: "span", Trace: ri.ID, Span: 2, Parent: 1, Tenant: ri.Tenant, Class: ri.Class,
			Op: "decompress", Key: key, Stage: "cache",
			VStart: now, VEnd: now, Bytes: meta.Size},
	}
	c.sink.EmitBatch(func(buf []byte) []byte {
		for i := range spans {
			buf = append(spans[i].AppendJSON(buf), '\n')
		}
		return buf
	})
}

// kickPrefetch nudges the prefetch worker after an access; non-blocking
// (the capacity-1 channel coalesces bursts) and a no-op when prefetch is
// off.
func (c *Shard) kickPrefetch() {
	if c.prefetchKick == nil {
		return
	}
	select {
	case c.prefetchKick <- struct{}{}:
	default:
	}
}

// prefetchLoop is the background prefetch/promotion worker: woken by read
// traffic, it mines the cache's access ring for repeated-key and
// sequential-run patterns and decompresses the predicted keys into the
// cache ahead of demand. Its decompression fans out at Batch class, so
// Interactive operations always claim pool workers first — prefetch can
// never starve the demand path. Like the demoter it never takes c.mu:
// Close stops it (and cancels any in-flight fill) before tearing down the
// pool and store.
func (c *Shard) prefetchLoop(depth int) {
	defer close(c.prefetchDone)
	ctx, cancel := context.WithCancel(fanout.WithClass(context.Background(), fanout.Batch))
	defer cancel()
	go func() {
		<-c.prefetchStop
		cancel()
	}()
	const maxPerPass = 8
	for {
		select {
		case <-c.prefetchStop:
			return
		case <-c.prefetchKick:
		}
		for _, key := range c.cache.Candidates(maxPerPass, depth) {
			select {
			case <-c.prefetchStop:
				return
			default:
			}
			c.prefetchOne(ctx, key)
		}
	}
}

// prefetchOne warms one predicted key: an untimed read through the
// manager (no tier lane, no virtual time, no predictor feedback — the
// modeled timeline cannot see speculation) committed into the cache.
// Sequential predictions routinely run past the last written key, so a
// nonexistent key is simply not a candidate rather than a failure.
func (c *Shard) prefetchOne(ctx context.Context, key string) {
	if _, _, ok := c.mgr.TaskInfo(key); !ok {
		return
	}
	f := c.cache.BeginPrefetch(key)
	if f == nil {
		return
	}
	data, stored, attr, err := c.mgr.ReadDataCtx(ctx, c.clock.Now(), key)
	if err != nil {
		c.cache.Abort(f, ctx.Err() != nil)
		return
	}
	if _, ok := c.cache.Commit(f, data, readcache.Meta{
		Size: int64(len(data)), Stored: stored,
		DataType: attr.Type.String(), Distribution: attr.Dist.String(),
	}); !ok {
		bufpool.Put(data) // aborted mid-read or no room: the bytes never cache
	}
}

// CacheStats is the read accelerator's counter snapshot: occupancy,
// hit/miss/admission traffic, and the prefetcher's issue/use accounting.
// The same numbers are exported as hc_cache_* / hc_prefetch_* metrics
// when telemetry is on; this typed surface (Client.CacheStats,
// Router.CacheStats, hctool -cache) works either way.
type CacheStats = readcache.Stats

// CacheStats snapshots the shard's read-cache counters. All-zero when
// the cache is disabled (ReadCacheFraction 0).
func (c *Shard) CacheStats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.cache == nil {
		return CacheStats{}
	}
	return c.cache.Stats()
}
