package hcompress

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// scarceTiers puts a tiny RAM tier ahead of slow media so the engine has
// a reason to compress (and occasionally spill) — the regime in which
// every telemetry surface has something to report.
func scarceTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 256 << 10, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
	}
}

// telemetryWorkload runs a fixed mixed read/write/delete sequence whose
// payloads are deterministic.
func telemetryWorkload(t *testing.T, c *Client) {
	t.Helper()
	for i := 0; i < 6; i++ {
		data := []byte(strings.Repeat(fmt.Sprintf("tiered storage block %d. ", i), 4000+500*i))
		if _, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil {
			t.Fatalf("compress k%d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Decompress(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("decompress k%d: %v", i, err)
		}
	}
	if err := c.Delete("k5"); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDeterminismAcrossParallelism is the acceptance gate for the
// JSONL export: spans carry virtual-clock timestamps only, so the same
// serial workload must produce byte-identical traces whether the fanout
// pool has one worker or eight. Modeled oracle: the real one measures
// wall clocks, which no amount of virtual bookkeeping can make stable.
func TestTraceDeterminismAcrossParallelism(t *testing.T) {
	run := func(parallelism int) []byte {
		var buf bytes.Buffer
		c, err := New(Config{
			Tiers:       scarceTiers(),
			Parallelism: parallelism,
			TraceWriter: &buf,
			modeled:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		telemetryWorkload(t, c)
		return buf.Bytes()
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("no trace output")
	}
	for _, parallelism := range []int{4, 8} {
		if fanned := run(parallelism); !bytes.Equal(serial, fanned) {
			t.Fatalf("trace differs between Parallelism 1 and %d:\n-- serial --\n%s\n-- fanned --\n%s",
				parallelism, serial, fanned)
		}
	}
	// Every line must be valid JSON with a record discriminator.
	for _, line := range bytes.Split(bytes.TrimSpace(serial), []byte("\n")) {
		var rec struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Record != "span" && rec.Record != "audit" {
			t.Fatalf("unknown record kind %q", rec.Record)
		}
	}
}

// TestMetricsEndpoint drives the workload against a live listener and
// asserts the Prometheus exposition carries the acceptance-listed series:
// per-tier byte counters, per-codec ratio histograms, HCDP memo traffic,
// and CCP prediction-error summaries. Also checks /debug/vars.
func TestMetricsEndpoint(t *testing.T) {
	c := newClient(t, Config{
		Tiers:            scarceTiers(),
		MetricsAddr:      "127.0.0.1:0",
		FeedbackInterval: 1, // absorb feedback per-op so relerr histograms populate
	})
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("no metrics listener bound")
	}
	telemetryWorkload(t, c)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`hc_tier_put_bytes_total{tier="ram"}`,
		`hc_tier_put_ops_total{tier=`,
		`hc_codec_ratio_bucket{codec=`,
		`hc_codec_in_bytes_total{codec=`,
		"hc_hcdp_memo_hits_total",
		"hc_hcdp_memo_misses_total",
		`hc_ccp_pred_relerr_bucket{codec=`,
		`hc_client_op_seconds_bucket{op="compress",le=`,
		`hc_client_ops_total{op="compress"} 6`,
		`hc_client_ops_total{op="decompress"} 4`,
		`hc_client_ops_total{op="delete"} 1`,
		"hc_tier_capacity_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(vars, []byte(`"hcompress"`)) {
		t.Error("/debug/vars missing hcompress aggregate")
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(vars, &decoded); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
}

// TestSnapshotAndAudits exercises the typed surfaces: the metric
// snapshot keyed by canonical series name and the decision-audit ring.
func TestSnapshotAndAudits(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), EnableTelemetry: true})
	data := []byte(strings.Repeat("audited block of text data. ", 8000))
	rep, err := c.Compress(Task{Key: "a", Data: data})
	if err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	if got := snap.Counters[`hc_client_ops_total{op="compress"}`]; got != 1 {
		t.Errorf("ops counter %d", got)
	}
	h, ok := snap.Histograms[`hc_client_op_seconds{op="compress"}`]
	if !ok || h.Count != 1 || h.Sum <= 0 {
		t.Errorf("op latency histogram %+v ok=%v", h, ok)
	}
	if snap.Gauges[`hc_tier_capacity_bytes{tier="ram"}`] != float64(256<<10) {
		t.Error("capacity gauge missing or wrong")
	}

	audits := c.Audits()
	if len(audits) != len(rep.SubTasks) {
		t.Fatalf("%d audits for %d sub-tasks", len(audits), len(rep.SubTasks))
	}
	for i, a := range audits {
		st := rep.SubTasks[i]
		if a.Codec != st.Codec || a.Tier != st.Tier {
			t.Errorf("audit %d (%s@%s) disagrees with report (%s@%s)", i, a.Codec, a.Tier, st.Codec, st.Tier)
		}
		if a.OrigBytes != st.OriginalBytes || a.StoredBytes != st.StoredBytes {
			t.Errorf("audit %d bytes mismatch", i)
		}
		if a.PredBytes != st.PredictedBytes || a.PredSeconds != st.PredictedSeconds {
			t.Errorf("audit %d predictions disagree with report", i)
		}
		if math.IsNaN(a.SizeErr) || math.IsInf(a.SizeErr, 0) || math.IsNaN(a.TimeErr) || math.IsInf(a.TimeErr, 0) {
			t.Errorf("audit %d non-finite errors: %v %v", i, a.SizeErr, a.TimeErr)
		}
	}
	if again := c.Audits(); len(again) != 0 {
		t.Errorf("Audits did not drain: %d left", len(again))
	}
}

// TestAuditRingBound checks the overflow policy: the ring keeps the
// newest AuditLogSize records.
func TestAuditRingBound(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers(), EnableTelemetry: true, AuditLogSize: 3})
	for i := 0; i < 5; i++ {
		data := []byte(strings.Repeat(fmt.Sprintf("ring %d. ", i), 2000))
		if _, err := c.Compress(Task{Key: fmt.Sprintf("r%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	audits := c.Audits()
	if len(audits) > 3 {
		t.Fatalf("ring exceeded cap: %d", len(audits))
	}
	if len(audits) == 0 || audits[len(audits)-1].Key != "r4" {
		t.Fatalf("ring should keep newest records, got %+v", audits)
	}
}

// TestReportPredictedCosts checks the satellite: write reports carry the
// engine's predicted size and duration next to the actuals.
func TestReportPredictedCosts(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers()})
	data := []byte(strings.Repeat("predicted versus actual. ", 8000))
	rep, err := c.Compress(Task{Key: "p", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PredictedSeconds <= 0 {
		t.Errorf("task PredictedSeconds %v", rep.PredictedSeconds)
	}
	for i, st := range rep.SubTasks {
		if st.PredictedBytes <= 0 {
			t.Errorf("sub-task %d PredictedBytes %d", i, st.PredictedBytes)
		}
		if st.PredictedSeconds <= 0 {
			t.Errorf("sub-task %d PredictedSeconds %v", i, st.PredictedSeconds)
		}
	}
	// Reads execute the stored schema; they carry no fresh predictions.
	back, err := c.Decompress("p")
	if err != nil {
		t.Fatal(err)
	}
	if back.PredictedSeconds != 0 {
		t.Errorf("read PredictedSeconds %v, want 0", back.PredictedSeconds)
	}
}

// TestTelemetryOff pins the zero-overhead contract: with no telemetry
// surface requested, every observability accessor degrades to an empty
// (but usable) result and the pipeline carries no instruments.
func TestTelemetryOff(t *testing.T) {
	c := newClient(t, Config{Tiers: scarceTiers()})
	if c.tel != nil || c.sink != nil {
		t.Fatal("telemetry constructed despite being off")
	}
	if _, err := c.Compress(Task{Key: "off", Data: bytes.Repeat([]byte("x"), 4096)}); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Error("Snapshot maps must be non-nil")
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("Snapshot should be empty with telemetry off")
	}
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("WriteMetrics wrote %d bytes with telemetry off", buf.Len())
	}
	if got := c.Audits(); len(got) != 0 {
		t.Error("Audits non-empty with telemetry off")
	}
	if c.MetricsAddr() != "" {
		t.Error("MetricsAddr non-empty without a listener")
	}
}

// TestTelemetryConcurrent hammers a telemetry-enabled client from many
// goroutines while scraping snapshots and expositions — the race-clean
// acceptance check for the instrumented pipeline (run under -race).
func TestTelemetryConcurrent(t *testing.T) {
	var trace bytes.Buffer
	c := newClient(t, Config{
		Tiers:            scarceTiers(),
		EnableTelemetry:  true,
		TraceWriter:      &syncWriter{w: &trace},
		FeedbackInterval: 2,
	})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := []byte(strings.Repeat(fmt.Sprintf("worker %d payload. ", w), 3000))
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
					t.Errorf("compress %s: %v", key, err)
					return
				}
				if _, err := c.Decompress(key); err != nil {
					t.Errorf("decompress %s: %v", key, err)
					return
				}
				if i%2 == 1 {
					if err := c.Delete(key); err != nil {
						t.Errorf("delete %s: %v", key, err)
						return
					}
				}
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = c.Snapshot()
			_ = c.WriteMetrics(io.Discard)
			_ = c.Audits()
		}
	}()
	wg.Wait()

	snap := c.Snapshot()
	if got := snap.Counters[`hc_client_ops_total{op="compress"}`]; got != workers*5 {
		t.Errorf("compress ops %d, want %d", got, workers*5)
	}
	if got := snap.Counters[`hc_client_ops_total{op="decompress"}`]; got != workers*5 {
		t.Errorf("decompress ops %d, want %d", got, workers*5)
	}
}

// syncWriter makes a bytes.Buffer safe for the concurrent test; the
// Sink serializes its own writes, but the buffer is also read by the
// test after Wait, so belt and braces.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
