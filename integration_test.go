package hcompress

// Integration tests exercising cross-component flows: the full
// IA -> CCP -> HCDP -> CM -> SHI pipeline under churn, priority switches
// mid-stream, capacity exhaustion and recovery, and header-driven
// decompression of data written under different policies.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hcompress/internal/stats"
	"hcompress/internal/workload"
)

func tinyTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 1 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "nvme", CapacityBytes: 4 << 20, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2},
		{Name: "pfs", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
	}
}

func TestIntegrationChurn(t *testing.T) {
	// Write/read/delete churn across data classes with tiny tiers: every
	// byte must survive, capacity must never leak.
	c := newClient(t, Config{Tiers: tinyTiers()})
	rng := rand.New(rand.NewSource(42))
	live := map[string][]byte{}
	for i := 0; i < 120; i++ {
		switch {
		case len(live) < 3 || rng.Intn(3) > 0:
			key := fmt.Sprintf("churn-%d", i)
			dt := stats.AllTypes()[rng.Intn(4)]
			d := stats.AllDists()[rng.Intn(4)]
			data := stats.GenBuffer(dt, d, rng.Intn(1<<20)+1024, int64(i))
			if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
			live[key] = data
		default:
			for key, want := range live {
				rep, err := c.Decompress(key)
				if err != nil {
					t.Fatalf("op %d read %s: %v", i, key, err)
				}
				if !bytes.Equal(rep.Data, want) {
					t.Fatalf("op %d: %s corrupted", i, key)
				}
				if rng.Intn(2) == 0 {
					if err := c.Delete(key); err != nil {
						t.Fatal(err)
					}
					delete(live, key)
				}
				break
			}
		}
	}
	// Verify every survivor, then drain.
	for key, want := range live {
		rep, err := c.Decompress(key)
		if err != nil || !bytes.Equal(rep.Data, want) {
			t.Fatalf("final verify %s: %v", key, err)
		}
		if err := c.Delete(key); err != nil {
			t.Fatal(err)
		}
	}
	for _, ts := range c.Status() {
		if ts.UsedBytes != 0 {
			t.Errorf("tier %s leaked %d bytes", ts.Name, ts.UsedBytes)
		}
	}
}

func TestIntegrationPrioritySwitchPreservesOldData(t *testing.T) {
	// Data written under one priority must decompress after the priority
	// changes: the sub-task headers, not the engine state, drive reads.
	c := newClient(t, Config{Tiers: tinyTiers()})
	data := stats.GenBuffer(stats.TypeText, stats.Normal, 2<<20, 7)
	if _, err := c.Compress(Task{Key: "before", Data: data}); err != nil {
		t.Fatal(err)
	}
	c.SetPriorities(PriorityArchival)
	if _, err := c.Compress(Task{Key: "after", Data: data}); err != nil {
		t.Fatal(err)
	}
	c.SetPriorities(PriorityAsync)
	for _, key := range []string{"before", "after"} {
		rep, err := c.Decompress(key)
		if err != nil || !bytes.Equal(rep.Data, data) {
			t.Fatalf("%s: %v", key, err)
		}
	}
}

func TestIntegrationCapacityExhaustionRecovers(t *testing.T) {
	// Fill the hierarchy until writes fail, then delete and confirm the
	// client recovers.
	c := newClient(t, Config{Tiers: []TierSpec{
		{Name: "only", CapacityBytes: 4 << 20, LatencySec: 1e-6, BandwidthBps: 1e9, Lanes: 1},
	}})
	data := stats.GenBuffer(stats.TypeBinary, stats.Uniform, 1<<20, 3) // incompressible
	var keys []string
	var failed bool
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("fill-%d", i)
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			failed = true
			break
		}
		keys = append(keys, key)
	}
	if !failed {
		t.Fatal("hierarchy never filled")
	}
	if len(keys) == 0 {
		t.Fatal("nothing written before exhaustion")
	}
	for _, k := range keys {
		if err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Compress(Task{Key: "recovered", Data: data}); err != nil {
		t.Fatalf("client did not recover after deletes: %v", err)
	}
}

func TestIntegrationVPICContainerFlow(t *testing.T) {
	// The vpic example's flow as a test: h5lite containers through the
	// public API with self-described hints, read back and re-parsed.
	c := newClient(t, Config{
		Tiers:      tinyTiers(),
		Priorities: Priorities{CompressionSpeed: 0.5, Ratio: 0.5},
	})
	cfg := workload.PaperVPIC(1, 3)
	for step := 0; step < 3; step++ {
		buf, err := cfg.GenStepBuffer(0, step, 8192)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Compress(Task{
			Key: fmt.Sprintf("ckpt-%d", step), Data: buf,
			DataType: "float", Distribution: "gamma",
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DataType != "float" {
			t.Errorf("hint not honored: %s", rep.DataType)
		}
		back, err := c.Decompress(fmt.Sprintf("ckpt-%d", step))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Data, buf) {
			t.Fatalf("step %d corrupted", step)
		}
	}
}

func TestIntegrationQuickRoundTrip(t *testing.T) {
	// Property: any non-empty byte slice survives the full pipeline.
	c := newClient(t, Config{Tiers: tinyTiers()})
	n := 0
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		n++
		key := fmt.Sprintf("q-%d", n)
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		rep, err := c.Decompress(key)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		ok := bytes.Equal(rep.Data, data)
		c.Delete(key)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationVirtualTimeMonotonic(t *testing.T) {
	c := newClient(t, Config{Tiers: tinyTiers()})
	data := stats.GenBuffer(stats.TypeInt, stats.Gamma, 256<<10, 1)
	prev := 0.0
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("t-%d", i)
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Fatal(err)
		}
		now := c.Stats().VirtualSeconds
		if now <= prev {
			t.Fatalf("virtual clock not monotonic: %v -> %v", prev, now)
		}
		prev = now
		c.Delete(key)
	}
}

func TestIntegrationFeedbackImprovesAccuracy(t *testing.T) {
	// After a stream of similar tasks, the CCP should be reporting high
	// accuracy on its own predictions.
	c := newClient(t, Config{Tiers: tinyTiers(), FeedbackInterval: 8})
	data := stats.GenBuffer(stats.TypeText, stats.Uniform, 512<<10, 5)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("fb-%d", i)
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompress(key); err != nil {
			t.Fatal(err)
		}
		c.Delete(key)
	}
	s := c.Stats()
	if s.FeedbackAbsorbed == 0 {
		t.Fatal("no feedback absorbed")
	}
	if raceDetectorEnabled {
		// Race instrumentation inflates measured codec times ~10x past
		// what the builtin seed profiled, so the accuracy threshold is
		// meaningless here (it fails identically on the pre-pipeline
		// code). The feedback-absorbed check above still holds.
		t.Logf("model accuracy %.2f under -race (threshold skipped)", s.ModelAccuracy)
	} else if s.ModelAccuracy < 0.5 {
		t.Errorf("model accuracy %.2f after consistent workload", s.ModelAccuracy)
	}
}
