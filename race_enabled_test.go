//go:build race

package hcompress

// raceEnabled reports that this binary was built with -race, which
// deliberately randomizes sync.Pool reuse and so breaks allocation
// accounting.
const raceEnabled = true
