package hcompress

// Client is the backward-compatible single-tenant handle: a Router with
// exactly one Shard, with that shard embedded so every pipeline method
// (Compress, Decompress, the batch APIs, Status, Stats, Close, ...)
// resolves directly against it. A one-shard router routes every key to
// shard 0, so delegating straight to the shard is the same computation
// with the hash skipped — New's Client is behaviourally and
// trace-byte-identical to the pre-sharding client (gated by
// TestClientFacadeEquivalence).
//
// Scaling beyond one shard is NewRouter (key-routed shards, aggregate
// views) and internal/service (multi-tenant network front-end); Client
// stays the simple embedded-library face.
type Client struct {
	*Shard
	router *Router
}

// New initializes HCompress — the work the paper performs when
// intercepting MPI_Init: load the seed, build the component stack, and
// prepare the codec pool. The returned Client is a one-shard Router; use
// NewRouter directly for key-routed multi-shard operation.
func New(cfg Config) (*Client, error) {
	r, err := NewRouter(cfg, 1)
	if err != nil {
		return nil, err
	}
	return &Client{Shard: r.Shard(0), router: r}, nil
}

// Router exposes the underlying single-shard router, so a Client can be
// handed to anything (the service front-end, hcbench) that drives a
// Router.
func (c *Client) Router() *Router { return c.router }
