package hcompress

import (
	"errors"
	"fmt"
	"sync"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("hcompress: client is closed")

// Task is one I/O request: the paper's "data buffer, operation tuple".
// The operation is selected by the Client method (Compress writes,
// Decompress reads).
type Task struct {
	// Key names the task; Decompress retrieves by the same key.
	Key string
	// Data is the uncompressed payload.
	Data []byte
	// DataType optionally overrides type detection ("int", "float",
	// "text", "binary") — the self-described fast path.
	DataType string
	// Distribution optionally overrides distribution detection
	// ("uniform", "normal", "exponential", "gamma").
	Distribution string
}

// SubTaskReport describes one placed sub-task.
type SubTaskReport struct {
	Tier          string
	Codec         string
	OriginalBytes int64
	StoredBytes   int64
}

// Report summarizes one executed task.
type Report struct {
	Key            string
	OriginalBytes  int64
	StoredBytes    int64
	Ratio          float64 // original over stored (>= "1" modulo headers)
	VirtualSeconds float64 // modeled task duration (codec + tiered I/O)
	CodecSeconds   float64 // compression or decompression time
	IOSeconds      float64 // modeled storage time
	DataType       string  // what the Input Analyzer saw
	Distribution   string
	SubTasks       []SubTaskReport
	// Data carries the reassembled payload on Decompress.
	Data []byte
}

// Client is the HCompress library handle: the public face of the IA, CCP,
// SM, HCDP engine, and Compression Manager pipeline. It is safe for
// concurrent use.
type Client struct {
	mu     sync.Mutex
	closed bool

	hier  tier.Hierarchy
	sd    *seed.Seed
	pred  *predictor.CCP
	mon   *monitor.SystemMonitor
	eng   *core.Engine
	mgr   *manager.Manager
	st    *store.Store
	clock float64 // virtual time

	seedPath string
	saveSeed bool
}

// New initializes HCompress — the work the paper performs when
// intercepting MPI_Init: load the seed, build the component stack, and
// prepare the codec pool.
func New(cfg Config) (*Client, error) {
	h, err := cfg.hierarchy()
	if err != nil {
		return nil, err
	}
	var sd *seed.Seed
	if cfg.SeedPath != "" {
		sd, err = seed.Load(cfg.SeedPath)
		if err != nil {
			return nil, err
		}
	} else {
		sd = seed.Builtin(h)
	}
	if cfg.FeedbackInterval > 0 {
		sd.FeedbackInterval = cfg.FeedbackInterval
	}
	st, err := store.New(h, true)
	if err != nil {
		return nil, err
	}
	pred := predictor.New(sd)
	mon := monitor.New(st, cfg.MonitorIntervalSec)
	eng, err := core.New(pred, mon, core.Config{
		Weights:            cfg.Priorities.toWeights(),
		DisableCompression: cfg.DisableCompression,
		Codecs:             cfg.Codecs,
	})
	if err != nil {
		return nil, err
	}
	return &Client{
		hier:     h,
		sd:       sd,
		pred:     pred,
		mon:      mon,
		eng:      eng,
		mgr:      manager.New(st, pred, manager.RealOracle{}),
		st:       st,
		seedPath: cfg.SeedPath,
		saveSeed: cfg.SaveSeedOnClose && cfg.SeedPath != "",
	}, nil
}

func (c *Client) attrFor(t Task) analyzer.Result {
	var hint analyzer.Hint
	if dt, ok := stats.TypeByName(t.DataType); ok && t.DataType != "" {
		hint.Type = &dt
	}
	if d, ok := stats.DistByName(t.Distribution); ok && t.Distribution != "" {
		hint.Dist = &d
	}
	return analyzer.AnalyzeWithHint(t.Data, &hint)
}

// Compress analyzes the task, plans a compression + placement schema with
// the HCDP engine, and executes it against the tiered store.
func (c *Client) Compress(t Task) (*Report, error) {
	if t.Key == "" {
		return nil, errors.New("hcompress: task key required")
	}
	if len(t.Data) == 0 {
		return nil, errors.New("hcompress: empty task data")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	attr := c.attrFor(t)
	size := int64(len(t.Data))
	schema, err := c.eng.Plan(c.clock, attr, size)
	if err != nil {
		return nil, fmt.Errorf("hcompress: planning %q: %w", t.Key, err)
	}
	res, err := c.mgr.ExecuteWrite(c.clock, t.Key, t.Data, size, attr, schema)
	if err != nil {
		// The monitor's view may have been stale; refresh and replan once.
		c.mon.ForceRefresh()
		schema, err2 := c.eng.Plan(c.clock, attr, size)
		if err2 != nil {
			return nil, fmt.Errorf("hcompress: replanning %q: %w (after %v)", t.Key, err2, err)
		}
		res, err = c.mgr.ExecuteWrite(c.clock, t.Key, t.Data, size, attr, schema)
		if err != nil {
			return nil, fmt.Errorf("hcompress: executing %q: %w", t.Key, err)
		}
	}
	start := c.clock
	c.clock = res.End
	return c.report(t.Key, size, attr, res, start), nil
}

// Decompress reads back the task stored under key, decoding each
// sub-task's metadata header to select the decompression library.
func (c *Client) Decompress(key string) (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	size, ok := c.mgr.TaskSize(key)
	if !ok {
		return nil, fmt.Errorf("hcompress: unknown task %q", key)
	}
	res, err := c.mgr.ExecuteRead(c.clock, key)
	if err != nil {
		return nil, err
	}
	start := c.clock
	c.clock = res.End
	rep := c.report(key, size, analyzer.Result{}, res, start)
	rep.Data = res.Data
	rep.DataType = ""
	rep.Distribution = ""
	return rep, nil
}

func (c *Client) report(key string, size int64, attr analyzer.Result, res manager.Result, start float64) *Report {
	rep := &Report{
		Key:            key,
		OriginalBytes:  size,
		StoredBytes:    res.Stored,
		VirtualSeconds: res.End - start,
		CodecSeconds:   res.CodecTime,
		IOSeconds:      res.IOTime,
		DataType:       attr.Type.String(),
		Distribution:   attr.Dist.String(),
	}
	if res.Stored > 0 {
		rep.Ratio = float64(size) / float64(res.Stored)
	}
	for _, sr := range res.SubResults {
		name := "?"
		if cdc, err := codec.ByID(sr.Codec); err == nil {
			name = cdc.Name()
		}
		rep.SubTasks = append(rep.SubTasks, SubTaskReport{
			Tier:          c.hier.Tiers[sr.Tier].Name,
			Codec:         name,
			OriginalBytes: sr.OrigLen,
			StoredBytes:   sr.Stored,
		})
	}
	return rep
}

// Delete removes a stored task and frees its tier capacity.
func (c *Client) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.mgr.Delete(key)
}

// SetPriorities changes the cost weighting at runtime (§IV-F2).
func (c *Client) SetPriorities(p Priorities) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.SetWeights(p.toWeights())
}

// TierStatusReport is the System Monitor's public view of one tier.
type TierStatusReport struct {
	Name           string
	CapacityBytes  int64
	UsedBytes      int64
	RemainingBytes int64
	QueueLength    int
}

// Status reports the hierarchy's occupancy.
func (c *Client) Status() []TierStatusReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []TierStatusReport
	for _, s := range c.st.Status(c.clock) {
		out = append(out, TierStatusReport{
			Name:           s.Name,
			CapacityBytes:  s.Capacity,
			UsedBytes:      s.Used,
			RemainingBytes: s.Remaining,
			QueueLength:    s.QueueLen,
		})
	}
	return out
}

// Stats exposes runtime counters for observability.
type Stats struct {
	// ModelAccuracy is the CCP's running prediction accuracy in [0, 1]
	// (the paper's "accuracy (R2)").
	ModelAccuracy float64
	// FeedbackQueued and FeedbackAbsorbed count feedback-loop events.
	FeedbackQueued   int
	FeedbackAbsorbed int
	// MemoHits / MemoMisses describe the HCDP engine's DP cache.
	MemoHits   int64
	MemoMisses int64
	// VirtualSeconds is the client's modeled elapsed time.
	VirtualSeconds float64
	// Tasks is the number of live stored tasks.
	Tasks int
}

// Stats snapshots runtime counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, a := c.pred.Stats()
	h, m := c.eng.MemoStats()
	return Stats{
		ModelAccuracy:    c.pred.R2(),
		FeedbackQueued:   q,
		FeedbackAbsorbed: a,
		MemoHits:         h,
		MemoMisses:       m,
		VirtualSeconds:   c.clock,
		Tasks:            c.mgr.Tasks(),
	}
}

// Close finalizes the client — the MPI_Finalize hook in the paper: flush
// the feedback loop, optionally persist the evolved model back to the
// JSON seed, and release in-memory structures.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.pred.Flush()
	if c.saveSeed {
		c.sd.ModelCoef = c.pred.SnapshotCoef()
		if err := c.sd.Save(c.seedPath); err != nil {
			return err
		}
	}
	c.st.Reset()
	return nil
}
