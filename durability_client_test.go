package hcompress

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func durableCfg(dir string) Config {
	return Config{
		Tiers: []TierSpec{
			// Both tiers file-backed so every piece of every task survives a
			// reopen regardless of how the planner split it.
			{Name: "fast", CapacityBytes: 1 << 30, LatencySec: 1e-5, BandwidthBps: 4e9, Lanes: 4,
				Backend: "file", CostPerGBMonth: 1.0},
			{Name: "nvme", CapacityBytes: 64 << 30, LatencySec: 1e-4, BandwidthBps: 2e9, Lanes: 4,
				Backend: "file", CostPerGBMonth: 0.30},
		},
		DataDir: dir,
	}
}

// TestFileBackedTierSurvivesClientReopen drives the public API end to
// end: compress onto file-backed tiers, close the client, reopen over
// the same DataDir, and require the payloads to come back readable —
// the schemas are rebuilt from the self-identifying on-media sub-task
// headers — with the same bytes charged against the capacity ledgers,
// and Delete to drain every journal index back to zero.
func TestFileBackedTierSurvivesClientReopen(t *testing.T) {
	dir := t.TempDir()
	c := newClient(t, durableCfg(dir))
	payloads := map[string][]byte{}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		payloads[k] = []byte(strings.Repeat(fmt.Sprintf("durable tiered compression %d. ", i), 4000))
		if _, err := c.Compress(Task{Key: k, Data: payloads[k]}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status()
	var used [2]int64
	for i, ts := range st {
		if ts.Backend != "file" {
			t.Fatalf("tier %d backend = %q, want file", i, ts.Backend)
		}
		used[i] = ts.UsedBytes
	}
	if used[0]+used[1] == 0 {
		t.Fatal("nothing stored; the test proves nothing")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newClient(t, durableCfg(dir))
	st2 := c2.Status()
	for i, ts := range st2 {
		if ts.UsedBytes != used[i] {
			t.Fatalf("tier %d recovered %d bytes, want %d", i, ts.UsedBytes, used[i])
		}
	}
	for k, want := range payloads {
		rep, err := c2.Decompress(k)
		if err != nil {
			t.Fatalf("decompress %s after reopen: %v", k, err)
		}
		if !bytes.Equal(rep.Data, want) {
			t.Fatalf("payload mismatch for %s after reopen", k)
		}
		rep.Release()
	}
	for k := range payloads {
		if err := c2.Delete(k); err != nil {
			t.Fatalf("delete %s after reopen: %v", k, err)
		}
	}
	for i, ts := range c2.Status() {
		if ts.UsedBytes != 0 {
			t.Fatalf("tier %d holds %d bytes after deleting every recovered task", i, ts.UsedBytes)
		}
	}
}

// TestRecoveredOrphanPiecesReclaimed covers the split-task boundary: a
// task striped across a volatile tier and a durable one loses its
// volatile pieces in a restart, so the surviving durable pieces are
// unreadable. Reopen must reclaim them — not strand the bytes against
// the capacity ledger forever — and report the task as not found.
func TestRecoveredOrphanPiecesReclaimed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tiers: []TierSpec{
			{Name: "ram", CapacityBytes: 64 << 10, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "nvme", CapacityBytes: 64 << 30, LatencySec: 1e-4, BandwidthBps: 2e9, Lanes: 4,
				Backend: "file", CostPerGBMonth: 0.30},
		},
		DataDir: dir,
	}
	c := newClient(t, cfg)
	data := []byte(strings.Repeat("striped across volatile and durable tiers. ", 12000))
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st[1].UsedBytes == 0 {
		t.Fatal("nothing spilled to the durable tier; the test proves nothing")
	}
	split := st[0].UsedBytes > 0 // did the task leave a piece on the volatile tier?
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newClient(t, cfg)
	st2 := c2.Status()
	if st2[0].UsedBytes != 0 {
		t.Fatalf("volatile tier recovered %d bytes, want 0", st2[0].UsedBytes)
	}
	rep, err := c2.Decompress("k")
	if split {
		// The volatile pieces are gone: the task must be gone too, and the
		// durable leftovers reclaimed rather than stranded.
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("decompress of a partially lost task: err = %v, want ErrNotFound", err)
		}
		if got := c2.Status()[1].UsedBytes; got != 0 {
			t.Fatalf("durable tier strands %d bytes of an unreadable task", got)
		}
	} else {
		// The whole task lived on the durable tier: it must read back.
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep.Data, data) {
			t.Fatal("payload mismatch after reopen")
		}
		rep.Release()
	}
}

// TestCloudTierConfig exercises the public cloud-tier preset through the
// client constructor and the Priorities.Cost pass-through.
func TestCloudTierConfig(t *testing.T) {
	tiers := DefaultTiers()
	tiers = append(tiers, CloudTierSpec(1<<40))
	c := newClient(t, Config{
		Tiers:      tiers,
		Priorities: Priorities{CompressionSpeed: 0.3, DecompressionSpeed: 0.3, Ratio: 0.3, Cost: 0.1},
	})
	data := []byte(strings.Repeat("cloud floor under the hierarchy. ", 4000))
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("round-trip mismatch with a cloud tier configured")
	}
	st := c.Status()
	if got := st[len(st)-1].Backend; got != "cloud" {
		t.Fatalf("last tier backend = %q, want cloud", got)
	}
}
