package hcompress

import (
	"fmt"

	"hcompress/internal/hcerr"
)

// The typed error taxonomy. Every sentinel is shared with the internal
// layers (the same errors.New values, re-exported), so a failure
// classified at the Storage Hardware Interface keeps its identity all
// the way to the caller: match with errors.Is / errors.As instead of
// parsing messages.
var (
	// ErrTierOffline marks a sticky tier failure: the device is down and
	// the operation could not be satisfied elsewhere.
	ErrTierOffline = hcerr.ErrTierOffline
	// ErrNoCapacity marks a placement that fit no tier.
	ErrNoCapacity = hcerr.ErrNoCapacity
	// ErrNotFound marks an absent task key.
	ErrNotFound = hcerr.ErrNotFound
	// ErrCorrupted marks a stored payload whose CRC32C no longer matches
	// its sub-task header — detected on read, never silently decompressed.
	ErrCorrupted = hcerr.ErrCorrupted
	// ErrDegraded marks a write that succeeded only by abandoning the
	// planned schema. It is matched by errors.Is against Report.Degraded.
	ErrDegraded = hcerr.ErrDegraded
	// ErrQuotaExceeded marks a service write rejected because it would
	// push the tenant's stored bytes past its byte quota (nothing was
	// stored). Raised by internal/service, re-exported here so callers
	// match one taxonomy end to end.
	ErrQuotaExceeded = hcerr.ErrQuotaExceeded
	// ErrThrottled marks a service request rejected by per-tenant
	// token-bucket admission control; unlike ErrQuotaExceeded it clears
	// on its own as tokens refill.
	ErrThrottled = hcerr.ErrThrottled
)

// DegradedError records a write that could not execute any compressing
// schema — every plan was infeasible or failed — and fell back to
// storing the task uncompressed on the first tier that would take it.
// The write succeeded (the data is durable and readable); the error
// value is advisory, carried on Report.Degraded rather than returned.
// errors.Is(e, ErrDegraded) is true; Unwrap exposes the planned path's
// failure.
type DegradedError struct {
	// Key names the degraded task.
	Key string
	// Tier is the tier that finally took the uncompressed fallback.
	Tier string
	// Cause is why the planned (compressing) path failed.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("hcompress: degraded write %q: stored uncompressed on %s (planned path: %v)",
		e.Key, e.Tier, e.Cause)
}

// Unwrap exposes the planned path's failure for errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Is matches ErrDegraded so callers can classify without type-asserting.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }
