package hcompress

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func newRouter(t *testing.T, cfg Config, n int) *Router {
	t.Helper()
	r, err := NewRouter(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// routerTiers keeps per-shard pipelines small so multi-shard routers
// construct quickly in tests.
func routerTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 4 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "pfs", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4},
	}
}

// TestRendezvousDistribution is the load-balance gate: rendezvous
// hashing must spread a large key population near-uniformly. 10k keys
// over 4 shards gives an expected 2500/shard; the max/min ratio bound
// of 1.2 allows ~±9% — generous for hash noise, tight enough to catch
// a broken mixer or salt collision.
func TestRendezvousDistribution(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers(), modeled: true}, 4)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[r.ShardFor(fmt.Sprintf("key-%d", i))]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a shard received no keys: %v", counts)
	}
	if ratio := float64(max) / float64(min); ratio > 1.2 {
		t.Fatalf("shard load imbalance %.3f > 1.2: %v", ratio, counts)
	}
}

// TestShardForStableAcrossRestarts pins the routing function: key→shard
// is a pure function of (key, shard count), so a rebuilt router — a
// restart — must route every key identically, or persisted placements
// would be orphaned.
func TestShardForStableAcrossRestarts(t *testing.T) {
	a := newRouter(t, Config{Tiers: routerTiers(), modeled: true}, 4)
	b := newRouter(t, Config{Tiers: routerTiers(), modeled: true}, 4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("stable-%d", i)
		if ai, bi := a.ShardFor(key), b.ShardFor(key); ai != bi {
			t.Fatalf("key %q routed to shard %d, then %d after restart", key, ai, bi)
		}
	}
}

// TestRouterRoundTripAndShardIsolation writes through the router and
// asserts (a) the data round-trips, (b) the key landed on exactly the
// shard ShardFor names — readable there directly, ErrNotFound on every
// other shard.
func TestRouterRoundTripAndShardIsolation(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers()}, 4)
	data := []byte(strings.Repeat("routed payload. ", 4096))
	if _, err := r.Compress(Task{Key: "routed", Data: data}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Decompress("routed")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Data, data) {
		t.Fatalf("round trip corrupted: got %d bytes, want %d", len(rep.Data), len(data))
	}
	rep.Release()

	owner := r.ShardFor("routed")
	for i := 0; i < r.Shards(); i++ {
		rep, err := r.Shard(i).Decompress("routed")
		if i == owner {
			if err != nil {
				t.Fatalf("owner shard %d: %v", i, err)
			}
			rep.Release()
			continue
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("shard %d (not owner): want ErrNotFound, got %v", i, err)
		}
	}
}

// TestRouterBatchReassembly fans a batch across shards and asserts the
// reports come back in input order, one per task, each round-tripping.
func TestRouterBatchReassembly(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers()}, 4)
	const n = 32
	tasks := make([]Task, n)
	hit := make(map[int]bool)
	for i := range tasks {
		tasks[i] = Task{
			Key:  fmt.Sprintf("batch-%d", i),
			Data: []byte(strings.Repeat(fmt.Sprintf("block %d. ", i), 2048)),
		}
		hit[r.ShardFor(tasks[i].Key)] = true
	}
	if len(hit) < 2 {
		t.Fatalf("want the batch spread over >= 2 shards, got %d", len(hit))
	}
	reps, err := r.CompressBatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("got %d reports, want %d", len(reps), n)
	}
	keys := make([]string, n)
	for i, rep := range reps {
		if rep.Key != tasks[i].Key {
			t.Fatalf("report %d: key %q, want %q (order not preserved)", i, rep.Key, tasks[i].Key)
		}
		keys[i] = rep.Key
	}
	reads, err := r.DecompressBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reads {
		if rep.Key != keys[i] {
			t.Fatalf("read %d: key %q, want %q", i, rep.Key, keys[i])
		}
		if !bytes.Equal(rep.Data, tasks[i].Data) {
			t.Fatalf("read %d: payload mismatch", i)
		}
		rep.Release()
	}
}

// TestRouterAggregateViews cross-checks the composed views against the
// per-shard ones: Status sums capacity/used per tier index, Stats sums
// task counts, Health covers every tier.
func TestRouterAggregateViews(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers()}, 2)
	for i := 0; i < 8; i++ {
		data := []byte(strings.Repeat(fmt.Sprintf("agg %d. ", i), 2048))
		if _, err := r.Compress(Task{Key: fmt.Sprintf("agg-%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	agg := r.Status()
	if len(agg) != len(routerTiers()) {
		t.Fatalf("aggregate status has %d tiers, want %d", len(agg), len(routerTiers()))
	}
	for ti, tierAgg := range agg {
		var cap64, used int64
		for si := 0; si < r.Shards(); si++ {
			st := r.ShardStatus(si)[ti]
			cap64 += st.CapacityBytes
			used += st.UsedBytes
		}
		if tierAgg.CapacityBytes != cap64 {
			t.Fatalf("tier %d: aggregate capacity %d, shard sum %d", ti, tierAgg.CapacityBytes, cap64)
		}
		if tierAgg.UsedBytes != used {
			t.Fatalf("tier %d: aggregate used %d, shard sum %d", ti, tierAgg.UsedBytes, used)
		}
		if tierAgg.Health != "healthy" {
			t.Fatalf("tier %d: health %q, want healthy", ti, tierAgg.Health)
		}
	}
	var tasks int
	for si := 0; si < r.Shards(); si++ {
		tasks += r.Shard(si).Stats().Tasks
	}
	if got := r.Stats().Tasks; got != tasks || got != 8 {
		t.Fatalf("aggregate Stats.Tasks = %d, shard sum %d, want 8", got, tasks)
	}
	if h := r.Health(); len(h) != len(routerTiers()) {
		t.Fatalf("aggregate health has %d tiers, want %d", len(h), len(routerTiers()))
	}
}

// TestRouterSingleShard pins the degenerate case the Client facade
// relies on: a 1-shard router routes everything to shard 0 and its
// views are the shard's views verbatim.
func TestRouterSingleShard(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers()}, 1)
	for i := 0; i < 100; i++ {
		if s := r.ShardFor(fmt.Sprintf("k%d", i)); s != 0 {
			t.Fatalf("1-shard router sent %q to shard %d", fmt.Sprintf("k%d", i), s)
		}
	}
	if _, err := r.Compress(Task{Key: "solo", Data: bytes.Repeat([]byte("x"), 8192)}); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Stats(), r.Shard(0).Stats(); got != want {
		t.Fatalf("1-shard aggregate Stats %+v != shard Stats %+v", got, want)
	}
}

// TestRouterInvalidConfig covers constructor rejections: a shardless
// router, and a multi-shard router with a single MetricsAddr listener
// (per-shard listeners would collide; serve the merged exposition via
// WriteMetrics instead).
func TestRouterInvalidConfig(t *testing.T) {
	if _, err := NewRouter(Config{}, 0); err == nil {
		t.Fatal("NewRouter(0) succeeded")
	}
	if _, err := NewRouter(Config{MetricsAddr: "127.0.0.1:0"}, 2); err == nil {
		t.Fatal("multi-shard router with MetricsAddr succeeded")
	}
}

// TestRouterConcurrentAggregation is the -race gate for the
// aggregation paths: readers sweep Status/Health/Stats/Snapshot/Audits
// while writers mutate every shard through the routed APIs. The
// sequential one-shard-at-a-time snapshot rule means no view ever
// holds two shard locks; the race detector confirms no torn reads.
func TestRouterConcurrentAggregation(t *testing.T) {
	r := newRouter(t, Config{Tiers: routerTiers(), EnableTelemetry: true}, 4)
	data := []byte(strings.Repeat("contended block. ", 1024))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := fmt.Sprintf("c%d-%d", g, i)
				if _, err := r.Compress(Task{Key: key, Data: data}); err != nil {
					t.Error(err)
					return
				}
				if rep, err := r.Decompress(key); err != nil {
					t.Error(err)
					return
				} else {
					rep.Release()
				}
				if i%4 == 3 {
					if err := r.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink bytes.Buffer
			for i := 0; i < 32; i++ {
				_ = r.Status()
				_ = r.Health()
				_ = r.Stats()
				_ = r.Snapshot()
				_ = r.Audits()
				sink.Reset()
				if err := r.WriteMetrics(&sink); err != nil {
					t.Error(err)
					return
				}
				r.Advance(0.001)
			}
		}()
	}
	wg.Wait()
}

// TestClientFacadeEquivalence gates the facade: the Client is a 1-shard
// router, and a serial modeled workload must trace byte-identically
// through either surface — the refactor moved the pipeline, it did not
// change it. Two facade runs also pin determinism across construction.
func TestClientFacadeEquivalence(t *testing.T) {
	workload := func(compress func(Task) (*Report, error), decompress func(string) (*Report, error), del func(string) error) {
		t.Helper()
		for i := 0; i < 6; i++ {
			data := []byte(strings.Repeat(fmt.Sprintf("tiered storage block %d. ", i), 4000+500*i))
			if _, err := compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil {
				t.Fatalf("compress k%d: %v", i, err)
			}
		}
		for i := 0; i < 4; i++ {
			if _, err := decompress(fmt.Sprintf("k%d", i)); err != nil {
				t.Fatalf("decompress k%d: %v", i, err)
			}
		}
		if err := del("k5"); err != nil {
			t.Fatal(err)
		}
	}
	cfg := func(buf *bytes.Buffer) Config {
		return Config{Tiers: scarceTiers(), Parallelism: 1, TraceWriter: buf, modeled: true}
	}
	viaClient := func() []byte {
		var buf bytes.Buffer
		c, err := New(cfg(&buf))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		workload(c.Compress, c.Decompress, c.Delete)
		return buf.Bytes()
	}
	viaRouter := func() []byte {
		var buf bytes.Buffer
		r, err := NewRouter(cfg(&buf), 1)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		workload(r.Compress, r.Decompress, r.Delete)
		return buf.Bytes()
	}
	a, b, c := viaClient(), viaClient(), viaRouter()
	if len(a) == 0 {
		t.Fatal("no trace output")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("facade runs diverge:\n-- run 1 --\n%s\n-- run 2 --\n%s", a, b)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("facade vs 1-shard router diverge:\n-- facade --\n%s\n-- router --\n%s", a, c)
	}
}
