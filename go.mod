module hcompress

go 1.24
