package hcompress

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"hcompress/internal/telemetry"
)

// Router owns N independent Shards — N complete pipelines with their own
// locks, worker pools, stores, HCDP engines, and virtual clocks — and
// routes every key to exactly one of them with rendezvous
// (highest-random-weight) hashing. The mapping is a pure function of the
// key and the shard count: stable across restarts, no directory, no
// rebalancing state. Single-key operations touch one shard; batch
// operations split by shard and fan out; aggregate views (Status,
// Health, Stats, Snapshot, Audits, FaultEvents) compose per-shard
// snapshots one shard at a time.
//
// Lock ordering: the router itself holds no lock, ever. Each aggregate
// view calls one shard's snapshot method at a time, and every such
// method acquires and releases only that shard's own locks — so no code
// path in the package ever holds two shards' locks at once, and
// cross-shard deadlock is impossible by construction (see DESIGN.md
// §13 for the rule this encodes).
type Router struct {
	shards []*Shard
	salts  []uint64 // per-shard rendezvous salts, fixed at construction
}

// NewRouter builds a router over n identical shards, each configured
// from cfg. Tier capacities are per-shard: n shards of a 1 GiB hierarchy
// hold n GiB in aggregate. With n > 1, every shard's telemetry series
// gains a shard="<i>" label, the shards share one trace sink (records
// from different shards interleave line-atomically), MetricsAddr is
// rejected (serve the merged exposition via WriteMetrics or the
// internal/service front-end instead), and SaveSeedOnClose persists
// shard 0's evolved model only. With n == 1 the router is byte-for-byte
// the pre-sharding client: no shard label, no behavioural difference.
func NewRouter(cfg Config, n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("hcompress: router needs at least 1 shard, got %d", n)
	}
	if n > 1 && cfg.MetricsAddr != "" {
		return nil, errors.New("hcompress: MetricsAddr is single-shard only; use Router.WriteMetrics or the service front-end")
	}
	r := &Router{
		shards: make([]*Shard, 0, n),
		salts:  make([]uint64, n),
	}
	if n > 1 && cfg.TraceWriter != nil {
		cfg.traceSink = telemetry.NewSink(cfg.TraceWriter)
	}
	for i := 0; i < n; i++ {
		scfg := cfg
		if n > 1 {
			scfg.shardLabel = strconv.Itoa(i)
			if i > 0 {
				scfg.SaveSeedOnClose = false
			}
		}
		s, err := newShard(scfg)
		if err != nil {
			for _, prev := range r.shards {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("hcompress: shard %d: %w", i, err)
		}
		r.shards = append(r.shards, s)
		r.salts[i] = rendezvousSalt(i)
	}
	return r, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes shard i for per-shard views and tests.
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// rendezvousSalt derives shard i's fixed hash salt from its index alone,
// so the key→shard mapping is a pure function of (key, shard count) —
// identical across processes and restarts.
func rendezvousSalt(i int) uint64 {
	return mix64(0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9)
}

// fnv1a64 is the 64-bit FNV-1a string hash (stable, allocation-free).
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// turns the xor of a key hash and a shard salt into an independent
// uniform score per (key, shard) pair — the "random weight" in
// highest-random-weight hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor reports which shard owns key: the shard whose (salt, key)
// score is highest. Every caller — today's router, a restarted one, a
// remote one with the same shard count — computes the same owner.
func (r *Router) ShardFor(key string) int {
	if len(r.shards) == 1 {
		return 0
	}
	hk := fnv1a64(key)
	best, bestScore := 0, uint64(0)
	for i, salt := range r.salts {
		if s := mix64(hk ^ salt); s > bestScore || i == 0 {
			best, bestScore = i, s
		}
	}
	return best
}

// Compress routes the task to its key's shard and runs the write
// pipeline there.
func (r *Router) Compress(t Task) (*Report, error) {
	return r.shards[r.ShardFor(t.Key)].Compress(t)
}

// CompressContext is Compress under a context.
func (r *Router) CompressContext(ctx context.Context, t Task) (*Report, error) {
	return r.shards[r.ShardFor(t.Key)].CompressContext(ctx, t)
}

// Decompress routes the read to the key's shard.
func (r *Router) Decompress(key string) (*Report, error) {
	return r.shards[r.ShardFor(key)].Decompress(key)
}

// DecompressContext is Decompress under a context.
func (r *Router) DecompressContext(ctx context.Context, key string) (*Report, error) {
	return r.shards[r.ShardFor(key)].DecompressContext(ctx, key)
}

// Delete removes a stored task from its shard.
func (r *Router) Delete(key string) error {
	return r.shards[r.ShardFor(key)].Delete(key)
}

// CompressBatch splits the batch by owning shard, runs each shard's
// sub-batch concurrently through that shard's batch pipeline, and
// reassembles reports in input order. Tasks fail independently exactly
// as in Shard.CompressBatch; the error joins every shard's joined error.
func (r *Router) CompressBatch(tasks []Task) ([]*Report, error) {
	return r.CompressBatchContext(context.Background(), tasks)
}

// CompressBatchContext is CompressBatch under a context.
func (r *Router) CompressBatchContext(ctx context.Context, tasks []Task) ([]*Report, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if len(r.shards) == 1 {
		return r.shards[0].CompressBatchContext(ctx, tasks)
	}
	byShard := make([][]Task, len(r.shards))
	idx := make([][]int, len(r.shards))
	for i, t := range tasks {
		s := r.ShardFor(t.Key)
		byShard[s] = append(byShard[s], t)
		idx[s] = append(idx[s], i)
	}
	reps := make([]*Report, len(tasks))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for s := range r.shards {
		if len(byShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sreps, err := r.shards[s].CompressBatchContext(ctx, byShard[s])
			errs[s] = err
			for j, rep := range sreps {
				reps[idx[s][j]] = rep
			}
		}(s)
	}
	wg.Wait()
	return reps, errors.Join(errs...)
}

// DecompressBatch splits the keys by owning shard, reads each sub-batch
// concurrently, and reassembles reports in input order.
func (r *Router) DecompressBatch(keys []string) ([]*Report, error) {
	return r.DecompressBatchContext(context.Background(), keys)
}

// DecompressBatchContext is DecompressBatch under a context.
func (r *Router) DecompressBatchContext(ctx context.Context, keys []string) ([]*Report, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(r.shards) == 1 {
		return r.shards[0].DecompressBatchContext(ctx, keys)
	}
	byShard := make([][]string, len(r.shards))
	idx := make([][]int, len(r.shards))
	for i, k := range keys {
		s := r.ShardFor(k)
		byShard[s] = append(byShard[s], k)
		idx[s] = append(idx[s], i)
	}
	reps := make([]*Report, len(keys))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for s := range r.shards {
		if len(byShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sreps, err := r.shards[s].DecompressBatchContext(ctx, byShard[s])
			errs[s] = err
			for j, rep := range sreps {
				reps[idx[s][j]] = rep
			}
		}(s)
	}
	wg.Wait()
	return reps, errors.Join(errs...)
}

// SetPriorities broadcasts a new cost weighting to every shard.
func (r *Router) SetPriorities(p Priorities) {
	for _, s := range r.shards {
		s.SetPriorities(p)
	}
}

// Advance moves every shard's virtual clock forward by dv seconds.
func (r *Router) Advance(dv float64) {
	for _, s := range r.shards {
		s.Advance(dv)
	}
}

// healthRank orders health states for worst-of aggregation.
func healthRank(state string) int {
	switch state {
	case "offline":
		return 2
	case "degraded":
		return 1
	default:
		return 0
	}
}

// Status composes the per-shard tier views into one aggregate: per tier
// (tiers correspond by index — every shard runs the same hierarchy),
// capacities, occupancy, and queue lengths sum; health is the worst
// state any shard reports; the error streak is the largest. Each shard
// is snapshotted under its own locks, one shard at a time — the
// aggregate is per-shard-consistent, not a global atomic cut, the same
// contract Status always had against concurrent writers.
func (r *Router) Status() []TierStatusReport {
	var agg []TierStatusReport
	for _, s := range r.shards {
		for i, row := range s.Status() {
			if i >= len(agg) {
				agg = append(agg, row)
				continue
			}
			agg[i].CapacityBytes += row.CapacityBytes
			agg[i].UsedBytes += row.UsedBytes
			agg[i].RemainingBytes += row.RemainingBytes
			agg[i].QueueLength += row.QueueLength
			if healthRank(row.Health) > healthRank(agg[i].Health) {
				agg[i].Health = row.Health
			}
			if row.ConsecutiveErrors > agg[i].ConsecutiveErrors {
				agg[i].ConsecutiveErrors = row.ConsecutiveErrors
			}
			if row.LastTransitionVSec > agg[i].LastTransitionVSec {
				agg[i].LastTransitionVSec = row.LastTransitionVSec
			}
		}
	}
	return agg
}

// ShardStatus is shard i's own (un-aggregated) tier view.
func (r *Router) ShardStatus(i int) []TierStatusReport {
	return r.shards[i].Status()
}

// Health composes per-shard health into worst-of-tier rows: a tier is as
// unhealthy as its sickest shard, and NextProbeVSec reports the soonest
// pending recovery probe. Like Status it never holds two shards' locks.
func (r *Router) Health() []TierHealthReport {
	var agg []TierHealthReport
	for _, s := range r.shards {
		for i, row := range s.Health() {
			if i >= len(agg) {
				agg = append(agg, row)
				continue
			}
			if healthRank(row.State) > healthRank(agg[i].State) {
				agg[i].State = row.State
			}
			if row.ConsecutiveErrors > agg[i].ConsecutiveErrors {
				agg[i].ConsecutiveErrors = row.ConsecutiveErrors
			}
			if row.LastTransitionVSec > agg[i].LastTransitionVSec {
				agg[i].LastTransitionVSec = row.LastTransitionVSec
			}
			if row.NextProbeVSec > 0 && (agg[i].NextProbeVSec == 0 || row.NextProbeVSec < agg[i].NextProbeVSec) {
				agg[i].NextProbeVSec = row.NextProbeVSec
			}
		}
	}
	return agg
}

// Stats sums per-shard counters; ModelAccuracy averages the shards' CCP
// accuracies and VirtualSeconds reports the furthest shard clock (each
// shard keeps its own virtual timeline).
func (r *Router) Stats() Stats {
	var agg Stats
	for _, s := range r.shards {
		st := s.Stats()
		agg.ModelAccuracy += st.ModelAccuracy
		agg.FeedbackQueued += st.FeedbackQueued
		agg.FeedbackAbsorbed += st.FeedbackAbsorbed
		agg.MemoHits += st.MemoHits
		agg.MemoMisses += st.MemoMisses
		agg.PlanCacheHits += st.PlanCacheHits
		agg.PlanCacheMisses += st.PlanCacheMisses
		agg.Tasks += st.Tasks
		if st.VirtualSeconds > agg.VirtualSeconds {
			agg.VirtualSeconds = st.VirtualSeconds
		}
	}
	if len(r.shards) > 0 {
		agg.ModelAccuracy /= float64(len(r.shards))
	}
	return agg
}

// Snapshot merges every shard's metric snapshot into one map set. With
// more than one shard every series carries its shard label, so the union
// is collision-free.
func (r *Router) Snapshot() MetricsSnapshot {
	agg := MetricsSnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStat),
	}
	for _, s := range r.shards {
		snap := s.Snapshot()
		for k, v := range snap.Counters {
			agg.Counters[k] += v
		}
		for k, v := range snap.Gauges {
			agg.Gauges[k] = v
		}
		for k, v := range snap.Histograms {
			agg.Histograms[k] = v
		}
	}
	return agg
}

// WriteMetrics renders one merged Prometheus exposition over every
// shard's registry (families unified, series distinguished by the shard
// label).
func (r *Router) WriteMetrics(w io.Writer) error {
	regs := make([]*telemetry.Registry, len(r.shards))
	for i, s := range r.shards {
		regs[i] = s.tel
	}
	return telemetry.MergePrometheus(w, regs...)
}

// Audits drains every shard's decision-audit ring, shard 0 first.
func (r *Router) Audits() []AuditRecord {
	var out []AuditRecord
	for _, s := range r.shards {
		out = append(out, s.Audits()...)
	}
	return out
}

// SlowOps drains every shard's slow-op ring, shard 0 first. Empty unless
// Config.SlowOpThreshold or Config.SlowOpSampleEvery is set.
func (r *Router) SlowOps() []SlowOpRecord {
	var out []SlowOpRecord
	for _, s := range r.shards {
		out = append(out, s.SlowOps()...)
	}
	return out
}

// CacheStats sums every shard's read-cache counters into one aggregate
// view. Capacity and occupancy add (each shard owns an independent
// cache); all-zero when ReadCacheFraction is 0. Like every aggregate it
// snapshots one shard at a time.
func (r *Router) CacheStats() CacheStats {
	var agg CacheStats
	for _, s := range r.shards {
		st := s.CacheStats()
		agg.Entries += st.Entries
		agg.Bytes += st.Bytes
		agg.Capacity += st.Capacity
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Admissions += st.Admissions
		agg.Rejects += st.Rejects
		agg.Evictions += st.Evictions
		agg.Invalidations += st.Invalidations
		agg.PrefetchIssued += st.PrefetchIssued
		agg.PrefetchUsed += st.PrefetchUsed
		agg.PrefetchFailed += st.PrefetchFailed
		agg.PrefetchCancelled += st.PrefetchCancelled
	}
	return agg
}

// FaultEvents drains every shard's health-transition ring, shard 0 first.
func (r *Router) FaultEvents() []FaultEvent {
	var out []FaultEvent
	for _, s := range r.shards {
		out = append(out, s.FaultEvents()...)
	}
	return out
}

// Close closes every shard (draining each shard's in-flight operations
// under that shard's own lifecycle lock) and joins any errors. Idempotent.
func (r *Router) Close() error {
	errs := make([]error, len(r.shards))
	for i, s := range r.shards {
		errs[i] = s.Close()
	}
	return errors.Join(errs...)
}
