// Package monitor implements the System Monitor (SM): a cached view of
// per-tier availability, load, and remaining capacity (§IV-E). Where the
// paper's SM shells out to du and iostat from a background thread, this
// one samples the simulated Storage Hardware Interface — the refresh
// cadence is preserved so the HCDP engine sees the same slightly-stale
// information a real deployment would.
package monitor

import (
	"sync"

	"hcompress/internal/store"
	"hcompress/internal/telemetry"
)

// SystemMonitor caches tier status snapshots, refreshing at a configured
// virtual-time interval. It is safe for concurrent use: readers of a fresh
// cache share a read lock (concurrent planners never serialize on the
// monitor), and a refresh swaps in a new snapshot slice rather than
// mutating the one in-flight planners may still hold.
type SystemMonitor struct {
	mu          sync.RWMutex
	st          *store.Store
	interval    float64 // seconds of virtual time between refreshes
	lastRefresh float64
	cached      []store.TierStatus
	refreshes   int

	tmRefreshes *telemetry.Counter // nil when telemetry is off
	tmForced    *telemetry.Counter
}

// SetTelemetry registers the monitor's instruments on reg. Must be
// called before the monitor is shared between goroutines; a nil registry
// leaves telemetry off.
func (m *SystemMonitor) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.tmRefreshes = reg.Counter("hc_monitor_refreshes_total", "tier status samples taken from the store")
	m.tmForced = reg.Counter("hc_monitor_forced_refreshes_total", "cache invalidations after failed placements")
}

// New creates a monitor over st that refreshes its cache every interval
// virtual seconds. interval 0 means "always fresh".
func New(st *store.Store, interval float64) *SystemMonitor {
	m := &SystemMonitor{st: st, interval: interval, lastRefresh: -1}
	return m
}

func (m *SystemMonitor) fresh(now float64) bool {
	return m.lastRefresh >= 0 && now-m.lastRefresh < m.interval
}

// Status returns tier status as of virtual time now, refreshing the cache
// if it is older than the interval. The returned slice is a snapshot
// shared between callers; callers must not mutate it.
func (m *SystemMonitor) Status(now float64) []store.TierStatus {
	m.mu.RLock()
	if m.fresh(now) {
		cached := m.cached
		m.mu.RUnlock()
		return cached
	}
	m.mu.RUnlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fresh(now) { // another planner refreshed while we waited
		return m.cached
	}
	m.cached = m.st.Status(now)
	m.lastRefresh = now
	m.refreshes++
	m.tmRefreshes.Inc()
	return m.cached
}

// ForceRefresh invalidates the cache so the next Status is fresh — used
// after placements that the engine itself performed (it knows the state
// changed and must not plan against stale capacity). Planners holding the
// previous snapshot keep a consistent (if stale) view; the placement path
// re-checks true capacity.
func (m *SystemMonitor) ForceRefresh() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastRefresh = -1
	m.tmForced.Inc()
}

// Refreshes reports how many times the underlying store was sampled.
func (m *SystemMonitor) Refreshes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.refreshes
}

// Store exposes the monitored store (the engine needs it for placement).
func (m *SystemMonitor) Store() *store.Store { return m.st }
