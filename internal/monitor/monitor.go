// Package monitor implements the System Monitor (SM): a cached view of
// per-tier availability, load, and remaining capacity (§IV-E). Where the
// paper's SM shells out to du and iostat from a background thread, this
// one samples the simulated Storage Hardware Interface — the refresh
// cadence is preserved so the HCDP engine sees the same slightly-stale
// information a real deployment would.
package monitor

import (
	"sync"

	"hcompress/internal/store"
)

// SystemMonitor caches tier status snapshots, refreshing at a configured
// virtual-time interval.
type SystemMonitor struct {
	mu          sync.Mutex
	st          *store.Store
	interval    float64 // seconds of virtual time between refreshes
	lastRefresh float64
	cached      []store.TierStatus
	refreshes   int
}

// New creates a monitor over st that refreshes its cache every interval
// virtual seconds. interval 0 means "always fresh".
func New(st *store.Store, interval float64) *SystemMonitor {
	m := &SystemMonitor{st: st, interval: interval, lastRefresh: -1}
	return m
}

// Status returns tier status as of virtual time now, refreshing the cache
// if it is older than the interval. The returned slice is shared; callers
// must not mutate it.
func (m *SystemMonitor) Status(now float64) []store.TierStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastRefresh < 0 || now-m.lastRefresh >= m.interval {
		m.cached = m.st.Status(now)
		m.lastRefresh = now
		m.refreshes++
	}
	return m.cached
}

// ForceRefresh invalidates the cache so the next Status is fresh — used
// after placements that the engine itself performed (it knows the state
// changed and must not plan against stale capacity).
func (m *SystemMonitor) ForceRefresh() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastRefresh = -1
}

// Refreshes reports how many times the underlying store was sampled.
func (m *SystemMonitor) Refreshes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refreshes
}

// Store exposes the monitored store (the engine needs it for placement).
func (m *SystemMonitor) Store() *store.Store { return m.st }
