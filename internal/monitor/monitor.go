// Package monitor implements the System Monitor (SM): a cached view of
// per-tier availability, load, and remaining capacity (§IV-E). Where the
// paper's SM shells out to du and iostat from a background thread, this
// one samples the simulated Storage Hardware Interface — the refresh
// cadence is preserved so the HCDP engine sees the same slightly-stale
// information a real deployment would.
//
// Beyond occupancy, the monitor tracks per-tier *health*: a three-state
// machine (healthy → degraded → offline) driven by the outcomes the
// store observes, with exponential-backoff recovery probing. Offline
// tiers are masked out of the Status snapshots the HCDP engine plans
// against, and periodically re-exposed for one refresh (a probe) so a
// recovered tier is automatically reused.
package monitor

import (
	"sync"
	"sync/atomic"

	"hcompress/internal/store"
	"hcompress/internal/telemetry"
)

// HealthState is one tier's position in the health state machine.
type HealthState uint8

const (
	// Healthy: no outstanding errors.
	Healthy HealthState = iota
	// Degraded: recent errors below the offline threshold; the tier is
	// still offered for placement but callers should expect retries.
	Degraded
	// Offline: consecutive errors reached the threshold; the tier is
	// masked from planning except for periodic recovery probes.
	Offline
)

// String names the state for reports and metrics.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Offline:
		return "offline"
	}
	return "unknown"
}

// TierHealth is the public snapshot of one tier's health.
type TierHealth struct {
	Name           string
	State          HealthState
	ErrStreak      int     // consecutive observed errors
	LastTransition float64 // virtual time of the last state change
	NextProbe      float64 // virtual time of the next recovery probe (offline only)
}

// Event records one health transition, for audit logs and traces.
type Event struct {
	Tier   int
	Name   string
	From   HealthState
	To     HealthState
	VTime  float64
	Streak int
}

// tierHealth is the internal per-tier machine state, guarded by
// SystemMonitor.mu. clean is the lock-free fast path: true exactly when
// the tier is Healthy with a zero streak, so the store's success
// callback on every operation costs one atomic load in steady state.
type tierHealth struct {
	state          HealthState
	streak         int
	lastTransition float64
	nextProbe      float64
	probeN         int // failed probes since going offline (backoff exponent)
	clean          atomic.Bool
}

// Health-machine defaults: offlineAfter consecutive errors take a tier
// offline; the first recovery probe fires probeBase virtual seconds
// later, doubling per failed probe up to probeCap.
const (
	defaultOfflineAfter = 3
	defaultProbeBase    = 0.5
	probeCapFactor      = 64 // backoff cap = probeBase * probeCapFactor
)

// SystemMonitor caches tier status snapshots, refreshing at a configured
// virtual-time interval. It is safe for concurrent use: readers of a fresh
// cache share a read lock (concurrent planners never serialize on the
// monitor), and a refresh swaps in a new snapshot slice rather than
// mutating the one in-flight planners may still hold.
type SystemMonitor struct {
	mu          sync.RWMutex
	st          *store.Store
	interval    float64 // seconds of virtual time between refreshes
	lastRefresh float64
	cached      []store.TierStatus
	refreshes   int

	health       []tierHealth
	offlineAfter int
	probeBase    float64
	eventSink    func(Event) // construction-time; called outside mu

	tmRefreshes *telemetry.Counter // nil when telemetry is off
	tmForced    *telemetry.Counter
	tmHealth    []*telemetry.Gauge // per-tier health state (0/1/2)
}

// SetTelemetry registers the monitor's instruments on reg. Must be
// called before the monitor is shared between goroutines; a nil registry
// leaves telemetry off.
func (m *SystemMonitor) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.tmRefreshes = reg.Counter("hc_monitor_refreshes_total", "tier status samples taken from the store")
	m.tmForced = reg.Counter("hc_monitor_forced_refreshes_total", "cache invalidations after failed placements")
	hier := m.st.Hierarchy()
	m.tmHealth = make([]*telemetry.Gauge, hier.Len())
	for i, spec := range hier.Tiers {
		m.tmHealth[i] = reg.Gauge("hc_tier_health", "tier health state (0 healthy, 1 degraded, 2 offline)",
			telemetry.L("tier", spec.Name))
	}
}

// SetEventSink installs the health-transition observer (audit records,
// traces). Construction-time only; the sink is invoked outside the
// monitor lock.
func (m *SystemMonitor) SetEventSink(fn func(Event)) { m.eventSink = fn }

// SetHealthPolicy tunes the health machine: a tier goes offline after
// offlineAfter consecutive errors (values < 1 keep the default), and
// recovery probes start probeBase virtual seconds after the transition
// (values <= 0 keep the default). Construction-time only.
func (m *SystemMonitor) SetHealthPolicy(offlineAfter int, probeBase float64) {
	if offlineAfter >= 1 {
		m.offlineAfter = offlineAfter
	}
	if probeBase > 0 {
		m.probeBase = probeBase
	}
}

// New creates a monitor over st that refreshes its cache every interval
// virtual seconds. interval 0 means "always fresh".
func New(st *store.Store, interval float64) *SystemMonitor {
	m := &SystemMonitor{
		st: st, interval: interval, lastRefresh: -1,
		health:       make([]tierHealth, st.Hierarchy().Len()),
		offlineAfter: defaultOfflineAfter,
		probeBase:    defaultProbeBase,
	}
	for i := range m.health {
		m.health[i].clean.Store(true)
	}
	return m
}

func (m *SystemMonitor) fresh(now float64) bool {
	return m.lastRefresh >= 0 && now-m.lastRefresh < m.interval
}

// Status returns tier status as of virtual time now, refreshing the cache
// if it is older than the interval. The returned slice is a snapshot
// shared between callers; callers must not mutate it. Offline tiers are
// reported Available=false — masked from placement — except when their
// recovery probe is due, in which case the tier is exposed for this one
// refresh and the next probe is pushed out by the current backoff.
func (m *SystemMonitor) Status(now float64) []store.TierStatus {
	m.mu.RLock()
	if m.fresh(now) {
		cached := m.cached
		m.mu.RUnlock()
		return cached
	}
	m.mu.RUnlock()

	m.mu.Lock()
	if m.fresh(now) { // another planner refreshed while we waited
		cached := m.cached
		m.mu.Unlock()
		return cached
	}
	sts := m.st.Status(now)
	for i := range sts {
		h := &m.health[i]
		if h.state != Offline {
			continue
		}
		if now >= h.nextProbe {
			// Probe: expose the tier for this snapshot so one plan may
			// target it; the placement outcome (Observe) decides whether
			// it heals or backs off further.
			h.nextProbe = now + m.probeBackoff(h.probeN)
		} else {
			sts[i].Available = false
		}
	}
	m.cached = sts
	m.lastRefresh = now
	m.refreshes++
	m.tmRefreshes.Inc()
	m.mu.Unlock()
	return sts
}

// probeBackoff is the offline-tier probe interval after n failed probes:
// probeBase * 2^n, capped.
func (m *SystemMonitor) probeBackoff(n int) float64 {
	b := m.probeBase
	for i := 0; i < n && b < m.probeBase*probeCapFactor; i++ {
		b *= 2
	}
	if max := m.probeBase * probeCapFactor; b > max {
		b = max
	}
	return b
}

// Observe feeds one store outcome into the health machine (the store's
// health sink): err == nil marks a success, anything else an observed
// fault. Successes on a degraded or offline tier heal it immediately —
// the decay half of probe-based recovery — and transitions invalidate
// the status cache so the next plan sees the new availability.
func (m *SystemMonitor) Observe(now float64, tier int, err error) {
	if tier < 0 || tier >= len(m.health) {
		return
	}
	h := &m.health[tier]
	if err == nil {
		if h.clean.Load() {
			return // steady state: one atomic load per store op
		}
		m.mu.Lock()
		if h.state == Healthy && h.streak == 0 {
			m.mu.Unlock()
			return
		}
		ev := Event{Tier: tier, Name: m.tierName(tier), From: h.state, To: Healthy, VTime: now}
		h.state = Healthy
		h.streak = 0
		h.probeN = 0
		h.nextProbe = 0
		h.lastTransition = now
		h.clean.Store(true)
		m.lastRefresh = -1 // re-expose the tier on the next refresh
		m.setHealthGauge(tier, Healthy)
		m.mu.Unlock()
		m.emit(ev)
		return
	}

	m.mu.Lock()
	h.clean.Store(false)
	h.streak++
	prev := h.state
	if h.streak >= m.offlineAfter {
		h.state = Offline
		if prev == Offline {
			// A failed probe (or late straggler): back the next probe off.
			if h.probeN < 62 {
				h.probeN++
			}
		}
		h.nextProbe = now + m.probeBackoff(h.probeN)
	} else {
		h.state = Degraded
	}
	var ev Event
	transitioned := h.state != prev
	if transitioned {
		h.lastTransition = now
		m.lastRefresh = -1 // mask the tier on the next refresh
		m.setHealthGauge(tier, h.state)
		ev = Event{Tier: tier, Name: m.tierName(tier), From: prev, To: h.state, VTime: now, Streak: h.streak}
	}
	m.mu.Unlock()
	if transitioned {
		m.emit(ev)
	}
}

func (m *SystemMonitor) tierName(tier int) string {
	return m.st.Hierarchy().Tiers[tier].Name
}

func (m *SystemMonitor) setHealthGauge(tier int, s HealthState) {
	if m.tmHealth != nil {
		m.tmHealth[tier].Set(float64(s))
	}
}

func (m *SystemMonitor) emit(ev Event) {
	if m.eventSink != nil {
		m.eventSink(ev)
	}
}

// Health snapshots every tier's health state.
func (m *SystemMonitor) Health() []TierHealth {
	hier := m.st.Hierarchy()
	out := make([]TierHealth, len(m.health))
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := range m.health {
		h := &m.health[i]
		out[i] = TierHealth{
			Name:           hier.Tiers[i].Name,
			State:          h.state,
			ErrStreak:      h.streak,
			LastTransition: h.lastTransition,
			NextProbe:      h.nextProbe,
		}
	}
	return out
}

// ForceRefresh invalidates the cache so the next Status is fresh — used
// after placements that the engine itself performed (it knows the state
// changed and must not plan against stale capacity). Planners holding the
// previous snapshot keep a consistent (if stale) view; the placement path
// re-checks true capacity.
func (m *SystemMonitor) ForceRefresh() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastRefresh = -1
	m.tmForced.Inc()
}

// Refreshes reports how many times the underlying store was sampled.
func (m *SystemMonitor) Refreshes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.refreshes
}

// Store exposes the monitored store (the engine needs it for placement).
func (m *SystemMonitor) Store() *store.Store { return m.st }
