package monitor

import (
	"errors"
	"testing"
)

var errBoom = errors.New("boom")

func TestHealthDegradedThenOffline(t *testing.T) {
	m := New(newStore(t), 0)
	var events []Event
	m.SetEventSink(func(ev Event) { events = append(events, ev) })

	m.Observe(1, 0, errBoom)
	if h := m.Health()[0]; h.State != Degraded || h.ErrStreak != 1 {
		t.Fatalf("after one error: %+v", h)
	}
	m.Observe(2, 0, errBoom)
	m.Observe(3, 0, errBoom) // third consecutive error: offline
	if h := m.Health()[0]; h.State != Offline {
		t.Fatalf("after three errors: %+v", h)
	}
	if len(events) != 2 || events[0].To != Degraded || events[1].To != Offline {
		t.Fatalf("transition events: %+v", events)
	}
	if events[1].VTime != 3 {
		t.Fatalf("offline transition time %v want 3", events[1].VTime)
	}
	// The other tier is untouched.
	if h := m.Health()[1]; h.State != Healthy {
		t.Fatalf("tier 1 should be healthy: %+v", h)
	}
}

func TestOfflineTierMaskedFromStatus(t *testing.T) {
	m := New(newStore(t), 0)
	for i := 0; i < 3; i++ {
		m.Observe(float64(i), 0, errBoom)
	}
	// Offline at now=2 with the first probe due at 2.5: sample before it.
	sts := m.Status(2.1)
	if sts[0].Available {
		t.Fatal("offline tier must report Available=false")
	}
	if !sts[1].Available {
		t.Fatal("healthy tier must stay available")
	}
}

func TestRecoveryProbeAndHeal(t *testing.T) {
	m := New(newStore(t), 0)
	m.SetHealthPolicy(3, 0.5)
	for i := 0; i < 3; i++ {
		m.Observe(0, 0, errBoom)
	}
	// Before the probe is due the tier stays masked.
	if sts := m.Status(0.1); sts[0].Available {
		t.Fatal("tier masked before probe")
	}
	// At the probe time the tier is exposed for one snapshot.
	if sts := m.Status(0.6); !sts[0].Available {
		t.Fatal("probe should expose the tier")
	}
	// A success heals it back to Healthy immediately.
	m.Observe(0.7, 0, nil)
	if h := m.Health()[0]; h.State != Healthy || h.ErrStreak != 0 {
		t.Fatalf("after healing success: %+v", h)
	}
	if sts := m.Status(0.8); !sts[0].Available {
		t.Fatal("healed tier must be available")
	}
}

func TestFailedProbeBacksOff(t *testing.T) {
	m := New(newStore(t), 0)
	m.SetHealthPolicy(3, 0.5)
	for i := 0; i < 3; i++ {
		m.Observe(0, 0, errBoom)
	}
	p0 := m.Health()[0].NextProbe // 0.5
	m.Status(p0)                  // probe granted
	m.Observe(p0, 0, errBoom)     // probe fails
	p1 := m.Health()[0].NextProbe
	if p1-p0 <= 0.5 {
		t.Fatalf("failed probe should double the interval: next=%v after %v", p1, p0)
	}
}

func TestSuccessFastPathNoTransition(t *testing.T) {
	m := New(newStore(t), 0)
	var events []Event
	m.SetEventSink(func(ev Event) { events = append(events, ev) })
	for i := 0; i < 100; i++ {
		m.Observe(float64(i), 0, nil)
	}
	if len(events) != 0 {
		t.Fatalf("healthy successes must not emit events: %+v", events)
	}
}

func TestObserveOutOfRangeTier(t *testing.T) {
	m := New(newStore(t), 0)
	m.Observe(0, -1, errBoom) // must not panic
	m.Observe(0, 99, errBoom)
	if h := m.Health(); len(h) != 2 {
		t.Fatalf("health len %d", len(h))
	}
}
