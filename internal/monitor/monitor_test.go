package monitor

import (
	"testing"

	"hcompress/internal/store"
	"hcompress/internal/tier"
)

func newStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.New(tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1000, Latency: 0, Bandwidth: 1e9, Lanes: 1},
		{Name: "ssd", Capacity: 4000, Latency: 0, Bandwidth: 1e8, Lanes: 1},
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStatusCaching(t *testing.T) {
	st := newStore(t)
	m := New(st, 10.0) // refresh every 10 virtual seconds
	s1 := m.Status(0)
	if s1[0].Used != 0 {
		t.Fatal("fresh store should be empty")
	}
	st.Put(0, 0, "k", nil, 500)
	// Within the refresh window the monitor serves stale data — exactly
	// the behaviour of a periodic du/iostat sampler.
	s2 := m.Status(5)
	if s2[0].Used != 0 {
		t.Fatal("status should be cached (stale)")
	}
	// Past the interval it refreshes.
	s3 := m.Status(10)
	if s3[0].Used != 500 {
		t.Fatalf("status should have refreshed: %+v", s3[0])
	}
	if m.Refreshes() != 2 {
		t.Fatalf("refreshes %d want 2", m.Refreshes())
	}
}

func TestForceRefresh(t *testing.T) {
	st := newStore(t)
	m := New(st, 1000.0)
	m.Status(0)
	st.Put(0, 1, "k", nil, 700)
	m.ForceRefresh()
	s := m.Status(0.1)
	if s[1].Used != 700 {
		t.Fatalf("force refresh ineffective: %+v", s[1])
	}
}

func TestZeroIntervalAlwaysFresh(t *testing.T) {
	st := newStore(t)
	m := New(st, 0)
	m.Status(0)
	st.Put(0, 0, "k", nil, 100)
	if s := m.Status(0); s[0].Used != 100 {
		t.Fatal("zero interval should always be fresh")
	}
}

func TestStoreAccessor(t *testing.T) {
	st := newStore(t)
	m := New(st, 1)
	if m.Store() != st {
		t.Fatal("Store() identity")
	}
}
