package des

import (
	"math"
	"testing"
)

func TestServiceTime(t *testing.T) {
	r := NewResource("nvme", 4, 50e-6, 8e9)
	// Per-lane bandwidth is 2 GB/s; 2 MB takes 1 ms + 50 us.
	got := r.ServiceTime(2 << 20)
	want := 50e-6 + float64(2<<20)/2e9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAcquireUncontended(t *testing.T) {
	r := NewResource("ram", 2, 1e-6, 2e9)
	end := r.Acquire(0, 1e6)
	want := 1e-6 + 1e6/1e9
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("end %v want %v", end, want)
	}
}

func TestAcquireQueuesWhenLanesBusy(t *testing.T) {
	r := NewResource("disk", 1, 0, 1e6) // 1 MB/s, single lane
	e1 := r.Acquire(0, 1e6)             // 1 s
	e2 := r.Acquire(0, 1e6)             // queued behind: 2 s
	e3 := r.Acquire(0.5, 1e6)           // still queued: 3 s
	if e1 != 1 || e2 != 2 || e3 != 3 {
		t.Fatalf("got %v %v %v, want 1 2 3", e1, e2, e3)
	}
}

func TestAcquireParallelLanes(t *testing.T) {
	r := NewResource("ssd", 2, 0, 2e6) // two lanes at 1 MB/s each
	e1 := r.Acquire(0, 1e6)
	e2 := r.Acquire(0, 1e6)
	e3 := r.Acquire(0, 1e6)
	if e1 != 1 || e2 != 1 {
		t.Fatalf("two lanes should serve in parallel: %v %v", e1, e2)
	}
	if e3 != 2 {
		t.Fatalf("third request should queue: %v", e3)
	}
}

func TestAcquireIdleGap(t *testing.T) {
	r := NewResource("x", 1, 0, 1e6)
	r.Acquire(0, 1e6)
	// Request at t=5 after the lane is idle: starts immediately.
	if end := r.Acquire(5, 1e6); end != 6 {
		t.Fatalf("end %v want 6", end)
	}
}

func TestQueueDepthAndBacklog(t *testing.T) {
	r := NewResource("x", 2, 0, 2e6)
	if r.QueueDepth(0) != 0 || r.Backlog(0) != 0 {
		t.Fatal("fresh resource should be idle")
	}
	r.Acquire(0, 1e6) // lane busy until 1
	r.Acquire(0, 3e6) // lane busy until 3
	if got := r.QueueDepth(0.5); got != 2 {
		t.Fatalf("depth %d want 2", got)
	}
	if got := r.QueueDepth(2); got != 1 {
		t.Fatalf("depth %d want 1", got)
	}
	if got := r.Backlog(1); got != 2 {
		t.Fatalf("backlog %v want 2", got)
	}
	r.Reset()
	if r.QueueDepth(0) != 0 {
		t.Fatal("reset should clear lanes")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(2)
	c.Advance(-1) // ignored
	c.AdvanceTo(1.5)
	if c.Now() != 2 {
		t.Fatalf("now %v want 2", c.Now())
	}
	c.AdvanceTo(5)
	if c.Now() != 5 {
		t.Fatalf("now %v want 5", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMaxTime(t *testing.T) {
	clocks := make([]Clock, 3)
	clocks[0].Advance(1)
	clocks[1].Advance(7)
	clocks[2].Advance(3)
	if got := MaxTime(clocks); got != 7 {
		t.Fatalf("makespan %v want 7", got)
	}
	if got := MaxTime(nil); got != 0 {
		t.Fatalf("empty makespan %v", got)
	}
}

func TestBandwidthSplitAcrossLanes(t *testing.T) {
	// N requests across N lanes must take the same time as 1 request on a
	// 1-lane resource with 1/N the bandwidth: aggregate bandwidth is
	// conserved.
	agg := NewResource("agg", 8, 0, 8e9)
	var worst float64
	for i := 0; i < 8; i++ {
		if e := agg.Acquire(0, 1e9); e > worst {
			worst = e
		}
	}
	if math.Abs(worst-1.0) > 1e-9 {
		t.Fatalf("8 parallel 1GB transfers on 8x1GB/s lanes took %v, want 1s", worst)
	}
}

func BenchmarkAcquire(b *testing.B) {
	r := NewResource("x", 64, 1e-6, 1e12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Acquire(float64(i)*1e-6, 4096)
	}
}
