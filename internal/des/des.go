// Package des implements the virtual-time engine behind the storage
// simulation: multi-lane resources with FIFO lane assignment, the standard
// conservative approximation of a G/G/c queue used in storage simulators.
//
// There is no global event heap; instead every client (an MPI rank in the
// cluster harness) carries its own clock and resources resolve contention
// by tracking per-lane next-free times. For the bulk-synchronous workloads
// HCompress evaluates (timestep checkpoints, read phases), this yields the
// same completion-time structure as a full discrete-event simulation while
// remaining deterministic and allocation-free on the hot path.
package des

import (
	"fmt"
	"math"
)

// Resource models a service station with a fixed number of hardware lanes
// (e.g. an NVMe device's channels, a burst-buffer node set), a fixed
// per-operation latency, and a per-lane bandwidth.
type Resource struct {
	name      string
	latency   float64 // seconds per operation
	laneBW    float64 // bytes/second per lane
	laneFree  []float64
	busyUntil float64 // max over lanes, cached for QueueDepth
}

// NewResource builds a resource with lanes hardware lanes sharing
// totalBW bytes/second evenly.
func NewResource(name string, lanes int, latency, totalBW float64) *Resource {
	if lanes < 1 {
		lanes = 1
	}
	if totalBW <= 0 {
		panic(fmt.Sprintf("des: resource %s needs positive bandwidth", name))
	}
	return &Resource{
		name:     name,
		latency:  latency,
		laneBW:   totalBW / float64(lanes),
		laneFree: make([]float64, lanes),
	}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Lanes reports the lane count.
func (r *Resource) Lanes() int { return len(r.laneFree) }

// ServiceTime returns the uncontended time to transfer n bytes.
func (r *Resource) ServiceTime(n int64) float64 {
	return r.latency + float64(n)/r.laneBW
}

// Acquire serves a transfer of n bytes requested at time now and returns
// when it completes. The least-loaded lane is used; if every lane is busy
// the request queues (FIFO per lane).
func (r *Resource) Acquire(now float64, n int64) (end float64) {
	best := 0
	for i, f := range r.laneFree {
		if f < r.laneFree[best] {
			best = i
		}
	}
	start := now
	if r.laneFree[best] > start {
		start = r.laneFree[best]
	}
	end = start + r.ServiceTime(n)
	r.laneFree[best] = end
	if end > r.busyUntil {
		r.busyUntil = end
	}
	return end
}

// QueueDepth reports how many lanes are busy at time now — the "load"
// metric the System Monitor exposes per tier.
func (r *Resource) QueueDepth(now float64) int {
	busy := 0
	for _, f := range r.laneFree {
		if f > now {
			busy++
		}
	}
	return busy
}

// Backlog returns how far beyond now the busiest lane is committed —
// a measure of queueing delay.
func (r *Resource) Backlog(now float64) float64 {
	if r.busyUntil <= now {
		return 0
	}
	return r.busyUntil - now
}

// Reset clears all lane state.
func (r *Resource) Reset() {
	for i := range r.laneFree {
		r.laneFree[i] = 0
	}
	r.busyUntil = 0
}

// Clock is a simple virtual-time accumulator for a sequential client.
type Clock struct{ now float64 }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds (negative d is ignored).
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is later.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds to zero.
func (c *Clock) Reset() { c.now = 0 }

// MaxTime returns the latest of a set of clocks — the makespan of a
// bulk-synchronous phase.
func MaxTime(clocks []Clock) float64 {
	m := 0.0
	for _, c := range clocks {
		m = math.Max(m, c.now)
	}
	return m
}
