package workload

import (
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/h5lite"
	"hcompress/internal/stats"
)

func TestPaperVPICSizes(t *testing.T) {
	c := PaperVPIC(2560, 16)
	if c.StepBytesPerRank() != 256<<20 {
		t.Errorf("step bytes %d, want 256MB", c.StepBytesPerRank())
	}
	// The motivation experiment: 2560 procs x 16 steps x 256MB = 10TB...
	// the paper quotes "each process produces 1GB" over 16 timesteps for
	// 8TB total; our per-step kernel matches §V-C1 (n*8*2^20*32 bytes).
	want := int64(2560) * 16 * 256 << 20
	if c.TotalBytes() != want {
		t.Errorf("total %d want %d", c.TotalBytes(), want)
	}
}

func TestVPICAttr(t *testing.T) {
	c := PaperVPIC(4, 2)
	a := c.Attr()
	if a.Type != stats.TypeFloat || a.Dist != stats.Gamma {
		t.Errorf("attr %+v", a)
	}
	if a.Size != int(c.StepBytesPerRank()) {
		t.Errorf("size %d", a.Size)
	}
}

func TestGenStepBufferIsValidH5Lite(t *testing.T) {
	c := PaperVPIC(4, 2)
	buf, err := c.GenStepBuffer(1, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f, err := h5lite.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Datasets) != 8 {
		t.Fatalf("VPIC writes 8 properties, got %d", len(f.Datasets))
	}
	for _, d := range f.Datasets {
		if d.Type != stats.TypeFloat {
			t.Errorf("%s: type %v", d.Name, d.Type)
		}
		if d.Elems() != 1024 || len(d.Data) != 4096 {
			t.Errorf("%s: %d elems, %d bytes", d.Name, d.Elems(), len(d.Data))
		}
		if d.Dist == nil {
			t.Errorf("%s: missing dist hint", d.Name)
		}
	}
	if _, ok := f.Lookup("energy"); !ok {
		t.Error("energy property missing")
	}
	// The analyzer must see the container format.
	if r := analyzer.Analyze(buf); r.Format != analyzer.FormatH5Lite {
		t.Errorf("format %v", r.Format)
	}
}

func TestGenStepBufferDeterministic(t *testing.T) {
	c := PaperVPIC(4, 2)
	a, _ := c.GenStepBuffer(0, 1, 512)
	b, _ := c.GenStepBuffer(0, 1, 512)
	if string(a) != string(b) {
		t.Error("not deterministic")
	}
	d, _ := c.GenStepBuffer(1, 1, 512)
	if string(a) == string(d) {
		t.Error("ranks produce identical data")
	}
}

func TestTaskKeyUnique(t *testing.T) {
	seen := map[string]bool{}
	for r := 0; r < 4; r++ {
		for s := 0; s < 4; s++ {
			k := TaskKey("vpic", r, s)
			if seen[k] {
				t.Fatalf("duplicate key %s", k)
			}
			seen[k] = true
		}
	}
}

func TestBDCATSPairsWithProducer(t *testing.T) {
	v := PaperVPIC(320, 10)
	b := PaperBDCATS(v)
	if b.Ranks != v.Ranks || b.Timesteps != v.Timesteps {
		t.Errorf("pairing: %+v", b)
	}
}

func TestMicroConfig(t *testing.T) {
	m := MicroConfig{Ranks: 2560, TasksPerRank: 128, TaskBytes: 1 << 20,
		Type: stats.TypeFloat, Dist: stats.Gamma}
	if m.TotalBytes() != 320<<30 {
		t.Errorf("total %d want 320GB", m.TotalBytes())
	}
	a := m.Attr()
	if a.Type != stats.TypeFloat || a.Size != 1<<20 {
		t.Errorf("attr %+v", a)
	}
	buf := m.GenTaskBuffer(3, 7, 4096)
	if len(buf) != 4096 {
		t.Errorf("buffer %d", len(buf))
	}
	buf2 := m.GenTaskBuffer(3, 7, 4096)
	if string(buf) != string(buf2) {
		t.Error("not deterministic")
	}
}
