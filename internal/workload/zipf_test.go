package workload

import "testing"

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(64, 0.99, 7)
	b := NewZipf(64, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 64, 20000
	z := NewZipf(n, 1.2, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	top4 := counts[0] + counts[1] + counts[2] + counts[3]
	if top4 < draws/2 {
		t.Errorf("top-4 ranks got %d/%d draws; s=1.2 should concentrate >half", top4, draws)
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("rank 0 (%d draws) should dominate rank %d (%d draws)", counts[0], n-1, counts[n-1])
	}
}

func TestZipfUniformAtZeroSkew(t *testing.T) {
	const n, draws = 16, 32000
	z := NewZipf(n, 0, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := draws / n
	for r, got := range counts {
		if got < want/2 || got > want*2 {
			t.Errorf("rank %d drawn %d times, want ~%d (uniform)", r, got, want)
		}
	}
}
