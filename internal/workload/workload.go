// Package workload synthesizes the I/O kernels the paper evaluates with:
//
//   - VPIC-IO: each MPI rank writes eight float32 properties per particle
//     (32 bytes/particle, 8M particles per rank = 256 MB per time step),
//     checkpoint-style, write-only.
//   - BD-CATS-IO: the companion analysis kernel that reads the particle
//     properties back for parallel clustering.
//   - HDF5-style micro-benchmarks: every rank writes/reads an independent
//     contiguous block of a shared file.
//
// Buffers carry particle-physics-like statistics (gamma-distributed
// energies, normal velocities) so the Input Analyzer and the codecs see
// realistic float data; for scaled runs only sizes and attributes are
// generated.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"hcompress/internal/analyzer"
	"hcompress/internal/h5lite"
	"hcompress/internal/stats"
)

// VPICConfig describes a VPIC-IO run.
type VPICConfig struct {
	Ranks             int
	Timesteps         int
	ParticlesPerRank  int // paper: 8 << 20
	BytesPerParticle  int // paper: 32 (8 float32 properties)
	ComputeSecPerStep float64
}

// PaperVPIC returns the configuration of §V-C1 scaled by ranks.
func PaperVPIC(ranks, timesteps int) VPICConfig {
	return VPICConfig{
		Ranks:             ranks,
		Timesteps:         timesteps,
		ParticlesPerRank:  8 << 20,
		BytesPerParticle:  32,
		ComputeSecPerStep: 60, // the paper's injected compute kernel interval
	}
}

// StepBytesPerRank is the checkpoint size each rank writes per time step.
func (c VPICConfig) StepBytesPerRank() int64 {
	return int64(c.ParticlesPerRank) * int64(c.BytesPerParticle)
}

// TotalBytes is the full run's output volume.
func (c VPICConfig) TotalBytes() int64 {
	return c.StepBytesPerRank() * int64(c.Ranks) * int64(c.Timesteps)
}

// Attr returns the data attributes of a VPIC checkpoint buffer without
// generating it (scaled/modeled runs). VPIC particle properties are
// float32 with heavy-tailed energy components: gamma.
func (c VPICConfig) Attr() analyzer.Result {
	return analyzer.Result{
		Type: stats.TypeFloat,
		Dist: stats.Gamma,
		Size: int(c.StepBytesPerRank()),
	}
}

// TaskKey names a rank's checkpoint for one step.
func TaskKey(prefix string, rank, step int) string {
	return fmt.Sprintf("%s/r%d/t%d", prefix, rank, step)
}

// particleProperties are VPIC's eight per-particle float32 fields.
var particleProperties = []struct {
	name string
	dist stats.Dist
}{
	{"x", stats.Uniform}, {"y", stats.Uniform}, {"z", stats.Uniform},
	{"ux", stats.Normal}, {"uy", stats.Normal}, {"uz", stats.Normal},
	{"energy", stats.Gamma}, {"id", stats.Exponential},
}

// GenStepBuffer materializes one rank's checkpoint for one step at a
// reduced particle count (nParticles), as an h5lite container mirroring
// VPIC-IO's HDF5 layout: eight float32 datasets of nParticles each.
func (c VPICConfig) GenStepBuffer(rank, step, nParticles int) ([]byte, error) {
	f := &h5lite.File{}
	seedBase := int64(rank)*1e6 + int64(step)*1e3
	for pi, prop := range particleProperties {
		rng := rand.New(rand.NewSource(seedBase + int64(pi)))
		s := stats.Sampler{Dist: prop.dist, Shape: 2, Scale: 100}
		data := make([]byte, 0, nParticles*4)
		for i := 0; i < nParticles; i++ {
			data = binary.LittleEndian.AppendUint32(data, math.Float32bits(float32(s.Sample(rng))))
		}
		dist := prop.dist
		f.Add(h5lite.Dataset{
			Name: prop.name,
			Type: stats.TypeFloat,
			Dist: &dist,
			Dims: []uint64{uint64(nParticles)},
			Data: data,
		})
	}
	return f.Encode()
}

// BDCATSConfig describes the BD-CATS-IO read kernel: it reads datasets
// "similar to those produced by VPIC" for parallel clustering.
type BDCATSConfig struct {
	Ranks     int
	Timesteps int
	// Producer is the VPIC run whose output is consumed.
	Producer VPICConfig
}

// PaperBDCATS pairs a BD-CATS reader with its VPIC producer.
func PaperBDCATS(v VPICConfig) BDCATSConfig {
	return BDCATSConfig{Ranks: v.Ranks, Timesteps: v.Timesteps, Producer: v}
}

// MicroConfig is the HDF5-source micro-benchmark: each process
// reads/writes an independent but overall contiguous block of a shared
// file.
type MicroConfig struct {
	Ranks        int
	TasksPerRank int
	TaskBytes    int64
	Type         stats.DataType
	Dist         stats.Dist
}

// Attr returns the micro-benchmark's data attributes.
func (m MicroConfig) Attr() analyzer.Result {
	return analyzer.Result{Type: m.Type, Dist: m.Dist, Size: int(m.TaskBytes)}
}

// TotalBytes is the volume written by the whole micro-benchmark.
func (m MicroConfig) TotalBytes() int64 {
	return m.TaskBytes * int64(m.Ranks) * int64(m.TasksPerRank)
}

// GenTaskBuffer materializes one micro-benchmark task buffer.
func (m MicroConfig) GenTaskBuffer(rank, task int, n int) []byte {
	return stats.GenBuffer(m.Type, m.Dist, n, int64(rank)*7919+int64(task))
}
