package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with power-law weight P(k) ∝ 1/(k+1)^s: rank
// 0 is the hottest key, and skew s controls how hot (s=0 is uniform,
// s≈1 is the classic web/storage access skew, larger s concentrates
// almost all traffic on the first few ranks). Unlike rand.Zipf it
// accepts any s > 0 — hot-read benchmarks want to sweep through s=0.5
// and s=0.99, both below the stdlib's s>1 floor.
//
// Sampling is inverse-CDF over a precomputed table (binary search, no
// rejection), so a sampler is deterministic for a given seed — the
// benchmark's cache-on and cache-off arms replay byte-identical key
// sequences.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a sampler over n ranks with skew s, seeded
// deterministically. s <= 0 degenerates to uniform; n < 1 is pinned
// to 1.
func NewZipf(n int, s float64, seed int64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// N is the rank count.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
