// Package seed implements the HCompress Profiler's knowledge repository:
// a JSON document holding measured codec performance for every
// (data type, distribution, codec) combination, a system signature for the
// storage hierarchy, the CCP's regression coefficients, and the global
// priority weights. The profiler writes it before the application starts;
// the library bootstraps all predictive models from it and writes the
// evolved model back at finalization — exactly the lifecycle in §IV-A/IV-D
// of the paper.
package seed

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hcompress/internal/codec"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

// CodecCost is the Expected Compression Cost 3-tuple from §IV-D:
// compression speed, decompression speed (MB/s) and compression ratio
// (original size over compressed size).
type CodecCost struct {
	CompressMBps   float64 `json:"compress_mbps"`
	DecompressMBps float64 `json:"decompress_mbps"`
	Ratio          float64 `json:"ratio"`
}

// Valid reports whether the cost tuple is physically plausible.
func (c CodecCost) Valid() bool {
	return c.CompressMBps > 0 && c.DecompressMBps > 0 && c.Ratio >= 1
}

// Key identifies one profiled combination.
func Key(dt stats.DataType, dist stats.Dist, codecName string) string {
	return dt.String() + "/" + dist.String() + "/" + codecName
}

// Seed is the serialized knowledge repository.
type Seed struct {
	Version          int                  `json:"version"`
	CreatedAt        string               `json:"created_at"`
	System           tier.Hierarchy       `json:"system_signature"`
	Costs            map[string]CodecCost `json:"costs"`
	ModelCoef        map[string][]float64 `json:"model_coefficients,omitempty"`
	Weights          Weights              `json:"weights"`
	FeedbackInterval int                  `json:"feedback_interval"`
}

// Weights are the application's compression priorities (Table II): the
// relative importance of compression speed, decompression speed, and
// compression ratio in the HCDP cost function — plus an optional Cost
// weight pricing placement in dollars (per-tier $/GB-month + egress,
// beyond the paper). Cost defaults to zero, which keeps the objective
// purely time-based and the planner's arithmetic bit-identical.
type Weights struct {
	Compression   float64 `json:"compression"`
	Decompression float64 `json:"decompression"`
	Ratio         float64 `json:"ratio"`
	Cost          float64 `json:"cost,omitempty"`
}

// Normalize scales the weights to sum to 1 (all-equal across the
// paper's three terms if all zero). A zero Cost leaves the other three
// exactly as they normalized before the cost term existed.
func (w Weights) Normalize() Weights {
	s := w.Compression + w.Decompression + w.Ratio + w.Cost
	if s <= 0 {
		return Weights{Compression: 1.0 / 3, Decompression: 1.0 / 3, Ratio: 1.0 / 3}
	}
	return Weights{Compression: w.Compression / s, Decompression: w.Decompression / s, Ratio: w.Ratio / s, Cost: w.Cost / s}
}

// Canonical priority presets from Table II of the paper.
var (
	// WeightsAsync prioritizes compression speed (asynchronous I/O:
	// writes are hidden, only the compress stall matters).
	WeightsAsync = Weights{Compression: 1, Decompression: 0, Ratio: 0}
	// WeightsArchival prioritizes ratio (archival I/O).
	WeightsArchival = Weights{Compression: 0, Decompression: 0, Ratio: 1}
	// WeightsReadAfterWrite balances all three (read-after-write
	// workflows such as VPIC + BD-CATS).
	WeightsReadAfterWrite = Weights{Compression: 0.3, Decompression: 0.3, Ratio: 0.4}
	// WeightsEqual is the evaluation default ("we set the workload
	// priority to equal for compression metrics").
	WeightsEqual = Weights{Compression: 1.0 / 3, Decompression: 1.0 / 3, Ratio: 1.0 / 3}
)

// Lookup returns the cost for the exact combination, falling back to the
// average over distributions for the type, then over everything for the
// codec. ok is false only if the codec appears nowhere.
func (s *Seed) Lookup(dt stats.DataType, dist stats.Dist, codecName string) (CodecCost, bool) {
	if c, ok := s.Costs[Key(dt, dist, codecName)]; ok && c.Valid() {
		return c, true
	}
	var sum CodecCost
	n := 0
	add := func(c CodecCost) {
		sum.CompressMBps += c.CompressMBps
		sum.DecompressMBps += c.DecompressMBps
		sum.Ratio += c.Ratio
		n++
	}
	prefix := dt.String() + "/"
	suffix := "/" + codecName
	for k, c := range s.Costs {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, suffix) && c.Valid() {
			add(c)
		}
	}
	if n == 0 {
		for k, c := range s.Costs {
			if strings.HasSuffix(k, suffix) && c.Valid() {
				add(c)
			}
		}
	}
	if n == 0 {
		return CodecCost{}, false
	}
	f := float64(n)
	return CodecCost{sum.CompressMBps / f, sum.DecompressMBps / f, sum.Ratio / f}, true
}

// Save writes the seed as indented JSON.
func (s *Seed) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("seed: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a seed from disk.
func Load(path string) (*Seed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("seed: %w", err)
	}
	var s Seed
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("seed: parse %s: %w", path, err)
	}
	if s.Costs == nil {
		s.Costs = map[string]CodecCost{}
	}
	if s.FeedbackInterval <= 0 {
		s.FeedbackInterval = DefaultFeedbackInterval
	}
	return &s, nil
}

// DefaultFeedbackInterval is the paper's configurable n: how many
// operations between feedback-loop model updates.
const DefaultFeedbackInterval = 64

// ProfileOptions controls Generate.
type ProfileOptions struct {
	BufSize  int   // bytes per probe buffer (default 256 KiB)
	Repeats  int   // timing repeats per combination (default 1)
	SeedBase int64 // RNG base seed
	// Codecs restricts profiling to these library names (default: all).
	Codecs []string
}

// Generate profiles every (type, distribution, codec) combination by
// actually compressing synthetic buffers — the HCompress Profiler's
// "evaluating the performance of each compression library with a variety
// of input data". The returned seed carries the measured table.
func Generate(h tier.Hierarchy, opts ProfileOptions) (*Seed, error) {
	if opts.BufSize <= 0 {
		opts.BufSize = 256 << 10
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 1
	}
	want := map[string]bool{}
	for _, n := range opts.Codecs {
		want[n] = true
	}
	s := &Seed{
		Version:          1,
		CreatedAt:        time.Now().UTC().Format(time.RFC3339),
		System:           h,
		Costs:            map[string]CodecCost{},
		Weights:          WeightsEqual,
		FeedbackInterval: DefaultFeedbackInterval,
	}
	for _, dt := range stats.AllTypes() {
		for _, dist := range stats.AllDists() {
			buf := stats.GenBuffer(dt, dist, opts.BufSize, opts.SeedBase+int64(dt)*100+int64(dist))
			for _, c := range codec.All() {
				if c.ID() == codec.None {
					continue
				}
				if len(want) > 0 && !want[c.Name()] {
					continue
				}
				cost, err := MeasureCodec(c, buf, opts.Repeats)
				if err != nil {
					return nil, fmt.Errorf("seed: profiling %s on %s/%s: %w", c.Name(), dt, dist, err)
				}
				s.Costs[Key(dt, dist, c.Name())] = cost
			}
		}
	}
	return s, nil
}

// MeasureCodec times one codec on one buffer and returns the cost tuple.
func MeasureCodec(c codec.Codec, buf []byte, repeats int) (CodecCost, error) {
	if repeats < 1 {
		repeats = 1
	}
	var comp, dec []byte
	var err error
	start := time.Now()
	for r := 0; r < repeats; r++ {
		comp, err = c.Compress(comp[:0], buf)
		if err != nil {
			return CodecCost{}, err
		}
	}
	compDur := time.Since(start).Seconds() / float64(repeats)

	start = time.Now()
	for r := 0; r < repeats; r++ {
		dec, err = c.Decompress(dec[:0], comp, len(buf))
		if err != nil {
			return CodecCost{}, err
		}
	}
	decDur := time.Since(start).Seconds() / float64(repeats)

	mb := float64(len(buf)) / (1 << 20)
	ratio := float64(len(buf)) / float64(len(comp))
	if ratio < 1 {
		ratio = 1 // constraint 4: rc >= 1; expanding codecs are clamped
	}
	const minDur = 1e-9
	if compDur < minDur {
		compDur = minDur
	}
	if decDur < minDur {
		decDur = minDur
	}
	return CodecCost{
		CompressMBps:   mb / compDur,
		DecompressMBps: mb / decDur,
		Ratio:          ratio,
	}, nil
}

// Builtin returns a statically authored seed calibrated from measurements
// of this package's codecs on a reference machine. It lets the library
// run without a profiling pass; the feedback loop corrects residual error
// at runtime. Speeds are MB/s.
func Builtin(h tier.Hierarchy) *Seed {
	s := &Seed{
		Version:          1,
		CreatedAt:        "builtin",
		System:           h,
		Costs:            map[string]CodecCost{},
		Weights:          WeightsEqual,
		FeedbackInterval: DefaultFeedbackInterval,
	}
	// Speeds (MB/s, single core) and per-data-class ratios measured from
	// this package's codecs on the reference machine (text, int, float,
	// binary columns; gamma-distributed content), re-profiled after the
	// codec raw-speed pass: each codec's reference speeds are scaled by
	// the speedup measured for that codec on the hcbench -codecbench
	// corpus (post/pre ratio from BENCH_codecs.json — machine- and
	// corpus-mix-independent, unlike this container's absolute MB/s).
	// Ratios are unchanged: the pass is format-preserving, so compressed
	// bytes are identical.
	type entry struct {
		comp, dec              float64
		text, ints, flt, binry float64
	}
	base := map[string]entry{
		"rle":     {930, 2520, 1.00, 1.00, 1.00, 1.39},
		"huffman": {214, 458, 1.93, 1.81, 1.55, 2.54},
		"lz4":     {980, 3630, 2.60, 1.32, 1.28, 1.50},
		"lzo":     {495, 1930, 3.25, 1.33, 1.26, 1.55},
		"pithy":   {1850, 2210, 2.41, 1.02, 1.01, 1.12},
		"snappy":  {1140, 1985, 3.41, 1.22, 1.12, 1.49},
		"quicklz": {1030, 2250, 2.60, 1.22, 1.13, 1.39},
		"brotli":  {66, 480, 5.04, 1.88, 1.72, 2.13},
		"zlib":    {167, 324, 6.15, 1.91, 1.70, 2.24},
		"bzip2":   {3.6, 12.4, 7.81, 2.23, 1.87, 2.04},
		"bsc":     {4.0, 7.1, 9.05, 2.47, 2.24, 2.24},
		"lzma":    {13.7, 92, 5.64, 1.90, 1.79, 2.14},
	}
	// Narrower distributions compress slightly better; uniform binary
	// noise is incompressible.
	distMul := map[stats.Dist]float64{
		stats.Uniform: 0.9, stats.Normal: 1.0,
		stats.Exponential: 1.1, stats.Gamma: 1.0,
	}
	for _, dt := range stats.AllTypes() {
		for _, dist := range stats.AllDists() {
			for name, b := range base {
				var r float64
				switch dt {
				case stats.TypeText:
					r = b.text
				case stats.TypeInt:
					r = b.ints
				case stats.TypeFloat:
					r = b.flt
				default:
					r = b.binry
					if dist == stats.Uniform {
						r = 1 // wrapped byte noise: no structure at all
					}
				}
				r = 1 + (r-1)*distMul[dist]
				if r < 1 {
					r = 1
				}
				s.Costs[Key(dt, dist, name)] = CodecCost{
					CompressMBps:   b.comp,
					DecompressMBps: b.dec,
					Ratio:          r,
				}
			}
		}
	}
	return s
}

// CodecNames lists the codecs present in the seed's table, sorted.
func (s *Seed) CodecNames() []string {
	set := map[string]bool{}
	for k := range s.Costs {
		parts := strings.Split(k, "/")
		if len(parts) == 3 {
			set[parts[2]] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
