package seed

import (
	"math"
	"path/filepath"
	"testing"

	"hcompress/internal/codec"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

func TestBuiltinCoversAllCombinations(t *testing.T) {
	s := Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	for _, dt := range stats.AllTypes() {
		for _, d := range stats.AllDists() {
			for _, c := range codec.All() {
				if c.ID() == codec.None {
					continue
				}
				cost, ok := s.Costs[Key(dt, d, c.Name())]
				if !ok {
					t.Fatalf("missing %s", Key(dt, d, c.Name()))
				}
				if !cost.Valid() {
					t.Fatalf("invalid cost for %s: %+v", Key(dt, d, c.Name()), cost)
				}
			}
		}
	}
	if len(s.CodecNames()) != len(codec.All())-1 {
		t.Errorf("CodecNames: %v", s.CodecNames())
	}
}

func TestBuiltinSpectrumShape(t *testing.T) {
	// The builtin table must preserve the orderings the paper depends on:
	// bsc compresses better but slower than lz4, everywhere.
	s := Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	for _, dt := range stats.AllTypes() {
		for _, d := range stats.AllDists() {
			lz4 := s.Costs[Key(dt, d, "lz4")]
			bsc := s.Costs[Key(dt, d, "bsc")]
			if lz4.CompressMBps <= bsc.CompressMBps {
				t.Errorf("%v/%v: lz4 should be faster than bsc", dt, d)
			}
			if bsc.Ratio < lz4.Ratio {
				t.Errorf("%v/%v: bsc should compress at least as well as lz4", dt, d)
			}
		}
	}
	// Floats compress worse than text for the heavy codecs.
	ft := s.Costs[Key(stats.TypeFloat, stats.Normal, "bzip2")]
	tx := s.Costs[Key(stats.TypeText, stats.Normal, "bzip2")]
	if ft.Ratio >= tx.Ratio {
		t.Errorf("float ratio %v should be below text ratio %v", ft.Ratio, tx.Ratio)
	}
}

func TestLookupFallbacks(t *testing.T) {
	s := Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	// Exact hit.
	c, ok := s.Lookup(stats.TypeInt, stats.Gamma, "snappy")
	if !ok || !c.Valid() {
		t.Fatal("exact lookup failed")
	}
	// Remove the exact entry: falls back to type average.
	delete(s.Costs, Key(stats.TypeInt, stats.Gamma, "snappy"))
	c2, ok := s.Lookup(stats.TypeInt, stats.Gamma, "snappy")
	if !ok || !c2.Valid() {
		t.Fatal("type-average fallback failed")
	}
	// Remove all int entries: falls back to global codec average.
	for _, d := range stats.AllDists() {
		delete(s.Costs, Key(stats.TypeInt, d, "snappy"))
	}
	c3, ok := s.Lookup(stats.TypeInt, stats.Gamma, "snappy")
	if !ok || !c3.Valid() {
		t.Fatal("global fallback failed")
	}
	// Unknown codec: not ok.
	if _, ok := s.Lookup(stats.TypeInt, stats.Gamma, "zstd"); ok {
		t.Fatal("unknown codec should miss")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.json")
	s := Builtin(tier.Ares(2*tier.GB, 4*tier.GB, tier.TB, 10*tier.TB))
	s.Weights = WeightsReadAfterWrite
	s.FeedbackInterval = 32
	s.ModelCoef = map[string][]float64{"lz4/ratio": {1.5, 0.2}}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.FeedbackInterval != 32 {
		t.Errorf("interval %d", back.FeedbackInterval)
	}
	if back.Weights != WeightsReadAfterWrite {
		t.Errorf("weights %+v", back.Weights)
	}
	if len(back.Costs) != len(s.Costs) {
		t.Errorf("costs %d != %d", len(back.Costs), len(s.Costs))
	}
	if back.System.Len() != 4 || back.System.Tiers[0].Capacity != 2*tier.GB {
		t.Errorf("system signature lost")
	}
	if len(back.ModelCoef["lz4/ratio"]) != 2 {
		t.Errorf("model coefficients lost")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/seed.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateProfilesRealCodecs(t *testing.T) {
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB)
	// Tiny buffers and a fast codec subset keep the test quick while
	// exercising the real measurement path.
	s, err := Generate(h, ProfileOptions{
		BufSize: 16 << 10,
		Codecs:  []string{"lz4", "snappy", "huffman"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range stats.AllTypes() {
		for _, d := range stats.AllDists() {
			for _, name := range []string{"lz4", "snappy", "huffman"} {
				c, ok := s.Costs[Key(dt, d, name)]
				if !ok || !c.Valid() {
					t.Fatalf("profile missing %s/%s/%s: %+v", dt, d, name, c)
				}
			}
		}
	}
	if got := s.CodecNames(); len(got) != 3 {
		t.Errorf("profiled codecs: %v", got)
	}
	// Text must profile with a real ratio above 1 for LZ codecs.
	if c := s.Costs[Key(stats.TypeText, stats.Uniform, "lz4")]; c.Ratio <= 1.1 {
		t.Errorf("text/lz4 ratio %v suspiciously low", c.Ratio)
	}
}

func TestMeasureCodecAgainstKnownInput(t *testing.T) {
	c, _ := codec.ByName("rle")
	buf := make([]byte, 64<<10) // zeros: RLE compresses massively
	cost, err := MeasureCodec(c, buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Ratio < 50 {
		t.Errorf("rle on zeros ratio %v", cost.Ratio)
	}
	if cost.CompressMBps <= 0 || cost.DecompressMBps <= 0 {
		t.Errorf("non-positive speeds: %+v", cost)
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{Compression: 2, Decompression: 1, Ratio: 1}.Normalize()
	if math.Abs(w.Compression-0.5) > 1e-12 || math.Abs(w.Ratio-0.25) > 1e-12 {
		t.Errorf("normalize: %+v", w)
	}
	z := Weights{}.Normalize()
	if math.Abs(z.Compression+z.Decompression+z.Ratio-1) > 1e-12 {
		t.Errorf("zero weights should normalize to equal: %+v", z)
	}
	// Table II presets.
	if WeightsAsync.Normalize().Compression != 1 {
		t.Error("async preset")
	}
	if WeightsArchival.Normalize().Ratio != 1 {
		t.Error("archival preset")
	}
	raw := WeightsReadAfterWrite.Normalize()
	if math.Abs(raw.Ratio-0.4) > 1e-12 {
		t.Errorf("read-after-write preset: %+v", raw)
	}
}

func TestCodecCostValid(t *testing.T) {
	cases := []struct {
		c    CodecCost
		want bool
	}{
		{CodecCost{100, 100, 2}, true},
		{CodecCost{0, 100, 2}, false},
		{CodecCost{100, 0, 2}, false},
		{CodecCost{100, 100, 0.9}, false},
		{CodecCost{100, 100, 1}, true},
	}
	for i, c := range cases {
		if c.c.Valid() != c.want {
			t.Errorf("case %d: %+v", i, c.c)
		}
	}
}
