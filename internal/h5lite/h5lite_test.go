package h5lite

import (
	"bytes"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/stats"
)

func sampleFile() *File {
	gamma := stats.Gamma
	f := &File{}
	f.Add(Dataset{
		Name: "energy", Type: stats.TypeFloat, Dist: &gamma,
		Dims: []uint64{1024}, Data: make([]byte, 4096),
	})
	f.Add(Dataset{
		Name: "id", Type: stats.TypeInt,
		Dims: []uint64{32, 32}, Data: make([]byte, 4096),
	})
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Datasets) != 2 {
		t.Fatalf("datasets %d", len(back.Datasets))
	}
	d0 := back.Datasets[0]
	if d0.Name != "energy" || d0.Type != stats.TypeFloat || d0.Dist == nil || *d0.Dist != stats.Gamma {
		t.Errorf("dataset 0: %+v", d0)
	}
	if d0.Elems() != 1024 {
		t.Errorf("elems %d", d0.Elems())
	}
	d1 := back.Datasets[1]
	if d1.Dist != nil {
		t.Error("dataset 1 should have no dist hint")
	}
	if d1.Elems() != 1024 || len(d1.Dims) != 2 {
		t.Errorf("dataset 1 dims: %v", d1.Dims)
	}
	if !bytes.Equal(d0.Data, f.Datasets[0].Data) {
		t.Error("data mismatch")
	}
}

func TestLookup(t *testing.T) {
	f := sampleFile()
	if _, ok := f.Lookup("energy"); !ok {
		t.Error("lookup energy failed")
	}
	if _, ok := f.Lookup("missing"); ok {
		t.Error("missing dataset found")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := sampleFile()
	buf, _ := f.Encode()
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("NOTMAGIC" + string(make([]byte, 20))),
		buf[:len(buf)-100],   // truncated data
		buf[:7],              // truncated superblock
		append(buf, 1, 2, 3), // trailing garbage
		func() []byte { b := append([]byte(nil), buf...); b[4] = 99; return b }(), // bad version
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corruption accepted", i)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	f := &File{}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Datasets) != 0 {
		t.Error("phantom datasets")
	}
}

func TestHintFastPath(t *testing.T) {
	f := sampleFile()
	buf, _ := f.Encode()
	// Both datasets are 4096 bytes; the first wins ties.
	dtype, dist, ok := Hint(buf)
	if !ok || dtype != stats.TypeFloat {
		t.Fatalf("hint: %v %v %v", dtype, dist, ok)
	}
	if dist == nil || *dist != stats.Gamma {
		t.Error("dist hint lost")
	}
	if _, _, ok := Hint([]byte("garbage")); ok {
		t.Error("hint on garbage")
	}
}

func TestAnalyzerIntegration(t *testing.T) {
	// The analyzer recognizes h5lite containers by magic, and the Hint
	// fast path supplies the attributes without statistical detection.
	f := sampleFile()
	buf, _ := f.Encode()
	r := analyzer.Analyze(buf)
	if r.Format != analyzer.FormatH5Lite {
		t.Errorf("format %v", r.Format)
	}
	dtype, dist, ok := Hint(buf)
	if !ok {
		t.Fatal("hint failed")
	}
	r2 := analyzer.AnalyzeWithHint(buf, &analyzer.Hint{Type: &dtype, Dist: dist})
	if r2.Type != stats.TypeFloat || r2.Dist != stats.Gamma {
		t.Errorf("fast path attributes: %+v", r2)
	}
}

func TestEncodeLimits(t *testing.T) {
	f := &File{}
	f.Add(Dataset{Name: string(make([]byte, 70000))})
	if _, err := f.Encode(); err == nil {
		t.Error("oversized name accepted")
	}
	f2 := &File{}
	f2.Add(Dataset{Name: "d", Dims: make([]uint64, 300)})
	if _, err := f2.Encode(); err == nil {
		t.Error("too many dims accepted")
	}
}
