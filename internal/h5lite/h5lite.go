// Package h5lite is a minimal self-describing array container standing in
// for HDF5 in the reproduction (see DESIGN.md §2). Like HDF5 it carries a
// magic superblock and typed, named, multi-dimensional datasets, so the
// Input Analyzer's "metadata parsing of self-described portable data
// representations" fast path has something real to parse. Unlike HDF5 it
// is deliberately tiny: one flat file, little-endian, no chunking.
//
// Layout:
//
//	superblock: "H5LT" | u8 version | u32 ndatasets
//	dataset:    u16 nameLen | name | u8 dtype | u8 dist (255 = unknown)
//	            | u8 ndims | ndims x u64 dims | u64 dataLen | data
package h5lite

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hcompress/internal/stats"
)

// Magic is the superblock signature (matches analyzer.H5LiteMagic).
var Magic = [4]byte{'H', '5', 'L', 'T'}

// Version is the current format version.
const Version = 1

// ErrBadFormat is returned for malformed containers.
var ErrBadFormat = errors.New("h5lite: malformed container")

const distUnknown = 255

// Dataset is one named, typed array.
type Dataset struct {
	Name string
	Type stats.DataType
	// Dist optionally records the content distribution (a writer-side
	// hint HCompress exploits); nil means unknown.
	Dist *stats.Dist
	Dims []uint64
	Data []byte
}

// Elems returns the number of elements implied by Dims.
func (d Dataset) Elems() uint64 {
	if len(d.Dims) == 0 {
		return 0
	}
	n := uint64(1)
	for _, v := range d.Dims {
		n *= v
	}
	return n
}

// File is an in-memory h5lite container.
type File struct {
	Datasets []Dataset
}

// Add appends a dataset.
func (f *File) Add(d Dataset) { f.Datasets = append(f.Datasets, d) }

// Lookup finds a dataset by name.
func (f *File) Lookup(name string) (Dataset, bool) {
	for _, d := range f.Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Encode serializes the container.
func (f *File) Encode() ([]byte, error) {
	size := 9
	for _, d := range f.Datasets {
		if len(d.Name) > 65535 {
			return nil, fmt.Errorf("h5lite: dataset name too long")
		}
		if len(d.Dims) > 255 {
			return nil, fmt.Errorf("h5lite: too many dimensions")
		}
		size += 2 + len(d.Name) + 3 + 8*len(d.Dims) + 8 + len(d.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, Magic[:]...)
	out = append(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Datasets)))
	for _, d := range f.Datasets {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(d.Name)))
		out = append(out, d.Name...)
		out = append(out, byte(d.Type))
		if d.Dist != nil {
			out = append(out, byte(*d.Dist))
		} else {
			out = append(out, distUnknown)
		}
		out = append(out, byte(len(d.Dims)))
		for _, v := range d.Dims {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(len(d.Data)))
		out = append(out, d.Data...)
	}
	return out, nil
}

// Decode parses a container. Dataset Data slices alias buf.
func Decode(buf []byte) (*File, error) {
	if len(buf) < 9 || buf[0] != Magic[0] || buf[1] != Magic[1] || buf[2] != Magic[2] || buf[3] != Magic[3] {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, buf[4])
	}
	n := int(binary.LittleEndian.Uint32(buf[5:]))
	pos := 9
	f := &File{}
	for i := 0; i < n; i++ {
		if pos+2 > len(buf) {
			return nil, fmt.Errorf("%w: truncated name length", ErrBadFormat)
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		if pos+nameLen+3 > len(buf) {
			return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
		}
		d := Dataset{Name: string(buf[pos : pos+nameLen])}
		pos += nameLen
		d.Type = stats.DataType(buf[pos])
		distB := buf[pos+1]
		ndims := int(buf[pos+2])
		pos += 3
		if distB != distUnknown {
			dist := stats.Dist(distB)
			d.Dist = &dist
		}
		if pos+8*ndims+8 > len(buf) {
			return nil, fmt.Errorf("%w: truncated dims", ErrBadFormat)
		}
		for k := 0; k < ndims; k++ {
			d.Dims = append(d.Dims, binary.LittleEndian.Uint64(buf[pos:]))
			pos += 8
		}
		dataLen := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		if uint64(len(buf)-pos) < dataLen {
			return nil, fmt.Errorf("%w: truncated data", ErrBadFormat)
		}
		d.Data = buf[pos : pos+int(dataLen)]
		pos += int(dataLen)
		f.Datasets = append(f.Datasets, d)
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(buf)-pos)
	}
	return f, nil
}

// Hint extracts the analyzer hint of the container's dominant dataset
// (the largest by payload), implementing the self-described fast path.
func Hint(buf []byte) (dtype stats.DataType, dist *stats.Dist, ok bool) {
	f, err := Decode(buf)
	if err != nil || len(f.Datasets) == 0 {
		return 0, nil, false
	}
	best := 0
	for i, d := range f.Datasets {
		if len(d.Data) > len(f.Datasets[best].Data) {
			best = i
		}
	}
	return f.Datasets[best].Type, f.Datasets[best].Dist, true
}
