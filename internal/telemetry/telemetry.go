// Package telemetry is the observability substrate shared by every
// pipeline component: a lock-cheap metrics registry (atomic counters,
// gauges, and fixed-bucket histograms), a Prometheus text-format
// exposition, a typed snapshot for tests, and a JSONL sink for trace
// spans and decision-audit records (trace.go).
//
// The design constraint is the staged concurrency pipeline: telemetry
// must never reintroduce the global lock PR 1 removed. Instruments are
// therefore plain atomics handed out once at registration time — the hot
// path is an atomic add on a handle the component already holds, with no
// map lookup and no registry lock. The registry mutex guards
// registration and exposition only.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every instrument method no-ops on a nil receiver. Components keep
// instrument fields that are simply nil when telemetry is off, so the
// disabled cost is one predictable branch per event.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {tier, "nvme"}). Labels are fixed
// at registration; there is no dynamic label path on the hot side.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing int64.
type Counter struct {
	v      atomic.Int64
	labels []Label
}

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move both ways.
type Gauge struct {
	bits   atomic.Uint64
	labels []Label
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (CAS loop). No-op on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics:
// bucket i counts observations <= bounds[i], plus an implicit +Inf
// bucket. Observations are two atomic adds and one atomic float update;
// quantiles are estimated at read time by linear interpolation within the
// winning bucket (the same estimate histogram_quantile computes).
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	labels  []Label
}

// Observe records v. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets. An
// observation in the +Inf bucket reports the largest finite bound.
// Concurrent observers make the estimate approximate, never wrong by
// more than a bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			upper := h.bounds[i]
			return lower + (upper-lower)*(rank-cum)/float64(c)
		}
		cum += float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Shared bucket layouts, so the same quantity is always comparable.
var (
	// SecondsBuckets spans 1µs..10s — codec, I/O, and op latencies.
	SecondsBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// RatioBuckets spans compression ratios 1x..128x.
	RatioBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128}
	// RelErrBuckets spans relative errors 0.1%..10x.
	RelErrBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// DepthBuckets counts small integers (plan depth, batch sizes).
	DepthBuckets = []float64{1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 48, 64}
)

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every labeled series registered under one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any // label-key string -> instrument
}

// Registry hands out instruments and renders expositions. The zero value
// is not usable; call New. A nil *Registry is the "telemetry off" value:
// it hands out nil instruments and writes empty expositions.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	base     []Label // appended to every registration (e.g. shard="2")
}

// New creates an empty registry. Any base labels given are appended to
// every series registered through it — how a router stamps each shard's
// whole instrument tree with shard="N" without any component knowing it
// is sharded. No base labels (the common case) changes nothing: series
// names are byte-identical to an unlabeled registry.
func New(base ...Label) *Registry {
	return &Registry{families: make(map[string]*family), base: base}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// SeriesName renders the canonical "name{k="v"}" series identifier used
// as the key in Snapshot maps.
func SeriesName(name string, labels ...Label) string {
	lk := labelKey(labels)
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

// lookup finds or creates the series for (name, labels), creating the
// family on first use via mk. It panics when a name is reused with a
// different metric kind — that is a programming error, not runtime state.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func() any) any {
	if len(r.base) > 0 {
		labels = append(append(make([]Label, 0, len(labels)+len(r.base)), labels...), r.base...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	lk := labelKey(labels)
	inst, ok := f.series[lk]
	if !ok {
		inst = mk()
		f.series[lk] = inst
	}
	return inst
}

// Counter returns the counter series for (name, labels), registering it
// on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, labels, func() any {
		return &Counter{labels: labels}
	}).(*Counter)
}

// Gauge returns the gauge series for (name, labels). Nil on nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, gaugeKind, labels, func() any {
		return &Gauge{labels: labels}
	}).(*Gauge)
}

// Histogram returns the histogram series for (name, labels) with the
// given bucket upper bounds (the first registration's bounds win for the
// whole family). Nil on nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, histogramKind, labels, func() any {
		h := &Histogram{bounds: bounds, labels: labels}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return h
	}).(*Histogram)
}

// HistogramStat is the typed summary of one histogram series.
type HistogramStat struct {
	Count int64
	Sum   float64
	P50   float64
	P90   float64
	P99   float64
}

// Snapshot is the typed dump of every registered series, keyed by the
// canonical series name ("name{k=\"v\"}").
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramStat
}

// Snapshot captures every series. Concurrent writers keep running;
// values are each atomically read but the snapshot is not a global
// atomic cut (same contract as the System Monitor's tier view).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStat),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for lk, inst := range f.series {
			key := f.name
			if lk != "" {
				key = f.name + "{" + lk + "}"
			}
			switch v := inst.(type) {
			case *Counter:
				s.Counters[key] = v.Value()
			case *Gauge:
				s.Gauges[key] = v.Value()
			case *Histogram:
				s.Histograms[key] = HistogramStat{
					Count: v.Count(),
					Sum:   v.Sum(),
					P50:   v.Quantile(0.50),
					P90:   v.Quantile(0.90),
					P99:   v.Quantile(0.99),
				}
			}
		}
	}
	return s
}

// WritePrometheus renders the registry in Prometheus text format
// (version 0.0.4), families and series sorted by name so output is
// stable and diffable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for lk := range f.series {
			keys = append(keys, lk)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, lk := range keys {
			series[i] = f.series[lk]
		}
		r.mu.Unlock()
		for i, lk := range keys {
			switch v := series[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesRef(f.name, lk, ""), v.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", seriesRef(f.name, lk, ""), formatFloat(v.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, lk, v)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MergePrometheus renders several registries as one Prometheus text
// exposition: families with the same name across registries collapse
// into one HELP/TYPE block whose series are concatenated and sorted.
// The callers' registries must keep their series disjoint (the router
// does this with per-shard base labels); a duplicate series would be
// emitted twice. Nil registries are skipped.
func MergePrometheus(w io.Writer, regs ...*Registry) error {
	type entry struct {
		lk   string
		inst any
	}
	merged := make(map[string]*family)
	series := make(map[string][]entry)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		for name, f := range r.families {
			if m, ok := merged[name]; ok {
				if m.kind != f.kind {
					r.mu.Unlock()
					return fmt.Errorf("telemetry: merging %s: registered as %s and %s", name, m.kind, f.kind)
				}
			} else {
				merged[name] = f
				names = append(names, name)
			}
			for lk, inst := range f.series {
				series[name] = append(series[name], entry{lk, inst})
			}
		}
		r.mu.Unlock()
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := merged[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind)
		es := series[name]
		sort.Slice(es, func(i, j int) bool { return es[i].lk < es[j].lk })
		for _, e := range es {
			switch v := e.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesRef(name, e.lk, ""), v.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", seriesRef(name, e.lk, ""), formatFloat(v.Value()))
			case *Histogram:
				writeHistogram(&b, name, e.lk, v)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesRef renders name{labels,extra} with either part optional.
func seriesRef(name, lk, extra string) string {
	switch {
	case lk == "" && extra == "":
		return name
	case lk == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + lk + "}"
	default:
		return name + "{" + lk + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func writeHistogram(b *strings.Builder, name, lk string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n",
			seriesRef(name+"_bucket", lk, fmt.Sprintf(`le="%s"`, formatFloat(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", seriesRef(name+"_bucket", lk, `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s %s\n", seriesRef(name+"_sum", lk, ""), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s %d\n", seriesRef(name+"_count", lk, ""), h.count.Load())
}
