package telemetry

import (
	"testing"
	"time"
)

// sloClock is the injectable test clock: advance it explicitly to step
// across bucket boundaries.
type sloClock struct{ now time.Time }

func (c *sloClock) Now() time.Time { return c.now }

func newTestEngine(reg *Registry) (*SLOEngine, *sloClock) {
	clk := &sloClock{now: time.Unix(1000, 0)}
	e := NewSLOEngine(SLOOptions{
		Objective:     0.9,
		LatencyTarget: 100 * time.Millisecond,
		Window:        10 * time.Second,
		Buckets:       10,
		Now:           clk.Now,
	}, reg)
	return e, clk
}

// TestSLORecordAndReport: good/bad classification (failure or latency
// over target), window counts, good ratio, and the burn-rate formula
// (bad fraction over error budget).
func TestSLORecordAndReport(t *testing.T) {
	e, _ := newTestEngine(nil)
	for i := 0; i < 8; i++ {
		e.Record("acme", "compress", 10*time.Millisecond, false) // good
	}
	e.Record("acme", "compress", 500*time.Millisecond, false) // slow: bad
	e.Record("acme", "compress", 10*time.Millisecond, true)   // failed: bad

	rep := e.Report()
	if len(rep) != 1 {
		t.Fatalf("%d series, want 1", len(rep))
	}
	st := rep[0]
	if st.Tenant != "acme" || st.Class != "compress" {
		t.Fatalf("series identity %+v", st)
	}
	if st.Good != 8 || st.Total != 10 {
		t.Fatalf("good/total = %d/%d, want 8/10", st.Good, st.Total)
	}
	if st.GoodRatio != 0.8 {
		t.Errorf("good ratio %v, want 0.8", st.GoodRatio)
	}
	// Bad fraction 0.2 against a 0.1 budget: burning at 2x.
	if st.BurnRate < 1.999 || st.BurnRate > 2.001 {
		t.Errorf("burn rate %v, want 2.0", st.BurnRate)
	}
	if st.Objective != 0.9 || st.LatencyTarget != 0.1 || st.WindowSeconds != 10 {
		t.Errorf("configured objectives not echoed: %+v", st)
	}
}

// TestSLOWindowRotation: requests age out of the rolling window as the
// injected clock advances; a full window of silence zeroes the series.
func TestSLOWindowRotation(t *testing.T) {
	e, clk := newTestEngine(nil)
	e.Record("acme", "compress", time.Millisecond, true) // one bad request
	if st := e.Report()[0]; st.Total != 1 || st.Good != 0 {
		t.Fatalf("initial window %+v", st)
	}
	// Half a window later the bad request still counts.
	clk.now = clk.now.Add(5 * time.Second)
	e.Record("acme", "compress", time.Millisecond, false)
	if st := e.Report()[0]; st.Total != 2 || st.Good != 1 {
		t.Fatalf("mid-window %+v", st)
	}
	// A full window past the bad request, only the good one remains.
	clk.now = clk.now.Add(6 * time.Second)
	if st := e.Report()[0]; st.Total != 1 || st.Good != 1 || st.BurnRate != 0 {
		t.Fatalf("after rotation %+v", st)
	}
	// A long silence empties the window entirely; ratio degrades to 1.
	clk.now = clk.now.Add(time.Hour)
	if st := e.Report()[0]; st.Total != 0 || st.GoodRatio != 1 || st.BurnRate != 0 {
		t.Fatalf("after full expiry %+v", st)
	}
}

// TestSLOReportOrdering: multiple series report sorted by tenant then
// class, so the JSON endpoint and smoke tests see stable output.
func TestSLOReportOrdering(t *testing.T) {
	e, _ := newTestEngine(nil)
	for _, s := range [][2]string{
		{"zeta", "compress"}, {"acme", "decompress"}, {"acme", "compress"}, {"mid", "delete"},
	} {
		e.Record(s[0], s[1], time.Millisecond, false)
	}
	rep := e.Report()
	var got [][2]string
	for _, st := range rep {
		got = append(got, [2]string{st.Tenant, st.Class})
	}
	want := [][2]string{
		{"acme", "compress"}, {"acme", "decompress"}, {"mid", "delete"}, {"zeta", "compress"},
	}
	if len(got) != len(want) {
		t.Fatalf("%d series, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series %d is %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSLOGauges: with a registry attached, the engine exports lifetime
// hc_slo_*_total counters on Record and refreshes the window gauges on
// Report.
func TestSLOGauges(t *testing.T) {
	reg := New()
	e, _ := newTestEngine(reg)
	for i := 0; i < 3; i++ {
		e.Record("acme", "compress", time.Millisecond, false)
	}
	e.Record("acme", "compress", time.Millisecond, true)
	e.Report()

	snap := reg.Snapshot()
	if got := snap.Counters[`hc_slo_good_total{tenant="acme",class="compress"}`]; got != 3 {
		t.Errorf("hc_slo_good_total %d, want 3", got)
	}
	if got := snap.Counters[`hc_slo_requests_total{tenant="acme",class="compress"}`]; got != 4 {
		t.Errorf("hc_slo_requests_total %d, want 4", got)
	}
	if got := snap.Gauges[`hc_slo_good_ratio{tenant="acme",class="compress"}`]; got != 0.75 {
		t.Errorf("hc_slo_good_ratio %v, want 0.75", got)
	}
	// Bad fraction 0.25 over the 0.1 budget.
	if got := snap.Gauges[`hc_slo_burn_rate{tenant="acme",class="compress"}`]; got < 2.499 || got > 2.501 {
		t.Errorf("hc_slo_burn_rate %v, want 2.5", got)
	}
}

// TestSLONilSafety: a nil engine (telemetry off) absorbs records and
// reports nothing — the service layer never branches.
func TestSLONilSafety(t *testing.T) {
	var e *SLOEngine
	e.Record("acme", "compress", time.Millisecond, false)
	if rep := e.Report(); rep != nil {
		t.Fatalf("nil engine reported %v", rep)
	}
}
