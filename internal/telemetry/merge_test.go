package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryBaseLabels: a registry built with base labels stamps them
// onto every series after the call-site labels — the mechanism the
// router uses to give each shard's pipeline a shard="N" dimension
// without the pipeline knowing it is sharded.
func TestRegistryBaseLabels(t *testing.T) {
	r := New(L("shard", "3"))
	r.Counter("hc_ops_total", "ops", L("op", "put")).Inc()
	r.Gauge("hc_depth", "depth").Set(2)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hc_ops_total{op="put",shard="3"} 1`,
		`hc_depth{shard="3"} 2`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
	// Same name+labels resolves to the same instrument (base labels
	// participate in identity).
	r.Counter("hc_ops_total", "ops", L("op", "put")).Inc()
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), `hc_ops_total{op="put",shard="3"} 2`) {
		t.Errorf("re-registration split the series:\n%s", b2.String())
	}
}

// TestMergePrometheus: per-shard registries render as one exposition —
// one HELP/TYPE block per family, series concatenated across
// registries and sorted, families unique to one registry preserved,
// nil registries skipped.
func TestMergePrometheus(t *testing.T) {
	r0 := New(L("shard", "0"))
	r1 := New(L("shard", "1"))
	r0.Counter("hc_ops_total", "ops").Add(5)
	r1.Counter("hc_ops_total", "ops").Add(7)
	r1.Gauge("hc_only_one", "solo").Set(1)

	var b bytes.Buffer
	if err := MergePrometheus(&b, r0, nil, r1); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if got := strings.Count(text, "# TYPE hc_ops_total counter"); got != 1 {
		t.Fatalf("family header appears %d times, want 1:\n%s", got, text)
	}
	i0 := strings.Index(text, `hc_ops_total{shard="0"} 5`)
	i1 := strings.Index(text, `hc_ops_total{shard="1"} 7`)
	if i0 < 0 || i1 < 0 {
		t.Fatalf("missing per-shard series:\n%s", text)
	}
	if i0 > i1 {
		t.Fatalf("series not sorted by labels:\n%s", text)
	}
	if !strings.Contains(text, `hc_only_one{shard="1"} 1`) {
		t.Fatalf("single-registry family dropped:\n%s", text)
	}

	// A name registered with different kinds across registries is a
	// merge error, not silent corruption.
	bad := New()
	bad.Gauge("hc_ops_total", "ops").Set(1)
	if err := MergePrometheus(&bytes.Buffer{}, r0, bad); err == nil {
		t.Fatal("kind mismatch merged silently")
	}
}
