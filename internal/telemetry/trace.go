package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink serializes trace records — spans, decision audits — to a single
// writer as JSON Lines. Records passed to one Emit call are written
// contiguously under the sink lock, so one operation's spans and audits
// never interleave with another's even under concurrent clients.
//
// Records must marshal deterministically (structs, no maps) and must
// carry only virtual-clock quantities when export determinism matters:
// the CI contract is that the same serial workload produces byte-
// identical JSONL regardless of the worker-pool width.
//
// A nil *Sink drops everything, so callers emit unconditionally.
type Sink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSink wraps w; a nil writer yields a nil (drop-everything) sink.
func NewSink(w io.Writer) *Sink {
	if w == nil {
		return nil
	}
	return &Sink{w: w}
}

// Emit writes each record as one JSON line. Marshal or write failures
// drop the record — tracing is best-effort and must never fail an
// operation that already succeeded.
func (s *Sink) Emit(records ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range records {
		b, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		b = append(b, '\n')
		if _, err := s.w.Write(b); err != nil {
			return
		}
	}
}
