package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
)

// Sink serializes trace records — spans, decision audits — to a single
// writer as JSON Lines. Records passed to one Emit call are written
// contiguously under the sink lock, so one operation's spans and audits
// never interleave with another's even under concurrent clients.
//
// Records must marshal deterministically (structs, no maps) and must
// carry only virtual-clock quantities when export determinism matters:
// the CI contract is that the same serial workload produces byte-
// identical JSONL regardless of the worker-pool width.
//
// A nil *Sink drops everything, so callers emit unconditionally.
type Sink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSink wraps w; a nil writer yields a nil (drop-everything) sink.
func NewSink(w io.Writer) *Sink {
	if w == nil {
		return nil
	}
	return &Sink{w: w}
}

// Appender is the fast-path encoding hook: a record that knows how to
// append itself as one JSON object skips encoding/json's reflection
// walk entirely. The hot per-operation records (spans, audits)
// implement it; rare records (fault events) fall back to json.Marshal.
// Implementations must produce the same bytes encoding/json would, so
// a record kind can move between paths without changing the export.
type Appender interface {
	AppendJSON(dst []byte) []byte
}

// emitBufs recycles Emit's encode buffers: one batch per operation on
// the hot path makes this allocation worth pooling.
var emitBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Emit writes each record as one JSON line. Marshal or write failures
// drop the record — tracing is best-effort and must never fail an
// operation that already succeeded.
//
// Encoding happens outside the sink lock: concurrent operations encode
// their span batches in parallel and only the final write is
// serialized, so the sink never becomes the pipeline's convoy point.
// The batch lands in one Write call, preserving the contiguity
// contract (and sparing slow writers per-record syscalls).
func (s *Sink) Emit(records ...any) {
	if s == nil {
		return
	}
	bp := emitBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	for _, rec := range records {
		if a, ok := rec.(Appender); ok {
			buf = append(a.AppendJSON(buf), '\n')
			continue
		}
		b, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		buf = append(append(buf, b...), '\n')
	}
	if len(buf) > 0 {
		s.mu.Lock()
		_, _ = s.w.Write(buf)
		s.mu.Unlock()
	}
	*bp = buf[:0]
	emitBufs.Put(bp)
}

// EmitBatch is the zero-boxing variant of Emit: fill appends complete
// JSON lines ('\n'-terminated) to the buffer it is handed, and the
// result lands in one Write under the sink lock. The hot per-operation
// paths use this to emit a whole span tree plus audits without the
// []any conversion Emit's variadic signature forces.
func (s *Sink) EmitBatch(fill func(dst []byte) []byte) {
	if s == nil {
		return
	}
	bp := emitBufs.Get().(*[]byte)
	buf := fill((*bp)[:0])
	if len(buf) > 0 {
		s.mu.Lock()
		_, _ = s.w.Write(buf)
		s.mu.Unlock()
	}
	*bp = buf[:0]
	emitBufs.Put(bp)
}

// The append helpers below are the building blocks for Appender
// implementations. They reproduce encoding/json's output byte for byte
// — same float formatting, same string escaping (including the default
// HTML-safe escapes) — so hand-encoded and reflected records are
// indistinguishable in the export.

// AppendJSONString appends s as a quoted, escaped JSON string.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	from := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		dst = append(dst, s[from:i]...)
		switch c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		from = i + 1
	}
	dst = append(dst, s[from:]...)
	return append(dst, '"')
}

// AppendJSONFloat appends v in encoding/json's float format: %g-style
// with 'e' notation outside [1e-6, 1e21) and single-digit negative
// exponents unpadded. Non-finite values (which encoding/json rejects)
// encode as 0.
func AppendJSONFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		// encoding/json trims the padded exponent: 1e-06 -> 1e-6.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// AppendJSONInt appends v as a JSON number.
func AppendJSONInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}
