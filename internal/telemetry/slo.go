package telemetry

import (
	"sort"
	"sync"
	"time"
)

// The SLO engine keeps rolling-window good/total counts per (tenant,
// class) series and computes error-budget burn rates against configured
// objectives. It is deliberately simple — a fixed ring of time buckets
// per series, advanced lazily on Record/Report — so recording is a few
// integer ops under one mutex and never allocates after the first
// request of a series.

// SLOOptions configures the engine. Zero values select the defaults
// noted on each field.
type SLOOptions struct {
	// Objective is the targeted fraction of good requests in the window
	// (default 0.999). A request is good when it did not fail and its
	// latency is at or under LatencyTarget.
	Objective float64
	// LatencyTarget is the per-request latency goal (default 250ms).
	LatencyTarget time.Duration
	// Window is the rolling measurement window (default 60s).
	Window time.Duration
	// Buckets is the ring granularity inside the window (default 30).
	Buckets int
	// Now is the clock, injectable for deterministic tests
	// (default time.Now).
	Now func() time.Time
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Objective <= 0 || o.Objective >= 1 {
		o.Objective = 0.999
	}
	if o.LatencyTarget <= 0 {
		o.LatencyTarget = 250 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.Buckets <= 0 {
		o.Buckets = 30
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// SLOStatus is one (tenant, class) series' report: window counts, the
// good ratio, and the error-budget burn rate. BurnRate is the window's
// bad fraction divided by the budget (1 - objective): 1.0 means the
// budget is being consumed exactly as fast as the objective allows,
// above 1.0 means the tenant is on track to blow its SLO.
type SLOStatus struct {
	Tenant        string  `json:"tenant"`
	Class         string  `json:"class"`
	Objective     float64 `json:"objective"`
	LatencyTarget float64 `json:"latencyTargetSecs"`
	WindowSeconds float64 `json:"windowSecs"`
	Good          int64   `json:"good"`
	Total         int64   `json:"total"`
	GoodRatio     float64 `json:"goodRatio"`
	BurnRate      float64 `json:"burnRate"`
}

type sloKey struct{ tenant, class string }

type sloSeries struct {
	good, total []int64 // ring, one slot per bucket
	cur         int     // index of the current bucket
	curStart    time.Time
	goodC       *Counter // hc_slo_good_total, lifetime
	totalC      *Counter // hc_slo_requests_total, lifetime
	burnG       *Gauge   // hc_slo_burn_rate, set on Report
	ratioG      *Gauge   // hc_slo_good_ratio, set on Report
}

// SLOEngine tracks SLO compliance per (tenant, class). All methods are
// safe for concurrent use. reg may be nil (no hc_slo_* series exported).
type SLOEngine struct {
	opt    SLOOptions
	bucket time.Duration
	reg    *Registry

	mu     sync.Mutex
	series map[sloKey]*sloSeries
}

// NewSLOEngine builds an engine with opt (zero fields defaulted),
// exporting hc_slo_* series on reg when non-nil.
func NewSLOEngine(opt SLOOptions, reg *Registry) *SLOEngine {
	opt = opt.withDefaults()
	return &SLOEngine{
		opt:    opt,
		bucket: opt.Window / time.Duration(opt.Buckets),
		reg:    reg,
		series: make(map[sloKey]*sloSeries),
	}
}

// seriesFor returns (creating on first use) the ring for one key.
// Caller holds e.mu.
func (e *SLOEngine) seriesFor(k sloKey, now time.Time) *sloSeries {
	sr, ok := e.series[k]
	if !ok {
		sr = &sloSeries{
			good:     make([]int64, e.opt.Buckets),
			total:    make([]int64, e.opt.Buckets),
			curStart: now,
		}
		if e.reg != nil {
			ls := []Label{L("tenant", k.tenant), L("class", k.class)}
			sr.goodC = e.reg.Counter("hc_slo_good_total", "requests meeting the SLO (no error, latency under target)", ls...)
			sr.totalC = e.reg.Counter("hc_slo_requests_total", "requests counted against the SLO", ls...)
			sr.burnG = e.reg.Gauge("hc_slo_burn_rate", "error-budget burn rate over the rolling window (1.0 = burning exactly at budget)", ls...)
			sr.ratioG = e.reg.Gauge("hc_slo_good_ratio", "fraction of good requests over the rolling window", ls...)
		}
		e.series[k] = sr
	}
	return sr
}

// advance rotates the ring so sr.cur covers now, zeroing skipped
// buckets. Caller holds e.mu.
func (e *SLOEngine) advance(sr *sloSeries, now time.Time) {
	steps := int(now.Sub(sr.curStart) / e.bucket)
	if steps <= 0 {
		return
	}
	if steps > e.opt.Buckets {
		steps = e.opt.Buckets
		sr.curStart = now
	} else {
		sr.curStart = sr.curStart.Add(time.Duration(steps) * e.bucket)
	}
	for i := 0; i < steps; i++ {
		sr.cur = (sr.cur + 1) % e.opt.Buckets
		sr.good[sr.cur] = 0
		sr.total[sr.cur] = 0
	}
}

// Record counts one served request. failed marks server-side failures;
// a request is good when it did not fail and latency is at or under the
// configured target.
func (e *SLOEngine) Record(tenant, class string, latency time.Duration, failed bool) {
	if e == nil {
		return
	}
	good := !failed && latency <= e.opt.LatencyTarget
	now := e.opt.Now()
	e.mu.Lock()
	sr := e.seriesFor(sloKey{tenant, class}, now)
	e.advance(sr, now)
	sr.total[sr.cur]++
	if good {
		sr.good[sr.cur]++
	}
	e.mu.Unlock()
	sr.totalC.Inc()
	if good {
		sr.goodC.Inc()
	}
}

// Report returns every series' window status, sorted by tenant then
// class for stable output, and refreshes the hc_slo_* gauges. A nil
// engine reports nothing.
func (e *SLOEngine) Report() []SLOStatus {
	if e == nil {
		return nil
	}
	now := e.opt.Now()
	e.mu.Lock()
	out := make([]SLOStatus, 0, len(e.series))
	for k, sr := range e.series {
		e.advance(sr, now)
		var good, total int64
		for i := range sr.total {
			good += sr.good[i]
			total += sr.total[i]
		}
		st := SLOStatus{
			Tenant:        k.tenant,
			Class:         k.class,
			Objective:     e.opt.Objective,
			LatencyTarget: e.opt.LatencyTarget.Seconds(),
			WindowSeconds: e.opt.Window.Seconds(),
			Good:          good,
			Total:         total,
			GoodRatio:     1,
		}
		if total > 0 {
			st.GoodRatio = float64(good) / float64(total)
			st.BurnRate = (1 - st.GoodRatio) / (1 - e.opt.Objective)
		}
		sr.ratioG.Set(st.GoodRatio)
		sr.burnG.Set(st.BurnRate)
		out = append(out, st)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Class < out[j].Class
	})
	return out
}
