package telemetry

import "context"

// ReqInfo is the request identity propagated from the service front-end
// down through the router, shard, manager, and fanout pool. It rides the
// context (like fanout's scheduling class) so no hot-path signature has
// to change when a new layer wants to attribute work to a request.
//
// ID is the trace identifier stamped on every span of the op's span
// tree. Tenant and Class are attribution labels; Class is a plain
// string ("interactive"/"batch") rather than the fanout type so this
// package stays dependency-free.
type ReqInfo struct {
	ID     string
	Tenant string
	Class  string
}

type reqKey struct{}

// WithReq returns a context carrying the request identity.
func WithReq(ctx context.Context, ri ReqInfo) context.Context {
	return context.WithValue(ctx, reqKey{}, ri)
}

// ReqOf extracts the request identity, or the zero ReqInfo when the
// context carries none (library callers that never heard of tracing).
func ReqOf(ctx context.Context) ReqInfo {
	ri, _ := ctx.Value(reqKey{}).(ReqInfo)
	return ri
}
