package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", SecondsBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops, no panics.
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var sink *Sink
	sink.Emit(struct{}{}) // must not panic
	if NewSink(nil) != nil {
		t.Fatal("NewSink(nil) must be nil")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("hc_test_total", "a counter", L("tier", "ram"))
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("hc_test_total", "a counter", L("tier", "ram")) != c {
		t.Fatal("re-registration must return the same instrument")
	}
	g := r.Gauge("hc_test_used", "a gauge")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("hc_x", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("hc_x", "h")
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", LinearBuckets(0.01, 0.01, 100))
	// Uniform 0..1: p50 ~ 0.5, p90 ~ 0.9, p99 ~ 0.99.
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) / 10000)
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("q%.2f = %g, want ~%g", tc.q, got, tc.want)
		}
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-4999.5) > 1 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// +Inf bucket observations report the largest finite bound.
	h2 := r.Histogram("lat2", "latency", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("+Inf quantile = %g, want 2", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("hc_tier_put_bytes_total", "bytes written per tier", L("tier", "ram")).Add(4096)
	r.Counter("hc_tier_put_bytes_total", "bytes written per tier", L("tier", "pfs")).Add(100)
	r.Gauge("hc_tier_used_bytes", "used", L("tier", "ram")).Set(512)
	h := r.Histogram("hc_ratio", "ratios", []float64{1, 2, 4}, L("codec", "snappy"))
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(9)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP hc_tier_put_bytes_total bytes written per tier",
		"# TYPE hc_tier_put_bytes_total counter",
		`hc_tier_put_bytes_total{tier="pfs"} 100`,
		`hc_tier_put_bytes_total{tier="ram"} 4096`,
		"# TYPE hc_tier_used_bytes gauge",
		`hc_tier_used_bytes{tier="ram"} 512`,
		"# TYPE hc_ratio histogram",
		`hc_ratio_bucket{codec="snappy",le="1"} 0`,
		`hc_ratio_bucket{codec="snappy",le="2"} 1`,
		`hc_ratio_bucket{codec="snappy",le="4"} 2`,
		`hc_ratio_bucket{codec="snappy",le="+Inf"} 3`,
		`hc_ratio_sum{codec="snappy"} 13.5`,
		`hc_ratio_count{codec="snappy"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families sorted by name: hc_ratio before hc_tier_*.
	if strings.Index(out, "hc_ratio") > strings.Index(out, "hc_tier_put_bytes_total") {
		t.Error("families not sorted by name")
	}
	// Exposition must be stable across calls.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("exposition not deterministic across calls")
	}
}

func TestSnapshotKeys(t *testing.T) {
	r := New()
	r.Counter("c_total", "h", L("k", "v")).Add(7)
	r.Gauge("g", "h").Set(3)
	r.Histogram("h", "h", []float64{1, 2}).Observe(1.5)
	s := r.Snapshot()
	if s.Counters[`c_total{k="v"}`] != 7 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 3 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	hs, ok := s.Histograms["h"]
	if !ok || hs.Count != 1 || hs.Sum != 1.5 {
		t.Fatalf("histograms = %v", s.Histograms)
	}
	if SeriesName("c_total", L("k", "v")) != `c_total{k="v"}` {
		t.Fatal("SeriesName mismatch")
	}
}

// TestRegistryConcurrencyStress is the -race contract for the registry:
// many goroutines hammer counters, gauges, and histograms — including
// racing first-time registrations — while a reader goroutine scrapes the
// Prometheus exposition and snapshots concurrently. Totals must come out
// exact because every write is atomic.
func TestRegistryConcurrencyStress(t *testing.T) {
	r := New()
	const (
		writers = 8
		perG    = 2000
	)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b bytes.Buffer
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine re-registers the shared series and also owns
			// a private one, exercising both lookup paths under race.
			shared := r.Counter("stress_total", "shared")
			own := r.Counter("stress_own_total", "own", L("g", fmt.Sprint(g)))
			gauge := r.Gauge("stress_gauge", "shared gauge")
			hist := r.Histogram("stress_hist", "shared hist", SecondsBuckets)
			for i := 0; i < perG; i++ {
				shared.Inc()
				own.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%1000) / 1000)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := r.Counter("stress_total", "shared").Value(); got != writers*perG {
		t.Fatalf("shared counter = %d, want %d", got, writers*perG)
	}
	for g := 0; g < writers; g++ {
		if got := r.Counter("stress_own_total", "own", L("g", fmt.Sprint(g))).Value(); got != perG {
			t.Fatalf("own counter %d = %d, want %d", g, got, perG)
		}
	}
	if got := r.Gauge("stress_gauge", "shared gauge").Value(); got != writers*perG {
		t.Fatalf("gauge = %g, want %d", got, writers*perG)
	}
	if got := r.Histogram("stress_hist", "shared hist", SecondsBuckets).Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
}

func TestSinkEmitsJSONL(t *testing.T) {
	var b bytes.Buffer
	s := NewSink(&b)
	type rec struct {
		Record string  `json:"record"`
		V      float64 `json:"v"`
	}
	s.Emit(rec{"span", 1.5}, rec{"audit", 2})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), b.String())
	}
	var got rec
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Record != "audit" || got.V != 2 {
		t.Fatalf("line = %+v", got)
	}
}
