// Package readcache is the read-path accelerator's hot-block cache: an
// admission-controlled, refcounted LRU of decompressed payloads keyed by
// task. It is the symmetric complement of the background demoter — the
// demoter cools overfull tiers by moving compressed blobs down the
// hierarchy; the cache warms hot keys by keeping their *decompressed*
// bytes in DRAM so a repeat read skips the tier walk and the codec
// entirely.
//
// Ownership model: every cached payload is a bufpool arena buffer carrying
// an atomic reference count. The cache holds one reference while the entry
// is resident; every Get hands the caller a pin (a release func) that
// holds another. The buffer returns to the arena exactly once, when the
// last reference drops — so a Report handed to a caller survives a
// concurrent invalidation (overwrite, delete, demotion, health flip) and
// Release never double-frees.
//
// Admission is frequency-gated with a two-generation touch filter (a tiny
// doorkeeper in the TinyLFU sense): a key's first read never caches; only
// a key seen MinTouches times opens a fill. Fills are registered as
// pending tokens so an invalidation that races a fill in flight aborts it
// — stale bytes can never re-enter the cache after an overwrite.
//
// The cache is a client-side DRAM structure living off the modeled
// timeline: hits cost zero virtual seconds and never touch the store, the
// DES lanes, or the predictor feedback loop.
package readcache

import (
	"strconv"
	"sync"
	"sync/atomic"

	"hcompress/internal/bufpool"
	"hcompress/internal/telemetry"
)

// Meta is the write-time attribution stored next to a cached payload so a
// cache-hit Report can be assembled without consulting the manager.
type Meta struct {
	// Size is the decompressed payload length.
	Size int64
	// Stored is the on-tier compressed footprint at fill time.
	Stored       int64
	DataType     string
	Distribution string
}

// entry is one resident payload. refs counts the cache's own reference
// (1 while resident) plus one per outstanding caller pin; the buffer goes
// back to the arena when refs hits zero.
type entry struct {
	key  string
	data []byte
	meta Meta
	refs atomic.Int32
	// prefetched marks an entry filled ahead of demand; cleared (and
	// counted as a used prefetch) on its first hit.
	prefetched bool
	prev, next *entry // LRU list: head is most recent
}

// unref drops one reference and returns the buffer to the arena when it
// was the last. Lock-free: called both under the cache mutex (eviction,
// invalidation) and without it (caller release).
func (e *entry) unref() {
	if e.refs.Add(-1) == 0 {
		bufpool.Put(e.data)
	}
}

// Fill is a pending-fill token: the right to insert one payload for one
// key, revocable by invalidation. Obtain one with BeginFill (demand path,
// admission-gated) or BeginPrefetch, then Commit or Abort it exactly once.
type Fill struct {
	key      string
	prefetch bool
	aborted  bool
}

// Stats is a point-in-time counter snapshot (Shard.CacheStats surface).
type Stats struct {
	Entries  int
	Bytes    int64
	Capacity int64

	Hits          int64
	Misses        int64
	Admissions    int64
	Rejects       int64 // admission-gate rejections (single-touch keys)
	Evictions     int64
	Invalidations int64

	PrefetchIssued    int64
	PrefetchUsed      int64
	PrefetchFailed    int64
	PrefetchCancelled int64
}

// metrics is the optional telemetry surface; all fields are nil-safe.
type metrics struct {
	hits, misses, admissions, rejects    *telemetry.Counter
	evictions, invalidations             *telemetry.Counter
	pfIssued, pfUsed, pfFailed, pfCancel *telemetry.Counter
	bytes, entries                       *telemetry.Gauge
}

// access is one slot of the ring of recent key accesses the prefetcher
// mines for patterns.
type access struct {
	key    string
	prefix string // non-empty when the key ends in a decimal run index
	num    int64
}

// Cache is the per-shard decompressed-block cache. Safe for concurrent
// use; one short mutex guards the map, LRU list, touch filter, pending
// fills, and access ring. Payload lifetime is refcounted outside the
// mutex, so holding a pinned buffer never blocks the cache.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*entry
	head     *entry // LRU: most recently used
	tail     *entry // least recently used

	minTouches int
	// Two-generation touch filter: a key's touch count is cur[k]+prev[k].
	// When cur outgrows touchCap the generations rotate, so the filter's
	// memory is bounded but a hot key's count survives the rotation.
	cur, prev map[string]uint32
	touchCap  int

	pending map[string][]*Fill

	ring     []access
	ringNext int
	ringLen  int

	st Stats
	tm metrics
}

// New builds a cache bounded by capacity bytes. minTouches is the
// admission threshold (reads of a key before it may cache; minimum 1
// caches on the first re-read — i.e. the second touch). ringSize bounds
// the access ring the prefetcher mines.
func New(capacity int64, minTouches, ringSize int) *Cache {
	if minTouches < 1 {
		minTouches = 1
	}
	if ringSize < 8 {
		ringSize = 8
	}
	return &Cache{
		capacity:   capacity,
		entries:    make(map[string]*entry),
		minTouches: minTouches,
		cur:        make(map[string]uint32),
		prev:       make(map[string]uint32),
		touchCap:   4096,
		pending:    make(map[string][]*Fill),
		ring:       make([]access, ringSize),
		st:         Stats{Capacity: capacity},
	}
}

// SetTelemetry registers the hc_cache_* / hc_prefetch_* instruments on
// reg. Nil reg (telemetry off) leaves every instrument nil — the no-op
// fast path.
func (c *Cache) SetTelemetry(reg *telemetry.Registry) {
	c.tm = metrics{
		hits:          reg.Counter("hc_cache_hits_total", "Read-cache hits."),
		misses:        reg.Counter("hc_cache_misses_total", "Read-cache misses."),
		admissions:    reg.Counter("hc_cache_admissions_total", "Payloads admitted into the read cache."),
		rejects:       reg.Counter("hc_cache_rejects_total", "Fills rejected by the frequency admission gate."),
		evictions:     reg.Counter("hc_cache_evictions_total", "Entries evicted to make room."),
		invalidations: reg.Counter("hc_cache_invalidations_total", "Entries invalidated by overwrite/delete/demotion/health flip."),
		pfIssued:      reg.Counter("hc_prefetch_issued_total", "Prefetch fills started."),
		pfUsed:        reg.Counter("hc_prefetch_used_total", "Prefetched entries that served a demand hit."),
		pfFailed:      reg.Counter("hc_prefetch_failed_total", "Prefetch fills that failed."),
		pfCancel:      reg.Counter("hc_prefetch_cancelled_total", "Prefetch fills cancelled by shutdown."),
		bytes:         reg.Gauge("hc_cache_bytes", "Bytes of decompressed payload resident in the read cache."),
		entries:       reg.Gauge("hc_cache_entries", "Entries resident in the read cache."),
	}
}

// touch records one access for the admission filter and returns the key's
// accumulated touch count.
func (c *Cache) touch(key string) int {
	if len(c.cur) >= c.touchCap {
		c.prev = c.cur
		c.cur = make(map[string]uint32)
	}
	c.cur[key]++
	return int(c.cur[key] + c.prev[key])
}

// record pushes one access onto the ring.
func (c *Cache) record(key string) {
	a := access{key: key}
	if p, n, ok := splitRunKey(key); ok {
		a.prefix, a.num = p, n
	}
	c.ring[c.ringNext] = a
	c.ringNext = (c.ringNext + 1) % len(c.ring)
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}
}

// Get looks key up. On a hit it returns the payload, its write-time meta,
// and a release func pinning the buffer — the caller must invoke release
// exactly once when done (Report.Release does). The returned bytes are
// shared with the cache: treat them as read-only until released. Both
// hits and misses count a touch and land in the access ring.
func (c *Cache) Get(key string) (data []byte, meta Meta, release func(), ok bool) {
	c.mu.Lock()
	c.record(key)
	e := c.entries[key]
	if e == nil {
		c.touch(key)
		c.st.Misses++
		c.mu.Unlock()
		c.tm.misses.Inc()
		return nil, Meta{}, nil, false
	}
	c.touch(key)
	c.st.Hits++
	if e.prefetched {
		e.prefetched = false
		c.st.PrefetchUsed++
		c.tm.pfUsed.Inc()
	}
	c.lruFront(e)
	e.refs.Add(1) // caller pin, under the lock so eviction can't race it to zero
	c.mu.Unlock()
	c.tm.hits.Inc()
	var once sync.Once
	return e.data, e.meta, func() { once.Do(e.unref) }, true
}

// BeginFill opens a demand fill for key if the admission gate passes: the
// key must have accumulated minTouches touches (the Get miss that
// preceded this call counts). Returns nil when admission rejects, the key
// is already resident, or a fill is already pending — the caller then
// just skips caching.
func (c *Cache) BeginFill(key string) *Fill {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] != nil || len(c.pending[key]) > 0 {
		return nil
	}
	if int(c.cur[key]+c.prev[key]) < c.minTouches {
		c.st.Rejects++
		c.tm.rejects.Inc()
		return nil
	}
	f := &Fill{key: key}
	c.pending[key] = append(c.pending[key], f)
	return f
}

// BeginPrefetch opens an ahead-of-demand fill. Pattern detection is its
// own admission signal, so the touch gate does not apply; resident and
// already-pending keys return nil.
func (c *Cache) BeginPrefetch(key string) *Fill {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] != nil || len(c.pending[key]) > 0 {
		return nil
	}
	f := &Fill{key: key, prefetch: true}
	c.pending[key] = append(c.pending[key], f)
	c.st.PrefetchIssued++
	c.tm.pfIssued.Inc()
	return f
}

// Commit completes a fill with the payload read for it. On success the
// cache takes a reference on data (a bufpool arena buffer) and, for
// demand fills, returns a caller pin exactly like a Get hit. ok=false —
// the fill was aborted by an invalidation, the key is already resident,
// or the payload cannot fit — leaves ownership of data with the caller
// (release is nil).
func (c *Cache) Commit(f *Fill, data []byte, meta Meta) (release func(), ok bool) {
	c.mu.Lock()
	c.unpend(f)
	need := int64(cap(data))
	if f.aborted || c.entries[f.key] != nil || need > c.capacity {
		c.mu.Unlock()
		return nil, false
	}
	for c.used+need > c.capacity && c.tail != nil {
		c.evictLocked(c.tail)
	}
	if c.used+need > c.capacity {
		c.mu.Unlock()
		return nil, false
	}
	e := &entry{key: f.key, data: data, meta: meta, prefetched: f.prefetch}
	e.refs.Store(1) // the cache's reference
	if !f.prefetch {
		e.refs.Add(1) // the demand caller's pin
	}
	c.entries[f.key] = e
	c.lruPush(e)
	c.used += need
	c.st.Admissions++
	c.setGauges()
	c.mu.Unlock()
	c.tm.admissions.Inc()
	if f.prefetch {
		return nil, true
	}
	var once sync.Once
	return func() { once.Do(e.unref) }, true
}

// Abort cancels a pending fill (read error, shutdown). cancelled
// distinguishes a prefetch stopped by teardown from one that failed.
func (c *Cache) Abort(f *Fill, cancelled bool) {
	c.mu.Lock()
	c.unpend(f)
	if f.prefetch {
		if cancelled {
			c.st.PrefetchCancelled++
		} else {
			c.st.PrefetchFailed++
		}
	}
	c.mu.Unlock()
	if f.prefetch {
		if cancelled {
			c.tm.pfCancel.Inc()
		} else {
			c.tm.pfFailed.Inc()
		}
	}
}

// unpend removes f from the pending set. Caller holds c.mu.
func (c *Cache) unpend(f *Fill) {
	fills := c.pending[f.key]
	for i, p := range fills {
		if p == f {
			fills = append(fills[:i], fills[i+1:]...)
			break
		}
	}
	if len(fills) == 0 {
		delete(c.pending, f.key)
	} else {
		c.pending[f.key] = fills
	}
}

// Invalidate drops key's resident entry (outstanding pins keep the buffer
// alive; the cache's own reference is released) and revokes any pending
// fills so an in-flight read of the old bytes cannot re-insert them.
// Called on overwrite, delete, and demotion.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		c.removeLocked(e)
		c.st.Invalidations++
		c.setGauges()
	}
	for _, f := range c.pending[key] {
		f.aborted = true
	}
	c.mu.Unlock()
	if e != nil {
		c.tm.invalidations.Inc()
	}
}

// InvalidateAll purges every entry and revokes every pending fill — the
// health-flip and shutdown hammer: after a tier transition the store's
// shape changed under us, so the only safe cache is an empty one.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	n := len(c.entries)
	for _, e := range c.entries {
		c.removeLocked(e)
	}
	for _, fills := range c.pending {
		for _, f := range fills {
			f.aborted = true
		}
	}
	c.st.Invalidations += int64(n)
	c.setGauges()
	c.mu.Unlock()
	c.tm.invalidations.Add(int64(n))
}

// evictLocked removes the LRU victim to make room. Caller holds c.mu.
func (c *Cache) evictLocked(e *entry) {
	c.removeLocked(e)
	c.st.Evictions++
	c.tm.evictions.Inc()
}

// removeLocked unlinks e from the map and LRU list and drops the cache's
// reference. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lruUnlink(e)
	c.used -= int64(cap(e.data))
	e.unref()
}

func (c *Cache) setGauges() {
	c.tm.bytes.Set(float64(c.used))
	c.tm.entries.Set(float64(len(c.entries)))
}

func (c *Cache) lruPush(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) lruUnlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) lruFront(e *entry) {
	if c.head == e {
		return
	}
	c.lruUnlink(e)
	c.lruPush(e)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.st
	s.Entries = len(c.entries)
	s.Bytes = c.used
	s.Capacity = c.capacity
	return s
}

// Candidates mines the access ring for prefetch targets: keys touched at
// least twice that are not resident (a re-warming signal for hot keys
// that were evicted or invalidated), and — for keys ending in a decimal
// run index, like "p3-17" — the next depth keys of any ascending run
// (sequential readahead). At most max keys are returned; resident and
// pending keys are excluded.
func (c *Cache) Candidates(max, depth int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if max <= 0 || c.ringLen == 0 {
		return nil
	}
	seen := make(map[string]int, c.ringLen)
	type run struct {
		last int64
		len  int
	}
	runs := make(map[string]*run)
	order := make([]string, 0, c.ringLen) // repeated keys in first-touch order
	// Walk oldest → newest so sequential runs accumulate in access order.
	start := c.ringNext - c.ringLen
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < c.ringLen; i++ {
		a := c.ring[(start+i)%len(c.ring)]
		seen[a.key]++
		if seen[a.key] == 2 {
			order = append(order, a.key)
		}
		if a.prefix != "" {
			if r := runs[a.prefix]; r != nil && a.num == r.last+1 {
				r.last, r.len = a.num, r.len+1
			} else {
				runs[a.prefix] = &run{last: a.num, len: 1}
			}
		}
	}
	var out []string
	picked := make(map[string]bool)
	add := func(key string) {
		if len(out) >= max || picked[key] ||
			c.entries[key] != nil || len(c.pending[key]) > 0 {
			return
		}
		picked[key] = true
		out = append(out, key)
	}
	for _, key := range order {
		add(key)
	}
	for _, a := range c.ring {
		// Deterministic run iteration: revisit ring slots in order and
		// expand each prefix's run once.
		if a.prefix == "" {
			continue
		}
		r := runs[a.prefix]
		if r == nil || r.len < 2 {
			continue
		}
		runs[a.prefix] = nil
		for d := int64(1); d <= int64(depth); d++ {
			add(a.prefix + strconv.FormatInt(r.last+d, 10))
		}
	}
	return out
}

// splitRunKey splits a key at its longest trailing decimal suffix
// ("p3-17" → "p3-", 17) so sequential runs can be detected and extended.
func splitRunKey(key string) (prefix string, num int64, ok bool) {
	i := len(key)
	for i > 0 && key[i-1] >= '0' && key[i-1] <= '9' {
		i--
	}
	digits := key[i:]
	if i == 0 || len(digits) == 0 || len(digits) > 18 {
		return "", 0, false
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return key[:i], n, true
}
