package readcache

import (
	"bytes"
	"fmt"
	"testing"

	"hcompress/internal/bufpool"
)

// fill writes key through the demand path far enough to pass admission
// (miss twice at minTouches=2), then commits payload. Fails the test if
// any step is refused.
func fill(t *testing.T, c *Cache, key string, payload []byte) {
	t.Helper()
	for i := 0; i < 2; i++ {
		if _, _, _, ok := c.Get(key); ok {
			t.Fatalf("unexpected hit for %q before fill", key)
		}
	}
	f := c.BeginFill(key)
	if f == nil {
		t.Fatalf("BeginFill(%q) refused after two touches", key)
	}
	data := bufpool.Get(len(payload))
	copy(data, payload)
	release, ok := c.Commit(f, data, Meta{Size: int64(len(payload))})
	if !ok {
		bufpool.Put(data)
		t.Fatalf("Commit(%q) refused", key)
	}
	release()
}

func TestAdmissionRejectsSingleTouch(t *testing.T) {
	c := New(1<<20, 2, 16)
	if _, _, _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	if f := c.BeginFill("k"); f != nil {
		t.Fatal("BeginFill admitted a single-touch key")
	}
	st := c.Stats()
	if st.Rejects != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Rejects=1 Misses=1", st)
	}
	// Second miss reaches the threshold.
	c.Get("k")
	f := c.BeginFill("k")
	if f == nil {
		t.Fatal("BeginFill refused a twice-touched key")
	}
	c.Abort(f, false)
}

func TestHitReturnsIdenticalBytes(t *testing.T) {
	c := New(1<<20, 2, 16)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	fill(t, c, "k", payload)
	data, meta, release, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after fill")
	}
	if !bytes.Equal(data[:meta.Size], payload) {
		t.Fatalf("cached bytes differ: %q vs %q", data[:meta.Size], payload)
	}
	release()
	release() // idempotent: sync.Once guards the pin
	if st := c.Stats(); st.Hits != 1 || st.Admissions != 1 {
		t.Fatalf("stats = %+v, want Hits=1 Admissions=1", st)
	}
}

func TestLRUEviction(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	const size = 4096
	c := New(2*size, 1, 16) // room for exactly two entries
	for _, key := range []string{"a", "b"} {
		fill(t, c, key, bytes.Repeat([]byte(key), size))
	}
	c.Get("a") // "a" is now MRU; "b" is the LRU victim
	fill(t, c, "c", bytes.Repeat([]byte("c"), size))
	if _, _, _, ok := c.Get("b"); ok {
		t.Fatal("LRU victim still resident")
	}
	if _, _, release, ok := c.Get("a"); !ok {
		t.Fatal("MRU entry evicted")
	} else {
		release()
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want Evictions=1 Entries=2", st)
	}
}

func TestOversizedPayloadRefused(t *testing.T) {
	c := New(1024, 1, 16)
	c.Get("big")
	f := c.BeginFill("big")
	if f == nil {
		t.Fatal("BeginFill refused")
	}
	data := bufpool.Get(4096)
	if _, ok := c.Commit(f, data, Meta{Size: 4096}); ok {
		t.Fatal("oversized payload admitted")
	}
	bufpool.Put(data) // ownership stayed with the caller
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0", st.Entries)
	}
}

func TestInvalidateAbortsPendingFill(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	c := New(1<<20, 1, 16)
	c.Get("k")
	f := c.BeginFill("k")
	if f == nil {
		t.Fatal("BeginFill refused")
	}
	c.Invalidate("k") // overwrite races the in-flight fill
	data := bufpool.Get(64)
	if _, ok := c.Commit(f, data, Meta{Size: 64}); ok {
		t.Fatal("aborted fill committed stale bytes")
	}
	bufpool.Put(data)
	if _, _, _, ok := c.Get("k"); ok {
		t.Fatal("stale entry resident after invalidation")
	}
}

func TestPinSurvivesInvalidation(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	c := New(1<<20, 1, 16)
	payload := bytes.Repeat([]byte("x"), 512)
	fill(t, c, "k", payload)
	data, meta, release, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after fill")
	}
	c.Invalidate("k") // cache drops its reference; the pin keeps the buffer
	if !bytes.Equal(data[:meta.Size], payload) {
		t.Fatal("pinned bytes changed under invalidation")
	}
	release() // last reference: buffer returns to the arena exactly once
	release() // and a second call must not double-free (debug mode panics)
}

func TestInvalidateAllPurges(t *testing.T) {
	c := New(1<<20, 1, 16)
	for i := 0; i < 4; i++ {
		fill(t, c, fmt.Sprintf("k%d", i), []byte("payload"))
	}
	c.InvalidateAll()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 4 {
		t.Fatalf("stats = %+v, want empty with Invalidations=4", st)
	}
}

func TestCandidatesRepeatedKeys(t *testing.T) {
	c := New(1<<20, 2, 32)
	// "hot" is touched twice but never resident — a re-warm candidate.
	c.Get("hot")
	c.Get("cold")
	c.Get("hot")
	got := c.Candidates(8, 0)
	if len(got) != 1 || got[0] != "hot" {
		t.Fatalf("Candidates = %v, want [hot]", got)
	}
	// Resident keys are excluded.
	fill(t, c, "hot", []byte("x"))
	if got := c.Candidates(8, 0); len(got) != 0 {
		t.Fatalf("Candidates = %v, want none (resident)", got)
	}
}

func TestCandidatesSequentialRun(t *testing.T) {
	c := New(1<<20, 2, 32)
	c.Get("blk-5")
	c.Get("blk-6")
	c.Get("blk-7")
	got := c.Candidates(8, 2)
	want := map[string]bool{"blk-8": true, "blk-9": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] || got[0] == got[1] {
		t.Fatalf("Candidates = %v, want blk-8 and blk-9", got)
	}
}

func TestCandidatesRespectsMax(t *testing.T) {
	c := New(1<<20, 2, 64)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("r%d", i)
		c.Get(key)
		c.Get(key)
	}
	if got := c.Candidates(3, 0); len(got) != 3 {
		t.Fatalf("Candidates returned %d keys, want 3", len(got))
	}
}

func TestSplitRunKey(t *testing.T) {
	cases := []struct {
		key    string
		prefix string
		num    int64
		ok     bool
	}{
		{"p3-17", "p3-", 17, true},
		{"blk0", "blk", 0, true},
		{"nokey", "", 0, false},
		{"12345", "", 0, false}, // all digits: no prefix
		{"", "", 0, false},
	}
	for _, tc := range cases {
		p, n, ok := splitRunKey(tc.key)
		if p != tc.prefix || n != tc.num || ok != tc.ok {
			t.Errorf("splitRunKey(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.key, p, n, ok, tc.prefix, tc.num, tc.ok)
		}
	}
}
