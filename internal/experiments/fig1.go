package experiments

import (
	"fmt"

	"hcompress/internal/cluster"
	"hcompress/internal/core"
	"hcompress/internal/seed"
	"hcompress/internal/tier"
	"hcompress/internal/workload"
)

// Fig1Options parameterizes the motivation experiment (§III, Fig. 1):
// VPIC with 2560 processes, 16 time steps, writing to either a vanilla PFS
// or Hermes multi-tier buffering, with compression off or fixed to one of
// {brotli, zlib, bzip2}, plus the combined multi-compression/multi-tier
// point that motivates HCompress.
type Fig1Options struct {
	Scale     int // divide ranks and capacities by this (1 = paper scale)
	Ranks     int
	Timesteps int
	Truth     *seed.Seed // measured codec costs; nil = builtin
}

// PaperFig1 returns the configuration of the paper's motivation run.
func PaperFig1(scale int) Fig1Options {
	if scale < 1 {
		scale = 1
	}
	return Fig1Options{Scale: scale, Ranks: 2560, Timesteps: 16}
}

// Fig1Motivation runs the motivation experiment and returns, per scenario,
// compression time, I/O time, total time, and achieved compression ratio —
// the four series of Fig. 1.
func Fig1Motivation(o Fig1Options) (Table, error) {
	ranks := scaleRanks(o.Ranks, o.Scale)
	v := workload.PaperVPIC(ranks, o.Timesteps)
	attr := v.Attr()
	stepSize := v.StepBytesPerRank()

	// Hermes configuration from §III: 16 GB RAM, 32 GB NVMe, 2 TB BB, PFS.
	hierMT := aresScaled(16*tierGB, 32*tierGB, 2048*tierGB, 1<<60, o.Scale)
	hierPFS := pfsOnlyScaled(o.Scale)

	type scenario struct {
		name  string
		multi bool
		codec string // "" = none, "hcdp" = HCompress
	}
	scenarios := []scenario{
		{"none/pfs", false, ""},
		{"none/hermes", true, ""},
		{"brotli/pfs", false, "brotli"},
		{"brotli/hermes", true, "brotli"},
		{"zlib/pfs", false, "zlib"},
		{"zlib/hermes", true, "zlib"},
		{"bzip2/pfs", false, "bzip2"},
		{"bzip2/hermes", true, "bzip2"},
		{"multicomp/hermes (HCompress)", true, "hcdp"},
	}

	truth := o.Truth
	if truth == nil {
		truth = seed.Builtin(hierMT)
	}

	t := Table{
		Title:  fmt.Sprintf("Fig.1 VPIC motivation (%d ranks, %d steps, scale 1/%d)", ranks, o.Timesteps, o.Scale),
		Header: []string{"scenario", "comp_time_s", "io_time_s", "total_s", "ratio", "vs_baseline"},
	}
	var baseline float64
	for _, sc := range scenarios {
		hier := hierPFS
		if sc.multi {
			hier = hierMT
		}
		var stk *stack
		var err error
		if sc.codec == "hcdp" {
			stk, err = newHCStack(hier, truth, seed.Weights{Compression: 0.5, Ratio: 0.5}, core.Config{})
		} else {
			stk, err = newBaselineStack(hier, truth, sc.codec)
		}
		if err != nil {
			return t, fmt.Errorf("fig1 %s: %w", sc.name, err)
		}
		sim := cluster.NewSim(ranks)
		var comp, io float64
		var bytes, stored int64
		for step := 0; step < o.Timesteps; step++ {
			ps, err := sim.WritePhase(stk.io, fmt.Sprintf("f1s%d", step), 1, stepSize, attr, nil)
			if err != nil {
				return t, fmt.Errorf("fig1 %s step %d: %w", sc.name, step, err)
			}
			comp += ps.CodecTime
			io += ps.IOTime
			bytes += ps.Bytes
			stored += ps.Stored
			if step < o.Timesteps-1 {
				// VPIC computes between checkpoints; the multi-tier
				// stacks drain asynchronously during that window.
				stk.drain(sim.Now(), v.ComputeSecPerStep)
				sim.Compute(v.ComputeSecPerStep)
			}
		}
		total := sim.Now()
		ratio := 1.0
		if stored > 0 {
			ratio = float64(bytes) / float64(stored)
		}
		if sc.name == "none/pfs" {
			baseline = total
		}
		t.Rows = append(t.Rows, []string{
			sc.name, f1(comp), f1(io), f1(total), f2(ratio), speedup(baseline, total),
		})
	}
	t.Notes = append(t.Notes,
		"paper: Hermes alone 2.5x over PFS; brotli light compression 1.93x; zlib heavy ratio but slow; bzip2 cannot compress VPIC floats; combined wins ~2x over either alone")
	return t, nil
}

const tierGB = tier.GB

// pfsOnlyScaled builds the BASE configuration at scale.
func pfsOnlyScaled(scale int) tier.Hierarchy {
	h := aresScaled(tierGB, tierGB, tierGB, 1<<60, scale)
	return tier.Hierarchy{Tiers: h.Tiers[3:]}
}
