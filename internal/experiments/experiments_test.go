package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func findRow(tb Table, match func(row []string) bool) []string {
	for _, r := range tb.Rows {
		if match(r) {
			return r
		}
	}
	return nil
}

func TestTableFprint(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "333", "a note", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	o := PaperFig1(256)
	o.Timesteps = 4
	tb, err := Fig1Motivation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	get := func(name string) []string {
		r := findRow(tb, func(r []string) bool { return r[0] == name })
		if r == nil {
			t.Fatalf("missing scenario %s", name)
		}
		return r
	}
	base := parseF(t, get("none/pfs")[3])
	hermes := parseF(t, get("none/hermes")[3])
	bzipPFS := parseF(t, get("bzip2/pfs")[3])
	brotliPFS := parseF(t, get("brotli/pfs")[3])
	brotliHermes := parseF(t, get("brotli/hermes")[3])
	hc := parseF(t, get("multicomp/hermes (HCompress)")[3])
	if hermes >= base {
		t.Errorf("multi-tier buffering must beat PFS: %v vs %v", hermes, base)
	}
	// bzip2 pays far more compression time than brotli for its ratio.
	// (In the paper bzip2 achieves NO reduction on VPIC floats and loses
	// outright; our synthetic floats are mildly BWT-compressible, so
	// bzip2 merely underperforms — see EXPERIMENTS.md.)
	bzipComp := parseF(t, get("bzip2/pfs")[1])
	brotliComp := parseF(t, get("brotli/pfs")[1])
	if bzipComp <= brotliComp {
		t.Errorf("bzip2 compression time %v should exceed brotli's %v", bzipComp, brotliComp)
	}
	if bzipPFS < brotliPFS*0.9 {
		t.Errorf("bzip2 (%v) should not meaningfully beat brotli (%v) on PFS", bzipPFS, brotliPFS)
	}
	// The combined configuration beats buffering alone.
	if brotliHermes >= hermes {
		t.Errorf("compression+tiering should beat tiering alone: %v vs %v", brotliHermes, hermes)
	}
	if hc > brotliHermes*1.1 {
		t.Errorf("HCompress %v should be at least competitive with best fixed combo %v", hc, brotliHermes)
	}
}

func TestFig3Anatomy(t *testing.T) {
	tb, err := Fig3Anatomy(Fig3Options{Tasks: 40, TaskSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// The HCDP engine and feedback must be a small fraction of the write
	// path (paper: <2% combined); codec+io dominate.
	engine := parseF(t, tb.Rows[0][1])
	feedback := parseF(t, tb.Rows[3][1])
	codecPct := parseF(t, tb.Rows[2][1])
	ioPct := parseF(t, tb.Rows[4][1])
	if engine+feedback > 20 {
		t.Errorf("engine+feedback = %.1f%%, should be minor", engine+feedback)
	}
	if codecPct+ioPct < 75 {
		t.Errorf("codec+io = %.1f%%, should dominate", codecPct+ioPct)
	}
}

func TestFig4aShape(t *testing.T) {
	tb, err := Fig4aEngine(Fig4aOptions{Plans: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Small tasks map to a single sub-task; 64MB must split (the
	// capacities force it) — the paper's throughput knee.
	if small := tb.Rows[0]; small[2] != "1" {
		t.Errorf("4KB task should not split: %v", small)
	}
	if big := tb.Rows[len(tb.Rows)-1]; big[2] == "1" {
		t.Errorf("64MB task should split: %v", big)
	}
	// Memoized planning throughput should exceed 100K plans/sec for
	// small tasks even on modest hardware.
	if tput := parseF(t, tb.Rows[0][1]); tput < 1e5 {
		t.Errorf("plan throughput %v too low", tput)
	}
}

func TestFig4bShape(t *testing.T) {
	tb, err := Fig4bCCP(Fig4bOptions{Tasks: 2000, TaskSize: 1 << 20, PerturbFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		acc := parseF(t, row[1])
		if acc < 85 {
			t.Errorf("%s: accuracy %.1f%% after feedback, want high", row[0], acc)
		}
		if tput := parseF(t, row[2]); tput < 1000 {
			t.Errorf("%s: feedback throughput %v too low", row[0], tput)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	o := PaperFig5(256) // paper's 128 tasks/rank: data must outgrow RAM+NVMe
	tb, err := Fig5CompressionOnTiering(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 14 { // none + 12 codecs + HCompress
		t.Fatalf("rows %d", len(tb.Rows))
	}
	none := findRow(tb, func(r []string) bool { return r[0] == "none" })
	hc := findRow(tb, func(r []string) bool { return r[0] == "HCompress" })
	if none == nil || hc == nil {
		t.Fatal("missing rows")
	}
	noneTime := parseF(t, none[6])
	hcTime := parseF(t, hc[6])
	if hcTime >= noneTime {
		t.Errorf("HCompress %v must beat no-compression %v", hcTime, noneTime)
	}
	// HCompress must also beat every fixed library (the >=1.72x claim;
	// we only assert the ordering).
	for _, row := range tb.Rows {
		if row[0] == "HCompress" || row[0] == "none" {
			continue
		}
		if v := parseF(t, row[6]); v < hcTime*0.98 {
			t.Errorf("fixed library %s (%vs) beat HCompress (%vs)", row[0], v, hcTime)
		}
	}
	// Footprint: HCompress total footprint below none's.
	if parseF(t, hc[5]) >= parseF(t, none[5]) {
		t.Errorf("HCompress footprint %v should undercut uncompressed %v", hc[5], none[5])
	}
}

func TestFig6Shape(t *testing.T) {
	o := PaperFig6(256)
	o.TasksPerRank = 64
	o.Codecs = []string{"pithy", "snappy", "brotli", "bsc"}
	tb, err := Fig6TieringOnCompression(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Fast codecs must be tier-sensitive; heavy codecs flat.
	get := func(name string) []string {
		r := findRow(tb, func(r []string) bool { return r[0] == name })
		if r == nil {
			t.Fatalf("missing %s", name)
		}
		return r
	}
	pithy := get("pithy")
	bsc := get("bsc")
	pithyRAM, pithyBB := parseF(t, pithy[1]), parseF(t, pithy[3])
	bscRAM, bscBB := parseF(t, bsc[1]), parseF(t, bsc[3])
	if pithyRAM/pithyBB < 1.5 {
		t.Errorf("pithy should be tier-sensitive: ram %v bb %v", pithyRAM, pithyBB)
	}
	if bscRAM/bscBB > 1.5 {
		t.Errorf("bsc should be tier-insensitive: ram %v bb %v", bscRAM, bscBB)
	}
	// HCompress beats every library on the multi-tier column.
	hc := parseF(t, get("HCompress")[4])
	for _, name := range o.Codecs {
		if v := parseF(t, get(name)[4]); v > hc {
			t.Errorf("%s multi-tier %v beat HCompress %v", name, v, hc)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	o := PaperFig7(256)
	o.Ranks = []int{2560}
	o.Timesteps = 4
	tb, err := Fig7VPIC(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	times := map[string]float64{}
	for _, r := range tb.Rows {
		times[r[1]] = parseF(t, r[2])
	}
	if !(times["HC"] < times["MTNC"] && times["MTNC"] < times["BASE"]) {
		t.Errorf("ordering wrong: %+v", times)
	}
	if !(times["STWC"] < times["BASE"]) {
		t.Errorf("STWC should beat BASE: %+v", times)
	}
	if times["BASE"]/times["HC"] < 3 {
		t.Errorf("HC speedup over BASE %.1fx, paper reports 12x — expect at least 3x", times["BASE"]/times["HC"])
	}
}

func TestFig8Shape(t *testing.T) {
	o := PaperFig8(256)
	o.Ranks = []int{2560}
	o.Timesteps = 4
	tb, err := Fig8Workflow(o)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, r := range tb.Rows {
		times[r[1]] = parseF(t, r[4])
	}
	if !(times["HC"] < times["STWC"] && times["HC"] < times["MTNC"] && times["MTNC"] < times["BASE"]) {
		t.Errorf("ordering wrong: %+v", times)
	}
}
