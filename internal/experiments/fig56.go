package experiments

import (
	"fmt"

	"hcompress/internal/cluster"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
	"hcompress/internal/workload"
)

// Fig5Options parameterizes "Impact of Data Compression on Multi-tiered
// Storage" (§V-B4): 2560 ranks x 128 write tasks of 1MB (320 GB total)
// into a 64GB/192GB/2TB hierarchy; Hermes placement with each fixed
// library versus HCompress.
type Fig5Options struct {
	Scale        int
	Ranks        int
	TasksPerRank int
	TaskBytes    int64
	Truth        *seed.Seed
}

// PaperFig5 returns the paper's parameters at the given scale divisor.
func PaperFig5(scale int) Fig5Options {
	if scale < 1 {
		scale = 1
	}
	return Fig5Options{Scale: scale, Ranks: 2560, TasksPerRank: 128, TaskBytes: 1 << 20}
}

// Fig5CompressionOnTiering reports, per scenario, the data footprint per
// tier and the overall time — the two series of Fig. 5.
func Fig5CompressionOnTiering(o Fig5Options) (Table, error) {
	ranks := scaleRanks(o.Ranks, o.Scale)
	hier := aresScaled(64*tier.GB, 192*tier.GB, 2*tier.TB, 1<<60, o.Scale)
	truth := o.Truth
	if truth == nil {
		truth = seed.Builtin(hier)
	}
	attr := workload.MicroConfig{Type: stats.TypeInt, Dist: stats.Gamma, TaskBytes: o.TaskBytes}.Attr()

	scenarios := append([]string{"none"}, codec.Names()...)
	t := Table{
		Title: fmt.Sprintf("Fig.5 impact of compression on multi-tiered storage (%d ranks x %d x %s, scale 1/%d)",
			ranks, o.TasksPerRank, tier.FormatBytes(o.TaskBytes), o.Scale),
		Header: []string{"scenario", "ram_gb", "nvme_gb", "bb_gb", "pfs_gb", "total_gb", "time_s", "vs_none"},
		Notes: []string{
			"paper: Hermes underutilizes tiers (placement precedes compression); HCompress places by compressed footprint: >=1.72x vs fixed libraries, up to 8x vs none",
		},
	}
	var noneTime float64
	run := func(name string, stk *stack) error {
		sim := cluster.NewSim(ranks)
		if _, err := sim.WritePhase(stk.io, "f5", o.TasksPerRank, o.TaskBytes, attr, nil); err != nil {
			return fmt.Errorf("fig5 %s: %w", name, err)
		}
		total := sim.Now()
		if name == "none" {
			noneTime = total
		}
		var sum int64
		cells := []string{name}
		for ti := 0; ti < 4; ti++ {
			used := stk.st.Used(ti)
			sum += used
			cells = append(cells, gb(used*int64(o.Scale))) // report at paper scale
		}
		cells = append(cells, gb(sum*int64(o.Scale)), f1(total), speedup(noneTime, total))
		t.Rows = append(t.Rows, cells)
		return nil
	}
	for _, name := range scenarios {
		cname := name
		if cname == "none" {
			cname = ""
		}
		stk, err := newBaselineStack(hier, truth, cname)
		if err != nil {
			return t, err
		}
		if err := run(name, stk); err != nil {
			return t, err
		}
	}
	stk, err := newHCStack(hier, truth, seed.WeightsEqual, core.Config{})
	if err != nil {
		return t, err
	}
	if err := run("HCompress", stk); err != nil {
		return t, err
	}
	return t, nil
}

// Fig6Options parameterizes "Impact of Multi-tiered Storage on Data
// Compression" (§V-B5): 2560 ranks x 512 tasks, each task compress+write
// then read+decompress 512KB (600 GB total); per-tier single-tier runs for
// every library, the multi-tier run, and HCompress.
type Fig6Options struct {
	Scale        int
	Ranks        int
	TasksPerRank int
	TaskBytes    int64
	Truth        *seed.Seed
	// Codecs restricts the swept libraries (default: the paper's eight
	// x-axis groups).
	Codecs []string
}

// PaperFig6 returns the paper's parameters at the given scale divisor.
func PaperFig6(scale int) Fig6Options {
	if scale < 1 {
		scale = 1
	}
	return Fig6Options{Scale: scale, Ranks: 2560, TasksPerRank: 512, TaskBytes: 512 << 10}
}

// Fig6TieringOnCompression reports throughput (tasks/second) for each
// library on each single tier, on the multi-tier hierarchy, and for
// HCompress.
func Fig6TieringOnCompression(o Fig6Options) (Table, error) {
	ranks := scaleRanks(o.Ranks, o.Scale)
	if len(o.Codecs) == 0 {
		// The paper's Fig. 6 x-axis: one group per library.
		o.Codecs = []string{"bsc", "pithy", "snappy", "lz4", "huffman", "lzo", "brotli", "zlib"}
	}
	// Single-tier capacity: the whole dataset fits in each tier.
	dataset := o.TaskBytes * int64(o.TasksPerRank) * int64(ranks)
	singleCap := dataset + dataset/4
	multi := aresScaled(32*tier.GB, 96*tier.GB, tier.TB, 1<<60, o.Scale)
	truth := o.Truth
	if truth == nil {
		truth = seed.Builtin(multi)
	}
	attr := workload.MicroConfig{Type: stats.TypeInt, Dist: stats.Gamma, TaskBytes: o.TaskBytes}.Attr()

	t := Table{
		Title: fmt.Sprintf("Fig.6 impact of multi-tiered storage on compression (%d ranks x %d x %s RW, scale 1/%d)",
			ranks, o.TasksPerRank, tier.FormatBytes(o.TaskBytes), o.Scale),
		Header: []string{"library", "ram", "nvme", "burstbuffer", "multi-tier", "unit"},
		Notes: []string{
			"cells are tasks/second (one task = compress+write+read+decompress)",
			"paper: heavy codecs (bsc/brotli/zlib) are tier-insensitive; fast codecs (pithy/snappy/lz4/lzo/huffman) track tier bandwidth; HCompress beats every single library by 1.4-3x on the multi-tier setup",
		},
	}

	runPhase := func(stk *stack) (float64, error) {
		sim := cluster.NewSim(ranks)
		if _, err := sim.WritePhase(stk.io, "f6", o.TasksPerRank, o.TaskBytes, attr, nil); err != nil {
			return 0, err
		}
		if _, err := sim.ReadPhase(stk.io, "f6", o.TasksPerRank); err != nil {
			return 0, err
		}
		total := sim.Now()
		return float64(o.TasksPerRank*ranks) / total, nil
	}

	singleTierOf := func(idx int) tier.Hierarchy {
		full := tier.Ares(1, 1, 1, 1)
		spec := full.Tiers[idx]
		spec.Capacity = singleCap
		spec.Bandwidth /= float64(o.Scale)
		spec.Lanes = spec.Lanes / o.Scale
		if spec.Lanes < 1 {
			spec.Lanes = 1
		}
		return tier.Hierarchy{Tiers: []tier.Spec{spec}}
	}

	for _, name := range o.Codecs {
		row := []string{name}
		for ti := 0; ti < 3; ti++ { // ram, nvme, bb
			stk, err := newBaselineStack(singleTierOf(ti), truth, name)
			if err != nil {
				return t, err
			}
			tput, err := runPhase(stk)
			if err != nil {
				return t, fmt.Errorf("fig6 %s tier %d: %w", name, ti, err)
			}
			row = append(row, f0(tput))
		}
		stk, err := newBaselineStack(multi, truth, name)
		if err != nil {
			return t, err
		}
		tput, err := runPhase(stk)
		if err != nil {
			return t, fmt.Errorf("fig6 %s multi: %w", name, err)
		}
		row = append(row, f0(tput), "tasks/s")
		t.Rows = append(t.Rows, row)
	}
	// HCompress on the multi-tier hierarchy.
	stk, err := newHCStack(multi, truth, seed.WeightsEqual, core.Config{})
	if err != nil {
		return t, err
	}
	tput, err := runPhase(stk)
	if err != nil {
		return t, fmt.Errorf("fig6 hcompress: %w", err)
	}
	t.Rows = append(t.Rows, []string{"HCompress", "-", "-", "-", f0(tput), "tasks/s"})
	return t, nil
}
