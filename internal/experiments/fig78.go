package experiments

import (
	"fmt"

	"hcompress/internal/cluster"
	"hcompress/internal/core"
	"hcompress/internal/seed"
	"hcompress/internal/tier"
	"hcompress/internal/workload"
)

// SystemConfig enumerates Table IV's test configurations.
type SystemConfig string

// The four systems compared in Figs. 7 and 8.
const (
	ConfigBASE SystemConfig = "BASE" // vanilla PFS
	ConfigSTWC SystemConfig = "STWC" // single tier with compression
	ConfigMTNC SystemConfig = "MTNC" // multi-tiered, no compression
	ConfigHC   SystemConfig = "HC"   // HCompress
)

// AllConfigs lists Table IV in presentation order.
func AllConfigs() []SystemConfig {
	return []SystemConfig{ConfigBASE, ConfigSTWC, ConfigMTNC, ConfigHC}
}

// STWCCodec is the fixed library used by the single-tier-with-compression
// configuration. The paper does not name its choice; zlib reproduces the
// ~1.5x gain the paper reports for STWC on VPIC float checkpoints (fast
// LZ codecs barely dent float data and would make STWC a no-op) and is
// recorded in EXPERIMENTS.md as a reproduction decision.
const STWCCodec = "zlib"

// buildConfig assembles one Table IV system over the given hierarchies.
func buildConfig(cfg SystemConfig, pfsOnly, multi tier.Hierarchy, truth *seed.Seed, w seed.Weights) (*stack, error) {
	switch cfg {
	case ConfigBASE:
		return newBaselineStack(pfsOnly, truth, "")
	case ConfigSTWC:
		return newBaselineStack(pfsOnly, truth, STWCCodec)
	case ConfigMTNC:
		return newBaselineStack(multi, truth, "")
	case ConfigHC:
		return newHCStack(multi, truth, w, core.Config{})
	default:
		return nil, fmt.Errorf("experiments: unknown config %q", cfg)
	}
}

// Fig7Options parameterizes the VPIC-IO scaling experiment (§V-C1):
// 10 time steps of 256MB per process, 12.5GB RAM + 25GB NVMe (data spills
// to burst buffers), compute kernel between checkpoints, write-optimized
// priorities, scaling 320..2560 processes.
type Fig7Options struct {
	Scale     int
	Ranks     []int // paper: 320, 640, 1280, 2560
	Timesteps int
	Truth     *seed.Seed
}

// PaperFig7 returns the paper's parameters at the given scale divisor.
func PaperFig7(scale int) Fig7Options {
	if scale < 1 {
		scale = 1
	}
	return Fig7Options{Scale: scale, Ranks: []int{320, 640, 1280, 2560}, Timesteps: 10}
}

// Fig7VPIC reports total time per configuration per process count.
func Fig7VPIC(o Fig7Options) (Table, error) {
	if o.Timesteps <= 0 {
		o.Timesteps = 10
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{320, 640, 1280, 2560}
	}
	t := Table{
		Title:  fmt.Sprintf("Fig.7 VPIC-IO scaling (%d steps, scale 1/%d)", o.Timesteps, o.Scale),
		Header: []string{"procs", "config", "time_s", "vs_base"},
		Notes: []string{
			"write-only: HCompress prioritizes compression speed + ratio (Table II)",
			"paper at 2560: BASE 8967s, STWC 6010s (1.5x), MTNC 4419s (2x), HC 778s (12x over BASE, ~7x over others)",
		},
	}
	for _, paperRanks := range o.Ranks {
		ranks := scaleRanks(paperRanks, o.Scale)
		v := workload.PaperVPIC(ranks, o.Timesteps)
		attr := v.Attr()
		// §V-C1 hierarchy: 12.5 GB RAM, 25 GB NVMe, spill to burst
		// buffers; PFS below. (Capacities are cluster-wide and scale with
		// the experiment.)
		multi := aresScaled(12800*tier.MB, 25*tier.GB, 2*tier.TB, 1<<60, o.Scale)
		pfs := pfsOnlyScaled(o.Scale)
		truth := o.Truth
		if truth == nil {
			truth = seed.Builtin(multi)
		}
		var base float64
		for _, cfg := range AllConfigs() {
			stk, err := buildConfig(cfg, pfs, multi, truth,
				seed.Weights{Compression: 0.5, Ratio: 0.5})
			if err != nil {
				return t, err
			}
			sim := cluster.NewSim(ranks)
			for step := 0; step < o.Timesteps; step++ {
				if _, err := sim.WritePhase(stk.io, fmt.Sprintf("f7s%d", step), 1, v.StepBytesPerRank(), attr, nil); err != nil {
					return t, fmt.Errorf("fig7 %s ranks=%d step=%d: %w", cfg, paperRanks, step, err)
				}
				if step < o.Timesteps-1 {
					// Compute phase; the buffering layers drain to lower
					// tiers concurrently (Hermes's asynchronous flushing).
					stk.drain(sim.Now(), v.ComputeSecPerStep)
					sim.Compute(v.ComputeSecPerStep)
				}
			}
			total := sim.Now()
			if cfg == ConfigBASE {
				base = total
			}
			t.Rows = append(t.Rows, []string{
				itoa(paperRanks), string(cfg), f1(total), speedup(base, total),
			})
		}
	}
	return t, nil
}

// Fig8Options parameterizes the VPIC + BD-CATS workflow (§V-C2): VPIC
// writes 10 steps, BD-CATS reads them back, equal priorities.
type Fig8Options struct {
	Scale     int
	Ranks     []int
	Timesteps int
	Truth     *seed.Seed
}

// PaperFig8 returns the paper's parameters at the given scale divisor.
func PaperFig8(scale int) Fig8Options {
	if scale < 1 {
		scale = 1
	}
	return Fig8Options{Scale: scale, Ranks: []int{320, 640, 1280, 2560}, Timesteps: 10}
}

// Fig8Workflow reports total workflow time per configuration per process
// count.
func Fig8Workflow(o Fig8Options) (Table, error) {
	if o.Timesteps <= 0 {
		o.Timesteps = 10
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{320, 640, 1280, 2560}
	}
	t := Table{
		Title:  fmt.Sprintf("Fig.8 VPIC + BD-CATS workflow (%d steps, scale 1/%d)", o.Timesteps, o.Scale),
		Header: []string{"procs", "config", "write_s", "read_s", "total_s", "vs_base"},
		Notes: []string{
			"read-after-write: HCompress weighs all three metrics equally",
			"paper: STWC ~1.5x, MTNC ~2.5x over BASE; HC ~7x over STWC/MTNC",
		},
	}
	for _, paperRanks := range o.Ranks {
		ranks := scaleRanks(paperRanks, o.Scale)
		v := workload.PaperVPIC(ranks, o.Timesteps)
		v.ComputeSecPerStep = 0 // the workflow figure reports I/O time
		attr := v.Attr()
		multi := aresScaled(12800*tier.MB, 25*tier.GB, 2*tier.TB, 1<<60, o.Scale)
		pfs := pfsOnlyScaled(o.Scale)
		truth := o.Truth
		if truth == nil {
			truth = seed.Builtin(multi)
		}
		var base float64
		for _, cfg := range AllConfigs() {
			stk, err := buildConfig(cfg, pfs, multi, truth, seed.WeightsEqual)
			if err != nil {
				return t, err
			}
			sim := cluster.NewSim(ranks)
			var writeEnd float64
			for step := 0; step < o.Timesteps; step++ {
				if _, err := sim.WritePhase(stk.io, fmt.Sprintf("f8s%d", step), 1, v.StepBytesPerRank(), attr, nil); err != nil {
					return t, fmt.Errorf("fig8 %s ranks=%d write step=%d: %w", cfg, paperRanks, step, err)
				}
			}
			writeEnd = sim.Now()
			// BD-CATS: sequenced after VPIC finishes, reads every step.
			for step := 0; step < o.Timesteps; step++ {
				if _, err := sim.ReadPhase(stk.io, fmt.Sprintf("f8s%d", step), 1); err != nil {
					return t, fmt.Errorf("fig8 %s ranks=%d read step=%d: %w", cfg, paperRanks, step, err)
				}
			}
			total := sim.Now()
			if cfg == ConfigBASE {
				base = total
			}
			t.Rows = append(t.Rows, []string{
				itoa(paperRanks), string(cfg), f1(writeEnd), f1(total - writeEnd), f1(total), speedup(base, total),
			})
		}
	}
	return t, nil
}
