package experiments

import (
	"fmt"
	"time"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

// Fig3Options parameterizes the operation-anatomy experiment (§V-B1):
// 1K tasks of 1MB, with the write and read paths broken down into HCDP
// engine, library selection, compression/decompression, feedback, and I/O.
type Fig3Options struct {
	Tasks    int // paper: 1000
	TaskSize int // paper: 1 MiB
}

// PaperFig3 returns the paper's parameters.
func PaperFig3() Fig3Options { return Fig3Options{Tasks: 1000, TaskSize: 1 << 20} }

// Fig3Anatomy executes the instrumented write/read pipeline on real data
// and reports the percentage-of-time anatomy for both operations.
func Fig3Anatomy(o Fig3Options) (Table, error) {
	if o.Tasks <= 0 {
		o.Tasks = 1000
	}
	if o.TaskSize <= 0 {
		o.TaskSize = 1 << 20
	}
	hier := tier.Ares(tier.GB, 2*tier.GB, 8*tier.GB, tier.TB)
	st, err := store.New(hier, true)
	if err != nil {
		return Table{}, err
	}
	pred := predictor.New(seed.Builtin(hier))
	mon := monitor.New(st, 0)
	eng, err := core.New(pred, mon, core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		return Table{}, err
	}

	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, o.TaskSize, 11)
	attr := analyzer.Analyze(data)

	type anatomy struct {
		engine, selection, codecT, feedback, io float64
	}
	var wA, rA anatomy
	oracle := manager.RealOracle{}
	now := 0.0
	for i := 0; i < o.Tasks; i++ {
		key := fmt.Sprintf("a%d", i)

		// --- write path, stage by stage ---
		t0 := time.Now()
		schema, err := eng.Plan(now, attr, int64(len(data)))
		if err != nil {
			return Table{}, err
		}
		wA.engine += time.Since(t0).Seconds()

		type prepared struct {
			c   codec.Codec
			sub core.SubTask
		}
		var preps []prepared
		t0 = time.Now()
		for _, sub := range schema.SubTasks {
			c, err := codec.ByID(sub.Codec)
			if err != nil {
				return Table{}, err
			}
			preps = append(preps, prepared{c, sub})
		}
		wA.selection += time.Since(t0).Seconds()

		var blobs [][]byte
		var hdrs []manager.Header
		t0 = time.Now()
		for _, p := range preps {
			hdr := manager.Header{Offset: p.sub.Offset, Length: p.sub.Length, Codec: p.sub.Codec}
			payload, _, _, err := oracle.Compress(nil, attr, p.c, data[p.sub.Offset:p.sub.Offset+p.sub.Length], p.sub.Length, hdr)
			if err != nil {
				return Table{}, err
			}
			hdr.Stored = int64(len(payload)) - manager.HeaderSize
			blobs = append(blobs, payload)
			hdrs = append(hdrs, hdr)
		}
		wA.codecT += time.Since(t0).Seconds()

		ioStart := now
		for k, p := range preps {
			end, err := st.Put(now, p.sub.Tier, fmt.Sprintf("%s#%d", key, k), blobs[k], int64(len(blobs[k])))
			if err != nil {
				return Table{}, err
			}
			now = end
		}
		wA.io += now - ioStart

		t0 = time.Now()
		for k, p := range preps {
			if p.sub.Codec != codec.None {
				pred.Feedback(attr.Type, attr.Dist, p.c.Name(), seed.CodecCost{
					CompressMBps: 100, Ratio: float64(p.sub.Length) / float64(len(blobs[k])),
				})
			}
		}
		wA.feedback += time.Since(t0).Seconds()

		// --- read path, stage by stage ---
		ioStart = now
		var payloads [][]byte
		for k := range preps {
			blob, end, err := st.Get(now, fmt.Sprintf("%s#%d", key, k))
			if err != nil {
				return Table{}, err
			}
			now = end
			payloads = append(payloads, blob.Data)
		}
		rA.io += now - ioStart

		t0 = time.Now()
		var rHdrs []manager.Header
		var rCodecs []codec.Codec
		for k := range preps {
			hdr, _, err := manager.DecodeHeader(payloads[k])
			if err != nil {
				return Table{}, err
			}
			c, err := codec.ByID(hdr.Codec)
			if err != nil {
				return Table{}, err
			}
			rHdrs = append(rHdrs, hdr)
			rCodecs = append(rCodecs, c)
		}
		rA.selection += time.Since(t0).Seconds()

		t0 = time.Now()
		for k := range preps {
			if _, _, err := oracle.Decompress(nil, attr, rCodecs[k], payloads[k][manager.HeaderSize:], nil, rHdrs[k]); err != nil {
				return Table{}, err
			}
		}
		rA.codecT += time.Since(t0).Seconds()

		t0 = time.Now()
		for k := range preps {
			if rHdrs[k].Codec != codec.None {
				pred.Feedback(attr.Type, attr.Dist, rCodecs[k].Name(), seed.CodecCost{DecompressMBps: 100})
			}
		}
		rA.feedback += time.Since(t0).Seconds()

		// Keep the hierarchy from filling: anatomy, not capacity, is
		// under test.
		for k := range preps {
			st.Delete(fmt.Sprintf("%s#%d", key, k))
		}
	}

	pct := func(v, total float64) string { return fmt.Sprintf("%.2f%%", 100*v/total) }
	wTotal := wA.engine + wA.selection + wA.codecT + wA.feedback + wA.io
	rTotal := rA.engine + rA.selection + rA.codecT + rA.feedback + rA.io
	t := Table{
		Title:  fmt.Sprintf("Fig.3 anatomy of operations (%d tasks x %s)", o.Tasks, tier.FormatBytes(int64(o.TaskSize))),
		Header: []string{"stage", "write", "read"},
		Rows: [][]string{
			{"hcdp engine / metadata parsing", pct(wA.engine, wTotal), pct(rA.selection, rTotal)},
			{"library selection", pct(wA.selection, wTotal), "(included above)"},
			{"compression / decompression", pct(wA.codecT, wTotal), pct(rA.codecT, rTotal)},
			{"feedback", pct(wA.feedback, wTotal), pct(rA.feedback, rTotal)},
			{"i/o", pct(wA.io, wTotal), pct(rA.io, rTotal)},
		},
		Notes: []string{"paper: engine 0.76%, selection 0.06%, feedback ~1%, compression+io ~98% (write); metadata parsing 1.15% (read)"},
	}
	return t, nil
}

// Fig4aOptions parameterizes the HCDP engine throughput sweep (§V-B2).
type Fig4aOptions struct {
	Plans int   // mapping calls per size; paper: 8192
	Sizes []int // task sizes; paper: 4KB..64MB
}

// PaperFig4a returns the paper's parameters.
func PaperFig4a() Fig4aOptions {
	return Fig4aOptions{
		Plans: 8192,
		Sizes: []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20},
	}
}

// Fig4aEngine measures HCDP mapping throughput (tasks/second) versus task
// size. Capacities are sized so that tasks above 4 MiB split across tiers,
// reproducing the paper's throughput knee.
func Fig4aEngine(o Fig4aOptions) (Table, error) {
	if o.Plans <= 0 {
		o.Plans = 8192
	}
	if len(o.Sizes) == 0 {
		o.Sizes = PaperFig4a().Sizes
	}
	hier := tier.Ares(8*tier.MB, 32*tier.MB, 128*tier.MB, tier.TB)
	st, err := store.New(hier, false)
	if err != nil {
		return Table{}, err
	}
	pred := predictor.New(seed.Builtin(hier))
	eng, err := core.New(pred, monitor.New(st, 0), core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		return Table{}, err
	}
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	t := Table{
		Title:  fmt.Sprintf("Fig.4a HCDP engine throughput (%d plans/size)", o.Plans),
		Header: []string{"task_size", "plans_per_sec", "subtasks"},
		Notes:  []string{"paper: ~2.4B tasks/s flat to 4MB, then a 2-3% drop as tasks split across tiers"},
	}
	for _, size := range o.Sizes {
		sc, err := eng.Plan(0, attr, int64(size)) // warm the memo
		if err != nil {
			return t, err
		}
		start := time.Now()
		for i := 0; i < o.Plans; i++ {
			if _, err := eng.Plan(0, attr, int64(size)); err != nil {
				return t, err
			}
		}
		dur := time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			tier.FormatBytes(int64(size)),
			sci(float64(o.Plans) / dur),
			itoa(len(sc.SubTasks)),
		})
	}
	return t, nil
}

// Fig4bOptions parameterizes the CCP accuracy/throughput experiment
// (§V-B3): 8K write tasks of 1MB per data distribution.
type Fig4bOptions struct {
	Tasks    int // paper: 8192
	TaskSize int // paper: 1 MiB
	// PerturbFrac misstates the predictor's initial seed relative to the
	// truth table, so the feedback loop has something to learn (the
	// paper's "different datasets might have different distribution").
	PerturbFrac float64
}

// PaperFig4b returns the paper's parameters.
func PaperFig4b() Fig4bOptions {
	return Fig4bOptions{Tasks: 8192, TaskSize: 1 << 20, PerturbFrac: 0.25}
}

// Fig4bCCP runs the feedback loop per distribution and reports model
// accuracy and feedback throughput.
func Fig4bCCP(o Fig4bOptions) (Table, error) {
	if o.Tasks <= 0 {
		o.Tasks = 8192
	}
	if o.TaskSize <= 0 {
		o.TaskSize = 1 << 20
	}
	if o.PerturbFrac == 0 {
		o.PerturbFrac = 0.25
	}
	hier := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	truth := seed.Builtin(hier)
	t := Table{
		Title:  fmt.Sprintf("Fig.4b compression cost predictor (%d tasks/distribution)", o.Tasks),
		Header: []string{"distribution", "accuracy_R2", "feedback_events_per_sec"},
		Notes:  []string{"paper: ~95.5% accuracy, ~20K events/s across all four distributions"},
	}
	names := []string{"lz4", "snappy", "brotli", "zlib"}
	for _, dist := range stats.AllDists() {
		// Mis-seeded predictor: every cost off by PerturbFrac.
		wrong := seed.Builtin(hier)
		for k, c := range wrong.Costs {
			c.CompressMBps *= 1 + o.PerturbFrac
			c.DecompressMBps *= 1 - o.PerturbFrac
			c.Ratio = 1 + (c.Ratio-1)*(1-o.PerturbFrac)
			wrong.Costs[k] = c
		}
		wrong.FeedbackInterval = 64
		ccp := predictor.New(wrong)

		oracle := manager.ModelOracle{Truth: truth}
		start := time.Now()
		for i := 0; i < o.Tasks; i++ {
			name := names[i%len(names)]
			c, _ := codec.ByName(name)
			hdr := manager.Header{Offset: int64(i) * 4096, Length: int64(o.TaskSize)}
			_, stored, secs, err := oracle.Compress(nil, analyzer.Result{Type: stats.TypeFloat, Dist: dist}, c, nil, int64(o.TaskSize), hdr)
			if err != nil {
				return t, err
			}
			mb := float64(o.TaskSize) / (1 << 20)
			ccp.Feedback(stats.TypeFloat, dist, name, seed.CodecCost{
				CompressMBps: mb / secs,
				Ratio:        float64(o.TaskSize) / float64(stored),
			})
		}
		ccp.Flush()
		dur := time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			dist.String(),
			fmt.Sprintf("%.2f%%", 100*ccp.R2()),
			f0(float64(o.Tasks) / dur),
		})
	}
	return t, nil
}
