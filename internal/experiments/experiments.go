// Package experiments reproduces every table and figure of the paper's
// evaluation (§V). Each Fig* function builds the workload, the hierarchy
// configuration, and the systems under test (Table IV: BASE, STWC, MTNC,
// HCompress), runs them in the cluster simulator, and returns a Table of
// the same rows/series the paper reports.
//
// All experiments accept a Scale: the paper's rank counts and capacities
// are divided by it, which preserves per-rank behaviour (the ratio of data
// volume to tier capacity is scale-invariant) while letting the suite run
// on one machine in seconds. Scale = 1 replays the paper's exact
// parameters. EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"hcompress/internal/cluster"
	"hcompress/internal/core"
	"hcompress/internal/hermes"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func gb(v int64) string    { return fmt.Sprintf("%.1f", float64(v)/float64(tier.GB)) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func sci(v float64) string { return fmt.Sprintf("%.3g", v) }

// stack bundles one system under test.
type stack struct {
	st  *store.Store
	io  cluster.IOClient
	hc  *cluster.HCClient // non-nil for HCompress stacks
	bl  *hermes.Baseline  // non-nil for baseline stacks
	prd *predictor.CCP
}

// newHCStack builds a modeled HCompress pipeline over hier. truth is the
// measured cost table the oracle charges; the predictor bootstraps from
// the same seed (the profiler ran first, as in the paper).
func newHCStack(hier tier.Hierarchy, truth *seed.Seed, w seed.Weights, cfg core.Config) (*stack, error) {
	st, err := store.New(hier, false)
	if err != nil {
		return nil, err
	}
	pred := predictor.New(truth)
	mon := monitor.New(st, 0)
	cfg.Weights = w
	eng, err := core.New(pred, mon, cfg)
	if err != nil {
		return nil, err
	}
	hc := &cluster.HCClient{
		Eng: eng,
		Mgr: manager.New(st, pred, manager.ModelOracle{Truth: truth}),
		Mon: mon,
	}
	return &stack{st: st, io: hc, hc: hc, prd: pred}, nil
}

// newBaselineStack builds a modeled Hermes-style baseline with a fixed
// codec ("" / "none" disables compression).
func newBaselineStack(hier tier.Hierarchy, truth *seed.Seed, codecName string) (*stack, error) {
	st, err := store.New(hier, false)
	if err != nil {
		return nil, err
	}
	bl, err := hermes.New(st, codecName, manager.ModelOracle{Truth: truth})
	if err != nil {
		return nil, err
	}
	return &stack{st: st, io: bl, bl: bl}, nil
}

// drain runs the stack's asynchronous flushing during an idle window of
// the given virtual duration (no-op for single-tier stacks).
func (s *stack) drain(now, window float64) {
	switch {
	case s.hc != nil:
		s.hc.Mgr.Drain(now, window)
	case s.bl != nil:
		s.bl.Drain(now, window)
	}
}

// scaleCap divides a capacity by scale, keeping 4 KiB granularity.
func scaleCap(c int64, scale int) int64 {
	v := c / int64(scale)
	if v < 4096 {
		v = 4096
	}
	return v &^ 4095
}

func scaleRanks(r, scale int) int {
	v := r / scale
	if v < 1 {
		v = 1
	}
	return v
}

// aresScaled returns the Ares hierarchy with capacities, aggregate
// bandwidths, and lane counts all divided by scale. Because the rank count
// is divided by the same factor, per-rank service rates and the ratio of
// data volume to capacity — the two quantities every result depends on —
// are preserved exactly, and absolute times stay comparable to the paper.
func aresScaled(ram, nvme, bb, pfs int64, scale int) tier.Hierarchy {
	h := tier.Ares(scaleCap(ram, scale), scaleCap(nvme, scale), scaleCap(bb, scale), scaleCap(pfs, scale))
	for i := range h.Tiers {
		h.Tiers[i].Bandwidth /= float64(scale)
		h.Tiers[i].Lanes = h.Tiers[i].Lanes / scale
		if h.Tiers[i].Lanes < 1 {
			h.Tiers[i].Lanes = 1
		}
	}
	return h
}

// speedup formats a baseline/value ratio.
func speedup(base, v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/v)
}
