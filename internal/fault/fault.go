// Package fault implements a deterministic, virtual-clock-driven fault
// injector for the tiered store. Faults are scripted as per-tier windows
// on the virtual timeline — outages (sticky or transient), per-key error
// rates, latency spikes, read corruption, and capacity lies — so tests
// and hcbench can replay the same outage schedule and observe the same
// failures, byte for byte.
//
// A Schedule is immutable once built and every Decide call is a pure
// function of (virtual time, tier, op, key): no RNG state, no counters,
// no locks. Rate-limited faults hash the sub-task key instead of rolling
// dice, so which keys fail is stable regardless of the order concurrent
// workers reach the store in.
package fault

import (
	"fmt"
	"hash/fnv"

	"hcompress/internal/hcerr"
)

// Op classifies the store operation a fault decision applies to.
type Op uint8

const (
	// OpPut is a sub-task write (Put/PutOwned and the write side of Move).
	OpPut Op = iota
	// OpGet is a sub-task read (Get/Peek/ReadTime).
	OpGet
)

// Decision is the injector's verdict on one store operation.
type Decision struct {
	// Err fails the operation. Sticky outages wrap hcerr.ErrTierOffline;
	// transient faults are tagged with hcerr.MarkTransient so retry
	// policies can tell them apart.
	Err error
	// Latency is added virtual time even when the operation succeeds.
	Latency float64
	// Corrupt asks the store to hand back a bit-flipped copy of the
	// payload (reads only) — the stored bytes stay intact, so the fault
	// is transient and CRC verification catches it without destroying
	// the blob.
	Corrupt bool
}

// Injector is the store's fault hook. Implementations must be safe for
// concurrent use and deterministic in (now, tier, op, key, size).
type Injector interface {
	// Decide rules on one operation at virtual time now.
	Decide(now float64, tier int, op Op, key string, size int64) Decision
	// ReportedCapacity lets the injector lie about a tier's capacity in
	// monitoring snapshots (real is returned unchanged when no lie is
	// active). The lie affects what planners see, not what the tier
	// actually holds — exactly the stale/false telemetry a real System
	// Monitor can serve.
	ReportedCapacity(now float64, tier int, real int64) int64
}

// Mode selects what a fault window does.
type Mode uint8

const (
	// Outage fails every operation in the window with the sticky
	// hcerr.ErrTierOffline.
	Outage Mode = iota
	// Transient fails operations (all, or the Rate-selected fraction of
	// keys) with a retryable error; a retry whose backoff carries it past
	// the window end succeeds.
	Transient
	// LatencySpike adds Extra virtual seconds to every operation.
	LatencySpike
	// CorruptReads returns bit-flipped payload copies for reads of the
	// Rate-selected fraction of keys.
	CorruptReads
	// CapacityLie scales the tier's reported capacity by CapFraction in
	// monitoring snapshots.
	CapacityLie
)

// String names the mode for logs and errors.
func (m Mode) String() string {
	switch m {
	case Outage:
		return "outage"
	case Transient:
		return "transient"
	case LatencySpike:
		return "latency"
	case CorruptReads:
		return "corrupt"
	case CapacityLie:
		return "capacity-lie"
	}
	return "unknown"
}

// Window is one scripted fault: a mode active on one tier for a span of
// the virtual timeline.
type Window struct {
	// Tier is the target tier index.
	Tier int
	// Start and End bound the window in virtual seconds, [Start, End).
	// End <= 0 means the window never closes.
	Start, End float64
	// Mode selects the fault behaviour.
	Mode Mode
	// Rate, for Transient and CorruptReads, selects the affected key
	// fraction in (0, 1]; zero means every key.
	Rate float64
	// Extra is LatencySpike's added virtual seconds per operation.
	Extra float64
	// CapFraction is CapacityLie's reported-capacity multiplier in
	// [0, 1); zero reports an (apparently) full tier.
	CapFraction float64
	// Seed salts the per-key hash so distinct windows select distinct
	// key subsets.
	Seed uint64
}

func (w *Window) active(now float64) bool {
	return now >= w.Start && (w.End <= 0 || now < w.End)
}

// hits reports whether the window's Rate selects this key (always true
// for rate 0 or >= 1). The fraction is a pure hash of (key, seed).
func (w *Window) hits(key string) bool {
	if w.Rate <= 0 || w.Rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(w.Seed >> (8 * i))
	}
	h.Write(b[:])
	return float64(h.Sum64()%1_000_000)/1_000_000 < w.Rate
}

// Schedule is the stateless Injector over a fixed window script.
type Schedule struct {
	Windows []Window
}

var _ Injector = (*Schedule)(nil)

// Decide implements Injector. Windows compose: latency spikes add up,
// and the first error-producing window (in script order) wins.
func (s *Schedule) Decide(now float64, tier int, op Op, key string, _ int64) Decision {
	var d Decision
	for i := range s.Windows {
		w := &s.Windows[i]
		if w.Tier != tier || !w.active(now) {
			continue
		}
		switch w.Mode {
		case Outage:
			if d.Err == nil {
				d.Err = fmt.Errorf("fault: injected outage on tier %d: %w", tier, hcerr.ErrTierOffline)
			}
		case Transient:
			if d.Err == nil && w.hits(key) {
				d.Err = hcerr.MarkTransient(fmt.Errorf("fault: injected transient fault on tier %d key %q", tier, key))
			}
		case LatencySpike:
			d.Latency += w.Extra
		case CorruptReads:
			if op == OpGet && w.hits(key) {
				d.Corrupt = true
			}
		}
	}
	return d
}

// ReportedCapacity implements Injector: the smallest active lie wins.
func (s *Schedule) ReportedCapacity(now float64, tier int, real int64) int64 {
	out := real
	for i := range s.Windows {
		w := &s.Windows[i]
		if w.Tier != tier || w.Mode != CapacityLie || !w.active(now) {
			continue
		}
		lied := int64(float64(real) * w.CapFraction)
		if lied < out {
			out = lied
		}
	}
	return out
}
