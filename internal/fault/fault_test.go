package fault

import (
	"errors"
	"testing"

	"hcompress/internal/hcerr"
)

func TestOutageWindow(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 1, Start: 2, End: 5, Mode: Outage}}}
	if d := s.Decide(1, 1, OpPut, "k", 100); d.Err != nil {
		t.Fatalf("before window: unexpected error %v", d.Err)
	}
	d := s.Decide(3, 1, OpPut, "k", 100)
	if !errors.Is(d.Err, hcerr.ErrTierOffline) {
		t.Fatalf("in window: want ErrTierOffline, got %v", d.Err)
	}
	if hcerr.IsTransient(d.Err) {
		t.Fatal("outage must be sticky, not transient")
	}
	if d := s.Decide(5, 1, OpPut, "k", 100); d.Err != nil {
		t.Fatalf("after window: unexpected error %v", d.Err)
	}
	if d := s.Decide(3, 0, OpPut, "k", 100); d.Err != nil {
		t.Fatalf("other tier: unexpected error %v", d.Err)
	}
}

func TestOpenEndedWindow(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 0, Start: 1, Mode: Outage}}}
	if d := s.Decide(1e9, 0, OpGet, "k", 1); !errors.Is(d.Err, hcerr.ErrTierOffline) {
		t.Fatalf("open window should never close, got %v", d.Err)
	}
}

func TestTransientMarked(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 0, Start: 0, End: 10, Mode: Transient}}}
	d := s.Decide(5, 0, OpPut, "k", 1)
	if d.Err == nil || !hcerr.IsTransient(d.Err) {
		t.Fatalf("want transient error, got %v", d.Err)
	}
}

func TestRateIsDeterministicPerKey(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 0, Start: 0, Mode: Transient, Rate: 0.5, Seed: 7}}}
	failed, passed := 0, 0
	for i := 0; i < 256; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))
		first := s.Decide(1, 0, OpPut, key, 1).Err != nil
		for rep := 0; rep < 3; rep++ {
			if got := s.Decide(1, 0, OpPut, key, 1).Err != nil; got != first {
				t.Fatalf("key %q: decision flapped", key)
			}
		}
		if first {
			failed++
		} else {
			passed++
		}
	}
	if failed == 0 || passed == 0 {
		t.Fatalf("rate 0.5 selected nothing or everything (failed=%d passed=%d)", failed, passed)
	}
}

func TestLatencyCompose(t *testing.T) {
	s := &Schedule{Windows: []Window{
		{Tier: 0, Start: 0, Mode: LatencySpike, Extra: 0.25},
		{Tier: 0, Start: 0, Mode: LatencySpike, Extra: 0.5},
	}}
	if d := s.Decide(1, 0, OpGet, "k", 1); d.Latency != 0.75 {
		t.Fatalf("latency should compose: got %v", d.Latency)
	}
}

func TestCorruptReadsOnly(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 0, Start: 0, Mode: CorruptReads}}}
	if d := s.Decide(1, 0, OpGet, "k", 1); !d.Corrupt {
		t.Fatal("read should be corrupted")
	}
	if d := s.Decide(1, 0, OpPut, "k", 1); d.Corrupt {
		t.Fatal("writes must not see corruption decisions")
	}
}

func TestCapacityLie(t *testing.T) {
	s := &Schedule{Windows: []Window{{Tier: 2, Start: 0, End: 10, Mode: CapacityLie, CapFraction: 0.25}}}
	if got := s.ReportedCapacity(5, 2, 1000); got != 250 {
		t.Fatalf("want 250, got %d", got)
	}
	if got := s.ReportedCapacity(50, 2, 1000); got != 1000 {
		t.Fatalf("closed window must report true capacity, got %d", got)
	}
	if got := s.ReportedCapacity(5, 1, 1000); got != 1000 {
		t.Fatalf("other tier must report true capacity, got %d", got)
	}
}
