// Package analyzer implements HCompress's Input Analyzer (IA): fast,
// sampling-based inference of a buffer's data type, content distribution,
// and container format (§IV-C). The IA never scans whole buffers — it
// sub-samples, mirroring the paper's claim that analysis is "extremely
// fast and accurate" because most inputs are either self-described or
// statistically obvious.
package analyzer

import (
	"encoding/binary"
	"math"

	"hcompress/internal/stats"
)

// Format is the container format the IA recognizes.
type Format int

const (
	FormatRaw Format = iota
	FormatH5Lite
	FormatCSV
	FormatJSON
)

var formatNames = [...]string{"raw", "h5lite", "csv", "json"}

func (f Format) String() string {
	if f < 0 || int(f) >= len(formatNames) {
		return "unknown"
	}
	return formatNames[f]
}

// H5LiteMagic is the 4-byte superblock signature of the h5lite container
// (see internal/h5lite); the IA uses it for the self-described fast path.
var H5LiteMagic = [4]byte{'H', '5', 'L', 'T'}

// Result is the IA's verdict on one buffer.
type Result struct {
	Type   stats.DataType
	Dist   stats.Dist
	Format Format
	Size   int
}

// Hint carries externally known attributes (e.g. parsed from a
// self-describing container) that short-circuit detection.
type Hint struct {
	Type *stats.DataType
	Dist *stats.Dist
}

const (
	// maxScanBytes caps the bytes any single detector may touch. The
	// detectors stride across the WHOLE buffer (so a text tail in a
	// large file is still seen) but visit at most this many bytes:
	// analysis cost is O(maxScanBytes), independent of buffer size.
	maxScanBytes  = 64 << 10
	textSamples   = 4096 // byte positions inspected by looksTextual
	distSamples   = 2048 // numeric samples for distribution classification
	printableFrac = 0.92
)

// Analyze inspects buf and infers its attributes.
func Analyze(buf []byte) Result {
	return AnalyzeWithHint(buf, nil)
}

// AnalyzeWithHint is Analyze with a self-described fast path: any
// attribute present in hint is trusted, skipping detection (the paper's
// "metadata parsing of self-described portable data representations").
// A fully-hinted buffer skips the sampling sniffers entirely — only the
// O(1) container-magic check runs, so a hinted Analyze costs a few
// nanoseconds regardless of buffer size.
func AnalyzeWithHint(buf []byte, hint *Hint) Result {
	if hint != nil && hint.Type != nil && hint.Dist != nil {
		r := Result{Size: len(buf), Type: *hint.Type, Dist: *hint.Dist}
		if len(buf) >= 4 && buf[0] == H5LiteMagic[0] && buf[1] == H5LiteMagic[1] &&
			buf[2] == H5LiteMagic[2] && buf[3] == H5LiteMagic[3] {
			r.Format = FormatH5Lite
		}
		return r
	}
	r := Result{Size: len(buf), Format: detectFormat(buf)}
	if hint != nil && hint.Type != nil {
		r.Type = *hint.Type
	} else {
		r.Type = detectType(buf)
	}
	if hint != nil && hint.Dist != nil {
		r.Dist = *hint.Dist
		return r
	}
	r.Dist = stats.ClassifyDist(stats.SampleFloats(buf, r.Type, distSamples))
	return r
}

func detectFormat(buf []byte) Format {
	if len(buf) >= 4 && buf[0] == H5LiteMagic[0] && buf[1] == H5LiteMagic[1] &&
		buf[2] == H5LiteMagic[2] && buf[3] == H5LiteMagic[3] {
		return FormatH5Lite
	}
	// Leading-whitespace-tolerant JSON sniff.
	for _, b := range buf[:minInt(len(buf), 64)] {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{', '[':
			if looksTextual(buf) {
				return FormatJSON
			}
			return FormatRaw
		default:
			goto notJSON
		}
	}
notJSON:
	if looksTextual(buf) && looksCSV(buf) {
		return FormatCSV
	}
	return FormatRaw
}

// wordStride returns the 4-byte-aligned step that visits at most
// maxScanBytes/4 32-bit words of an n-byte buffer.
func wordStride(n int) int {
	const maxWords = maxScanBytes / 4
	words := n / 4
	if words <= maxWords {
		return 4
	}
	return ((words + maxWords - 1) / maxWords) * 4
}

// detectType classifies element type from a sub-sample: text, then float32,
// then int32, else opaque binary. The sample strides across the whole
// buffer but touches at most maxScanBytes bytes.
func detectType(buf []byte) stats.DataType {
	if len(buf) == 0 {
		return stats.TypeBinary
	}
	if looksTextual(buf) {
		return stats.TypeText
	}
	sample := buf[:len(buf)&^3]
	if len(sample) < 4 {
		return stats.TypeBinary
	}
	stride := wordStride(len(sample))
	floatish, intish := 0, 0
	total := 0
	for i := 0; i+4 <= len(sample); i += stride {
		v := binary.LittleEndian.Uint32(sample[i:])
		total++
		f := math.Float32frombits(v)
		// Plausible measurement floats: finite, not denormal-tiny, and of
		// moderate magnitude.
		if !math.IsNaN(float64(f)) && !math.IsInf(float64(f), 0) {
			a := math.Abs(float64(f))
			if a == 0 || (a > 1e-20 && a < 1e20) {
				floatish++
			}
		}
		// Plausible int32 measurements cluster near zero relative to the
		// full 32-bit range.
		if iv := int32(v); iv > -(1<<26) && iv < 1<<26 {
			intish++
		}
	}
	if total == 0 {
		return stats.TypeBinary
	}
	ff := float64(floatish) / float64(total)
	fi := float64(intish) / float64(total)
	switch {
	case fi >= 0.95 && fi >= ff:
		return stats.TypeInt
	case ff >= 0.95:
		return stats.TypeFloat
	case fi >= 0.80 || ff >= 0.80:
		if fi >= ff {
			return stats.TypeInt
		}
		return stats.TypeFloat
	default:
		return stats.TypeBinary
	}
}

// looksTextual samples byte positions across the whole buffer (at most
// textSamples of them) and checks the printable fraction.
func looksTextual(buf []byte) bool {
	n := len(buf)
	if n == 0 {
		return false
	}
	printable := 0
	stride := maxInt(1, (n+textSamples-1)/textSamples)
	seen := 0
	for i := 0; i < n; i += stride {
		b := buf[i]
		if (b >= 0x20 && b < 0x7F) || b == '\n' || b == '\r' || b == '\t' {
			printable++
		}
		seen++
	}
	return float64(printable) >= printableFrac*float64(seen)
}

// looksCSV inspects up to maxScanBytes of contiguous text — the head
// plus, for large buffers, a window from the middle — because the
// comma/newline ratio test needs unbroken runs of lines to be
// meaningful, unlike the strided byte sampling above.
func looksCSV(buf []byte) bool {
	const half = maxScanBytes / 2
	head := buf[:minInt(len(buf), half)]
	var mid []byte
	if len(buf) > 2*half {
		start := len(buf)/2 - half/2
		mid = buf[start : start+half]
	}
	commas, newlines := countCSV(head)
	c2, n2 := countCSV(mid)
	commas += c2
	newlines += n2
	return newlines >= 2 && commas >= 2*newlines
}

func countCSV(buf []byte) (commas, newlines int) {
	for _, b := range buf {
		switch b {
		case ',':
			commas++
		case '\n':
			newlines++
		}
	}
	return
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
