package analyzer

import (
	"math/rand"
	"testing"

	"hcompress/internal/stats"
)

func TestDetectTextType(t *testing.T) {
	buf := stats.GenBuffer(stats.TypeText, stats.Uniform, 1<<16, 1)
	r := Analyze(buf)
	if r.Type != stats.TypeText {
		t.Errorf("text buffer detected as %v", r.Type)
	}
	if r.Size != 1<<16 {
		t.Errorf("size %d", r.Size)
	}
}

func TestDetectFloatType(t *testing.T) {
	for _, d := range stats.AllDists() {
		buf := stats.GenBuffer(stats.TypeFloat, d, 1<<16, int64(d)+10)
		r := Analyze(buf)
		if r.Type != stats.TypeFloat {
			t.Errorf("float/%v detected as %v", d, r.Type)
		}
	}
}

func TestDetectIntType(t *testing.T) {
	for _, d := range stats.AllDists() {
		buf := stats.GenBuffer(stats.TypeInt, d, 1<<16, int64(d)+20)
		r := Analyze(buf)
		if r.Type != stats.TypeInt {
			t.Errorf("int/%v detected as %v", d, r.Type)
		}
	}
}

func TestDetectBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 1<<16)
	rng.Read(buf)
	r := Analyze(buf)
	if r.Type == stats.TypeText {
		t.Errorf("random bytes detected as text")
	}
	if r.Format != FormatRaw {
		t.Errorf("random bytes format %v", r.Format)
	}
}

func TestDetectDistribution(t *testing.T) {
	ok := 0
	total := 0
	for _, d := range stats.AllDists() {
		for trial := 0; trial < 5; trial++ {
			buf := stats.GenBuffer(stats.TypeFloat, d, 1<<17, int64(d)*100+int64(trial))
			total++
			if Analyze(buf).Dist == d {
				ok++
			}
		}
	}
	if ok*10 < total*6 {
		t.Errorf("distribution detection %d/%d", ok, total)
	}
}

func TestDetectCSV(t *testing.T) {
	csv := []byte("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
	r := Analyze(csv)
	if r.Format != FormatCSV {
		t.Errorf("csv detected as %v", r.Format)
	}
	if r.Type != stats.TypeText {
		t.Errorf("csv type %v", r.Type)
	}
}

func TestDetectJSON(t *testing.T) {
	j := []byte(`  {"particles": [1, 2, 3], "timestep": 5, "name": "vpic"}`)
	if got := Analyze(j).Format; got != FormatJSON {
		t.Errorf("json detected as %v", got)
	}
	arr := []byte(`[1,2,3,4,5,6,7,8,9,10,11,12]`)
	if got := Analyze(arr).Format; got != FormatJSON {
		t.Errorf("json array detected as %v", got)
	}
}

func TestDetectH5Lite(t *testing.T) {
	buf := append([]byte("H5LT"), make([]byte, 100)...)
	if got := Analyze(buf).Format; got != FormatH5Lite {
		t.Errorf("h5lite magic detected as %v", got)
	}
}

func TestHintShortCircuits(t *testing.T) {
	// A hint must be trusted even when detection would disagree.
	buf := stats.GenBuffer(stats.TypeText, stats.Uniform, 4096, 3)
	ty := stats.TypeFloat
	di := stats.Gamma
	r := AnalyzeWithHint(buf, &Hint{Type: &ty, Dist: &di})
	if r.Type != stats.TypeFloat || r.Dist != stats.Gamma {
		t.Errorf("hint ignored: %+v", r)
	}
	// Partial hint: type given, dist detected.
	r2 := AnalyzeWithHint(buf, &Hint{Type: &ty})
	if r2.Type != stats.TypeFloat {
		t.Errorf("partial hint ignored")
	}
}

func TestEmptyAndTinyBuffers(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 7} {
		buf := make([]byte, n)
		r := Analyze(buf) // must not panic
		if r.Size != n {
			t.Errorf("n=%d: size %d", n, r.Size)
		}
	}
}

func TestFormatString(t *testing.T) {
	names := map[Format]string{
		FormatRaw: "raw", FormatH5Lite: "h5lite", FormatCSV: "csv", FormatJSON: "json",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d -> %q want %q", f, f.String(), want)
		}
	}
	if Format(99).String() != "unknown" {
		t.Error("out-of-range format name")
	}
}

func BenchmarkAnalyze1MB(b *testing.B) {
	buf := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 4)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(buf)
	}
}
