package analyzer

import (
	"math/rand"
	"testing"
	"time"

	"hcompress/internal/stats"
)

func TestDetectTextType(t *testing.T) {
	buf := stats.GenBuffer(stats.TypeText, stats.Uniform, 1<<16, 1)
	r := Analyze(buf)
	if r.Type != stats.TypeText {
		t.Errorf("text buffer detected as %v", r.Type)
	}
	if r.Size != 1<<16 {
		t.Errorf("size %d", r.Size)
	}
}

func TestDetectFloatType(t *testing.T) {
	for _, d := range stats.AllDists() {
		buf := stats.GenBuffer(stats.TypeFloat, d, 1<<16, int64(d)+10)
		r := Analyze(buf)
		if r.Type != stats.TypeFloat {
			t.Errorf("float/%v detected as %v", d, r.Type)
		}
	}
}

func TestDetectIntType(t *testing.T) {
	for _, d := range stats.AllDists() {
		buf := stats.GenBuffer(stats.TypeInt, d, 1<<16, int64(d)+20)
		r := Analyze(buf)
		if r.Type != stats.TypeInt {
			t.Errorf("int/%v detected as %v", d, r.Type)
		}
	}
}

func TestDetectBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 1<<16)
	rng.Read(buf)
	r := Analyze(buf)
	if r.Type == stats.TypeText {
		t.Errorf("random bytes detected as text")
	}
	if r.Format != FormatRaw {
		t.Errorf("random bytes format %v", r.Format)
	}
}

func TestDetectDistribution(t *testing.T) {
	ok := 0
	total := 0
	for _, d := range stats.AllDists() {
		for trial := 0; trial < 5; trial++ {
			buf := stats.GenBuffer(stats.TypeFloat, d, 1<<17, int64(d)*100+int64(trial))
			total++
			if Analyze(buf).Dist == d {
				ok++
			}
		}
	}
	if ok*10 < total*6 {
		t.Errorf("distribution detection %d/%d", ok, total)
	}
}

func TestDetectCSV(t *testing.T) {
	csv := []byte("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
	r := Analyze(csv)
	if r.Format != FormatCSV {
		t.Errorf("csv detected as %v", r.Format)
	}
	if r.Type != stats.TypeText {
		t.Errorf("csv type %v", r.Type)
	}
}

func TestDetectJSON(t *testing.T) {
	j := []byte(`  {"particles": [1, 2, 3], "timestep": 5, "name": "vpic"}`)
	if got := Analyze(j).Format; got != FormatJSON {
		t.Errorf("json detected as %v", got)
	}
	arr := []byte(`[1,2,3,4,5,6,7,8,9,10,11,12]`)
	if got := Analyze(arr).Format; got != FormatJSON {
		t.Errorf("json array detected as %v", got)
	}
}

func TestDetectH5Lite(t *testing.T) {
	buf := append([]byte("H5LT"), make([]byte, 100)...)
	if got := Analyze(buf).Format; got != FormatH5Lite {
		t.Errorf("h5lite magic detected as %v", got)
	}
}

func TestHintShortCircuits(t *testing.T) {
	// A hint must be trusted even when detection would disagree.
	buf := stats.GenBuffer(stats.TypeText, stats.Uniform, 4096, 3)
	ty := stats.TypeFloat
	di := stats.Gamma
	r := AnalyzeWithHint(buf, &Hint{Type: &ty, Dist: &di})
	if r.Type != stats.TypeFloat || r.Dist != stats.Gamma {
		t.Errorf("hint ignored: %+v", r)
	}
	// Partial hint: type given, dist detected.
	r2 := AnalyzeWithHint(buf, &Hint{Type: &ty})
	if r2.Type != stats.TypeFloat {
		t.Errorf("partial hint ignored")
	}
}

func TestEmptyAndTinyBuffers(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 7} {
		buf := make([]byte, n)
		r := Analyze(buf) // must not panic
		if r.Size != n {
			t.Errorf("n=%d: size %d", n, r.Size)
		}
	}
}

func TestFormatString(t *testing.T) {
	names := map[Format]string{
		FormatRaw: "raw", FormatH5Lite: "h5lite", FormatCSV: "csv", FormatJSON: "json",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d -> %q want %q", f, f.String(), want)
		}
	}
	if Format(99).String() != "unknown" {
		t.Error("out-of-range format name")
	}
}

func BenchmarkAnalyze1MB(b *testing.B) {
	buf := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 4)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(buf)
	}
}

// touchedByDetectType computes, from the stride math alone, how many bytes
// the detectType word loop reads for an n-byte buffer.
func touchedByDetectType(n int) int {
	sample := n &^ 3
	if sample < 4 {
		return sample
	}
	stride := wordStride(sample)
	return 4 * ((sample-4)/stride + 1)
}

// touchedByLooksTextual computes how many byte positions looksTextual visits.
func touchedByLooksTextual(n int) int {
	if n == 0 {
		return 0
	}
	stride := maxInt(1, (n+textSamples-1)/textSamples)
	return (n-1)/stride + 1
}

// touchedByLooksCSV computes how many bytes looksCSV scans.
func touchedByLooksCSV(n int) int {
	const half = maxScanBytes / 2
	t := minInt(n, half)
	if n > 2*half {
		t += half
	}
	return t
}

// TestScanBudget proves, by stride accounting, that every detector touches
// O(maxScanBytes) bytes regardless of buffer size — up to 1 GiB here
// without allocating anything.
func TestScanBudget(t *testing.T) {
	sizes := []int{0, 1, 3, 4, 100, 4096, 64 << 10, 64<<10 + 1,
		1 << 20, 16 << 20, 100 << 20, 1 << 30}
	for _, n := range sizes {
		if got := touchedByDetectType(n); got > maxScanBytes+4 {
			t.Errorf("detectType touches %d bytes of a %d-byte buffer", got, n)
		}
		if got := touchedByLooksTextual(n); got > textSamples {
			t.Errorf("looksTextual visits %d positions of a %d-byte buffer", got, n)
		}
		if got := touchedByLooksCSV(n); got > maxScanBytes {
			t.Errorf("looksCSV scans %d bytes of a %d-byte buffer", got, n)
		}
	}
	// The budget must also actually be *used* on large buffers: striding
	// across the whole buffer, not a fixed prefix.
	if s := wordStride(1 << 30); s <= 4 {
		t.Errorf("wordStride(1GiB) = %d: large buffers are not strided", s)
	}
}

// TestLargeBufferAnalysisBounded checks end to end that analyzing a 16 MiB
// buffer costs about the same as analyzing 1 MiB — i.e. the detectors are
// O(sample), not O(n). An O(n) scan would be ~16x slower; we allow 8x of
// timing noise.
func TestLargeBufferAnalysisBounded(t *testing.T) {
	small := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 7)
	large := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 16<<20, 7)
	if r := Analyze(large); r.Type != stats.TypeFloat {
		t.Fatalf("16MiB float buffer detected as %v", r.Type)
	}
	best := func(buf []byte) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 7; i++ {
			start := time.Now()
			Analyze(buf)
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	Analyze(small) // warm up
	bs, bl := best(small), best(large)
	if bl > 8*bs && bl > 2*time.Millisecond {
		t.Errorf("16MiB analysis took %v vs %v for 1MiB: not O(sample)", bl, bs)
	}
}
