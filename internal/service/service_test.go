package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hcompress"
	"hcompress/internal/hcerr"
)

// newBackend builds a small real pipeline: the service tests exercise
// the tenancy layer end to end, not a mock.
func newBackend(t *testing.T) *hcompress.Client {
	t.Helper()
	c, err := hcompress.New(hcompress.Config{Tiers: []hcompress.TierSpec{
		{Name: "ram", CapacityBytes: 8 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "pfs", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(newBackend(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// incompressible fills n bytes from an xorshift stream: no codec beats
// ~1.0 on it, so stored bytes track task bytes and quota arithmetic in
// tests stays predictable.
func incompressible(n int) []byte {
	buf := make([]byte, n)
	x := uint64(0x243f6a8885a308d3)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}

// TestTenantNamespaceIsolation: two tenants use the same key; each
// reads back its own bytes, and a tenant that never wrote the key gets
// ErrNotFound — another tenant's data is unreachable by construction.
func TestTenantNamespaceIsolation(t *testing.T) {
	s := newServer(t, Config{})
	ctx := context.Background()
	dataA := []byte(strings.Repeat("tenant alpha block. ", 512))
	dataB := []byte(strings.Repeat("tenant beta block. ", 512))
	if _, err := s.Compress(ctx, "alpha", hcompress.Task{Key: "shared", Data: dataA}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compress(ctx, "beta", hcompress.Task{Key: "shared", Data: dataB}, ""); err != nil {
		t.Fatal(err)
	}
	repA, err := s.Decompress(ctx, "alpha", "shared", "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repA.Data, dataA) {
		t.Fatal("tenant alpha read back wrong bytes")
	}
	repA.Release()
	repB, err := s.Decompress(ctx, "beta", "shared", "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repB.Data, dataB) {
		t.Fatal("tenant beta read back wrong bytes")
	}
	repB.Release()
	if _, err := s.Decompress(ctx, "gamma", "shared", ""); !errors.Is(err, hcompress.ErrNotFound) {
		t.Fatalf("tenant gamma reading a key it never wrote: want ErrNotFound, got %v", err)
	}
	// Deleting its own key must not touch the other tenant's.
	if err := s.Delete("alpha", "shared"); err != nil {
		t.Fatal(err)
	}
	if rep, err := s.Decompress(ctx, "beta", "shared", ""); err != nil {
		t.Fatalf("beta's key gone after alpha's delete: %v", err)
	} else {
		rep.Release()
	}
}

// TestQuotaEnforcement: a write that would exceed the tenant's byte
// quota fails with the typed ErrQuotaExceeded and stores nothing;
// deleting data releases quota and the write then succeeds.
func TestQuotaEnforcement(t *testing.T) {
	const taskBytes = 64 << 10
	s := newServer(t, Config{Tenants: []TenantSpec{
		{Name: "capped", QuotaBytes: taskBytes + taskBytes/2},
	}})
	ctx := context.Background()
	data := incompressible(taskBytes)
	if _, err := s.Compress(ctx, "capped", hcompress.Task{Key: "a", Data: data}, ""); err != nil {
		t.Fatal(err)
	}
	_, err := s.Compress(ctx, "capped", hcompress.Task{Key: "b", Data: data}, "")
	if !errors.Is(err, hcerr.ErrQuotaExceeded) {
		t.Fatalf("over-quota write: want ErrQuotaExceeded, got %v", err)
	}
	if !errors.Is(err, hcompress.ErrQuotaExceeded) {
		t.Fatal("quota error does not match the root-package re-export")
	}
	// Nothing stored for the rejected key.
	if _, err := s.Decompress(ctx, "capped", "b", ""); !errors.Is(err, hcompress.ErrNotFound) {
		t.Fatalf("rejected key readable: %v", err)
	}
	if st := s.TenantUsage("capped"); st.Keys != 1 {
		t.Fatalf("tenant accounting has %d keys, want 1", st.Keys)
	}
	// Rewriting the SAME key replaces it — no double-count rejection.
	if _, err := s.Compress(ctx, "capped", hcompress.Task{Key: "a", Data: data}, ""); err != nil {
		t.Fatalf("same-key rewrite within quota: %v", err)
	}
	// Delete releases the quota; the rejected write now fits.
	if err := s.Delete("capped", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compress(ctx, "capped", hcompress.Task{Key: "b", Data: data}, ""); err != nil {
		t.Fatalf("write after quota release: %v", err)
	}
}

// TestAdmissionThrottle: a zero-rate bucket with Burst tokens admits
// exactly Burst requests — deterministic, no wall-clock sleeps — and a
// positive rate refills on the injected clock.
func TestAdmissionThrottle(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newServer(t, Config{
		Tenants: []TenantSpec{{Name: "bursty", RatePerSec: 1, Burst: 2}},
		now:     func() time.Time { return now },
	})
	ctx := context.Background()
	data := []byte(strings.Repeat("small block. ", 256))
	for i := 0; i < 2; i++ {
		if _, err := s.Compress(ctx, "bursty", hcompress.Task{Key: fmt.Sprintf("k%d", i), Data: data}, ""); err != nil {
			t.Fatalf("write %d within burst: %v", i, err)
		}
	}
	_, err := s.Compress(ctx, "bursty", hcompress.Task{Key: "k2", Data: data}, "")
	if !errors.Is(err, hcerr.ErrThrottled) {
		t.Fatalf("over-burst write: want ErrThrottled, got %v", err)
	}
	if !errors.Is(err, hcompress.ErrThrottled) {
		t.Fatal("throttle error does not match the root-package re-export")
	}
	// Refill at 1 token/s on the injected clock.
	now = now.Add(1 * time.Second)
	if _, err := s.Compress(ctx, "bursty", hcompress.Task{Key: "k2", Data: data}, ""); err != nil {
		t.Fatalf("write after refill: %v", err)
	}
	if _, err := s.Compress(ctx, "bursty", hcompress.Task{Key: "k3", Data: data}, ""); !errors.Is(err, hcerr.ErrThrottled) {
		t.Fatalf("bucket should hold exactly one refilled token, got %v", err)
	}
}

// TestStrictTenants: with StrictTenants, an unregistered tenant is
// rejected with ErrNotFound instead of being lazily created.
func TestStrictTenants(t *testing.T) {
	s := newServer(t, Config{
		StrictTenants: true,
		Tenants:       []TenantSpec{{Name: "known"}},
	})
	ctx := context.Background()
	data := []byte(strings.Repeat("x", 4096))
	if _, err := s.Compress(ctx, "known", hcompress.Task{Key: "k", Data: data}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compress(ctx, "stranger", hcompress.Task{Key: "k", Data: data}, ""); !errors.Is(err, hcompress.ErrNotFound) {
		t.Fatalf("unknown tenant under StrictTenants: want ErrNotFound, got %v", err)
	}
}

// TestRequestValidation covers the cheap rejections: tenant names that
// could break namespacing, and unknown priority classes.
func TestRequestValidation(t *testing.T) {
	s := newServer(t, Config{})
	ctx := context.Background()
	data := []byte("payload")
	for _, name := range []string{"", "a/b", "a b", "dots..fine-but/not-slash"} {
		if _, err := s.Compress(ctx, name, hcompress.Task{Key: "k", Data: data}, ""); err == nil {
			t.Fatalf("tenant name %q accepted", name)
		}
	}
	if _, err := s.Compress(ctx, "ok", hcompress.Task{Key: "", Data: data}, ""); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := s.Compress(ctx, "ok", hcompress.Task{Key: "k", Data: data}, "realtime"); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

// postJSON is the test HTTP client: marshal req, POST, decode into out,
// and return the status code.
func postJSON(t *testing.T, url string, req, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip drives the wire protocol over a loopback listener:
// per-tenant round trip, cross-tenant 404, quota 403, throttle 429,
// healthz, stat, and the merged /metrics exposition.
func TestHTTPRoundTrip(t *testing.T) {
	const taskBytes = 32 << 10
	s := newServer(t, Config{
		Tenants: []TenantSpec{
			{Name: "alpha"},
			{Name: "capped", QuotaBytes: taskBytes + taskBytes/2},
			{Name: "bursty", RatePerSec: 0.001, Burst: 1},
		},
		EnableTelemetry: true,
	})
	addr, shutdown, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	base := "http://" + addr

	data := incompressible(taskBytes)
	var cr CompressResponse
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "alpha", Key: "doc", Data: data}, &cr); code != http.StatusOK {
		t.Fatalf("compress: HTTP %d", code)
	}
	if cr.OriginalBytes != taskBytes || cr.StoredBytes <= 0 {
		t.Fatalf("compress response %+v", cr)
	}
	var dr DecompressResponse
	if code := postJSON(t, base+"/v1/decompress", DecompressRequest{Tenant: "alpha", Key: "doc"}, &dr); code != http.StatusOK {
		t.Fatalf("decompress: HTTP %d", code)
	}
	if !bytes.Equal(dr.Data, data) {
		t.Fatal("HTTP round trip corrupted payload")
	}

	// Cross-tenant read: 404 with the stable machine code.
	var er ErrorResponse
	if code := postJSON(t, base+"/v1/decompress", DecompressRequest{Tenant: "capped", Key: "doc"}, &er); code != http.StatusNotFound {
		t.Fatalf("cross-tenant read: HTTP %d, want 404", code)
	}
	if er.Code != "not_found" {
		t.Fatalf("cross-tenant read: code %q, want not_found", er.Code)
	}

	// Quota: first write fits, second rejects with 403/quota_exceeded.
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "capped", Key: "a", Data: data}, &cr); code != http.StatusOK {
		t.Fatalf("capped first write: HTTP %d", code)
	}
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "capped", Key: "b", Data: data}, &er); code != http.StatusForbidden {
		t.Fatalf("over-quota write: HTTP %d, want 403", code)
	}
	if er.Code != "quota_exceeded" {
		t.Fatalf("over-quota write: code %q, want quota_exceeded", er.Code)
	}

	// Admission: one-token bucket admits one request, then 429/throttled.
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "bursty", Key: "a", Data: data}, &cr); code != http.StatusOK {
		t.Fatalf("bursty first write: HTTP %d", code)
	}
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "bursty", Key: "b", Data: data}, &er); code != http.StatusTooManyRequests {
		t.Fatalf("throttled write: HTTP %d, want 429", code)
	}
	if er.Code != "throttled" {
		t.Fatalf("throttled write: code %q, want throttled", er.Code)
	}

	// Delete, then the key is gone.
	var del struct{}
	if code := postJSON(t, base+"/v1/delete", DeleteRequest{Tenant: "alpha", Key: "doc"}, &del); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if code := postJSON(t, base+"/v1/decompress", DecompressRequest{Tenant: "alpha", Key: "doc"}, &er); code != http.StatusNotFound {
		t.Fatalf("read after delete: HTTP %d, want 404", code)
	}

	// Health and stat.
	hres, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", hres.StatusCode)
	}
	sres, err := http.Get(base + "/v1/stat")
	if err != nil {
		t.Fatal(err)
	}
	var stat StatResponse
	err = json.NewDecoder(sres.Body).Decode(&stat)
	sres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stat.Shards != 1 || len(stat.Tenants) != 3 || stat.Stats == nil {
		t.Fatalf("stat response %+v", stat)
	}

	// Merged metrics: the service's tenant-labeled series are present.
	mres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := io.ReadAll(mres.Body)
	mres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hc_service_requests_total{tenant="alpha"}`,
		`hc_service_rejects_total{tenant="capped",reason="quota"}`,
		`hc_service_rejects_total{tenant="bursty",reason="throttle"}`,
		"hc_service_request_seconds",
	} {
		if !strings.Contains(string(exp), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
