package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"hcompress"
	"hcompress/internal/hcerr"
	"hcompress/internal/telemetry"
)

// The HTTP/JSON protocol. Payload bytes travel base64-encoded inside
// JSON ([]byte marshalling), which keeps the protocol one-format and
// curl-friendly; a binary framing can ride alongside later without
// disturbing these handlers.

// CompressRequest is the POST /v1/compress body.
type CompressRequest struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
	Data   []byte `json:"data"` // base64 in JSON
	// Type/Dist optionally pre-declare the payload (the analyzer's
	// self-described fast path); Priority optionally overrides the
	// write's default "batch" scheduling class.
	Type     string `json:"type,omitempty"`
	Dist     string `json:"dist,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// CompressResponse is the POST /v1/compress reply.
type CompressResponse struct {
	Key            string  `json:"key"`
	OriginalBytes  int64   `json:"originalBytes"`
	StoredBytes    int64   `json:"storedBytes"`
	Ratio          float64 `json:"ratio"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	Shard          int     `json:"shard"`
	Degraded       bool    `json:"degraded,omitempty"`
}

// DecompressRequest is the POST /v1/decompress body.
type DecompressRequest struct {
	Tenant   string `json:"tenant"`
	Key      string `json:"key"`
	Priority string `json:"priority,omitempty"`
}

// DecompressResponse is the POST /v1/decompress reply.
type DecompressResponse struct {
	Key   string `json:"key"`
	Data  []byte `json:"data"`
	Type  string `json:"type"`
	Dist  string `json:"dist"`
	Shard int    `json:"shard"`
}

// DeleteRequest is the POST /v1/delete body.
type DeleteRequest struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
}

// ErrorResponse is every non-2xx body: a human message and a stable
// machine code ("throttled", "quota_exceeded", "not_found", ...).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// StatResponse is the GET /v1/stat reply.
type StatResponse struct {
	Shards  int                          `json:"shards"`
	Tenants []TenantStat                 `json:"tenants,omitempty"`
	Tenant  *TenantStat                  `json:"tenant,omitempty"`
	Status  []hcompress.TierStatusReport `json:"status,omitempty"`
	Stats   *hcompress.Stats             `json:"stats,omitempty"`
	Health  []hcompress.TierHealthReport `json:"health,omitempty"`
}

// sharder is the optional Backend refinement that reveals key routing;
// *hcompress.Router implements it. Without it (single shard) every
// response reports shard 0.
type sharder interface {
	Shards() int
	ShardFor(key string) int
}

func (s *Server) shardInfo(key string) (shards, owner int) {
	if sh, ok := s.backend.(sharder); ok {
		return sh.Shards(), sh.ShardFor(key)
	}
	return 1, 0
}

// Handler serves the service API:
//
//	POST /v1/compress    write one task (tenant, key, base64 data)
//	POST /v1/decompress  read it back
//	POST /v1/delete      remove it
//	GET  /v1/stat        cluster + per-tenant accounting (?tenant=name)
//	GET  /v1/slo         per-tenant, per-op SLO compliance and burn rates
//	GET  /v1/healthz     aggregate tier health (200 unless a tier is offline)
//	GET  /metrics        merged Prometheus exposition (shards + service)
//
// Requests may carry an X-Request-Id header; it becomes the trace ID on
// every span the request's shard emits (one is assigned otherwise).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compress", s.handleCompress)
	mux.HandleFunc("POST /v1/decompress", s.handleDecompress)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("GET /v1/stat", s.handleStat)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// reqContext lifts the caller-supplied request ID (X-Request-Id) into
// the context so the service's reqCtx propagates it instead of assigning
// one.
func reqContext(r *http.Request) context.Context {
	ctx := r.Context()
	if id := r.Header.Get("X-Request-Id"); id != "" {
		ctx = telemetry.WithReq(ctx, telemetry.ReqInfo{ID: id})
	}
	return ctx
}

// writeError maps the typed error taxonomy onto HTTP statuses. Every
// body is an ErrorResponse; errors.Is keeps working across the wire via
// the machine code.
func writeError(w http.ResponseWriter, err error) {
	code, status := "internal", http.StatusInternalServerError
	switch {
	case errors.Is(err, hcerr.ErrThrottled):
		code, status = "throttled", http.StatusTooManyRequests
	case errors.Is(err, hcerr.ErrQuotaExceeded):
		code, status = "quota_exceeded", http.StatusForbidden
	case errors.Is(err, hcerr.ErrNotFound):
		code, status = "not_found", http.StatusNotFound
	case errors.Is(err, hcerr.ErrCorrupted):
		code, status = "corrupted", http.StatusBadGateway
	case errors.Is(err, hcerr.ErrTierOffline), errors.Is(err, hcerr.ErrNoCapacity):
		code, status = "unavailable", http.StatusServiceUnavailable
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	defer func() { _, _ = io.Copy(io.Discard, r.Body) }()
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("service: bad request body: %v", err), Code: "bad_request"})
		return false
	}
	return true
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	var req CompressRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Data) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "service: empty task data", Code: "bad_request"})
		return
	}
	rep, err := s.Compress(reqContext(r), req.Tenant, hcompress.Task{
		Key: req.Key, Data: req.Data, DataType: req.Type, Distribution: req.Dist,
	}, req.Priority)
	if err != nil {
		writeError(w, err)
		return
	}
	_, owner := s.shardInfo(fullKey(req.Tenant, req.Key))
	writeJSON(w, http.StatusOK, CompressResponse{
		Key:            req.Key,
		OriginalBytes:  rep.OriginalBytes,
		StoredBytes:    rep.StoredBytes,
		Ratio:          rep.Ratio,
		VirtualSeconds: rep.VirtualSeconds,
		Shard:          owner,
		Degraded:       rep.Degraded != nil,
	})
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	var req DecompressRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rep, err := s.Decompress(reqContext(r), req.Tenant, req.Key, req.Priority)
	if err != nil {
		writeError(w, err)
		return
	}
	_, owner := s.shardInfo(fullKey(req.Tenant, req.Key))
	resp := DecompressResponse{
		Key:   req.Key,
		Data:  rep.Data,
		Type:  rep.DataType,
		Dist:  rep.Distribution,
		Shard: owner,
	}
	writeJSON(w, http.StatusOK, resp)
	rep.Release() // the encoder has copied the bytes; return the buffer
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Delete(req.Tenant, req.Key); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Key     string `json:"key"`
		Deleted bool   `json:"deleted"`
	}{req.Key, true})
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	shards, _ := s.shardInfo("")
	resp := StatResponse{Shards: shards}
	if name := r.URL.Query().Get("tenant"); name != "" {
		st := s.TenantUsage(name)
		resp.Tenant = &st
	} else {
		resp.Tenants = s.Tenants()
		sort.Slice(resp.Tenants, func(i, j int) bool { return resp.Tenants[i].Name < resp.Tenants[j].Name })
		resp.Status = s.backend.Status()
		stats := s.backend.Stats()
		resp.Stats = &stats
	}
	writeJSON(w, http.StatusOK, resp)
}

// SLOResponse is the GET /v1/slo reply: one entry per (tenant, op)
// series seen inside the rolling window.
type SLOResponse struct {
	SLOs []telemetry.SLOStatus `json:"slos"`
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SLOResponse{SLOs: s.SLOReport()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := s.backend.Health()
	status := http.StatusOK
	for _, h := range health {
		if h.State == "offline" {
			status = http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, status, StatResponse{Health: health})
}

// handleMetrics serves the backend's merged exposition followed by the
// service's own tenant-labeled series (family names are disjoint, so the
// concatenation is a valid exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.backend.WriteMetrics(w)
	if s.reg != nil {
		s.slo.Report() // refresh the hc_slo_* gauges at scrape time
		_ = s.reg.WritePrometheus(w)
	}
}

// ListenAndServe binds addr and serves the Handler until the returned
// shutdown func runs. It reports the bound address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (bound string, shutdown func() error, err error) {
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		err := srv.Close()
		// Serve returns promptly after Close; give in-flight handlers a
		// beat so tests tearing the backend down right after shutdown
		// don't race them.
		time.Sleep(10 * time.Millisecond)
		return err
	}, nil
}
