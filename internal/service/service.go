// Package service is the multi-tenant network front-end: an HTTP/JSON
// compress/decompress service layered over a key-routed Router. It adds
// the three things a shared deployment needs that the library layer
// deliberately does not know about:
//
//   - Tenancy: every request names a tenant; keys are tenant-prefixed
//     before they reach the router, so namespaces are disjoint by
//     construction — tenant A cannot name, read, or delete tenant B's
//     data.
//   - Quotas and admission: per-tenant stored-byte quotas (typed
//     hcerr.ErrQuotaExceeded, nothing stored on rejection) and
//     token-bucket request admission (typed hcerr.ErrThrottled, clears
//     as tokens refill).
//   - Priority classes: decompress requests run at fanout.Interactive
//     and compress requests at fanout.Batch, so latency-sensitive reads
//     are claimed ahead of bulk writes in every shard's shared worker
//     pool. A request may override its class explicitly.
//
// The Server is usable both in-process (Compress/Decompress/Delete
// methods with typed errors) and over HTTP (Handler); hcbench -service
// drives the latter over loopback.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hcompress"
	"hcompress/internal/fanout"
	"hcompress/internal/hcerr"
	"hcompress/internal/telemetry"
)

// Backend is the slice of the Router/Client surface the service drives.
// *hcompress.Router implements it directly; *hcompress.Client does too
// (through its embedded shard), so tests can serve a single shard.
type Backend interface {
	CompressContext(ctx context.Context, t hcompress.Task) (*hcompress.Report, error)
	DecompressContext(ctx context.Context, key string) (*hcompress.Report, error)
	Delete(key string) error
	Status() []hcompress.TierStatusReport
	Health() []hcompress.TierHealthReport
	Stats() hcompress.Stats
	WriteMetrics(w io.Writer) error
}

// TenantSpec declares one tenant's limits.
type TenantSpec struct {
	// Name identifies the tenant: [A-Za-z0-9._-]+, no '/' (the namespace
	// separator).
	Name string
	// QuotaBytes caps the tenant's aggregate stored bytes. 0 inherits
	// Config.DefaultQuotaBytes; negative means unlimited.
	QuotaBytes int64
	// RatePerSec refills the tenant's admission bucket. 0 inherits
	// Config.DefaultRatePerSec.
	RatePerSec float64
	// Burst is the admission bucket capacity. 0 inherits
	// Config.DefaultBurst; negative disables admission control for the
	// tenant.
	Burst int
}

// Config configures the service layer.
type Config struct {
	// Tenants pre-registers tenants with explicit limits.
	Tenants []TenantSpec
	// DefaultQuotaBytes is the stored-byte quota for tenants that do not
	// set one (0 = unlimited).
	DefaultQuotaBytes int64
	// DefaultRatePerSec and DefaultBurst shape the default admission
	// bucket. Burst 0 disables admission control by default.
	DefaultRatePerSec float64
	DefaultBurst      int
	// StrictTenants rejects requests from tenants that were not
	// pre-registered; off (the default), unknown tenants are registered
	// on first use with the default limits.
	StrictTenants bool
	// EnableTelemetry registers per-tenant request/reject/byte series on
	// the service's own registry, served by /metrics alongside the
	// backend's merged exposition, and turns on the SLO engine behind
	// GET /v1/slo and the hc_slo_* series.
	EnableTelemetry bool
	// SLOObjective is the targeted fraction of good requests per tenant
	// and op class (default 0.999). A request is good when it succeeded
	// and finished within SLOLatencyTarget.
	SLOObjective float64
	// SLOLatencyTarget is the per-request latency goal the SLO engine
	// judges requests against (default 250ms).
	SLOLatencyTarget time.Duration
	// SLOWindow is the rolling window the burn rate is computed over
	// (default 60s).
	SLOWindow time.Duration
	// now overrides the admission clock (tests only).
	now func() time.Time
}

// tenant is one tenant's accounting: quota, token bucket, instruments.
// Each tenant has its own lock; the server's map lock is never held
// while a tenant's lock is, and no code path takes two tenants' locks —
// the same single-lock-at-a-time rule the router follows across shards.
type tenant struct {
	mu     sync.Mutex
	spec   TenantSpec
	used   int64
	perKey map[string]int64 // stored bytes per full (prefixed) key
	tokens float64
	last   time.Time

	ops        *telemetry.Counter
	rejections map[string]*telemetry.Counter
	usedGauge  *telemetry.Gauge
	// Per-op, tenant-labeled request series: every latency and error
	// sample carries {op, tenant} so one tenant's burn cannot hide in
	// another's aggregate.
	reqSecs map[string]*telemetry.Histogram // hc_service_request_seconds{op,tenant}
	reqErrs map[string]*telemetry.Counter   // hc_service_request_errors_total{op,tenant}
}

// Server is the multi-tenant front-end over a Backend.
type Server struct {
	backend Backend
	cfg     Config
	reg     *telemetry.Registry
	slo     *telemetry.SLOEngine

	mu      sync.Mutex
	tenants map[string]*tenant

	// reqSeq assigns request IDs to requests that did not arrive with one
	// (X-Request-Id); the ID rides the context into every shard's span
	// tree and slow-op record.
	reqSeq atomic.Uint64
}

// New builds a Server over backend. The Backend is not owned: callers
// still Close the router themselves.
func New(backend Backend, cfg Config) (*Server, error) {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		backend: backend,
		cfg:     cfg,
		tenants: make(map[string]*tenant),
	}
	if cfg.EnableTelemetry {
		s.reg = telemetry.New()
		s.slo = telemetry.NewSLOEngine(telemetry.SLOOptions{
			Objective:     cfg.SLOObjective,
			LatencyTarget: cfg.SLOLatencyTarget,
			Window:        cfg.SLOWindow,
			Now:           cfg.now,
		}, s.reg)
	}
	for _, spec := range cfg.Tenants {
		if _, err := s.registerTenant(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// validTenant reports whether name is a legal tenant name.
func validTenant(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) registerTenant(spec TenantSpec) (*tenant, error) {
	if !validTenant(spec.Name) {
		return nil, fmt.Errorf("service: invalid tenant name %q", spec.Name)
	}
	if spec.QuotaBytes == 0 {
		spec.QuotaBytes = s.cfg.DefaultQuotaBytes
	}
	if spec.RatePerSec == 0 {
		spec.RatePerSec = s.cfg.DefaultRatePerSec
	}
	if spec.Burst == 0 {
		spec.Burst = s.cfg.DefaultBurst
	}
	t := &tenant{
		spec:   spec,
		perKey: make(map[string]int64),
		tokens: float64(spec.Burst),
		last:   s.cfg.now(),
	}
	if s.reg != nil {
		l := telemetry.L("tenant", spec.Name)
		t.ops = s.reg.Counter("hc_service_requests_total", "service requests admitted", l)
		t.rejections = map[string]*telemetry.Counter{
			"quota":    s.reg.Counter("hc_service_rejects_total", "service requests rejected", l, telemetry.L("reason", "quota")),
			"throttle": s.reg.Counter("hc_service_rejects_total", "service requests rejected", l, telemetry.L("reason", "throttle")),
		}
		t.usedGauge = s.reg.Gauge("hc_service_tenant_used_bytes", "stored bytes accounted to the tenant", l)
		t.reqSecs = make(map[string]*telemetry.Histogram, 3)
		t.reqErrs = make(map[string]*telemetry.Counter, 3)
		for _, op := range []string{"compress", "decompress", "delete"} {
			lo := telemetry.L("op", op)
			t.reqSecs[op] = s.reg.Histogram("hc_service_request_seconds",
				"service request wall latency", telemetry.SecondsBuckets, lo, l)
			t.reqErrs[op] = s.reg.Counter("hc_service_request_errors_total",
				"service requests that failed after admission", lo, l)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.tenants[spec.Name]; ok {
		return existing, nil
	}
	s.tenants[spec.Name] = t
	return t, nil
}

// tenantFor resolves (or, unless StrictTenants, lazily registers) the
// tenant. The map lock is released before any tenant lock is taken.
func (s *Server) tenantFor(name string) (*tenant, error) {
	s.mu.Lock()
	t, ok := s.tenants[name]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	if s.cfg.StrictTenants {
		return nil, fmt.Errorf("service: unknown tenant %q: %w", name, hcerr.ErrNotFound)
	}
	return s.registerTenant(TenantSpec{Name: name})
}

// admit charges one request token, refilling by elapsed wall time. A
// resolved Burst <= 0 means admission control is off for the tenant
// (the zero-value Config admits everything); a positive Burst with
// RatePerSec 0 is a fixed allowance — deterministic for tests.
func (t *tenant) admit(now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spec.Burst <= 0 {
		return nil
	}
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens += dt * t.spec.RatePerSec
		if max := float64(t.spec.Burst); t.tokens > max {
			t.tokens = max
		}
		t.last = now
	}
	if t.tokens < 1 {
		t.rejections["throttle"].Inc()
		return fmt.Errorf("service: tenant %q: %w", t.spec.Name, hcerr.ErrThrottled)
	}
	t.tokens--
	t.ops.Inc()
	return nil
}

// reserve rejects a write that would push the tenant past its quota.
// The check uses the task's uncompressed size (stored bytes are almost
// always smaller); the accounting settles to actual stored bytes in
// commit. Nothing is reserved on rejection.
func (t *tenant) reserve(fullKey string, incoming int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	quota := t.spec.QuotaBytes
	if quota <= 0 {
		return nil
	}
	projected := t.used - t.perKey[fullKey] + incoming
	if projected > quota {
		t.rejections["quota"].Inc()
		return fmt.Errorf("service: tenant %q: %d + %d bytes over quota %d: %w",
			t.spec.Name, t.used, incoming, quota, hcerr.ErrQuotaExceeded)
	}
	return nil
}

// commit settles a successful write's accounting to actual stored bytes
// (replacing any previous version of the key).
func (t *tenant) commit(fullKey string, stored int64) {
	t.mu.Lock()
	t.used += stored - t.perKey[fullKey]
	t.perKey[fullKey] = stored
	used := t.used
	t.mu.Unlock()
	t.usedGauge.Set(float64(used))
}

// forget releases a deleted key's accounting.
func (t *tenant) forget(fullKey string) {
	t.mu.Lock()
	t.used -= t.perKey[fullKey]
	delete(t.perKey, fullKey)
	used := t.used
	t.mu.Unlock()
	t.usedGauge.Set(float64(used))
}

// fullKey prefixes key with its tenant namespace. Tenant names cannot
// contain '/', so prefixes never collide across tenants.
func fullKey(tenant, key string) string { return tenant + "/" + key }

// classFor maps a request priority string to a pool class: "" defaults
// per-operation (reads Interactive, writes Batch).
func classFor(priority string, def fanout.Class) (fanout.Class, error) {
	switch priority {
	case "":
		return def, nil
	case "interactive":
		return fanout.Interactive, nil
	case "batch":
		return fanout.Batch, nil
	default:
		return def, fmt.Errorf("service: unknown priority %q", priority)
	}
}

// reqCtx stamps ctx with the request identity the shards propagate into
// span trees and slow-op records: the request ID that arrived with the
// request (X-Request-Id, already in ctx) or a service-assigned one, the
// tenant, and the resolved scheduling class.
func (s *Server) reqCtx(ctx context.Context, tenantName string, cls fanout.Class) context.Context {
	ri := telemetry.ReqOf(ctx)
	if ri.ID == "" {
		ri.ID = "svc-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	}
	ri.Tenant = tenantName
	if cls == fanout.Batch {
		ri.Class = "batch"
	} else {
		ri.Class = "interactive"
	}
	return telemetry.WithReq(fanout.WithClass(ctx, cls), ri)
}

// observe settles one served request's accounting: the tenant-labeled
// latency histogram or error counter, and the SLO record. Policy rejects
// (throttle, quota) never reach here — the SLO measures what the service
// actually attempted to serve, not what it turned away by design.
func (s *Server) observe(tn *tenant, op string, start time.Time, reqErr error) {
	if s.reg == nil {
		return
	}
	lat := time.Since(start)
	if reqErr != nil {
		tn.reqErrs[op].Inc()
	} else {
		tn.reqSecs[op].Observe(lat.Seconds())
	}
	s.slo.Record(tn.spec.Name, op, lat, reqErr != nil)
}

// SLOReport returns every (tenant, op) series' rolling-window SLO status
// and refreshes the hc_slo_* gauges. Empty unless EnableTelemetry.
func (s *Server) SLOReport() []telemetry.SLOStatus {
	return s.slo.Report()
}

// Compress admits, quota-checks, namespaces, and executes one tenant
// write at Batch priority (unless overridden). Typed failures:
// ErrThrottled, ErrQuotaExceeded, plus everything the library returns.
func (s *Server) Compress(ctx context.Context, tenantName string, t hcompress.Task, priority string) (*hcompress.Report, error) {
	start := time.Now()
	cls, err := classFor(priority, fanout.Batch)
	if err != nil {
		return nil, err
	}
	if !validTenant(tenantName) {
		return nil, fmt.Errorf("service: invalid tenant name %q", tenantName)
	}
	if t.Key == "" {
		return nil, errors.New("service: task key required")
	}
	tn, err := s.tenantFor(tenantName)
	if err != nil {
		return nil, err
	}
	if err := tn.admit(s.cfg.now()); err != nil {
		return nil, err
	}
	fk := fullKey(tenantName, t.Key)
	if err := tn.reserve(fk, int64(len(t.Data))); err != nil {
		return nil, err
	}
	t.Key = fk
	rep, err := s.backend.CompressContext(s.reqCtx(ctx, tenantName, cls), t)
	s.observe(tn, "compress", start, err)
	if err != nil {
		return nil, err
	}
	tn.commit(fk, rep.StoredBytes)
	return rep, nil
}

// Decompress admits and executes one tenant read at Interactive
// priority (unless overridden). A key the tenant never wrote — including
// another tenant's key — fails with ErrNotFound.
func (s *Server) Decompress(ctx context.Context, tenantName, key, priority string) (*hcompress.Report, error) {
	start := time.Now()
	cls, err := classFor(priority, fanout.Interactive)
	if err != nil {
		return nil, err
	}
	if !validTenant(tenantName) {
		return nil, fmt.Errorf("service: invalid tenant name %q", tenantName)
	}
	tn, err := s.tenantFor(tenantName)
	if err != nil {
		return nil, err
	}
	if err := tn.admit(s.cfg.now()); err != nil {
		return nil, err
	}
	rep, err := s.backend.DecompressContext(s.reqCtx(ctx, tenantName, cls), fullKey(tenantName, key))
	s.observe(tn, "decompress", start, err)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Delete removes a tenant's key and releases its quota accounting.
func (s *Server) Delete(tenantName, key string) error {
	start := time.Now()
	if !validTenant(tenantName) {
		return fmt.Errorf("service: invalid tenant name %q", tenantName)
	}
	tn, err := s.tenantFor(tenantName)
	if err != nil {
		return err
	}
	if err := tn.admit(s.cfg.now()); err != nil {
		return err
	}
	fk := fullKey(tenantName, key)
	err = s.backend.Delete(fk)
	s.observe(tn, "delete", start, err)
	if err != nil {
		return err
	}
	tn.forget(fk)
	return nil
}

// TenantStat is one tenant's accounting snapshot.
type TenantStat struct {
	Name       string `json:"tenant"`
	UsedBytes  int64  `json:"usedBytes"`
	QuotaBytes int64  `json:"quotaBytes"` // <= 0 means unlimited
	Keys       int    `json:"keys"`
}

// TenantUsage snapshots one tenant's accounting (zero value if unknown).
func (s *Server) TenantUsage(name string) TenantStat {
	s.mu.Lock()
	t, ok := s.tenants[name]
	s.mu.Unlock()
	if !ok {
		return TenantStat{Name: name}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	quota := t.spec.QuotaBytes
	if quota < 0 {
		quota = 0
	}
	return TenantStat{Name: name, UsedBytes: t.used, QuotaBytes: quota, Keys: len(t.perKey)}
}

// Tenants snapshots every registered tenant (unordered; callers sort if
// they care).
func (s *Server) Tenants() []TenantStat {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.Unlock()
	out := make([]TenantStat, 0, len(names))
	for _, name := range names {
		out = append(out, s.TenantUsage(name))
	}
	return out
}
