package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"hcompress"
)

// TestSLOEndpointAndRequestMetrics drives the wire protocol and asserts
// the observability surfaces the PR promises: /v1/slo reports populated
// per-(tenant, op) series, /metrics carries the {op, tenant}-labeled
// request series and the hc_slo_* family, and a caller-supplied
// X-Request-Id propagates end to end into the backend's telemetry.
func TestSLOEndpointAndRequestMetrics(t *testing.T) {
	backend, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 8 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "pfs", CapacityBytes: 1 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4},
		},
		SlowOpSampleEvery: 1, // record every backend op: the propagation probe
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })
	s, err := New(backend, Config{EnableTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	base := "http://" + addr
	data := []byte(strings.Repeat("slo measured block. ", 1024))

	// One write carrying a caller-chosen request ID.
	body, err := json.Marshal(CompressRequest{Tenant: "alpha", Key: "doc", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/compress", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress with X-Request-Id: HTTP %d", resp.StatusCode)
	}

	// More traffic without the header: a second write, a good read, and
	// a not-found read (a served failure, counted against the SLO).
	var cr CompressResponse
	if code := postJSON(t, base+"/v1/compress", CompressRequest{Tenant: "alpha", Key: "doc2", Data: data}, &cr); code != http.StatusOK {
		t.Fatalf("compress doc2: HTTP %d", code)
	}
	var dr DecompressResponse
	if code := postJSON(t, base+"/v1/decompress", DecompressRequest{Tenant: "alpha", Key: "doc"}, &dr); code != http.StatusOK {
		t.Fatalf("decompress doc: HTTP %d", code)
	}
	var er ErrorResponse
	if code := postJSON(t, base+"/v1/decompress", DecompressRequest{Tenant: "alpha", Key: "ghost"}, &er); code != http.StatusNotFound {
		t.Fatalf("decompress ghost: HTTP %d, want 404", code)
	}

	// The SLO endpoint reports populated series per (tenant, op).
	sres, err := http.Get(base + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo SLOResponse
	err = json.NewDecoder(sres.Body).Decode(&slo)
	sres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]int64{}
	for _, st := range slo.SLOs {
		if st.Tenant != "alpha" {
			t.Errorf("unexpected SLO tenant %q", st.Tenant)
		}
		if st.Objective <= 0 || st.Objective >= 1 || st.WindowSeconds <= 0 {
			t.Errorf("SLO series %s/%s missing configured objective: %+v", st.Tenant, st.Class, st)
		}
		if st.GoodRatio < 0 || st.GoodRatio > 1 || st.BurnRate < 0 {
			t.Errorf("SLO series %s/%s out-of-range derived values: %+v", st.Tenant, st.Class, st)
		}
		byClass[st.Class] = st.Total
	}
	if byClass["compress"] != 2 {
		t.Errorf("compress SLO total %d, want 2", byClass["compress"])
	}
	// Both the served read and the not-found failure count.
	if byClass["decompress"] != 2 {
		t.Errorf("decompress SLO total %d, want 2", byClass["decompress"])
	}

	// The merged exposition carries the labeled request series and the
	// hc_slo_* family.
	mres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := io.ReadAll(mres.Body)
	mres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hc_service_request_seconds_count{op="compress",tenant="alpha"} 2`,
		`hc_service_request_seconds_count{op="decompress",tenant="alpha"} 1`,
		`hc_service_request_errors_total{op="decompress",tenant="alpha"} 1`,
		`hc_slo_requests_total{tenant="alpha",class="compress"} 2`,
		`hc_slo_good_total{tenant="alpha",class="compress"}`,
		`hc_slo_burn_rate{tenant="alpha",class="decompress"}`,
	} {
		if !strings.Contains(string(exp), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// End-to-end identity propagation: the backend's slow-op log (sampling
	// every op) saw the caller's request ID and the tenant; ops without
	// the header got service-assigned svc-N identities.
	var tagged, assigned bool
	for _, op := range backend.SlowOps() {
		if op.Tenant != "alpha" {
			t.Errorf("backend op %s/%s missing tenant label: %+v", op.Op, op.Key, op)
		}
		switch {
		case op.Trace == "req-abc-123":
			tagged = true
			if op.Op != "compress" || op.Key != "alpha/doc" {
				t.Errorf("X-Request-Id landed on the wrong op: %+v", op)
			}
		case strings.HasPrefix(op.Trace, "svc-"):
			assigned = true
		default:
			t.Errorf("backend op with unexpected trace ID %q", op.Trace)
		}
	}
	if !tagged {
		t.Error("X-Request-Id did not propagate to the backend's telemetry")
	}
	if !assigned {
		t.Error("requests without X-Request-Id did not get service-assigned IDs")
	}
}
