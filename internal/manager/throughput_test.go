package manager

import (
	"bytes"
	"fmt"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/fanout"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

// writeModelTasks writes n modeled 1 MiB tasks named <prefix>0..n-1 and
// returns the virtual time after the last one.
func writeModelTasks(t *testing.T, e *env, prefix string, n int) float64 {
	t.Helper()
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	now := 0.0
	for i := 0; i < n; i++ {
		sc, err := e.eng.Plan(now, attr, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.mgr.ExecuteWrite(now, fmt.Sprintf("%s%d", prefix, i), nil, 1<<20, attr, sc)
		if err != nil {
			t.Fatal(err)
		}
		now = res.End
	}
	return now
}

func TestDemoteSliceMovesOldestFirst(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	now := writeModelTasks(t, e, "d", 4)
	if e.st.Used(0) == 0 {
		t.Skip("engine placed nothing on RAM in this configuration")
	}

	// A slice big enough for exactly the first task's sub-tasks must
	// demote the oldest task and leave the youngest untouched.
	e.mgr.mu.Lock()
	firstSubs := len(e.mgr.tasks["d0"].subs)
	lastTier := e.mgr.tasks["d3"].subs[0].tier
	e.mgr.mu.Unlock()
	moved, wrapped := e.mgr.DemoteSlice(now, 0, firstSubs)
	if moved <= 0 {
		t.Fatal("slice over the oldest task moved nothing")
	}
	if wrapped {
		t.Error("a slice bounded to the first task must not wrap past 4 tasks")
	}
	e.mgr.mu.Lock()
	for _, sm := range e.mgr.tasks["d0"].subs {
		if sm.tier == 0 {
			t.Error("oldest task still has a sub-task on tier 0")
		}
	}
	if got := e.mgr.tasks["d3"].subs[0].tier; got != lastTier {
		t.Errorf("youngest task moved (tier %d -> %d) before older ones finished", lastTier, got)
	}
	cur := e.mgr.demoteCur[0]
	e.mgr.mu.Unlock()
	if cur == 0 {
		t.Error("cursor did not advance; the next slice would rescan the same task")
	}

	// Repeated slices drain the rest; every task stays readable.
	for i := 0; i < 64; i++ {
		if _, wrapped := e.mgr.DemoteSlice(now, 0, 0); wrapped {
			break
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := e.mgr.ExecuteRead(now+10, fmt.Sprintf("d%d", i)); err != nil {
			t.Fatalf("read after demotion: %v", err)
		}
	}
}

func TestDemoteSliceSkipsDeletedAndStopsAtBottom(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	now := writeModelTasks(t, e, "d", 3)
	if err := e.mgr.Delete("d0"); err != nil {
		t.Fatal(err)
	}
	// The deleted key lingers in the order list; the slice must skip it
	// without error and still demote the live tasks behind it.
	moved, _ := e.mgr.DemoteSlice(now, 0, 1<<20)
	if moved <= 0 {
		t.Fatal("demotion moved nothing past a deleted key")
	}

	// No demotion out of the bottom tier.
	bottom := e.st.Hierarchy().Len() - 1
	moved, wrapped := e.mgr.DemoteSlice(now, bottom, 1<<20)
	if moved != 0 || !wrapped {
		t.Errorf("bottom tier: moved %d wrapped %v, want 0/true (nothing below to demote into)", moved, wrapped)
	}
	if moved, _ = e.mgr.DemoteSlice(now, -1, 8); moved != 0 {
		t.Errorf("negative tier moved %d", moved)
	}
}

func TestDemoteSliceBoundsCriticalSection(t *testing.T) {
	hier := tier.Ares(64*tier.MB, tier.GB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	now := writeModelTasks(t, e, "b", 12)
	// With maxSub=1, one slice may touch at most one task's sub-tasks
	// (a task demotes atomically, so the bound is per-task granular).
	e.mgr.mu.Lock()
	total := len(e.mgr.order)
	e.mgr.mu.Unlock()
	e.mgr.DemoteSlice(now, 0, 1)
	e.mgr.mu.Lock()
	cur := e.mgr.demoteCur[0]
	e.mgr.mu.Unlock()
	if cur != 1 {
		t.Errorf("maxSub=1 advanced the cursor to %d, want 1 of %d", cur, total)
	}
}

func TestOrderCompactsUnderChurn(t *testing.T) {
	hier := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	writeModelTasks(t, e, "c", 32)
	for i := 0; i < 24; i++ {
		if err := e.mgr.Delete(fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	e.mgr.mu.Lock()
	orderLen, live, dead := len(e.mgr.order), len(e.mgr.tasks), e.mgr.dead
	e.mgr.mu.Unlock()
	if live != 8 {
		t.Fatalf("%d live tasks, want 8", live)
	}
	if orderLen >= 32 {
		t.Errorf("order list never compacted: %d entries for %d live tasks", orderLen, live)
	}
	if dead*2 > orderLen {
		t.Errorf("compaction left %d dead of %d entries", dead, orderLen)
	}
}

func TestRewriteAfterDeleteDoesNotDuplicateOrder(t *testing.T) {
	hier := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	sc, err := e.eng.Plan(0, attr, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.mgr.ExecuteWrite(0, "cycle", nil, 1<<20, attr, sc); err != nil {
			t.Fatal(err)
		}
		if err := e.mgr.Delete("cycle"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.mgr.ExecuteWrite(0, "cycle", nil, 1<<20, attr, sc); err != nil {
		t.Fatal(err)
	}
	e.mgr.mu.Lock()
	count := 0
	for _, k := range e.mgr.order {
		if k == "cycle" {
			count++
		}
	}
	e.mgr.mu.Unlock()
	if count != 1 {
		t.Errorf("key appears %d times in the order list after rewrite cycles, want 1", count)
	}
}

// TestSharedPoolMatchesPerOpFanout is the acceptance gate for the pool
// swap: the same task sequence through the shared persistent pool and
// through the legacy per-call fan-out must produce identical Results —
// End, CodecTime, IOTime, and every SubResult — at every Parallelism.
func TestSharedPoolMatchesPerOpFanout(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, 128*tier.MB, tier.TB)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}

	type trace struct {
		end, codec, io float64
		subs           []SubResult
	}
	run := func(par int, shared bool) []trace {
		e := newModelEnv(t, hier)
		e.mgr.SetParallelism(par)
		if shared {
			p := fanout.NewPool(par)
			defer p.Close()
			e.mgr.SetPool(p)
		}
		var out []trace
		now := 0.0
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("t%d", i)
			sc, err := e.eng.Plan(now, attr, 24<<20)
			if err != nil {
				t.Fatal(err)
			}
			wres, err := e.mgr.ExecuteWrite(now, key, nil, 24<<20, attr, sc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, trace{wres.End, wres.CodecTime, wres.IOTime, wres.SubResults})
			rres, err := e.mgr.ExecuteRead(wres.End, key)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, trace{rres.End, rres.CodecTime, rres.IOTime, rres.SubResults})
			now = rres.End
		}
		return out
	}

	for _, par := range []int{1, 2, 4, 8} {
		legacy := run(par, false)
		pooled := run(par, true)
		for i := range legacy {
			l, p := legacy[i], pooled[i]
			if l.end != p.end || l.codec != p.codec || l.io != p.io {
				t.Fatalf("par=%d op %d: pooled (%v,%v,%v) != legacy (%v,%v,%v)",
					par, i, p.end, p.codec, p.io, l.end, l.codec, l.io)
			}
			if len(l.subs) != len(p.subs) {
				t.Fatalf("par=%d op %d: %d sub-results != %d", par, i, len(p.subs), len(l.subs))
			}
			for k := range l.subs {
				if l.subs[k] != p.subs[k] {
					t.Fatalf("par=%d op %d sub %d: %+v != %+v", par, i, k, p.subs[k], l.subs[k])
				}
			}
		}
	}
}

func TestExecuteWriteBatchRealRoundTrip(t *testing.T) {
	e := newRealEnv(t)
	e.mgr.SetParallelism(4)
	p := fanout.NewPool(4)
	defer p.Close()
	e.mgr.SetPool(p)

	const n = 6
	var reqs []WriteReq
	var want [][]byte
	for i := 0; i < n; i++ {
		data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, int64(i))
		attr := analyzer.Analyze(data)
		sc, err := e.eng.Plan(0, attr, int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, WriteReq{
			Key: fmt.Sprintf("b%d", i), Data: data, Size: int64(len(data)),
			Attr: attr, Schema: sc,
		})
		want = append(want, data)
	}
	results, errs := e.mgr.ExecuteWriteBatch(0, reqs)
	end := 0.0
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("req %d: %v", i, errs[i])
		}
		if results[i].Stored <= 0 || results[i].End <= 0 {
			t.Fatalf("req %d: empty result %+v", i, results[i])
		}
		if results[i].End > end {
			end = results[i].End
		}
	}

	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("b%d", i)
	}
	rres, rerrs := e.mgr.ExecuteReadBatch(end, keys)
	for i := range keys {
		if rerrs[i] != nil {
			t.Fatalf("read %d: %v", i, rerrs[i])
		}
		if !bytes.Equal(rres[i].Data, want[i]) {
			t.Fatalf("read %d: round-trip mismatch (%d bytes vs %d)", i, len(rres[i].Data), len(want[i]))
		}
	}
}

func TestExecuteBatchFailsIndependently(t *testing.T) {
	e := newRealEnv(t)
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 1)
	attr := analyzer.Analyze(data)
	sc, err := e.eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []WriteReq{
		{Key: "good0", Data: data, Size: int64(len(data)), Attr: attr, Schema: sc},
		{Key: "bad", Data: data, Size: int64(len(data)) + 1, Attr: attr, Schema: sc}, // size mismatch
		{Key: "good1", Data: data, Size: int64(len(data)), Attr: attr, Schema: sc},
	}
	_, errs := e.mgr.ExecuteWriteBatch(0, reqs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy requests failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("size-mismatched request succeeded")
	}

	rres, rerrs := e.mgr.ExecuteReadBatch(0, []string{"good0", "missing", "good1"})
	if rerrs[0] != nil || rerrs[2] != nil {
		t.Fatalf("healthy reads failed: %v / %v", rerrs[0], rerrs[2])
	}
	if rerrs[1] == nil {
		t.Fatal("unknown key read succeeded")
	}
	for _, i := range []int{0, 2} {
		if !bytes.Equal(rres[i].Data, data) {
			t.Fatalf("read %d mismatch", i)
		}
	}
}
