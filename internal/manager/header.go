package manager

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/codec"
)

// HeaderSize is the fixed size of the sub-task metadata header (§IV-G2):
// the paper's 16-byte 4-tuple of {start-offset, length, compression
// library, resulting size}, extended by a 4-byte CRC32C of the stored
// payload so corruption is detected on read instead of surfacing as
// garbage from the decompressor.
const HeaderSize = 20

// Header is the metadata decorator attached to every stored sub-task. It
// is all a reader needs to decompress the piece independently — the
// property that makes decompression "efficient and highly scalable as each
// application process can independently identify the compression library
// from the data itself".
type Header struct {
	Offset int64    // start offset within the original task
	Length int64    // uncompressed length of this piece
	Codec  codec.ID // compression library applied
	Stored int64    // resulting (compressed) payload size
	CRC    uint32   // CRC32C (Castagnoli) of the stored payload; 0 = unchecked
}

// Layout: u32 offset | u32 length | u8 codec + 3 reserved | u32 stored |
// u32 crc, little-endian. Individual I/O tasks are bounded well below
// 4 GiB in every workload the paper considers, so u32 fields suffice;
// Encode rejects overflow explicitly rather than truncating.

// Encode appends the 20-byte header to dst.
func (h Header) Encode(dst []byte) ([]byte, error) {
	const maxU32 = int64(1)<<32 - 1
	if h.Offset < 0 || h.Offset > maxU32 || h.Length < 0 || h.Length > maxU32 ||
		h.Stored < 0 || h.Stored > maxU32 {
		return nil, fmt.Errorf("manager: header field exceeds u32: %+v", h)
	}
	var buf [HeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(h.Offset))
	binary.LittleEndian.PutUint32(buf[4:], uint32(h.Length))
	buf[8] = byte(h.Codec)
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.Stored))
	binary.LittleEndian.PutUint32(buf[16:], h.CRC)
	return append(dst, buf[:]...), nil
}

// DecodeHeader parses the header at the start of payload and returns it
// along with the remaining bytes.
func DecodeHeader(payload []byte) (Header, []byte, error) {
	if len(payload) < HeaderSize {
		return Header{}, nil, fmt.Errorf("manager: payload too short for header (%d bytes)", len(payload))
	}
	h := Header{
		Offset: int64(binary.LittleEndian.Uint32(payload[0:])),
		Length: int64(binary.LittleEndian.Uint32(payload[4:])),
		Codec:  codec.ID(payload[8]),
		Stored: int64(binary.LittleEndian.Uint32(payload[12:])),
		CRC:    binary.LittleEndian.Uint32(payload[16:]),
	}
	if _, err := codec.ByID(h.Codec); err != nil {
		return Header{}, nil, fmt.Errorf("manager: header references %w", err)
	}
	rest := payload[HeaderSize:]
	if int64(len(rest)) != h.Stored {
		return Header{}, nil, fmt.Errorf("manager: header stored size %d != payload %d", h.Stored, len(rest))
	}
	return h, rest, nil
}
