package manager

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/bufpool"
	"hcompress/internal/fault"
	"hcompress/internal/hcerr"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

func textishAttr() analyzer.Result {
	return analyzer.Result{Type: stats.TypeText, Dist: stats.Normal}
}

// TestPutSubRetriesTransientBlip drives the placement helper directly so
// timing is pure virtual arithmetic: a transient window closing at 2 ms
// is outlived by the doubling backoff (attempts at 0, 1 ms, 3 ms) and
// the payload lands on the planned tier.
func TestPutSubRetriesTransientBlip(t *testing.T) {
	h := tier.Ares(64*tier.MB, 256*tier.MB, tier.GB, tier.TB)
	st, err := store.New(h, true)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(&fault.Schedule{Windows: []fault.Window{
		{Tier: 0, Start: 0, End: 0.002, Mode: fault.Transient},
	}})
	m := New(st, nil, RealOracle{})
	payload := bufpool.Get(4096)
	end, tierIdx, retrySecs, retries, err := m.putSub(0, 0, "k#0", payload, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tierIdx != 0 {
		t.Fatalf("retry should keep the planned tier, spilled to %d", tierIdx)
	}
	if end < 0.003 {
		t.Fatalf("end %v: backoff must have advanced past the window", end)
	}
	if retries == 0 || retrySecs <= 0 {
		t.Fatalf("retry attribution missing: retries=%d retrySecs=%v", retries, retrySecs)
	}
	if retrySecs >= end {
		t.Fatalf("retrySecs %v must be a strict share of the sub-task time %v", retrySecs, end)
	}
}

// TestPutSubSpillsOnStickyOutage: a sticky outage is not retried on the
// dead tier — the payload spills down the hierarchy immediately.
func TestPutSubSpillsOnStickyOutage(t *testing.T) {
	h := tier.Ares(64*tier.MB, 256*tier.MB, tier.GB, tier.TB)
	st, err := store.New(h, true)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(&fault.Schedule{Windows: []fault.Window{
		{Tier: 0, Start: 0, Mode: fault.Outage},
	}})
	m := New(st, nil, RealOracle{})
	payload := bufpool.Get(4096)
	_, tierIdx, _, retries, err := m.putSub(0, 0, "k#0", payload, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tierIdx != 1 {
		t.Fatalf("sticky outage should spill to tier 1, got %d", tierIdx)
	}
	if retries != 0 {
		t.Fatalf("sticky outage must not count retries, got %d", retries)
	}
}

// TestPutSubExhaustsRetriesThenSpills: a transient window that outlives
// every backoff attempt behaves like an outage — spill, don't fail.
func TestPutSubExhaustsRetriesThenSpills(t *testing.T) {
	h := tier.Ares(64*tier.MB, 256*tier.MB, tier.GB, tier.TB)
	st, err := store.New(h, true)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(&fault.Schedule{Windows: []fault.Window{
		{Tier: 0, Start: 0, End: 100, Mode: fault.Transient},
	}})
	m := New(st, nil, RealOracle{})
	payload := bufpool.Get(4096)
	_, tierIdx, retrySecs, retries, err := m.putSub(0, 0, "k#0", payload, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tierIdx != 1 {
		t.Fatalf("exhausted retries should spill to tier 1, got %d", tierIdx)
	}
	if retries == 0 || retrySecs <= 0 {
		t.Fatalf("exhausted retries must still be attributed: retries=%d retrySecs=%v", retries, retrySecs)
	}
}

// TestReadDetectsCorruption: a read that hands back flipped bits must
// fail with ErrCorrupted from the CRC gate, not garbage from a codec.
func TestReadDetectsCorruption(t *testing.T) {
	env := newRealEnv(t)
	env.st.SetFaultInjector(&fault.Schedule{Windows: []fault.Window{
		{Tier: 0, Start: 1, Mode: fault.CorruptReads},
	}})
	data := bytes.Repeat([]byte("corruption test payload line\n"), 2048)
	attr := textishAttr()
	schema, err := env.eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.mgr.ExecuteWrite(0, "k", data, int64(len(data)), attr, schema); err != nil {
		t.Fatal(err)
	}
	// Reads decided before the window are clean; inside it they corrupt.
	if res, err := env.mgr.ExecuteRead(0.5, "k"); err != nil {
		t.Fatalf("pre-window read: %v", err)
	} else {
		bufpool.Put(res.Data)
	}
	_, err = env.mgr.ExecuteRead(2, "k")
	if !errors.Is(err, hcerr.ErrCorrupted) {
		t.Fatalf("want ErrCorrupted, got %v", err)
	}
	// The stored bytes are intact (the corruption was a read-side copy):
	// a read after the window succeeds again.
	env.st.SetFaultInjector(nil)
	if res, err := env.mgr.ExecuteRead(3, "k"); err != nil {
		t.Fatalf("post-window read: %v", err)
	} else {
		if !bytes.Equal(res.Data, data) {
			t.Fatal("recovered payload differs")
		}
		bufpool.Put(res.Data)
	}
}

// TestExecuteWriteCtxCancelled: a cancelled context aborts before the
// store is touched; nothing is stored and the context error surfaces.
func TestExecuteWriteCtxCancelled(t *testing.T) {
	env := newRealEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := bytes.Repeat([]byte("x"), 1<<16)
	attr := textishAttr()
	schema, err := env.eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.mgr.ExecuteWriteCtx(ctx, 0, "k", data, int64(len(data)), attr, schema); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := env.mgr.ExecuteRead(0, "k"); !errors.Is(err, hcerr.ErrNotFound) {
		t.Fatalf("cancelled write must leave no task, got %v", err)
	}
}

// TestUnknownTaskIsErrNotFound: the typed taxonomy reaches the manager's
// read and delete paths.
func TestUnknownTaskIsErrNotFound(t *testing.T) {
	env := newRealEnv(t)
	if _, err := env.mgr.ExecuteRead(0, "nope"); !errors.Is(err, hcerr.ErrNotFound) {
		t.Fatalf("read: want ErrNotFound, got %v", err)
	}
	if err := env.mgr.Delete("nope"); !errors.Is(err, hcerr.ErrNotFound) {
		t.Fatalf("delete: want ErrNotFound, got %v", err)
	}
}
