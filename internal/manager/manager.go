// Package manager implements the Compression Manager (CM, §IV-G): it
// executes the schemas the HCDP engine produces — applying the selected
// compression per sub-task, decorating payloads with metadata headers,
// driving the Storage Hardware Interface, and reporting actual costs back
// to the Compression Cost Predictor (the feedback loop).
//
// The manager runs in one of two execution modes behind the Oracle
// interface:
//
//   - RealOracle compresses actual bytes with the registered codecs and
//     measures wall-clock costs. Used by the public API and correctness
//     tests.
//   - ModelOracle consults a measured seed table (with deterministic
//     jitter) instead of touching bytes, so the experiment harness can
//     replay the paper's multi-hundred-GB workloads. The timing model and
//     all control paths — planning, headers aside, placement, feedback —
//     are identical.
package manager

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hcompress/internal/analyzer"
	"hcompress/internal/bufpool"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/fanout"
	"hcompress/internal/hcerr"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/telemetry"
)

// castagnoli is the CRC32C table used for sub-task payload checksums
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Oracle abstracts how sub-task compression is performed and costed.
// The scratch parameter carries the calling worker's reusable buffers;
// implementations may pass nil to fall back to a pooled scratch.
type Oracle interface {
	// Compress produces the stored payload for piece (nil in modeled
	// mode), its stored size, and the compression time in seconds. A
	// non-nil payload is an arena buffer whose ownership transfers to
	// the caller (the manager hands it to Store.PutOwned).
	Compress(s *bufpool.Scratch, attr analyzer.Result, c codec.Codec, piece []byte, pieceLen int64, hdr Header) (payload []byte, stored int64, secs float64, err error)
	// Decompress recovers the piece (nil in modeled mode) from payload
	// and returns the decompression time in seconds. When dst is
	// non-nil the piece is appended to it (the manager passes a region
	// of the task's reassembly buffer so decompression lands in place).
	Decompress(s *bufpool.Scratch, attr analyzer.Result, c codec.Codec, payload, dst []byte, hdr Header) (piece []byte, secs float64, err error)
}

// RealOracle executes codecs on real bytes and measures wall time.
type RealOracle struct{}

// Compress implements Oracle. The compressed stream is built in the
// scratch's Comp buffer (reused across calls by the same worker); only
// the returned payload — header plus stream, in one arena buffer the
// caller takes ownership of — is a fresh allocation, and a pooled one.
func (RealOracle) Compress(s *bufpool.Scratch, _ analyzer.Result, c codec.Codec, piece []byte, pieceLen int64, hdr Header) ([]byte, int64, float64, error) {
	if s == nil {
		s = bufpool.GetScratch()
		defer bufpool.PutScratch(s)
	}
	start := time.Now()
	comp, err := codec.CompressWith(s, c, s.Comp[:0], piece)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("manager: %s compress: %w", c.Name(), err)
	}
	secs := time.Since(start).Seconds()
	s.Comp = comp // retain the (possibly grown) buffer for the next call
	hdr.Stored = int64(len(comp))
	hdr.CRC = crc32.Checksum(comp, castagnoli)
	payload := bufpool.Get(HeaderSize + len(comp))
	if _, err := hdr.Encode(payload[:0]); err != nil {
		bufpool.Put(payload)
		return nil, 0, 0, err
	}
	copy(payload[HeaderSize:], comp)
	return payload, int64(len(payload)), secs, nil
}

// Decompress implements Oracle.
func (RealOracle) Decompress(s *bufpool.Scratch, _ analyzer.Result, c codec.Codec, payload, dst []byte, hdr Header) ([]byte, float64, error) {
	if s == nil {
		s = bufpool.GetScratch()
		defer bufpool.PutScratch(s)
	}
	start := time.Now()
	piece, err := codec.DecompressWith(s, c, dst, payload, int(hdr.Length))
	if err != nil {
		return nil, 0, fmt.Errorf("manager: %s decompress: %w", c.Name(), err)
	}
	return piece, time.Since(start).Seconds(), nil
}

// ModelOracle costs sub-tasks from a measured seed table with a
// deterministic per-piece jitter, so repeated runs are reproducible while
// the feedback loop still sees realistic variance.
type ModelOracle struct {
	Truth *seed.Seed
	// JitterFrac is the +/- relative jitter applied to speeds and ratio
	// (default 0.08).
	JitterFrac float64
}

func (o ModelOracle) jitter(h Header, salt uint64) float64 {
	f := o.JitterFrac
	if f == 0 {
		f = 0.08
	}
	hs := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(h.Offset) >> (8 * i))
	}
	hs.Write(b[:])
	for i := 0; i < 8; i++ {
		b[i] = byte((uint64(h.Length) ^ salt) >> (8 * i))
	}
	hs.Write(b[:])
	u := hs.Sum64()
	return 1 + f*(float64(u%2048)/1024-1) // in [1-f, 1+f)
}

func (o ModelOracle) cost(attr analyzer.Result, c codec.Codec) (seed.CodecCost, error) {
	if c.ID() == codec.None {
		return seed.CodecCost{CompressMBps: 1e9, DecompressMBps: 1e9, Ratio: 1}, nil
	}
	cost, ok := o.Truth.Lookup(attr.Type, attr.Dist, c.Name())
	if !ok {
		return seed.CodecCost{}, fmt.Errorf("manager: no truth table entry for %s", c.Name())
	}
	return cost, nil
}

// Compress implements Oracle.
func (o ModelOracle) Compress(_ *bufpool.Scratch, attr analyzer.Result, c codec.Codec, _ []byte, pieceLen int64, hdr Header) ([]byte, int64, float64, error) {
	cost, err := o.cost(attr, c)
	if err != nil {
		return nil, 0, 0, err
	}
	j := o.jitter(hdr, uint64(c.ID()))
	ratio := 1 + (cost.Ratio-1)*j
	stored := int64(float64(pieceLen)/ratio) + HeaderSize
	if stored < HeaderSize+1 {
		stored = HeaderSize + 1
	}
	secs := 0.0
	if c.ID() != codec.None {
		secs = float64(pieceLen) / (1 << 20) / (cost.CompressMBps * j)
	}
	return nil, stored, secs, nil
}

// Decompress implements Oracle.
func (o ModelOracle) Decompress(_ *bufpool.Scratch, attr analyzer.Result, c codec.Codec, _, _ []byte, hdr Header) ([]byte, float64, error) {
	cost, err := o.cost(attr, c)
	if err != nil {
		return nil, 0, err
	}
	if c.ID() == codec.None {
		return nil, 0, nil
	}
	j := o.jitter(hdr, uint64(c.ID())+7777)
	return nil, float64(hdr.Length) / (1 << 20) / (cost.DecompressMBps * j), nil
}

// subMeta records what the write path did so the read path can model
// decompression without re-reading headers in modeled mode.
type subMeta struct {
	key    string
	hdr    Header
	tier   int
	attr   analyzer.Result
	stored int64
}

type taskMeta struct {
	subs []subMeta
	attr analyzer.Result
	size int64
}

// Result reports one executed task with the paper's Fig. 3 time anatomy.
type Result struct {
	End       float64 // virtual completion time
	CodecTime float64 // compression or decompression seconds
	IOTime    float64 // storage I/O seconds
	Stored    int64   // bytes occupying the hierarchy (writes)
	// Retries counts transient-fault retries absorbed by the task;
	// RetrySecs is the virtual backoff those retries consumed. IOTime
	// includes RetrySecs (the blocked lane is I/O wall from the task's
	// point of view); subtract to get pure transfer time.
	Retries   int
	RetrySecs float64
	// Data is the reassembled task (reads, real mode only). It is an
	// arena buffer whose ownership transfers to the caller; return it
	// with bufpool.Put when finished (Report.Release at the API layer)
	// or let the GC take it.
	Data       []byte
	SubResults []SubResult
}

// SubResult is the per-sub-task breakdown. On writes it carries the
// HCDP engine's predictions next to the actuals so callers can compute
// prediction error; PredStored/PredTime are zero on reads (the engine
// does not re-plan a read).
type SubResult struct {
	Tier      int
	Codec     codec.ID
	OrigLen   int64
	Stored    int64
	CodecTime float64
	IOTime    float64
	// PredStored is the engine's alignment-rounded compressed-size
	// estimate for this piece; PredTime its modeled duration (eq. 3/4).
	PredStored int64
	PredTime   float64
	// PlannedTier is the tier the schema selected; differs from Tier
	// when the placement spilled down because the prediction was
	// optimistic or the monitor's view was stale. Reads echo Tier.
	PlannedTier int
	// Retries counts transient-fault retries this sub-task absorbed;
	// RetrySecs is the virtual backoff they consumed (included in IOTime).
	Retries   int
	RetrySecs float64
}

// Manager executes schemas against a store. Safe for concurrent use.
//
// Sub-task codec work runs through a bounded worker pool (see
// SetParallelism), but virtual-time accounting is always replayed
// serially in sub-task order, so a task's Result — End, CodecTime,
// IOTime, SubResults order — is identical for every parallelism setting:
// the deterministic virtual-time rule is "codec times sum per the serial
// model; only wall-clock work overlaps".
type Manager struct {
	mu      sync.Mutex
	st      *store.Store
	pred    *predictor.CCP
	oracle  Oracle
	par     int          // worker-pool width for sub-task codec work
	pool    *fanout.Pool // shared persistent pool; nil falls back to per-call fan-out
	tasks   map[string]*taskMeta
	order   []string            // write order, oldest first (drain/demotion policy)
	inOrder map[string]struct{} // keys present in order (deleted keys linger until compaction)
	dead    int                 // order entries whose key has been deleted

	demoteCur []int // per-source-tier cursor into order for DemoteSlice

	// demoteNotify, when set, receives the root keys of tasks the
	// background demoter moved, after the manager lock is released —
	// the read cache invalidates demoted keys through it. A
	// construction-time option (SetDemoteNotify); nil costs nothing.
	demoteNotify func(keys []string)

	// Retry policy for transient store faults: up to retryMax retries per
	// tier with capped exponential virtual-time backoff starting at
	// retryBase seconds. Construction-time options (SetRetryPolicy).
	retryMax  int
	retryBase float64
	retryCap  float64

	tm mgrMetrics // nil instruments when telemetry is off
}

// mgrMetrics are the Compression Manager's instruments, indexed by codec
// ID where per-codec. All slices are nil when telemetry is off.
type mgrMetrics struct {
	inBytes   []*telemetry.Counter   // original bytes entering each codec (writes)
	outBytes  []*telemetry.Counter   // stored bytes leaving each codec (writes)
	readBytes []*telemetry.Counter   // original bytes recovered per codec (reads)
	ratio     []*telemetry.Histogram // achieved compression ratio per codec
	queueWait  *telemetry.Histogram // wall seconds a sub-task waited for a pool worker
	stageQueue *telemetry.Histogram // the same wait as hc_stage_seconds{stage="queue"}
	writes     *telemetry.Counter
	reads     *telemetry.Counter
	spills    *telemetry.Counter // placements that fell below the planned tier
	retries   *telemetry.Counter // transient-fault retries (reads and writes)
	drained   *telemetry.Counter // bytes trickled down by Drain
	demoted   *telemetry.Counter // bytes trickled down by DemoteSlice
}

// SetTelemetry registers the manager's instruments on reg: per-codec
// bytes in/out and achieved-ratio histograms, worker-pool queue wait,
// and write/read/spill counters. Must be called before the manager is
// shared between goroutines (a construction-time option, like
// SetParallelism); a nil registry leaves telemetry off.
func (m *Manager) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	all := codec.All()
	maxID := codec.ID(0)
	for _, c := range all {
		if c.ID() > maxID {
			maxID = c.ID()
		}
	}
	m.tm = mgrMetrics{
		inBytes:   make([]*telemetry.Counter, int(maxID)+1),
		outBytes:  make([]*telemetry.Counter, int(maxID)+1),
		readBytes: make([]*telemetry.Counter, int(maxID)+1),
		ratio:     make([]*telemetry.Histogram, int(maxID)+1),
		queueWait: reg.Histogram("hc_fanout_queue_wait_seconds", "wall time a sub-task waited for a pool worker", telemetry.SecondsBuckets),
		stageQueue: reg.Histogram("hc_stage_seconds", "per-stage latency attribution",
			telemetry.SecondsBuckets, telemetry.L("stage", "queue")),
		writes: reg.Counter("hc_manager_writes_total", "tasks written"),
		reads:     reg.Counter("hc_manager_reads_total", "tasks read"),
		spills:    reg.Counter("hc_manager_spills_total", "sub-tasks placed below their planned tier"),
		retries:   reg.Counter("hc_retries_total", "transient store faults retried with backoff"),
		drained:   reg.Counter("hc_manager_drained_bytes_total", "bytes trickled down by Drain"),
		demoted:   reg.Counter("hc_manager_demoted_bytes_total", "bytes trickled down by the background demoter"),
	}
	for _, c := range all {
		l := telemetry.L("codec", c.Name())
		m.tm.inBytes[c.ID()] = reg.Counter("hc_codec_in_bytes_total", "original bytes entering each codec on writes", l)
		m.tm.outBytes[c.ID()] = reg.Counter("hc_codec_out_bytes_total", "stored bytes (headers included) leaving each codec on writes", l)
		m.tm.readBytes[c.ID()] = reg.Counter("hc_codec_read_bytes_total", "original bytes recovered per codec on reads", l)
		m.tm.ratio[c.ID()] = reg.Histogram("hc_codec_ratio", "achieved compression ratio per codec (payload only)", telemetry.RatioBuckets, l)
	}
}

// New creates a Compression Manager with a worker pool sized to
// GOMAXPROCS.
func New(st *store.Store, pred *predictor.CCP, oracle Oracle) *Manager {
	if oracle == nil {
		oracle = RealOracle{}
	}
	m := &Manager{
		st: st, pred: pred, oracle: oracle,
		tasks:     make(map[string]*taskMeta),
		inOrder:   make(map[string]struct{}),
		retryMax:  defaultRetryMax,
		retryBase: defaultRetryBase,
		retryCap:  defaultRetryCap,
	}
	m.SetParallelism(0)
	return m
}

// Retry defaults: three attempts beyond the first, starting at 1 ms of
// virtual backoff, doubling to a 250 ms cap — enough to ride out a
// sub-second transient window without stalling the spill chain.
const (
	defaultRetryMax  = 3
	defaultRetryBase = 1e-3
	defaultRetryCap  = 0.25
)

// SetRetryPolicy tunes transient-fault handling: up to max retries per
// tier (max < 0 disables retries), with capped exponential virtual-time
// backoff starting at base seconds. Non-positive base/cap keep the
// defaults. Construction-time option, like SetParallelism.
func (m *Manager) SetRetryPolicy(max int, base, cap float64) {
	if max >= 0 {
		m.retryMax = max
	}
	if base > 0 {
		m.retryBase = base
	}
	if cap > 0 {
		m.retryCap = cap
	}
}

// SetDemoteNotify installs a callback that receives the root keys of
// tasks DemoteSlice moved. It is invoked after the manager lock is
// released, so the callback may call back into the manager. A
// construction-time option, like SetParallelism.
func (m *Manager) SetDemoteNotify(fn func(keys []string)) { m.demoteNotify = fn }

// SetPool routes sub-task fan-outs through a shared persistent worker
// pool instead of leasing scratches and spawning goroutines per call.
// Like SetParallelism it is a construction-time option; a nil pool (the
// default) keeps the legacy per-call fan-out, which the experiments
// harness still uses.
func (m *Manager) SetPool(p *fanout.Pool) { m.pool = p }

// runFan executes fn(scratch, k) for every sub-task index k, through the
// shared pool when one is attached and the per-call fan-out otherwise.
// Both paths attempt every item and return the lowest-indexed error.
// The pool submission inherits ctx's scheduling class (fanout.WithClass)
// so a front-end can let latency-sensitive reads overtake batch writes;
// an untagged context is Interactive, the pre-priority behaviour.
func (m *Manager) runFan(ctx context.Context, n int, fn func(s *bufpool.Scratch, k int) error) error {
	if m.pool != nil {
		return m.pool.RunClass(fanout.ClassOf(ctx), n, fn)
	}
	scratches := leaseScratches(n, m.par)
	defer returnScratches(scratches)
	return fanout.ForEachWorker(n, m.par, func(w, k int) error {
		return fn(scratches[w], k)
	})
}

// SetParallelism bounds the worker pool fanning a task's sub-task codec
// work across goroutines; n < 1 restores the GOMAXPROCS default. It must
// be called before the manager is shared between goroutines (it is a
// construction-time option, not a runtime toggle).
func (m *Manager) SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	m.par = n
}

// Parallelism reports the configured worker-pool width.
func (m *Manager) Parallelism() int { return m.par }

// leaseScratches borrows one codec workspace per fan-out worker from the
// process-wide pool. Scratches must be leased per call — concurrent
// ExecuteWrite/ExecuteRead fan-outs reuse worker indexes, so workspaces
// cached on the Manager would be shared across goroutines.
func leaseScratches(n, par int) []*bufpool.Scratch {
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	ss, _ := scratchSlices.Get().([]*bufpool.Scratch)
	if cap(ss) < par {
		ss = make([]*bufpool.Scratch, par)
	}
	ss = ss[:par]
	for i := range ss {
		ss[i] = bufpool.GetScratch()
	}
	return ss
}

// scratchSlices recycles the small per-fan-out lease slices themselves.
var scratchSlices sync.Pool

func returnScratches(ss []*bufpool.Scratch) {
	for i, s := range ss {
		bufpool.PutScratch(s)
		ss[i] = nil
	}
	scratchSlices.Put(ss[:0]) //nolint:staticcheck // slice header copy is fine here
}

// Drain is the asynchronous flushing path of a multi-tiered buffer: during
// an idle window (e.g. the application's compute phase) it trickles the
// oldest buffered sub-tasks one tier down, freeing fast-tier capacity for
// the next burst. Moves are modeled through the store, so they consume
// tier lanes like any other I/O; draining stops when the window closes or
// nothing movable remains. It returns the bytes moved.
func (m *Manager) Drain(now, window float64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := now + window
	timeline := now
	var moved int64
	nTiers := m.st.Hierarchy().Len()
outer:
	for _, key := range m.order {
		meta, ok := m.tasks[key]
		if !ok {
			continue // deleted
		}
		for i := range meta.subs {
			if timeline >= deadline {
				break outer
			}
			sm := &meta.subs[i]
			if sm.tier >= nTiers-1 {
				continue
			}
			end, err := m.st.Move(timeline, sm.key, sm.tier+1)
			if err != nil {
				continue // destination full; try other blobs
			}
			timeline = end
			sm.tier++
			moved += sm.stored
		}
	}
	m.tm.drained.Add(moved)
	return moved
}

// DemoteSlice is the incremental form of Drain used by the background
// demoter: one bounded critical section that scans at most maxSub
// sub-tasks (default 64) from a per-tier cursor into the write-order
// list, moving sub-tasks resident on tier from one tier down. Because
// the lock is held only for the slice, demotion interleaves with the
// data path instead of stalling it; repeated calls resume where the last
// slice stopped, oldest task first. It reports the bytes moved and
// whether the cursor wrapped past the end of the order list (a full pass
// completed and the cursor reset to the oldest task).
func (m *Manager) DemoteSlice(now float64, from, maxSub int) (moved int64, wrapped bool) {
	moved, wrapped, movedKeys := m.demoteSlice(now, from, maxSub)
	m.tm.demoted.Add(moved)
	if m.demoteNotify != nil && len(movedKeys) > 0 {
		m.demoteNotify(movedKeys)
	}
	return moved, wrapped
}

// demoteSlice is DemoteSlice's critical section. movedKeys carries the
// root key of every task that had a sub-task moved — collected only when
// a notify callback wants them, and delivered by the caller after m.mu is
// released so the callback can re-enter the manager.
func (m *Manager) demoteSlice(now float64, from, maxSub int) (moved int64, wrapped bool, movedKeys []string) {
	if maxSub <= 0 {
		maxSub = 64
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	nTiers := m.st.Hierarchy().Len()
	if from < 0 || from >= nTiers-1 {
		return 0, true, nil // nothing below the bottom tier to demote into
	}
	if m.demoteCur == nil {
		m.demoteCur = make([]int, nTiers)
	}
	cur := m.demoteCur[from]
	if cur >= len(m.order) {
		cur = 0
	}
	timeline := now
	scanned := 0
	for cur < len(m.order) && scanned < maxSub {
		key := m.order[cur]
		cur++
		meta, ok := m.tasks[key]
		if !ok {
			scanned++ // deleted key: skip, but charge the scan budget
			continue
		}
		// A task's sub-tasks demote together so reads never straddle an
		// in-progress demotion boundary mid-task.
		taskMoved := false
		for i := range meta.subs {
			sm := &meta.subs[i]
			scanned++
			if sm.tier != from {
				continue
			}
			end, err := m.st.Move(timeline, sm.key, from+1)
			if err != nil {
				continue // destination full; try the remaining blobs
			}
			timeline = end
			sm.tier++
			moved += sm.stored
			taskMoved = true
		}
		if taskMoved && m.demoteNotify != nil {
			movedKeys = append(movedKeys, key)
		}
	}
	wrapped = cur >= len(m.order)
	if wrapped {
		cur = 0
	}
	m.demoteCur[from] = cur
	return moved, wrapped, movedKeys
}

// Store returns the underlying store.
func (m *Manager) Store() *store.Store { return m.st }

func subKey(key string, k int) string {
	var buf [64]byte
	b := append(buf[:0], key...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(k), 10)
	return string(b)
}

// splitSubKey inverts subKey: "key#3" → ("key", 3, true).
func splitSubKey(sk string) (string, int, bool) {
	i := strings.LastIndexByte(sk, '#')
	if i <= 0 || i == len(sk)-1 {
		return "", 0, false
	}
	k, err := strconv.Atoi(sk[i+1:])
	if err != nil || k < 0 {
		return "", 0, false
	}
	return sk[:i], k, true
}

// AdoptRecovered rebuilds task metadata for the payloads durable
// backends recovered when the store opened, and returns how many tasks
// became readable again. Sub-task store keys encode the task key and
// piece index (subKey), and every stored piece opens with its on-media
// header {offset, length, codec, stored size, CRC} — the paper's
// self-identifying-data property — so a task whose pieces all survived
// needs no separate manifest: the schema is reassembled from the media.
// Pieces whose siblings are gone (a sub-task that had been placed on a
// memory tier, say) are deleted so their capacity is reclaimed rather
// than stranded. Write-time analyzer attributes are not persisted:
// recovered tasks carry a zero attr, read reports show empty data
// attributes, and reads post no predictor feedback for them.
//
// Called once during client assembly, after the store is opened and
// before it is shared between goroutines.
func (m *Manager) AdoptRecovered() (int, error) {
	keys := m.st.Recovered()
	if len(keys) == 0 {
		return 0, nil
	}
	type piece struct {
		sub subMeta
		idx int
	}
	groups := make(map[string][]piece)
	var orphans []string
	for _, sk := range keys {
		base, idx, ok := splitSubKey(sk)
		if !ok {
			orphans = append(orphans, sk)
			continue
		}
		blob, err := m.st.Peek(0, sk)
		if err != nil {
			orphans = append(orphans, sk)
			continue
		}
		hdr, _, derr := DecodeHeader(blob.Data)
		m.st.Release(blob)
		if derr != nil {
			orphans = append(orphans, sk)
			continue
		}
		groups[base] = append(groups[base], piece{
			sub: subMeta{key: sk, hdr: hdr, tier: blob.Tier, stored: blob.Size},
			idx: idx,
		})
	}
	adopted := 0
	bases := make([]string, 0, len(groups))
	for base := range groups {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		ps := groups[base]
		sort.Slice(ps, func(i, j int) bool { return ps[i].idx < ps[j].idx })
		// A task is whole iff its piece indices are 0..n-1 and the header
		// ranges tile the original task without gap or overlap.
		whole := true
		var off int64
		for i, p := range ps {
			if p.idx != i || p.sub.hdr.Offset != off {
				whole = false
				break
			}
			off += p.sub.hdr.Length
		}
		if !whole {
			for _, p := range ps {
				orphans = append(orphans, p.sub.key)
			}
			continue
		}
		meta := &taskMeta{size: off}
		for _, p := range ps {
			meta.subs = append(meta.subs, p.sub)
		}
		m.mu.Lock()
		if _, taken := m.tasks[base]; taken {
			m.mu.Unlock()
			continue
		}
		m.tasks[base] = meta
		if _, lingering := m.inOrder[base]; !lingering {
			m.order = append(m.order, base)
			m.inOrder[base] = struct{}{}
		}
		m.mu.Unlock()
		adopted++
	}
	for _, sk := range orphans {
		if err := m.st.Delete(sk); err != nil {
			return adopted, fmt.Errorf("manager: reclaiming orphaned recovered piece %q: %w", sk, err)
		}
	}
	return adopted, nil
}

// compOut carries one sub-task's stage-1 codec output into the serial
// stage-2 replay. err is only populated on the batch path, where one
// failing task must not abort its siblings' fan-out.
type compOut struct {
	c       codec.Codec
	hdr     Header
	payload []byte
	stored  int64
	secs    float64
	err     error
}

// compressOne runs stage-1 codec work for a single sub-task.
func (m *Manager) compressOne(s *bufpool.Scratch, data []byte, attr analyzer.Result, st *core.SubTask) (compOut, error) {
	c, err := codec.ByID(st.Codec)
	if err != nil {
		return compOut{}, err
	}
	hdr := Header{Offset: st.Offset, Length: st.Length, Codec: st.Codec}
	var piece []byte
	if data != nil {
		piece = data[st.Offset : st.Offset+st.Length]
	}
	payload, stored, secs, err := m.oracle.Compress(s, attr, c, piece, st.Length, hdr)
	if err != nil {
		return compOut{}, err
	}
	return compOut{c: c, hdr: hdr, payload: payload, stored: stored, secs: secs}, nil
}

// compressFan is stage 1 of a write: the per-sub-task codec work — pure
// CPU over the caller's buffer — fanned across the worker pool. No locks
// are held; each worker touches a disjoint slice of the buffer and a
// disjoint outs element. A cancelled ctx makes remaining workers return
// early (completed payloads are cleaned up by the caller).
func (m *Manager) compressFan(ctx context.Context, data []byte, attr analyzer.Result, subs []core.SubTask, outs []compOut) error {
	var fanStart time.Time
	if m.tm.queueWait != nil {
		fanStart = time.Now()
	}
	return m.runFan(ctx, len(subs), func(s *bufpool.Scratch, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if m.tm.queueWait != nil {
			w := time.Since(fanStart).Seconds()
			m.tm.queueWait.Observe(w)
			m.tm.stageQueue.Observe(w)
		}
		o, err := m.compressOne(s, data, attr, &subs[k])
		if err != nil {
			return err
		}
		outs[k] = o
		return nil
	})
}

// ExecuteWrite runs a write schema in two stages. Stage one fans the
// per-sub-task codec work — pure CPU over the caller's buffer — across
// the worker pool; stage two replays the virtual timeline serially in
// sub-task order (compression time, then the placed tier's modeled I/O),
// so the Result is bit-identical for every parallelism setting. data may
// be nil in modeled mode. It returns the virtual completion time and the
// cost anatomy.
func (m *Manager) ExecuteWrite(now float64, key string, data []byte, size int64, attr analyzer.Result, schema core.Schema) (Result, error) {
	return m.ExecuteWriteCtx(context.Background(), now, key, data, size, attr, schema)
}

// ExecuteWriteCtx is ExecuteWrite under a context: cancellation drains
// the codec fan-out and returns ctx.Err() without touching the store —
// a write either fully places or leaves no trace.
func (m *Manager) ExecuteWriteCtx(ctx context.Context, now float64, key string, data []byte, size int64, attr analyzer.Result, schema core.Schema) (Result, error) {
	if data != nil && int64(len(data)) != size {
		return Result{}, fmt.Errorf("manager: data length %d != size %d", len(data), size)
	}
	outs := make([]compOut, len(schema.SubTasks))
	err := m.compressFan(ctx, data, attr, schema.SubTasks, outs)
	if err == nil {
		err = ctx.Err() // cancelled after the fan finished: still abort pre-placement
	}
	if err != nil {
		for i := range outs { // payloads were never handed to the store
			bufpool.Put(outs[i].payload)
		}
		return Result{}, err
	}
	return m.placeTask(now, key, attr, schema.SubTasks, outs, size, nil)
}

// putSub places one sub-task payload with the full fault discipline:
// transient store faults are retried on the same tier with capped
// exponential virtual-time backoff; capacity misses, sticky outages, and
// exhausted retries spill down the hierarchy. It returns the virtual
// completion time, the tier that finally took the payload, and the
// retry bill (attempt count and virtual backoff seconds consumed) for
// latency attribution.
func (m *Manager) putSub(t float64, tier int, sk string, payload []byte, stored int64) (end float64, placed int, retrySecs float64, retries int, err error) {
	nTiers := m.st.Hierarchy().Len()
	for {
		end, err = m.st.PutOwned(t, tier, sk, payload, stored)
		backoff := m.retryBase
		for r := 0; err != nil && hcerr.IsTransient(err) && r < m.retryMax; r++ {
			m.tm.retries.Inc()
			t += backoff // backoff advances the virtual clock, so a retry can outlive a blip window
			retrySecs += backoff
			retries++
			if backoff < m.retryCap {
				backoff *= 2
			}
			end, err = m.st.PutOwned(t, tier, sk, payload, stored)
		}
		if err == nil {
			return end, tier, retrySecs, retries, nil
		}
		spillable := errors.Is(err, store.ErrNoCapacity) ||
			errors.Is(err, hcerr.ErrTierOffline) || errors.Is(err, hcerr.ErrBackendIO) ||
			hcerr.IsTransient(err)
		if spillable && tier+1 < nTiers {
			tier++
			continue
		}
		return end, tier, retrySecs, retries, err
	}
}

// placeTask is stage 2 of a write: the serial timeline replay —
// placement, accounting, feedback — exactly as the serial model would
// have interleaved them. On failure it returns every unplaced payload to
// the arena. A non-nil fb defers predictor feedback to the caller's
// batch accumulator instead of posting it per sub-task.
func (m *Manager) placeTask(now float64, key string, attr analyzer.Result, subTasks []core.SubTask, outs []compOut, size int64, fb *fbBatch) (Result, error) {
	res := Result{End: now}
	meta := &taskMeta{attr: attr, size: size}
	t := now
	for k := range subTasks {
		st := &subTasks[k]
		o := &outs[k]
		t += o.secs
		sk := subKey(key, k)
		// The schema places by *predicted* compressed size; the actual
		// size can come out larger, the System Monitor's view can be
		// stale, or the tier can be faulting. putSub applies the repair a
		// real deployment performs: retry transient blips with backoff,
		// spill capacity misses and outages down the hierarchy.
		end, tierIdx, retrySecs, retries, err := m.putSub(t, st.Tier, sk, o.payload, o.stored)
		if err != nil {
			for i := k; i < len(outs); i++ { // unplaced payloads go back to the arena
				bufpool.Put(outs[i].payload)
			}
			return Result{}, fmt.Errorf("manager: placing sub-task %d: %w", k, err)
		}
		o.payload = nil // owned by the store now
		ioSecs := end - t
		t = end
		res.CodecTime += o.secs
		res.IOTime += ioSecs
		res.Stored += o.stored
		res.Retries += retries
		res.RetrySecs += retrySecs
		res.SubResults = append(res.SubResults, SubResult{
			Tier: tierIdx, Codec: st.Codec, OrigLen: st.Length,
			Stored: o.stored, CodecTime: o.secs, IOTime: ioSecs,
			PredStored: st.PredSize, PredTime: st.PredTime, PlannedTier: st.Tier,
			Retries: retries, RetrySecs: retrySecs,
		})
		if m.tm.inBytes != nil {
			m.tm.inBytes[st.Codec].Add(st.Length)
			m.tm.outBytes[st.Codec].Add(o.stored)
			if st.Codec != codec.None {
				m.tm.ratio[st.Codec].Observe(ratioOf(st.Length, o.stored-HeaderSize))
			}
			if tierIdx != st.Tier {
				m.tm.spills.Inc()
			}
		}
		hdr := o.hdr
		hdr.Stored = o.stored - HeaderSize
		meta.subs = append(meta.subs, subMeta{key: sk, hdr: hdr, tier: tierIdx, attr: attr, stored: o.stored})

		// Feedback loop: report the actual compression cost (write side
		// knows compression speed and ratio; decompression arrives on
		// read).
		if st.Codec != codec.None && o.secs > 0 {
			cost := seed.CodecCost{
				CompressMBps: float64(st.Length) / (1 << 20) / o.secs,
				Ratio:        ratioOf(st.Length, o.stored-HeaderSize),
			}
			if fb != nil {
				fb.add(attr.Type, attr.Dist, o.c.Name(), cost)
			} else {
				m.pred.Feedback(attr.Type, attr.Dist, o.c.Name(), cost)
			}
		}
	}
	m.mu.Lock()
	if _, existed := m.tasks[key]; !existed {
		if _, lingering := m.inOrder[key]; lingering {
			// Rewrite of a deleted key whose order slot has not been
			// compacted away yet: reuse the slot instead of appending a
			// duplicate.
			if m.dead > 0 {
				m.dead--
			}
		} else {
			m.order = append(m.order, key)
			m.inOrder[key] = struct{}{}
		}
	}
	m.tasks[key] = meta
	m.mu.Unlock()
	m.tm.writes.Inc()
	res.End = t
	return res, nil
}

// fbKey identifies one predictor cell: all observations for a given
// (type, dist, codec) share a feature vector.
type fbKey struct {
	dt    stats.DataType
	dist  stats.Dist
	codec string
}

// fbBatch accumulates one batch's feedback per predictor cell so the
// predictor absorbs each cell as a single run — one collapsed model
// update per cell per batch instead of one per sub-task. Feedback order
// within a cell is preserved; across cells it is grouped, which the
// models cannot observe (each cell updates disjoint regressor state).
type fbBatch struct {
	idx  map[fbKey]int
	keys []fbKey
	runs [][]seed.CodecCost
}

func newFBBatch() *fbBatch { return &fbBatch{idx: make(map[fbKey]int)} }

func (b *fbBatch) add(dt stats.DataType, dist stats.Dist, codecName string, cost seed.CodecCost) {
	k := fbKey{dt, dist, codecName}
	i, ok := b.idx[k]
	if !ok {
		i = len(b.runs)
		b.idx[k] = i
		b.keys = append(b.keys, k)
		b.runs = append(b.runs, nil)
	}
	b.runs[i] = append(b.runs[i], cost)
}

func (b *fbBatch) flush(pred *predictor.CCP) {
	for i, k := range b.keys {
		pred.FeedbackRun(k.dt, k.dist, k.codec, b.runs[i])
	}
}

// WriteReq is one task of an ExecuteWriteBatch: a fully planned write,
// with the analysis and schema already resolved by the caller.
type WriteReq struct {
	Key    string
	Data   []byte // nil in modeled mode
	Size   int64
	Attr   analyzer.Result
	Schema core.Schema
}

// ExecuteWriteBatch executes many write schemas as a single fan-out: the
// codec work of every sub-task of every request is submitted to the
// worker pool as one schedule, then each request's timeline is replayed
// serially from now — exactly as the same requests issued concurrently
// through ExecuteWrite would start, but with one pool submission and one
// directory-lock acquisition per request instead of per sub-task wave.
// Requests fail independently: the i-th error is non-nil when the i-th
// request failed, and its sub-task payloads are returned to the arena
// without disturbing its siblings.
func (m *Manager) ExecuteWriteBatch(now float64, reqs []WriteReq) ([]Result, []error) {
	return m.ExecuteWriteBatchCtx(context.Background(), now, reqs)
}

// ExecuteWriteBatchCtx is ExecuteWriteBatch under a context. On
// cancellation, requests that have not been placed yet fail with
// ctx.Err() (recorded per request) and their payloads return to the
// arena; requests already replayed keep their results.
func (m *Manager) ExecuteWriteBatchCtx(ctx context.Context, now float64, reqs []WriteReq) ([]Result, []error) {
	results := make([]Result, len(reqs))
	errs := make([]error, len(reqs))

	// Flatten every request's sub-tasks into one pool job.
	offs := make([]int, len(reqs)+1)
	total := 0
	for i := range reqs {
		offs[i] = total
		if reqs[i].Data != nil && int64(len(reqs[i].Data)) != reqs[i].Size {
			errs[i] = fmt.Errorf("manager: data length %d != size %d", len(reqs[i].Data), reqs[i].Size)
			continue // zero-width span: excluded from the fan
		}
		total += len(reqs[i].Schema.SubTasks)
	}
	offs[len(reqs)] = total
	outs := make([]compOut, total)
	reqOf := make([]int32, total)
	for i := range reqs {
		for f := offs[i]; f < offs[i+1]; f++ {
			reqOf[f] = int32(i)
		}
	}

	var fanStart time.Time
	if m.tm.queueWait != nil {
		fanStart = time.Now()
	}
	_ = m.runFan(ctx, total, func(s *bufpool.Scratch, f int) error {
		i := int(reqOf[f])
		if err := ctx.Err(); err != nil {
			outs[f] = compOut{err: err}
			return nil
		}
		if m.tm.queueWait != nil {
			w := time.Since(fanStart).Seconds()
			m.tm.queueWait.Observe(w)
			m.tm.stageQueue.Observe(w)
		}
		o, err := m.compressOne(s, reqs[i].Data, reqs[i].Attr, &reqs[i].Schema.SubTasks[f-offs[i]])
		o.err = err
		outs[f] = o
		return nil // per-request errors are carried in outs
	})

	// Replay each request's timeline; all start at now, like concurrent
	// single-op writes sharing the same virtual clock reading. Feedback
	// is accumulated per predictor cell and posted once for the whole
	// batch.
	fb := newFBBatch()
	for i := range reqs {
		if errs[i] != nil {
			continue
		}
		span := outs[offs[i]:offs[i+1]]
		for k := range span {
			if span[k].err != nil && errs[i] == nil {
				errs[i] = span[k].err
			}
		}
		if errs[i] == nil && ctx.Err() != nil {
			errs[i] = ctx.Err() // cancelled between fan and placement
		}
		if errs[i] != nil {
			for k := range span { // payloads were never handed to the store
				bufpool.Put(span[k].payload)
				span[k].payload = nil
			}
			continue
		}
		results[i], errs[i] = m.placeTask(now, reqs[i].Key, reqs[i].Attr, reqs[i].Schema.SubTasks, span, reqs[i].Size, fb)
	}
	fb.flush(m.pred)
	return results, errs
}

func ratioOf(orig, stored int64) float64 {
	if stored <= 0 {
		return 1
	}
	r := float64(orig) / float64(stored)
	if r < 1 {
		return 1
	}
	return r
}

// readOut carries one sub-task's stage-2 decompression output into the
// serial stage-3 replay. err is only populated on the batch path.
type readOut struct {
	c    codec.Codec
	hdr  Header
	secs float64
	err  error
}

// decompressSub runs stage-2 work for a single sub-task: decode the
// on-media header, decompress with the library it names, and land the
// piece in its region of the shared reassembly buffer.
func (m *Manager) decompressSub(s *bufpool.Scratch, attr analyzer.Result, sub *subMeta, blob store.Blob, resData []byte, k int, real bool) (readOut, error) {
	hdr := sub.hdr
	payload := blob.Data
	var dst []byte
	if real {
		// Real mode: trust the on-media header, not the in-memory
		// metadata — this is the "identify the compression library
		// from the data itself" path.
		var rest []byte
		var err error
		hdr, rest, err = DecodeHeader(blob.Data)
		if err != nil {
			return readOut{}, err
		}
		// Integrity gate: a payload whose CRC32C disagrees with its header
		// never reaches the decompressor.
		if got := crc32.Checksum(rest, castagnoli); got != hdr.CRC {
			return readOut{}, fmt.Errorf("manager: sub-task %d payload CRC %08x != header %08x: %w",
				k, got, hdr.CRC, hcerr.ErrCorrupted)
		}
		payload = rest
		// Workers write disjoint regions of the shared buffer, so
		// the decoded range must agree with the write-time metadata
		// before a region is carved out for it.
		if hdr.Offset != sub.hdr.Offset || hdr.Length != sub.hdr.Length {
			return readOut{}, fmt.Errorf("manager: sub-task %d header range (%d,%d) disagrees with metadata (%d,%d)",
				k, hdr.Offset, hdr.Length, sub.hdr.Offset, sub.hdr.Length)
		}
		if hdr.Offset+hdr.Length > int64(len(resData)) {
			return readOut{}, fmt.Errorf("manager: sub-task exceeds task bounds")
		}
		// Full-slice expression: an overrunning codec reallocates
		// instead of clobbering the neighbouring region.
		dst = resData[hdr.Offset : hdr.Offset : hdr.Offset+hdr.Length]
	}
	c, err := codec.ByID(hdr.Codec)
	if err != nil {
		return readOut{}, err
	}
	piece, secs, err := m.oracle.Decompress(s, attr, c, payload, dst, hdr)
	if err != nil {
		return readOut{}, err
	}
	if real {
		if int64(len(piece)) != hdr.Length {
			return readOut{}, fmt.Errorf("manager: sub-task %d decompressed to %d bytes, want %d", k, len(piece), hdr.Length)
		}
		if len(piece) > 0 && &piece[0] != &resData[hdr.Offset] {
			// The codec outgrew its region transiently and
			// reallocated; land the piece with one copy.
			copy(resData[hdr.Offset:hdr.Offset+hdr.Length], piece)
		}
	}
	return readOut{c: c, hdr: hdr, secs: secs}, nil
}

// peekSubs is stage 1 of a read: fetch payloads without modeling I/O
// (the timed reads are replayed in stage 3 with the correct interleaved
// start times). Peek pins arena-owned payloads; callers drop the pins as
// soon as the decompression fan-out finishes. On error every pin taken
// so far is released.
func (m *Manager) peekSubs(now float64, subs []subMeta, blobs []store.Blob) error {
	for k := range subs {
		blob, err := m.peekRetry(now, subs[k].key)
		if err != nil {
			for j := 0; j < k; j++ {
				m.st.Release(blobs[j])
			}
			return err
		}
		blobs[k] = blob
	}
	return nil
}

// peekRetry fetches one payload, retrying transient faults with the same
// capped virtual-time backoff as writes (the advanced clock only feeds
// the injector — peeks never consume tier lanes).
func (m *Manager) peekRetry(now float64, key string) (store.Blob, error) {
	blob, err := m.st.Peek(now, key)
	backoff := m.retryBase
	for r := 0; err != nil && hcerr.IsTransient(err) && r < m.retryMax; r++ {
		m.tm.retries.Inc()
		now += backoff
		if backoff < m.retryCap {
			backoff *= 2
		}
		blob, err = m.st.Peek(now, key)
	}
	return blob, err
}

// readTimeRetry models one timed sub-task read, retrying transient
// faults with capped virtual-time backoff. Alongside the completion
// time it returns the retry bill (attempts and virtual backoff seconds)
// for latency attribution.
func (m *Manager) readTimeRetry(t float64, key string) (end, retrySecs float64, retries int, err error) {
	end, err = m.st.ReadTime(t, key)
	backoff := m.retryBase
	for r := 0; err != nil && hcerr.IsTransient(err) && r < m.retryMax; r++ {
		m.tm.retries.Inc()
		t += backoff
		retrySecs += backoff
		retries++
		if backoff < m.retryCap {
			backoff *= 2
		}
		end, err = m.st.ReadTime(t, key)
	}
	return end, retrySecs, retries, err
}

// replayRead is stage 3 of a read: the serial timeline replay (tier
// read, then decompression time, per sub-task in order) and the
// decompression-speed feedback. Reassembly already happened in place
// during stage 2; ownership of resData passes to the caller through
// Result.Data on success.
func (m *Manager) replayRead(now float64, attr analyzer.Result, subs []subMeta, blobs []store.Blob, outs []readOut, resData []byte, fb *fbBatch) (Result, error) {
	res := Result{End: now}
	res.Data = resData
	t := now
	for k := range subs {
		sm := &subs[k]
		o := &outs[k]
		end, retrySecs, retries, err := m.readTimeRetry(t, sm.key)
		if err != nil {
			bufpool.Put(resData)
			return Result{}, err
		}
		ioSecs := end - t
		t = end + o.secs
		res.CodecTime += o.secs
		res.IOTime += ioSecs
		res.Stored += blobs[k].Size
		res.Retries += retries
		res.RetrySecs += retrySecs
		res.SubResults = append(res.SubResults, SubResult{
			Tier: sm.tier, Codec: o.hdr.Codec, OrigLen: o.hdr.Length,
			Stored: blobs[k].Size, CodecTime: o.secs, IOTime: ioSecs,
			PlannedTier: sm.tier, Retries: retries, RetrySecs: retrySecs,
		})
		if m.tm.readBytes != nil {
			m.tm.readBytes[o.hdr.Codec].Add(o.hdr.Length)
		}
		// attr.Size == 0 marks a recovered task whose write-time analyzer
		// attributes were not persisted: feedback keyed on a zero attr
		// would train the wrong predictor cell, so those reads post none.
		if o.hdr.Codec != codec.None && o.secs > 0 && attr.Size > 0 {
			cost := seed.CodecCost{
				DecompressMBps: float64(o.hdr.Length) / (1 << 20) / o.secs,
			}
			if fb != nil {
				fb.add(attr.Type, attr.Dist, o.c.Name(), cost)
			} else {
				m.pred.Feedback(attr.Type, attr.Dist, o.c.Name(), cost)
			}
		}
	}
	m.tm.reads.Inc()
	res.End = t
	return res, nil
}

// ExecuteRead reads a previously written task: fetch every sub-task,
// decode its metadata header, decompress with the library the header
// names, and reassemble. In modeled mode the data is nil but timing and
// feedback behave identically.
//
// It runs in three stages: payloads are peeked from the store without
// advancing any tier timeline, decompression fans out across the worker
// pool, and the virtual timeline (tier read, then decompression time, per
// sub-task in order) is replayed serially — so the Result is identical
// for every parallelism setting.
func (m *Manager) ExecuteRead(now float64, key string) (Result, error) {
	return m.ExecuteReadCtx(context.Background(), now, key)
}

// ExecuteReadCtx is ExecuteRead under a context: cancellation drains the
// decompression fan-out, releases every pinned payload, and returns
// ctx.Err().
func (m *Manager) ExecuteReadCtx(ctx context.Context, now float64, key string) (Result, error) {
	m.mu.Lock()
	meta, ok := m.tasks[key]
	var subs []subMeta
	var attr analyzer.Result
	var size int64
	if ok {
		// Copy: demotion mutates sub-task tiers under m.mu.
		subs = append(subs, meta.subs...)
		attr = meta.attr
		size = meta.size
	}
	m.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("manager: unknown task %q: %w", key, hcerr.ErrNotFound)
	}
	n := len(subs)
	real := m.st.KeepsData()

	blobs := make([]store.Blob, n)
	if err := m.peekSubs(now, subs, blobs); err != nil {
		return Result{}, err
	}

	// One arena buffer holds the whole reassembled task; each worker
	// decompresses straight into its region, so the read path performs
	// no per-piece allocation and no reassembly copy. Ownership of the
	// buffer passes to the caller via Result.Data.
	var resData []byte
	if real {
		resData = bufpool.Get(int(size))
	}

	// Stage 2: decompression fan-out — pure CPU, no locks held.
	outs := make([]readOut, n)
	var fanStart time.Time
	if m.tm.queueWait != nil {
		fanStart = time.Now()
	}
	err := m.runFan(ctx, n, func(s *bufpool.Scratch, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if m.tm.queueWait != nil {
			w := time.Since(fanStart).Seconds()
			m.tm.queueWait.Observe(w)
			m.tm.stageQueue.Observe(w)
		}
		o, err := m.decompressSub(s, attr, &subs[k], blobs[k], resData, k, real)
		if err != nil {
			return err
		}
		outs[k] = o
		return nil
	})
	for k := range blobs {
		m.st.Release(blobs[k]) // stage 3 only needs sizes, not payloads
	}
	if err != nil {
		bufpool.Put(resData)
		return Result{}, err
	}
	return m.replayRead(now, attr, subs, blobs, outs, resData, nil)
}

// ReadDataCtx decompresses the task stored under key and returns the
// reassembled payload WITHOUT replaying the timed read: no tier lane is
// consumed, no virtual time accounted, no predictor feedback posted —
// the operation is invisible on the modeled timeline. The read-cache
// prefetcher uses it to warm payloads ahead of demand without perturbing
// the DES or the feedback loop. Only meaningful in real mode (the store
// keeps data); modeled mode returns an error. The returned buffer is an
// arena buffer whose ownership transfers to the caller, alongside the
// task's compressed footprint and write-time analysis. now is the current
// virtual time, consulted only by the fault injector's peek rules.
func (m *Manager) ReadDataCtx(ctx context.Context, now float64, key string) (data []byte, stored int64, attr analyzer.Result, err error) {
	if !m.st.KeepsData() {
		return nil, 0, analyzer.Result{}, errors.New("manager: ReadDataCtx requires a data-keeping store")
	}
	m.mu.Lock()
	meta, ok := m.tasks[key]
	var subs []subMeta
	var size int64
	if ok {
		// Copy: demotion mutates sub-task tiers under m.mu.
		subs = append(subs, meta.subs...)
		attr = meta.attr
		size = meta.size
	}
	m.mu.Unlock()
	if !ok {
		return nil, 0, analyzer.Result{}, fmt.Errorf("manager: unknown task %q: %w", key, hcerr.ErrNotFound)
	}
	n := len(subs)
	blobs := make([]store.Blob, n)
	if err := m.peekSubs(now, subs, blobs); err != nil {
		return nil, 0, analyzer.Result{}, err
	}
	resData := bufpool.Get(int(size))
	outs := make([]readOut, n)
	err = m.runFan(ctx, n, func(s *bufpool.Scratch, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		o, err := m.decompressSub(s, attr, &subs[k], blobs[k], resData, k, true)
		if err != nil {
			return err
		}
		outs[k] = o
		return nil
	})
	for k := range blobs {
		stored += blobs[k].Size
		m.st.Release(blobs[k])
	}
	if err != nil {
		bufpool.Put(resData)
		return nil, 0, analyzer.Result{}, err
	}
	return resData, stored, attr, nil
}

// ExecuteReadBatch reads many tasks as a single fan-out: one directory
// pass captures every task's metadata, every sub-task of every request
// is decompressed through one pool submission, and each request's
// timeline is replayed serially from now. Requests fail independently,
// mirroring ExecuteWriteBatch.
func (m *Manager) ExecuteReadBatch(now float64, keys []string) ([]Result, []error) {
	return m.ExecuteReadBatchCtx(context.Background(), now, keys)
}

// ExecuteReadBatchCtx is ExecuteReadBatch under a context. On
// cancellation, unfinished requests fail with ctx.Err() (recorded per
// request); every pinned payload and reassembly buffer is returned.
func (m *Manager) ExecuteReadBatchCtx(ctx context.Context, now float64, keys []string) ([]Result, []error) {
	results := make([]Result, len(keys))
	errs := make([]error, len(keys))
	subsAll := make([][]subMeta, len(keys))
	attrs := make([]analyzer.Result, len(keys))
	sizes := make([]int64, len(keys))

	m.mu.Lock()
	for i, key := range keys {
		meta, ok := m.tasks[key]
		if !ok {
			errs[i] = fmt.Errorf("manager: unknown task %q: %w", key, hcerr.ErrNotFound)
			continue
		}
		subsAll[i] = append([]subMeta(nil), meta.subs...)
		attrs[i] = meta.attr
		sizes[i] = meta.size
	}
	m.mu.Unlock()
	real := m.st.KeepsData()

	// Flatten every request's sub-tasks into one pool job; a request
	// whose payloads cannot be pinned drops out with a zero-width span.
	offs := make([]int, len(keys)+1)
	total := 0
	blobsAll := make([][]store.Blob, len(keys))
	dataAll := make([][]byte, len(keys))
	for i := range keys {
		offs[i] = total
		if errs[i] != nil {
			continue
		}
		blobsAll[i] = make([]store.Blob, len(subsAll[i]))
		if err := m.peekSubs(now, subsAll[i], blobsAll[i]); err != nil {
			errs[i] = err
			blobsAll[i] = nil
			continue
		}
		if real {
			dataAll[i] = bufpool.Get(int(sizes[i]))
		}
		total += len(subsAll[i])
	}
	offs[len(keys)] = total
	outs := make([]readOut, total)
	reqOf := make([]int32, total)
	for i := range keys {
		for f := offs[i]; f < offs[i+1]; f++ {
			reqOf[f] = int32(i)
		}
	}

	var fanStart time.Time
	if m.tm.queueWait != nil {
		fanStart = time.Now()
	}
	_ = m.runFan(ctx, total, func(s *bufpool.Scratch, f int) error {
		if err := ctx.Err(); err != nil {
			outs[f] = readOut{err: err}
			return nil
		}
		if m.tm.queueWait != nil {
			w := time.Since(fanStart).Seconds()
			m.tm.queueWait.Observe(w)
			m.tm.stageQueue.Observe(w)
		}
		i := int(reqOf[f])
		k := f - offs[i]
		o, err := m.decompressSub(s, attrs[i], &subsAll[i][k], blobsAll[i][k], dataAll[i], k, real)
		o.err = err
		outs[f] = o
		return nil // per-request errors are carried in outs
	})

	fb := newFBBatch()
	for i := range keys {
		if blobsAll[i] == nil {
			continue
		}
		for k := range blobsAll[i] {
			m.st.Release(blobsAll[i][k]) // replay only needs sizes
		}
		span := outs[offs[i]:offs[i+1]]
		for k := range span {
			if span[k].err != nil && errs[i] == nil {
				errs[i] = span[k].err
			}
		}
		if errs[i] != nil {
			bufpool.Put(dataAll[i])
			continue
		}
		results[i], errs[i] = m.replayRead(now, attrs[i], subsAll[i], blobsAll[i], span, dataAll[i], fb)
	}
	fb.flush(m.pred)
	return results, errs
}

// Delete removes a task's sub-tasks from the hierarchy. The key's slot
// in the write-order list lingers until enough deletions accumulate,
// then the list is compacted in one pass — so the drain/demotion scan
// and the slice itself stay proportional to the live task count under
// churn instead of growing forever.
func (m *Manager) Delete(key string) error {
	m.mu.Lock()
	meta, ok := m.tasks[key]
	if ok {
		delete(m.tasks, key)
		m.dead++
		if m.dead*2 > len(m.order) && len(m.order) >= 16 {
			m.compactOrderLocked()
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("manager: unknown task %q: %w", key, hcerr.ErrNotFound)
	}
	for _, sm := range meta.subs {
		if err := m.st.Delete(sm.key); err != nil {
			return err
		}
	}
	return nil
}

// TaskSize reports the original size of a written task.
func (m *Manager) TaskSize(key string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, ok := m.tasks[key]
	if !ok {
		return 0, false
	}
	return meta.size, true
}

// TaskInfo reports the original size and the Input Analyzer result that
// was persisted when the task was written, so read-path reports can carry
// the data attributes without re-analyzing.
func (m *Manager) TaskInfo(key string) (size int64, attr analyzer.Result, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, found := m.tasks[key]
	if !found {
		return 0, analyzer.Result{}, false
	}
	return meta.size, meta.attr, true
}

// Tasks reports the number of tasks tracked.
func (m *Manager) Tasks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tasks)
}

// DataTypeOf is a helper for tests: re-exports the attr stored at write.
func (m *Manager) DataTypeOf(key string) (stats.DataType, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, ok := m.tasks[key]
	if !ok {
		return 0, false
	}
	return meta.attr.Type, true
}

// compactOrderLocked drops deleted keys from the write-order list,
// preserving the relative age of the survivors. Demotion cursors reset
// to the oldest task; the next slice re-walks a prefix at worst. Caller
// holds m.mu.
func (m *Manager) compactOrderLocked() {
	live := m.order[:0]
	for _, k := range m.order {
		if _, ok := m.tasks[k]; ok {
			live = append(live, k)
		} else {
			delete(m.inOrder, k)
		}
	}
	for i := len(live); i < len(m.order); i++ {
		m.order[i] = "" // release the string for GC
	}
	m.order = live
	m.dead = 0
	for i := range m.demoteCur {
		m.demoteCur[i] = 0
	}
}
