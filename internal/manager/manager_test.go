package manager

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Offset: 12345, Length: 1 << 20, Codec: codec.Snappy, Stored: 4242}
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize {
		t.Fatalf("header size %d", len(buf))
	}
	payload := append(buf, make([]byte, 4242)...)
	back, rest, err := DecodeHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("got %+v want %+v", back, h)
	}
	if len(rest) != 4242 {
		t.Fatalf("rest %d", len(rest))
	}
}

func TestHeaderRejectsOverflowAndCorruption(t *testing.T) {
	if _, err := (Header{Offset: 1 << 40}).Encode(nil); err == nil {
		t.Error("u32 overflow accepted")
	}
	if _, _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	h := Header{Length: 10, Codec: codec.LZ4, Stored: 5}
	buf, _ := h.Encode(nil)
	if _, _, err := DecodeHeader(append(buf, 1, 2, 3)); err == nil {
		t.Error("stored-size mismatch accepted")
	}
	bad, _ := (Header{Codec: codec.ID(99), Stored: 0}).Encode(nil)
	bad[8] = 99
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Error("unknown codec accepted")
	}
}

type env struct {
	st   *store.Store
	mgr  *Manager
	eng  *core.Engine
	pred *predictor.CCP
}

func newRealEnv(t *testing.T) *env {
	t.Helper()
	h := tier.Ares(64*tier.MB, 256*tier.MB, tier.GB, tier.TB)
	st, err := store.New(h, true)
	if err != nil {
		t.Fatal(err)
	}
	pred := predictor.New(seed.Builtin(h))
	mgr := New(st, pred, RealOracle{})
	eng, err := core.New(pred, monitor.New(st, 0), core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		t.Fatal(err)
	}
	return &env{st: st, mgr: mgr, eng: eng, pred: pred}
}

func newModelEnv(t *testing.T, hier tier.Hierarchy) *env {
	t.Helper()
	st, err := store.New(hier, false)
	if err != nil {
		t.Fatal(err)
	}
	truth := seed.Builtin(hier)
	pred := predictor.New(truth)
	mgr := New(st, pred, ModelOracle{Truth: truth})
	eng, err := core.New(pred, monitor.New(st, 0), core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		t.Fatal(err)
	}
	return &env{st: st, mgr: mgr, eng: eng, pred: pred}
}

func TestWriteReadRoundTripReal(t *testing.T) {
	e := newRealEnv(t)
	data := []byte(strings.Repeat("tiered storage with hierarchical compression. ", 50000))
	attr := analyzer.Analyze(data)
	sc, err := e.eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	wres, err := e.mgr.ExecuteWrite(0, "task1", data, int64(len(data)), attr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if wres.End <= 0 {
		t.Error("write must advance virtual time")
	}
	rres, err := e.mgr.ExecuteRead(wres.End, "task1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres.Data, data) {
		t.Fatalf("round-trip mismatch: got %d bytes want %d", len(rres.Data), len(data))
	}
	if rres.End <= wres.End {
		t.Error("read must advance virtual time")
	}
}

func TestWriteReadSplitTask(t *testing.T) {
	// Tiny RAM forces a multi-tier schema; reassembly must still be exact.
	h := tier.Ares(2*tier.MB, 8*tier.MB, tier.GB, tier.TB)
	st, _ := store.New(h, true)
	pred := predictor.New(seed.Builtin(h))
	mgr := New(st, pred, RealOracle{})
	eng, _ := core.New(pred, monitor.New(st, 0), core.Config{Weights: seed.WeightsEqual})

	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 24<<20, 7)
	attr := analyzer.Analyze(data)
	sc, err := eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SubTasks) < 2 {
		t.Fatalf("expected split schema, got %d", len(sc.SubTasks))
	}
	wres, err := mgr.ExecuteWrite(0, "big", data, int64(len(data)), attr, sc)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := mgr.ExecuteRead(wres.End, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres.Data, data) {
		t.Fatal("split round-trip mismatch")
	}
	if len(rres.SubResults) != len(sc.SubTasks) {
		t.Errorf("sub-results %d != sub-tasks %d", len(rres.SubResults), len(sc.SubTasks))
	}
}

func TestStoredDataCarriesHeaders(t *testing.T) {
	e := newRealEnv(t)
	data := []byte(strings.Repeat("header check ", 5000))
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, int64(len(data)))
	if _, err := e.mgr.ExecuteWrite(0, "t", data, int64(len(data)), attr, sc); err != nil {
		t.Fatal(err)
	}
	blob, _, err := e.st.Get(0, "t#0")
	if err != nil {
		t.Fatal(err)
	}
	hdr, rest, err := DecodeHeader(blob.Data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Codec != sc.SubTasks[0].Codec {
		t.Errorf("header codec %d != schema codec %d", hdr.Codec, sc.SubTasks[0].Codec)
	}
	if hdr.Length != sc.SubTasks[0].Length {
		t.Errorf("header length %d", hdr.Length)
	}
	if int64(len(rest)) != hdr.Stored {
		t.Errorf("payload %d != stored %d", len(rest), hdr.Stored)
	}
}

func TestWriteFeedsBackToPredictor(t *testing.T) {
	e := newRealEnv(t)
	q0, _ := e.pred.Stats()
	data := []byte(strings.Repeat("feedback loop ", 100000))
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, int64(len(data)))
	if _, err := e.mgr.ExecuteWrite(0, "t", data, int64(len(data)), attr, sc); err != nil {
		t.Fatal(err)
	}
	q1, _ := e.pred.Stats()
	// Feedback fires only for compressed sub-tasks; this text is large
	// and compressible so at least one should compress.
	compressed := false
	for _, st := range sc.SubTasks {
		if st.Codec != codec.None {
			compressed = true
		}
	}
	if compressed && q1 == q0 {
		t.Error("write produced no feedback")
	}
}

func TestModeledModeMatchesControlFlow(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma, Size: 64 << 20}
	sc, err := e.eng.Plan(0, attr, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := e.mgr.ExecuteWrite(0, "m", nil, 64<<20, attr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stored <= 0 || wres.End <= 0 {
		t.Fatalf("modeled write: %+v", wres)
	}
	rres, err := e.mgr.ExecuteRead(wres.End, "m")
	if err != nil {
		t.Fatal(err)
	}
	if rres.Data != nil {
		t.Error("modeled read must not materialize data")
	}
	if rres.End <= wres.End {
		t.Error("modeled read must cost time")
	}
	if rres.IOTime <= 0 {
		t.Error("modeled read must cost I/O time")
	}
}

func TestModeledModeDeterministic(t *testing.T) {
	hier := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	run := func() float64 {
		e := newModelEnv(t, hier)
		attr := analyzer.Result{Type: stats.TypeInt, Dist: stats.Normal}
		var end float64
		for i := 0; i < 20; i++ {
			sc, err := e.eng.Plan(end, attr, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.mgr.ExecuteWrite(end, key(i), nil, 1<<20, attr, sc)
			if err != nil {
				t.Fatal(err)
			}
			end = res.End
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("modeled runs diverge: %v != %v", a, b)
	}
}

func key(i int) string { return "k" + string(rune('a'+i)) }

func TestDeleteReleasesCapacity(t *testing.T) {
	e := newRealEnv(t)
	data := []byte(strings.Repeat("x", 1<<20))
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, int64(len(data)))
	e.mgr.ExecuteWrite(0, "t", data, int64(len(data)), attr, sc)
	used := e.st.Used(sc.SubTasks[0].Tier)
	if used == 0 {
		t.Fatal("nothing stored")
	}
	if err := e.mgr.Delete("t"); err != nil {
		t.Fatal(err)
	}
	if e.st.Used(sc.SubTasks[0].Tier) != 0 {
		t.Error("delete leaked capacity")
	}
	if err := e.mgr.Delete("t"); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := e.mgr.ExecuteRead(0, "t"); err == nil {
		t.Error("read after delete accepted")
	}
}

func TestTaskAccessors(t *testing.T) {
	e := newRealEnv(t)
	data := []byte(strings.Repeat("y", 4096))
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, 4096)
	e.mgr.ExecuteWrite(0, "t", data, 4096, attr, sc)
	if n, ok := e.mgr.TaskSize("t"); !ok || n != 4096 {
		t.Errorf("TaskSize = %d, %v", n, ok)
	}
	if _, ok := e.mgr.TaskSize("missing"); ok {
		t.Error("missing task reported")
	}
	if e.mgr.Tasks() != 1 {
		t.Errorf("Tasks = %d", e.mgr.Tasks())
	}
	if dt, ok := e.mgr.DataTypeOf("t"); !ok || dt != attr.Type {
		t.Errorf("DataTypeOf = %v, %v", dt, ok)
	}
}

func TestWriteSizeMismatchRejected(t *testing.T) {
	e := newRealEnv(t)
	data := []byte("abc")
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, 3)
	if _, err := e.mgr.ExecuteWrite(0, "t", data, 5, attr, sc); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAnatomyAccounting(t *testing.T) {
	// CodecTime + IOTime must equal the virtual elapsed time: the Fig. 3
	// breakdown is exhaustive.
	e := newRealEnv(t)
	data := stats.GenBuffer(stats.TypeText, stats.Uniform, 4<<20, 3)
	attr := analyzer.Analyze(data)
	sc, _ := e.eng.Plan(0, attr, int64(len(data)))
	wres, err := e.mgr.ExecuteWrite(0, "t", data, int64(len(data)), attr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if diff := wres.End - (wres.CodecTime + wres.IOTime); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("anatomy gap: end=%v codec=%v io=%v", wres.End, wres.CodecTime, wres.IOTime)
	}
}

func TestDrainMovesOldestDown(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	// Fill RAM with several tasks.
	now := 0.0
	for i := 0; i < 4; i++ {
		sc, err := e.eng.Plan(now, attr, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.mgr.ExecuteWrite(now, fmt.Sprintf("d%d", i), nil, 1<<20, attr, sc)
		if err != nil {
			t.Fatal(err)
		}
		now = res.End
	}
	usedRAM := e.st.Used(0)
	if usedRAM == 0 {
		t.Skip("engine placed nothing on RAM in this configuration")
	}
	moved := e.mgr.Drain(now, 10.0)
	if moved <= 0 {
		t.Fatal("drain moved nothing")
	}
	if e.st.Used(0) >= usedRAM {
		t.Errorf("RAM usage did not fall: %d -> %d", usedRAM, e.st.Used(0))
	}
	// All tasks must still be readable after draining.
	for i := 0; i < 4; i++ {
		if _, err := e.mgr.ExecuteRead(now+10, fmt.Sprintf("d%d", i)); err != nil {
			t.Fatalf("read after drain: %v", err)
		}
	}
}

func TestDrainRespectsWindow(t *testing.T) {
	hier := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	e := newModelEnv(t, hier)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	now := 0.0
	for i := 0; i < 8; i++ {
		sc, _ := e.eng.Plan(now, attr, 4<<20)
		res, err := e.mgr.ExecuteWrite(now, fmt.Sprintf("w%d", i), nil, 4<<20, attr, sc)
		if err != nil {
			t.Fatal(err)
		}
		now = res.End
	}
	// A zero-length window must move nothing... except the first blob
	// check happens before the deadline test; use a tiny window instead.
	movedTiny := e.mgr.Drain(now, 1e-12)
	movedBig := e.mgr.Drain(now, 1e9)
	if movedTiny > movedBig {
		t.Errorf("tiny window moved more than unbounded: %d vs %d", movedTiny, movedBig)
	}
}

// TestParallelismDeterministicVirtualTime is the deterministic
// virtual-time rule: identical task sequences must produce identical
// virtual-time accounting regardless of the worker-pool width, because
// codec times are summed per the serial model and only wall-clock work
// overlaps. The model oracle makes codec costs reproducible, so the
// comparison can be exact.
func TestParallelismDeterministicVirtualTime(t *testing.T) {
	hier := tier.Ares(8*tier.MB, 32*tier.MB, 128*tier.MB, tier.TB)
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}

	type trace struct {
		end, codec, io float64
		subs           []SubResult
	}
	run := func(par int) []trace {
		e := newModelEnv(t, hier)
		e.mgr.SetParallelism(par)
		var out []trace
		now := 0.0
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("t%d", i)
			sc, err := e.eng.Plan(now, attr, 24<<20)
			if err != nil {
				t.Fatal(err)
			}
			wres, err := e.mgr.ExecuteWrite(now, key, nil, 24<<20, attr, sc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, trace{wres.End, wres.CodecTime, wres.IOTime, wres.SubResults})
			rres, err := e.mgr.ExecuteRead(wres.End, key)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, trace{rres.End, rres.CodecTime, rres.IOTime, rres.SubResults})
			now = rres.End
		}
		return out
	}

	serial := run(1)
	for _, par := range []int{2, 8} {
		parallel := run(par)
		for i := range serial {
			s, p := serial[i], parallel[i]
			if s.end != p.end || s.codec != p.codec || s.io != p.io {
				t.Fatalf("par=%d op %d: (%v,%v,%v) != serial (%v,%v,%v)",
					par, i, p.end, p.codec, p.io, s.end, s.codec, s.io)
			}
			if len(s.subs) != len(p.subs) {
				t.Fatalf("par=%d op %d: %d sub-results != %d", par, i, len(p.subs), len(s.subs))
			}
			for k := range s.subs {
				if s.subs[k] != p.subs[k] {
					t.Fatalf("par=%d op %d sub %d: %+v != %+v", par, i, k, p.subs[k], s.subs[k])
				}
			}
		}
	}
}

// TestParallelWriteRealRoundTrip exercises the worker pool on real bytes:
// a multi-sub-task schema compressed with par=4 must decompress to the
// original regardless of which goroutine handled which piece.
func TestParallelWriteRealRoundTrip(t *testing.T) {
	e := newRealEnv(t)
	e.mgr.SetParallelism(4)
	data := []byte(strings.Repeat("parallel sub-task codec execution over tiers. ", 120000))
	attr := analyzer.Analyze(data)
	sc, err := e.eng.Plan(0, attr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	wres, err := e.mgr.ExecuteWrite(0, "par", data, int64(len(data)), attr, sc)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := e.mgr.ExecuteRead(wres.End, "par")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres.Data, data) {
		t.Fatal("parallel round-trip mismatch")
	}
}

// BenchmarkManagerCompress measures the write hot path at the manager
// layer: plan, fan-out codec work into pooled scratches, assemble
// arena-backed payloads, and hand ownership to the store.
func BenchmarkManagerCompress(b *testing.B) {
	h := tier.Ares(tier.GB, tier.GB, 4*tier.GB, tier.TB)
	st, err := store.New(h, true)
	if err != nil {
		b.Fatal(err)
	}
	pred := predictor.New(seed.Builtin(h))
	mgr := New(st, pred, RealOracle{})
	eng, err := core.New(pred, monitor.New(st, 0), core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		b.Fatal(err)
	}
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 3)
	attr := analyzer.Analyze(data)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("b%d", i)
		sc, err := eng.Plan(0, attr, int64(len(data)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.ExecuteWrite(0, key, data, int64(len(data)), attr, sc); err != nil {
			b.Fatal(err)
		}
		if err := mgr.Delete(key); err != nil {
			b.Fatal(err)
		}
	}
}
