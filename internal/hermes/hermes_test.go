package hermes

import (
	"bytes"
	"strings"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/manager"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

func realBaseline(t *testing.T, codecName string, h tier.Hierarchy) *Baseline {
	t.Helper()
	st, err := store.New(h, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(st, codecName, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWriteReadNoCompression(t *testing.T) {
	b := realBaseline(t, "", tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB))
	data := []byte(strings.Repeat("multi-tier buffering ", 10000))
	attr := analyzer.Analyze(data)
	wres, err := b.Write(0, "k", data, int64(len(data)), attr)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stored != int64(len(data)) {
		t.Errorf("MTNC stored %d, want %d", wres.Stored, len(data))
	}
	if wres.CodecTime != 0 {
		t.Error("MTNC should spend no codec time")
	}
	rres, err := b.Read(wres.End, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres.Data, data) {
		t.Fatal("round-trip mismatch")
	}
	if b.Codec() != "none" {
		t.Errorf("codec %q", b.Codec())
	}
}

func TestWriteReadWithFixedCodec(t *testing.T) {
	for _, name := range []string{"lz4", "zlib", "snappy"} {
		b := realBaseline(t, name, tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB))
		data := []byte(strings.Repeat("fixed library compression ", 20000))
		attr := analyzer.Analyze(data)
		wres, err := b.Write(0, "k", data, int64(len(data)), attr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wres.Stored >= int64(len(data)) {
			t.Errorf("%s: no reduction (%d >= %d)", name, wres.Stored, len(data))
		}
		rres, err := b.Read(wres.End, "k")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(rres.Data, data) {
			t.Fatalf("%s: mismatch", name)
		}
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	st, _ := store.New(tier.PFSOnly(tier.GB), true)
	if _, err := New(st, "zstd", nil); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestPlaceThenCompressUnderutilizesTiers(t *testing.T) {
	// The paper's Fig. 5 observation: Hermes reserves by uncompressed
	// size, so a compressing run underfills RAM physically while its
	// reservation is full. Write compressible data worth exactly the RAM
	// capacity: the next task must go to the lower tier even though RAM
	// has physical space.
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1 << 20, Latency: 1e-6, Bandwidth: 1e9, Lanes: 1},
		{Name: "ssd", Capacity: 1 << 30, Latency: 1e-4, Bandwidth: 1e8, Lanes: 1},
	}}
	b := realBaseline(t, "zlib", h)
	data := []byte(strings.Repeat("under-utilization ", 58254))[:1<<20] // exactly 1 MiB
	attr := analyzer.Analyze(data)
	if _, err := b.Write(0, "a", data, int64(len(data)), attr); err != nil {
		t.Fatal(err)
	}
	// RAM reservation is full; physical occupancy is far below capacity.
	if b.Reserved(0) != 1<<20 {
		t.Fatalf("reserved %d", b.Reserved(0))
	}
	phys := b.Store().Used(0)
	if phys >= 1<<19 {
		t.Fatalf("zlib should compress 2x+: physical %d", phys)
	}
	// Second task: spills to ssd despite free physical RAM.
	wres, err := b.Write(0, "b", data, int64(len(data)), attr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range wres.SubResults {
		if sr.Tier == 0 {
			t.Error("place-then-compress must not reuse reserved RAM")
		}
	}
}

func TestSplitAcrossTiers(t *testing.T) {
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1 << 20, Latency: 0, Bandwidth: 1e9, Lanes: 1},
		{Name: "ssd", Capacity: 1 << 30, Latency: 0, Bandwidth: 1e8, Lanes: 1},
	}}
	b := realBaseline(t, "", h)
	data := stats.GenBuffer(stats.TypeInt, stats.Uniform, 3<<20, 1)
	attr := analyzer.Analyze(data)
	wres, err := b.Write(0, "k", data, int64(len(data)), attr)
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.SubResults) != 2 {
		t.Fatalf("want split into 2, got %d", len(wres.SubResults))
	}
	if wres.SubResults[0].Tier != 0 || wres.SubResults[1].Tier != 1 {
		t.Errorf("split tiers: %+v", wres.SubResults)
	}
	rres, err := b.Read(wres.End, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rres.Data, data) {
		t.Fatal("split round-trip mismatch")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "only", Capacity: 1 << 20, Latency: 0, Bandwidth: 1e9, Lanes: 1},
	}}
	b := realBaseline(t, "", h)
	data := make([]byte, 2<<20)
	if _, err := b.Write(0, "k", data, int64(len(data)), analyzer.Result{}); err == nil {
		t.Fatal("over-capacity write accepted")
	}
}

func TestDeleteReleasesReservations(t *testing.T) {
	b := realBaseline(t, "lz4", tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB))
	data := []byte(strings.Repeat("release me ", 20000))
	attr := analyzer.Analyze(data)
	b.Write(0, "k", data, int64(len(data)), attr)
	if b.Tasks() != 1 {
		t.Fatal("task not tracked")
	}
	if err := b.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if b.Reserved(0) != 0 || b.Store().Used(0) != 0 {
		t.Error("delete leaked reservation or capacity")
	}
	if err := b.Delete("k"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestModeledBaseline(t *testing.T) {
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	st, _ := store.New(h, false)
	truth := seed.Builtin(h)
	b, err := New(st, "snappy", manager.ModelOracle{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	wres, err := b.Write(0, "k", nil, 32<<20, attr)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stored <= 0 || wres.Stored >= 32<<20 {
		t.Errorf("modeled stored %d", wres.Stored)
	}
	if wres.CodecTime <= 0 {
		t.Error("modeled compression must cost time")
	}
	rres, err := b.Read(wres.End, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rres.Data != nil {
		t.Error("modeled read returned data")
	}
	if rres.End <= wres.End {
		t.Error("modeled read must cost time")
	}
}

func TestReadUnknownTask(t *testing.T) {
	b := realBaseline(t, "", tier.PFSOnly(tier.GB))
	if _, err := b.Read(0, "nope"); err == nil {
		t.Fatal("unknown task read accepted")
	}
}

func TestDrainFreesReservations(t *testing.T) {
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1 << 20, Latency: 1e-6, Bandwidth: 1e9, Lanes: 1},
		{Name: "ssd", Capacity: 1 << 30, Latency: 1e-4, Bandwidth: 1e8, Lanes: 1},
	}}
	st, _ := store.New(h, false)
	truth := seed.Builtin(h)
	b, err := New(st, "", manager.ModelOracle{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	attr := analyzer.Result{Type: stats.TypeInt, Dist: stats.Gamma}
	// Fill the RAM reservation completely.
	if _, err := b.Write(0, "a", nil, 1<<20, attr); err != nil {
		t.Fatal(err)
	}
	if b.Reserved(0) == 0 {
		t.Fatal("no RAM reservation made")
	}
	// Drain: both the blob and the reservation must move down.
	if moved := b.Drain(1, 100); moved <= 0 {
		t.Fatal("drain moved nothing")
	}
	if b.Reserved(0) != 0 {
		t.Errorf("RAM reservation not released: %d", b.Reserved(0))
	}
	if st.Used(0) != 0 {
		t.Errorf("RAM blob not moved: %d", st.Used(0))
	}
	// The freed budget is reusable and the old task still readable.
	if _, err := b.Write(200, "b", nil, 1<<20, attr); err != nil {
		t.Fatalf("freed reservation unusable: %v", err)
	}
	if _, err := b.Read(300, "a"); err != nil {
		t.Fatalf("read after drain: %v", err)
	}
}
