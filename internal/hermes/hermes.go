// Package hermes implements the paper's comparison systems (Table IV):
//
//	BASE — vanilla PFS, no buffering, no compression
//	STWC — single tier (PFS) with a fixed compression library
//	MTNC — multi-tiered buffering without compression (Hermes)
//	Hermes+codec — multi-tiered buffering with one fixed library
//
// The defining property reproduced here is Hermes's place-then-compress
// order: the data placement engine reserves tier capacity by the
// *uncompressed* size of incoming I/O and only then applies compression.
// This is why, in the paper's Fig. 5, "Hermes with lz4 only uses 17GB out
// of the 64GB available in RAM" — compressed payloads under-fill the
// reservations, and later tasks spill to lower tiers although physical
// space remains. HCompress's compress-then-place order is the contrast
// the whole evaluation turns on.
package hermes

import (
	"errors"
	"fmt"
	"sync"

	"hcompress/internal/analyzer"
	"hcompress/internal/bufpool"
	"hcompress/internal/codec"
	"hcompress/internal/manager"
	"hcompress/internal/store"
)

// Baseline is a Hermes-style tiered buffer with an optional fixed codec.
// Safe for concurrent use.
type Baseline struct {
	mu       sync.Mutex
	st       *store.Store
	oracle   manager.Oracle
	fixed    codec.Codec // nil means no compression
	reserved []int64     // per-tier uncompressed-byte reservations
	tasks    map[string][]sub
	order    []string // write order, oldest first (drain policy)
}

type sub struct {
	key    string
	tier   int
	hdr    manager.Header
	attr   analyzer.Result
	stored int64
}

// New creates a baseline over st. codecName selects the fixed compression
// library ("" or "none" disables compression). oracle defaults to
// manager.RealOracle.
func New(st *store.Store, codecName string, oracle manager.Oracle) (*Baseline, error) {
	b := &Baseline{
		st:       st,
		oracle:   oracle,
		reserved: make([]int64, st.Hierarchy().Len()),
		tasks:    make(map[string][]sub),
	}
	if b.oracle == nil {
		b.oracle = manager.RealOracle{}
	}
	if codecName != "" && codecName != "none" {
		c, err := codec.ByName(codecName)
		if err != nil {
			return nil, err
		}
		b.fixed = c
	}
	return b, nil
}

// Store returns the underlying store.
func (b *Baseline) Store() *store.Store { return b.st }

// Codec reports the fixed library name ("none" when disabled).
func (b *Baseline) Codec() string {
	if b.fixed == nil {
		return "none"
	}
	return b.fixed.Name()
}

// Reserved reports the uncompressed bytes reserved on tier t — the
// quantity Hermes's DPE budgets against.
func (b *Baseline) Reserved(t int) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t < 0 || t >= len(b.reserved) {
		return 0
	}
	return b.reserved[t]
}

// Write places then (optionally) compresses one task: the Hermes order.
// data may be nil for modeled runs. Returns the manager-style result.
func (b *Baseline) Write(now float64, key string, data []byte, size int64, attr analyzer.Result) (manager.Result, error) {
	if size <= 0 {
		return manager.Result{}, fmt.Errorf("hermes: non-positive size")
	}
	if data != nil && int64(len(data)) != size {
		return manager.Result{}, fmt.Errorf("hermes: data length %d != size %d", len(data), size)
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	// Phase 1 — placement by uncompressed size (greedy MaxBW top-down,
	// splitting across tiers when a tier's reservation budget runs out).
	type piece struct {
		tier        int
		off, length int64
	}
	var pieces []piece
	hier := b.st.Hierarchy()
	var off int64
	remaining := size
	for t := 0; t < hier.Len() && remaining > 0; t++ {
		avail := hier.Tiers[t].Capacity - b.reserved[t]
		if avail <= 0 {
			continue
		}
		take := remaining
		if take > avail {
			take = avail
		}
		pieces = append(pieces, piece{tier: t, off: off, length: take})
		off += take
		remaining -= take
	}
	if remaining > 0 {
		return manager.Result{}, fmt.Errorf("hermes: %w", store.ErrNoCapacity)
	}

	// Phase 2 — compress each placed piece and perform the I/O.
	cdc, _ := codec.ByID(codec.None)
	if b.fixed != nil {
		cdc = b.fixed
	}
	res := manager.Result{End: now}
	t := now
	var subs []sub
	for k, p := range pieces {
		hdr := manager.Header{Offset: p.off, Length: p.length, Codec: cdc.ID()}
		var payload []byte
		if data != nil {
			payload = data[p.off : p.off+p.length]
		}
		stored := p.length
		compSecs := 0.0
		var blobData []byte
		if cdc.ID() != codec.None {
			var err error
			blobData, stored, compSecs, err = b.oracle.Compress(nil, attr, cdc, payload, p.length, hdr)
			if err != nil {
				return manager.Result{}, err
			}
		} else {
			blobData = payload
		}
		t += compSecs
		sk := fmt.Sprintf("%s@%d", key, k)
		// Physical occupancy can exceed the uncompressed reservation by
		// the metadata header (or when a codec expands); spill down the
		// hierarchy in that rare case, as the real system would.
		tierIdx := p.tier
		end, err := b.st.Put(t, tierIdx, sk, blobData, stored)
		for err != nil && errorsIsNoCapacity(err) && tierIdx+1 < hier.Len() {
			tierIdx++
			end, err = b.st.Put(t, tierIdx, sk, blobData, stored)
		}
		if cdc.ID() != codec.None {
			// The oracle's payload is an arena buffer and the store
			// copied it; hand it back.
			bufpool.Put(blobData)
		}
		if err != nil {
			return manager.Result{}, fmt.Errorf("hermes: placing piece %d: %w", k, err)
		}
		p.tier = tierIdx
		b.reserved[p.tier] += p.length // reservation is the UNCOMPRESSED size
		ioSecs := end - t
		t = end
		hdr.Stored = stored
		res.CodecTime += compSecs
		res.IOTime += ioSecs
		res.Stored += stored
		res.SubResults = append(res.SubResults, manager.SubResult{
			Tier: p.tier, Codec: cdc.ID(), OrigLen: p.length,
			Stored: stored, CodecTime: compSecs, IOTime: ioSecs,
		})
		subs = append(subs, sub{key: sk, tier: p.tier, hdr: hdr, attr: attr, stored: stored})
	}
	if _, existed := b.tasks[key]; !existed {
		b.order = append(b.order, key)
	}
	b.tasks[key] = subs
	res.End = t
	return res, nil
}

// Read fetches and decompresses a task written earlier.
func (b *Baseline) Read(now float64, key string) (manager.Result, error) {
	b.mu.Lock()
	subs, ok := b.tasks[key]
	b.mu.Unlock()
	if !ok {
		return manager.Result{}, fmt.Errorf("hermes: unknown task %q", key)
	}
	res := manager.Result{End: now}
	real := b.st.KeepsData()
	var total int64
	for _, s := range subs {
		total += s.hdr.Length
	}
	if real {
		res.Data = make([]byte, total)
	}
	t := now
	for _, s := range subs {
		blob, end, err := b.st.Get(t, s.key)
		if err != nil {
			return manager.Result{}, err
		}
		ioSecs := end - t
		t = end
		decompSecs := 0.0
		var piece []byte
		if s.hdr.Codec != codec.None {
			cdc, err := codec.ByID(s.hdr.Codec)
			if err != nil {
				return manager.Result{}, err
			}
			payload := blob.Data
			if real {
				// Real payloads from the oracle carry the manager header.
				var hdr manager.Header
				hdr, payload, err = manager.DecodeHeader(blob.Data)
				if err != nil {
					return manager.Result{}, err
				}
				_ = hdr
			}
			piece, decompSecs, err = b.oracle.Decompress(nil, s.attr, cdc, payload, nil, s.hdr)
			if err != nil {
				return manager.Result{}, err
			}
		} else if real {
			piece = blob.Data
		}
		t += decompSecs
		res.CodecTime += decompSecs
		res.IOTime += ioSecs
		res.SubResults = append(res.SubResults, manager.SubResult{
			Tier: s.tier, Codec: s.hdr.Codec, OrigLen: s.hdr.Length,
			Stored: blob.Size, CodecTime: decompSecs, IOTime: ioSecs,
		})
		if real && piece != nil {
			copy(res.Data[s.hdr.Offset:], piece)
		}
	}
	res.End = t
	return res, nil
}

// Delete removes a task and releases both the physical blobs and the
// uncompressed reservations.
func (b *Baseline) Delete(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs, ok := b.tasks[key]
	if !ok {
		return fmt.Errorf("hermes: unknown task %q", key)
	}
	delete(b.tasks, key)
	for _, s := range subs {
		if err := b.st.Delete(s.key); err != nil {
			return err
		}
		b.reserved[s.tier] -= s.hdr.Length
	}
	return nil
}

// Tasks reports the number of live tasks.
func (b *Baseline) Tasks() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.tasks)
}

// Drain trickles buffered pieces one tier down during an idle window —
// Hermes's asynchronous flushing. Both the physical blob and the
// uncompressed reservation move, so the freed budget is reusable by the
// next burst. Returns the (compressed) bytes moved.
func (b *Baseline) Drain(now, window float64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	deadline := now + window
	timeline := now
	var moved int64
	nTiers := b.st.Hierarchy().Len()
	for _, key := range b.order {
		subs, ok := b.tasks[key]
		if !ok {
			continue
		}
		for i := range subs {
			s := &subs[i]
			if s.tier >= nTiers-1 || timeline >= deadline {
				continue
			}
			end, err := b.st.Move(timeline, s.key, s.tier+1)
			if err != nil {
				continue
			}
			timeline = end
			b.reserved[s.tier] -= s.hdr.Length
			s.tier++
			b.reserved[s.tier] += s.hdr.Length
			moved += s.stored
		}
		if timeline >= deadline {
			break
		}
	}
	return moved
}

func errorsIsNoCapacity(err error) bool {
	return errors.Is(err, store.ErrNoCapacity)
}
