package codec

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/bufpool"
)

// lzmaCodec is a from-scratch mini-LZMA: LZ77 over a 1 MiB window with
// deep hash chains and lazy matching, entropy-coded by the adaptive binary
// range coder with context modeling (literal trees keyed by the previous
// byte's high bits, slot-coded distances). It occupies the paper's
// "best ratio, slowest" corner together with bsc.
//
// Stream layout: range-coded sequence of
//
//	isMatch bit (context: last op) ->
//	  0: literal (8-bit tree, ctx = prev byte >> 5)
//	  1: length (8-bit tree, value = len - lzmaMinMatch, max 255) then
//	     distance slot (6-bit tree) + direct extra bits
//
// The decoder stops after producing srcLen bytes, so no end marker is
// needed.
type lzmaCodec struct{}

func (lzmaCodec) Name() string { return "lzma" }
func (lzmaCodec) ID() ID       { return LZMA }

const (
	lzmaWindow     = 1 << 20
	lzmaHashLog    = 17
	lzmaChainDepth = 48
	lzmaMinMatch   = 4
	lzmaMaxMatch   = lzmaMinMatch + 255
	lzmaNumSlots   = 42 // covers distances beyond the 1 MiB window
	lzmaLitCtx     = 8

	// Probability-slab layout: literal trees, then length tree, then slot
	// tree. isMatch stays a stack pair.
	lzmaLitOff   = 0
	lzmaLenOff   = lzmaLitCtx * 256
	lzmaSlotOff  = lzmaLenOff + 256
	lzmaNumProbs = lzmaSlotOff + 64
)

// lzmaProbs is a view over the Scratch probability slab. The struct itself
// is a stack value; only the slab is (re)used memory.
type lzmaProbs struct {
	isMatch [2]uint16
	lit     []uint16 // lzmaLitCtx contexts x 256-entry trees
	length  []uint16 // one 256-entry tree
	slot    []uint16 // one 64-entry tree
}

func lzmaProbsFrom(s *bufpool.Scratch) lzmaProbs {
	slab := bufpool.GrowU16(&s.Probs, lzmaNumProbs)
	initProbs(slab)
	return lzmaProbs{
		isMatch: [2]uint16{rcProbInit, rcProbInit},
		lit:     slab[lzmaLitOff:lzmaLenOff],
		length:  slab[lzmaLenOff:lzmaSlotOff],
		slot:    slab[lzmaSlotOff:lzmaNumProbs],
	}
}

func lzmaHashU32(v uint32) uint32 { return (v * 2654435761) >> (32 - lzmaHashLog) }

func lzmaInsert(src []byte, head, prev []int32, i int) {
	if i+4 > len(src) {
		return
	}
	h := lzmaHashU32(binary.LittleEndian.Uint32(src[i:]))
	prev[i] = head[h]
	head[h] = int32(i)
}

func lzmaFind(src []byte, head, prev []int32, i int) (length, dist int) {
	if i+4 > len(src) {
		return 0, 0
	}
	v := binary.LittleEndian.Uint32(src[i:])
	cand := head[lzmaHashU32(v)]
	maxMatch := len(src) - i
	if maxMatch > lzmaMaxMatch {
		maxMatch = lzmaMaxMatch
	}
	for depth := 0; depth < lzmaChainDepth && cand >= 0 && i-int(cand) <= lzmaWindow; depth++ {
		c := int(cand)
		cand = prev[c]
		if binary.LittleEndian.Uint32(src[c:]) != v {
			continue
		}
		mlen := lzExtendMatch(src, c, i, 4, maxMatch)
		if mlen > length {
			length, dist = mlen, i-c
		}
	}
	return length, dist
}

func (e *rcEncoder) lzmaEmitLiteral(p *lzmaProbs, src []byte, i, state int) {
	e.encodeBit(&p.isMatch[state], 0)
	ctx := 0
	if i > 0 {
		ctx = int(src[i-1] >> 5)
	}
	e.encodeTree(p.lit[ctx*256:(ctx+1)*256], uint32(src[i]), 8)
}

func (c lzmaCodec) Compress(dst, src []byte) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.CompressScratch(s, dst, src)
}

func (c lzmaCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.DecompressScratch(s, dst, src, srcLen)
}

func (lzmaCodec) CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error) {
	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(src)))
	if len(src) == 0 {
		return dst, nil
	}

	var e rcEncoder
	e.init(dst)
	p := lzmaProbsFrom(s)

	head := bufpool.GrowI32(&s.Head, 1<<lzmaHashLog)
	for i := range head {
		head[i] = -1
	}
	prev := bufpool.GrowI32(&s.Prev, len(src))

	state := 0 // 0 = after literal, 1 = after match
	i := 0
	for i < len(src) {
		length, dist := lzmaFind(src, head, prev, i)
		if length >= lzmaMinMatch && i+1 < len(src) {
			// Lazy one-step lookahead.
			l2, _ := lzmaFind(src, head, prev, i+1)
			if l2 > length+1 {
				lzmaInsert(src, head, prev, i)
				e.lzmaEmitLiteral(&p, src, i, state)
				state = 0
				i++
				continue
			}
			_ = dist
		}
		if length < lzmaMinMatch {
			lzmaInsert(src, head, prev, i)
			e.lzmaEmitLiteral(&p, src, i, state)
			state = 0
			i++
			continue
		}
		e.encodeBit(&p.isMatch[state], 1)
		e.encodeTree(p.length, uint32(length-lzmaMinMatch), 8)
		slot, extra, ebits := slotFor(dist, 1)
		e.encodeTree(p.slot, uint32(slot), 6)
		if ebits > 0 {
			e.encodeDirect(uint32(extra), uint(ebits))
		}
		end := i + length
		for j := i; j < end && j < len(src); j += 2 {
			lzmaInsert(src, head, prev, j)
		}
		i = end
		state = 1
	}
	return e.flush(), nil
}

func (lzmaCodec) DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: lzma truncated header", ErrCorrupt)
	}
	rawLen := int(binary.LittleEndian.Uint32(src))
	if rawLen != srcLen {
		return nil, fmt.Errorf("%w: lzma header %d != %d", ErrCorrupt, rawLen, srcLen)
	}
	src = src[4:]
	if rawLen == 0 {
		return dst, nil
	}
	var d rcDecoder
	d.init(src)
	p := lzmaProbsFrom(s)
	base := len(dst)
	state := 0
	for len(dst)-base < rawLen {
		if d.decodeBit(&p.isMatch[state]) == 0 {
			ctx := 0
			if len(dst) > base {
				ctx = int(dst[len(dst)-1] >> 5)
			}
			dst = append(dst, byte(d.decodeTree(p.lit[ctx*256:(ctx+1)*256], 8)))
			state = 0
			continue
		}
		length := int(d.decodeTree(p.length, 8)) + lzmaMinMatch
		slot := int(d.decodeTree(p.slot, 6))
		ebits := slot >> 1
		extra := 0
		if ebits > 0 {
			extra = int(d.decodeDirect(uint(ebits)))
		}
		dist := slotBase(slot, 1) + extra
		var err error
		dst, err = lzCopyMatch(dst, base, dist, length, "lzma")
		if err != nil {
			return nil, err
		}
		state = 1
	}
	if d.overran() || len(dst)-base != rawLen {
		return nil, fmt.Errorf("%w: lzma stream", ErrCorrupt)
	}
	return dst, nil
}
