package codec

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/bufpool"
)

// lzoCodec is a byte-aligned LZ with hash-chain match search (depth-bounded),
// sitting between lz4 and brotli on the speed/ratio curve: the chains find
// better matches than single-probe tables, at a modest CPU cost.
//
// Stream grammar:
//
//	tag with bit0 == 0: literal run; count = tag>>1 + 1 (1..128)
//	tag with bit0 == 1: match; length = (tag>>1 & 0x3F) + lzoMinMatch,
//	  bit7 set means an extension byte follows (adds 0..255 to length);
//	  then a 2-byte LE offset (1..65535).
type lzoCodec struct{}

func (lzoCodec) Name() string { return "lzo" }
func (lzoCodec) ID() ID       { return LZO }

const (
	lzoHashLog    = 15
	lzoChainDepth = 8
	lzoMinMatch   = 4
	lzoMaxLenBase = 63 + lzoMinMatch
	lzoWindow     = 65535
)

func (c lzoCodec) Compress(dst, src []byte) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.CompressScratch(s, dst, src)
}

func (lzoCodec) DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	return lzoCodec{}.Decompress(dst, src, srcLen)
}

func (lzoCodec) CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error) {
	if len(src) < 8 {
		return lzoEmitLiterals(dst, src), nil
	}
	head := bufpool.GrowI32(&s.Head, 1<<lzoHashLog)
	for i := range head {
		head[i] = -1
	}
	prev := bufpool.GrowI32(&s.Prev, len(src))
	hash := func(v uint32) uint32 { return (v * 2654435761) >> (32 - lzoHashLog) }

	anchor := 0
	i := 0
	limit := len(src) - 8
	for i < limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash(v)
		bestLen, bestOff := 0, 0
		cand := head[h]
		for depth := 0; depth < lzoChainDepth && cand >= 0 && i-int(cand) <= lzoWindow; depth++ {
			c := int(cand)
			if binary.LittleEndian.Uint32(src[c:]) == v {
				mlen := lzExtendMatch(src, c, i, 4, len(src)-4-i)
				if mlen > bestLen {
					bestLen, bestOff = mlen, i-c
				}
			}
			cand = prev[c]
		}
		prev[i] = head[h]
		head[h] = int32(i)
		if bestLen < lzoMinMatch {
			i++
			continue
		}
		dst = lzoEmitLiterals(dst, src[anchor:i])
		dst = lzoEmitMatch(dst, bestOff, bestLen)
		// Insert positions inside the match (sparsely, every 2nd byte) so
		// later matches can reference them without paying full cost.
		end := i + bestLen
		if end > limit {
			end = limit
		}
		for j := i + 1; j < end; j += 2 {
			vh := hash(binary.LittleEndian.Uint32(src[j:]))
			prev[j] = head[vh]
			head[vh] = int32(j)
		}
		i += bestLen
		anchor = i
	}
	return lzoEmitLiterals(dst, src[anchor:]), nil
}

func lzoEmitLiterals(dst, lits []byte) []byte {
	for len(lits) > 0 {
		n := len(lits)
		if n > 128 {
			n = 128
		}
		dst = append(dst, byte(n-1)<<1)
		dst = append(dst, lits[:n]...)
		lits = lits[n:]
	}
	return dst
}

func lzoEmitMatch(dst []byte, offset, mlen int) []byte {
	for mlen >= lzoMinMatch {
		n := mlen
		max := lzoMaxLenBase + 255
		if n > max {
			n = max
			if mlen-n > 0 && mlen-n < lzoMinMatch {
				n = mlen - lzoMinMatch
			}
		}
		base := n
		ext := -1
		if base > lzoMaxLenBase {
			ext = base - lzoMaxLenBase
			base = lzoMaxLenBase
		}
		tag := byte((base-lzoMinMatch)<<1) | 1
		if ext >= 0 {
			tag |= 0x80
			// bit7 doubles as both length-bit 6 and the extension flag;
			// keep them disjoint: base-lzoMinMatch <= 63 occupies bits 1..6.
		}
		dst = append(dst, tag)
		if ext >= 0 {
			dst = append(dst, byte(ext))
		}
		dst = append(dst, byte(offset), byte(offset>>8))
		mlen -= n
	}
	return dst
}

func (lzoCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		if tag&1 == 0 {
			n := int(tag>>1) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: lzo literals overrun", ErrCorrupt)
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		mlen := int(tag>>1&0x3F) + lzoMinMatch
		if tag&0x80 != 0 {
			if i >= len(src) {
				return nil, fmt.Errorf("%w: lzo truncated length ext", ErrCorrupt)
			}
			mlen += int(src[i])
			i++
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: lzo truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		var err error
		dst, err = lzCopyMatch(dst, base, offset, mlen, "lzo")
		if err != nil {
			return nil, err
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: lzo produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}
