package codec

import "fmt"

// rleCodec implements PackBits-style run-length encoding. It is the
// cheapest non-trivial codec in the pool: near-memcpy speed, useful only
// on data with long byte runs (zero-padded records, sparse matrices).
//
// Stream grammar: a control byte n followed by payload.
//
//	n in [0,127]   -> copy the next n+1 literal bytes
//	n in [129,255] -> repeat the next byte 257-n times (runs of 2..128)
//	n == 128       -> reserved (never emitted)
type rleCodec struct{}

func (rleCodec) Name() string { return "rle" }
func (rleCodec) ID() ID       { return RLE }

func (rleCodec) Compress(dst, src []byte) ([]byte, error) {
	i := 0
	for i < len(src) {
		// Measure the run starting at i.
		run := 1
		for i+run < len(src) && run < 128 && src[i+run] == src[i] {
			run++
		}
		if run >= 2 {
			dst = append(dst, byte(257-run), src[i])
			i += run
			continue
		}
		// Collect literals until the next run of >= 3 (emitting a run of 2
		// as a run costs the same as literals, so require 3 to switch).
		start := i
		i++
		for i < len(src) && i-start < 128 {
			if i+2 < len(src) && src[i] == src[i+1] && src[i] == src[i+2] {
				break
			}
			i++
		}
		dst = append(dst, byte(i-start-1))
		dst = append(dst, src[start:i]...)
	}
	return dst, nil
}

func (rleCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		n := src[i]
		i++
		switch {
		case n <= 127:
			lit := int(n) + 1
			if i+lit > len(src) {
				return nil, fmt.Errorf("%w: rle literal overruns input", ErrCorrupt)
			}
			dst = append(dst, src[i:i+lit]...)
			i += lit
		case n >= 129:
			if i >= len(src) {
				return nil, fmt.Errorf("%w: rle run missing byte", ErrCorrupt)
			}
			count := 257 - int(n)
			b := src[i]
			i++
			for k := 0; k < count; k++ {
				dst = append(dst, b)
			}
		default:
			return nil, fmt.Errorf("%w: rle reserved control byte", ErrCorrupt)
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: rle produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}
