package codec

import (
	"encoding/binary"
	"fmt"
)

// quicklzCodec targets structured binary data (integer and float arrays):
// alongside a conventional hash-table LZ it detects runs of identical
// 32-bit words, the dominant redundancy in zero-filled or slowly-varying
// numeric columns. This mirrors quickLZ's historical niche ("works best
// for integer data").
//
// Stream grammar:
//
//	0x00..0x7F           literal run of tag+1 bytes (1..128)
//	0x80..0xBF           match: len = (tag & 0x3F) + 4, 2-byte LE offset
//	0xC0..0xFF           word run: repeat the previous 4 output bytes
//	                     (tag & 0x3F) + 1 times (4..256 bytes)
type quicklzCodec struct{}

func (quicklzCodec) Name() string { return "quicklz" }
func (quicklzCodec) ID() ID       { return QuickLZ }

const (
	qlzHashLog   = 14
	qlzMinMatch  = 4
	qlzMaxMatch  = 0x3F + qlzMinMatch
	qlzWindow    = 65535
	qlzMaxWordRe = 0x3F + 1
)

func (quicklzCodec) Compress(dst, src []byte) ([]byte, error) {
	if len(src) < 12 {
		return qlzEmitLiterals(dst, src), nil
	}
	var table [1 << qlzHashLog]int32 // stack: no per-call allocation
	for i := range table {
		table[i] = -1
	}
	hash := func(v uint32) uint32 { return (v * 2654435761) >> (32 - qlzHashLog) }

	anchor := 0
	i := 4 // word-run detection needs 4 bytes of history
	limit := len(src) - 8
	for i < limit {
		v := binary.LittleEndian.Uint32(src[i:])
		// Word-run: current word equals the previous word.
		if v == binary.LittleEndian.Uint32(src[i-4:]) {
			words := 1
			for i+4*(words+1) <= len(src) && words < qlzMaxWordRe &&
				binary.LittleEndian.Uint32(src[i+4*words:]) == v {
				words++
			}
			dst = qlzEmitLiterals(dst, src[anchor:i])
			dst = append(dst, 0xC0|byte(words-1))
			i += 4 * words
			anchor = i
			continue
		}
		h := hash(v)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= qlzWindow && binary.LittleEndian.Uint32(src[cand:]) == v {
			maxMatch := len(src) - 4 - i
			if maxMatch > qlzMaxMatch {
				maxMatch = qlzMaxMatch
			}
			mlen := lzExtendMatch(src, int(cand), i, 4, maxMatch)
			dst = qlzEmitLiterals(dst, src[anchor:i])
			off := i - int(cand)
			dst = append(dst, 0x80|byte(mlen-qlzMinMatch), byte(off), byte(off>>8))
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	return qlzEmitLiterals(dst, src[anchor:]), nil
}

func qlzEmitLiterals(dst, lits []byte) []byte {
	for len(lits) > 0 {
		n := len(lits)
		if n > 128 {
			n = 128
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, lits[:n]...)
		lits = lits[n:]
	}
	return dst
}

func (quicklzCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		switch {
		case tag <= 0x7F:
			n := int(tag) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: quicklz literals overrun", ErrCorrupt)
			}
			dst = append(dst, src[i:i+n]...)
			i += n
		case tag <= 0xBF:
			if i+2 > len(src) {
				return nil, fmt.Errorf("%w: quicklz truncated offset", ErrCorrupt)
			}
			mlen := int(tag&0x3F) + qlzMinMatch
			offset := int(src[i]) | int(src[i+1])<<8
			i += 2
			var err error
			dst, err = lzCopyMatch(dst, base, offset, mlen, "quicklz")
			if err != nil {
				return nil, err
			}
		default:
			words := int(tag&0x3F) + 1
			if len(dst)-base < 4 {
				return nil, fmt.Errorf("%w: quicklz word run without history", ErrCorrupt)
			}
			var err error
			dst, err = lzCopyMatch(dst, base, 4, 4*words, "quicklz")
			if err != nil {
				return nil, err
			}
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: quicklz produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}
