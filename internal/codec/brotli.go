package codec

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/bits"
	"hcompress/internal/bufpool"
)

// brotliCodec is the pool's medium-speed / medium-ratio codec: LZSS over a
// 128 KiB window with depth-bounded hash chains and one-step-lazy matching,
// entropy-coded with two canonical Huffman tables (literal+length alphabet
// and distance alphabet), DEFLATE-style slot+extra-bits integer coding.
// It stands in for Brotli's "light" qualities in the paper's Fig. 1.
//
// Block format (blocks of brBlockSize):
//
//	u32 LE rawLen, u32 LE compLen; compLen == rawLen means stored raw.
//	Payload: nibble-packed code lengths for the 280-symbol literal/length
//	alphabet (140 bytes) and the 36-symbol distance alphabet (18 bytes),
//	then the LSB-first bitstream. Symbols 0..255 are literals; 256+slot
//	begins a match (slot extra bits, then a distance slot + extra bits).
type brotliCodec struct{}

func (brotliCodec) Name() string { return "brotli" }
func (brotliCodec) ID() ID       { return Brotli }

const (
	brBlockSize  = 1 << 18
	brWindow     = 1 << 17
	brHashLog    = 16
	brChainDepth = 16
	brMinMatch   = 4
	brNumLenSlot = 24
	brNumDstSlot = 36
	brAlphabet   = 256 + brNumLenSlot
	brMaxCodeLen = 12
)

// Slot coding: slot s spans size 1<<(s>>1) values, so extra-bit counts run
// 0,0,1,1,2,2,... Match lengths start at brMinMatch, distances at 1.
func slotFor(v, base int) (slot, extra, ebits int) {
	v -= base
	slot = 0
	for size := 1; v >= size; slot++ {
		v -= size
		size = 1 << ((slot + 1) >> 1)
	}
	return slot, v, slot >> 1
}

func slotBase(slot, base int) int {
	for s := 0; s < slot; s++ {
		base += 1 << (s >> 1)
	}
	return base
}

func (c brotliCodec) Compress(dst, src []byte) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.CompressScratch(s, dst, src)
}

func (c brotliCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	// Decompression uses only stack tables, but route through the scratch
	// path for symmetry with the interface contract.
	return c.DecompressScratch(nil, dst, src, srcLen)
}

func (brotliCodec) CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error) {
	for len(src) > 0 {
		n := len(src)
		if n > brBlockSize {
			n = brBlockSize
		}
		dst = brCompressBlock(s, dst, src[:n])
		src = src[n:]
	}
	return dst, nil
}

// Tokens encode a literal (value < 256) or a match:
// bit 63 set, length in bits 32..46, distance in bits 0..31. They live in
// the Scratch's uint64 token buffer.
func brMatchToken(length, dist int) uint64 {
	return 1<<63 | uint64(length)<<32 | uint64(dist)
}

func brCompressBlock(s *bufpool.Scratch, dst, src []byte) []byte {
	tokens := brParse(s, src)

	var litFreq [brAlphabet]int
	var dstFreq [brNumDstSlot]int
	for _, t := range tokens {
		if t < 256 {
			litFreq[t]++
			continue
		}
		length := int(t>>32) & 0x7FFF
		dist := int(uint32(t))
		ls, _, _ := slotFor(length, brMinMatch)
		ds, _, _ := slotFor(dist, 1)
		litFreq[256+ls]++
		dstFreq[ds]++
	}
	var litLens [brAlphabet]uint8
	var dstLens [brNumDstSlot]uint8
	buildCodeLengths(litLens[:], litFreq[:], brMaxCodeLen)
	buildCodeLengths(dstLens[:], dstFreq[:], brMaxCodeLen)
	var litCodes [brAlphabet]uint32
	var dstCodes [brNumDstSlot]uint32
	canonicalCodes(litCodes[:], litLens[:])
	canonicalCodes(dstCodes[:], dstLens[:])

	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(src)))
	payloadStart := len(dst)

	for i := 0; i < brAlphabet; i += 2 {
		dst = append(dst, litLens[i]|litLens[i+1]<<4)
	}
	for i := 0; i < brNumDstSlot; i += 2 {
		dst = append(dst, dstLens[i]|dstLens[i+1]<<4)
	}
	var w bits.Writer
	w.Reset(dst)
	for _, t := range tokens {
		if t < 256 {
			w.WriteBits(uint64(litCodes[t]), uint(litLens[t]))
			continue
		}
		length := int(t>>32) & 0x7FFF
		dist := int(uint32(t))
		ls, le, leb := slotFor(length, brMinMatch)
		w.WriteBits(uint64(litCodes[256+ls]), uint(litLens[256+ls]))
		w.WriteBits(uint64(le), uint(leb))
		ds, de, deb := slotFor(dist, 1)
		w.WriteBits(uint64(dstCodes[ds]), uint(dstLens[ds]))
		w.WriteBits(uint64(de), uint(deb))
	}
	dst = w.Bytes()

	if len(dst)-payloadStart >= len(src) {
		dst = append(dst[:payloadStart], src...)
		binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(src)))
		return dst
	}
	binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(dst)-payloadStart))
	return dst
}

func brHashU32(v uint32) uint32 { return (v * 2654435761) >> (32 - brHashLog) }

func brInsert(src []byte, head, prev []int32, i int) {
	h := brHashU32(binary.LittleEndian.Uint32(src[i:]))
	prev[i] = head[h]
	head[h] = int32(i)
}

func brFind(src []byte, head, prev []int32, i int) (length, dist int) {
	v := binary.LittleEndian.Uint32(src[i:])
	cand := head[brHashU32(v)]
	maxMatch := len(src) - 4 - i
	if maxMatch > 8190 {
		maxMatch = 8190
	}
	for depth := 0; depth < brChainDepth && cand >= 0 && i-int(cand) <= brWindow; depth++ {
		c := int(cand)
		cand = prev[c]
		if binary.LittleEndian.Uint32(src[c:]) != v {
			continue
		}
		mlen := lzExtendMatch(src, c, i, 4, maxMatch)
		if mlen > length {
			length, dist = mlen, i-c
		}
	}
	return length, dist
}

// brParse tokenizes src with hash chains and one-step lazy matching into
// the Scratch token buffer.
func brParse(s *bufpool.Scratch, src []byte) []uint64 {
	tokens := s.Tokens[:0]
	if len(src) < 12 {
		for _, b := range src {
			tokens = append(tokens, uint64(b))
		}
		s.Tokens = tokens
		return tokens
	}
	head := bufpool.GrowI32(&s.Head, 1<<brHashLog)
	for i := range head {
		head[i] = -1
	}
	prev := bufpool.GrowI32(&s.Prev, len(src))

	i := 0
	limit := len(src) - 8
	for i < limit {
		length, dist := brFind(src, head, prev, i)
		brInsert(src, head, prev, i)
		if length < brMinMatch {
			tokens = append(tokens, uint64(src[i]))
			i++
			continue
		}
		// Lazy: a longer match one byte later wins.
		if i+1 < limit {
			l2, d2 := brFind(src, head, prev, i+1)
			if l2 > length+1 {
				tokens = append(tokens, uint64(src[i]))
				i++
				brInsert(src, head, prev, i)
				length, dist = l2, d2
			}
		}
		tokens = append(tokens, brMatchToken(length, dist))
		end := i + length
		if end > limit {
			end = limit
		}
		for j := i + 1; j < end; j += 3 {
			brInsert(src, head, prev, j)
		}
		i += length
	}
	for ; i < len(src); i++ {
		tokens = append(tokens, uint64(src[i]))
	}
	s.Tokens = tokens
	return tokens
}

func (brotliCodec) DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: brotli truncated block header", ErrCorrupt)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		compLen := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if compLen > len(src) || rawLen > brBlockSize {
			return nil, fmt.Errorf("%w: brotli block lengths", ErrCorrupt)
		}
		var err error
		dst, err = brDecompressBlock(dst, src[:compLen], rawLen, base)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: brotli produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

func brDecompressBlock(dst, payload []byte, rawLen, base int) ([]byte, error) {
	if len(payload) == rawLen {
		return append(dst, payload...), nil
	}
	const hdrLen = brAlphabet/2 + brNumDstSlot/2
	if len(payload) < hdrLen {
		return nil, fmt.Errorf("%w: brotli payload too short", ErrCorrupt)
	}
	var litLens [brAlphabet]uint8
	for i := 0; i < brAlphabet/2; i++ {
		litLens[2*i] = payload[i] & 0x0F
		litLens[2*i+1] = payload[i] >> 4
	}
	var dstLens [brNumDstSlot]uint8
	off := brAlphabet / 2
	for i := 0; i < brNumDstSlot/2; i++ {
		dstLens[2*i] = payload[off+i] & 0x0F
		dstLens[2*i+1] = payload[off+i] >> 4
	}
	var litTable [1 << brMaxCodeLen]uint32
	if err := buildPairDecodeTable(litTable[:], litLens[:], brMaxCodeLen); err != nil {
		return nil, err
	}
	var dstTable [1 << brMaxCodeLen]uint32
	if err := buildDecodeTable(dstTable[:], dstLens[:], brMaxCodeLen); err != nil {
		return nil, err
	}
	// Inline bitstream (same LSB-first layout as bits.Reader): a match
	// consumes at most 12+12+12+17 = 53 bits, so one bulk refill at the
	// top of the loop covers every path through an iteration.
	bs := payload[hdrLen:]
	var acc uint64
	var nacc uint
	pos := 0
	produced := 0
	for produced < rawLen {
		if nacc < 53 {
			acc &= 1<<nacc - 1
			if pos+8 <= len(bs) {
				acc |= binary.LittleEndian.Uint64(bs[pos:]) << nacc
				pos += int((63 - nacc) >> 3)
				nacc |= 56
			} else {
				for nacc <= 56 && pos < len(bs) {
					acc |= uint64(bs[pos]) << nacc
					pos++
					nacc += 8
				}
			}
		}
		e := litTable[acc&(1<<brMaxCodeLen-1)]
		if e&huffPairFlag != 0 && produced+2 <= rawLen {
			// Two literals resolved by a single table probe.
			l := uint(e & 31)
			if nacc >= l {
				acc >>= l
				nacc -= l
				dst = append(dst, byte(e>>6), byte(e>>16))
				produced += 2
				continue
			}
		}
		l := uint(e >> 26)
		if l == 0 || nacc < l {
			return nil, fmt.Errorf("%w: brotli invalid literal code", ErrCorrupt)
		}
		acc >>= l
		nacc -= l
		sym := int(e>>6) & 0x3FF
		if sym < 256 {
			dst = append(dst, byte(sym))
			produced++
			continue
		}
		slot := sym - 256
		eb := uint(slot >> 1)
		if nacc < eb {
			return nil, fmt.Errorf("%w: brotli truncated length extra", ErrCorrupt)
		}
		extra := acc & (1<<eb - 1)
		acc >>= eb
		nacc -= eb
		length := slotBase(slot, brMinMatch) + int(extra)

		de := dstTable[acc&(1<<brMaxCodeLen-1)]
		dl := uint(de & 0x0F)
		if dl == 0 || nacc < dl {
			return nil, fmt.Errorf("%w: brotli invalid distance code", ErrCorrupt)
		}
		acc >>= dl
		nacc -= dl
		dslot := int(de >> 4)
		deb := uint(dslot >> 1)
		if nacc < deb {
			return nil, fmt.Errorf("%w: brotli truncated distance extra", ErrCorrupt)
		}
		dextra := acc & (1<<deb - 1)
		acc >>= deb
		nacc -= deb
		dist := slotBase(dslot, 1) + int(dextra)

		var err error
		dst, err = lzCopyMatch(dst, base, dist, length, "brotli")
		if err != nil {
			return nil, err
		}
		produced += length
	}
	if produced != rawLen {
		return nil, fmt.Errorf("%w: brotli block overproduced", ErrCorrupt)
	}
	return dst, nil
}
