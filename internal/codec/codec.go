// Package codec implements HCompress's Compression Library Pool (CLP):
// a suite of twelve compression codecs behind one interface, spanning the
// speed-versus-ratio spectrum the HCDP engine selects from.
//
// The names mirror the libraries listed in the paper (bzip2, zlib, huffman,
// brotli, bsc, lzma, lz4, lzo, pithy, snappy, quicklz) plus the mandatory
// "none" choice (c = 0 in the optimization). Every codec except zlib is
// implemented from scratch in this package; zlib wraps the standard
// library's DEFLATE. See DESIGN.md §2 for the fidelity argument.
//
// All codecs are safe for concurrent use: compression state lives on the
// stack or in per-call buffers.
package codec

import (
	"errors"
	"fmt"
	"sort"

	"hcompress/internal/bufpool"
)

// ID identifies a codec in sub-task headers. IDs are stable on-disk values;
// never renumber them.
type ID uint8

// Codec identifiers. None is the "no compression" choice that the HCDP
// engine must always be allowed to pick.
const (
	None ID = iota
	RLE
	Huffman
	LZ4
	LZO
	Pithy
	Snappy
	QuickLZ
	Brotli
	Zlib
	Bzip2
	BSC
	LZMA
	numIDs
)

// ErrCorrupt is returned when a compressed payload fails validation.
var ErrCorrupt = errors.New("codec: corrupt compressed data")

// ErrUnknownCodec is returned when a header references an unregistered ID.
var ErrUnknownCodec = errors.New("codec: unknown codec id")

// Codec is the Compression Library Interface: a uniform facade over one
// compression algorithm.
type Codec interface {
	// Name returns the paper-facing library name (e.g. "snappy").
	Name() string
	// ID returns the stable header identifier.
	ID() ID
	// Compress appends the compressed form of src to dst and returns the
	// extended slice. Implementations must be deterministic.
	Compress(dst, src []byte) ([]byte, error)
	// Decompress appends the decompressed form of src to dst. srcLen is
	// the original (uncompressed) length recorded in the sub-task header;
	// implementations use it to size buffers and to validate output.
	Decompress(dst, src []byte, srcLen int) ([]byte, error)
}

// ScratchCodec is implemented by codecs whose work buffers (suffix
// arrays, hash chains, probability tables, token streams) can live in a
// caller-owned bufpool.Scratch instead of per-call allocations. The
// Compression Manager keeps one Scratch per fan-out worker and routes
// every call through CompressWith/DecompressWith; the plain Codec
// methods remain for external callers and borrow a pooled Scratch.
//
// Implementations must be deterministic and leave no state in the
// Scratch beyond buffer capacity: output is byte-identical whether a
// Scratch is fresh, reused, or shared across different codecs.
type ScratchCodec interface {
	CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error)
	DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error)
}

// CompressWith compresses src with c, reusing s's work buffers when the
// codec supports it. s may be nil (a pooled Scratch is borrowed); dst
// follows the same append contract as Codec.Compress.
func CompressWith(s *bufpool.Scratch, c Codec, dst, src []byte) ([]byte, error) {
	sc, ok := c.(ScratchCodec)
	if !ok {
		return c.Compress(dst, src)
	}
	if s == nil {
		s = bufpool.GetScratch()
		defer bufpool.PutScratch(s)
	}
	return sc.CompressScratch(s, dst, src)
}

// DecompressWith is CompressWith's inverse.
func DecompressWith(s *bufpool.Scratch, c Codec, dst, src []byte, srcLen int) ([]byte, error) {
	sc, ok := c.(ScratchCodec)
	if !ok {
		return c.Decompress(dst, src, srcLen)
	}
	if s == nil {
		s = bufpool.GetScratch()
		defer bufpool.PutScratch(s)
	}
	return sc.DecompressScratch(s, dst, src, srcLen)
}

var registry [numIDs]Codec

func register(c Codec) {
	if registry[c.ID()] != nil {
		panic(fmt.Sprintf("codec: duplicate registration for id %d", c.ID()))
	}
	registry[c.ID()] = c
}

func init() {
	register(noneCodec{})
	register(rleCodec{})
	register(huffmanCodec{})
	register(lz4Codec{})
	register(lzoCodec{})
	register(pithyCodec{})
	register(snappyCodec{})
	register(quicklzCodec{})
	register(brotliCodec{})
	register(zlibCodec{})
	register(bzip2Codec{})
	register(bscCodec{})
	register(lzmaCodec{})
}

// ByID returns the codec registered under id, or ErrUnknownCodec.
// This is the Compression Library Factory from the paper: O(1) dispatch
// from the constant stored in sub-task metadata to an implementation.
func ByID(id ID) (Codec, error) {
	if int(id) >= len(registry) || registry[id] == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCodec, id)
	}
	return registry[id], nil
}

// ByName returns the codec with the given library name.
func ByName(name string) (Codec, error) {
	for _, c := range registry {
		if c != nil && c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
}

// All returns every registered codec ordered by ID (None first).
func All() []Codec {
	out := make([]Codec, 0, len(registry))
	for _, c := range registry {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// Names returns the registered library names sorted alphabetically,
// excluding "none".
func Names() []string {
	var out []string
	for _, c := range registry {
		if c != nil && c.ID() != None {
			out = append(out, c.Name())
		}
	}
	sort.Strings(out)
	return out
}

// RoundTrip compresses then decompresses src with c and reports the
// compressed size. It is a convenience for the profiler and for tests.
func RoundTrip(c Codec, src []byte) (compressedLen int, err error) {
	comp, err := c.Compress(nil, src)
	if err != nil {
		return 0, err
	}
	dec, err := c.Decompress(nil, comp, len(src))
	if err != nil {
		return 0, err
	}
	if len(dec) != len(src) {
		return 0, fmt.Errorf("codec %s: round-trip length %d != %d", c.Name(), len(dec), len(src))
	}
	for i := range dec {
		if dec[i] != src[i] {
			return 0, fmt.Errorf("codec %s: round-trip mismatch at byte %d", c.Name(), i)
		}
	}
	return len(comp), nil
}

// noneCodec is the identity transform: choice c = 0 in the HCDP engine.
type noneCodec struct{}

func (noneCodec) Name() string { return "none" }
func (noneCodec) ID() ID       { return None }

func (noneCodec) Compress(dst, src []byte) ([]byte, error) {
	return append(dst, src...), nil
}

func (noneCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	if len(src) != srcLen {
		return nil, fmt.Errorf("%w: none payload %d != %d", ErrCorrupt, len(src), srcLen)
	}
	return append(dst, src...), nil
}
