package codec

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The golden corpus pins the compressed byte format of every codec: the
// speed pass rewrites hot loops under the invariant that compressed
// outputs stay byte-identical, and these checksums are the enforcement.
// Regenerate with
//
//	go test ./internal/codec -run TestGoldenCompressedOutputs -update-golden
//
// only for a deliberate, documented format change (codec IDs are on-disk
// stable; so are their streams).

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from this build's codecs")

// splitmix64 is the corpus RNG: unlike math/rand it is specified here, so
// golden inputs can never drift with the Go runtime.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (s *splitmix64) fill(buf []byte) {
	for i := 0; i+8 <= len(buf); i += 8 {
		v := s.next()
		for k := 0; k < 8; k++ {
			buf[i+k] = byte(v >> (8 * k))
		}
	}
	for i := len(buf) &^ 7; i < len(buf); i++ {
		buf[i] = byte(s.next())
	}
}

// goldenCorpus is the fixed multi-type corpus: the four data classes the
// bench harness measures (text, floats, incompressible, runs) plus shapes
// that cross block boundaries and stress the entropy coders.
func goldenCorpus() []struct {
	name string
	data []byte
} {
	var rng splitmix64 = 0x5EED

	// Text: natural-language-like with mild variation so matches exist at
	// many offsets but the stream is not one giant run.
	words := []string{
		"hierarchical", "data", "compression", "for", "multi", "tiered",
		"storage", "environments", "the", "profiler", "measures", "every",
		"codec", "on", "every", "class", "and", "hcdp", "selects", "by",
		"speed", "ratio", "tuples", "under", "capacity", "constraints",
	}
	var text bytes.Buffer
	for text.Len() < 1<<18 {
		w := words[rng.next()%uint64(len(words))]
		text.WriteString(w)
		if rng.next()%11 == 0 {
			text.WriteString(".\n")
		} else {
			text.WriteByte(' ')
		}
	}

	// Floats: little-endian float32 columns with a bounded exponent range
	// and noisy low mantissa bits, like simulation output. Bit patterns are
	// assembled arithmetically so no platform FP is involved.
	floats := make([]byte, 1<<18)
	for i := 0; i+4 <= len(floats); i += 4 {
		exp := uint32(120 + rng.next()%8) // tight exponent band
		mant := uint32(rng.next()) & 0x7FFFFF
		mant &^= 0x7FF // quantized: low bits often zero
		if rng.next()%4 == 0 {
			mant |= uint32(rng.next()) & 0x3FF // sometimes full noise
		}
		v := exp<<23 | mant
		if rng.next()%2 == 0 {
			v |= 1 << 31
		}
		floats[i] = byte(v)
		floats[i+1] = byte(v >> 8)
		floats[i+2] = byte(v >> 16)
		floats[i+3] = byte(v >> 24)
	}

	// Incompressible: raw RNG output.
	incompressible := make([]byte, 1<<17)
	rng.fill(incompressible)

	// Runs: byte runs with RNG-chosen lengths, RLE/MTF-friendly.
	runs := make([]byte, 0, 1<<17)
	for len(runs) < 1<<17 {
		b := byte(rng.next() % 17)
		n := int(rng.next()%512) + 1
		for k := 0; k < n; k++ {
			runs = append(runs, b)
		}
	}

	// Records: fixed-stride structured rows (the quicklz niche).
	records := make([]byte, 0, 1<<16)
	for i := 0; len(records) < 1<<16; i++ {
		records = append(records,
			0xDE, 0xAD, byte(i), byte(i>>8), 0, 0, 0, 0,
			byte(rng.next()), 1, 2, 3, byte(i), 0, 0, 0)
	}

	// Big: patterned data crossing every codec's block boundary (huffman
	// 128 KiB, brotli/bzip2 256 KiB, bsc 1 MiB).
	big := make([]byte, 1<<20+4096)
	for i := range big {
		big[i] = byte((i / 7) % 251)
	}

	zeros := make([]byte, 1<<16)
	cycle := make([]byte, 4096)
	for i := range cycle {
		cycle[i] = byte(i)
	}

	return []struct {
		name string
		data []byte
	}{
		{"text", text.Bytes()},
		{"floats", floats},
		{"incompressible", incompressible},
		{"runs", runs},
		{"records", records},
		{"big", big},
		{"zeros", zeros},
		{"cycle", cycle},
		{"empty", nil},
		{"one", []byte{0x42}},
	}
}

// fnv1a64 is the golden checksum (spelled out here so the pinned values
// are self-contained).
func fnv1a64(data []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

type goldenEntry struct {
	CompLen int    `json:"comp_len"`
	Sum     string `json:"fnv1a64"`
}

func goldenPath() string { return filepath.Join("testdata", "golden.json") }

func loadGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	var m map[string]goldenEntry
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	return m
}

// TestGoldenCompressedOutputs enforces that every codec's compressed
// output over the fixed corpus is byte-identical to the pinned pre-pass
// format, and that decompressing the pinned stream reproduces the input
// exactly.
func TestGoldenCompressedOutputs(t *testing.T) {
	corpus := goldenCorpus()
	got := map[string]goldenEntry{}
	for _, c := range All() {
		for _, in := range corpus {
			comp, err := c.Compress(nil, in.data)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", c.Name(), in.name, err)
			}
			key := c.Name() + "/" + in.name
			got[key] = goldenEntry{CompLen: len(comp), Sum: fmt.Sprintf("%016x", fnv1a64(comp))}

			dec, err := c.Decompress(nil, comp, len(in.data))
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), in.name, err)
			}
			if !bytes.Equal(dec, in.data) {
				t.Fatalf("%s/%s: round-trip mismatch (%d bytes, want %d)", c.Name(), in.name, len(dec), len(in.data))
			}
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath())
		return
	}
	want := loadGolden(t)
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from this build (codec removed?)", k)
			continue
		}
		if g != want[k] {
			t.Errorf("%s: compressed output changed: got len=%d sum=%s, want len=%d sum=%s",
				k, g.CompLen, g.Sum, want[k].CompLen, want[k].Sum)
		}
	}
	if len(got) != len(want) {
		t.Errorf("golden entry count %d != %d (new codec or corpus drift; regenerate deliberately)", len(got), len(want))
	}
}
