package codec

import (
	"bytes"
	"sort"
	"testing"

	"hcompress/internal/bufpool"
)

// sortedNames gives the corpus a deterministic iteration order (Go maps
// randomize theirs), which the reference-comparison below depends on.
func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// TestScratchReuseNoStateLeak interleaves every codec over ONE shared
// Scratch — compressing and decompressing different inputs back to back —
// and checks each result byte-for-byte against the plain Codec interface
// (which borrows a fresh-enough pooled Scratch per call). Any state a
// codec leaves behind beyond buffer capacity shows up as a diff.
func TestScratchReuseNoStateLeak(t *testing.T) {
	inputs := corpus(t)
	shared := &bufpool.Scratch{}

	// Reference outputs via the plain interface, computed first so the
	// shared Scratch sees a completely different call order.
	type ref struct {
		comp []byte
		name string
		in   []byte
	}
	var refs []ref
	names := sortedNames(inputs)
	for _, c := range All() {
		for _, name := range names {
			in := inputs[name]
			comp, err := c.Compress(nil, in)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			refs = append(refs, ref{comp: comp, name: c.Name() + "/" + name, in: in})
		}
	}

	// Round 1: compress everything through the shared Scratch, interleaved
	// across codecs, and demand byte-identical streams.
	i := 0
	for _, c := range All() {
		for _, name := range names {
			in := inputs[name]
			comp, err := CompressWith(shared, c, nil, in)
			if err != nil {
				t.Fatalf("%s/%s: scratch compress: %v", c.Name(), name, err)
			}
			want := refs[i].comp
			if refs[i].name != c.Name()+"/"+name {
				t.Fatalf("iteration order mismatch: %s vs %s", refs[i].name, c.Name()+"/"+name)
			}
			if !bytes.Equal(comp, want) {
				t.Errorf("%s/%s: scratch compress differs from plain compress", c.Name(), name)
			}
			i++
		}
	}

	// Round 2: decompress everything through the same shared Scratch.
	i = 0
	for _, c := range All() {
		for _, name := range names {
			in := inputs[name]
			dec, err := DecompressWith(shared, c, nil, refs[i].comp, len(in))
			if err != nil {
				t.Fatalf("%s/%s: scratch decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(dec, in) {
				t.Errorf("%s/%s: scratch decompress mismatch", c.Name(), name)
			}
			i++
		}
	}

	// Round 3: ping-pong compress/decompress pairs on the shared Scratch so
	// each codec's decode state runs right before another codec's encode.
	for _, c := range All() {
		for _, name := range names {
			in := inputs[name]
			comp, err := CompressWith(shared, c, nil, in)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			dec, err := DecompressWith(shared, c, nil, comp, len(in))
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			if !bytes.Equal(dec, in) {
				t.Errorf("%s/%s: interleaved round-trip mismatch", c.Name(), name)
			}
		}
	}
}

// TestScratchDstOverlap proves the manager's calling convention is safe:
// dst is the Scratch's own Comp/Dec buffer while the codec draws its work
// buffers from the same Scratch.
func TestScratchDstOverlap(t *testing.T) {
	inputs := corpus(t)
	s := &bufpool.Scratch{}
	for _, c := range All() {
		for _, name := range sortedNames(inputs) {
			in := inputs[name]
			dst := bufpool.GrowBytes(&s.Comp, 0)[:0]
			comp, err := CompressWith(s, c, dst, in)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			s.Comp = comp[:0]
			ddst := bufpool.GrowBytes(&s.Dec, 0)[:0]
			dec, err := DecompressWith(s, c, ddst, comp, len(in))
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			s.Dec = dec[:0]
			if !bytes.Equal(dec, in) {
				t.Errorf("%s/%s: round-trip through Scratch dst mismatch", c.Name(), name)
			}
		}
	}
}
