package codec

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/bufpool"
)

// bzip2Codec is the from-scratch block-sorting compressor: BWT (suffix
// array) -> move-to-front -> zero-run-length -> canonical Huffman. It is
// slow and achieves high ratios on text-like data, while — exactly as the
// paper observes for VPIC output — it can barely compress high-entropy
// float data, making it the codec the HCDP engine must learn to avoid.
//
// Block format (blocks of bz2BlockSize):
//
//	u32 LE rawLen, u32 LE ptr (0xFFFFFFFF = stored raw), u32 LE rleLen,
//	u32 LE compLen, then the huffman-framed payload of rleLen bytes.
type bzip2Codec struct{}

func (bzip2Codec) Name() string { return "bzip2" }
func (bzip2Codec) ID() ID       { return Bzip2 }

const (
	bz2BlockSize = 1 << 18
	bwtRawMarker = 0xFFFFFFFF
)

func (c bzip2Codec) Compress(dst, src []byte) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.CompressScratch(s, dst, src)
}

func (c bzip2Codec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.DecompressScratch(s, dst, src, srcLen)
}

func (bzip2Codec) CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error) {
	return bwtPipelineCompress(s, dst, src, bz2BlockSize, huffEntropy{})
}

func (bzip2Codec) DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	return bwtPipelineDecompress(s, dst, src, srcLen, bz2BlockSize, huffEntropy{}, "bzip2")
}

// entropyStage abstracts the final entropy coder of the BWT pipeline so
// bzip2 (Huffman) and bsc (adaptive range coder) share the block framing.
// Stages draw work buffers from s; they must not touch the Scratch fields
// the pipeline itself uses (BWT, MTF, RLE, LF, and the suffix-array set).
type entropyStage interface {
	encode(s *bufpool.Scratch, dst, src []byte) []byte
	decode(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error)
}

type huffEntropy struct{}

func (huffEntropy) encode(s *bufpool.Scratch, dst, src []byte) []byte {
	out, _ := huffmanCodec{}.Compress(dst, src) // never fails; stack tables only
	return out
}

func (huffEntropy) decode(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error) {
	return huffmanCodec{}.Decompress(dst, src, rawLen)
}

func bwtPipelineCompress(s *bufpool.Scratch, dst, src []byte, blockSize int, ent entropyStage) ([]byte, error) {
	for len(src) > 0 {
		n := len(src)
		if n > blockSize {
			n = blockSize
		}
		dst = bwtCompressBlock(s, dst, src[:n], ent)
		src = src[n:]
	}
	return dst, nil
}

func bwtCompressBlock(s *bufpool.Scratch, dst, block []byte, ent entropyStage) []byte {
	mtf, ptr := bwtForwardMTF(s, block) // fused BWT+MTF into s.BWT
	rle := rle0Encode(s, mtf)

	hdr := len(dst)
	dst = extendSlice(dst, 16)
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(block)))
	payloadStart := len(dst)
	dst = ent.encode(s, dst, rle)

	if len(dst)-payloadStart >= len(block) {
		dst = append(dst[:payloadStart], block...)
		binary.LittleEndian.PutUint32(dst[hdr+4:], bwtRawMarker)
		binary.LittleEndian.PutUint32(dst[hdr+8:], 0)
		binary.LittleEndian.PutUint32(dst[hdr+12:], uint32(len(block)))
		return dst
	}
	binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(ptr))
	binary.LittleEndian.PutUint32(dst[hdr+8:], uint32(len(rle)))
	binary.LittleEndian.PutUint32(dst[hdr+12:], uint32(len(dst)-payloadStart))
	return dst
}

func bwtPipelineDecompress(s *bufpool.Scratch, dst, src []byte, srcLen, blockSize int, ent entropyStage, name string) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 16 {
			return nil, fmt.Errorf("%w: %s truncated block header", ErrCorrupt, name)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		ptr := binary.LittleEndian.Uint32(src[4:])
		rleLen := int(binary.LittleEndian.Uint32(src[8:]))
		compLen := int(binary.LittleEndian.Uint32(src[12:]))
		src = src[16:]
		// rleLen is bounded by 2x the block: RLE0 expands a lone zero to two
		// bytes and never expands anything else. Guarding it keeps corrupt
		// headers from driving a huge scratch-buffer grow below.
		if compLen > len(src) || rawLen > blockSize || rleLen > 2*blockSize+8 {
			return nil, fmt.Errorf("%w: %s block lengths", ErrCorrupt, name)
		}
		if ptr == bwtRawMarker {
			if compLen != rawLen {
				return nil, fmt.Errorf("%w: %s raw block length", ErrCorrupt, name)
			}
			dst = append(dst, src[:compLen]...)
			src = src[compLen:]
			continue
		}
		rle, err := ent.decode(s, bufpool.GrowBytes(&s.RLE, rleLen)[:0], src[:compLen], rleLen)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
		mtf, err := rle0Decode(s, rle, rawLen)
		if err != nil {
			return nil, fmt.Errorf("%w: %s rle0", ErrCorrupt, name)
		}
		dst, err = bwtInverseMTF(s, dst, mtf, int(ptr))
		if err != nil {
			return nil, fmt.Errorf("%w: %s inverse bwt", ErrCorrupt, name)
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: %s produced %d bytes, want %d", ErrCorrupt, name, len(dst)-base, srcLen)
	}
	return dst, nil
}
