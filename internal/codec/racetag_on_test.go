//go:build race

package codec

// raceDetectorEnabled gates timing-based assertions: the race detector
// slows instrumented code by a large, uneven factor, so relative-speed
// floors are meaningless under it.
const raceDetectorEnabled = true
