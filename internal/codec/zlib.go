package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"hcompress/internal/bufpool"
)

// zlibCodec wraps the standard library's DEFLATE at maximum compression.
// It is the only codec in the pool not implemented from scratch (DEFLATE
// is in the Go standard library, which the reproduction is allowed to use)
// and plays the paper's "heavy, general-purpose" role: high ratio, slow
// compression, moderately fast decompression.
type zlibCodec struct{}

func (zlibCodec) Name() string { return "zlib" }
func (zlibCodec) ID() ID       { return Zlib }

// sliceWriter adapts the append-style dst contract to io.Writer so the
// flate writer streams straight into the caller's buffer with no
// intermediate bytes.Buffer + copy.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// zlibEnc bundles the expensive flate writer with its destination adapter
// so a pooled Get yields everything Compress needs without allocating.
type zlibEnc struct {
	sw sliceWriter
	w  *flate.Writer
}

var zlibEncPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestCompression)
		if err != nil {
			panic(err)
		}
		return &zlibEnc{w: w}
	},
}

// zlibDec pairs a reusable flate reader with the bytes.Reader it draws
// from; flate reader state is large, so pooling it matters as much as
// pooling the writer.
type zlibDec struct {
	br bytes.Reader
	r  io.ReadCloser
}

var zlibDecPool = sync.Pool{
	New: func() any {
		d := &zlibDec{}
		d.br.Reset(nil)
		d.r = flate.NewReader(&d.br)
		return d
	},
}

func (zlibCodec) Compress(dst, src []byte) ([]byte, error) {
	e := zlibEncPool.Get().(*zlibEnc)
	e.sw.b = dst
	e.w.Reset(&e.sw)
	if _, err := e.w.Write(src); err != nil {
		e.sw.b = nil
		zlibEncPool.Put(e)
		return nil, fmt.Errorf("zlib: %w", err)
	}
	if err := e.w.Close(); err != nil {
		e.sw.b = nil
		zlibEncPool.Put(e)
		return nil, fmt.Errorf("zlib: %w", err)
	}
	out := e.sw.b
	e.sw.b = nil // drop the reference so the pool doesn't pin caller buffers
	zlibEncPool.Put(e)
	return out, nil
}

func (zlibCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	d := zlibDecPool.Get().(*zlibDec)
	d.br.Reset(src)
	if err := d.r.(flate.Resetter).Reset(&d.br, nil); err != nil {
		zlibDecPool.Put(d)
		return nil, fmt.Errorf("zlib: %w", err)
	}
	base := len(dst)
	if cap(dst)-base < srcLen {
		// Size once from srcLen via the arena; the old backing array is the
		// caller's and stays theirs.
		grown := bufpool.Get(base + srcLen)
		copy(grown, dst[:base])
		dst = grown
	}
	dst = dst[:base+srcLen]
	if _, err := io.ReadFull(d.r, dst[base:]); err != nil {
		d.br.Reset(nil)
		zlibDecPool.Put(d)
		return nil, fmt.Errorf("%w: zlib: %v", ErrCorrupt, err)
	}
	// The stream must end exactly here.
	var one [1]byte
	n, _ := d.r.Read(one[:])
	d.br.Reset(nil)
	zlibDecPool.Put(d)
	if n != 0 {
		return nil, fmt.Errorf("%w: zlib trailing data", ErrCorrupt)
	}
	return dst, nil
}
