package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// zlibCodec wraps the standard library's DEFLATE at maximum compression.
// It is the only codec in the pool not implemented from scratch (DEFLATE
// is in the Go standard library, which the reproduction is allowed to use)
// and plays the paper's "heavy, general-purpose" role: high ratio, slow
// compression, moderately fast decompression.
type zlibCodec struct{}

func (zlibCodec) Name() string { return "zlib" }
func (zlibCodec) ID() ID       { return Zlib }

// Writers are expensive to construct (large internal state), so pool them.
var zlibWriterPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestCompression)
		if err != nil {
			panic(err)
		}
		return w
	},
}

func (zlibCodec) Compress(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w := zlibWriterPool.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(src); err != nil {
		zlibWriterPool.Put(w)
		return nil, fmt.Errorf("zlib: %w", err)
	}
	if err := w.Close(); err != nil {
		zlibWriterPool.Put(w)
		return nil, fmt.Errorf("zlib: %w", err)
	}
	zlibWriterPool.Put(w)
	return append(dst, buf.Bytes()...), nil
}

func (zlibCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	base := len(dst)
	if cap(dst)-len(dst) < srcLen {
		grown := make([]byte, len(dst), len(dst)+srcLen)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+srcLen]
	if _, err := io.ReadFull(r, dst[base:]); err != nil {
		return nil, fmt.Errorf("%w: zlib: %v", ErrCorrupt, err)
	}
	// The stream must end exactly here.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: zlib trailing data", ErrCorrupt)
	}
	return dst, nil
}
