package codec

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hcompress/internal/bufpool"
)

// corpus returns named inputs spanning the data classes the paper's Input
// Analyzer distinguishes, plus adversarial shapes.
func corpus(t testing.TB) map[string][]byte {
	rng := rand.New(rand.NewSource(1))
	c := map[string][]byte{
		"empty":      {},
		"one":        {0x42},
		"two-same":   {7, 7},
		"two-diff":   {7, 9},
		"zeros":      make([]byte, 4096),
		"text":       []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200)),
		"short-text": []byte("hello world"),
	}
	// Repetitive structured data.
	rep := make([]byte, 0, 8192)
	for i := 0; i < 512; i++ {
		rep = append(rep, []byte{0xDE, 0xAD, 0xBE, 0xEF, byte(i), 0, 0, 0, byte(i >> 4), 1, 2, 3, 4, 5, 6, 7}...)
	}
	c["records"] = rep
	// Random (incompressible).
	rnd := make([]byte, 8192)
	rng.Read(rnd)
	c["random"] = rnd
	// Integer array (little-endian, slowly varying).
	ints := make([]byte, 8192)
	for i := 0; i < len(ints); i += 4 {
		v := uint32(1000 + i/4 + rng.Intn(3))
		ints[i], ints[i+1], ints[i+2], ints[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	c["ints"] = ints
	// Float array (gaussian, like simulation output).
	floats := make([]byte, 8192)
	for i := 0; i < len(floats); i += 4 {
		f := float32(rng.NormFloat64())
		v := math.Float32bits(f)
		floats[i], floats[i+1], floats[i+2], floats[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	c["floats"] = floats
	// Runs (RLE-friendly).
	runs := make([]byte, 0, 6000)
	for i := 0; i < 60; i++ {
		for j := 0; j < 100; j++ {
			runs = append(runs, byte(i))
		}
	}
	c["runs"] = runs
	// Single repeated byte, long.
	c["aaaa"] = bytes.Repeat([]byte{'a'}, 70000)
	// All 256 byte values cycling (worst case for MTF).
	cyc := make([]byte, 4096)
	for i := range cyc {
		cyc[i] = byte(i)
	}
	c["cycle"] = cyc
	// Crosses block boundaries of the block codecs.
	big := make([]byte, 300_000)
	for i := range big {
		big[i] = byte((i / 7) % 251)
	}
	c["big"] = big
	return c
}

func TestRoundTripAllCodecs(t *testing.T) {
	inputs := corpus(t)
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for name, in := range inputs {
				comp, err := c.Compress(nil, in)
				if err != nil {
					t.Fatalf("%s/%s: compress: %v", c.Name(), name, err)
				}
				dec, err := c.Decompress(nil, comp, len(in))
				if err != nil {
					t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
				}
				if !bytes.Equal(dec, in) {
					t.Fatalf("%s/%s: round-trip mismatch (got %d bytes, want %d)", c.Name(), name, len(dec), len(in))
				}
			}
		})
	}
}

func TestRoundTripAppendsToDst(t *testing.T) {
	prefix := []byte("PREFIX")
	in := []byte(strings.Repeat("abcabcabd", 100))
	for _, c := range All() {
		comp, err := c.Compress(append([]byte(nil), prefix...), in)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.HasPrefix(comp, prefix) {
			t.Fatalf("%s: compress clobbered dst prefix", c.Name())
		}
		dec, err := c.Decompress(append([]byte(nil), prefix...), comp[len(prefix):], len(in))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.HasPrefix(dec, prefix) || !bytes.Equal(dec[len(prefix):], in) {
			t.Fatalf("%s: decompress dst handling wrong", c.Name())
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(in []byte) bool {
				comp, err := c.Compress(nil, in)
				if err != nil {
					return false
				}
				dec, err := c.Decompress(nil, comp, len(in))
				return err == nil && bytes.Equal(dec, in)
			}
			cfg := &quick.Config{MaxCount: 40}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRoundTripStructuredQuick feeds structured random inputs (runs and
// copies) that exercise the match paths far more than uniform noise.
func TestRoundTripStructuredQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gen := func() []byte {
		n := rng.Intn(20000)
		out := make([]byte, 0, n)
		for len(out) < n {
			switch rng.Intn(3) {
			case 0: // run
				b := byte(rng.Intn(8))
				k := rng.Intn(200) + 1
				for j := 0; j < k; j++ {
					out = append(out, b)
				}
			case 1: // random chunk
				k := rng.Intn(50) + 1
				for j := 0; j < k; j++ {
					out = append(out, byte(rng.Intn(256)))
				}
			default: // copy from earlier
				if len(out) == 0 {
					out = append(out, 1)
					continue
				}
				off := rng.Intn(len(out)) + 1
				k := rng.Intn(300) + 1
				for j := 0; j < k; j++ {
					out = append(out, out[len(out)-off])
				}
			}
		}
		return out[:n]
	}
	for trial := 0; trial < 25; trial++ {
		in := gen()
		for _, c := range All() {
			comp, err := c.Compress(nil, in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.Name(), err)
			}
			dec, err := c.Decompress(nil, comp, len(in))
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, c.Name(), err)
			}
			if !bytes.Equal(dec, in) {
				t.Fatalf("trial %d %s: mismatch", trial, c.Name())
			}
		}
	}
}

func TestCompressionOrdering(t *testing.T) {
	// On compressible text the heavy codecs must beat the fast ones —
	// this spectrum is what HCDP exploits.
	text := []byte(strings.Repeat("scientific applications generate massive amounts of data through simulations and observations. ", 600))
	size := func(name string) int {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		n, err := RoundTrip(c, text)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fast := size("lz4")
	medium := size("brotli")
	heavy := size("bsc")
	if !(heavy < medium && medium < fast && fast < len(text)) {
		t.Errorf("expected bsc < brotli < lz4 < raw, got bsc=%d brotli=%d lz4=%d raw=%d",
			heavy, medium, fast, len(text))
	}
}

func TestIncompressibleDoesNotExplode(t *testing.T) {
	rnd := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(rnd)
	for _, c := range All() {
		comp, err := c.Compress(nil, rnd)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		// Allow modest framing overhead only.
		if len(comp) > len(rnd)+len(rnd)/8+1024 {
			t.Errorf("%s: random data expanded %d -> %d", c.Name(), len(rnd), len(comp))
		}
	}
}

func TestByIDAndByName(t *testing.T) {
	for _, c := range All() {
		got, err := ByID(c.ID())
		if err != nil || got.Name() != c.Name() {
			t.Fatalf("ByID(%d) = %v, %v", c.ID(), got, err)
		}
		got, err = ByName(c.Name())
		if err != nil || got.ID() != c.ID() {
			t.Fatalf("ByName(%q) = %v, %v", c.Name(), got, err)
		}
	}
	if _, err := ByID(200); err == nil {
		t.Error("ByID(200) should fail")
	}
	if _, err := ByName("zstd"); err == nil {
		t.Error("ByName(zstd) should fail")
	}
}

func TestIDsAreStable(t *testing.T) {
	// On-disk format stability: these pairs must never change.
	want := map[string]ID{
		"none": 0, "rle": 1, "huffman": 2, "lz4": 3, "lzo": 4, "pithy": 5,
		"snappy": 6, "quicklz": 7, "brotli": 8, "zlib": 9, "bzip2": 10,
		"bsc": 11, "lzma": 12,
	}
	for name, id := range want {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.ID() != id {
			t.Errorf("%s: id %d, want %d", name, c.ID(), id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d codecs, want %d", len(All()), len(want))
	}
}

func TestDecompressCorruptInput(t *testing.T) {
	in := []byte(strings.Repeat("abcdefgh", 512))
	for _, c := range All() {
		comp, err := c.Compress(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		// Truncations must error, not panic or return wrong-length data.
		for _, cut := range []int{0, 1, len(comp) / 2, len(comp) - 1} {
			if cut >= len(comp) {
				continue
			}
			dec, err := c.Decompress(nil, comp[:cut], len(in))
			if err == nil && bytes.Equal(dec, in) && cut < len(comp)-1 {
				// Only "none" could conceivably survive, and it can't:
				t.Errorf("%s: truncation to %d silently succeeded", c.Name(), cut)
			}
		}
		// Bit flips must never panic; wrong output is acceptable only if
		// the codec has no internal checks, but length must still be
		// validated.
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 20; trial++ {
			mut := append([]byte(nil), comp...)
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: panic on corrupt input: %v", c.Name(), r)
					}
				}()
				dec, err := c.Decompress(nil, mut, len(in))
				if err == nil && len(dec) != len(in) {
					t.Errorf("%s: corrupt input returned wrong length without error", c.Name())
				}
			}()
		}
	}
}

func TestWrongSrcLenRejected(t *testing.T) {
	in := []byte(strings.Repeat("xyz", 1000))
	for _, c := range All() {
		comp, err := c.Compress(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		if dec, err := c.Decompress(nil, comp, len(in)+1); err == nil && len(dec) == len(in)+1 {
			t.Errorf("%s: wrong srcLen accepted", c.Name())
		}
	}
}

func TestSuffixArray(t *testing.T) {
	cases := []string{
		"", "a", "banana", "mississippi", "aaaaaaaa", "abababab",
		"the quick brown fox", "zyxwvu",
	}
	scr := bufpool.GetScratch()
	defer bufpool.PutScratch(scr)
	for _, s := range cases {
		sa := suffixArray(scr, []byte(s))
		if len(sa) != len(s) {
			t.Fatalf("%q: len %d", s, len(sa))
		}
		for j := 1; j < len(sa); j++ {
			a, b := s[sa[j-1]:], s[sa[j]:]
			if a >= b {
				t.Errorf("%q: suffixes out of order at %d: %q >= %q", s, j, a, b)
			}
		}
	}
}

func TestSuffixArrayRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scr := bufpool.GetScratch()
	defer bufpool.PutScratch(scr)
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000) + 1
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(4)) // small alphabet stresses ties
		}
		sa := suffixArray(scr, s)
		seen := make(map[int32]bool, n)
		for j := 1; j < len(sa); j++ {
			if bytes.Compare(s[sa[j-1]:], s[sa[j]:]) >= 0 {
				t.Fatalf("trial %d: order violated at %d", trial, j)
			}
		}
		for _, v := range sa {
			if seen[v] {
				t.Fatalf("trial %d: duplicate suffix index %d", trial, v)
			}
			seen[v] = true
		}
	}
}

func TestBWTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]byte{
		{}, {1}, []byte("banana"), []byte("abracadabra"), bytes.Repeat([]byte{0}, 100),
	}
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(5000)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(7))
		}
		cases = append(cases, s)
	}
	scr := bufpool.GetScratch()
	defer bufpool.PutScratch(scr)
	for i, s := range cases {
		bwt, ptr := bwtForward(scr, s)
		back, err := bwtInverse(scr, nil, bwt, ptr)
		if err != nil && len(s) > 0 {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(back, s) && len(s) > 0 {
			t.Fatalf("case %d: bwt round-trip failed", i)
		}
	}
}

func TestBWTKnownVector(t *testing.T) {
	// BWT of "banana" with sentinel: rows sorted: $banana, a$, ana$, anana$,
	// banana$, na$, nana$ -> L = a,n,n,b,$,a,a -> with $ elided: "annbaa", ptr=4.
	scr := bufpool.GetScratch()
	defer bufpool.PutScratch(scr)
	bwt, ptr := bwtForward(scr, []byte("banana"))
	if string(bwt) != "annbaa" || ptr != 4 {
		t.Fatalf("got %q ptr=%d, want %q ptr=4", bwt, ptr, "annbaa")
	}
}

func TestMTFRoundTrip(t *testing.T) {
	f := func(in []byte) bool {
		buf := append([]byte(nil), in...)
		mtfEncode(buf)
		mtfDecode(buf)
		return bytes.Equal(buf, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFKnown(t *testing.T) {
	out := []byte{0, 0, 0}
	mtfEncode(out)
	if !bytes.Equal(out, []byte{0, 0, 0}) {
		t.Fatalf("mtf of zeros = %v", out)
	}
	out = []byte{1, 1, 2, 2}
	mtfEncode(out)
	if !bytes.Equal(out, []byte{1, 0, 2, 0}) {
		t.Fatalf("got %v want [1 0 2 0]", out)
	}
}

func TestRLE0RoundTrip(t *testing.T) {
	scr := bufpool.GetScratch()
	defer bufpool.PutScratch(scr)
	f := func(in []byte) bool {
		enc := rle0Encode(scr, in)
		dec, err := rle0Decode(scr, enc, len(in))
		return err == nil && bytes.Equal(dec, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// Long zero run exercises the varint continuation.
	long := make([]byte, 1<<18)
	enc := rle0Encode(scr, long)
	if len(enc) > 8 {
		t.Fatalf("rle0 of %d zeros took %d bytes", len(long), len(enc))
	}
	dec, err := rle0Decode(scr, enc, len(long))
	if err != nil || !bytes.Equal(dec, long) {
		t.Fatal("long zero run round-trip failed")
	}
}

func TestRangeCoderBits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bitsIn := make([]int, 20000)
	for i := range bitsIn {
		// Skewed: mostly zeros, to exercise adaptation.
		if rng.Intn(10) == 0 {
			bitsIn[i] = 1
		}
	}
	var e rcEncoder
	e.init(nil)
	p := make([]uint16, 1)
	initProbs(p)
	for _, b := range bitsIn {
		e.encodeBit(&p[0], b)
	}
	out := e.flush()
	// Skewed bits should code well below 1 bit/bit.
	if len(out)*8 > len(bitsIn)/2 {
		t.Errorf("range coder: %d bits -> %d bytes (no compression?)", len(bitsIn), len(out))
	}
	var d rcDecoder
	d.init(out)
	p2 := make([]uint16, 1)
	initProbs(p2)
	for i, want := range bitsIn {
		if got := d.decodeBit(&p2[0]); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestRangeCoderDirectAndTree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	type item struct {
		v    uint32
		n    uint
		tree bool
	}
	var items []item
	var e rcEncoder
	e.init(nil)
	probs := make([]uint16, 256)
	initProbs(probs)
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 {
			n := uint(rng.Intn(24) + 1)
			v := rng.Uint32() & (1<<n - 1)
			items = append(items, item{v, n, false})
			e.encodeDirect(v, n)
		} else {
			v := uint32(rng.Intn(256))
			items = append(items, item{v, 8, true})
			e.encodeTree(probs, v, 8)
		}
	}
	out := e.flush()
	var d rcDecoder
	d.init(out)
	probs2 := make([]uint16, 256)
	initProbs(probs2)
	for i, it := range items {
		var got uint32
		if it.tree {
			got = d.decodeTree(probs2, 8)
		} else {
			got = d.decodeDirect(it.n)
		}
		if got != it.v {
			t.Fatalf("item %d: got %d want %d", i, got, it.v)
		}
	}
}

func TestBuildCodeLengthsKraft(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		freq := make([]int, 256)
		nsyms := rng.Intn(256) + 1
		for i := 0; i < nsyms; i++ {
			freq[rng.Intn(256)] = rng.Intn(100000) + 1
		}
		var lengths [256]uint8
		buildCodeLengths(lengths[:], freq, huffMaxLen)
		kraft := 0
		used := 0
		for s, l := range lengths {
			if freq[s] > 0 && l == 0 {
				t.Fatalf("trial %d: symbol %d has freq but no code", trial, s)
			}
			if freq[s] == 0 && l != 0 {
				t.Fatalf("trial %d: symbol %d has code but no freq", trial, s)
			}
			if l > huffMaxLen {
				t.Fatalf("trial %d: length %d exceeds max", trial, l)
			}
			if l > 0 {
				kraft += 1 << (huffMaxLen - int(l))
				used++
			}
		}
		if used >= 2 && kraft != 1<<huffMaxLen {
			t.Fatalf("trial %d: kraft sum %d != %d", trial, kraft, 1<<huffMaxLen)
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	freq := make([]int, 256)
	rng := rand.New(rand.NewSource(41))
	for i := range freq {
		freq[i] = rng.Intn(1000) + 1
	}
	var lengths [256]uint8
	buildCodeLengths(lengths[:], freq, huffMaxLen)
	var codes [256]uint32
	canonicalCodes(codes[:], lengths[:])
	// No code may be a prefix of another (in the LSB-first sense:
	// code_a == code_b mod 2^len_a implies a == b).
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if a == b || lengths[a] == 0 || lengths[b] == 0 || lengths[a] > lengths[b] {
				continue
			}
			if codes[b]&(1<<lengths[a]-1) == codes[a] {
				t.Fatalf("code %d (len %d) is a prefix of %d (len %d)", a, lengths[a], b, lengths[b])
			}
		}
	}
}

func TestSlotCoding(t *testing.T) {
	for v := 4; v < 9000; v++ {
		slot, extra, ebits := slotFor(v, 4)
		if extra >= 1<<ebits && ebits > 0 {
			t.Fatalf("v=%d: extra %d doesn't fit in %d bits", v, extra, ebits)
		}
		back := slotBase(slot, 4) + extra
		if back != v {
			t.Fatalf("v=%d: round-trips to %d (slot=%d extra=%d)", v, back, slot, extra)
		}
	}
	// Distances start at 1.
	for v := 1; v < 200000; v = v*2 + 1 {
		slot, extra, _ := slotFor(v, 1)
		if slotBase(slot, 1)+extra != v {
			t.Fatalf("dist %d round-trip failed", v)
		}
	}
}

func TestNoneIsIdentity(t *testing.T) {
	c, _ := ByID(None)
	in := []byte("identity")
	comp, _ := c.Compress(nil, in)
	if !bytes.Equal(comp, in) {
		t.Fatal("none must be identity")
	}
	if _, err := c.Decompress(nil, comp, len(in)-1); err == nil {
		t.Fatal("none must validate srcLen")
	}
}

func BenchmarkCompress(b *testing.B) {
	text := []byte(strings.Repeat("HPC storage systems include fast node-local and shared resources. ", 2000))
	for _, c := range All() {
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf, _ = c.Compress(buf[:0], text)
			}
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	text := []byte(strings.Repeat("HPC storage systems include fast node-local and shared resources. ", 2000))
	for _, c := range All() {
		comp, err := c.Compress(nil, text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = c.Decompress(buf[:0], comp, len(text))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExampleByName() {
	c, _ := ByName("snappy")
	msg := []byte("hello hello hello hello")
	comp, _ := c.Compress(nil, msg)
	dec, _ := c.Decompress(nil, comp, len(msg))
	fmt.Println(string(dec))
	// Output: hello hello hello hello
}
