package codec

import (
	"encoding/binary"
	"fmt"
)

// snappyCodec implements the Snappy block format from scratch: varint
// uncompressed length followed by literal and copy elements. The encoder
// uses Snappy's skip-acceleration heuristic so that incompressible input
// degrades to near-memcpy speed.
//
// pithyCodec emits the same element grammar but trades ratio for speed:
// a smaller hash table, a more aggressive skip schedule, and a longer
// minimum match. (Pithy was historically a Snappy derivative tuned the
// same way.) The two codecs share the decoder.
type snappyCodec struct{}

func (snappyCodec) Name() string { return "snappy" }
func (snappyCodec) ID() ID       { return Snappy }

type pithyCodec struct{}

func (pithyCodec) Name() string { return "pithy" }
func (pithyCodec) ID() ID       { return Pithy }

const (
	snapTagLiteral = 0x00
	snapTagCopy1   = 0x01
	snapTagCopy2   = 0x02
	snapTagCopy4   = 0x03
	snapFragment   = 1 << 16 // offsets stay < 65536 within a fragment
)

type snapParams struct {
	hashLog   int
	skipShift uint // larger shift = slower skip growth = better ratio
	minMatch  int
}

var (
	snappyParams = snapParams{hashLog: 14, skipShift: 5, minMatch: 4}
	pithyParams  = snapParams{hashLog: 11, skipShift: 3, minMatch: 6}
)

func (snappyCodec) Compress(dst, src []byte) ([]byte, error) {
	var table [1 << 14]int32 // snappyParams.hashLog
	return snapCompress(dst, src, snappyParams, table[:]), nil
}

func (pithyCodec) Compress(dst, src []byte) ([]byte, error) {
	var table [1 << 11]int32 // pithyParams.hashLog
	return snapCompress(dst, src, pithyParams, table[:]), nil
}

func (snappyCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	return snapDecompress(dst, src, srcLen, "snappy")
}

func (pithyCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	return snapDecompress(dst, src, srcLen, "pithy")
}

// snapCompress compresses src into dst using the caller's hash table
// (len(table) == 1<<p.hashLog) — a stack array in both codecs, so the
// encoder allocates nothing beyond dst growth.
func snapCompress(dst, src []byte, p snapParams, table []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		n := len(src)
		if n > snapFragment {
			n = snapFragment
		}
		dst = snapCompressFragment(dst, src[:n], p, table)
		src = src[n:]
	}
	return dst
}

func snapCompressFragment(dst, src []byte, p snapParams, table []int32) []byte {
	if len(src) < p.minMatch+4 {
		return snapEmitLiteral(dst, src)
	}
	for i := range table {
		table[i] = -1
	}
	shift := uint(32 - p.hashLog)
	hash := func(v uint32) uint32 { return (v * 0x1e35a7bd) >> shift }

	anchor := 0
	i := 0
	limit := len(src) - 8
	skip := 32
	for i < limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash(v)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != v {
			i += skip >> p.skipShift
			skip++
			continue
		}
		// Extend.
		mlen := lzExtendMatch(src, int(cand), i, 4, len(src)-i)
		if mlen < p.minMatch {
			i += skip >> p.skipShift
			skip++
			continue
		}
		skip = 32
		dst = snapEmitLiteral(dst, src[anchor:i])
		dst = snapEmitCopy(dst, i-int(cand), mlen)
		i += mlen
		anchor = i
	}
	return snapEmitLiteral(dst, src[anchor:])
}

func snapEmitLiteral(dst, lits []byte) []byte {
	n := len(lits)
	if n == 0 {
		return dst
	}
	switch {
	case n <= 60:
		dst = append(dst, byte(n-1)<<2|snapTagLiteral)
	case n <= 1<<8:
		dst = append(dst, 60<<2|snapTagLiteral, byte(n-1))
	case n <= 1<<16:
		dst = append(dst, 61<<2|snapTagLiteral, byte(n-1), byte((n-1)>>8))
	default:
		dst = append(dst, 62<<2|snapTagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
	}
	return append(dst, lits...)
}

func snapEmitCopy(dst []byte, offset, mlen int) []byte {
	for mlen > 0 {
		n := mlen
		if n > 64 {
			n = 64
			if mlen-n < 4 {
				n = mlen - 4 // leave a legal-length tail copy
			}
		}
		if n >= 4 && n <= 11 && offset < 2048 {
			dst = append(dst,
				byte(offset>>8)<<5|byte(n-4)<<2|snapTagCopy1,
				byte(offset))
		} else {
			dst = append(dst, byte(n-1)<<2|snapTagCopy2, byte(offset), byte(offset>>8))
		}
		mlen -= n
	}
	return dst
}

func snapDecompress(dst, src []byte, srcLen int, name string) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s bad preamble", ErrCorrupt, name)
	}
	if int(want) != srcLen {
		return nil, fmt.Errorf("%w: %s preamble %d != header %d", ErrCorrupt, name, want, srcLen)
	}
	src = src[n:]
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		switch tag & 3 {
		case snapTagLiteral:
			litLen := int(tag >> 2)
			switch {
			case litLen < 60:
				litLen++
			case litLen == 60:
				if i >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) + 1
				i++
			case litLen == 61:
				if i+1 >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) | int(src[i+1])<<8
				litLen++
				i += 2
			default:
				if i+2 >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) | int(src[i+1])<<8 | int(src[i+2])<<16
				litLen++
				i += 3
			}
			if i+litLen > len(src) {
				return nil, fmt.Errorf("%w: %s literals overrun", ErrCorrupt, name)
			}
			dst = append(dst, src[i:i+litLen]...)
			i += litLen
		case snapTagCopy1:
			if i >= len(src) {
				return nil, fmt.Errorf("%w: %s copy1 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2&0x7) + 4
			offset := int(tag>>5)<<8 | int(src[i])
			i++
			var err error
			dst, err = lzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		case snapTagCopy2:
			if i+1 >= len(src) {
				return nil, fmt.Errorf("%w: %s copy2 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2) + 1
			offset := int(src[i]) | int(src[i+1])<<8
			i += 2
			var err error
			dst, err = lzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		default: // snapTagCopy4: accepted for format completeness
			if i+3 >= len(src) {
				return nil, fmt.Errorf("%w: %s copy4 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(src[i:]))
			i += 4
			var err error
			dst, err = lzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: %s produced %d bytes, want %d", ErrCorrupt, name, len(dst)-base, srcLen)
	}
	return dst, nil
}
