package codec

import "hcompress/internal/bufpool"

// bscCodec is the pool's slowest / highest-ratio block sorter: the same
// BWT -> MTF -> RLE0 front end as bzip2, but with a larger block and an
// order-1-context adaptive binary range coder instead of static Huffman.
// It models libbsc's position in the paper: best ratio on compressible
// data, worst compression speed.
type bscCodec struct{}

func (bscCodec) Name() string { return "bsc" }
func (bscCodec) ID() ID       { return BSC }

const bscBlockSize = 1 << 20

func (c bscCodec) Compress(dst, src []byte) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.CompressScratch(s, dst, src)
}

func (c bscCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	return c.DecompressScratch(s, dst, src, srcLen)
}

func (bscCodec) CompressScratch(s *bufpool.Scratch, dst, src []byte) ([]byte, error) {
	return bwtPipelineCompress(s, dst, src, bscBlockSize, rcEntropy{})
}

func (bscCodec) DecompressScratch(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	return bwtPipelineDecompress(s, dst, src, srcLen, bscBlockSize, rcEntropy{}, "bsc")
}

// rcEntropy codes a byte stream through per-context 8-bit probability
// trees. The context is a coarse class of the previous byte — after BWT+MTF
// the value magnitude is strongly autocorrelated, so four classes capture
// most of the conditional entropy at a fraction of an order-1 model's
// table size. Probabilities live in the Scratch slab; the coder itself is
// a stack value.
type rcEntropy struct{}

func byteClass(b byte) int {
	switch {
	case b == 0:
		return 0
	case b == 1:
		return 1
	case b < 16:
		return 2
	default:
		return 3
	}
}

// byteClassTab is byteClass as a lookup table for the per-byte decode loop.
var byteClassTab = func() (t [256]uint8) {
	for i := range t {
		t[i] = uint8(byteClass(byte(i)))
	}
	return
}()

func (rcEntropy) encode(s *bufpool.Scratch, dst, src []byte) []byte {
	var e rcEncoder
	e.init(dst)
	probs := bufpool.GrowU16(&s.Probs, 4*256)
	initProbs(probs)
	ctx := 0
	for _, b := range src {
		e.encodeTree(probs[ctx*256:(ctx+1)*256], uint32(b), 8)
		ctx = byteClass(b)
	}
	return e.flush()
}

func (rcEntropy) decode(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error) {
	var d rcDecoder
	d.init(src)
	probs := bufpool.GrowU16(&s.Probs, 4*256)
	initProbs(probs)
	ctx := 0
	base := len(dst)
	dst = extendSlice(dst, rawLen)
	out := dst[base:]
	for i := 0; i < rawLen; i++ {
		b := byte(d.decodeTree(probs[ctx*256:(ctx+1)*256], 8))
		out[i] = b
		ctx = int(byteClassTab[b])
	}
	if d.overran() {
		return nil, ErrCorrupt
	}
	return dst, nil
}
