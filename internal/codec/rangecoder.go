package codec

// Binary adaptive range coder (LZMA-style, 11-bit probabilities, shift-5
// adaptation), shared by the bsc and lzma codecs.

const (
	rcTopBits   = 24
	rcTop       = 1 << rcTopBits
	rcProbBits  = 11
	rcProbInit  = 1 << (rcProbBits - 1) // p = 0.5
	rcProbMax   = 1 << rcProbBits
	rcMoveShift = 5
)

type rcEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// init readies e for encoding into dst. Encoders are used by value on the
// caller's stack; there is no constructor allocation.
func (e *rcEncoder) init(dst []byte) {
	e.low = 0
	e.rng = 0xFFFFFFFF
	e.cache = 0
	e.cacheSize = 1
	e.out = dst
}

func (e *rcEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		temp := e.cache
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// encodeBit codes bit with the adaptive probability *p (of the bit being 0).
func (e *rcEncoder) encodeBit(p *uint16, bit int) {
	bound := (e.rng >> rcProbBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (rcProbMax - *p) >> rcMoveShift
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> rcMoveShift
	}
	for e.rng < rcTop {
		e.shiftLow()
		e.rng <<= 8
	}
}

// encodeDirect codes n equiprobable bits of v (MSB first).
func (e *rcEncoder) encodeDirect(v uint32, n uint) {
	for ; n > 0; n-- {
		e.rng >>= 1
		if (v>>(n-1))&1 == 1 {
			e.low += uint64(e.rng)
		}
		for e.rng < rcTop {
			e.shiftLow()
			e.rng <<= 8
		}
	}
}

// encodeTree codes the nbits-wide value v through a binary probability tree
// (probs must have at least 1<<nbits entries; index 0 is unused).
func (e *rcEncoder) encodeTree(probs []uint16, v uint32, nbits uint) {
	m := uint32(1)
	for i := nbits; i > 0; i-- {
		bit := int(v>>(i-1)) & 1
		e.encodeBit(&probs[m], bit)
		m = m<<1 | uint32(bit)
	}
}

func (e *rcEncoder) flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rcDecoder struct {
	rng  uint32
	code uint32
	src  []byte
	pos  int
}

// init readies d for decoding from src. Decoders are used by value on the
// caller's stack; there is no constructor allocation.
func (d *rcDecoder) init(src []byte) {
	d.rng = 0xFFFFFFFF
	d.code = 0
	d.src = src
	d.pos = 0
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
}

func (d *rcDecoder) next() byte {
	if d.pos < len(d.src) {
		b := d.src[d.pos]
		d.pos++
		return b
	}
	// Reading past the end yields zeros; corrupt streams are caught by
	// the callers' length checks.
	d.pos++
	return 0
}

func (d *rcDecoder) decodeBit(p *uint16) int {
	rng, code := d.rng, d.code
	bound := (rng >> rcProbBits) * uint32(*p)
	var bit int
	if code < bound {
		rng = bound
		*p += (rcProbMax - *p) >> rcMoveShift
	} else {
		code -= bound
		rng -= bound
		*p -= *p >> rcMoveShift
		bit = 1
	}
	for rng < rcTop {
		var b byte
		if d.pos < len(d.src) {
			b = d.src[d.pos]
		}
		d.pos++ // past-the-end reads yield zeros; see next()
		code = code<<8 | uint32(b)
		rng <<= 8
	}
	d.rng, d.code = rng, code
	return bit
}

func (d *rcDecoder) decodeDirect(n uint) uint32 {
	rng, code := d.rng, d.code
	src, pos := d.src, d.pos
	var res uint32
	for ; n > 0; n-- {
		rng >>= 1
		res <<= 1
		if code >= rng {
			code -= rng
			res |= 1
		}
		for rng < rcTop {
			var b byte
			if pos < len(src) {
				b = src[pos]
			}
			pos++
			code = code<<8 | uint32(b)
			rng <<= 8
		}
	}
	d.rng, d.code, d.pos = rng, code, pos
	return res
}

// decodeTree is the decoder's hottest loop (bsc and lzma burn one call per
// literal byte), so the whole coder state lives in locals for the duration
// of the walk instead of round-tripping through the struct on every bit.
func (d *rcDecoder) decodeTree(probs []uint16, nbits uint) uint32 {
	rng, code := d.rng, d.code
	src, pos := d.src, d.pos
	m := uint32(1)
	for i := uint(0); i < nbits; i++ {
		p := probs[m]
		bound := (rng >> rcProbBits) * uint32(p)
		if code < bound {
			rng = bound
			probs[m] = p + (rcProbMax-p)>>rcMoveShift
			m = m << 1
		} else {
			code -= bound
			rng -= bound
			probs[m] = p - p>>rcMoveShift
			m = m<<1 | 1
		}
		for rng < rcTop {
			var b byte
			if pos < len(src) {
				b = src[pos]
			}
			pos++
			code = code<<8 | uint32(b)
			rng <<= 8
		}
	}
	d.rng, d.code, d.pos = rng, code, pos
	return m - 1<<nbits
}

// overran reports whether the decoder consumed more bytes than the input
// held (a corruption indicator).
func (d *rcDecoder) overran() bool {
	return d.pos > len(d.src)+5 // allow the flush tail
}

// initProbs resets every adaptive probability in p to 0.5. Callers carve p
// out of a Scratch slab so repeated calls reuse one allocation.
func initProbs(p []uint16) {
	for i := range p {
		p[i] = rcProbInit
	}
}
