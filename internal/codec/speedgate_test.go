package codec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hcompress/internal/bufpool"
)

// gateCorpus is the timing corpus for the speedup gate: the four bench
// classes at sizes large enough for stable MB/s on a 1-vCPU host but
// small enough that the heavy codecs keep the gate under ~20s.
func gateCorpus() map[string][]byte {
	all := goldenCorpus()
	want := map[string]bool{"text": true, "floats": true, "incompressible": true, "runs": true}
	out := map[string][]byte{}
	for _, in := range all {
		if want[in.name] {
			out[in.name] = in.data
		}
	}
	return out
}

// TestDecodeMatchesReference differentially checks every rewritten decode
// loop against its pre-pass reference on the golden corpus plus
// structured random inputs: identical bytes on every valid stream.
func TestDecodeMatchesReference(t *testing.T) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	check := func(label string, c Codec, in []byte) {
		comp, err := c.Compress(nil, in)
		if err != nil {
			t.Fatalf("%s/%s: compress: %v", c.Name(), label, err)
		}
		refOut, refErr := refDecompress(c, s, nil, comp, len(in))
		newOut, newErr := DecompressWith(s, c, nil, comp, len(in))
		if refErr != nil || newErr != nil {
			t.Fatalf("%s/%s: decode error (ref=%v, new=%v)", c.Name(), label, refErr, newErr)
		}
		if !bytes.Equal(refOut, newOut) {
			t.Fatalf("%s/%s: rewritten decoder diverges from reference", c.Name(), label)
		}
		if !bytes.Equal(newOut, in) {
			t.Fatalf("%s/%s: round-trip mismatch", c.Name(), label)
		}
	}
	for _, in := range goldenCorpus() {
		for _, c := range All() {
			check(in.name, c, in.data)
		}
	}
	// Structured random: runs, raw chunks, and self-copies at random
	// offsets — the shapes that exercise match and run paths hardest.
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 30; trial++ {
		in := structuredRandom(rng, rng.Intn(60000))
		for _, c := range All() {
			check(fmt.Sprintf("fuzz-%d", trial), c, in)
		}
	}
}

// structuredRandom generates run/copy/noise-mixed inputs (shared with the
// mutation fuzz below).
func structuredRandom(rng *rand.Rand, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		switch rng.Intn(4) {
		case 0: // run
			b := byte(rng.Intn(8))
			k := rng.Intn(300) + 1
			for j := 0; j < k; j++ {
				out = append(out, b)
			}
		case 1: // random chunk
			k := rng.Intn(60) + 1
			for j := 0; j < k; j++ {
				out = append(out, byte(rng.Intn(256)))
			}
		case 2: // word run (quicklz path)
			k := rng.Intn(40) + 1
			w := [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			for j := 0; j < k; j++ {
				out = append(out, w[:]...)
			}
		default: // copy from earlier (overlapping offsets included)
			if len(out) == 0 {
				out = append(out, 1)
				continue
			}
			off := rng.Intn(len(out)) + 1
			k := rng.Intn(400) + 1
			for j := 0; j < k; j++ {
				out = append(out, out[len(out)-off])
			}
		}
	}
	return out[:n]
}

// TestDecodeMutationVerdictsMatchReference flips bits and truncates
// compressed streams: the rewritten decoders must reach the same
// accept/reject verdict as the references, and on accept produce the
// same bytes. (No panic, ever.)
func TestDecodeMutationVerdictsMatchReference(t *testing.T) {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	rng := rand.New(rand.NewSource(777))
	in := structuredRandom(rng, 20000)
	for _, c := range All() {
		comp, err := c.Compress(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		tryOne := func(mut []byte, what string) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic on %s: %v", c.Name(), what, r)
				}
			}()
			refOut, refErr := refDecompress(c, s, nil, mut, len(in))
			newOut, newErr := DecompressWith(s, c, nil, mut, len(in))
			if (refErr == nil) != (newErr == nil) {
				t.Errorf("%s: verdict diverges on %s: ref=%v new=%v", c.Name(), what, refErr, newErr)
				return
			}
			if refErr == nil && !bytes.Equal(refOut, newOut) {
				t.Errorf("%s: accepted %s but outputs differ", c.Name(), what)
			}
		}
		for trial := 0; trial < 60; trial++ {
			mut := append([]byte(nil), comp...)
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
			tryOne(mut, fmt.Sprintf("bitflip-%d", trial))
		}
		for _, cut := range []int{0, 1, len(comp) / 3, len(comp) / 2, len(comp) - 1} {
			if cut < len(comp) {
				tryOne(comp[:cut], fmt.Sprintf("truncate-%d", cut))
			}
		}
	}
}

// measureDecode returns best-of-rounds decompression MB/s of fn over the
// precompressed corpus. Each round repeats full corpus passes until at
// least 2ms have elapsed, so fast codecs aren't measured inside timer
// noise.
func measureDecode(rounds int, dst []byte, comp map[string][]byte, plainLen map[string]int,
	fn func(dst, src []byte, srcLen int) ([]byte, error)) float64 {
	totalBytes := 0
	for name := range comp {
		totalBytes += plainLen[name]
	}
	best := 0.0
	for r := 0; r < rounds; r++ {
		start := time.Now()
		done := 0
		for passes := 0; passes == 0 || time.Since(start) < 4*time.Millisecond; passes++ {
			for name, cs := range comp {
				var err error
				dst, err = fn(dst[:0], cs, plainLen[name])
				if err != nil {
					panic(err)
				}
			}
			done += totalBytes
		}
		el := time.Since(start).Seconds()
		if mbps := float64(done) / (1 << 20) / el; mbps > best {
			best = mbps
		}
	}
	return best
}

// TestCodecSpeedupGate is the CI codec-speedup gate: the rewritten decode
// paths must be >= 1.3x their pre-pass references on the targeted codecs
// (huffman, lz4, and the range-coder family bsc+lzma), and no codec may
// regress. Both sides run interleaved in this process, so the comparison
// is machine-independent.
func TestCodecSpeedupGate(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing gate meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	corpus := gateCorpus()
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)

	floors := map[ID]float64{Huffman: 1.30, LZ4: 1.30, BSC: 1.30, LZMA: 1.30}
	const regressFloor = 0.95 // "no codec regresses >5%"
	const rounds = 7

	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			comp := map[string][]byte{}
			plainLen := map[string]int{}
			for name, in := range corpus {
				cs, err := c.Compress(nil, in)
				if err != nil {
					t.Fatal(err)
				}
				comp[name] = cs
				plainLen[name] = len(in)
			}
			newFn := func(dst, src []byte, srcLen int) ([]byte, error) {
				return DecompressWith(s, c, dst, src, srcLen)
			}
			refFn := func(dst, src []byte, srcLen int) ([]byte, error) {
				return refDecompress(c, s, dst, src, srcLen)
			}
			// Interleave rounds so CPU frequency drift hits both sides.
			dst := make([]byte, 0, 1<<21)
			var refBest, newBest float64
			for r := 0; r < rounds; r++ {
				if m := measureDecode(1, dst, comp, plainLen, refFn); m > refBest {
					refBest = m
				}
				if m := measureDecode(1, dst, comp, plainLen, newFn); m > newBest {
					newBest = m
				}
			}
			ratio := newBest / refBest
			t.Logf("%-8s ref %8.1f MB/s  new %8.1f MB/s  speedup %.2fx", c.Name(), refBest, newBest, ratio)
			if floor, ok := floors[c.ID()]; ok && ratio < floor {
				t.Errorf("%s: decompress speedup %.2fx below gate %.2fx", c.Name(), ratio, floor)
			}
			if ratio < regressFloor {
				t.Errorf("%s: decompress regressed to %.2fx of reference", c.Name(), ratio)
			}
		})
	}
}
