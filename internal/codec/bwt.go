package codec

// Burrows-Wheeler machinery shared by the bzip2 and bsc codecs: a
// Manber-Myers suffix array (prefix doubling with radix sort, O(n log n)),
// the forward and inverse BWT with an implicit sentinel, move-to-front
// coding, and zero-run-length coding of the MTF output.
//
// Every stage draws its work buffers from the caller's bufpool.Scratch, so
// a worker that keeps one Scratch across blocks runs the whole pipeline
// without per-call allocation. Returned slices alias Scratch fields (or
// the caller's dst) and are only valid until the next call that uses the
// same field.

import "hcompress/internal/bufpool"

// suffixArray returns the suffix array of src in s.SA: sa[j] is the start
// of the j-th smallest suffix, with shorter suffixes ordering before longer
// ones at equal prefixes (implicit smallest sentinel).
func suffixArray(s *bufpool.Scratch, src []byte) []int32 {
	n := len(src)
	sa := bufpool.GrowI32(&s.SA, n)
	if n == 0 {
		return sa
	}
	rank := bufpool.GrowI32(&s.Rank, n)
	tmp := bufpool.GrowI32(&s.Tmp, n)
	cnt := bufpool.GrowI32(&s.Cnt, n+257)

	// Initial sort by first byte (counting sort).
	for i := range cnt[:257] {
		cnt[i] = 0
	}
	for _, b := range src {
		cnt[int(b)+1]++
	}
	for i := 1; i <= 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		sa[cnt[src[i]]] = int32(i)
		cnt[src[i]]++
	}
	rank[sa[0]] = 0
	for j := 1; j < n; j++ {
		rank[sa[j]] = rank[sa[j-1]]
		if src[sa[j]] != src[sa[j-1]] {
			rank[sa[j]]++
		}
	}

	key2 := func(i int32, k int) int32 {
		if int(i)+k < n {
			return rank[int(i)+k] + 1 // 0 reserved for "past end" (sentinel)
		}
		return 0
	}
	for k := 1; ; k <<= 1 {
		if int(rank[sa[n-1]]) == n-1 {
			break // all ranks distinct
		}
		// Radix sort by (rank[i], key2) — stable two-pass counting sort.
		// Pass 1: by secondary key.
		lim := n + 1
		for i := 0; i <= lim; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[key2(int32(i), k)+1]++
		}
		for i := 1; i <= lim; i++ {
			cnt[i] += cnt[i-1]
		}
		for j := 0; j < n; j++ { // iterate suffixes in index order; stability irrelevant for pass 1
			i := int32(j)
			tmp[cnt[key2(i, k)]] = i
			cnt[key2(i, k)]++
		}
		// Pass 2: by primary key, stable over pass 1 order.
		for i := 0; i <= lim; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]+1]++
		}
		for i := 1; i < lim; i++ {
			cnt[i] += cnt[i-1]
		}
		for _, i := range tmp {
			sa[cnt[rank[i]]] = i
			cnt[rank[i]]++
		}
		// Re-rank.
		prevRank := rank[sa[0]]
		prevKey2 := key2(sa[0], k)
		tmp[sa[0]] = 0
		for j := 1; j < n; j++ {
			r, k2 := rank[sa[j]], key2(sa[j], k)
			tmp[sa[j]] = tmp[sa[j-1]]
			if r != prevRank || k2 != prevKey2 {
				tmp[sa[j]]++
			}
			prevRank, prevKey2 = r, k2
		}
		rank, tmp = tmp, rank
	}
	return sa
}

// bwtForward computes the Burrows-Wheeler transform of src with an
// implicit sentinel into s.BWT. It returns the n-byte transform and ptr,
// the row index (in the (n+1)-row conceptual matrix) at which the sentinel
// character was elided.
func bwtForward(s *bufpool.Scratch, src []byte) (bwt []byte, ptr int) {
	n := len(src)
	if n == 0 {
		return nil, 0
	}
	sa := suffixArray(s, src)
	bwt = bufpool.GrowBytes(&s.BWT, n)
	// Row 0 is the empty (sentinel) suffix; its L-column char is the last
	// byte of the text.
	bwt[0] = src[n-1]
	w := 1
	for j, pos := range sa {
		if pos == 0 {
			ptr = j + 1 // +1 for the implicit row 0
			continue
		}
		bwt[w] = src[pos-1]
		w++
	}
	return bwt, ptr
}

// bwtInverse reconstructs the original text from its transform and ptr,
// appending it to dst. The LF mapping lives in s.LF; bwt may alias any
// Scratch field other than LF and Dec.
func bwtInverse(s *bufpool.Scratch, dst, bwt []byte, ptr int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return dst, nil
	}
	if ptr <= 0 || ptr > n {
		return nil, ErrCorrupt
	}
	// C[c]: number of characters strictly smaller than c in the L column,
	// counting the sentinel (smallest) once.
	var count [256]int
	for _, b := range bwt {
		count[b]++
	}
	var c [256]int
	sum := 1 // the sentinel
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	// lf[i]: the row whose suffix is (suffix of row i) prepended with L[i].
	lf := bufpool.GrowI32(&s.LF, n+1)
	var occ [256]int
	for i := 0; i <= n; i++ {
		if i == ptr {
			lf[i] = 0 // sentinel maps to row 0
			continue
		}
		j := i
		if i > ptr {
			j = i - 1
		}
		b := bwt[j]
		lf[i] = int32(c[b] + occ[b])
		occ[b]++
	}
	base := len(dst)
	dst = extendSlice(dst, n)
	out := dst[base:]
	row := 0 // row 0 = empty suffix; L[0] is the last text byte
	for k := n - 1; k >= 0; k-- {
		j := row
		if row == ptr {
			return nil, ErrCorrupt // sentinel reached early
		}
		if row > ptr {
			j = row - 1
		}
		out[k] = bwt[j]
		row = int(lf[row])
	}
	return dst, nil
}

// bwtForwardMTF is bwtForward with move-to-front coding folded into the
// output write: one pass over the suffix array emits the already-MTF-coded
// transform, saving the separate full-block rewrite that
// bwtForward+mtfEncode would cost. Output bytes are identical to that pair.
func bwtForwardMTF(s *bufpool.Scratch, src []byte) (mtf []byte, ptr int) {
	n := len(src)
	if n == 0 {
		return nil, 0
	}
	sa := suffixArray(s, src)
	mtf = bufpool.GrowBytes(&s.BWT, n)
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	b := src[n-1] // row 0: the empty (sentinel) suffix; L-char is the last byte
	idx := int(b)
	mtf[0] = byte(idx)
	copy(order[1:idx+1], order[:idx])
	order[0] = b
	w := 1
	for j, pos := range sa {
		if pos == 0 {
			ptr = j + 1 // +1 for the implicit row 0
			continue
		}
		b = src[pos-1]
		idx = 0
		for order[idx] != b {
			idx++
		}
		mtf[w] = byte(idx)
		copy(order[1:idx+1], order[:idx])
		order[0] = b
		w++
	}
	return mtf, ptr
}

// bwtInverseMTF undoes mtfEncode (in place over mtf) and inverts the BWT in
// one pipeline: the MTF decode loop doubles as bwtInverse's counting pass,
// and the LF chase runs over entries packed as nextRow<<8 | L-byte, so the
// per-step sentinel compare and index adjustment disappear (the sentinel
// row is a negative entry). Bytes appended to dst are identical to
// mtfDecode followed by bwtInverse.
func bwtInverseMTF(s *bufpool.Scratch, dst, mtf []byte, ptr int) ([]byte, error) {
	n := len(mtf)
	if n == 0 {
		return dst, nil
	}
	if ptr <= 0 || ptr > n {
		return nil, ErrCorrupt
	}
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	var count [256]int
	for k, idx := range mtf {
		b := order[idx]
		mtf[k] = b
		copy(order[1:int(idx)+1], order[:idx])
		order[0] = b
		count[b]++
	}
	bwt := mtf // now holds the raw transform
	// C[c]: number of characters strictly smaller than c in the L column,
	// counting the sentinel (smallest) once.
	var c [256]int
	sum := 1
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	// Packed LF entries: next row in the high bits, the row's L-byte in the
	// low 8. Rows fit: n <= 1<<20, so nextRow<<8 < 1<<28.
	lf := bufpool.GrowI32(&s.LF, n+1)
	var occ [256]int
	for i := 0; i < ptr; i++ {
		b := bwt[i]
		lf[i] = int32(c[b]+occ[b])<<8 | int32(b)
		occ[b]++
	}
	lf[ptr] = -1 // reaching the sentinel mid-chase means corruption
	for i := ptr + 1; i <= n; i++ {
		b := bwt[i-1]
		lf[i] = int32(c[b]+occ[b])<<8 | int32(b)
		occ[b]++
	}
	base := len(dst)
	dst = extendSlice(dst, n)
	out := dst[base:]
	row := int32(0) // row 0 = empty suffix; L[0] is the last text byte
	for k := n - 1; k >= 0; k-- {
		e := lf[row]
		if e < 0 {
			return nil, ErrCorrupt // sentinel reached early
		}
		out[k] = byte(e)
		row = e >> 8
	}
	return dst, nil
}

// extendSlice lengthens dst by n bytes (unspecified contents), reallocating
// only when capacity is short.
func extendSlice(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	grown := make([]byte, len(dst)+n)
	copy(grown, dst)
	return grown
}

// mtfEncode applies move-to-front coding in place.
func mtfEncode(buf []byte) {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	for k, b := range buf {
		var idx int
		for order[idx] != b {
			idx++
		}
		buf[k] = byte(idx)
		copy(order[1:idx+1], order[:idx])
		order[0] = b
	}
}

// mtfDecode inverts mtfEncode, also in place.
func mtfDecode(buf []byte) {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	for k, idx := range buf {
		b := order[idx]
		buf[k] = b
		copy(order[1:int(idx)+1], order[:idx])
		order[0] = b
	}
}

// rle0Encode run-length-codes zeros in an MTF stream into s.RLE: a zero
// byte is followed by a varint-style continuation of (runLength-1); other
// bytes pass through. MTF output of BWT text is zero-dominated, so this is
// where most of the bzip2-family ratio comes from.
func rle0Encode(s *bufpool.Scratch, src []byte) []byte {
	out := s.RLE[:0]
	i := 0
	for i < len(src) {
		b := src[i]
		if b != 0 {
			out = append(out, b)
			i++
			continue
		}
		run := 1
		for i+run < len(src) && src[i+run] == 0 {
			run++
		}
		out = append(out, 0)
		v := run - 1
		for v >= 0x80 {
			out = append(out, byte(v)|0x80)
			v >>= 7
		}
		out = append(out, byte(v))
		i += run
	}
	s.RLE = out
	return out
}

// rle0Decode inverts rle0Encode into s.MTF. wantLen bounds the output as a
// corruption guard.
func rle0Decode(s *bufpool.Scratch, src []byte, wantLen int) ([]byte, error) {
	out := bufpool.GrowBytes(&s.MTF, wantLen)[:0]
	i := 0
	for i < len(src) {
		b := src[i]
		i++
		if b != 0 {
			out = append(out, b)
			continue
		}
		run := 0
		shift := 0
		for {
			if i >= len(src) || shift > 28 {
				return nil, ErrCorrupt
			}
			v := src[i]
			i++
			run |= int(v&0x7F) << shift
			if v&0x80 == 0 {
				break
			}
			shift += 7
		}
		run++
		if len(out)+run > wantLen {
			return nil, ErrCorrupt
		}
		for k := 0; k < run; k++ {
			out = append(out, 0)
		}
	}
	if len(out) != wantLen {
		return nil, ErrCorrupt
	}
	return out, nil
}
