package codec

// Burrows-Wheeler machinery shared by the bzip2 and bsc codecs: a
// Manber-Myers suffix array (prefix doubling with radix sort, O(n log n)),
// the forward and inverse BWT with an implicit sentinel, move-to-front
// coding, and zero-run-length coding of the MTF output.

// suffixArray returns the suffix array of src: sa[j] is the start of the
// j-th smallest suffix, with shorter suffixes ordering before longer ones
// at equal prefixes (implicit smallest sentinel).
func suffixArray(src []byte) []int32 {
	n := len(src)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	rank := make([]int32, n)
	tmp := make([]int32, n)
	cnt := make([]int32, n+257)

	// Initial sort by first byte (counting sort).
	for i := range cnt[:257] {
		cnt[i] = 0
	}
	for _, b := range src {
		cnt[int(b)+1]++
	}
	for i := 1; i <= 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		sa[cnt[src[i]]] = int32(i)
		cnt[src[i]]++
	}
	rank[sa[0]] = 0
	for j := 1; j < n; j++ {
		rank[sa[j]] = rank[sa[j-1]]
		if src[sa[j]] != src[sa[j-1]] {
			rank[sa[j]]++
		}
	}

	key2 := func(i int32, k int) int32 {
		if int(i)+k < n {
			return rank[int(i)+k] + 1 // 0 reserved for "past end" (sentinel)
		}
		return 0
	}
	for k := 1; ; k <<= 1 {
		if int(rank[sa[n-1]]) == n-1 {
			break // all ranks distinct
		}
		// Radix sort by (rank[i], key2) — stable two-pass counting sort.
		// Pass 1: by secondary key.
		lim := n + 1
		for i := 0; i <= lim; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[key2(int32(i), k)+1]++
		}
		for i := 1; i <= lim; i++ {
			cnt[i] += cnt[i-1]
		}
		for j := 0; j < n; j++ { // iterate suffixes in index order; stability irrelevant for pass 1
			i := int32(j)
			tmp[cnt[key2(i, k)]] = i
			cnt[key2(i, k)]++
		}
		// Pass 2: by primary key, stable over pass 1 order.
		for i := 0; i <= lim; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]+1]++
		}
		for i := 1; i < lim; i++ {
			cnt[i] += cnt[i-1]
		}
		for _, i := range tmp {
			sa[cnt[rank[i]]] = i
			cnt[rank[i]]++
		}
		// Re-rank.
		prevRank := rank[sa[0]]
		prevKey2 := key2(sa[0], k)
		tmp[sa[0]] = 0
		for j := 1; j < n; j++ {
			r, k2 := rank[sa[j]], key2(sa[j], k)
			tmp[sa[j]] = tmp[sa[j-1]]
			if r != prevRank || k2 != prevKey2 {
				tmp[sa[j]]++
			}
			prevRank, prevKey2 = r, k2
		}
		rank, tmp = tmp, rank
	}
	return sa
}

// bwtForward computes the Burrows-Wheeler transform of src with an
// implicit sentinel. It returns the n-byte transform and ptr, the row
// index (in the (n+1)-row conceptual matrix) at which the sentinel
// character was elided.
func bwtForward(src []byte) (bwt []byte, ptr int) {
	n := len(src)
	if n == 0 {
		return nil, 0
	}
	sa := suffixArray(src)
	bwt = make([]byte, 0, n)
	// Row 0 is the empty (sentinel) suffix; its L-column char is the last
	// byte of the text.
	bwt = append(bwt, src[n-1])
	for j, pos := range sa {
		if pos == 0 {
			ptr = j + 1 // +1 for the implicit row 0
			continue
		}
		bwt = append(bwt, src[pos-1])
	}
	return bwt, ptr
}

// bwtInverse reconstructs the original text from its transform and ptr.
func bwtInverse(bwt []byte, ptr int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return nil, nil
	}
	if ptr <= 0 || ptr > n {
		return nil, ErrCorrupt
	}
	// C[c]: number of characters strictly smaller than c in the L column,
	// counting the sentinel (smallest) once.
	var count [256]int
	for _, b := range bwt {
		count[b]++
	}
	var c [256]int
	sum := 1 // the sentinel
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	// lf[i]: the row whose suffix is (suffix of row i) prepended with L[i].
	lf := make([]int32, n+1)
	var occ [256]int
	for i := 0; i <= n; i++ {
		if i == ptr {
			lf[i] = 0 // sentinel maps to row 0
			continue
		}
		j := i
		if i > ptr {
			j = i - 1
		}
		b := bwt[j]
		lf[i] = int32(c[b] + occ[b])
		occ[b]++
	}
	out := make([]byte, n)
	row := 0 // row 0 = empty suffix; L[0] is the last text byte
	for k := n - 1; k >= 0; k-- {
		j := row
		if row == ptr {
			return nil, ErrCorrupt // sentinel reached early
		}
		if row > ptr {
			j = row - 1
		}
		out[k] = bwt[j]
		row = int(lf[row])
	}
	return out, nil
}

// mtfEncode applies move-to-front coding in place semantics (allocates the
// output).
func mtfEncode(src []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(src))
	for k, b := range src {
		var idx int
		for order[idx] != b {
			idx++
		}
		out[k] = byte(idx)
		copy(order[1:idx+1], order[:idx])
		order[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(src []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(src))
	for k, idx := range src {
		b := order[idx]
		out[k] = b
		copy(order[1:int(idx)+1], order[:idx])
		order[0] = b
	}
	return out
}

// rle0Encode run-length-codes zeros in an MTF stream: a zero byte is
// followed by a varint-style continuation of (runLength-1); other bytes
// pass through. MTF output of BWT text is zero-dominated, so this is where
// most of the bzip2-family ratio comes from.
func rle0Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	i := 0
	for i < len(src) {
		b := src[i]
		if b != 0 {
			out = append(out, b)
			i++
			continue
		}
		run := 1
		for i+run < len(src) && src[i+run] == 0 {
			run++
		}
		out = append(out, 0)
		v := run - 1
		for v >= 0x80 {
			out = append(out, byte(v)|0x80)
			v >>= 7
		}
		out = append(out, byte(v))
		i += run
	}
	return out
}

// rle0Decode inverts rle0Encode. wantLen bounds the output as a corruption
// guard.
func rle0Decode(src []byte, wantLen int) ([]byte, error) {
	out := make([]byte, 0, wantLen)
	i := 0
	for i < len(src) {
		b := src[i]
		i++
		if b != 0 {
			out = append(out, b)
			continue
		}
		run := 0
		shift := 0
		for {
			if i >= len(src) || shift > 28 {
				return nil, ErrCorrupt
			}
			v := src[i]
			i++
			run |= int(v&0x7F) << shift
			if v&0x80 == 0 {
				break
			}
			shift += 7
		}
		run++
		if len(out)+run > wantLen {
			return nil, ErrCorrupt
		}
		for k := 0; k < run; k++ {
			out = append(out, 0)
		}
	}
	if len(out) != wantLen {
		return nil, ErrCorrupt
	}
	return out, nil
}
