package codec

// Shared hot-loop helpers for the LZ77 family (lz4, lzo, pithy, snappy,
// quicklz, brotli, lzma): word-at-a-time match extension on the compress
// side and an overlap-aware bulk match copy on the decompress side.

import (
	"encoding/binary"
	"fmt"
	mathbits "math/bits"
)

// lzExtendMatch extends a match between src[c:] and src[i:] (c < i) that
// already agrees on the first n bytes, returning the final match length,
// at most max. It compares 8 bytes per load and locates the first
// mismatching byte with a trailing-zero count, so the result is exactly
// what the byte-at-a-time loop would produce.
//
// Callers must guarantee i+max <= len(src); every compressor here derives
// max from len(src)-i minus a constant tail reserve, which satisfies it.
func lzExtendMatch(src []byte, c, i, n, max int) int {
	for n+8 <= max {
		x := binary.LittleEndian.Uint64(src[c+n:]) ^ binary.LittleEndian.Uint64(src[i+n:])
		if x != 0 {
			return n + mathbits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < max && src[c+n] == src[i+n] {
		n++
	}
	return n
}

// lzCopyMatch appends mlen bytes starting offset bytes back from the end of
// dst, handling the overlapping-copy case shared by every LZ codec here.
// base is the index in dst where this payload began (matches may not reach
// before it).
//
// Overlapping matches (offset < mlen) are run patterns; instead of a
// byte-at-a-time loop the copy doubles the materialized region each pass,
// so a length-L run costs O(log(L/offset)) copy calls.
func lzCopyMatch(dst []byte, base, offset, mlen int, name string) ([]byte, error) {
	if offset <= 0 || offset > len(dst)-base {
		return nil, fmt.Errorf("%w: %s match offset %d out of window", ErrCorrupt, name, offset)
	}
	d := len(dst)
	dst = extendSlice(dst, mlen)
	end := d + mlen
	s := d - offset
	if offset >= mlen {
		copy(dst[d:end], dst[s:s+mlen])
		return dst, nil
	}
	for d < end {
		d += copy(dst[d:end], dst[s:d])
	}
	return dst, nil
}
