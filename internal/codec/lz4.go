package codec

import (
	"encoding/binary"
	"fmt"
)

// lz4Codec implements the LZ4 block format: token-based sequences of
// literals plus (offset, length) matches within a 64 KiB window, found by
// a single-probe hash table. It is the canonical fast/low-ratio LZ in the
// pool.
//
// Each sequence: token (hi nibble = literal length, lo nibble = match
// length - 4, 15 means "extended with 255-run bytes"), literals, 2-byte LE
// offset, match length extension. The final sequence carries literals only.
type lz4Codec struct{}

func (lz4Codec) Name() string { return "lz4" }
func (lz4Codec) ID() ID       { return LZ4 }

const (
	lz4HashLog  = 16
	lz4MinMatch = 4
	// Matches may not begin within the last lz4MFLimit bytes of input;
	// this mirrors the reference implementation's end-of-block rules.
	lz4MFLimit = 12
)

func lz4Hash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lz4HashLog)
}

func (lz4Codec) Compress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return dst, nil
	}
	var table [1 << lz4HashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	limit := len(src) - lz4MFLimit
	for i < limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := lz4Hash(v)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || i-int(cand) > 65535 || binary.LittleEndian.Uint32(src[cand:]) != v {
			i++
			continue
		}
		// Extend the match forward.
		maxMatch := len(src) - 5 - i // keep last 5 bytes literal
		mlen := lzExtendMatch(src, int(cand), i, lz4MinMatch, maxMatch)
		if mlen < lz4MinMatch {
			i++
			continue
		}
		dst = lz4EmitSequence(dst, src[anchor:i], i-int(cand), mlen)
		i += mlen
		anchor = i
	}
	// Trailing literals.
	dst = lz4EmitSequence(dst, src[anchor:], 0, 0)
	return dst, nil
}

// lz4EmitSequence writes one sequence. A zero match length means "final
// literal-only sequence".
func lz4EmitSequence(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	tok := byte(0)
	if litLen >= 15 {
		tok = 0xF0
	} else {
		tok = byte(litLen) << 4
	}
	ml := 0
	if mlen > 0 {
		ml = mlen - lz4MinMatch
		if ml >= 15 {
			tok |= 0x0F
		} else {
			tok |= byte(ml)
		}
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = lz4ExtLen(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if mlen == 0 {
		return dst
	}
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lz4ExtLen(dst, ml-15)
	}
	return dst
}

func lz4ExtLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// lz4DecPad is the slack appended past the decoded length so the hot loop
// can copy fixed-size chunks that overshoot a sequence's true length; the
// junk lands in the pad and is trimmed off the returned slice.
const lz4DecPad = 16

// Decompress is index-based: dst is pre-extended by srcLen (plus pad) once
// and both cursors are plain ints, so the sequence loop runs without append
// bookkeeping or per-match function calls. Short literal runs and matches
// move as fixed 16- or 8-byte chunks. A stream that would overrun srcLen
// is rejected at the offending sequence — the same streams the old
// append-then-check-total loop rejected at the end.
func (lz4Codec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	dst = extendSlice(dst, srcLen+lz4DecPad)
	limit := base + srcLen
	w := base
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = lz4ReadExtLen(src, i, litLen)
			if err != nil {
				return nil, err
			}
		}
		if i+litLen > len(src) {
			return nil, fmt.Errorf("%w: lz4 literals overrun input", ErrCorrupt)
		}
		if w+litLen > limit {
			return nil, fmt.Errorf("%w: lz4 literals overrun output", ErrCorrupt)
		}
		if litLen <= 16 && i+16 <= len(src) {
			copy(dst[w:w+16], src[i:i+16]) // overshoot lands in pad
		} else {
			copy(dst[w:], src[i:i+litLen])
		}
		w += litLen
		i += litLen
		if i == len(src) {
			break // final literal-only sequence
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: lz4 truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		mlen := int(tok & 0x0F)
		if mlen == 15 {
			var err error
			mlen, i, err = lz4ReadExtLen(src, i, mlen)
			if err != nil {
				return nil, err
			}
		}
		mlen += lz4MinMatch
		if offset <= 0 || offset > w-base {
			return nil, fmt.Errorf("%w: lz4 match offset %d out of window", ErrCorrupt, offset)
		}
		if w+mlen > limit {
			return nil, fmt.Errorf("%w: lz4 match overruns output", ErrCorrupt)
		}
		s := w - offset
		end := w + mlen
		switch {
		case offset >= 8:
			// 8-byte strides, overshooting into the pad.
			for d := w; d < end; d += 8 {
				copy(dst[d:d+8], dst[s:s+8])
				s += 8
			}
			w = end
		case offset >= mlen:
			copy(dst[w:end], dst[s:s+mlen])
			w = end
		default:
			// Overlapping short-offset run: double the materialized span.
			for w < end {
				w += copy(dst[w:end], dst[s:w])
			}
		}
	}
	if w != limit {
		return nil, fmt.Errorf("%w: lz4 produced %d bytes, want %d", ErrCorrupt, w-base, srcLen)
	}
	return dst[:limit], nil
}

func lz4ReadExtLen(src []byte, i, n int) (int, int, error) {
	for {
		if i >= len(src) {
			return 0, 0, fmt.Errorf("%w: lz4 truncated length", ErrCorrupt)
		}
		b := src[i]
		i++
		n += int(b)
		if b != 255 {
			return n, i, nil
		}
	}
}
