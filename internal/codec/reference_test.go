package codec

// Pre-pass reference decoders, copied verbatim from the implementations
// that existed before the raw-speed pass (PR 9). They serve two jobs:
//
//  1. Differential fuzzing: the rewritten hot loops must agree with these
//     byte-for-byte on every valid stream, and must reach the same
//     accept/reject verdict on mutated streams.
//  2. The speedup gate: TestCodecSpeedupGate measures the rewritten
//     decoders against these in the same process, so the recorded
//     >=1.3x floors are machine-independent.
//
// Nothing here ships in the production binary (test-only file).

import (
	"encoding/binary"
	"fmt"

	"hcompress/internal/bufpool"
)

// ---- pre-pass bits.Reader (byte-at-a-time refill) ----

type refBitsReader struct {
	src  []byte
	pos  int
	acc  uint64
	nacc uint
}

func (r *refBitsReader) reset(src []byte) {
	r.src = src
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

func (r *refBitsReader) fill() {
	for r.nacc <= 56 && r.pos < len(r.src) {
		r.acc |= uint64(r.src[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

func (r *refBitsReader) readBits(n uint) (uint64, error) {
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			return 0, errRefEOF
		}
	}
	v := r.acc & (1<<n - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

func (r *refBitsReader) peek(n uint) uint64 {
	if r.nacc < n {
		r.fill()
	}
	return r.acc & (1<<n - 1)
}

func (r *refBitsReader) have() int {
	return int(r.nacc) + (len(r.src)-r.pos)*8
}

func (r *refBitsReader) skip(n uint) {
	r.acc >>= n
	r.nacc -= n
}

var errRefEOF = fmt.Errorf("ref: unexpected end of bitstream")

// ---- pre-pass single-level Huffman decode table ----

func refBuildDecodeTable(table []uint32, lengths []uint8, maxLen int) error {
	var codes [huffMaxAlphabet]uint32
	canonicalCodes(codes[:len(lengths)], lengths)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			return fmt.Errorf("%w: code length %d > %d", ErrCorrupt, l, maxLen)
		}
		entry := uint32(s)<<4 | uint32(l)
		step := 1 << l
		for i := int(codes[s]); i < len(table); i += step {
			table[i] = entry
		}
	}
	return nil
}

func refHuffDecompressBlock(dst, payload []byte, rawLen int) ([]byte, error) {
	if len(payload) == rawLen {
		return append(dst, payload...), nil
	}
	if len(payload) < 128 {
		return nil, fmt.Errorf("%w: huffman payload too short", ErrCorrupt)
	}
	var lengths [256]uint8
	for i := 0; i < 128; i++ {
		lengths[2*i] = payload[i] & 0x0F
		lengths[2*i+1] = payload[i] >> 4
	}
	var table [1 << huffMaxLen]uint32
	if err := refBuildDecodeTable(table[:], lengths[:], huffMaxLen); err != nil {
		return nil, err
	}
	var r refBitsReader
	r.reset(payload[128:])
	for i := 0; i < rawLen; i++ {
		e := table[r.peek(huffMaxLen)]
		l := uint(e & 0x0F)
		if l == 0 || r.have() < int(l) {
			return nil, fmt.Errorf("%w: huffman invalid code", ErrCorrupt)
		}
		r.skip(l)
		dst = append(dst, byte(e>>4))
	}
	return dst, nil
}

func refHuffmanDecompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: huffman truncated block header", ErrCorrupt)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		compLen := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if compLen > len(src) || rawLen > huffBlockSize {
			return nil, fmt.Errorf("%w: huffman block lengths", ErrCorrupt)
		}
		var err error
		dst, err = refHuffDecompressBlock(dst, src[:compLen], rawLen)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: huffman produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

// ---- pre-pass lzCopyMatch (bulk copy only when non-overlapping) ----

func refLzCopyMatch(dst []byte, base, offset, mlen int, name string) ([]byte, error) {
	if offset <= 0 || offset > len(dst)-base {
		return nil, fmt.Errorf("%w: %s match offset %d out of window", ErrCorrupt, name, offset)
	}
	pos := len(dst) - offset
	if offset >= mlen {
		return append(dst, dst[pos:pos+mlen]...), nil
	}
	for k := 0; k < mlen; k++ {
		dst = append(dst, dst[pos+k])
	}
	return dst, nil
}

// ---- pre-pass LZ4 decoder ----

func refLZ4Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = lz4ReadExtLen(src, i, litLen)
			if err != nil {
				return nil, err
			}
		}
		if i+litLen > len(src) {
			return nil, fmt.Errorf("%w: lz4 literals overrun input", ErrCorrupt)
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if i == len(src) {
			break
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: lz4 truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		mlen := int(tok & 0x0F)
		if mlen == 15 {
			var err error
			mlen, i, err = lz4ReadExtLen(src, i, mlen)
			if err != nil {
				return nil, err
			}
		}
		mlen += lz4MinMatch
		var err error
		dst, err = refLzCopyMatch(dst, base, offset, mlen, "lz4")
		if err != nil {
			return nil, err
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: lz4 produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

// ---- pre-pass Snappy/Pithy decoder ----

func refSnapDecompress(dst, src []byte, srcLen int, name string) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s bad preamble", ErrCorrupt, name)
	}
	if int(want) != srcLen {
		return nil, fmt.Errorf("%w: %s preamble %d != header %d", ErrCorrupt, name, want, srcLen)
	}
	src = src[n:]
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		switch tag & 3 {
		case snapTagLiteral:
			litLen := int(tag >> 2)
			switch {
			case litLen < 60:
				litLen++
			case litLen == 60:
				if i >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) + 1
				i++
			case litLen == 61:
				if i+1 >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) | int(src[i+1])<<8
				litLen++
				i += 2
			default:
				if i+2 >= len(src) {
					return nil, fmt.Errorf("%w: %s literal length", ErrCorrupt, name)
				}
				litLen = int(src[i]) | int(src[i+1])<<8 | int(src[i+2])<<16
				litLen++
				i += 3
			}
			if i+litLen > len(src) {
				return nil, fmt.Errorf("%w: %s literals overrun", ErrCorrupt, name)
			}
			dst = append(dst, src[i:i+litLen]...)
			i += litLen
		case snapTagCopy1:
			if i >= len(src) {
				return nil, fmt.Errorf("%w: %s copy1 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2&0x7) + 4
			offset := int(tag>>5)<<8 | int(src[i])
			i++
			var err error
			dst, err = refLzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		case snapTagCopy2:
			if i+1 >= len(src) {
				return nil, fmt.Errorf("%w: %s copy2 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2) + 1
			offset := int(src[i]) | int(src[i+1])<<8
			i += 2
			var err error
			dst, err = refLzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		default:
			if i+3 >= len(src) {
				return nil, fmt.Errorf("%w: %s copy4 truncated", ErrCorrupt, name)
			}
			mlen := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(src[i:]))
			i += 4
			var err error
			dst, err = refLzCopyMatch(dst, base, offset, mlen, name)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: %s produced %d bytes, want %d", ErrCorrupt, name, len(dst)-base, srcLen)
	}
	return dst, nil
}

// ---- pre-pass LZO decoder ----

func refLZODecompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		if tag&1 == 0 {
			n := int(tag>>1) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: lzo literals overrun", ErrCorrupt)
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		mlen := int(tag>>1&0x3F) + lzoMinMatch
		if tag&0x80 != 0 {
			if i >= len(src) {
				return nil, fmt.Errorf("%w: lzo truncated length ext", ErrCorrupt)
			}
			mlen += int(src[i])
			i++
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: lzo truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		var err error
		dst, err = refLzCopyMatch(dst, base, offset, mlen, "lzo")
		if err != nil {
			return nil, err
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: lzo produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

// ---- pre-pass QuickLZ decoder ----

func refQlzDecompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		switch {
		case tag <= 0x7F:
			n := int(tag) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: quicklz literals overrun", ErrCorrupt)
			}
			dst = append(dst, src[i:i+n]...)
			i += n
		case tag <= 0xBF:
			if i+2 > len(src) {
				return nil, fmt.Errorf("%w: quicklz truncated offset", ErrCorrupt)
			}
			mlen := int(tag&0x3F) + qlzMinMatch
			offset := int(src[i]) | int(src[i+1])<<8
			i += 2
			var err error
			dst, err = refLzCopyMatch(dst, base, offset, mlen, "quicklz")
			if err != nil {
				return nil, err
			}
		default:
			words := int(tag&0x3F) + 1
			if len(dst)-base < 4 {
				return nil, fmt.Errorf("%w: quicklz word run without history", ErrCorrupt)
			}
			var err error
			dst, err = refLzCopyMatch(dst, base, 4, 4*words, "quicklz")
			if err != nil {
				return nil, err
			}
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: quicklz produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

// ---- pre-pass Brotli decoder ----

func refBrotliDecompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: brotli truncated block header", ErrCorrupt)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		compLen := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if compLen > len(src) || rawLen > brBlockSize {
			return nil, fmt.Errorf("%w: brotli block lengths", ErrCorrupt)
		}
		var err error
		dst, err = refBrDecompressBlock(dst, src[:compLen], rawLen, base)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: brotli produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

func refBrDecompressBlock(dst, payload []byte, rawLen, base int) ([]byte, error) {
	if len(payload) == rawLen {
		return append(dst, payload...), nil
	}
	const hdrLen = brAlphabet/2 + brNumDstSlot/2
	if len(payload) < hdrLen {
		return nil, fmt.Errorf("%w: brotli payload too short", ErrCorrupt)
	}
	var litLens [brAlphabet]uint8
	for i := 0; i < brAlphabet/2; i++ {
		litLens[2*i] = payload[i] & 0x0F
		litLens[2*i+1] = payload[i] >> 4
	}
	var dstLens [brNumDstSlot]uint8
	off := brAlphabet / 2
	for i := 0; i < brNumDstSlot/2; i++ {
		dstLens[2*i] = payload[off+i] & 0x0F
		dstLens[2*i+1] = payload[off+i] >> 4
	}
	var litTable [1 << brMaxCodeLen]uint32
	if err := refBuildDecodeTable(litTable[:], litLens[:], brMaxCodeLen); err != nil {
		return nil, err
	}
	var dstTable [1 << brMaxCodeLen]uint32
	if err := refBuildDecodeTable(dstTable[:], dstLens[:], brMaxCodeLen); err != nil {
		return nil, err
	}
	var r refBitsReader
	r.reset(payload[hdrLen:])
	produced := 0
	for produced < rawLen {
		e := litTable[r.peek(brMaxCodeLen)]
		l := uint(e & 0x0F)
		if l == 0 || r.have() < int(l) {
			return nil, fmt.Errorf("%w: brotli invalid literal code", ErrCorrupt)
		}
		r.skip(l)
		sym := int(e >> 4)
		if sym < 256 {
			dst = append(dst, byte(sym))
			produced++
			continue
		}
		slot := sym - 256
		extra, err := r.readBits(uint(slot >> 1))
		if err != nil {
			return nil, fmt.Errorf("%w: brotli truncated length extra", ErrCorrupt)
		}
		length := slotBase(slot, brMinMatch) + int(extra)

		de := dstTable[r.peek(brMaxCodeLen)]
		dl := uint(de & 0x0F)
		if dl == 0 || r.have() < int(dl) {
			return nil, fmt.Errorf("%w: brotli invalid distance code", ErrCorrupt)
		}
		r.skip(dl)
		dslot := int(de >> 4)
		dextra, err := r.readBits(uint(dslot >> 1))
		if err != nil {
			return nil, fmt.Errorf("%w: brotli truncated distance extra", ErrCorrupt)
		}
		dist := slotBase(dslot, 1) + int(dextra)

		dst, err = refLzCopyMatch(dst, base, dist, length, "brotli")
		if err != nil {
			return nil, err
		}
		produced += length
	}
	if produced != rawLen {
		return nil, fmt.Errorf("%w: brotli block overproduced", ErrCorrupt)
	}
	return dst, nil
}

// ---- pre-pass range decoder ----

type refRcDecoder struct {
	rng  uint32
	code uint32
	src  []byte
	pos  int
}

func (d *refRcDecoder) init(src []byte) {
	d.rng = 0xFFFFFFFF
	d.code = 0
	d.src = src
	d.pos = 0
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
}

func (d *refRcDecoder) next() byte {
	if d.pos < len(d.src) {
		b := d.src[d.pos]
		d.pos++
		return b
	}
	d.pos++
	return 0
}

func (d *refRcDecoder) decodeBit(p *uint16) int {
	bound := (d.rng >> rcProbBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (rcProbMax - *p) >> rcMoveShift
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> rcMoveShift
		bit = 1
	}
	for d.rng < rcTop {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}

func (d *refRcDecoder) decodeDirect(n uint) uint32 {
	var res uint32
	for ; n > 0; n-- {
		d.rng >>= 1
		res <<= 1
		if d.code >= d.rng {
			d.code -= d.rng
			res |= 1
		}
		for d.rng < rcTop {
			d.code = d.code<<8 | uint32(d.next())
			d.rng <<= 8
		}
	}
	return res
}

func (d *refRcDecoder) decodeTree(probs []uint16, nbits uint) uint32 {
	m := uint32(1)
	for i := uint(0); i < nbits; i++ {
		m = m<<1 | uint32(d.decodeBit(&probs[m]))
	}
	return m - 1<<nbits
}

func (d *refRcDecoder) overran() bool {
	return d.pos > len(d.src)+5
}

// ---- pre-pass MTF decode and inverse BWT ----

func refMtfDecode(buf []byte) {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	for k, idx := range buf {
		b := order[idx]
		buf[k] = b
		copy(order[1:int(idx)+1], order[:idx])
		order[0] = b
	}
}

func refBwtInverse(s *bufpool.Scratch, dst, bwt []byte, ptr int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return dst, nil
	}
	if ptr <= 0 || ptr > n {
		return nil, ErrCorrupt
	}
	var count [256]int
	for _, b := range bwt {
		count[b]++
	}
	var c [256]int
	sum := 1
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	lf := bufpool.GrowI32(&s.LF, n+1)
	var occ [256]int
	for i := 0; i <= n; i++ {
		if i == ptr {
			lf[i] = 0
			continue
		}
		j := i
		if i > ptr {
			j = i - 1
		}
		b := bwt[j]
		lf[i] = int32(c[b] + occ[b])
		occ[b]++
	}
	base := len(dst)
	dst = extendSlice(dst, n)
	out := dst[base:]
	row := 0
	for k := n - 1; k >= 0; k-- {
		j := row
		if row == ptr {
			return nil, ErrCorrupt
		}
		if row > ptr {
			j = row - 1
		}
		out[k] = bwt[j]
		row = int(lf[row])
	}
	return dst, nil
}

func refRle0Decode(s *bufpool.Scratch, src []byte, wantLen int) ([]byte, error) {
	out := bufpool.GrowBytes(&s.MTF, wantLen)[:0]
	i := 0
	for i < len(src) {
		b := src[i]
		i++
		if b != 0 {
			out = append(out, b)
			continue
		}
		run := 0
		shift := 0
		for {
			if i >= len(src) || shift > 28 {
				return nil, ErrCorrupt
			}
			v := src[i]
			i++
			run |= int(v&0x7F) << shift
			if v&0x80 == 0 {
				break
			}
			shift += 7
		}
		run++
		if len(out)+run > wantLen {
			return nil, ErrCorrupt
		}
		for k := 0; k < run; k++ {
			out = append(out, 0)
		}
	}
	if len(out) != wantLen {
		return nil, ErrCorrupt
	}
	return out, nil
}

// ---- pre-pass bsc entropy stage and BWT pipeline ----

func refRcEntropyDecode(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error) {
	var d refRcDecoder
	d.init(src)
	probs := bufpool.GrowU16(&s.Probs, 4*256)
	initProbs(probs)
	ctx := 0
	for i := 0; i < rawLen; i++ {
		b := byte(d.decodeTree(probs[ctx*256:(ctx+1)*256], 8))
		dst = append(dst, b)
		ctx = byteClass(b)
	}
	if d.overran() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

func refBwtPipelineDecompress(s *bufpool.Scratch, dst, src []byte, srcLen, blockSize int,
	ent func(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error), name string) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 16 {
			return nil, fmt.Errorf("%w: %s truncated block header", ErrCorrupt, name)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		ptr := binary.LittleEndian.Uint32(src[4:])
		rleLen := int(binary.LittleEndian.Uint32(src[8:]))
		compLen := int(binary.LittleEndian.Uint32(src[12:]))
		src = src[16:]
		if compLen > len(src) || rawLen > blockSize || rleLen > 2*blockSize+8 {
			return nil, fmt.Errorf("%w: %s block lengths", ErrCorrupt, name)
		}
		if ptr == bwtRawMarker {
			if compLen != rawLen {
				return nil, fmt.Errorf("%w: %s raw block length", ErrCorrupt, name)
			}
			dst = append(dst, src[:compLen]...)
			src = src[compLen:]
			continue
		}
		rle, err := ent(s, bufpool.GrowBytes(&s.RLE, rleLen)[:0], src[:compLen], rleLen)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
		mtf, err := refRle0Decode(s, rle, rawLen)
		if err != nil {
			return nil, fmt.Errorf("%w: %s rle0", ErrCorrupt, name)
		}
		refMtfDecode(mtf)
		dst, err = refBwtInverse(s, dst, mtf, int(ptr))
		if err != nil {
			return nil, fmt.Errorf("%w: %s inverse bwt", ErrCorrupt, name)
		}
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: %s produced %d bytes, want %d", ErrCorrupt, name, len(dst)-base, srcLen)
	}
	return dst, nil
}

func refBscDecompress(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	return refBwtPipelineDecompress(s, dst, src, srcLen, bscBlockSize, refRcEntropyDecode, "bsc")
}

func refHuffEntropyDecode(s *bufpool.Scratch, dst, src []byte, rawLen int) ([]byte, error) {
	return refHuffmanDecompress(dst, src, rawLen)
}

func refBzip2Decompress(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	return refBwtPipelineDecompress(s, dst, src, srcLen, bz2BlockSize, refHuffEntropyDecode, "bzip2")
}

// ---- pre-pass LZMA decoder ----

func refLzmaDecompress(s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: lzma truncated header", ErrCorrupt)
	}
	rawLen := int(binary.LittleEndian.Uint32(src))
	if rawLen != srcLen {
		return nil, fmt.Errorf("%w: lzma header %d != %d", ErrCorrupt, rawLen, srcLen)
	}
	src = src[4:]
	if rawLen == 0 {
		return dst, nil
	}
	var d refRcDecoder
	d.init(src)
	p := lzmaProbsFrom(s)
	base := len(dst)
	state := 0
	for len(dst)-base < rawLen {
		if d.decodeBit(&p.isMatch[state]) == 0 {
			ctx := 0
			if len(dst) > base {
				ctx = int(dst[len(dst)-1] >> 5)
			}
			dst = append(dst, byte(d.decodeTree(p.lit[ctx*256:(ctx+1)*256], 8)))
			state = 0
			continue
		}
		length := int(d.decodeTree(p.length, 8)) + lzmaMinMatch
		slot := int(d.decodeTree(p.slot, 6))
		ebits := slot >> 1
		extra := 0
		if ebits > 0 {
			extra = int(d.decodeDirect(uint(ebits)))
		}
		dist := slotBase(slot, 1) + extra
		var err error
		dst, err = refLzCopyMatch(dst, base, dist, length, "lzma")
		if err != nil {
			return nil, err
		}
		state = 1
	}
	if d.overran() || len(dst)-base != rawLen {
		return nil, fmt.Errorf("%w: lzma stream", ErrCorrupt)
	}
	return dst, nil
}

// refDecompress dispatches to the pre-pass reference decoder for a codec;
// codecs whose decode path was not rewritten map to the live
// implementation (so the gate still watches them for regressions).
func refDecompress(c Codec, s *bufpool.Scratch, dst, src []byte, srcLen int) ([]byte, error) {
	switch c.ID() {
	case Huffman:
		return refHuffmanDecompress(dst, src, srcLen)
	case LZ4:
		return refLZ4Decompress(dst, src, srcLen)
	case LZO:
		return refLZODecompress(dst, src, srcLen)
	case Pithy:
		return refSnapDecompress(dst, src, srcLen, "pithy")
	case Snappy:
		return refSnapDecompress(dst, src, srcLen, "snappy")
	case QuickLZ:
		return refQlzDecompress(dst, src, srcLen)
	case Brotli:
		return refBrotliDecompress(dst, src, srcLen)
	case Bzip2:
		return refBzip2Decompress(s, dst, src, srcLen)
	case BSC:
		return refBscDecompress(s, dst, src, srcLen)
	case LZMA:
		return refLzmaDecompress(s, dst, src, srcLen)
	default:
		return DecompressWith(s, c, dst, src, srcLen)
	}
}
