package codec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hcompress/internal/bits"
)

// huffmanCodec is an order-0 canonical Huffman coder: the pure
// entropy-coding point in the pool. Fast on both ends, but blind to any
// repetition structure, so its ratio ceiling is the byte entropy.
//
// Block format (blocks of huffBlockSize):
//
//	u32 LE  rawLen   (uncompressed block length)
//	u32 LE  compLen  (length of the payload that follows)
//	if compLen == rawLen the block is stored raw (entropy expansion guard);
//	otherwise: 128 bytes of nibble-packed code lengths (256 x 4 bits),
//	then the LSB-first bitstream of codes.
type huffmanCodec struct{}

func (huffmanCodec) Name() string { return "huffman" }
func (huffmanCodec) ID() ID       { return Huffman }

const (
	huffBlockSize = 1 << 17
	huffMaxLen    = 12
)

func (huffmanCodec) Compress(dst, src []byte) ([]byte, error) {
	for len(src) > 0 {
		n := len(src)
		if n > huffBlockSize {
			n = huffBlockSize
		}
		dst = huffCompressBlock(dst, src[:n])
		src = src[n:]
	}
	return dst, nil
}

func huffCompressBlock(dst, src []byte) []byte {
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	lengths := buildCodeLengths(freq[:], huffMaxLen)
	codes := canonicalCodes(lengths)

	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // rawLen, compLen placeholders
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(src)))

	payloadStart := len(dst)
	// Nibble-packed code lengths.
	for i := 0; i < 256; i += 2 {
		dst = append(dst, lengths[i]|lengths[i+1]<<4)
	}
	w := bits.NewWriter(dst)
	for _, b := range src {
		w.WriteBits(uint64(codes[b]), uint(lengths[b]))
	}
	dst = w.Bytes()

	if len(dst)-payloadStart >= len(src) {
		// Entropy coding expanded the block: store raw.
		dst = append(dst[:payloadStart], src...)
		binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(src)))
		return dst
	}
	binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(dst)-payloadStart))
	return dst
}

func (huffmanCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: huffman truncated block header", ErrCorrupt)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		compLen := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if compLen > len(src) || rawLen > huffBlockSize {
			return nil, fmt.Errorf("%w: huffman block lengths", ErrCorrupt)
		}
		var err error
		dst, err = huffDecompressBlock(dst, src[:compLen], rawLen)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: huffman produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

func huffDecompressBlock(dst, payload []byte, rawLen int) ([]byte, error) {
	if len(payload) == rawLen {
		return append(dst, payload...), nil // stored raw
	}
	if len(payload) < 128 {
		return nil, fmt.Errorf("%w: huffman payload too short", ErrCorrupt)
	}
	var lengths [256]uint8
	for i := 0; i < 128; i++ {
		lengths[2*i] = payload[i] & 0x0F
		lengths[2*i+1] = payload[i] >> 4
	}
	table, err := buildDecodeTable(lengths[:], huffMaxLen)
	if err != nil {
		return nil, err
	}
	r := bits.NewReader(payload[128:])
	for i := 0; i < rawLen; i++ {
		e := table[r.Peek(huffMaxLen)]
		l := uint(e & 0x0F)
		if l == 0 || r.Have() < int(l) {
			return nil, fmt.Errorf("%w: huffman invalid code", ErrCorrupt)
		}
		r.Skip(l)
		dst = append(dst, byte(e>>4))
	}
	return dst, nil
}

// buildCodeLengths computes length-limited Huffman code lengths for the
// given symbol frequencies. Lengths never exceed maxLen; symbols with zero
// frequency get length 0. The construction builds optimal Huffman depths,
// clamps them to maxLen, repairs the Kraft sum, and assigns shorter codes
// to more frequent symbols.
func buildCodeLengths(freq []int, maxLen int) []uint8 {
	type sym struct {
		s int
		f int
	}
	used := make([]sym, 0, len(freq))
	for s, f := range freq {
		if f > 0 {
			used = append(used, sym{s, f})
		}
	}
	lengths := make([]uint8, len(freq))
	switch len(used) {
	case 0:
		return lengths
	case 1:
		lengths[used[0].s] = 1
		return lengths
	}
	sort.Slice(used, func(i, j int) bool { return used[i].f < used[j].f })

	// Two-queue Huffman merge over the sorted leaves: O(n).
	type node struct {
		f     int
		left  int // index into nodes, -1 for leaf
		right int
		depth int
	}
	nodes := make([]node, 0, 2*len(used))
	for _, u := range used {
		nodes = append(nodes, node{f: u.f, left: -1, right: -1})
	}
	leafQ, innerQ := 0, len(used)
	innerEnd := len(used)
	pop := func() int {
		if leafQ < len(used) && (innerQ >= innerEnd || nodes[leafQ].f <= nodes[innerQ].f) {
			leafQ++
			return leafQ - 1
		}
		innerQ++
		return innerQ - 1
	}
	for leafQ < len(used) || innerEnd-innerQ > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{f: nodes[a].f + nodes[b].f, left: a, right: b})
		innerEnd = len(nodes)
	}
	// BFS to assign depths.
	root := len(nodes) - 1
	stack := []int{root}
	nodes[root].depth = 0
	var numAtLen [64]int
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[i]
		if n.left < 0 {
			d := n.depth
			if d == 0 {
				d = 1
			}
			numAtLen[d]++
			continue
		}
		nodes[n.left].depth = n.depth + 1
		nodes[n.right].depth = n.depth + 1
		stack = append(stack, n.left, n.right)
	}
	// Clamp depths beyond maxLen into maxLen, then repair the Kraft sum.
	counts := make([]int, maxLen+1)
	for d := 1; d < len(numAtLen); d++ {
		if d <= maxLen {
			counts[d] += numAtLen[d]
		} else {
			counts[maxLen] += numAtLen[d]
		}
	}
	total := 0
	for d := 1; d <= maxLen; d++ {
		total += counts[d] << (maxLen - d)
	}
	for total > 1<<maxLen {
		counts[maxLen]--
		for d := maxLen - 1; d > 0; d-- {
			if counts[d] > 0 {
				counts[d]--
				counts[d+1] += 2
				break
			}
		}
		total--
	}
	// Assign: most frequent symbol gets the shortest length.
	idx := len(used) - 1
	for d := 1; d <= maxLen; d++ {
		for k := 0; k < counts[d]; k++ {
			lengths[used[idx].s] = uint8(d)
			idx--
		}
	}
	return lengths
}

// canonicalCodes derives LSB-first (bit-reversed) canonical codes from
// code lengths, DEFLATE-style.
func canonicalCodes(lengths []uint8) []uint32 {
	maxLen := 0
	var blCount [64]int
	for _, l := range lengths {
		blCount[l]++
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	var nextCode [64]uint32
	code := uint32(0)
	blCount[0] = 0
	for l := 1; l <= maxLen; l++ {
		code = (code + uint32(blCount[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]uint32, len(lengths))
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		codes[s] = reverseBits(nextCode[l], int(l))
		nextCode[l]++
	}
	return codes
}

func reverseBits(v uint32, n int) uint32 {
	var r uint32
	for i := 0; i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// buildDecodeTable builds a single-level decode table of 1<<maxLen entries.
// Each entry packs symbol<<4 | codeLength; zero-length entries mark invalid
// codes.
func buildDecodeTable(lengths []uint8, maxLen int) ([]uint32, error) {
	table := make([]uint32, 1<<maxLen)
	codes := canonicalCodes(lengths)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			return nil, fmt.Errorf("%w: code length %d > %d", ErrCorrupt, l, maxLen)
		}
		entry := uint32(s)<<4 | uint32(l)
		step := 1 << l
		for i := int(codes[s]); i < len(table); i += step {
			table[i] = entry
		}
	}
	return table, nil
}
