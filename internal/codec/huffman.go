package codec

import (
	"encoding/binary"
	"fmt"
	"slices"

	"hcompress/internal/bits"
)

// huffmanCodec is an order-0 canonical Huffman coder: the pure
// entropy-coding point in the pool. Fast on both ends, but blind to any
// repetition structure, so its ratio ceiling is the byte entropy.
//
// Block format (blocks of huffBlockSize):
//
//	u32 LE  rawLen   (uncompressed block length)
//	u32 LE  compLen  (length of the payload that follows)
//	if compLen == rawLen the block is stored raw (entropy expansion guard);
//	otherwise: 128 bytes of nibble-packed code lengths (256 x 4 bits),
//	then the LSB-first bitstream of codes.
//
// All work tables (symbol sort keys, tree nodes, code and decode tables)
// are fixed-size stack arrays, so compression and decompression allocate
// nothing beyond dst growth.
type huffmanCodec struct{}

func (huffmanCodec) Name() string { return "huffman" }
func (huffmanCodec) ID() ID       { return Huffman }

const (
	huffBlockSize = 1 << 17
	huffMaxLen    = 12
	// huffMaxAlphabet bounds every alphabet coded through this machinery:
	// 256 byte values here, 256+brNumLenSlot symbols for brotli.
	huffMaxAlphabet = 280
)

func (huffmanCodec) Compress(dst, src []byte) ([]byte, error) {
	for len(src) > 0 {
		n := len(src)
		if n > huffBlockSize {
			n = huffBlockSize
		}
		dst = huffCompressBlock(dst, src[:n])
		src = src[n:]
	}
	return dst, nil
}

func huffCompressBlock(dst, src []byte) []byte {
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	var lengths [256]uint8
	buildCodeLengths(lengths[:], freq[:], huffMaxLen)
	var codes [256]uint32
	canonicalCodes(codes[:], lengths[:])

	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // rawLen, compLen placeholders
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(src)))

	payloadStart := len(dst)
	// Nibble-packed code lengths.
	for i := 0; i < 256; i += 2 {
		dst = append(dst, lengths[i]|lengths[i+1]<<4)
	}
	var w bits.Writer
	w.Reset(dst)
	for _, b := range src {
		w.WriteBits(uint64(codes[b]), uint(lengths[b]))
	}
	dst = w.Bytes()

	if len(dst)-payloadStart >= len(src) {
		// Entropy coding expanded the block: store raw.
		dst = append(dst[:payloadStart], src...)
		binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(src)))
		return dst
	}
	binary.LittleEndian.PutUint32(dst[hdr+4:], uint32(len(dst)-payloadStart))
	return dst
}

func (huffmanCodec) Decompress(dst, src []byte, srcLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: huffman truncated block header", ErrCorrupt)
		}
		rawLen := int(binary.LittleEndian.Uint32(src))
		compLen := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if compLen > len(src) || rawLen > huffBlockSize {
			return nil, fmt.Errorf("%w: huffman block lengths", ErrCorrupt)
		}
		var err error
		dst, err = huffDecompressBlock(dst, src[:compLen], rawLen)
		if err != nil {
			return nil, err
		}
		src = src[compLen:]
	}
	if len(dst)-base != srcLen {
		return nil, fmt.Errorf("%w: huffman produced %d bytes, want %d", ErrCorrupt, len(dst)-base, srcLen)
	}
	return dst, nil
}

func huffDecompressBlock(dst, payload []byte, rawLen int) ([]byte, error) {
	if len(payload) == rawLen {
		return append(dst, payload...), nil // stored raw
	}
	if len(payload) < 128 {
		return nil, fmt.Errorf("%w: huffman payload too short", ErrCorrupt)
	}
	var lengths [256]uint8
	for i := 0; i < 128; i++ {
		lengths[2*i] = payload[i] & 0x0F
		lengths[2*i+1] = payload[i] >> 4
	}
	var table [1 << huffMaxLen]uint32
	if err := buildPairDecodeTable(table[:], lengths[:], huffMaxLen); err != nil {
		return nil, err
	}
	// The bitstream is managed inline (same LSB-first layout as
	// bits.Reader) so the per-symbol loop runs without function calls:
	// one bulk refill plus one table probe yields up to two symbols.
	bs := payload[128:]
	var acc uint64
	var nacc uint
	pos := 0
	for i := 0; i < rawLen; {
		if nacc < 2*huffMaxLen {
			acc &= 1<<nacc - 1
			if pos+8 <= len(bs) {
				acc |= binary.LittleEndian.Uint64(bs[pos:]) << nacc
				pos += int((63 - nacc) >> 3)
				nacc |= 56
			} else {
				for nacc <= 56 && pos < len(bs) {
					acc |= uint64(bs[pos]) << nacc
					pos++
					nacc += 8
				}
			}
		}
		e := table[acc&(1<<huffMaxLen-1)]
		if e&huffPairFlag != 0 && i+2 <= rawLen {
			// Fast path: two symbols resolved by one probe.
			l := uint(e & 31)
			if nacc >= l {
				acc >>= l
				nacc -= l
				dst = append(dst, byte(e>>6), byte(e>>16))
				i += 2
				continue
			}
		}
		l := uint(e >> 26)
		if l == 0 || nacc < l {
			return nil, fmt.Errorf("%w: huffman invalid code", ErrCorrupt)
		}
		acc >>= l
		nacc -= l
		dst = append(dst, byte(e>>6))
		i++
	}
	return dst, nil
}

// buildCodeLengths computes length-limited Huffman code lengths for the
// given symbol frequencies into lengths (len(lengths) == len(freq), at most
// huffMaxAlphabet). Lengths never exceed maxLen; symbols with zero
// frequency get length 0. The construction builds optimal Huffman depths,
// clamps them to maxLen, repairs the Kraft sum, and assigns shorter codes
// to more frequent symbols (ties broken by symbol order).
func buildCodeLengths(lengths []uint8, freq []int, maxLen int) {
	for i := range lengths {
		lengths[i] = 0
	}
	// Used symbols as packed sort keys: frequency in the high bits, symbol
	// index in the low 10, so one flat sort orders by (freq, symbol).
	var keys [huffMaxAlphabet]uint64
	nu := 0
	for s, f := range freq {
		if f > 0 {
			keys[nu] = uint64(f)<<10 | uint64(s)
			nu++
		}
	}
	switch nu {
	case 0:
		return
	case 1:
		lengths[keys[0]&0x3FF] = 1
		return
	}
	slices.Sort(keys[:nu])

	// Two-queue Huffman merge over the sorted leaves: O(n).
	type hnode struct {
		f           int32
		left, right int16 // node indices, -1 for leaf
		depth       int16
	}
	var nodes [2 * huffMaxAlphabet]hnode
	for i := 0; i < nu; i++ {
		nodes[i] = hnode{f: int32(keys[i] >> 10), left: -1, right: -1}
	}
	nn := nu
	leafQ, innerQ := 0, nu
	innerEnd := nu
	for leafQ < nu || innerEnd-innerQ > 1 {
		var a, b int
		if leafQ < nu && (innerQ >= innerEnd || nodes[leafQ].f <= nodes[innerQ].f) {
			a = leafQ
			leafQ++
		} else {
			a = innerQ
			innerQ++
		}
		if leafQ < nu && (innerQ >= innerEnd || nodes[leafQ].f <= nodes[innerQ].f) {
			b = leafQ
			leafQ++
		} else {
			b = innerQ
			innerQ++
		}
		nodes[nn] = hnode{f: nodes[a].f + nodes[b].f, left: int16(a), right: int16(b)}
		nn++
		innerEnd = nn
	}
	// DFS to assign depths.
	root := nn - 1
	var stack [2 * huffMaxAlphabet]int16
	stack[0] = int16(root)
	sp := 1
	nodes[root].depth = 0
	var numAtLen [64]int
	for sp > 0 {
		sp--
		i := stack[sp]
		n := nodes[i]
		if n.left < 0 {
			d := n.depth
			if d == 0 {
				d = 1
			}
			numAtLen[d]++
			continue
		}
		nodes[n.left].depth = n.depth + 1
		nodes[n.right].depth = n.depth + 1
		stack[sp] = n.left
		stack[sp+1] = n.right
		sp += 2
	}
	// Clamp depths beyond maxLen into maxLen, then repair the Kraft sum.
	var counts [64]int
	for d := 1; d < len(numAtLen); d++ {
		if d <= maxLen {
			counts[d] += numAtLen[d]
		} else {
			counts[maxLen] += numAtLen[d]
		}
	}
	total := 0
	for d := 1; d <= maxLen; d++ {
		total += counts[d] << (maxLen - d)
	}
	for total > 1<<maxLen {
		counts[maxLen]--
		for d := maxLen - 1; d > 0; d-- {
			if counts[d] > 0 {
				counts[d]--
				counts[d+1] += 2
				break
			}
		}
		total--
	}
	// Assign: most frequent symbol gets the shortest length.
	idx := nu - 1
	for d := 1; d <= maxLen; d++ {
		for k := 0; k < counts[d]; k++ {
			lengths[keys[idx]&0x3FF] = uint8(d)
			idx--
		}
	}
}

// canonicalCodes derives LSB-first (bit-reversed) canonical codes from code
// lengths into codes (len(codes) == len(lengths)), DEFLATE-style.
func canonicalCodes(codes []uint32, lengths []uint8) {
	maxLen := 0
	var blCount [64]int
	for _, l := range lengths {
		blCount[l]++
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	var nextCode [64]uint32
	code := uint32(0)
	blCount[0] = 0
	for l := 1; l <= maxLen; l++ {
		code = (code + uint32(blCount[l-1])) << 1
		nextCode[l] = code
	}
	for s, l := range lengths {
		codes[s] = 0
		if l == 0 {
			continue
		}
		codes[s] = reverseBits(nextCode[l], int(l))
		nextCode[l]++
	}
}

func reverseBits(v uint32, n int) uint32 {
	var r uint32
	for i := 0; i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// buildDecodeTable fills a single-level decode table of 1<<maxLen entries.
// Each entry packs symbol<<4 | codeLength; zero-length entries mark invalid
// codes. table must arrive zeroed (a fresh stack array qualifies).
func buildDecodeTable(table []uint32, lengths []uint8, maxLen int) error {
	var codes [huffMaxAlphabet]uint32
	canonicalCodes(codes[:len(lengths)], lengths)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			return fmt.Errorf("%w: code length %d > %d", ErrCorrupt, l, maxLen)
		}
		entry := uint32(s)<<4 | uint32(l)
		step := 1 << l
		for i := int(codes[s]); i < len(table); i += step {
			table[i] = entry
		}
	}
	return nil
}

// huffPairFlag marks a pair-table entry that resolves two symbols.
const huffPairFlag = 1 << 5

// buildPairDecodeTable fills a decode table of 1<<maxLen entries where each
// probe resolves up to TWO symbols: whenever the first code in the window
// leaves enough bits for the following code to complete, both are baked into
// the entry. Layout (32 bits):
//
//	bits 0..4   total consumed length (l1, or l1+l2 when paired)
//	bit  5      pair flag (huffPairFlag)
//	bits 6..15  first symbol
//	bits 16..25 second symbol (pair entries only)
//	bits 26..30 l1 alone — the fallback length when the pair cannot be
//	            taken (output or bitstream about to end)
//
// Zero entries mark invalid codes. table must arrive zeroed.
func buildPairDecodeTable(table []uint32, lengths []uint8, maxLen int) error {
	if err := buildDecodeTable(table, lengths, maxLen); err != nil {
		return err
	}
	// Rewrite in place, high index to low: i>>l1 < i for l1 >= 1, so the
	// second-symbol probe below always reads a not-yet-rewritten
	// single-symbol entry.
	for i := len(table) - 1; i >= 0; i-- {
		e1 := table[i]
		l1 := e1 & 0x0F
		if l1 == 0 {
			table[i] = 0
			continue
		}
		ne := l1 | (e1>>4)<<6 | l1<<26
		e2 := table[i>>l1]
		// Pairs are restricted to byte-valued symbols so decoders can emit
		// both with plain byte() truncation (brotli's alphabet runs past
		// 255; its length slots must take the single-symbol path anyway).
		if l2 := e2 & 0x0F; l2 != 0 && l1+l2 <= uint32(maxLen) && e1>>4 < 256 && e2>>4 < 256 {
			ne = (l1 + l2) | huffPairFlag | (e1>>4)<<6 | (e2>>4)<<16 | l1<<26
		}
		table[i] = ne
	}
	return nil
}
