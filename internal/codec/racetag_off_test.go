//go:build !race

package codec

// raceDetectorEnabled is false without -race; see racetag_on_test.go.
const raceDetectorEnabled = false
