// Package cluster is the bulk-synchronous rank simulator used by the
// experiment harness: N ranks issue I/O tasks against a shared tiered
// store, each carrying its own virtual clock, with barriers between
// phases — the structure of every workload in the paper's evaluation
// (timestep checkpoints, read phases, micro-benchmark loops).
package cluster

import (
	"fmt"

	"hcompress/internal/analyzer"
	"hcompress/internal/core"
	"hcompress/internal/des"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/workload"
)

// IOClient abstracts the system under test: HCompress or a baseline.
type IOClient interface {
	Write(now float64, key string, data []byte, size int64, attr analyzer.Result) (manager.Result, error)
	Read(now float64, key string) (manager.Result, error)
}

// HCClient adapts the HCompress pipeline (engine + manager) to IOClient.
type HCClient struct {
	Eng *core.Engine
	Mgr *manager.Manager
	Mon *monitor.SystemMonitor
}

// Write plans with the HCDP engine and executes with the Compression
// Manager, replanning once on stale-capacity failures.
func (h *HCClient) Write(now float64, key string, data []byte, size int64, attr analyzer.Result) (manager.Result, error) {
	schema, err := h.Eng.Plan(now, attr, size)
	if err != nil {
		return manager.Result{}, err
	}
	res, err := h.Mgr.ExecuteWrite(now, key, data, size, attr, schema)
	if err != nil {
		h.Mon.ForceRefresh()
		schema, err2 := h.Eng.Plan(now, attr, size)
		if err2 != nil {
			return manager.Result{}, fmt.Errorf("cluster: replan: %w (after %v)", err2, err)
		}
		return h.Mgr.ExecuteWrite(now, key, data, size, attr, schema)
	}
	return res, nil
}

// Read delegates to the Compression Manager.
func (h *HCClient) Read(now float64, key string) (manager.Result, error) {
	return h.Mgr.ExecuteRead(now, key)
}

// PhaseStats aggregates one phase across all ranks.
type PhaseStats struct {
	Tasks     int
	Bytes     int64 // uncompressed bytes moved
	Stored    int64 // bytes placed on tiers (writes)
	CodecTime float64
	IOTime    float64
	// Makespan is the phase's completion time (max over ranks) minus its
	// start (the barrier before it).
	Makespan float64
}

// Sim drives R ranks with individual virtual clocks.
type Sim struct {
	clocks []des.Clock
}

// NewSim creates a simulator with the given rank count.
func NewSim(ranks int) *Sim {
	if ranks < 1 {
		ranks = 1
	}
	return &Sim{clocks: make([]des.Clock, ranks)}
}

// Ranks reports the rank count.
func (s *Sim) Ranks() int { return len(s.clocks) }

// Now reports the global makespan so far.
func (s *Sim) Now() float64 { return des.MaxTime(s.clocks) }

// Barrier synchronizes all ranks to the current makespan (MPI_Barrier).
func (s *Sim) Barrier() {
	m := s.Now()
	for i := range s.clocks {
		s.clocks[i].AdvanceTo(m)
	}
}

// Compute advances every rank by sec seconds of computation.
func (s *Sim) Compute(sec float64) {
	for i := range s.clocks {
		s.clocks[i].Advance(sec)
	}
}

// GenFunc materializes the data for (rank, task); nil data means modeled
// mode (sizes only).
type GenFunc func(rank, task int) []byte

// WritePhase has every rank issue tasksPerRank writes of size bytes.
// Tasks interleave across ranks (task-major order), approximating
// concurrent arrival at the shared store. A barrier follows the phase.
func (s *Sim) WritePhase(io IOClient, prefix string, tasksPerRank int, size int64, attr analyzer.Result, gen GenFunc) (PhaseStats, error) {
	start := s.Now()
	var st PhaseStats
	for task := 0; task < tasksPerRank; task++ {
		for r := range s.clocks {
			var data []byte
			if gen != nil {
				data = gen(r, task)
			}
			key := workload.TaskKey(prefix, r, task)
			res, err := io.Write(s.clocks[r].Now(), key, data, size, attr)
			if err != nil {
				return st, fmt.Errorf("cluster: rank %d task %d: %w", r, task, err)
			}
			s.clocks[r].AdvanceTo(res.End)
			st.Tasks++
			st.Bytes += size
			st.Stored += res.Stored
			st.CodecTime += res.CodecTime
			st.IOTime += res.IOTime
		}
	}
	s.Barrier()
	st.Makespan = s.Now() - start
	return st, nil
}

// ReadPhase has every rank read back its tasksPerRank tasks.
func (s *Sim) ReadPhase(io IOClient, prefix string, tasksPerRank int) (PhaseStats, error) {
	start := s.Now()
	var st PhaseStats
	for task := 0; task < tasksPerRank; task++ {
		for r := range s.clocks {
			key := workload.TaskKey(prefix, r, task)
			res, err := io.Read(s.clocks[r].Now(), key)
			if err != nil {
				return st, fmt.Errorf("cluster: rank %d task %d: %w", r, task, err)
			}
			s.clocks[r].AdvanceTo(res.End)
			st.Tasks++
			for _, sr := range res.SubResults {
				st.Bytes += sr.OrigLen
			}
			st.CodecTime += res.CodecTime
			st.IOTime += res.IOTime
		}
	}
	s.Barrier()
	st.Makespan = s.Now() - start
	return st, nil
}
