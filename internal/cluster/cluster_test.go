package cluster

import (
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/core"
	"hcompress/internal/hermes"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

func modeledHC(t *testing.T, h tier.Hierarchy) *HCClient {
	t.Helper()
	st, err := store.New(h, false)
	if err != nil {
		t.Fatal(err)
	}
	truth := seed.Builtin(h)
	pred := predictor.New(truth)
	mon := monitor.New(st, 0)
	eng, err := core.New(pred, mon, core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		t.Fatal(err)
	}
	return &HCClient{Eng: eng, Mgr: manager.New(st, pred, manager.ModelOracle{Truth: truth}), Mon: mon}
}

func floatAttr() analyzer.Result {
	return analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
}

func TestWriteReadPhases(t *testing.T) {
	h := tier.Ares(tier.GB, 4*tier.GB, 16*tier.GB, tier.TB)
	hc := modeledHC(t, h)
	sim := NewSim(8)
	ws, err := sim.WritePhase(hc, "w", 4, 1<<20, floatAttr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Tasks != 32 {
		t.Errorf("tasks %d", ws.Tasks)
	}
	if ws.Bytes != 32<<20 {
		t.Errorf("bytes %d", ws.Bytes)
	}
	if ws.Stored <= 0 || ws.Makespan <= 0 {
		t.Errorf("stats %+v", ws)
	}
	rs, err := sim.ReadPhase(hc, "w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tasks != 32 || rs.Makespan <= 0 {
		t.Errorf("read stats %+v", rs)
	}
	if rs.Bytes != 32<<20 {
		t.Errorf("read bytes %d", rs.Bytes)
	}
}

func TestBarrierAndCompute(t *testing.T) {
	sim := NewSim(3)
	sim.Compute(5)
	if sim.Now() != 5 {
		t.Errorf("now %v", sim.Now())
	}
	sim.Barrier()
	sim.Compute(1)
	if sim.Now() != 6 {
		t.Errorf("now %v", sim.Now())
	}
	if sim.Ranks() != 3 {
		t.Errorf("ranks %d", sim.Ranks())
	}
	if NewSim(0).Ranks() != 1 {
		t.Error("zero ranks should clamp to 1")
	}
}

func TestHCClientReplansOnStaleCapacity(t *testing.T) {
	// A monitor with a long refresh interval plans against stale data;
	// the HCClient must recover via ForceRefresh + replan.
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 8 << 20, Latency: 1e-6, Bandwidth: 1e9, Lanes: 1},
		{Name: "pfs", Capacity: 1 << 40, Latency: 1e-3, Bandwidth: 1e8, Lanes: 1},
	}}
	st, _ := store.New(h, false)
	truth := seed.Builtin(h)
	pred := predictor.New(truth)
	mon := monitor.New(st, 1e9) // effectively never refreshes on its own
	eng, _ := core.New(pred, mon, core.Config{Weights: seed.WeightsEqual, DisableCompression: true})
	hc := &HCClient{Eng: eng, Mgr: manager.New(st, pred, manager.ModelOracle{Truth: truth}), Mon: mon}
	attr := floatAttr()
	// Each write fills RAM; with a stale monitor the later writes still
	// plan for RAM, fail placement (the manager spills), or replan.
	for i := 0; i < 6; i++ {
		if _, err := hc.Write(0, workload0(i), nil, 4<<20, attr); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

func workload0(i int) string { return "t" + string(rune('a'+i)) }

func TestBaselineAsIOClient(t *testing.T) {
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	st, _ := store.New(h, false)
	truth := seed.Builtin(h)
	b, err := hermes.New(st, "snappy", manager.ModelOracle{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	var io IOClient = b
	sim := NewSim(4)
	ws, err := sim.WritePhase(io, "b", 2, 1<<20, floatAttr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Tasks != 8 || ws.Stored >= ws.Bytes {
		t.Errorf("baseline stats %+v", ws)
	}
	if _, err := sim.ReadPhase(io, "b", 2); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() float64 {
		h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
		hc := modeledHC(t, h)
		sim := NewSim(16)
		if _, err := sim.WritePhase(hc, "d", 8, 512<<10, floatAttr(), nil); err != nil {
			t.Fatal(err)
		}
		return sim.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
