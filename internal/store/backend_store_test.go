package store

import (
	"bytes"
	"errors"
	"testing"

	"hcompress/internal/hcerr"
	"hcompress/internal/store/backend"
	"hcompress/internal/tier"
)

func fileHier() tier.Hierarchy {
	return tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 10000, Latency: 0, Bandwidth: 1e9, Lanes: 2},
		{Name: "nvme", Capacity: 50000, Latency: 1e-4, Bandwidth: 1e8, Lanes: 1, Backend: tier.BackendFile},
	}}
}

func TestFileBackendRequiresDataDir(t *testing.T) {
	if _, err := Open(fileHier(), Options{KeepData: true}); err == nil {
		t.Fatal("Open must fail when a file tier has no DataDir")
	}
}

func TestFileBackedStoreRoundTripMoveAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(fileHier(), Options{KeepData: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d1 := bytes.Repeat([]byte{7}, 333)
	d2 := []byte("stays on the durable tier")
	if _, err := s.Put(0, 1, "moved", d1, int64(len(d1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(1, 1, "kept", d2, int64(len(d2))); err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Get(2, "moved")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Data, d1) {
		t.Fatal("file-tier Get mismatch")
	}
	s.Release(b)

	// file → mem and back: the payload must survive both handoffs.
	if _, err := s.Move(3, "moved", 0); err != nil {
		t.Fatal(err)
	}
	if s.Used(1) != int64(len(d2)) || s.Used(0) != int64(len(d1)) {
		t.Fatalf("capacity after move: ram=%d nvme=%d", s.Used(0), s.Used(1))
	}
	if _, err := s.Move(4, "moved", 1); err != nil {
		t.Fatal(err)
	}
	b, _, err = s.Get(5, "moved")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Data, d1) || b.Tier != 1 {
		t.Fatal("payload lost across moves")
	}
	s.Release(b)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reopen on the same directory: the durable tier's contents
	// re-enter the blob directory with their capacity re-charged.
	s2, err := Open(fileHier(), Options{KeepData: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("recovered %d blobs, want 2", s2.Len())
	}
	if got, want := s2.Used(1), int64(len(d1)+len(d2)); got != want {
		t.Fatalf("recovered Used(1) = %d, want %d", got, want)
	}
	if s2.Used(0) != 0 {
		t.Fatalf("mem tier recovered %d bytes, want 0", s2.Used(0))
	}
	for key, want := range map[string][]byte{"moved": d1, "kept": d2} {
		b, _, err := s2.Get(10, key)
		if err != nil {
			t.Fatalf("Get(%q) after reopen: %v", key, err)
		}
		if !bytes.Equal(b.Data, want) || b.Tier != 1 {
			t.Fatalf("reopened %q mismatch (tier %d)", key, b.Tier)
		}
		s2.Release(b)
	}
}

func TestStatusReportsBackendKind(t *testing.T) {
	s, err := Open(fileHier(), Options{KeepData: true, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Status(0)
	if st[0].Backend != "mem" || st[1].Backend != "file" {
		t.Fatalf("Status backends = %q/%q, want mem/file", st[0].Backend, st[1].Backend)
	}
}

// failBackend wraps Mem but refuses every Put — the broken-device stub
// for the health-observation path.
type failBackend struct {
	*backend.Mem
	putErr error
}

func (f *failBackend) Put(now float64, key string, r *backend.Ref) (backend.Handle, error) {
	return 0, f.putErr
}

func TestBackendPutFailureObservedAndSpillable(t *testing.T) {
	devErr := errors.New("device: write failed")
	var observed []error
	s, err := Open(testHier(), Options{
		KeepData: true,
		Backends: []backend.TierBackend{
			&failBackend{Mem: backend.NewMem(), putErr: devErr},
			backend.NewMem(),
		},
		HealthSink: func(now float64, tr int, err error) {
			if err != nil && tr == 0 {
				observed = append(observed, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := []byte("doomed write")
	_, err = s.Put(0, 0, "k", data, int64(len(data)))
	if !errors.Is(err, hcerr.ErrBackendIO) {
		t.Fatalf("Put = %v, want ErrBackendIO", err)
	}
	if !errors.Is(err, devErr) {
		t.Fatal("device error must stay in the chain")
	}
	if len(observed) == 0 {
		t.Fatal("backend failure never reached the health sink")
	}
	// The failed put must leave no residue: capacity free, key absent.
	if s.Used(0) != 0 || s.Len() != 0 {
		t.Fatalf("residue after failed put: used=%d len=%d", s.Used(0), s.Len())
	}
	// The healthy tier still accepts the key.
	if _, err := s.Put(1, 1, "k", data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
}
