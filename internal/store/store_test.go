package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hcompress/internal/bufpool"
	"hcompress/internal/tier"
)

func testHier() tier.Hierarchy {
	return tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1000, Latency: 0, Bandwidth: 1e9, Lanes: 2},
		{Name: "ssd", Capacity: 5000, Latency: 0, Bandwidth: 1e8, Lanes: 1},
	}}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(testHier(), true)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello tiered world")
	end, err := s.Put(0, 0, "k1", data, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("put must advance time")
	}
	b, end2, err := s.Get(end, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Data, data) || b.Tier != 0 || b.Size != int64(len(data)) {
		t.Fatalf("blob mismatch: %+v", b)
	}
	if end2 <= end {
		t.Fatal("get must advance time")
	}
}

func TestPutCopiesData(t *testing.T) {
	s, _ := New(testHier(), true)
	data := []byte("mutate me")
	s.Put(0, 0, "k", data, int64(len(data)))
	data[0] = 'X'
	b, _, _ := s.Get(0, "k")
	if b.Data[0] == 'X' {
		t.Fatal("store must copy payloads")
	}
}

func TestNoDataMode(t *testing.T) {
	s, _ := New(testHier(), false)
	if _, err := s.Put(0, 1, "k", []byte("abc"), 3); err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if b.Data != nil {
		t.Fatal("no-data mode must not retain payloads")
	}
	if b.Size != 3 {
		t.Fatal("size must still be tracked")
	}
}

func TestCapacityEnforced(t *testing.T) {
	s, _ := New(testHier(), false)
	if _, err := s.Put(0, 0, "a", nil, 900); err != nil {
		t.Fatal(err)
	}
	_, err := s.Put(0, 0, "b", nil, 200)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	// The failed put must not leak capacity.
	if s.Used(0) != 900 {
		t.Fatalf("used %d want 900", s.Used(0))
	}
	if _, err := s.Put(0, 0, "c", nil, 100); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteReleasesOldAllocation(t *testing.T) {
	s, _ := New(testHier(), false)
	s.Put(0, 0, "k", nil, 800)
	// Overwriting with a smaller blob on another tier frees tier 0.
	if _, err := s.Put(0, 1, "k", nil, 100); err != nil {
		t.Fatal(err)
	}
	if s.Used(0) != 0 || s.Used(1) != 100 {
		t.Fatalf("used = %d/%d", s.Used(0), s.Used(1))
	}
	// Overwrite that does not fit must roll back cleanly.
	s.Put(0, 0, "big", nil, 950)
	if _, err := s.Put(0, 0, "k", nil, 200); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if got, err := s.Stat("k"); err != nil || got.Tier != 1 || got.Size != 100 {
		t.Fatalf("rollback corrupted blob: %+v %v", got, err)
	}
}

func TestDelete(t *testing.T) {
	s, _ := New(testHier(), false)
	s.Put(0, 0, "k", nil, 500)
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Used(0) != 0 {
		t.Fatal("delete must release capacity")
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, _, err := s.Get(0, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestMove(t *testing.T) {
	s, _ := New(testHier(), false)
	s.Put(0, 0, "k", nil, 400)
	end, err := s.Move(1.0, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 1.0 {
		t.Fatal("move must cost time")
	}
	if s.Used(0) != 0 || s.Used(1) != 400 {
		t.Fatalf("used = %d/%d", s.Used(0), s.Used(1))
	}
	b, _ := s.Stat("k")
	if b.Tier != 1 {
		t.Fatalf("tier %d", b.Tier)
	}
	// Move to same tier is a no-op.
	if end, err := s.Move(2.0, "k", 1); err != nil || end != 2.0 {
		t.Fatalf("no-op move: %v %v", end, err)
	}
	// Move to a full tier fails without side effects.
	s2, _ := New(testHier(), false)
	s2.Put(0, 0, "fill", nil, 1000)
	s2.Put(0, 1, "big", nil, 4500)
	if _, err := s2.Move(0, "fill", 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if s2.Used(0) != 1000 || s2.Used(1) != 4500 {
		t.Fatalf("failed move had side effects: %d/%d", s2.Used(0), s2.Used(1))
	}
}

func TestStatusReflectsState(t *testing.T) {
	s, _ := New(testHier(), false)
	s.Put(0, 0, "a", nil, 100)
	s.Put(0, 1, "b", nil, 2000)
	st := s.Status(0)
	if len(st) != 2 {
		t.Fatal("two tiers expected")
	}
	if st[0].Used != 100 || st[0].Remaining != 900 || !st[0].Available {
		t.Fatalf("tier0 status %+v", st[0])
	}
	if st[1].Used != 2000 || st[1].Remaining != 3000 {
		t.Fatalf("tier1 status %+v", st[1])
	}
	// Immediately after the puts, lanes should still be busy at t=0.
	if st[1].QueueLen == 0 {
		t.Error("tier1 lane should be busy at t=0")
	}
	if st[1].Backlog <= 0 {
		t.Error("tier1 should report backlog")
	}
}

func TestTimingModelsContention(t *testing.T) {
	h := tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "d", Capacity: 1 << 30, Latency: 0, Bandwidth: 1e6, Lanes: 1},
	}}
	s, _ := New(h, false)
	e1, _ := s.Put(0, 0, "a", nil, 1e6)
	e2, _ := s.Put(0, 0, "b", nil, 1e6)
	if e1 != 1 || e2 != 2 {
		t.Fatalf("contention not modeled: %v %v", e1, e2)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s, _ := New(testHier(), true)
	s.Put(0, 0, "k", []byte("x"), 1)
	s.Reset()
	if s.Len() != 0 || s.Used(0) != 0 {
		t.Fatal("reset incomplete")
	}
	if _, _, err := s.Get(0, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("blob survived reset")
	}
}

func TestInvalidTier(t *testing.T) {
	s, _ := New(testHier(), false)
	if _, err := s.Put(0, 7, "k", nil, 1); err == nil {
		t.Error("invalid tier accepted")
	}
	if _, err := s.Put(0, -1, "k", nil, 1); err == nil {
		t.Error("negative tier accepted")
	}
	if _, err := s.Put(0, 0, "k", nil, -5); err == nil {
		t.Error("negative size accepted")
	}
	if s.Used(9) != 0 || s.Remaining(9) != 0 {
		t.Error("out-of-range accessors should return 0")
	}
}

func TestInvalidHierarchyRejected(t *testing.T) {
	if _, err := New(tier.Hierarchy{}, false); err == nil {
		t.Error("empty hierarchy accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := New(tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: 1 << 30, Latency: 0, Bandwidth: 1e12, Lanes: 8},
	}}, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-%d", g, i)
				if _, err := s.Put(0, 0, key, []byte{byte(i)}, 1); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(0, key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Fatalf("len %d want 1600", s.Len())
	}
}

// arenaPuts reports the arena's lifetime recycle counter.
func arenaPuts() int64 {
	_, _, _, put := bufpool.Stats()
	return put
}

func TestPutOwnedRecyclesOnDelete(t *testing.T) {
	s, _ := New(testHier(), true)
	data := bufpool.Get(100)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := s.PutOwned(0, 0, "k", data, 100); err != nil {
		t.Fatal(err)
	}
	before := arenaPuts()
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if arenaPuts() <= before {
		t.Error("delete of owned blob did not recycle its payload")
	}
}

func TestPutOwnedRecyclesOnOverwrite(t *testing.T) {
	s, _ := New(testHier(), true)
	old := bufpool.Get(64)
	if _, err := s.PutOwned(0, 0, "k", old, 64); err != nil {
		t.Fatal(err)
	}
	before := arenaPuts()
	if _, err := s.Put(0, 0, "k", []byte("replacement"), 11); err != nil {
		t.Fatal(err)
	}
	if arenaPuts() <= before {
		t.Error("overwrite did not recycle the old owned payload")
	}
}

func TestPutOwnedRecyclesOnReset(t *testing.T) {
	s, _ := New(testHier(), true)
	if _, err := s.PutOwned(0, 0, "k", bufpool.Get(64), 64); err != nil {
		t.Fatal(err)
	}
	before := arenaPuts()
	s.Reset()
	if arenaPuts() <= before {
		t.Error("reset did not recycle owned payloads")
	}
}

func TestPutOwnedErrorLeavesCallerOwnership(t *testing.T) {
	s, _ := New(testHier(), true)
	data := bufpool.Get(64)
	copy(data, "precious")
	before := arenaPuts()
	// Tier 0 capacity is 1000: oversize placement must fail.
	if _, err := s.PutOwned(0, 0, "big", data, 4000); err == nil {
		t.Fatal("oversize PutOwned accepted")
	}
	if arenaPuts() != before {
		t.Error("failed PutOwned recycled the caller's buffer")
	}
	if string(data[:8]) != "precious" {
		t.Error("failed PutOwned corrupted the caller's buffer")
	}
	bufpool.Put(data)
}

func TestPutOwnedRetentionOffRecyclesImmediately(t *testing.T) {
	s, _ := New(testHier(), false)
	before := arenaPuts()
	if _, err := s.PutOwned(0, 0, "k", bufpool.Get(64), 64); err != nil {
		t.Fatal(err)
	}
	if arenaPuts() <= before {
		t.Error("retention-off PutOwned did not recycle the payload")
	}
}

func TestPeekPinSurvivesDelete(t *testing.T) {
	s, _ := New(testHier(), true)
	data := bufpool.Get(32)
	copy(data, "pinned payload bytes")
	if _, err := s.PutOwned(0, 0, "k", data, 32); err != nil {
		t.Fatal(err)
	}
	b, err := s.Peek(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	before := arenaPuts()
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	// The peek pin must keep the payload out of the arena...
	if arenaPuts() != before {
		t.Fatal("payload recycled while still pinned by Peek")
	}
	if string(b.Data[:6]) != "pinned" {
		t.Error("pinned payload corrupted after delete")
	}
	// ...until Release drops the last reference.
	s.Release(b)
	if arenaPuts() <= before {
		t.Error("Release of last pin did not recycle the payload")
	}
}

func TestGetCopiesOwnedPayload(t *testing.T) {
	s, _ := New(testHier(), true)
	data := bufpool.Get(16)
	copy(data, "owned-payload")
	if _, err := s.PutOwned(0, 0, "k", data, 16); err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 'X' // caller may mutate a Get result freely
	b2, err := s.Peek(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(b2)
	if string(b2.Data[:5]) != "owned" {
		t.Error("mutating a Get result corrupted the stored payload")
	}
}
