// Package durable is the file-backed NVMe-class tier backend: payloads
// live in append-only log files on disk and survive a process crash.
//
// # On-disk layout
//
// A backend owns one directory. It contains exactly one active journal
// (`wal-%08d.log`) that every write appends to, and any number of sealed
// segments (`seg-%08d.log`) — journals that reached the segment-size
// threshold and were made immutable by an atomic rename. File ids are
// allocated monotonically and never reused, so ascending id order is
// append order; a `compact.tmp` may transiently exist mid-compaction and
// is discarded on open.
//
// Both file kinds hold the same CRC32C-framed records:
//
//	u32  crc32c (Castagnoli) over everything after this field
//	u8   op      1 = put, 2 = delete
//	u64  handle
//	u32  key length
//	u32  payload length (0 for delete)
//	...  key bytes
//	...  payload bytes
//
// # Recovery invariants
//
// Open replays every file in ascending id order, rebuilding the
// handle→location index: a put record (re)binds its handle, a delete
// record kills it. Only the highest-id file may end in a torn record —
// lower files were fsynced before their seal rename — so a short or
// CRC-failing tail there is truncated away, while damage anywhere else
// is reported as corruption. Every replayed payload's checksum is
// recorded and re-verified on each subsequent read. After replay the
// surviving entries are deduplicated by key (the latest record wins,
// stale same-key payloads become dead bytes) and reported via Recovered.
//
// # Compaction
//
// When the dead fraction of sealed bytes passes the threshold, the
// backend seals the journal and rewrites every live sealed record into a
// fresh segment whose id is *above* all inputs and *below* the new
// journal. Replay therefore stays correct at every crash point: with the
// inputs still present the output merely re-puts the same handles, and
// inputs are removed in ascending id order so a put record can never
// outlive the delete record that shadows it. Tombstones vanish with the
// inputs — compacting all sealed segments at once is what makes dropping
// them safe.
//
// The fsync used at every durability point is injectable, and unexported
// kill hooks let tests abort put/compaction mid-write to simulate torn
// crashes deterministically.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hcompress/internal/bufpool"
	"hcompress/internal/hcerr"
	"hcompress/internal/store/backend"
)

const (
	opPut = 1
	opDel = 2

	// hdrSize is the fixed record prefix: crc + op + handle + klen + dlen.
	hdrSize = 4 + 1 + 8 + 4 + 4

	// maxKeyLen / maxPayloadLen bound the lengths a replayed header may
	// claim; anything larger is treated as a torn/corrupt record.
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 31
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("durable: backend closed")

// Options tune a file backend. The zero value selects the defaults.
type Options struct {
	// SegmentBytes seals the active journal into an immutable segment
	// once it grows past this size. Default 4 MiB.
	SegmentBytes int64
	// SyncEvery fsyncs the journal every N put appends (1 = every put,
	// the crash-safest and the default). Tombstone appends ride on the
	// same cadence.
	SyncEvery int
	// CompactMinDead is the dead fraction of sealed bytes that triggers
	// compaction. Default 0.5.
	CompactMinDead float64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = 0.5
	}
	return o
}

// entry locates one live payload on disk.
type entry struct {
	key  string
	file int64  // id of the file holding the record
	off  int64  // offset of the payload bytes within that file
	n    int64  // payload length
	crc  uint32 // crc32c of the payload, re-verified on every read
	rec  int64  // full record size, for live-byte accounting
	seq  int64  // replay order, for last-record-wins key dedup on Open
}

// Backend is a file-backed TierBackend. All methods are safe for
// concurrent use; one mutex serializes the backend (reads are preads on
// shared descriptors but share the lock so compaction never closes a
// descriptor mid-read).
type Backend struct {
	dir  string
	opts Options

	mu        sync.Mutex
	wal       *os.File
	walID     int64
	walSize   int64
	sinceSync int
	files     map[int64]*os.File // read descriptors, active journal included
	fileSize  map[int64]int64
	live      map[int64]int64 // live record bytes per file
	index     map[backend.Handle]entry
	next      uint64 // last issued handle
	nextFile  int64
	used      int64
	recovered []backend.RecoveredEntry
	opened    bool
	closed    bool

	// syncFn is the injectable durability point (defaults to
	// (*os.File).Sync); kill, when non-nil, is consulted at named crash
	// points and a non-nil return aborts the operation mid-write,
	// simulating a crash for the kill-point tests.
	syncFn func(*os.File) error
	kill   func(point string) error
}

// New creates a file backend rooted at dir. Nothing touches the disk
// until Open.
func New(dir string, opts Options) *Backend {
	return &Backend{
		dir:      dir,
		opts:     opts.withDefaults(),
		files:    make(map[int64]*os.File),
		fileSize: make(map[int64]int64),
		live:     make(map[int64]int64),
		index:    make(map[backend.Handle]entry),
		syncFn:   func(f *os.File) error { return f.Sync() },
	}
}

// Kind implements backend.TierBackend.
func (b *Backend) Kind() string { return "file" }

// Resident implements backend.TierBackend: payloads live on disk, not in
// retained references.
func (b *Backend) Resident() bool { return false }

func (b *Backend) killpoint(point string) error {
	if b.kill == nil {
		return nil
	}
	return b.kill(point)
}

func walName(id int64) string { return fmt.Sprintf("wal-%08d.log", id) }
func segName(id int64) string { return fmt.Sprintf("seg-%08d.log", id) }

func parseLogName(name string) (id int64, active bool, ok bool) {
	var prefix string
	switch {
	case strings.HasPrefix(name, "wal-"):
		prefix, active = "wal-", true
	case strings.HasPrefix(name, "seg-"):
		prefix = "seg-"
	default:
		return 0, false, false
	}
	if !strings.HasSuffix(name, ".log") {
		return 0, false, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log")
	if _, err := fmt.Sscanf(digits, "%d", &id); err != nil {
		return 0, false, false
	}
	return id, active, true
}

// appendRecord encodes one framed record onto dst.
func appendRecord(dst []byte, op byte, h backend.Handle, key string, data []byte) []byte {
	start := len(dst)
	var hdr [hdrSize]byte
	hdr[4] = op
	binary.LittleEndian.PutUint64(hdr[5:], uint64(h))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(len(data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, data...)
	crc := crc32.Checksum(dst[start+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start:start+4], crc)
	return dst
}

// Open implements backend.TierBackend: it replays every log file in
// ascending id order, truncates a torn tail on the highest-id file,
// verifies every record frame, seals all survivors, and starts a fresh
// journal. Recovered lists what came back.
func (b *Backend) Open() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.opened {
		return errors.New("durable: already opened")
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return err
	}
	names, err := os.ReadDir(b.dir)
	if err != nil {
		return err
	}
	type logFile struct {
		id     int64
		name   string
		active bool
	}
	var logs []logFile
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(de.Name(), ".tmp") {
			// A compaction that never committed; its content is fully
			// covered by the input segments it was built from.
			os.Remove(filepath.Join(b.dir, de.Name()))
			continue
		}
		id, active, ok := parseLogName(de.Name())
		if !ok {
			continue
		}
		logs = append(logs, logFile{id: id, name: de.Name(), active: active})
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].id < logs[j].id })
	for i := 1; i < len(logs); i++ {
		if logs[i].id == logs[i-1].id {
			return fmt.Errorf("durable: %s and %s share id %d", logs[i-1].name, logs[i].name, logs[i].id)
		}
	}

	var seq int64
	for i, lf := range logs {
		if err := b.replayFile(filepath.Join(b.dir, lf.name), lf.id, i == len(logs)-1, &seq); err != nil {
			return err
		}
		b.nextFile = lf.id + 1
	}

	// Last record wins per key: when the same key survived under several
	// handles (a same-key write race caught by a crash), keep the one
	// whose record replayed latest and drop the rest — a fresh open has
	// no outstanding references, so stale payloads are safe to shed.
	byKey := make(map[string]backend.Handle)
	for h, e := range b.index {
		if prev, ok := byKey[e.key]; !ok || e.seq > b.index[prev].seq {
			byKey[e.key] = h
		}
	}
	for h, e := range b.index {
		if byKey[e.key] != h {
			b.live[e.file] -= e.rec
			delete(b.index, h)
		}
	}

	// Seal everything: recovery leaves no active journal behind, so the
	// torn-tail rule ("only the highest id may be torn") keeps holding
	// across generations of opens.
	for _, lf := range logs {
		if lf.active {
			if err := os.Rename(filepath.Join(b.dir, lf.name), filepath.Join(b.dir, segName(lf.id))); err != nil {
				return err
			}
		}
	}
	for _, lf := range logs {
		f, err := os.Open(filepath.Join(b.dir, segName(lf.id)))
		if err != nil {
			return err
		}
		b.files[lf.id] = f
	}

	for _, e := range b.index {
		b.used += e.n
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := byKey[k]
		b.recovered = append(b.recovered, backend.RecoveredEntry{Key: k, Handle: h, Size: b.index[h].n})
	}

	if err := b.openWAL(); err != nil {
		return err
	}
	b.opened = true
	return nil
}

// replayFile parses one log file, folding its records into the index.
// seq stamps records in replay order so Open can resolve same-key
// survivors last-record-wins afterwards.
func (b *Backend) replayFile(path string, id int64, last bool, seq *int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(raw) {
		rec := raw[off:]
		valid := false
		var op byte
		var h backend.Handle
		var key string
		var payOff, payLen int
		if len(rec) >= hdrSize {
			op = rec[4]
			h = backend.Handle(binary.LittleEndian.Uint64(rec[5:]))
			klen := int(binary.LittleEndian.Uint32(rec[13:]))
			dlen := int(binary.LittleEndian.Uint32(rec[17:]))
			if (op == opPut || op == opDel) && klen <= maxKeyLen && int64(dlen) < maxPayloadLen &&
				len(rec) >= hdrSize+klen+dlen {
				total := hdrSize + klen + dlen
				want := binary.LittleEndian.Uint32(rec)
				if crc32.Checksum(rec[4:total], castagnoli) == want {
					valid = true
					key = string(rec[hdrSize : hdrSize+klen])
					payOff, payLen = off+hdrSize+klen, dlen
					rec = rec[:total]
				}
			}
		}
		if !valid {
			if !last {
				return fmt.Errorf("durable: %w: %s has an invalid record at offset %d (not the newest file)",
					hcerr.ErrCorrupted, filepath.Base(path), off)
			}
			// Torn tail on the newest file: the crash interrupted the
			// final append. Drop it.
			if err := os.Truncate(path, int64(off)); err != nil {
				return err
			}
			break
		}
		if uint64(h) > b.next {
			b.next = uint64(h)
		}
		if old, ok := b.index[h]; ok { // rewritten by compaction output
			b.live[old.file] -= old.rec
		}
		*seq++
		switch op {
		case opPut:
			b.index[h] = entry{
				key:  key,
				file: id,
				off:  int64(payOff),
				n:    int64(payLen),
				crc:  crc32.Checksum(raw[payOff:payOff+payLen], castagnoli),
				rec:  int64(len(rec)),
				seq:  *seq,
			}
			b.live[id] += int64(len(rec))
		case opDel:
			if e, ok := b.index[h]; ok {
				b.live[e.file] -= e.rec
				delete(b.index, h)
			}
		}
		off += len(rec)
	}
	b.fileSize[id] = int64(off)
	return nil
}

// Recovered implements backend.TierBackend.
func (b *Backend) Recovered() []backend.RecoveredEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recovered
}

// openWAL starts a fresh active journal under the next file id.
func (b *Backend) openWAL() error {
	id := b.nextFile
	f, err := os.OpenFile(filepath.Join(b.dir, walName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	b.nextFile++
	b.wal = f
	b.walID = id
	b.walSize = 0
	b.sinceSync = 0
	b.files[id] = f
	b.fileSize[id] = 0
	return nil
}

// seal makes the active journal immutable: fsync, atomic rename to a
// segment, keep the descriptor for reads. The caller decides when to
// open the next journal.
func (b *Backend) seal() error {
	if err := b.syncFn(b.wal); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(b.dir, walName(b.walID)), filepath.Join(b.dir, segName(b.walID))); err != nil {
		return err
	}
	b.sinceSync = 0
	b.wal = nil
	return nil
}

// append writes rec at the journal tail and applies the sync cadence.
func (b *Backend) append(rec []byte) error {
	if _, err := b.wal.WriteAt(rec, b.walSize); err != nil {
		return err
	}
	b.walSize += int64(len(rec))
	b.fileSize[b.walID] = b.walSize
	b.sinceSync++
	if b.sinceSync >= b.opts.SyncEvery {
		if err := b.syncFn(b.wal); err != nil {
			return err
		}
		b.sinceSync = 0
	}
	return nil
}

// Put implements backend.TierBackend: the payload is appended to the
// journal and is durable (under the sync cadence) before Put returns;
// the caller's reference is released since nothing stays resident.
func (b *Backend) Put(_ float64, key string, r *backend.Ref) (backend.Handle, error) {
	data := r.Data()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	if b.wal == nil { // a prior seal/compact failure left no journal
		if err := b.openWAL(); err != nil {
			return 0, err
		}
	}
	if err := b.killpoint("put.before-append"); err != nil {
		return 0, err
	}
	h := backend.Handle(b.next + 1)
	rec := appendRecord(nil, opPut, h, key, data)
	if err := b.killpoint("put.torn-append"); err != nil {
		// Simulated crash mid-write: leave half a record on disk.
		b.wal.WriteAt(rec[:len(rec)/2], b.walSize)
		return 0, err
	}
	recStart := b.walSize
	if err := b.append(rec); err != nil {
		return 0, err
	}
	if err := b.killpoint("put.after-append"); err != nil {
		// Simulated crash after the append reached the journal: the
		// record is durable, so recovery will resurface this payload
		// even though the caller sees a failure.
		return 0, err
	}
	b.next++
	b.index[h] = entry{
		key:  key,
		file: b.walID,
		off:  recStart + hdrSize + int64(len(key)),
		n:    int64(len(data)),
		crc:  crc32.Checksum(data, castagnoli),
		rec:  int64(len(rec)),
	}
	b.live[b.walID] += int64(len(rec))
	b.used += int64(len(data))
	r.Release()
	// Seal/compact housekeeping is best-effort: the put itself is already
	// durable, so a maintenance failure must not be reported as a failed
	// write (the next Put reopens the journal if none is active).
	if b.walSize >= b.opts.SegmentBytes {
		if err := b.seal(); err == nil {
			b.maybeCompact()
			if b.wal == nil {
				b.openWAL()
			}
		}
	}
	return h, nil
}

// readPayload preads and checksum-verifies one entry into an arena
// buffer. Caller holds b.mu.
func (b *Backend) readPayload(e entry) ([]byte, error) {
	f, ok := b.files[e.file]
	if !ok {
		return nil, fmt.Errorf("durable: file %d missing for %q", e.file, e.key)
	}
	buf := bufpool.Get(int(e.n))
	if _, err := f.ReadAt(buf, e.off); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	if crc32.Checksum(buf, castagnoli) != e.crc {
		bufpool.Put(buf)
		return nil, fmt.Errorf("durable: %w: %q payload checksum mismatch", hcerr.ErrCorrupted, e.key)
	}
	return buf, nil
}

// Peek implements backend.TierBackend: every read materializes a fresh
// checksum-verified arena buffer that returns to the pool on Release.
func (b *Backend) Peek(_ float64, h backend.Handle) (*backend.Ref, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	e, ok := b.index[h]
	if !ok {
		return nil, backend.ErrUnknownHandle
	}
	buf, err := b.readPayload(e)
	if err != nil {
		return nil, err
	}
	return backend.NewRef(buf, bufpool.Put), nil
}

// MoveOut implements backend.TierBackend: read the payload out, then
// tombstone it.
func (b *Backend) MoveOut(_ float64, h backend.Handle) (*backend.Ref, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	e, ok := b.index[h]
	if !ok {
		return nil, backend.ErrUnknownHandle
	}
	buf, err := b.readPayload(e)
	if err != nil {
		return nil, err
	}
	b.deleteEntry(h, e)
	return backend.NewRef(buf, bufpool.Put), nil
}

// deleteEntry appends a tombstone and drops h from the index. The
// tombstone append is best-effort: if the device rejects it the payload
// may resurrect on recovery, which only wastes space — never loses data.
// Caller holds b.mu.
func (b *Backend) deleteEntry(h backend.Handle, e entry) {
	if b.wal != nil {
		b.append(appendRecord(nil, opDel, h, e.key, nil))
	}
	delete(b.index, h)
	b.live[e.file] -= e.rec
	b.used -= e.n
}

// Delete implements backend.TierBackend.
func (b *Backend) Delete(h backend.Handle) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	e, ok := b.index[h]
	if !ok {
		return
	}
	b.deleteEntry(h, e)
	if b.wal != nil && b.walSize >= b.opts.SegmentBytes {
		b.seal()
	}
	b.maybeCompact()
	if b.wal == nil {
		b.openWAL()
	}
}

// sealedStats sums size and live bytes across sealed segments. Caller
// holds b.mu.
func (b *Backend) sealedStats() (total, live int64) {
	for id, sz := range b.fileSize {
		if id == b.walID && b.wal != nil {
			continue
		}
		total += sz
		live += b.live[id]
	}
	return total, live
}

// maybeCompact triggers compaction when the sealed dead fraction passes
// the threshold. Caller holds b.mu.
func (b *Backend) maybeCompact() error {
	total, live := b.sealedStats()
	if total < b.opts.SegmentBytes || float64(total-live)/float64(total) < b.opts.CompactMinDead {
		return nil
	}
	return b.compact()
}

// Compact forces a full compaction of the sealed segments (the journal
// is sealed first, so afterwards exactly one segment holds every live
// payload). Exposed for tests and tooling; normal operation triggers it
// automatically via the dead-fraction threshold.
func (b *Backend) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	return b.compact()
}

// compact rewrites all live sealed records into one fresh segment whose
// id sits above every input and below the next journal, then removes the
// inputs in ascending id order (see the package comment for why both
// orderings are what make every crash point recoverable). Caller holds
// b.mu; on return a fresh journal is active unless a simulated crash
// aborted mid-way.
func (b *Backend) compact() error {
	if b.wal != nil {
		if err := b.seal(); err != nil {
			return err
		}
	}
	if err := b.killpoint("compact.before-write"); err != nil {
		return err
	}
	inputs := make([]int64, 0, len(b.files))
	for id := range b.files {
		inputs = append(inputs, id)
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i] < inputs[j] })

	outID := b.nextFile
	b.nextFile++
	tmpPath := filepath.Join(b.dir, fmt.Sprintf("compact-%08d.tmp", outID))
	cleanup := func(err error) error {
		os.Remove(tmpPath)
		if werr := b.openWAL(); werr != nil && err == nil {
			err = werr
		}
		return err
	}
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return cleanup(err)
	}

	// Deterministic output order: ascending handle.
	handles := make([]backend.Handle, 0, len(b.index))
	for h := range b.index {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })

	type placed struct {
		h backend.Handle
		e entry
	}
	var out []placed
	var offset int64
	var buf []byte
	for i, h := range handles {
		e := b.index[h]
		data, rerr := b.readPayload(e)
		if rerr != nil {
			tmp.Close()
			return cleanup(rerr)
		}
		buf = appendRecord(buf[:0], opPut, h, e.key, data)
		bufpool.Put(data)
		if i == 1 {
			if kerr := b.killpoint("compact.mid-write"); kerr != nil {
				// Simulated crash with a partially written tmp file.
				tmp.Write(buf[:len(buf)/2])
				tmp.Close()
				return kerr
			}
		}
		if _, werr := tmp.WriteAt(buf, offset); werr != nil {
			tmp.Close()
			return cleanup(werr)
		}
		ne := e
		ne.file = outID
		ne.off = offset + hdrSize + int64(len(e.key))
		ne.rec = int64(len(buf))
		out = append(out, placed{h: h, e: ne})
		offset += int64(len(buf))
	}
	if err := b.syncFn(tmp); err != nil {
		tmp.Close()
		return cleanup(err)
	}
	// Commit point: once the rename lands, replay prefers nothing — the
	// output only re-puts handles the inputs already resolve to — so the
	// switch is safe whether or not the input removals below complete.
	if err := os.Rename(tmpPath, filepath.Join(b.dir, segName(outID))); err != nil {
		tmp.Close()
		return cleanup(err)
	}
	b.files[outID] = tmp
	b.fileSize[outID] = offset
	b.live[outID] = offset
	for _, p := range out {
		b.index[p.h] = p.e
	}
	if err := b.killpoint("compact.after-rename"); err != nil {
		return err
	}
	for i, id := range inputs {
		b.files[id].Close()
		os.Remove(filepath.Join(b.dir, segName(id)))
		delete(b.files, id)
		delete(b.fileSize, id)
		delete(b.live, id)
		if i == 0 {
			if err := b.killpoint("compact.mid-delete"); err != nil {
				return err
			}
		}
	}
	return b.openWAL()
}

// Used implements backend.TierBackend.
func (b *Backend) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Len implements backend.TierBackend.
func (b *Backend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.index)
}

// SegmentCount reports the number of on-disk log files (sealed segments
// plus the active journal) — compaction observability for tests and
// benchmarks.
func (b *Backend) SegmentCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.files)
}

// Sync implements backend.TierBackend: flushes the active journal.
func (b *Backend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.wal == nil {
		return nil
	}
	if err := b.syncFn(b.wal); err != nil {
		return err
	}
	b.sinceSync = 0
	return nil
}

// Close implements backend.TierBackend: sync the journal and close every
// descriptor. The payloads stay on disk for the next Open.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	var first error
	if b.wal != nil {
		if err := b.syncFn(b.wal); err != nil {
			first = err
		}
	}
	for _, f := range b.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.files = make(map[int64]*os.File)
	b.wal = nil
	return first
}
