package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcompress/internal/hcerr"
	"hcompress/internal/store/backend"
)

func gcRef(data []byte) *backend.Ref {
	cp := make([]byte, len(data))
	copy(cp, data)
	return backend.NewRef(cp, nil)
}

// contents reads every live payload by key via Recovered-independent
// means: walk the index under the lock.
func contents(t *testing.T, b *Backend) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	b.mu.Lock()
	handles := make(map[string]backend.Handle, len(b.index))
	for h, e := range b.index {
		handles[e.key] = h
	}
	b.mu.Unlock()
	for k, h := range handles {
		r, err := b.Peek(0, h)
		if err != nil {
			t.Fatalf("Peek(%q): %v", k, err)
		}
		out[k] = append([]byte(nil), r.Data()...)
		r.Release()
	}
	return out
}

func assertContents(t *testing.T, b *Backend, want map[string][]byte) {
	t.Helper()
	got := contents(t, b)
	if len(got) != len(want) {
		t.Fatalf("have %d keys, want %d (got %v)", len(got), len(want), keysOf(got))
	}
	var used int64
	for k, w := range want {
		if !bytes.Equal(got[k], w) {
			t.Fatalf("key %q: payload mismatch", k)
		}
		used += int64(len(w))
	}
	if b.Used() != used {
		t.Fatalf("Used = %d, want %d", b.Used(), used)
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDurableReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key-%d", i)
		data := bytes.Repeat([]byte{byte('a' + i)}, 100+i*37)
		want[k] = data
		if _, err := b.Put(float64(i), k, gcRef(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := New(dir, Options{})
	if err := b2.Open(); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	rec := b2.Recovered()
	if len(rec) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(rec), len(want))
	}
	for i := 1; i < len(rec); i++ {
		if rec[i-1].Key >= rec[i].Key {
			t.Fatal("Recovered must be sorted by key")
		}
	}
	for _, e := range rec {
		r, err := b2.Peek(0, e.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data(), want[e.Key]) || e.Size != int64(len(want[e.Key])) {
			t.Fatalf("recovered %q mismatch", e.Key)
		}
		r.Release()
	}
	assertContents(t, b2, want)
}

func TestDurableSameKeyLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	// Two live handles for the same key — the crash-window shape a store
	// overwrite leaves when it dies between backend Put and old-handle
	// Delete.
	if _, err := b.Put(0, "k", gcRef([]byte("stale"))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put(1, "k", gcRef([]byte("fresh"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := New(dir, Options{})
	if err := b2.Open(); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	rec := b2.Recovered()
	if len(rec) != 1 || rec[0].Key != "k" {
		t.Fatalf("recovered = %+v, want one entry for k", rec)
	}
	assertContents(t, b2, map[string][]byte{"k": []byte("fresh")})
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"a": []byte("alpha"), "b": []byte("beta")}
	for k, v := range want {
		if _, err := b.Put(0, k, gcRef(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final append on the newest file: garbage that can
	// never checksum.
	path := newestLog(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2 := New(dir, Options{})
	if err := b2.Open(); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	assertContents(t, b2, want)
}

func TestDurableNonTailCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several sealed files.
	b := New(dir, Options{SegmentBytes: 256})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := b.Put(0, fmt.Sprintf("k%d", i), gcRef(bytes.Repeat([]byte{byte(i)}, 200))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the OLDEST file: damage there is not a torn
	// tail and must refuse to open.
	path := oldestLog(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b2 := New(dir, Options{})
	if err := b2.Open(); !errors.Is(err, hcerr.ErrCorrupted) {
		t.Fatalf("Open = %v, want ErrCorrupted", err)
	}
}

func TestDurablePayloadChecksumVerifiedOnRead(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	data := bytes.Repeat([]byte{0x5a}, 512)
	h, err := b.Put(0, "k", gcRef(data))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte behind the backend's back.
	b.mu.Lock()
	e := b.index[h]
	b.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(dir, walName(e.file)), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xa5}, e.off+10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := b.Peek(0, h); !errors.Is(err, hcerr.ErrCorrupted) {
		t.Fatalf("Peek = %v, want ErrCorrupted", err)
	}
}

func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{SegmentBytes: 512})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	handles := map[string]backend.Handle{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 150)
		h, err := b.Put(0, k, gcRef(data))
		if err != nil {
			t.Fatal(err)
		}
		want[k], handles[k] = data, h
	}
	for i := 0; i < 20; i += 2 {
		k := fmt.Sprintf("k%02d", i)
		b.Delete(handles[k])
		delete(want, k)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	// All sealed segments merged into one, plus the fresh journal.
	if n := b.SegmentCount(); n != 2 {
		t.Fatalf("SegmentCount = %d, want 2 (one segment + journal)", n)
	}
	assertContents(t, b, want)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := New(dir, Options{})
	if err := b2.Open(); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	assertContents(t, b2, want)
}

func newestLog(t *testing.T, dir string) string { return pickLog(t, dir, false) }
func oldestLog(t *testing.T, dir string) string { return pickLog(t, dir, true) }

func pickLog(t *testing.T, dir string, oldest bool) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best, bestID := "", int64(-1)
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".log") {
			continue
		}
		id, _, ok := parseLogName(de.Name())
		if !ok {
			continue
		}
		if bestID < 0 || (oldest && id < bestID) || (!oldest && id > bestID) {
			best, bestID = de.Name(), id
		}
	}
	if best == "" {
		t.Fatal("no log files found")
	}
	return filepath.Join(dir, best)
}
