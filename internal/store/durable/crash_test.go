package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
)

// errCrash is the sentinel the armed kill hook returns; the backend
// propagates it out of the interrupted operation.
var errCrash = errors.New("simulated crash")

// TestCrashMatrix drives every named kill point: seed a backend with
// known contents, arm the kill, run the interrupted operation, reopen
// the directory cold, and require byte-identical recovered state plus
// exact capacity accounting.
func TestCrashMatrix(t *testing.T) {
	seedData := func() map[string][]byte {
		return map[string][]byte{
			"alpha": bytes.Repeat([]byte{1}, 300),
			"beta":  bytes.Repeat([]byte{2}, 200),
			"gamma": bytes.Repeat([]byte{3}, 100),
		}
	}
	newPayload := bytes.Repeat([]byte{9}, 250)

	cases := []struct {
		point string
		// op runs the interrupted operation with the kill armed and must
		// observe errCrash.
		op func(t *testing.T, b *Backend)
		// wantNew reports whether the recovered state must include the
		// payload the crashed operation was writing.
		wantNew bool
	}{
		{point: "put.before-append", op: putOp(newPayload)},
		{point: "put.torn-append", op: putOp(newPayload)},
		// The append reached the synced journal before the crash, so the
		// write survives even though its caller saw a failure.
		{point: "put.after-append", op: putOp(newPayload), wantNew: true},
		{point: "compact.before-write", op: compactOp},
		{point: "compact.mid-write", op: compactOp},
		{point: "compact.after-rename", op: compactOp},
		{point: "compact.mid-delete", op: compactOp},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			b := New(dir, Options{})
			if err := b.Open(); err != nil {
				t.Fatal(err)
			}
			want := seedData()
			for k, v := range want {
				if _, err := b.Put(0, k, gcRef(v)); err != nil {
					t.Fatal(err)
				}
			}
			armed := tc.point
			b.kill = func(point string) error {
				if point == armed {
					return errCrash
				}
				return nil
			}
			tc.op(t, b)
			crash(b)
			if tc.wantNew {
				want["delta"] = newPayload
			}

			b2 := New(dir, Options{})
			if err := b2.Open(); err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer b2.Close()
			rec := b2.Recovered()
			if len(rec) != len(want) {
				t.Fatalf("recovered %d keys, want %d", len(rec), len(want))
			}
			var used int64
			for _, e := range rec {
				w, ok := want[e.Key]
				if !ok {
					t.Fatalf("unexpected recovered key %q", e.Key)
				}
				r, err := b2.Peek(0, e.Handle)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(r.Data(), w) {
					t.Fatalf("key %q: recovered payload differs", e.Key)
				}
				r.Release()
				used += int64(len(w))
			}
			if b2.Used() != used {
				t.Fatalf("Used = %d, want %d", b2.Used(), used)
			}

			// The recovered backend must be fully writable again.
			if _, err := b2.Put(1, "post-recovery", gcRef([]byte("ok"))); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
		})
	}
}

func putOp(payload []byte) func(t *testing.T, b *Backend) {
	return func(t *testing.T, b *Backend) {
		t.Helper()
		if _, err := b.Put(1, "delta", gcRef(payload)); !errors.Is(err, errCrash) {
			t.Fatalf("Put = %v, want simulated crash", err)
		}
	}
}

func compactOp(t *testing.T, b *Backend) {
	t.Helper()
	if err := b.Compact(); !errors.Is(err, errCrash) {
		t.Fatalf("Compact = %v, want simulated crash", err)
	}
}

// crash closes a killed backend's descriptors without syncing, the way
// process death would.
func crash(b *Backend) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for _, f := range b.files {
		f.Close()
	}
	b.files = make(map[int64]*os.File)
}

// TestCrashMidDeleteLeavesIdempotentReplay exercises the specific
// ordering argument: after compact.mid-delete the output segment and a
// surviving input coexist, and replay must fold them into one copy.
func TestCrashMidDeleteLeavesIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	b := New(dir, Options{SegmentBytes: 256})
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("k%d", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 180)
		want[k] = data
		if _, err := b.Put(0, k, gcRef(data)); err != nil {
			t.Fatal(err)
		}
	}
	b.kill = func(point string) error {
		if point == "compact.mid-delete" {
			return errCrash
		}
		return nil
	}
	if err := b.Compact(); !errors.Is(err, errCrash) {
		t.Fatalf("Compact = %v, want simulated crash", err)
	}
	crash(b)

	b2 := New(dir, Options{})
	if err := b2.Open(); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := len(b2.Recovered()); got != len(want) {
		t.Fatalf("recovered %d keys, want %d", got, len(want))
	}
	for _, e := range b2.Recovered() {
		r, err := b2.Peek(0, e.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data(), want[e.Key]) {
			t.Fatalf("key %q mismatch", e.Key)
		}
		r.Release()
	}
	if b2.Len() != len(want) {
		t.Fatalf("Len = %d, want %d (duplicate handles must dedup)", b2.Len(), len(want))
	}
}
