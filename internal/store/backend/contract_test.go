package backend_test

import (
	"bytes"
	"errors"
	"testing"

	"hcompress/internal/bufpool"
	"hcompress/internal/store/backend"
	"hcompress/internal/store/cloudtier"
	"hcompress/internal/store/durable"
)

// gcRef wraps a private copy of data in a GC-managed Ref, mirroring how
// the store hands copied payloads to a resident backend.
func gcRef(data []byte) *backend.Ref {
	cp := make([]byte, len(data))
	copy(cp, data)
	return backend.NewRef(cp, nil)
}

// TestBackendContract runs the behavioral contract every TierBackend
// must satisfy against all three implementations.
func TestBackendContract(t *testing.T) {
	makers := []struct {
		name string
		make func(t *testing.T) backend.TierBackend
	}{
		{"mem", func(t *testing.T) backend.TierBackend { return backend.NewMem() }},
		{"file", func(t *testing.T) backend.TierBackend { return durable.New(t.TempDir(), durable.Options{}) }},
		{"cloud", func(t *testing.T) backend.TierBackend { return cloudtier.New(0.023, 0.09) }},
	}
	for _, mk := range makers {
		t.Run(mk.name, func(t *testing.T) {
			b := mk.make(t)
			if b.Kind() == "" {
				t.Fatal("Kind must be non-empty")
			}
			if err := b.Open(); err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if got := b.Recovered(); len(got) != 0 {
				t.Fatalf("fresh backend recovered %d entries", len(got))
			}

			d1 := []byte("payload-one-payload-one")
			d2 := []byte("payload-two")
			h1, err := b.Put(1.0, "a", gcRef(d1))
			if err != nil {
				t.Fatal(err)
			}
			if h1 == 0 {
				t.Fatal("zero handle issued")
			}
			h2, err := b.Put(2.0, "b", gcRef(d2))
			if err != nil {
				t.Fatal(err)
			}
			if h2 == h1 {
				t.Fatal("handles must be fresh per Put")
			}
			if got, want := b.Used(), int64(len(d1)+len(d2)); got != want {
				t.Fatalf("Used = %d, want %d", got, want)
			}
			if b.Len() != 2 {
				t.Fatalf("Len = %d, want 2", b.Len())
			}

			// Same-key puts mint distinct handles and both stay readable:
			// race resolution belongs to the store's directory, not here.
			h1b, err := b.Put(3.0, "a", gcRef(d2))
			if err != nil {
				t.Fatal(err)
			}
			if h1b == h1 {
				t.Fatal("same-key Put reused a handle")
			}
			for _, c := range []struct {
				h    backend.Handle
				want []byte
			}{{h1, d1}, {h2, d2}, {h1b, d2}} {
				r, err := b.Peek(4.0, c.h)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(r.Data(), c.want) {
					t.Fatalf("Peek(%d) mismatch", c.h)
				}
				r.Release()
			}
			b.Delete(h1b)

			if _, err := b.Peek(5.0, backend.Handle(1 << 40)); !errors.Is(err, backend.ErrUnknownHandle) {
				t.Fatalf("Peek(unknown) = %v, want ErrUnknownHandle", err)
			}

			// MoveOut hands the payload over exactly once and can be
			// re-Put (the cross-tier handoff the store performs).
			r, err := b.MoveOut(6.0, h1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r.Data(), d1) {
				t.Fatal("MoveOut payload mismatch")
			}
			if got, want := b.Used(), int64(len(d2)); got != want {
				t.Fatalf("Used after MoveOut = %d, want %d", got, want)
			}
			if _, err := b.MoveOut(6.5, h1); !errors.Is(err, backend.ErrUnknownHandle) {
				t.Fatalf("second MoveOut = %v, want ErrUnknownHandle", err)
			}
			h3, err := b.Put(7.0, "a", r)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := b.Peek(8.0, h3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r2.Data(), d1) {
				t.Fatal("re-Put payload mismatch")
			}
			r2.Release()

			b.Delete(backend.Handle(1 << 40)) // unknown: must be a no-op
			b.Delete(h3)
			b.Delete(h2)
			if b.Used() != 0 || b.Len() != 0 {
				t.Fatalf("after deletes Used=%d Len=%d, want 0/0", b.Used(), b.Len())
			}
			if err := b.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackendArenaRecycling proves the ownership contract: an arena
// buffer handed to Put returns to the bufpool once the backend is done
// with it (immediately for a durable backend, on Delete for resident
// ones).
func TestBackendArenaRecycling(t *testing.T) {
	makers := []struct {
		name string
		make func(t *testing.T) backend.TierBackend
	}{
		{"mem", func(t *testing.T) backend.TierBackend { return backend.NewMem() }},
		{"file", func(t *testing.T) backend.TierBackend { return durable.New(t.TempDir(), durable.Options{}) }},
		{"cloud", func(t *testing.T) backend.TierBackend { return cloudtier.New(0, 0) }},
	}
	for _, mk := range makers {
		t.Run(mk.name, func(t *testing.T) {
			b := mk.make(t)
			if err := b.Open(); err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			buf := bufpool.Get(64)
			for i := range buf {
				buf[i] = byte(i)
			}
			_, _, _, putsBefore := bufpool.Stats()
			h, err := b.Put(1.0, "arena", backend.NewRef(buf, bufpool.Put))
			if err != nil {
				t.Fatal(err)
			}
			b.Delete(h)
			if _, _, _, putsAfter := bufpool.Stats(); putsAfter <= putsBefore {
				t.Fatal("arena buffer never returned to the pool")
			}
		})
	}
}
