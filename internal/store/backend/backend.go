// Package backend defines the TierBackend interface: the contract one
// storage tier's payload plane implements behind the SHI store. The
// store keeps everything backend-agnostic — the blob directory, capacity
// ledger, virtual-time model, fault injection, and health observation —
// while a TierBackend owns the payload bytes themselves: where they
// live (process memory, append-only files with a write-ahead journal, a
// modeled cloud object store) and how they survive a crash.
//
// Payloads are addressed by Handle, not by key: every Put mints a fresh
// handle, so concurrent same-key writes, overwrites, and moves each own
// their payload outright and the directory's race resolution (last
// insert wins) never has to reason about whose bytes a key names inside
// a backend. Keys are still recorded with each payload — they are the
// recovery identity a durable backend reports after a crash replay.
//
// Ownership flows through Ref, a refcounted buffer handle that knows
// how to return arena-backed buffers to the bufpool when the last
// reference drops. A backend that keeps payloads resident (memory,
// cloud model) holds one reference per stored payload and hands out
// retained views on Peek; a durable backend persists the bytes, releases
// the caller's reference immediately, and materializes fresh arena
// buffers on Peek.
package backend

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrUnknownHandle is returned by Peek for a handle the backend does not
// hold (never issued, deleted, or moved out).
var ErrUnknownHandle = errors.New("backend: unknown payload handle")

// Handle names one stored payload inside a backend. Handles are minted
// by Put, are never reused within a backend's lifetime, and are only
// meaningful to the backend that issued them. The zero Handle is never
// issued.
type Handle uint64

// Ref is a refcounted payload buffer. Data must be treated as read-only
// by every holder. When the count reaches zero the optional free func
// reclaims the buffer (bufpool.Put for arena buffers); a nil free means
// the buffer is ordinary garbage-collected memory.
type Ref struct {
	refs atomic.Int32
	data []byte
	free func([]byte)
}

// NewRef wraps data in a Ref with one outstanding reference. free, when
// non-nil, reclaims the buffer once the last reference is released.
func NewRef(data []byte, free func([]byte)) *Ref {
	r := &Ref{data: data, free: free}
	r.refs.Store(1)
	return r
}

// Data returns the payload bytes. Valid only while the caller holds a
// reference.
func (r *Ref) Data() []byte {
	if r == nil {
		return nil
	}
	return r.data
}

// Len reports the payload length without touching the reference count.
func (r *Ref) Len() int64 {
	if r == nil {
		return 0
	}
	return int64(len(r.data))
}

// Retain adds a reference. Safe on nil.
func (r *Ref) Retain() {
	if r != nil {
		r.refs.Add(1)
	}
}

// Release drops one reference, reclaiming the buffer when the count
// reaches zero. Safe on nil; the data must not be touched afterwards.
func (r *Ref) Release() {
	if r != nil && r.refs.Add(-1) == 0 && r.free != nil {
		r.free(r.data)
	}
}

// Recyclable reports whether the buffer returns to an arena when the
// last reference drops — the store copies such payloads out of Get
// results (a later recycle would invalidate the caller's slice), while
// plain GC-managed buffers are shared, exactly as the pre-backend store
// behaved.
func (r *Ref) Recyclable() bool { return r != nil && r.free != nil }

// RecoveredEntry is one payload a durable backend replayed on Open: the
// write-time key, the fresh handle it is reachable under, and its size.
// Backends without persistence recover nothing.
type RecoveredEntry struct {
	Key    string
	Handle Handle
	Size   int64
}

// TierBackend is one tier's payload plane. Implementations must be safe
// for concurrent use; the store may call any method from any operation
// goroutine (reads under its directory read-lock, so backend locks are
// leaf locks — a backend must never call back into the store).
type TierBackend interface {
	// Kind names the implementation ("mem", "file", "cloud") for status
	// surfaces and benchmarks.
	Kind() string

	// Resident reports whether the backend retains the Ref it is handed
	// (payloads stay in process memory). The store must hand a resident
	// backend a private copy of caller-owned bytes; a non-resident
	// backend persists the bytes during Put and releases the reference,
	// so no copy is needed.
	Resident() bool

	// Open prepares the backend for use. A durable backend replays its
	// journal here — truncating torn tails, verifying every payload
	// checksum — after which Recovered reports what survived. Open is
	// called exactly once, before the backend is shared.
	Open() error

	// Recovered lists the payloads Open replayed from stable media,
	// deduplicated by key (the latest record wins). Nil for volatile
	// backends.
	Recovered() []RecoveredEntry

	// Put stores r's payload under a fresh handle. On success the
	// caller's reference transfers to the backend (a durable backend
	// releases it once the bytes are journaled); on error it stays with
	// the caller. now is the virtual time of the write, consumed by
	// cost-metering backends.
	Put(now float64, key string, r *Ref) (Handle, error)

	// Peek returns a retained reference to the payload; the caller must
	// Release it. now positions the read on the virtual timeline for
	// cost metering.
	Peek(now float64, h Handle) (*Ref, error)

	// MoveOut atomically removes the payload, transferring a reference
	// to the caller — the handoff half of a cross-tier Move (the caller
	// re-Puts the ref into the destination backend, or Releases it on
	// failure). ErrUnknownHandle reports an absent payload; any other
	// error is an I/O failure that leaves the payload in place.
	MoveOut(now float64, h Handle) (*Ref, error)

	// Delete drops the payload. Unknown handles are a no-op, so racing
	// cleanups are always safe.
	Delete(h Handle)

	// Used reports the payload bytes currently stored.
	Used() int64

	// Len reports the number of stored payloads.
	Len() int

	// Sync flushes buffered writes to stable media (no-op for volatile
	// backends).
	Sync() error

	// Close releases every resource: resident backends release their
	// payload references (returning arena buffers), durable backends
	// sync and close their files, keeping the bytes on media.
	Close() error
}

// Mem is the default in-memory backend: payloads live in a handle-keyed
// map exactly as they used to live inside the store's blob directory,
// preserving byte-identical behavior — copied payloads are GC-managed
// and shared with readers, arena-owned payloads are refcounted and
// recycled when the last pin drops.
type Mem struct {
	mu   sync.Mutex
	m    map[Handle]*Ref
	next uint64
	used int64
}

// NewMem creates an in-memory backend.
func NewMem() *Mem { return &Mem{m: make(map[Handle]*Ref)} }

// Kind implements TierBackend.
func (b *Mem) Kind() string { return "mem" }

// Resident implements TierBackend.
func (b *Mem) Resident() bool { return true }

// Open implements TierBackend.
func (b *Mem) Open() error { return nil }

// Recovered implements TierBackend.
func (b *Mem) Recovered() []RecoveredEntry { return nil }

// Put implements TierBackend.
func (b *Mem) Put(_ float64, _ string, r *Ref) (Handle, error) {
	b.mu.Lock()
	b.next++
	h := Handle(b.next)
	b.m[h] = r
	b.used += r.Len()
	b.mu.Unlock()
	return h, nil
}

// Peek implements TierBackend.
func (b *Mem) Peek(_ float64, h Handle) (*Ref, error) {
	b.mu.Lock()
	r, ok := b.m[h]
	if ok {
		r.Retain()
	}
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownHandle
	}
	return r, nil
}

// MoveOut implements TierBackend.
func (b *Mem) MoveOut(_ float64, h Handle) (*Ref, error) {
	b.mu.Lock()
	r, ok := b.m[h]
	if ok {
		delete(b.m, h)
		b.used -= r.Len()
	}
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownHandle
	}
	return r, nil
}

// Delete implements TierBackend.
func (b *Mem) Delete(h Handle) {
	b.mu.Lock()
	r, ok := b.m[h]
	if ok {
		delete(b.m, h)
		b.used -= r.Len()
	}
	b.mu.Unlock()
	r.Release()
}

// Used implements TierBackend.
func (b *Mem) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Len implements TierBackend.
func (b *Mem) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Sync implements TierBackend.
func (b *Mem) Sync() error { return nil }

// Close implements TierBackend: every stored reference is released, so
// arena-owned payloads (modulo outstanding Peek pins) return to the
// bufpool.
func (b *Mem) Close() error {
	b.mu.Lock()
	old := b.m
	b.m = make(map[Handle]*Ref)
	b.used = 0
	b.mu.Unlock()
	for _, r := range old {
		r.Release()
	}
	return nil
}
