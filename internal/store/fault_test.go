package store

import (
	"bytes"
	"errors"
	"testing"

	"hcompress/internal/fault"
	"hcompress/internal/hcerr"
)

func faultStore(t *testing.T, windows ...fault.Window) *Store {
	t.Helper()
	s, err := New(testHier(), true)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultInjector(&fault.Schedule{Windows: windows})
	return s
}

func TestPutFailsDuringOutage(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 0, End: 5, Mode: fault.Outage})
	_, err := s.Put(1, 0, "k", []byte("abc"), 3)
	if !errors.Is(err, hcerr.ErrTierOffline) {
		t.Fatalf("want ErrTierOffline, got %v", err)
	}
	if hcerr.IsTransient(err) {
		t.Fatal("outage must be sticky, not transient")
	}
	// No side effects: the key does not exist.
	if _, err := s.Stat("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed put must leave no blob: %v", err)
	}
	// Outside the window the same put succeeds, and the other tier was
	// never affected.
	if _, err := s.Put(6, 0, "k", []byte("abc"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(1, 1, "k2", []byte("abc"), 3); err != nil {
		t.Fatalf("outage must be scoped to its tier: %v", err)
	}
}

func TestTransientWindowMarksTransient(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 0, End: 5, Mode: fault.Transient})
	_, err := s.Put(1, 0, "k", []byte("abc"), 3)
	if err == nil || !hcerr.IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
}

func TestGetAndReadTimeFailDuringOutage(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 10, Mode: fault.Outage})
	if _, err := s.Put(0, 0, "k", []byte("abc"), 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(11, "k"); !errors.Is(err, hcerr.ErrTierOffline) {
		t.Fatalf("get: want ErrTierOffline, got %v", err)
	}
	if _, err := s.ReadTime(11, "k"); !errors.Is(err, hcerr.ErrTierOffline) {
		t.Fatalf("readtime: want ErrTierOffline, got %v", err)
	}
	if _, err := s.Peek(11, "k"); !errors.Is(err, hcerr.ErrTierOffline) {
		t.Fatalf("peek: want ErrTierOffline, got %v", err)
	}
}

func TestLatencySpikeDelaysCompletion(t *testing.T) {
	s, err := New(testHier(), true)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Put(0, 0, "a", []byte("abc"), 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	s.SetFaultInjector(&fault.Schedule{Windows: []fault.Window{
		{Tier: 0, Start: 0, End: 100, Mode: fault.LatencySpike, Extra: 0.25},
	}})
	slow, err := s.Put(0, 0, "a", []byte("abc"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if slow < base+0.25 {
		t.Fatalf("spike must add 0.25s: base=%v slow=%v", base, slow)
	}
}

func TestCorruptReadsFlipBitsButPreserveMedia(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 10, End: 20, Mode: fault.CorruptReads})
	data := []byte("pristine payload")
	if _, err := s.Put(0, 0, "k", data, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Get(15, "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b.Data, data) {
		t.Fatal("read inside corrupt window must return flipped bits")
	}
	// The media is intact: a read outside the window is clean.
	b2, _, err := s.Get(25, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2.Data, data) {
		t.Fatal("stored bytes must survive a read-side corruption")
	}
}

func TestCapacityLieShrinksReportedRemaining(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 0, End: 100, Mode: fault.CapacityLie, CapFraction: 0.5})
	sts := s.Status(1)
	if want := int64(500); sts[0].Remaining != want {
		t.Fatalf("lied Remaining = %d, want %d", sts[0].Remaining, want)
	}
	if sts[1].Remaining != 5000 {
		t.Fatalf("lie must be scoped to its tier: %d", sts[1].Remaining)
	}
	// Enforcement uses true capacity: a put larger than the lie but
	// within the real tier still succeeds.
	if _, err := s.Put(1, 0, "k", make([]byte, 800), 800); err != nil {
		t.Fatalf("capacity lie must not affect placement enforcement: %v", err)
	}
}

func TestHealthSinkObservesOutcomes(t *testing.T) {
	s := faultStore(t, fault.Window{Tier: 0, Start: 5, End: 10, Mode: fault.Outage})
	type obs struct {
		tier int
		err  bool
	}
	var seen []obs
	s.SetHealthSink(func(_ float64, tier int, err error) {
		seen = append(seen, obs{tier, err != nil})
	})
	if _, err := s.Put(0, 0, "k", []byte("abc"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(6, 0, "k2", []byte("abc"), 3); err == nil {
		t.Fatal("put inside outage must fail")
	}
	want := []obs{{0, false}, {0, true}}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("health sink saw %+v, want %+v", seen, want)
	}
}

func TestCapacityMissNotReportedToSink(t *testing.T) {
	s, err := New(testHier(), true)
	if err != nil {
		t.Fatal(err)
	}
	errsSeen := 0
	s.SetHealthSink(func(_ float64, _ int, err error) {
		if err != nil {
			errsSeen++
		}
	})
	if _, err := s.Put(0, 0, "big", make([]byte, 2000), 2000); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if errsSeen != 0 {
		t.Fatal("a full tier is healthy: capacity misses must not feed the health sink")
	}
}
