// Package store implements the Storage Hardware Interface (SHI): a
// multi-tier object store with a virtual-time performance model. It is the
// substrate both baselines (Hermes-style buffering) and HCompress write
// through.
//
// The store can run in two modes. With data retention on, blob payloads
// are held in memory and reads return the exact bytes written — the mode
// used by the public API, the examples, and correctness tests. With
// retention off, only sizes and placement are tracked, letting the
// experiment harness replay the paper's multi-hundred-gigabyte workloads
// on a laptop while keeping the timing model identical.
package store

import (
	"errors"
	"fmt"
	"sync"

	"hcompress/internal/des"
	"hcompress/internal/tier"
)

// ErrNoCapacity is returned when a Put does not fit in the target tier.
var ErrNoCapacity = errors.New("store: tier capacity exceeded")

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("store: key not found")

// Blob is one stored object.
type Blob struct {
	Key  string
	Tier int
	Size int64  // bytes occupied on the tier (compressed size)
	Data []byte // nil when data retention is off
}

type tierState struct {
	spec tier.Spec
	res  *des.Resource
	used int64
}

// Store is a multi-tier object store. All methods are safe for concurrent
// use; virtual-time accounting is serialized with the same lock.
type Store struct {
	mu       sync.Mutex
	tiers    []tierState
	blobs    map[string]*Blob
	keepData bool
	hier     tier.Hierarchy
}

// New creates a store over the hierarchy. keepData selects whether blob
// payloads are retained (true) or only modeled (false).
func New(h tier.Hierarchy, keepData bool) (*Store, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	s := &Store{blobs: make(map[string]*Blob), keepData: keepData, hier: h}
	for _, spec := range h.Tiers {
		s.tiers = append(s.tiers, tierState{
			spec: spec,
			res:  des.NewResource(spec.Name, spec.Lanes, spec.Latency, spec.Bandwidth),
		})
	}
	return s, nil
}

// Hierarchy returns the hierarchy this store was built from.
func (s *Store) Hierarchy() tier.Hierarchy { return s.hier }

// KeepsData reports whether payloads are retained.
func (s *Store) KeepsData() bool { return s.keepData }

// Put stores size bytes under key on tier t, beginning at virtual time
// now, and returns the completion time. data may be nil when retention is
// off (or to model a write without materializing it).
func (s *Store) Put(now float64, t int, key string, data []byte, size int64) (end float64, err error) {
	if size < 0 {
		return now, fmt.Errorf("store: negative size for %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < 0 || t >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", t)
	}
	ts := &s.tiers[t]
	if old, ok := s.blobs[key]; ok {
		// Overwrite: release the old allocation first.
		s.tiers[old.Tier].used -= old.Size
	}
	if ts.used+size > ts.spec.Capacity {
		if old, ok := s.blobs[key]; ok {
			s.tiers[old.Tier].used += old.Size // roll back
		}
		return now, fmt.Errorf("%w: %s (%d used, %d cap, %d requested)",
			ErrNoCapacity, ts.spec.Name, ts.used, ts.spec.Capacity, size)
	}
	ts.used += size
	b := &Blob{Key: key, Tier: t, Size: size}
	if s.keepData && data != nil {
		b.Data = append([]byte(nil), data...)
	}
	s.blobs[key] = b
	return ts.res.Acquire(now, size), nil
}

// Get reads the blob under key starting at virtual time now. The returned
// data is nil when retention is off.
func (s *Store) Get(now float64, key string) (b Blob, end float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return Blob{}, now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	end = s.tiers[blob.Tier].res.Acquire(now, blob.Size)
	return *blob, end, nil
}

// Stat returns blob metadata without modeling an I/O.
func (s *Store) Stat(key string) (Blob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	b := *blob
	b.Data = nil
	return b, nil
}

// Delete removes a blob and releases its capacity.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.tiers[blob.Tier].used -= blob.Size
	delete(s.blobs, key)
	return nil
}

// Move relocates a blob to another tier at virtual time now (used by
// eviction/spill paths), modeling a read on the source and a write on the
// destination. It fails without side effects if the destination is full.
func (s *Store) Move(now float64, key string, dst int) (end float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if dst < 0 || dst >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", dst)
	}
	if blob.Tier == dst {
		return now, nil
	}
	if s.tiers[dst].used+blob.Size > s.tiers[dst].spec.Capacity {
		return now, fmt.Errorf("%w: %s", ErrNoCapacity, s.tiers[dst].spec.Name)
	}
	readEnd := s.tiers[blob.Tier].res.Acquire(now, blob.Size)
	end = s.tiers[dst].res.Acquire(readEnd, blob.Size)
	s.tiers[blob.Tier].used -= blob.Size
	s.tiers[dst].used += blob.Size
	blob.Tier = dst
	return end, nil
}

// TierStatus is the System Monitor's view of one tier.
type TierStatus struct {
	Name      string
	Available bool
	Capacity  int64
	Used      int64
	Remaining int64
	QueueLen  int     // lanes busy at the query time
	Backlog   float64 // seconds of committed work beyond the query time
}

// Status snapshots every tier at virtual time now.
func (s *Store) Status(now float64) []TierStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TierStatus, len(s.tiers))
	for i := range s.tiers {
		ts := &s.tiers[i]
		out[i] = TierStatus{
			Name:      ts.spec.Name,
			Available: true,
			Capacity:  ts.spec.Capacity,
			Used:      ts.used,
			Remaining: ts.spec.Capacity - ts.used,
			QueueLen:  ts.res.QueueDepth(now),
			Backlog:   ts.res.Backlog(now),
		}
	}
	return out
}

// Used reports the bytes currently allocated on tier t.
func (s *Store) Used(t int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	return s.tiers[t].used
}

// Remaining reports free capacity on tier t.
func (s *Store) Remaining(t int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	return s.tiers[t].spec.Capacity - s.tiers[t].used
}

// Reset clears all blobs and virtual-time state, keeping the hierarchy.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs = make(map[string]*Blob)
	for i := range s.tiers {
		s.tiers[i].used = 0
		s.tiers[i].res.Reset()
	}
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}
