// Package store implements the Storage Hardware Interface (SHI): a
// multi-tier object store with a virtual-time performance model. It is the
// substrate both baselines (Hermes-style buffering) and HCompress write
// through.
//
// The store is split into a backend-agnostic control plane — the blob
// directory, per-tier capacity ledgers and virtual timelines, fault
// injection, and health observation — and one payload plane per tier
// behind the backend.TierBackend interface. The default backend keeps
// payloads in process memory (byte-identical to the pre-backend store);
// a tier.Spec with Backend "file" stores payloads in append-only segment
// files with a write-ahead journal (internal/store/durable) and survives
// a crash, and Backend "cloud" models an object store with per-GB-month
// and egress pricing on the virtual clock (internal/store/cloudtier).
//
// The store can run in two modes. With data retention on, blob payloads
// are held by the tier backends and reads return the exact bytes written —
// the mode used by the public API, the examples, and correctness tests.
// With retention off, only sizes and placement are tracked, letting the
// experiment harness replay the paper's multi-hundred-gigabyte workloads
// on a laptop while keeping the timing model identical.
//
// Locking is fine-grained: the blob directory is guarded by one RWMutex,
// and every tier guards its own capacity accounting and virtual timeline
// with its own mutex, so traffic against different tiers never serializes.
// Lock order is always directory before tier, and tiers in ascending
// index, so composite operations (Put with overwrite, Move) cannot
// deadlock. Backend locks are leaf locks: a backend is only ever called
// with at most the directory lock held, and never calls back into the
// store.
package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"hcompress/internal/bufpool"
	"hcompress/internal/des"
	"hcompress/internal/fault"
	"hcompress/internal/hcerr"
	"hcompress/internal/store/backend"
	"hcompress/internal/store/cloudtier"
	"hcompress/internal/store/durable"
	"hcompress/internal/telemetry"
	"hcompress/internal/tier"
)

// ErrNoCapacity is returned when a Put does not fit in the target tier.
// It is the canonical hcerr sentinel, so errors.Is matches across layers.
var ErrNoCapacity = hcerr.ErrNoCapacity

// ErrNotFound is returned when a key is absent.
var ErrNotFound = hcerr.ErrNotFound

// Blob is one stored object.
type Blob struct {
	Key  string
	Tier int
	Size int64  // bytes occupied on the tier (compressed size)
	Data []byte // nil when data retention is off

	// ref pins the payload returned by Peek; nil for Get/Stat results.
	// handle addresses the payload inside its tier's backend while the
	// blob is resident (has is true).
	ref    *backend.Ref
	handle backend.Handle
	has    bool
}

// Release returns a Peek'd blob's pin on its payload. For arena-owned
// payloads this is what lets the buffer return to the arena; for copied
// payloads it is effectively free. It is a no-op for the zero Blob, so
// callers can Release unconditionally. After Release the blob's Data
// must not be touched again.
func (s *Store) Release(b Blob) { b.ref.Release() }

// tierState is one tier's capacity ledger and virtual timeline, guarded by
// its own lock so tiers never contend with each other.
type tierState struct {
	mu   sync.Mutex
	spec tier.Spec
	res  *des.Resource
	used int64
	tm   tierMetrics // nil instruments when telemetry is off
}

// tierMetrics are one tier's per-tier instruments. All fields are nil
// when telemetry is off; instrument methods no-op on nil, so the hot
// paths stay branch-cheap without any conditional wiring.
type tierMetrics struct {
	puts      *telemetry.Counter
	putBytes  *telemetry.Counter
	gets      *telemetry.Counter
	getBytes  *telemetry.Counter
	deletes   *telemetry.Counter
	evictions *telemetry.Counter
	usedGauge *telemetry.Gauge
	putSecs   *telemetry.Histogram // modeled (virtual) seconds per put
	getSecs   *telemetry.Histogram // modeled (virtual) seconds per read
}

// Store is a multi-tier object store. All methods are safe for concurrent
// use. The blob directory and each tier are locked independently;
// cross-tier snapshots (Status) are per-tier consistent but not globally
// atomic, mirroring how a real System Monitor samples devices one by one.
type Store struct {
	mu       sync.RWMutex // guards blobs and the fields of stored *Blob values
	tiers    []*tierState // slice immutable after Open; elements self-locked
	be       []backend.TierBackend
	blobs    map[string]*Blob
	keepData bool
	hier     tier.Hierarchy

	// flt, when non-nil, rules on every tier operation (fault injection).
	// healthSink, when non-nil, observes per-tier outcomes — injected
	// failures, real backend I/O errors, and ordinary successes — so the
	// System Monitor can track tier health. Both are construction-time
	// options; neither is ever called while a tier lock is held (the
	// monitor's refresh path takes its own lock before sampling tiers, so
	// the opposite order would deadlock).
	flt        fault.Injector
	healthSink func(now float64, tier int, err error)

	// recovered lists the keys re-admitted from durable backends at Open,
	// sorted. Snapshot for the assembly phase; never mutated afterwards.
	recovered []string

	closeOnce sync.Once
	closeErr  error
}

// Options are the store's construction-time settings, accepted by Open.
// The zero value is a retention-off store with in-memory backends and no
// fault injection, health observation, or telemetry.
type Options struct {
	// KeepData selects whether blob payloads are retained (true) or only
	// modeled (false).
	KeepData bool
	// DataDir roots file-backed tiers: a tier whose spec names Backend
	// "file" journals its payloads under DataDir/<tier-name>. Required
	// when any tier is file-backed.
	DataDir string
	// Durable tunes the file-backed tiers (segment size, sync cadence,
	// compaction threshold). The zero value uses durable's defaults.
	Durable durable.Options
	// FaultInjector, when non-nil, rules on every tier operation.
	FaultInjector fault.Injector
	// HealthSink, when non-nil, observes per-tier outcomes: a nil error
	// on success, the failure otherwise. Never invoked under a store
	// lock on the put/read paths.
	HealthSink func(now float64, tier int, err error)
	// Telemetry, when non-nil, registers per-tier instruments.
	Telemetry *telemetry.Registry
	// Backends, when non-nil, supplies one pre-built backend per tier and
	// overrides selection from the tier specs (used by tests and custom
	// assemblies). Must match the hierarchy's tier count; the store
	// Opens and Closes them.
	Backends []backend.TierBackend
}

// New creates a store over the hierarchy with in-memory backends.
// keepData selects whether blob payloads are retained (true) or only
// modeled (false). It is the pre-Options constructor, kept for existing
// call sites; new code should call Open.
func New(h tier.Hierarchy, keepData bool) (*Store, error) {
	return Open(h, Options{KeepData: keepData})
}

// Open creates a store over the hierarchy, building one payload backend
// per tier from its spec (Backend "" or "mem" → in-memory, "file" →
// durable journal under DataDir, "cloud" → modeled object store) unless
// opts.Backends overrides them. File-backed tiers replay their journals
// here: whatever payloads survive recovery re-enter the blob directory
// and re-charge their tier's capacity ledger before the first operation.
func Open(h tier.Hierarchy, opts Options) (*Store, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	s := &Store{
		blobs:      make(map[string]*Blob),
		keepData:   opts.KeepData,
		hier:       h,
		flt:        opts.FaultInjector,
		healthSink: opts.HealthSink,
	}
	if opts.Backends != nil && len(opts.Backends) != len(h.Tiers) {
		return nil, fmt.Errorf("store: %d backends for %d tiers", len(opts.Backends), len(h.Tiers))
	}
	for i, spec := range h.Tiers {
		s.tiers = append(s.tiers, &tierState{
			spec: spec,
			res:  des.NewResource(spec.Name, spec.Lanes, spec.Latency, spec.Bandwidth),
		})
		if opts.Backends != nil {
			s.be = append(s.be, opts.Backends[i])
			continue
		}
		switch spec.Backend {
		case "", tier.BackendMem:
			s.be = append(s.be, backend.NewMem())
		case tier.BackendFile:
			if opts.DataDir == "" {
				return nil, fmt.Errorf("store: tier %s has a file backend but no DataDir was configured", spec.Name)
			}
			s.be = append(s.be, durable.New(filepath.Join(opts.DataDir, spec.Name), opts.Durable))
		case tier.BackendCloud:
			s.be = append(s.be, cloudtier.New(spec.CostPerGBMonth, spec.EgressCostPerGB))
		default:
			return nil, fmt.Errorf("store: tier %s: unknown backend %q", spec.Name, spec.Backend)
		}
	}
	for i, be := range s.be {
		if err := be.Open(); err != nil {
			for _, prev := range s.be[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("store: open %s backend for tier %s: %w",
				be.Kind(), h.Tiers[i].Name, err)
		}
	}
	// Re-admit everything a durable backend recovered. If the same key
	// survived on two tiers (a crash between a Move's journal records),
	// the faster tier wins and the stale copy is dropped.
	for t, be := range s.be {
		for _, re := range be.Recovered() {
			if _, dup := s.blobs[re.Key]; dup {
				be.Delete(re.Handle)
				continue
			}
			s.blobs[re.Key] = &Blob{Key: re.Key, Tier: t, Size: re.Size, handle: re.Handle, has: true}
			s.tiers[t].used += re.Size
			s.recovered = append(s.recovered, re.Key)
		}
	}
	sort.Strings(s.recovered)
	s.SetTelemetry(opts.Telemetry)
	return s, nil
}

// Recovered returns the keys of every payload re-admitted from durable
// backends when the store was opened, sorted. It is a snapshot taken at
// Open; callers consume it during assembly, before the store is shared
// between goroutines.
func (s *Store) Recovered() []string { return s.recovered }

// SetFaultInjector installs the fault injector ruling on every tier
// operation.
//
// Deprecated: pass Options.FaultInjector to Open. Kept as a shim for
// pre-Options call sites; like the other construction-time setters it
// must be called before the store is shared between goroutines.
func (s *Store) SetFaultInjector(f fault.Injector) { s.flt = f }

// SetHealthSink installs the per-tier outcome observer (the System
// Monitor's health feed).
//
// Deprecated: pass Options.HealthSink to Open. Kept as a shim for
// pre-Options call sites; construction-time only.
func (s *Store) SetHealthSink(fn func(now float64, tier int, err error)) { s.healthSink = fn }

// observe reports one tier outcome to the health sink. Capacity misses
// are not faults — a full tier is healthy — so they are not reported.
func (s *Store) observe(now float64, tier int, err error) {
	if s.healthSink != nil {
		s.healthSink(now, tier, err)
	}
}

// decide consults the fault injector for one operation; the zero
// Decision means "proceed untouched".
func (s *Store) decide(now float64, tier int, op fault.Op, key string, size int64) fault.Decision {
	if s.flt == nil {
		return fault.Decision{}
	}
	return s.flt.Decide(now, tier, op, key, size)
}

// SetTelemetry registers per-tier instruments (put/get ops and bytes,
// deletes, evictions, used/capacity gauges) on reg. A nil registry
// leaves telemetry off.
//
// Deprecated: pass Options.Telemetry to Open. Kept as a shim for
// pre-Options call sites; it must be called before the store is shared
// between goroutines.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, ts := range s.tiers {
		l := telemetry.L("tier", ts.spec.Name)
		ts.tm = tierMetrics{
			puts:      reg.Counter("hc_tier_put_ops_total", "sub-task writes placed per tier", l),
			putBytes:  reg.Counter("hc_tier_put_bytes_total", "stored bytes written per tier", l),
			gets:      reg.Counter("hc_tier_get_ops_total", "sub-task reads served per tier", l),
			getBytes:  reg.Counter("hc_tier_get_bytes_total", "stored bytes read per tier", l),
			deletes:   reg.Counter("hc_tier_delete_ops_total", "blobs deleted per tier", l),
			evictions: reg.Counter("hc_tier_evictions_total", "blobs moved off this tier (drain/spill)", l),
			usedGauge: reg.Gauge("hc_tier_used_bytes", "bytes currently allocated per tier", l),
			putSecs: reg.Histogram("hc_tier_io_seconds", "modeled seconds per tier I/O (queueing included)",
				telemetry.SecondsBuckets, l, telemetry.L("op", "put")),
			getSecs: reg.Histogram("hc_tier_io_seconds", "modeled seconds per tier I/O (queueing included)",
				telemetry.SecondsBuckets, l, telemetry.L("op", "get")),
		}
		reg.Gauge("hc_tier_capacity_bytes", "configured capacity per tier", l).
			Set(float64(ts.spec.Capacity))
		ts.tm.usedGauge.Set(float64(ts.used))
	}
}

// Hierarchy returns the hierarchy this store was built from.
func (s *Store) Hierarchy() tier.Hierarchy { return s.hier }

// KeepsData reports whether payloads are retained.
func (s *Store) KeepsData() bool { return s.keepData }

// Backend exposes tier t's payload backend (benchmarks and tests; cost
// reports come from type-asserting the cloud backend).
func (s *Store) Backend(t int) backend.TierBackend {
	if t < 0 || t >= len(s.be) {
		return nil
	}
	return s.be[t]
}

// release returns size bytes of capacity to tier t.
func (s *Store) release(t int, size int64) {
	ts := s.tiers[t]
	ts.mu.Lock()
	ts.used -= size
	ts.tm.usedGauge.Set(float64(ts.used))
	ts.mu.Unlock()
}

// dropPayload removes b's payload from its tier backend. Directory
// bookkeeping is the caller's job; b must already be unreachable (popped
// from the directory or owned by a rolled-back path).
func (s *Store) dropPayload(b *Blob) {
	if b.has {
		s.be[b.Tier].Delete(b.handle)
		b.has = false
	}
}

// restoreOld re-admits a displaced blob after a failed overwrite: its
// capacity is re-charged and it re-enters the directory — unless a
// concurrent same-key Put won the slot in the meantime, in which case
// the old blob is gone for good.
func (s *Store) restoreOld(old *Blob) {
	ot := s.tiers[old.Tier]
	ot.mu.Lock()
	ot.used += old.Size
	ot.tm.usedGauge.Set(float64(ot.used))
	ot.mu.Unlock()
	s.mu.Lock()
	_, raced := s.blobs[old.Key] // a concurrent same-key Put won; keep its blob
	if !raced {
		s.blobs[old.Key] = old
	}
	s.mu.Unlock()
	if raced {
		s.release(old.Tier, old.Size)
		s.dropPayload(old)
	}
}

// Put stores size bytes under key on tier t, beginning at virtual time
// now, and returns the completion time. data may be nil when retention is
// off (or to model a write without materializing it). The store copies
// data; the caller keeps ownership of its buffer.
func (s *Store) Put(now float64, t int, key string, data []byte, size int64) (end float64, err error) {
	return s.put(now, t, key, data, size, false)
}

// PutOwned is Put for arena-owned payloads: on success the store takes
// ownership of data — storing it without Put's defensive copy and
// recycling it into the buffer arena once the blob is deleted,
// overwritten, or the store is reset (and no Peek pin remains; a durable
// backend recycles it as soon as the bytes are journaled). On error,
// ownership stays with the caller so spill/retry paths can reuse the
// same buffer. data must come from the bufpool arena and must not be
// touched by the caller after a successful PutOwned.
func (s *Store) PutOwned(now float64, t int, key string, data []byte, size int64) (end float64, err error) {
	return s.put(now, t, key, data, size, true)
}

func (s *Store) put(now float64, t int, key string, data []byte, size int64, owned bool) (end float64, err error) {
	if size < 0 {
		return now, fmt.Errorf("store: negative size for %q", key)
	}
	if t < 0 || t >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", t)
	}
	ts := s.tiers[t]

	// Fault injection rules before any state changes, so a failed put has
	// no side effects to roll back and the caller keeps payload ownership.
	if d := s.decide(now, t, fault.OpPut, key, size); d.Err != nil {
		s.observe(now, t, d.Err)
		return now, fmt.Errorf("store: put %q on %s: %w", key, ts.spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}

	// Pop any existing blob so its allocation can be released first (the
	// overwrite path); it is restored if the new payload does not fit.
	s.mu.Lock()
	old, hadOld := s.blobs[key]
	if hadOld {
		delete(s.blobs, key)
	}
	s.mu.Unlock()
	if hadOld {
		s.release(old.Tier, old.Size)
	}

	ts.mu.Lock()
	if ts.used+size > ts.spec.Capacity {
		used, cap := ts.used, ts.spec.Capacity
		ts.mu.Unlock()
		if hadOld { // roll back: restore the old blob and its allocation
			s.restoreOld(old)
		}
		return now, fmt.Errorf("%w: %s (%d used, %d cap, %d requested)",
			ErrNoCapacity, ts.spec.Name, used, cap, size)
	}
	ts.used += size
	end = ts.res.Acquire(now, size)
	ts.tm.puts.Inc()
	ts.tm.putBytes.Add(size)
	ts.tm.putSecs.Observe(end - now)
	ts.tm.usedGauge.Set(float64(ts.used))
	ts.mu.Unlock()

	b := &Blob{Key: key, Tier: t, Size: size}
	if s.keepData && data != nil {
		var r *backend.Ref
		switch {
		case owned:
			r = backend.NewRef(data, bufpool.Put)
		case s.be[t].Resident():
			// A resident backend retains the reference, so the caller's
			// buffer is copied out defensively (Put's contract).
			r = backend.NewRef(append([]byte(nil), data...), nil)
		default:
			// A durable backend persists the bytes before Put returns
			// and retains nothing, so the caller's buffer is safe to
			// hand over uncopied.
			r = backend.NewRef(data, nil)
		}
		h, perr := s.be[t].Put(end, key, r)
		if perr != nil {
			// The backend stored nothing and the reference (hence an
			// owned payload's ownership) stays with the caller. Roll
			// back as the capacity-miss path does, and feed the I/O
			// error to the health machine like any other tier failure.
			s.release(t, size)
			if hadOld {
				s.restoreOld(old)
			}
			perr = errors.Join(hcerr.ErrBackendIO, perr)
			s.observe(end, t, perr)
			return now, fmt.Errorf("store: put %q on %s: %w", key, ts.spec.Name, perr)
		}
		b.handle, b.has = h, true
	} else if owned && data != nil {
		// Retention off: the payload is consumed here, so the arena
		// buffer can go straight back.
		bufpool.Put(data)
	}
	s.mu.Lock()
	prev, raced := s.blobs[key] // a concurrent same-key Put got here first
	s.blobs[key] = b
	s.mu.Unlock()
	if raced {
		s.release(prev.Tier, prev.Size)
		s.dropPayload(prev)
	}
	// The displaced blob (overwrite path) is gone for good once the new
	// payload is in place.
	if hadOld {
		s.dropPayload(old)
	}
	s.observe(end, t, nil)
	return end, nil
}

// Get reads the blob under key starting at virtual time now. The returned
// data is nil when retention is off. Get callers do not participate in
// refcounting: arena-owned payloads are copied out defensively (the
// original may be recycled by a Delete at any moment), GC-managed
// payloads share the stored bytes.
func (s *Store) Get(now float64, key string) (b Blob, end float64, err error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	var ref *backend.Ref
	var perr error
	if ok {
		b = *blob
		if b.has {
			ref, perr = s.be[b.Tier].Peek(now, b.handle)
		}
	}
	s.mu.RUnlock()
	if !ok {
		return Blob{}, now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if perr != nil {
		perr = errors.Join(hcerr.ErrBackendIO, perr)
		s.observe(now, b.Tier, perr)
		return Blob{}, now, fmt.Errorf("store: get %q on %s: %w", key, s.tiers[b.Tier].spec.Name, perr)
	}
	if ref != nil {
		if ref.Recyclable() {
			b.Data = append([]byte(nil), ref.Data()...)
		} else {
			b.Data = ref.Data()
		}
		ref.Release()
	}
	b.ref = nil
	d := s.decide(now, b.Tier, fault.OpGet, key, b.Size)
	if d.Err != nil {
		s.observe(now, b.Tier, d.Err)
		return Blob{}, now, fmt.Errorf("store: get %q on %s: %w", key, s.tiers[b.Tier].spec.Name, d.Err)
	}
	now += d.Latency
	if d.Corrupt {
		b.corrupt()
	}
	ts := s.tiers[b.Tier]
	ts.mu.Lock()
	end = ts.res.Acquire(now, b.Size)
	ts.tm.gets.Inc()
	ts.tm.getBytes.Add(b.Size)
	ts.tm.getSecs.Observe(end - now)
	ts.mu.Unlock()
	s.observe(end, b.Tier, nil)
	return b, end, nil
}

// corrupt replaces the blob's payload with a bit-flipped private copy —
// the stored bytes stay intact (the fault is what the reader observed,
// not permanent media loss) and any payload pin is dropped since the
// copy is ordinary garbage-collected memory.
func (b *Blob) corrupt() {
	if len(b.Data) == 0 {
		return
	}
	data := append([]byte(nil), b.Data...)
	data[len(data)-1] ^= 0xA5
	if b.ref != nil {
		b.ref.Release()
		b.ref = nil
	}
	b.Data = data
}

// Peek returns the blob under key without modeling an I/O or advancing any
// tier timeline. The returned Data (if any) is pinned for the caller and
// must not be mutated; the caller must pass the returned Blob to Release
// when done with Data, or an arena-backed buffer can never return to the
// arena. It exists so the Compression Manager can fetch payloads for
// parallel decompression and replay the timed reads afterwards, keeping
// virtual-time accounting deterministic. now does not advance anything;
// it only positions the fetch on the virtual timeline for the fault
// injector (the paired timed read replays at the same reading, so both
// see the same fault window) and for cost-metering backends.
func (s *Store) Peek(now float64, key string) (Blob, error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	var b Blob
	var perr error
	if ok {
		b = *blob
		b.ref = nil
		if b.has {
			b.ref, perr = s.be[b.Tier].Peek(now, b.handle)
			if perr == nil {
				b.Data = b.ref.Data()
			}
		}
	}
	s.mu.RUnlock()
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if perr != nil {
		perr = errors.Join(hcerr.ErrBackendIO, perr)
		s.observe(now, b.Tier, perr)
		return Blob{}, fmt.Errorf("store: read %q on %s: %w", key, s.tiers[b.Tier].spec.Name, perr)
	}
	d := s.decide(now, b.Tier, fault.OpGet, key, b.Size)
	if d.Err != nil {
		b.ref.Release()
		s.observe(now, b.Tier, d.Err)
		return Blob{}, fmt.Errorf("store: read %q on %s: %w", key, s.tiers[b.Tier].spec.Name, d.Err)
	}
	if d.Corrupt {
		b.corrupt()
	}
	return b, nil
}

// ReadTime models the timed read of key's blob at virtual time now without
// touching its payload, returning the completion time.
func (s *Store) ReadTime(now float64, key string) (end float64, err error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	var t int
	var size int64
	if ok {
		t, size = blob.Tier, blob.Size
	}
	s.mu.RUnlock()
	if !ok {
		return now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if d := s.decide(now, t, fault.OpGet, key, size); d.Err != nil {
		s.observe(now, t, d.Err)
		return now, fmt.Errorf("store: read %q on %s: %w", key, s.tiers[t].spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	end = ts.res.Acquire(now, size)
	ts.tm.gets.Inc()
	ts.tm.getBytes.Add(size)
	ts.tm.getSecs.Observe(end - now)
	ts.mu.Unlock()
	s.observe(end, t, nil)
	return end, nil
}

// Stat returns blob metadata without modeling an I/O.
func (s *Store) Stat(key string) (Blob, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blob, ok := s.blobs[key]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	b := *blob
	b.Data = nil
	b.ref = nil
	return b, nil
}

// Delete removes a blob and releases its capacity.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	blob, ok := s.blobs[key]
	if ok {
		delete(s.blobs, key)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.tiers[blob.Tier].tm.deletes.Inc()
	s.release(blob.Tier, blob.Size)
	s.dropPayload(blob)
	return nil
}

// Move relocates a blob to another tier at virtual time now (used by
// eviction/spill paths), modeling a read on the source and a write on the
// destination. It fails without capacity side effects if the destination
// is full. The directory lock is held throughout so readers never observe
// a blob mid-move; when source and destination use different backends the
// payload reference is handed from one to the other (MoveOut → Put)
// under that lock.
func (s *Store) Move(now float64, key string, dst int) (end float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if dst < 0 || dst >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", dst)
	}
	if blob.Tier == dst {
		return now, nil
	}
	// Fault ruling on the destination write happens before any tier lock
	// is taken (the health sink must never run under one — the monitor's
	// refresh path locks tiers in the opposite order).
	if d := s.decide(now, dst, fault.OpPut, key, blob.Size); d.Err != nil {
		s.observe(now, dst, d.Err)
		return now, fmt.Errorf("store: move %q to %s: %w", key, s.tiers[dst].spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}
	srcIdx := blob.Tier
	src, dstT := s.tiers[srcIdx], s.tiers[dst]
	lo, hi := src, dstT
	if dst < srcIdx {
		lo, hi = dstT, src
	}
	lo.mu.Lock()
	hi.mu.Lock()
	if dstT.used+blob.Size > dstT.spec.Capacity {
		hi.mu.Unlock()
		lo.mu.Unlock()
		return now, fmt.Errorf("%w: %s", ErrNoCapacity, dstT.spec.Name)
	}
	readEnd := src.res.Acquire(now, blob.Size)
	end = dstT.res.Acquire(readEnd, blob.Size)
	src.used -= blob.Size
	dstT.used += blob.Size
	src.tm.evictions.Inc()
	src.tm.usedGauge.Set(float64(src.used))
	dstT.tm.puts.Inc()
	dstT.tm.putBytes.Add(blob.Size)
	dstT.tm.usedGauge.Set(float64(dstT.used))
	hi.mu.Unlock()
	lo.mu.Unlock()
	// Payload handoff outside the tier locks but still under the
	// directory lock, so no reader sees the blob between backends.
	if blob.has && s.be[srcIdx] != s.be[dst] {
		ref, merr := s.be[srcIdx].MoveOut(readEnd, blob.handle)
		var perr error
		var h backend.Handle
		if merr == nil {
			h, perr = s.be[dst].Put(end, key, ref)
			if perr != nil {
				// Re-admit the payload where it was; an in-memory or
				// cloud re-Put cannot fail, and a durable source that
				// also fails loses the payload (surfaced to the caller).
				if h2, rerr := s.be[srcIdx].Put(readEnd, key, ref); rerr == nil {
					blob.handle = h2
				} else {
					ref.Release()
					blob.has = false
				}
			}
		} else if errors.Is(merr, backend.ErrUnknownHandle) {
			blob.has = false
		} else {
			perr = merr
		}
		if perr != nil {
			// Undo the capacity transfer; the modeled device time stays
			// spent, like any failed I/O.
			s.release(dst, blob.Size)
			srcAdj := s.tiers[srcIdx]
			srcAdj.mu.Lock()
			srcAdj.used += blob.Size
			srcAdj.tm.usedGauge.Set(float64(srcAdj.used))
			srcAdj.mu.Unlock()
			perr = errors.Join(hcerr.ErrBackendIO, perr)
			s.observe(end, dst, perr)
			return now, fmt.Errorf("store: move %q to %s: %w", key, dstT.spec.Name, perr)
		}
		if merr == nil {
			blob.handle = h
		}
	}
	blob.Tier = dst
	return end, nil
}

// TierStatus is the System Monitor's view of one tier.
type TierStatus struct {
	Name      string
	Backend   string // payload backend kind: "mem", "file", "cloud"
	Available bool
	Capacity  int64
	Used      int64
	Remaining int64
	QueueLen  int     // lanes busy at the query time
	Backlog   float64 // seconds of committed work beyond the query time
}

// Status snapshots every tier at virtual time now. Each tier is sampled
// under its own lock; the snapshot is per-tier consistent but tiers are
// not frozen relative to each other (the System Monitor's view is
// explicitly allowed to be slightly stale).
func (s *Store) Status(now float64) []TierStatus {
	out := make([]TierStatus, len(s.tiers))
	for i, ts := range s.tiers {
		// A capacity lie shrinks what the monitor *reports*, not what the
		// tier holds — the false telemetry a real System Monitor can
		// serve. Placement re-checks true capacity, so lies only mislead
		// planners.
		capEff := ts.spec.Capacity
		if s.flt != nil {
			capEff = s.flt.ReportedCapacity(now, i, capEff)
		}
		ts.mu.Lock()
		rem := capEff - ts.used
		if rem < 0 {
			rem = 0
		}
		out[i] = TierStatus{
			Name:      ts.spec.Name,
			Backend:   s.be[i].Kind(),
			Available: true,
			Capacity:  ts.spec.Capacity,
			Used:      ts.used,
			Remaining: rem,
			QueueLen:  ts.res.QueueDepth(now),
			Backlog:   ts.res.Backlog(now),
		}
		ts.mu.Unlock()
	}
	return out
}

// Used reports the bytes currently allocated on tier t.
func (s *Store) Used(t int) int64 {
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.used
}

// Remaining reports free capacity on tier t.
func (s *Store) Remaining(t int) int64 {
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.spec.Capacity - ts.used
}

// Reset clears all blobs and virtual-time state, keeping the hierarchy
// and the backends open. Arena-owned payloads are recycled (modulo
// outstanding Peek pins); durable backends journal the deletions.
func (s *Store) Reset() {
	s.mu.Lock()
	old := s.blobs
	s.blobs = make(map[string]*Blob)
	s.mu.Unlock()
	for _, b := range old {
		s.dropPayload(b)
	}
	for _, ts := range s.tiers {
		ts.mu.Lock()
		ts.used = 0
		ts.res.Reset()
		ts.tm.usedGauge.Set(0)
		ts.mu.Unlock()
	}
}

// Close shuts down every tier backend: in-memory backends release their
// payload references back to the arena, durable backends sync and close
// their files (the payloads stay on media and are recovered by the next
// Open). The store must not be used afterwards. Idempotent.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.blobs = make(map[string]*Blob)
		s.mu.Unlock()
		for _, be := range s.be {
			if err := be.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
