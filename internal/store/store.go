// Package store implements the Storage Hardware Interface (SHI): a
// multi-tier object store with a virtual-time performance model. It is the
// substrate both baselines (Hermes-style buffering) and HCompress write
// through.
//
// The store can run in two modes. With data retention on, blob payloads
// are held in memory and reads return the exact bytes written — the mode
// used by the public API, the examples, and correctness tests. With
// retention off, only sizes and placement are tracked, letting the
// experiment harness replay the paper's multi-hundred-gigabyte workloads
// on a laptop while keeping the timing model identical.
//
// Locking is fine-grained: the blob directory is guarded by one RWMutex,
// and every tier guards its own capacity accounting and virtual timeline
// with its own mutex, so traffic against different tiers never serializes.
// Lock order is always directory before tier, and tiers in ascending
// index, so composite operations (Put with overwrite, Move) cannot
// deadlock.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hcompress/internal/bufpool"
	"hcompress/internal/des"
	"hcompress/internal/fault"
	"hcompress/internal/hcerr"
	"hcompress/internal/telemetry"
	"hcompress/internal/tier"
)

// ErrNoCapacity is returned when a Put does not fit in the target tier.
// It is the canonical hcerr sentinel, so errors.Is matches across layers.
var ErrNoCapacity = hcerr.ErrNoCapacity

// ErrNotFound is returned when a key is absent.
var ErrNotFound = hcerr.ErrNotFound

// Blob is one stored object.
type Blob struct {
	Key  string
	Tier int
	Size int64  // bytes occupied on the tier (compressed size)
	Data []byte // nil when data retention is off

	// ref tracks the payload's lifetime when it came from the buffer
	// arena via PutOwned; nil for copied (Put) payloads. Blob copies
	// share the same ref.
	ref *payloadRef
}

// payloadRef is the reference count of one arena-owned payload. The
// store holds one reference while the blob is resident; every Peek of
// an owned blob adds one, balanced by Release. When the count reaches
// zero the backing buffer returns to the arena.
type payloadRef struct {
	refs atomic.Int32
	data []byte
}

func (r *payloadRef) retain() {
	if r != nil {
		r.refs.Add(1)
	}
}

func (r *payloadRef) release() {
	if r != nil && r.refs.Add(-1) == 0 {
		bufpool.Put(r.data)
	}
}

// Release returns a Peek'd blob's pin on its arena-owned payload. It is
// a no-op for copied payloads and for the zero Blob, so callers can
// Release unconditionally. After Release the blob's Data must not be
// touched again.
func (s *Store) Release(b Blob) { b.ref.release() }

// tierState is one tier's capacity ledger and virtual timeline, guarded by
// its own lock so tiers never contend with each other.
type tierState struct {
	mu   sync.Mutex
	spec tier.Spec
	res  *des.Resource
	used int64
	tm   tierMetrics // nil instruments when telemetry is off
}

// tierMetrics are one tier's per-tier instruments. All fields are nil
// when telemetry is off; instrument methods no-op on nil, so the hot
// paths stay branch-cheap without any conditional wiring.
type tierMetrics struct {
	puts      *telemetry.Counter
	putBytes  *telemetry.Counter
	gets      *telemetry.Counter
	getBytes  *telemetry.Counter
	deletes   *telemetry.Counter
	evictions *telemetry.Counter
	usedGauge *telemetry.Gauge
	putSecs   *telemetry.Histogram // modeled (virtual) seconds per put
	getSecs   *telemetry.Histogram // modeled (virtual) seconds per read
}

// Store is a multi-tier object store. All methods are safe for concurrent
// use. The blob directory and each tier are locked independently;
// cross-tier snapshots (Status) are per-tier consistent but not globally
// atomic, mirroring how a real System Monitor samples devices one by one.
type Store struct {
	mu       sync.RWMutex // guards blobs and the fields of stored *Blob values
	tiers    []*tierState // slice immutable after New; elements self-locked
	blobs    map[string]*Blob
	keepData bool
	hier     tier.Hierarchy

	// flt, when non-nil, rules on every tier operation (fault injection).
	// healthSink, when non-nil, observes per-tier outcomes — injected
	// failures and ordinary successes — so the System Monitor can track
	// tier health. Both are construction-time options; neither is ever
	// called while a tier lock is held (the monitor's refresh path takes
	// its own lock before sampling tiers, so the opposite order would
	// deadlock).
	flt        fault.Injector
	healthSink func(now float64, tier int, err error)
}

// SetFaultInjector installs the fault injector ruling on every tier
// operation. Like SetTelemetry it must be called before the store is
// shared between goroutines; nil leaves injection off.
func (s *Store) SetFaultInjector(f fault.Injector) { s.flt = f }

// SetHealthSink installs the per-tier outcome observer (the System
// Monitor's health feed). It is invoked with a nil error on successful
// operations and with the failure otherwise, never under a store lock.
// Construction-time only; nil leaves health observation off.
func (s *Store) SetHealthSink(fn func(now float64, tier int, err error)) { s.healthSink = fn }

// observe reports one tier outcome to the health sink. Capacity misses
// are not faults — a full tier is healthy — so they are not reported.
func (s *Store) observe(now float64, tier int, err error) {
	if s.healthSink != nil {
		s.healthSink(now, tier, err)
	}
}

// decide consults the fault injector for one operation; the zero
// Decision means "proceed untouched".
func (s *Store) decide(now float64, tier int, op fault.Op, key string, size int64) fault.Decision {
	if s.flt == nil {
		return fault.Decision{}
	}
	return s.flt.Decide(now, tier, op, key, size)
}

// New creates a store over the hierarchy. keepData selects whether blob
// payloads are retained (true) or only modeled (false).
func New(h tier.Hierarchy, keepData bool) (*Store, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	s := &Store{blobs: make(map[string]*Blob), keepData: keepData, hier: h}
	for _, spec := range h.Tiers {
		s.tiers = append(s.tiers, &tierState{
			spec: spec,
			res:  des.NewResource(spec.Name, spec.Lanes, spec.Latency, spec.Bandwidth),
		})
	}
	return s, nil
}

// SetTelemetry registers per-tier instruments (put/get ops and bytes,
// deletes, evictions, used/capacity gauges) on reg. It must be called
// before the store is shared between goroutines — a construction-time
// option like SetParallelism. A nil registry leaves telemetry off.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, ts := range s.tiers {
		l := telemetry.L("tier", ts.spec.Name)
		ts.tm = tierMetrics{
			puts:      reg.Counter("hc_tier_put_ops_total", "sub-task writes placed per tier", l),
			putBytes:  reg.Counter("hc_tier_put_bytes_total", "stored bytes written per tier", l),
			gets:      reg.Counter("hc_tier_get_ops_total", "sub-task reads served per tier", l),
			getBytes:  reg.Counter("hc_tier_get_bytes_total", "stored bytes read per tier", l),
			deletes:   reg.Counter("hc_tier_delete_ops_total", "blobs deleted per tier", l),
			evictions: reg.Counter("hc_tier_evictions_total", "blobs moved off this tier (drain/spill)", l),
			usedGauge: reg.Gauge("hc_tier_used_bytes", "bytes currently allocated per tier", l),
			putSecs: reg.Histogram("hc_tier_io_seconds", "modeled seconds per tier I/O (queueing included)",
				telemetry.SecondsBuckets, l, telemetry.L("op", "put")),
			getSecs: reg.Histogram("hc_tier_io_seconds", "modeled seconds per tier I/O (queueing included)",
				telemetry.SecondsBuckets, l, telemetry.L("op", "get")),
		}
		reg.Gauge("hc_tier_capacity_bytes", "configured capacity per tier", l).
			Set(float64(ts.spec.Capacity))
		ts.tm.usedGauge.Set(float64(ts.used))
	}
}

// Hierarchy returns the hierarchy this store was built from.
func (s *Store) Hierarchy() tier.Hierarchy { return s.hier }

// KeepsData reports whether payloads are retained.
func (s *Store) KeepsData() bool { return s.keepData }

// release returns size bytes of capacity to tier t.
func (s *Store) release(t int, size int64) {
	ts := s.tiers[t]
	ts.mu.Lock()
	ts.used -= size
	ts.tm.usedGauge.Set(float64(ts.used))
	ts.mu.Unlock()
}

// Put stores size bytes under key on tier t, beginning at virtual time
// now, and returns the completion time. data may be nil when retention is
// off (or to model a write without materializing it). The store copies
// data; the caller keeps ownership of its buffer.
func (s *Store) Put(now float64, t int, key string, data []byte, size int64) (end float64, err error) {
	return s.put(now, t, key, data, size, false)
}

// PutOwned is Put for arena-owned payloads: on success the store takes
// ownership of data — storing it without Put's defensive copy and
// recycling it into the buffer arena once the blob is deleted,
// overwritten, or the store is reset (and no Peek pin remains). On
// error, ownership stays with the caller so spill/retry paths can reuse
// the same buffer. data must come from the bufpool arena and must not
// be touched by the caller after a successful PutOwned.
func (s *Store) PutOwned(now float64, t int, key string, data []byte, size int64) (end float64, err error) {
	return s.put(now, t, key, data, size, true)
}

func (s *Store) put(now float64, t int, key string, data []byte, size int64, owned bool) (end float64, err error) {
	if size < 0 {
		return now, fmt.Errorf("store: negative size for %q", key)
	}
	if t < 0 || t >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", t)
	}
	ts := s.tiers[t]

	// Fault injection rules before any state changes, so a failed put has
	// no side effects to roll back and the caller keeps payload ownership.
	if d := s.decide(now, t, fault.OpPut, key, size); d.Err != nil {
		s.observe(now, t, d.Err)
		return now, fmt.Errorf("store: put %q on %s: %w", key, ts.spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}

	// Pop any existing blob so its allocation can be released first (the
	// overwrite path); it is restored if the new payload does not fit.
	s.mu.Lock()
	old, hadOld := s.blobs[key]
	if hadOld {
		delete(s.blobs, key)
	}
	s.mu.Unlock()
	if hadOld {
		s.release(old.Tier, old.Size)
	}

	ts.mu.Lock()
	if ts.used+size > ts.spec.Capacity {
		used, cap := ts.used, ts.spec.Capacity
		ts.mu.Unlock()
		if hadOld { // roll back: restore the old blob and its allocation
			s.tiers[old.Tier].mu.Lock()
			s.tiers[old.Tier].used += old.Size
			s.tiers[old.Tier].tm.usedGauge.Set(float64(s.tiers[old.Tier].used))
			s.tiers[old.Tier].mu.Unlock()
			s.mu.Lock()
			_, raced := s.blobs[key] // a concurrent same-key Put won; keep its blob
			if !raced {
				s.blobs[key] = old
			}
			s.mu.Unlock()
			if raced {
				s.release(old.Tier, old.Size)
				old.ref.release()
			}
		}
		return now, fmt.Errorf("%w: %s (%d used, %d cap, %d requested)",
			ErrNoCapacity, ts.spec.Name, used, cap, size)
	}
	ts.used += size
	end = ts.res.Acquire(now, size)
	ts.tm.puts.Inc()
	ts.tm.putBytes.Add(size)
	ts.tm.putSecs.Observe(end - now)
	ts.tm.usedGauge.Set(float64(ts.used))
	ts.mu.Unlock()

	b := &Blob{Key: key, Tier: t, Size: size}
	if s.keepData && data != nil {
		if owned {
			b.Data = data
			b.ref = &payloadRef{data: data}
			b.ref.refs.Store(1)
		} else {
			b.Data = append([]byte(nil), data...)
		}
	} else if owned && data != nil {
		// Retention off: the payload is consumed here, so the arena
		// buffer can go straight back.
		bufpool.Put(data)
	}
	s.mu.Lock()
	prev, raced := s.blobs[key] // a concurrent same-key Put got here first
	s.blobs[key] = b
	s.mu.Unlock()
	if raced {
		s.release(prev.Tier, prev.Size)
		prev.ref.release()
	}
	// The displaced blob (overwrite path) is gone for good once the new
	// payload is in place.
	if hadOld {
		old.ref.release()
	}
	s.observe(end, t, nil)
	return end, nil
}

// Get reads the blob under key starting at virtual time now. The returned
// data is nil when retention is off.
func (s *Store) Get(now float64, key string) (b Blob, end float64, err error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	if ok {
		b = *blob
		if b.ref != nil {
			// Get callers do not participate in refcounting, so owned
			// payloads are copied out defensively: the original may be
			// recycled by a Delete the moment the lock drops.
			b.Data = append([]byte(nil), b.Data...)
			b.ref = nil
		}
	}
	s.mu.RUnlock()
	if !ok {
		return Blob{}, now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	d := s.decide(now, b.Tier, fault.OpGet, key, b.Size)
	if d.Err != nil {
		s.observe(now, b.Tier, d.Err)
		return Blob{}, now, fmt.Errorf("store: get %q on %s: %w", key, s.tiers[b.Tier].spec.Name, d.Err)
	}
	now += d.Latency
	if d.Corrupt {
		b.corrupt()
	}
	ts := s.tiers[b.Tier]
	ts.mu.Lock()
	end = ts.res.Acquire(now, b.Size)
	ts.tm.gets.Inc()
	ts.tm.getBytes.Add(b.Size)
	ts.tm.getSecs.Observe(end - now)
	ts.mu.Unlock()
	s.observe(end, b.Tier, nil)
	return b, end, nil
}

// corrupt replaces the blob's payload with a bit-flipped private copy —
// the stored bytes stay intact (the fault is what the reader observed,
// not permanent media loss) and any arena pin is dropped since the copy
// is ordinary garbage-collected memory.
func (b *Blob) corrupt() {
	if len(b.Data) == 0 {
		return
	}
	data := append([]byte(nil), b.Data...)
	data[len(data)-1] ^= 0xA5
	if b.ref != nil {
		b.ref.release()
		b.ref = nil
	}
	b.Data = data
}

// Peek returns the blob under key without modeling an I/O or advancing any
// tier timeline. The returned Data (if any) shares the stored buffer and
// must not be mutated. For arena-owned payloads the blob is pinned: the
// caller must pass the returned Blob to Release when done with Data, or
// the buffer can never return to the arena. It exists so the Compression
// Manager can fetch payloads for parallel decompression and replay the
// timed reads afterwards, keeping virtual-time accounting deterministic.
// now does not advance anything; it only positions the fetch on the
// virtual timeline for the fault injector (the paired timed read replays
// at the same reading, so both see the same fault window).
func (s *Store) Peek(now float64, key string) (Blob, error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	var b Blob
	if ok {
		b = *blob
		b.ref.retain()
	}
	s.mu.RUnlock()
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	d := s.decide(now, b.Tier, fault.OpGet, key, b.Size)
	if d.Err != nil {
		b.ref.release()
		s.observe(now, b.Tier, d.Err)
		return Blob{}, fmt.Errorf("store: read %q on %s: %w", key, s.tiers[b.Tier].spec.Name, d.Err)
	}
	if d.Corrupt {
		b.corrupt()
	}
	return b, nil
}

// ReadTime models the timed read of key's blob at virtual time now without
// touching its payload, returning the completion time.
func (s *Store) ReadTime(now float64, key string) (end float64, err error) {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	var t int
	var size int64
	if ok {
		t, size = blob.Tier, blob.Size
	}
	s.mu.RUnlock()
	if !ok {
		return now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if d := s.decide(now, t, fault.OpGet, key, size); d.Err != nil {
		s.observe(now, t, d.Err)
		return now, fmt.Errorf("store: read %q on %s: %w", key, s.tiers[t].spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	end = ts.res.Acquire(now, size)
	ts.tm.gets.Inc()
	ts.tm.getBytes.Add(size)
	ts.tm.getSecs.Observe(end - now)
	ts.mu.Unlock()
	s.observe(end, t, nil)
	return end, nil
}

// Stat returns blob metadata without modeling an I/O.
func (s *Store) Stat(key string) (Blob, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blob, ok := s.blobs[key]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	b := *blob
	b.Data = nil
	b.ref = nil
	return b, nil
}

// Delete removes a blob and releases its capacity.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	blob, ok := s.blobs[key]
	if ok {
		delete(s.blobs, key)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.tiers[blob.Tier].tm.deletes.Inc()
	s.release(blob.Tier, blob.Size)
	blob.ref.release()
	return nil
}

// Move relocates a blob to another tier at virtual time now (used by
// eviction/spill paths), modeling a read on the source and a write on the
// destination. It fails without side effects if the destination is full.
// The directory lock is held throughout so readers never observe a blob
// mid-move.
func (s *Store) Move(now float64, key string, dst int) (end float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	if !ok {
		return now, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if dst < 0 || dst >= len(s.tiers) {
		return now, fmt.Errorf("store: tier %d out of range", dst)
	}
	if blob.Tier == dst {
		return now, nil
	}
	// Fault ruling on the destination write happens before any tier lock
	// is taken (the health sink must never run under one — the monitor's
	// refresh path locks tiers in the opposite order).
	if d := s.decide(now, dst, fault.OpPut, key, blob.Size); d.Err != nil {
		s.observe(now, dst, d.Err)
		return now, fmt.Errorf("store: move %q to %s: %w", key, s.tiers[dst].spec.Name, d.Err)
	} else if d.Latency > 0 {
		now += d.Latency
	}
	src, dstT := s.tiers[blob.Tier], s.tiers[dst]
	lo, hi := src, dstT
	if dst < blob.Tier {
		lo, hi = dstT, src
	}
	lo.mu.Lock()
	hi.mu.Lock()
	defer lo.mu.Unlock()
	defer hi.mu.Unlock()
	if dstT.used+blob.Size > dstT.spec.Capacity {
		return now, fmt.Errorf("%w: %s", ErrNoCapacity, dstT.spec.Name)
	}
	readEnd := src.res.Acquire(now, blob.Size)
	end = dstT.res.Acquire(readEnd, blob.Size)
	src.used -= blob.Size
	dstT.used += blob.Size
	src.tm.evictions.Inc()
	src.tm.usedGauge.Set(float64(src.used))
	dstT.tm.puts.Inc()
	dstT.tm.putBytes.Add(blob.Size)
	dstT.tm.usedGauge.Set(float64(dstT.used))
	blob.Tier = dst
	return end, nil
}

// TierStatus is the System Monitor's view of one tier.
type TierStatus struct {
	Name      string
	Available bool
	Capacity  int64
	Used      int64
	Remaining int64
	QueueLen  int     // lanes busy at the query time
	Backlog   float64 // seconds of committed work beyond the query time
}

// Status snapshots every tier at virtual time now. Each tier is sampled
// under its own lock; the snapshot is per-tier consistent but tiers are
// not frozen relative to each other (the System Monitor's view is
// explicitly allowed to be slightly stale).
func (s *Store) Status(now float64) []TierStatus {
	out := make([]TierStatus, len(s.tiers))
	for i, ts := range s.tiers {
		// A capacity lie shrinks what the monitor *reports*, not what the
		// tier holds — the false telemetry a real System Monitor can
		// serve. Placement re-checks true capacity, so lies only mislead
		// planners.
		capEff := ts.spec.Capacity
		if s.flt != nil {
			capEff = s.flt.ReportedCapacity(now, i, capEff)
		}
		ts.mu.Lock()
		rem := capEff - ts.used
		if rem < 0 {
			rem = 0
		}
		out[i] = TierStatus{
			Name:      ts.spec.Name,
			Available: true,
			Capacity:  ts.spec.Capacity,
			Used:      ts.used,
			Remaining: rem,
			QueueLen:  ts.res.QueueDepth(now),
			Backlog:   ts.res.Backlog(now),
		}
		ts.mu.Unlock()
	}
	return out
}

// Used reports the bytes currently allocated on tier t.
func (s *Store) Used(t int) int64 {
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.used
}

// Remaining reports free capacity on tier t.
func (s *Store) Remaining(t int) int64 {
	if t < 0 || t >= len(s.tiers) {
		return 0
	}
	ts := s.tiers[t]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.spec.Capacity - ts.used
}

// Reset clears all blobs and virtual-time state, keeping the hierarchy.
// Arena-owned payloads are recycled (modulo outstanding Peek pins).
func (s *Store) Reset() {
	s.mu.Lock()
	old := s.blobs
	s.blobs = make(map[string]*Blob)
	s.mu.Unlock()
	for _, b := range old {
		b.ref.release()
	}
	for _, ts := range s.tiers {
		ts.mu.Lock()
		ts.used = 0
		ts.res.Reset()
		ts.tm.usedGauge.Set(0)
		ts.mu.Unlock()
	}
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
