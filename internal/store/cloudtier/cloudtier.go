// Package cloudtier models an object-store tier: payloads are held in
// process memory like the default backend (this is a simulation of a
// remote service, not a client for one), but every byte's residency and
// every byte read out is metered in dollars on the virtual clock — the
// cold floor the HCDP cost objective trades against the fast tiers.
//
// Storage cost integrates byte-seconds: each operation carries its
// virtual time, and the meter advances `used × Δt` before the operation
// applies, priced at CostPerGBMonth. Egress counts every byte leaving
// the tier — Peek, Get (which peeks), and MoveOut — priced at
// EgressCostPerGB. The virtual clock only moves forward; operations
// replayed at earlier readings (the manager's deterministic re-reads)
// don't rewind the meter.
package cloudtier

import (
	"sync"

	"hcompress/internal/store/backend"
)

const (
	gb          = float64(1 << 30)
	secPerMonth = 30 * 24 * 3600.0
)

// CostReport is the meter reading at one virtual time.
type CostReport struct {
	StorageDollars float64 // byte-second integral × CostPerGBMonth
	EgressDollars  float64 // bytes read out × EgressCostPerGB
	EgressBytes    int64
	UsedBytes      int64
}

// Total sums the storage and egress charges.
func (c CostReport) Total() float64 { return c.StorageDollars + c.EgressDollars }

// Backend is a modeled cloud object tier.
type Backend struct {
	costPerGBMonth  float64
	egressCostPerGB float64

	mu          sync.Mutex
	m           map[backend.Handle]*backend.Ref
	next        uint64
	used        int64
	byteSeconds float64 // ∫ used dt on the virtual clock
	egressBytes int64
	lastNow     float64
}

// New creates a cloud backend priced at the given storage and egress
// rates (dollars per GB-month and per GB respectively; zero disables
// that meter).
func New(costPerGBMonth, egressCostPerGB float64) *Backend {
	return &Backend{
		costPerGBMonth:  costPerGBMonth,
		egressCostPerGB: egressCostPerGB,
		m:               make(map[backend.Handle]*backend.Ref),
	}
}

// advance integrates residency up to now. Caller holds b.mu.
func (b *Backend) advance(now float64) {
	if now > b.lastNow {
		b.byteSeconds += float64(b.used) * (now - b.lastNow)
		b.lastNow = now
	}
}

// Cost returns the meter reading with residency integrated up to now.
func (b *Backend) Cost(now float64) CostReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	return CostReport{
		StorageDollars: b.byteSeconds / gb / secPerMonth * b.costPerGBMonth,
		EgressDollars:  float64(b.egressBytes) / gb * b.egressCostPerGB,
		EgressBytes:    b.egressBytes,
		UsedBytes:      b.used,
	}
}

// Kind implements backend.TierBackend.
func (b *Backend) Kind() string { return "cloud" }

// Resident implements backend.TierBackend: the model keeps payloads in
// memory, so handed-in references are retained.
func (b *Backend) Resident() bool { return true }

// Open implements backend.TierBackend.
func (b *Backend) Open() error { return nil }

// Recovered implements backend.TierBackend.
func (b *Backend) Recovered() []backend.RecoveredEntry { return nil }

// Put implements backend.TierBackend.
func (b *Backend) Put(now float64, _ string, r *backend.Ref) (backend.Handle, error) {
	b.mu.Lock()
	b.advance(now)
	b.next++
	h := backend.Handle(b.next)
	b.m[h] = r
	b.used += r.Len()
	b.mu.Unlock()
	return h, nil
}

// Peek implements backend.TierBackend; the bytes leaving the tier are
// egress.
func (b *Backend) Peek(now float64, h backend.Handle) (*backend.Ref, error) {
	b.mu.Lock()
	b.advance(now)
	r, ok := b.m[h]
	if ok {
		r.Retain()
		b.egressBytes += r.Len()
	}
	b.mu.Unlock()
	if !ok {
		return nil, backend.ErrUnknownHandle
	}
	return r, nil
}

// MoveOut implements backend.TierBackend; promotion out of the cloud is
// egress too.
func (b *Backend) MoveOut(now float64, h backend.Handle) (*backend.Ref, error) {
	b.mu.Lock()
	b.advance(now)
	r, ok := b.m[h]
	if ok {
		delete(b.m, h)
		b.used -= r.Len()
		b.egressBytes += r.Len()
	}
	b.mu.Unlock()
	if !ok {
		return nil, backend.ErrUnknownHandle
	}
	return r, nil
}

// Delete implements backend.TierBackend. Deletion time isn't threaded
// through the store, so residency is integrated at the meter's current
// watermark.
func (b *Backend) Delete(h backend.Handle) {
	b.mu.Lock()
	r, ok := b.m[h]
	if ok {
		delete(b.m, h)
		b.used -= r.Len()
	}
	b.mu.Unlock()
	r.Release()
}

// Used implements backend.TierBackend.
func (b *Backend) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Len implements backend.TierBackend.
func (b *Backend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Sync implements backend.TierBackend.
func (b *Backend) Sync() error { return nil }

// Close implements backend.TierBackend.
func (b *Backend) Close() error {
	b.mu.Lock()
	old := b.m
	b.m = make(map[backend.Handle]*backend.Ref)
	b.used = 0
	b.mu.Unlock()
	for _, r := range old {
		r.Release()
	}
	return nil
}
