package cloudtier

import (
	"bytes"
	"math"
	"testing"

	"hcompress/internal/store/backend"
)

func ref(n int, fill byte) *backend.Ref {
	return backend.NewRef(bytes.Repeat([]byte{fill}, n), nil)
}

func TestCloudStorageCostIntegratesByteSeconds(t *testing.T) {
	b := New(0.023, 0.09)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const n = 1 << 20 // 1 MiB resident
	if _, err := b.Put(0, "k", ref(n, 1)); err != nil {
		t.Fatal(err)
	}
	// One full month of residency at $0.023/GB-month.
	rep := b.Cost(secPerMonth)
	want := float64(n) / gb * 0.023
	if math.Abs(rep.StorageDollars-want) > want*1e-9 {
		t.Fatalf("StorageDollars = %g, want %g", rep.StorageDollars, want)
	}
	if rep.EgressDollars != 0 || rep.EgressBytes != 0 {
		t.Fatalf("no reads happened, egress = %+v", rep)
	}
	if rep.UsedBytes != n {
		t.Fatalf("UsedBytes = %d, want %d", rep.UsedBytes, n)
	}
}

func TestCloudEgressMetersReads(t *testing.T) {
	b := New(0, 0.09)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const n = 4096
	h, err := b.Put(0, "k", ref(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.Peek(1, h)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	r, err = b.MoveOut(2, h)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	rep := b.Cost(2)
	if rep.EgressBytes != 2*n {
		t.Fatalf("EgressBytes = %d, want %d", rep.EgressBytes, 2*n)
	}
	want := float64(2*n) / gb * 0.09
	if math.Abs(rep.EgressDollars-want) > want*1e-9 {
		t.Fatalf("EgressDollars = %g, want %g", rep.EgressDollars, want)
	}
	if rep.UsedBytes != 0 {
		t.Fatalf("UsedBytes = %d after MoveOut, want 0", rep.UsedBytes)
	}
	if math.Abs(rep.Total()-(rep.StorageDollars+rep.EgressDollars)) > 1e-12 {
		t.Fatal("Total must sum the two meters")
	}
}

func TestCloudClockNeverRewinds(t *testing.T) {
	b := New(1.0, 0)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Put(100, "k", ref(1024, 3)); err != nil {
		t.Fatal(err)
	}
	at200 := b.Cost(200).StorageDollars
	// A deterministic re-read at an earlier virtual time must not move
	// the meter backwards.
	if got := b.Cost(150).StorageDollars; got != at200 {
		t.Fatalf("meter rewound: %g != %g", got, at200)
	}
	if got := b.Cost(300).StorageDollars; got <= at200 {
		t.Fatalf("meter must advance: %g <= %g", got, at200)
	}
}
