package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are not solvable.
var ErrSingular = errors.New("stats: singular design matrix")

// OLSResult holds a fitted linear model y = b0 + b1*x1 + ... and its
// inference statistics — the quantities the paper reports for the CCP
// (adjusted R^2 of 94%, p-values < 0.02, F-statistic 928).
type OLSResult struct {
	Coef       []float64 // Coef[0] is the intercept
	R2         float64
	AdjR2      float64
	FStat      float64
	PValues    []float64 // per coefficient (t-test), same indexing as Coef
	StdErr     []float64
	N          int
	DFResidual int
}

// OLS fits ordinary least squares with an intercept. xs is row-major:
// xs[i] are the predictor values for observation i.
func OLS(xs [][]float64, ys []float64) (*OLSResult, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, fmt.Errorf("stats: OLS needs matching non-empty xs, ys (got %d, %d)", n, len(ys))
	}
	k := len(xs[0]) // predictors (excluding intercept)
	p := k + 1
	if n <= p {
		return nil, fmt.Errorf("stats: OLS needs n > predictors+1 (n=%d, p=%d)", n, p)
	}
	// Build X'X and X'y with the intercept column folded in.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		if len(xs[i]) != k {
			return nil, fmt.Errorf("stats: ragged design matrix at row %d", i)
		}
		row[0] = 1
		copy(row[1:], xs[i])
		for a := 0; a < p; a++ {
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * ys[i]
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	inv, err := invertSPD(xtx)
	if err != nil {
		return nil, err
	}
	coef := make([]float64, p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			coef[a] += inv[a][b] * xty[b]
		}
	}
	// Residuals and fit statistics.
	var ssRes, ssTot, meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(n)
	for i := 0; i < n; i++ {
		pred := coef[0]
		for j := 0; j < k; j++ {
			pred += coef[j+1] * xs[i][j]
		}
		r := ys[i] - pred
		ssRes += r * r
		d := ys[i] - meanY
		ssTot += d * d
	}
	res := &OLSResult{Coef: coef, N: n, DFResidual: n - p}
	if ssTot > 0 {
		res.R2 = 1 - ssRes/ssTot
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(n-p)
	} else {
		res.R2, res.AdjR2 = 1, 1
	}
	sigma2 := ssRes / float64(n-p)
	res.StdErr = make([]float64, p)
	res.PValues = make([]float64, p)
	for a := 0; a < p; a++ {
		se := math.Sqrt(sigma2 * inv[a][a])
		res.StdErr[a] = se
		if se > 0 {
			t := coef[a] / se
			res.PValues[a] = 2 * tDistSF(math.Abs(t), float64(n-p))
		} else {
			res.PValues[a] = 0
		}
	}
	if k > 0 && ssRes > 0 {
		res.FStat = (ssTot - ssRes) / float64(k) / sigma2
	} else {
		res.FStat = math.Inf(1)
	}
	return res, nil
}

// Predict evaluates the fitted model at x.
func (r *OLSResult) Predict(x []float64) float64 {
	pred := r.Coef[0]
	for j, v := range x {
		if j+1 < len(r.Coef) {
			pred += r.Coef[j+1] * v
		}
	}
	return pred
}

// invertSPD inverts a symmetric positive-definite matrix via Gauss-Jordan
// with partial pivoting (sizes here are tiny, <= ~20).
func invertSPD(a [][]float64) ([][]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, 2*n)
		copy(m[i], a[i])
		m[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for j := col; j < 2*n; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j < 2*n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = m[i][n:]
	}
	return out, nil
}

// tDistSF is the survival function of Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func tDistSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes I_x(a, b) using the continued-fraction expansion
// (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RLS is a recursive least squares estimator with exponential forgetting:
// the online model behind the CCP's feedback loop. Each Observe call is
// O(p^2); there is no matrix inversion at runtime.
type RLS struct {
	p      int
	lambda float64     // forgetting factor in (0, 1]
	theta  []float64   // coefficients, theta[0] = intercept
	pmat   [][]float64 // inverse covariance estimate
	nobs   int
	seen   int // observations since construction (never reset)
	// Running accuracy tracking: an exponentially weighted average of the
	// one-step-ahead relative accuracy 1 - |err|/|y|. This is the
	// "accuracy (R2)" metric the paper's Fig. 4(b) plots; unlike a raw
	// predictive R^2 it stays meaningful when the target is near-constant.
	acc     float64
	accInit bool
	// Scratch vectors reused by Observe. Observe mutates theta/pmat and
	// therefore already requires external synchronization; reusing the
	// scratch under the same discipline keeps the update allocation-free.
	phi, pphi, gain []float64
}

// NewRLS creates an estimator for k predictors (plus intercept).
// lambda = 1 is ordinary recursive least squares; values slightly below 1
// let the model track drift — the "reinforcement" in the paper's loop.
func NewRLS(k int, lambda float64) *RLS {
	p := k + 1
	r := &RLS{
		p: p, lambda: lambda, theta: make([]float64, p),
		phi: make([]float64, p), pphi: make([]float64, p), gain: make([]float64, p),
	}
	r.pmat = make([][]float64, p)
	for i := range r.pmat {
		r.pmat[i] = make([]float64, p)
		r.pmat[i][i] = 1e4 // diffuse prior
	}
	return r
}

// SetCoef seeds the coefficient vector (e.g. from the profiler's JSON seed).
func (r *RLS) SetCoef(coef []float64) {
	copy(r.theta, coef)
}

// Coef returns a copy of the current coefficients.
func (r *RLS) Coef() []float64 {
	return append([]float64(nil), r.theta...)
}

// N reports the number of observations absorbed.
func (r *RLS) N() int { return r.nobs }

// Predict evaluates the model at x (length k).
func (r *RLS) Predict(x []float64) float64 {
	pred := r.theta[0]
	for j, v := range x {
		if j+1 < r.p {
			pred += r.theta[j+1] * v
		}
	}
	return pred
}

// Observe folds in one (x, y) observation.
func (r *RLS) Observe(x []float64, y float64) {
	phi := r.phi
	phi[0] = 1
	n := copy(phi[1:], x)
	for i := 1 + n; i < r.p; i++ {
		phi[i] = 0
	}

	// Track accuracy against the pre-update prediction.
	pred := r.Predict(x)
	r.nobs++
	r.seen++
	e := y - pred
	denom := math.Abs(y)
	if denom < 1e-12 {
		denom = 1e-12
	}
	rel := 1 - math.Abs(e)/denom
	if rel < 0 {
		rel = 0
	}
	const alpha = 0.05
	if !r.accInit {
		r.acc = rel
		r.accInit = true
	} else {
		r.acc += alpha * (rel - r.acc)
	}

	// Standard RLS update.
	pphi := r.pphi
	for i := 0; i < r.p; i++ {
		pphi[i] = 0
		for j := 0; j < r.p; j++ {
			pphi[i] += r.pmat[i][j] * phi[j]
		}
	}
	den := r.lambda
	for i := 0; i < r.p; i++ {
		den += phi[i] * pphi[i]
	}
	gain := r.gain
	for i := 0; i < r.p; i++ {
		gain[i] = pphi[i] / den
	}
	for i := 0; i < r.p; i++ {
		r.theta[i] += gain[i] * e
	}
	for i := 0; i < r.p; i++ {
		for j := 0; j < r.p; j++ {
			r.pmat[i][j] = (r.pmat[i][j] - gain[i]*pphi[j]) / r.lambda
		}
	}
}

// ObserveRun folds in a run of observations that share one feature
// vector, as batched feedback produces. It follows the same sequential
// recursion as calling Observe once per y: with a fixed regressor the
// gain stays collinear with P·phi, so the k rank-1 covariance updates
// collapse to scalar recursions plus a single rank-1 write at the end —
// O(p^2 + k·p) instead of O(k·p^2). Results match the sequential path
// up to floating-point reassociation.
func (r *RLS) ObserveRun(x []float64, ys []float64) {
	if len(ys) == 0 {
		return
	}
	if len(ys) == 1 {
		r.Observe(x, ys[0])
		return
	}
	phi := r.phi
	phi[0] = 1
	n := copy(phi[1:], x)
	for i := 1 + n; i < r.p; i++ {
		phi[i] = 0
	}
	// q0 = P·phi and s0 = phi'·P·phi for the pre-run covariance; every
	// intermediate P_i is a·P0 + b·q0·q0', so the whole run reduces to
	// the scalars (a, b) plus the running prediction.
	q := r.pphi
	for i := 0; i < r.p; i++ {
		q[i] = 0
		for j := 0; j < r.p; j++ {
			q[i] += r.pmat[i][j] * phi[j]
		}
	}
	s0 := 0.0
	for i := 0; i < r.p; i++ {
		s0 += phi[i] * q[i]
	}
	pred := r.Predict(x)
	a, b, coefA := 1.0, 0.0, 0.0
	const alpha = 0.05
	for _, y := range ys {
		r.nobs++
		r.seen++
		e := y - pred
		denom := math.Abs(y)
		if denom < 1e-12 {
			denom = 1e-12
		}
		rel := 1 - math.Abs(e)/denom
		if rel < 0 {
			rel = 0
		}
		if !r.accInit {
			r.acc = rel
			r.accInit = true
		} else {
			r.acc += alpha * (rel - r.acc)
		}
		c := a + b*s0 // q_i = c·q0, s_i = c·s0
		den := r.lambda + c*s0
		coefA += c * e / den
		pred += c * s0 / den * e
		a /= r.lambda
		b = (b - c*c/den) / r.lambda
	}
	for i := 0; i < r.p; i++ {
		r.theta[i] += coefA * q[i]
	}
	for i := 0; i < r.p; i++ {
		for j := 0; j < r.p; j++ {
			r.pmat[i][j] = a*r.pmat[i][j] + b*q[i]*q[j]
		}
	}
}

// R2 reports the running one-step-ahead prediction accuracy (the
// "accuracy (R2)" metric of the paper's Fig. 4(b)), in [0, 1].
func (r *RLS) R2() float64 {
	if !r.accInit {
		return 1
	}
	return r.acc
}

// Seen reports the total observations ever absorbed (survives
// ResetAccuracy; used to distinguish "seeded" from "empty" models).
func (r *RLS) Seen() int { return r.seen }

// ResetAccuracy clears the running accuracy counters while keeping the
// fitted model (used when a new phase begins).
func (r *RLS) ResetAccuracy() {
	r.acc, r.accInit, r.nobs = 0, false, 0
}
