package stats

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// DataType enumerates the element types the Input Analyzer infers from raw
// buffers. They match the paper's model inputs ("data-type (e.g., integer)").
type DataType int

const (
	TypeBinary DataType = iota // opaque / high-entropy bytes
	TypeInt                    // little-endian int32 array
	TypeFloat                  // little-endian float32 array
	TypeText                   // ASCII text
	numTypes
)

var typeNames = [...]string{"binary", "int", "float", "text"}

func (t DataType) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return "unknown"
	}
	return typeNames[t]
}

// AllTypes lists every inferable data type.
func AllTypes() []DataType { return []DataType{TypeBinary, TypeInt, TypeFloat, TypeText} }

// TypeByName resolves a type name.
func TypeByName(name string) (DataType, bool) {
	for i, n := range typeNames {
		if n == name {
			return DataType(i), true
		}
	}
	return TypeBinary, false
}

// words used to synthesize text-typed buffers.
var loremWords = []string{
	"particle", "simulation", "storage", "hierarchy", "compression",
	"bandwidth", "latency", "checkpoint", "timestep", "buffer", "tier",
	"velocity", "energy", "density", "pressure", "field", "plasma", "data",
	"the", "of", "and", "in", "to", "a", "is", "for", "with", "on",
}

// GenBuffer synthesizes n bytes of data with the given element type and
// content distribution, deterministically from seed. It is the common
// workload generator used by the profiler, the CCP tests, and the
// synthetic scientific kernels.
func GenBuffer(dtype DataType, dist Dist, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	s := Sampler{Dist: dist, Shape: 2, Scale: 1000}
	out := make([]byte, 0, n)
	switch dtype {
	case TypeInt:
		for len(out)+4 <= n {
			v := uint32(int32(s.Sample(rng)))
			out = binary.LittleEndian.AppendUint32(out, v)
		}
	case TypeFloat:
		// Scientific float data carries limited true precision; like
		// checkpointed simulation fields, quantize the mantissa (clear the
		// low 12 bits, ~3 significant decimal digits kept). The marginal
		// distribution is unchanged to within 0.03%, but the byte stream
		// gains the redundancy real VPIC-style output has — without this,
		// IID full-precision floats are incompressible by construction and
		// no codec could ever be distinguished on them.
		for len(out)+4 <= n {
			v := math.Float32bits(float32(s.Sample(rng))) &^ 0xFFF
			out = binary.LittleEndian.AppendUint32(out, v)
		}
	case TypeText:
		for len(out) < n {
			idx := int(s.Sample(rng)) % len(loremWords)
			if idx < 0 {
				idx += len(loremWords)
			}
			w := loremWords[idx]
			out = append(out, w...)
			out = append(out, ' ')
		}
	default: // TypeBinary: quantized variates -> bytes, entropy set by dist
		// Clamp rather than wrap so the byte histogram keeps the
		// distribution's shape (wrapping modulo 256 would whiten it and
		// make every binary buffer equally incompressible).
		for len(out) < n {
			v := int(s.Sample(rng) * 0.25)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out = append(out, byte(v))
		}
	}
	// Pad/trim to exactly n.
	for len(out) < n {
		out = append(out, 0)
	}
	return out[:n]
}

// SampleFloats extracts up to max float64 samples from a buffer interpreted
// per dtype; used by the distribution classifier.
func SampleFloats(buf []byte, dtype DataType, max int) []float64 {
	out := make([]float64, 0, minInt(max, len(buf)))
	switch dtype {
	case TypeInt:
		stride := 4 * maxInt(1, len(buf)/4/max)
		for i := 0; i+4 <= len(buf) && len(out) < max; i += stride {
			out = append(out, float64(int32(binary.LittleEndian.Uint32(buf[i:]))))
		}
	case TypeFloat:
		stride := 4 * maxInt(1, len(buf)/4/max)
		for i := 0; i+4 <= len(buf) && len(out) < max; i += stride {
			f := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i:])))
			if !math.IsNaN(f) && !math.IsInf(f, 0) {
				out = append(out, f)
			}
		}
	default:
		stride := maxInt(1, len(buf)/max)
		for i := 0; i < len(buf) && len(out) < max; i += stride {
			out = append(out, float64(buf[i]))
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
