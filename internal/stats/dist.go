// Package stats provides the statistical substrate for HCompress: random
// data generators over the four distributions the paper's Input Analyzer
// distinguishes (uniform, normal, exponential, gamma), moment estimators,
// a moment-based distribution classifier, and linear regression (batch OLS
// with inference statistics plus recursive least squares for the CCP's
// reinforcement-learning feedback loop).
package stats

import (
	"math"
	"math/rand"
)

// Dist enumerates the content distributions the Input Analyzer classifies.
type Dist int

const (
	Uniform Dist = iota
	Normal
	Exponential
	Gamma
	numDists
)

var distNames = [...]string{"uniform", "normal", "exponential", "gamma"}

func (d Dist) String() string {
	if d < 0 || int(d) >= len(distNames) {
		return "unknown"
	}
	return distNames[d]
}

// AllDists lists every classifiable distribution.
func AllDists() []Dist { return []Dist{Uniform, Normal, Exponential, Gamma} }

// DistByName resolves a distribution name; it returns Uniform, false for
// unknown names.
func DistByName(name string) (Dist, bool) {
	for i, n := range distNames {
		if n == name {
			return Dist(i), true
		}
	}
	return Uniform, false
}

// Sampler draws float64 variates from a distribution family with fixed
// parameters, using a caller-owned RNG so streams are reproducible.
type Sampler struct {
	Dist  Dist
	Shape float64 // gamma shape k (>0); ignored otherwise
	Scale float64 // scale/rate parameter; see Sample
}

// Sample draws one variate:
//
//	Uniform:     U(0, Scale)
//	Normal:      N(Scale, (Scale/4)^2), clamped shifts keep values positive-ish
//	Exponential: Exp(rate 1/Scale), mean Scale
//	Gamma:       Gamma(Shape, Scale)
func (s Sampler) Sample(rng *rand.Rand) float64 {
	switch s.Dist {
	case Uniform:
		return rng.Float64() * s.Scale
	case Normal:
		return rng.NormFloat64()*(s.Scale/4) + s.Scale
	case Exponential:
		return rng.ExpFloat64() * s.Scale
	case Gamma:
		return sampleGamma(rng, s.Shape, s.Scale)
	default:
		return rng.Float64() * s.Scale
	}
}

// sampleGamma draws Gamma(k, theta) via Marsaglia-Tsang, with the standard
// boost for k < 1.
func sampleGamma(rng *rand.Rand, k, theta float64) float64 {
	if k <= 0 {
		k = 1
	}
	boost := 1.0
	if k < 1 {
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * theta
		}
	}
}

// Moments summarizes a sample.
type Moments struct {
	N        int
	Mean     float64
	Variance float64 // population variance
	Skewness float64
	Kurtosis float64 // excess kurtosis
	Min, Max float64
}

// ComputeMoments returns the first four standardized moments of xs.
func ComputeMoments(xs []float64) Moments {
	m := Moments{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return m
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.Mean = sum / float64(len(xs))
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	m4 /= n
	m.Variance = m2
	if m2 > 0 {
		sd := math.Sqrt(m2)
		m.Skewness = m3 / (sd * sd * sd)
		m.Kurtosis = m4/(m2*m2) - 3
	}
	return m
}

// ClassifyDist assigns samples to the nearest of the four families by
// matching standardized moments:
//
//	uniform:     skew 0,      excess kurtosis -1.2
//	normal:      skew 0,      excess kurtosis 0
//	exponential: skew 2,      excess kurtosis 6
//	gamma(k):    skew 2/sqrt(k), kurtosis 6/k — with k estimated from the
//	             coefficient of variation, covering the space between
//	             normal (k -> inf) and exponential (k = 1).
//
// The classifier is intentionally cheap: the paper performs detection
// "statically using techniques such as sub-sampling" and treats it as a
// fast pre-pass, not an inference problem.
func ClassifyDist(xs []float64) Dist {
	m := ComputeMoments(xs)
	if m.N < 8 || m.Variance == 0 {
		return Uniform
	}
	type candidate struct {
		d        Dist
		skew, ku float64
	}
	cands := []candidate{
		{Uniform, 0, -1.2},
		{Normal, 0, 0},
		{Exponential, 2, 6},
	}
	// Gamma shape from CV when the sample is positive-supported. Gamma(1)
	// IS the exponential and Gamma(k->inf) converges to the normal, so a
	// gamma candidate is only offered when the estimated shape is clearly
	// away from both degenerate corners; otherwise the simpler family wins.
	if m.Min >= 0 && m.Mean > 0 {
		k := (m.Mean * m.Mean) / m.Variance
		if k > 0.05 && k < 30 && (k < 0.75 || k > 1.3) {
			cands = append(cands, candidate{Gamma, 2 / math.Sqrt(k), 6 / k})
		}
	}
	best := Uniform
	bestScore := math.Inf(1)
	for _, c := range cands {
		ds := m.Skewness - c.skew
		dk := (m.Kurtosis - c.ku) / 3 // kurtosis is noisier; downweight
		score := ds*ds + dk*dk
		// Gamma with k near 1 duplicates exponential and k large duplicates
		// normal; prefer the simpler family on near-ties.
		if c.d == Gamma {
			score *= 1.05
		}
		if score < bestScore {
			bestScore = score
			best = c.d
		}
	}
	return best
}
