package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSamplerMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	cases := []struct {
		s    Sampler
		want float64
		tol  float64
	}{
		{Sampler{Dist: Uniform, Scale: 1000}, 500, 10},
		{Sampler{Dist: Normal, Scale: 1000}, 1000, 10},
		{Sampler{Dist: Exponential, Scale: 1000}, 1000, 20},
		{Sampler{Dist: Gamma, Shape: 2, Scale: 1000}, 2000, 40},
		{Sampler{Dist: Gamma, Shape: 0.5, Scale: 1000}, 500, 20},
	}
	for _, c := range cases {
		var sum float64
		for i := 0; i < n; i++ {
			sum += c.s.Sample(rng)
		}
		got := sum / n
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%v: mean %.1f, want %.1f±%.1f", c.s.Dist, got, c.want, c.tol)
		}
	}
}

func TestComputeMoments(t *testing.T) {
	m := ComputeMoments([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m.Mean != 5 {
		t.Errorf("mean %v want 5", m.Mean)
	}
	if m.Variance != 4 {
		t.Errorf("variance %v want 4", m.Variance)
	}
	if m.Min != 2 || m.Max != 9 {
		t.Errorf("min/max %v/%v", m.Min, m.Max)
	}
	empty := ComputeMoments(nil)
	if empty.N != 0 {
		t.Error("empty moments")
	}
}

func TestClassifyDist(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 8192
	for _, d := range AllDists() {
		s := Sampler{Dist: d, Shape: 3, Scale: 100}
		correct := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = s.Sample(rng)
			}
			if ClassifyDist(xs) == d {
				correct++
			}
		}
		if correct < trials*7/10 {
			t.Errorf("dist %v: classified correctly only %d/%d", d, correct, trials)
		}
	}
}

func TestClassifyDistDegenerate(t *testing.T) {
	if got := ClassifyDist(nil); got != Uniform {
		t.Errorf("nil -> %v", got)
	}
	if got := ClassifyDist([]float64{5, 5, 5, 5, 5, 5, 5, 5, 5}); got != Uniform {
		t.Errorf("constant -> %v", got)
	}
}

func TestDistNames(t *testing.T) {
	for _, d := range AllDists() {
		back, ok := DistByName(d.String())
		if !ok || back != d {
			t.Errorf("round-trip %v failed", d)
		}
	}
	if _, ok := DistByName("cauchy"); ok {
		t.Error("cauchy should not resolve")
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// y = 3 + 2*x1 - 0.5*x2 + noise
	n := 500
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		xs[i] = []float64{x1, x2}
		ys[i] = 3 + 2*x1 - 0.5*x2 + rng.NormFloat64()*0.1
	}
	res, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for j, w := range want {
		if math.Abs(res.Coef[j]-w) > 0.05 {
			t.Errorf("coef[%d] = %.4f, want %.4f", j, res.Coef[j], w)
		}
	}
	if res.R2 < 0.99 {
		t.Errorf("R2 = %.4f, want > 0.99", res.R2)
	}
	if res.AdjR2 > res.R2 {
		t.Error("adjusted R2 must not exceed R2")
	}
	for j := 1; j < 3; j++ {
		if res.PValues[j] > 0.001 {
			t.Errorf("p-value[%d] = %v, should be significant", j, res.PValues[j])
		}
	}
	if res.FStat < 100 {
		t.Errorf("F-stat = %v, want large", res.FStat)
	}
}

func TestOLSInsignificantPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, junk := rng.Float64()*10, rng.Float64()*10
		xs[i] = []float64{x1, junk}
		ys[i] = 1 + x1 + rng.NormFloat64()
	}
	res, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValues[2] < 0.01 {
		t.Errorf("junk predictor p-value %v suspiciously small", res.PValues[2])
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("empty OLS should fail")
	}
	// Collinear predictors -> singular.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10}}
	ys := []float64{1, 2, 3, 4, 5}
	if _, err := OLS(xs, ys); err == nil {
		t.Error("collinear OLS should fail")
	}
}

func TestOLSPredict(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	res, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Predict([]float64{5}); math.Abs(p-10) > 1e-6 {
		t.Errorf("predict(5) = %v, want 10", p)
	}
}

func TestRLSConvergesToOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rls := NewRLS(2, 1.0)
	for i := 0; i < 2000; i++ {
		x := []float64{rng.Float64() * 5, rng.Float64() * 5}
		y := -1 + 0.7*x[0] + 1.3*x[1] + rng.NormFloat64()*0.05
		rls.Observe(x, y)
	}
	coef := rls.Coef()
	want := []float64{-1, 0.7, 1.3}
	for j, w := range want {
		if math.Abs(coef[j]-w) > 0.05 {
			t.Errorf("coef[%d] = %.4f want %.4f", j, coef[j], w)
		}
	}
	if rls.R2() < 0.95 {
		t.Errorf("running R2 = %.4f", rls.R2())
	}
}

func TestRLSTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rls := NewRLS(1, 0.98)
	// Regime 1: y = x. Regime 2: y = 3x. With forgetting, the model must
	// follow the new regime — this is the paper's feedback-loop behaviour
	// when the data distribution shifts.
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 10
		rls.Observe([]float64{x}, x)
	}
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 10
		rls.Observe([]float64{x}, 3*x)
	}
	if got := rls.Predict([]float64{10}); math.Abs(got-30) > 2 {
		t.Errorf("after drift, predict(10) = %.2f, want ~30", got)
	}
}

// TestRLSObserveRunMatchesSequential: the collapsed same-regressor
// update must agree with calling Observe once per y — coefficients,
// covariance (via subsequent predictions), counts, and the running
// accuracy — to floating-point reassociation tolerance.
func TestRLSObserveRunMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lambda := range []float64{1.0, 0.995, 0.95} {
		for _, k := range []int{2, 3, 16, 64} {
			seqM := NewRLS(3, lambda)
			runM := NewRLS(3, lambda)
			// Mixed history first, so the run starts from a non-trivial state.
			for i := 0; i < 50; i++ {
				x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				y := 1 + 2*x[0] - x[1] + 0.5*x[2] + rng.NormFloat64()*0.1
				seqM.Observe(x, y)
				runM.Observe(x, y)
			}
			x := []float64{0.3, 0.7, 0.1}
			ys := make([]float64, k)
			for i := range ys {
				ys[i] = 2.5 + rng.NormFloat64()
			}
			for _, y := range ys {
				seqM.Observe(x, y)
			}
			runM.ObserveRun(x, ys)

			if seqM.N() != runM.N() || seqM.Seen() != runM.Seen() {
				t.Fatalf("lambda=%v k=%d: counts differ: (%d,%d) vs (%d,%d)",
					lambda, k, seqM.N(), seqM.Seen(), runM.N(), runM.Seen())
			}
			if diff := math.Abs(seqM.R2() - runM.R2()); diff > 1e-9 {
				t.Errorf("lambda=%v k=%d: R2 differs by %g", lambda, k, diff)
			}
			sc, rc := seqM.Coef(), runM.Coef()
			for j := range sc {
				if math.Abs(sc[j]-rc[j]) > 1e-9*(1+math.Abs(sc[j])) {
					t.Errorf("lambda=%v k=%d: coef[%d] %g vs %g", lambda, k, j, sc[j], rc[j])
				}
			}
			// The covariance states must agree too: feed one more shared
			// observation and compare the resulting coefficients (the gain
			// depends on P, so divergent P would surface here).
			probe := []float64{0.9, 0.2, 0.4}
			seqM.Observe(probe, 1.7)
			runM.Observe(probe, 1.7)
			sc, rc = seqM.Coef(), runM.Coef()
			for j := range sc {
				if math.Abs(sc[j]-rc[j]) > 1e-8*(1+math.Abs(sc[j])) {
					t.Errorf("lambda=%v k=%d: post-probe coef[%d] %g vs %g", lambda, k, j, sc[j], rc[j])
				}
			}
		}
	}
}

// TestRLSObserveRunDegenerate: zero- and one-element runs.
func TestRLSObserveRunDegenerate(t *testing.T) {
	a := NewRLS(1, 1.0)
	b := NewRLS(1, 1.0)
	a.ObserveRun([]float64{1}, nil)
	if a.N() != 0 {
		t.Error("empty run counted observations")
	}
	a.ObserveRun([]float64{1}, []float64{2})
	b.Observe([]float64{1}, 2)
	if a.N() != b.N() || a.Predict([]float64{1}) != b.Predict([]float64{1}) {
		t.Error("single-element run does not match Observe exactly")
	}
}

func TestRLSSeedCoefficients(t *testing.T) {
	rls := NewRLS(1, 1.0)
	rls.SetCoef([]float64{5, 2})
	if got := rls.Predict([]float64{3}); got != 11 {
		t.Errorf("seeded predict = %v, want 11", got)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) is the identity.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.7} {
		lhs := regIncBeta(2, 3, x)
		rhs := 1 - regIncBeta(3, 2, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry violated at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestTDistSF(t *testing.T) {
	// For large df, t approaches standard normal: SF(1.96) ~ 0.025.
	if got := tDistSF(1.96, 10000); math.Abs(got-0.025) > 0.001 {
		t.Errorf("tDistSF(1.96, 1e4) = %v", got)
	}
	// t(1) is Cauchy: SF(1) = 0.25.
	if got := tDistSF(1, 1); math.Abs(got-0.25) > 0.001 {
		t.Errorf("tDistSF(1,1) = %v", got)
	}
}

func TestGenBufferDeterministic(t *testing.T) {
	a := GenBuffer(TypeFloat, Gamma, 4096, 42)
	b := GenBuffer(TypeFloat, Gamma, 4096, 42)
	if len(a) != 4096 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GenBuffer not deterministic")
		}
	}
	c := GenBuffer(TypeFloat, Gamma, 4096, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical buffers")
	}
}

func TestGenBufferTypesClassifiable(t *testing.T) {
	// The generator and classifier must agree: generated int/float data,
	// sampled back out, should classify to the generating distribution
	// most of the time.
	ok := 0
	total := 0
	for _, dt := range []DataType{TypeInt, TypeFloat} {
		for _, d := range AllDists() {
			buf := GenBuffer(dt, d, 1<<16, int64(100+int(dt)*10+int(d)))
			xs := SampleFloats(buf, dt, 4096)
			total++
			if ClassifyDist(xs) == d {
				ok++
			}
		}
	}
	if ok*10 < total*6 {
		t.Errorf("classifier agreed on %d/%d generated buffers", ok, total)
	}
}

func TestGenBufferExactLength(t *testing.T) {
	f := func(n uint16) bool {
		buf := GenBuffer(TypeInt, Uniform, int(n), 1)
		return len(buf) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFloatsBounded(t *testing.T) {
	buf := GenBuffer(TypeFloat, Normal, 1<<20, 7)
	xs := SampleFloats(buf, TypeFloat, 1000)
	if len(xs) > 1000+4 {
		t.Errorf("SampleFloats returned %d > max", len(xs))
	}
	if len(xs) < 500 {
		t.Errorf("SampleFloats returned too few: %d", len(xs))
	}
}

func TestTypeNames(t *testing.T) {
	for _, dt := range AllTypes() {
		back, ok := TypeByName(dt.String())
		if !ok || back != dt {
			t.Errorf("type %v round-trip failed", dt)
		}
	}
}

func BenchmarkClassifyDist(b *testing.B) {
	buf := GenBuffer(TypeFloat, Gamma, 1<<20, 9)
	xs := SampleFloats(buf, TypeFloat, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyDist(xs)
	}
}

func BenchmarkRLSObserve(b *testing.B) {
	rls := NewRLS(6, 0.99)
	x := []float64{1, 2, 3, 4, 5, 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rls.Observe(x, 10)
	}
}
