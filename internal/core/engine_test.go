package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

type fixture struct {
	st   *store.Store
	mon  *monitor.SystemMonitor
	pred *predictor.CCP
	hier tier.Hierarchy
}

func newFixture(t *testing.T, ramCap, nvmeCap, bbCap, pfsCap int64) *fixture {
	t.Helper()
	h := tier.Ares(ramCap, nvmeCap, bbCap, pfsCap)
	st, err := store.New(h, false)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		st:   st,
		mon:  monitor.New(st, 0),
		pred: predictor.New(seed.Builtin(h)),
		hier: h,
	}
}

func (f *fixture) engine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(f.pred, f.mon, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func textAttr() analyzer.Result {
	return analyzer.Result{Type: stats.TypeText, Dist: stats.Normal}
}

func floatAttr() analyzer.Result {
	return analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
}

func TestPlanSmallTaskSingleSubTask(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	sc, err := e.Plan(0, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SubTasks) != 1 {
		t.Fatalf("want 1 sub-task, got %d", len(sc.SubTasks))
	}
	st := sc.SubTasks[0]
	if st.Tier != 0 {
		t.Errorf("small task should land on RAM, got tier %d", st.Tier)
	}
	if st.Length != 1<<20 {
		t.Errorf("length %d", st.Length)
	}
	if err := sc.Validate(1<<20, f.hier.Len(), f.hier.Concurrency()); err != nil {
		t.Fatal(err)
	}
	if sc.PredTime <= 0 {
		t.Error("predicted time must be positive")
	}
}

func TestPlanUsesCompression(t *testing.T) {
	// When the fast tiers are too small, the task lands on slow media and
	// the I/O saving from compression dwarfs the cycle cost: the engine
	// must choose a codec. (On a fast, empty RAM tier "none" can win —
	// the paper's objective explicitly allows it.)
	f := newFixture(t, 4*tier.MB, 8*tier.MB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	sc, err := e.Plan(0, textAttr(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	compressed := false
	for _, st := range sc.SubTasks {
		if st.Codec != codec.None {
			compressed = true
		}
	}
	if !compressed {
		t.Error("compressible data bound for slow tiers should be compressed")
	}
}

func TestPlanSkipsCompressionOnIncompressibleData(t *testing.T) {
	// "The objective function also considers the possibility of no
	// compression": on data with ratio ~1 across the pool (uniform byte
	// noise), paying compression cycles buys nothing and the engine must
	// pick c = 0.
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	attr := analyzer.Result{Type: stats.TypeBinary, Dist: stats.Uniform}
	sc, err := e.Plan(0, attr, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SubTasks[0].Tier != 0 {
		t.Errorf("tier %d, want RAM", sc.SubTasks[0].Tier)
	}
	if sc.SubTasks[0].Codec != codec.None {
		t.Errorf("incompressible data picked codec %d", sc.SubTasks[0].Codec)
	}
}

func TestPriorityWeightsChangeSelection(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)

	eAsync := f.engine(t, Config{Weights: seed.WeightsAsync})
	scA, err := eAsync.Plan(0, textAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	eArch := f.engine(t, Config{Weights: seed.WeightsArchival})
	scR, err := eArch.Plan(0, textAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	costOf := func(id codec.ID) seed.CodecCost {
		if id == codec.None {
			return seed.CodecCost{CompressMBps: 1e9, DecompressMBps: 1e9, Ratio: 1}
		}
		c, _ := codec.ByID(id)
		cost, _ := f.pred.Predict(stats.TypeText, stats.Normal, c.Name())
		return cost
	}
	ca := costOf(scA.SubTasks[0].Codec)
	cr := costOf(scR.SubTasks[0].Codec)
	// Archival prioritizes ratio; async prioritizes compression speed.
	if cr.Ratio < ca.Ratio {
		t.Errorf("archival chose ratio %.2f < async's %.2f", cr.Ratio, ca.Ratio)
	}
	if ca.CompressMBps < cr.CompressMBps {
		t.Errorf("async chose speed %.0f < archival's %.0f", ca.CompressMBps, cr.CompressMBps)
	}
}

func TestPlanSplitsAcrossTiers(t *testing.T) {
	// RAM is far too small: the task must split, upper tier first.
	f := newFixture(t, 4*tier.MB, 64*tier.MB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	size := int64(40 << 20)
	sc, err := e.Plan(0, floatAttr(), size)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SubTasks) < 2 {
		t.Fatalf("expected a split, got %d sub-tasks", len(sc.SubTasks))
	}
	if err := sc.Validate(size, f.hier.Len(), f.hier.Concurrency()); err != nil {
		t.Fatal(err)
	}
	// Tiers strictly descend and the stored estimate fits each tier.
	statuses := f.st.Status(0)
	for _, st := range sc.SubTasks {
		if st.PredSize > statuses[st.Tier].Remaining {
			t.Errorf("sub-task predicted %d bytes > tier %d remaining %d",
				st.PredSize, st.Tier, statuses[st.Tier].Remaining)
		}
	}
}

func TestPlanDisableCompression(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableCompression: true})
	sc, err := e.Plan(0, textAttr(), 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sc.SubTasks {
		if st.Codec != codec.None {
			t.Fatalf("placement-only engine chose codec %d", st.Codec)
		}
	}
}

func TestPlanNoSpace(t *testing.T) {
	f := newFixture(t, 1*tier.MB, 1*tier.MB, 1*tier.MB, 1*tier.MB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	_, err := e.Plan(0, floatAttr(), 1<<30)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestPlanRejectsBadSize(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{})
	if _, err := e.Plan(0, textAttr(), 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := e.Plan(0, textAttr(), -5); err == nil {
		t.Error("negative size accepted")
	}
}

func TestPlanAccountsForUsedCapacity(t *testing.T) {
	f := newFixture(t, 8*tier.MB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableCompression: true})
	// Fill RAM almost completely.
	if _, err := f.st.Put(0, 0, "fill", nil, 7<<20); err != nil {
		t.Fatal(err)
	}
	sc, err := e.Plan(0, floatAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SubTasks[0].Tier == 0 && sc.SubTasks[0].PredSize > 1<<20 {
		t.Errorf("planned %d bytes into a tier with 1MB free", sc.SubTasks[0].PredSize)
	}
}

func TestMemoizationReuse(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	if _, err := e.Plan(0, textAttr(), 1<<20); err != nil {
		t.Fatal(err)
	}
	_, m1 := e.MemoStats()
	for i := 0; i < 100; i++ {
		if _, err := e.Plan(0, textAttr(), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	h2, m2 := e.MemoStats()
	if m2 != m1 {
		t.Errorf("repeated identical plans recomputed: misses %d -> %d", m1, m2)
	}
	if h2 == 0 {
		t.Error("no memo hits on repeated plans")
	}
}

func TestMemoizationDisabled(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableMemo: true})
	for i := 0; i < 10; i++ {
		if _, err := e.Plan(0, textAttr(), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.MemoStats()
	if hits != 0 {
		t.Errorf("memo disabled but %d hits", hits)
	}
	if misses == 0 {
		t.Error("no work recorded")
	}
}

func TestMemoInvalidatedByCapacityChange(t *testing.T) {
	f := newFixture(t, 8*tier.MB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableCompression: true})
	sc1, err := e.Plan(0, floatAttr(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc1.SubTasks[0].Tier != 0 {
		t.Fatalf("first plan should use RAM")
	}
	// Consume nearly all of RAM; the memoized "use RAM" decision is stale
	// and must be invalidated by the capacity fingerprint.
	if _, err := f.st.Put(0, 0, "fill", nil, 7<<20); err != nil {
		t.Fatal(err)
	}
	sc2, err := e.Plan(0, floatAttr(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	// RAM has 1MB free: the plan may still start there, but only with a
	// piece that fits; placing 4MB there means the memo went stale.
	if sc2.SubTasks[0].Tier == 0 && sc2.SubTasks[0].PredSize > 1<<20 {
		t.Errorf("stale memo reused after capacity change: planned %d bytes into 1MB free", sc2.SubTasks[0].PredSize)
	}
	if len(sc2.SubTasks) < 2 {
		t.Errorf("4MB task with 1MB of RAM free should split, got %d sub-tasks", len(sc2.SubTasks))
	}
}

func TestSetWeightsInvalidatesPlans(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsAsync})
	sc1, _ := e.Plan(0, textAttr(), 16<<20)
	e.SetWeights(seed.WeightsArchival)
	sc2, _ := e.Plan(0, textAttr(), 16<<20)
	if sc1.SubTasks[0].Codec == sc2.SubTasks[0].Codec {
		t.Log("note: same codec under both priorities (legal but unusual)")
	}
	w := e.Weights()
	if w.Ratio != 1 {
		t.Errorf("weights not applied: %+v", w)
	}
}

func TestRestrictedCodecPool(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, Codecs: []string{"lz4"}})
	sc, err := e.Plan(0, textAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sc.SubTasks {
		if st.Codec != codec.None && st.Codec != codec.LZ4 {
			t.Errorf("codec %d outside restricted pool", st.Codec)
		}
	}
	if _, err := New(f.pred, f.mon, Config{Codecs: []string{"zstd"}}); err == nil {
		t.Error("unknown codec name accepted")
	}
}

func TestSchemaValidateCatchesViolations(t *testing.T) {
	good := Schema{SubTasks: []SubTask{
		{Offset: 0, Length: 8192, Tier: 0, Codec: codec.LZ4},
		{Offset: 8192, Length: 100, Tier: 1, Codec: codec.None},
	}}
	if err := good.Validate(8292, 4, 100); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Schema
		size int64
	}{
		{"gap", Schema{SubTasks: []SubTask{{Offset: 4096, Length: 4096, Tier: 0}}}, 4096},
		{"unaligned-mid", Schema{SubTasks: []SubTask{
			{Offset: 0, Length: 100, Tier: 0}, {Offset: 100, Length: 4096, Tier: 1}}}, 4196},
		{"tier-order", Schema{SubTasks: []SubTask{
			{Offset: 0, Length: 4096, Tier: 1}, {Offset: 4096, Length: 10, Tier: 0}}}, 4106},
		{"coverage", Schema{SubTasks: []SubTask{{Offset: 0, Length: 4096, Tier: 0}}}, 9999},
		{"zero-length", Schema{SubTasks: []SubTask{{Offset: 0, Length: 0, Tier: 0}}}, 0},
	}
	for _, c := range cases {
		if err := c.s.Validate(c.size, 4, 100); err == nil {
			t.Errorf("%s: violation not caught", c.name)
		}
	}
	// Constraint 3: more sub-tasks than tiers.
	if err := good.Validate(8292, 1, 100); err == nil {
		t.Error("tier-count violation not caught")
	}
	// Constraint 2: concurrency.
	if err := good.Validate(8292, 4, 1); err == nil {
		t.Error("concurrency violation not caught")
	}
}

func TestPlanPropertyRandomSizes(t *testing.T) {
	f := newFixture(t, 16*tier.MB, 64*tier.MB, 256*tier.MB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	rng := rand.New(rand.NewSource(77))
	attrs := []analyzer.Result{textAttr(), floatAttr(),
		{Type: stats.TypeInt, Dist: stats.Uniform},
		{Type: stats.TypeBinary, Dist: stats.Exponential}}
	for trial := 0; trial < 200; trial++ {
		size := int64(rng.Intn(200<<20) + 1)
		attr := attrs[rng.Intn(len(attrs))]
		sc, err := e.Plan(0, attr, size)
		if err != nil {
			t.Fatalf("trial %d size %d: %v", trial, size, err)
		}
		if err := sc.Validate(size, f.hier.Len(), f.hier.Concurrency()); err != nil {
			t.Fatalf("trial %d size %d: %v", trial, size, err)
		}
	}
}

func TestPlanHeavyCompressionOnFasterTier(t *testing.T) {
	// The paper's core intuition: "for the same overall time budget, one
	// could apply heavier compression on RAM than on NVMe SSD (as the
	// medium is faster)". Verify the engine's cost model reflects it:
	// the chosen codec ratio on the RAM placement is >= the ratio it
	// picks when only the PFS is available.
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	stFull, _ := store.New(h, false)
	pred := predictor.New(seed.Builtin(h))

	eAll, _ := New(pred, monitor.New(stFull, 0), Config{Weights: seed.WeightsEqual})
	scRAM, err := eAll.Plan(0, textAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}

	pfsOnly := tier.PFSOnly(tier.TB)
	stPFS, _ := store.New(pfsOnly, false)
	ePFS, _ := New(predictor.New(seed.Builtin(pfsOnly)), monitor.New(stPFS, 0), Config{Weights: seed.WeightsEqual})
	scPFS, err := ePFS.Plan(0, textAttr(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	ratioOf := func(sc Schema, p *predictor.CCP) float64 {
		id := sc.SubTasks[0].Codec
		if id == codec.None {
			return 1
		}
		c, _ := codec.ByID(id)
		cost, _ := p.Predict(stats.TypeText, stats.Normal, c.Name())
		return cost.Ratio
	}
	rRAM := ratioOf(scRAM, pred)
	rPFS := ratioOf(scPFS, predictor.New(seed.Builtin(pfsOnly)))
	// On a slow PFS, heavier compression pays off; on fast RAM, light
	// codecs win. The PFS choice should compress at least as hard.
	if rPFS < rRAM {
		t.Errorf("PFS codec ratio %.2f < RAM codec ratio %.2f; expected heavier compression on slower tier", rPFS, rRAM)
	}
}

func BenchmarkPlanMemoized(b *testing.B) {
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	st, _ := store.New(h, false)
	e, _ := New(predictor.New(seed.Builtin(h)), monitor.New(st, 1e9), Config{Weights: seed.WeightsEqual})
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(0, attr, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanUnmemoized(b *testing.B) {
	h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
	st, _ := store.New(h, false)
	e, _ := New(predictor.New(seed.Builtin(h)), monitor.New(st, 1e9), Config{Weights: seed.WeightsEqual, DisableMemo: true})
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(0, attr, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlanCacheHits(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	for i := 0; i < 20; i++ {
		if _, err := e.Plan(0, textAttr(), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.PlanCacheStats()
	if hits == 0 {
		t.Error("repeated identical plans produced no plan-cache hits")
	}
	if misses == 0 {
		t.Error("first plan must be a plan-cache miss")
	}
	// A cache hit must replay the memo hits of the original
	// reconstruction, keeping MemoStats equivalent to the uncached path.
	mh, _ := e.MemoStats()
	if mh == 0 {
		t.Error("cache hits did not replay memo-hit accounting")
	}
}

func TestPlanCacheDeterminism(t *testing.T) {
	// The cache must be invisible: byte-identical schemas with it on or
	// off, across repeats, varied keys, and a weight change mid-stream.
	mk := func(disable bool) *Engine {
		f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
		return f.engine(t, Config{Weights: seed.WeightsEqual, DisablePlanCache: disable})
	}
	on, off := mk(false), mk(true)
	type step struct {
		attr analyzer.Result
		size int64
	}
	var steps []step
	for i := 0; i < 40; i++ {
		a := textAttr()
		if i%3 == 1 {
			a = floatAttr()
		}
		steps = append(steps, step{a, 1 << (18 + uint(i%6))})
	}
	for i, s := range steps {
		if i == 25 {
			on.SetWeights(seed.WeightsArchival)
			off.SetWeights(seed.WeightsArchival)
		}
		a, err1 := on.Plan(0, s.attr, s.size)
		b, err2 := off.Plan(0, s.attr, s.size)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: error divergence %v vs %v", i, err1, err2)
		}
		if !reflect.DeepEqual(a.SubTasks, b.SubTasks) || a.PredTime != b.PredTime {
			t.Fatalf("step %d: cached schema differs from uncached:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	if h, _ := on.PlanCacheStats(); h == 0 {
		t.Error("determinism run exercised no cache hits")
	}
	if h, m := off.PlanCacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache recorded traffic: %d hits %d misses", h, m)
	}
}

func TestPlanCacheInvalidatedBySetWeights(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsAsync})
	e.Plan(0, textAttr(), 16<<20)
	e.Plan(0, textAttr(), 16<<20)
	hits1, _ := e.PlanCacheStats()
	if hits1 == 0 {
		t.Fatal("no hit before weight change")
	}
	e.SetWeights(seed.WeightsArchival)
	e.Plan(0, textAttr(), 16<<20)
	hits2, misses := e.PlanCacheStats()
	if hits2 != hits1 {
		t.Errorf("plan after SetWeights served from stale cache (hits %d -> %d)", hits1, hits2)
	}
	if misses < 2 {
		t.Errorf("expected a fresh miss after SetWeights, misses=%d", misses)
	}
}

func TestPlanCacheInvalidatedByCapacityDrift(t *testing.T) {
	f := newFixture(t, 8*tier.MB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableCompression: true})
	// Warm the cache with a plan that places 4MB in RAM.
	for i := 0; i < 3; i++ {
		if _, err := e.Plan(0, floatAttr(), 4<<20); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.st.Put(0, 0, "fill", nil, 7<<20); err != nil {
		t.Fatal(err)
	}
	sc, err := e.Plan(0, floatAttr(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SubTasks[0].Tier == 0 && sc.SubTasks[0].PredSize > 1<<20 {
		t.Errorf("stale cached plan served after capacity drift: %d bytes into 1MB free", sc.SubTasks[0].PredSize)
	}
}

func TestPlanCacheBypassedWithMemoDisabled(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual, DisableMemo: true})
	for i := 0; i < 5; i++ {
		e.Plan(0, textAttr(), 1<<20)
	}
	if h, m := e.PlanCacheStats(); h != 0 || m != 0 {
		t.Errorf("plan cache active under DisableMemo: %d hits %d misses", h, m)
	}
}
