package core

import (
	"testing"

	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

// costHier is a fast-but-expensive tier over a slow-but-cheap cloud
// tier: the shape the dollar term of the objective exists to arbitrate.
func costHier() tier.Hierarchy {
	return tier.Hierarchy{Tiers: []tier.Spec{
		{Name: "ram", Capacity: tier.GB, Latency: 0, Bandwidth: 10e9, Lanes: 2,
			CostPerGBMonth: 1000},
		{Name: "cloud", Capacity: tier.TB, Latency: 5e-3, Bandwidth: 1e9, Lanes: 4,
			Backend: tier.BackendCloud, CostPerGBMonth: 0.01, EgressCostPerGB: 0.01},
	}}
}

func planTiers(t *testing.T, w seed.Weights) map[int]int64 {
	t.Helper()
	h := costHier()
	st, err := store.New(h, false)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(predictor.New(seed.Builtin(h)), monitor.New(st, 0), Config{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := e.Plan(0, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	bytesOn := map[int]int64{}
	for _, sub := range sc.SubTasks {
		bytesOn[sub.Tier] += sub.Length
	}
	return bytesOn
}

// TestCostWeightShiftsPlacement is the acceptance check for the dollar
// objective: with zero Cost weight the planner is purely time-driven and
// lands on the fast tier; with the weight dominated by Cost the same
// request lands on the cheap tier instead.
func TestCostWeightShiftsPlacement(t *testing.T) {
	timeOnly := planTiers(t, seed.WeightsEqual)
	if timeOnly[0] == 0 || timeOnly[1] != 0 {
		t.Fatalf("time-only objective placed bytes as %v, want all on fast tier 0", timeOnly)
	}
	costHeavy := planTiers(t, seed.Weights{Compression: 0.05, Decompression: 0.05, Ratio: 0.05, Cost: 0.85})
	if costHeavy[1] == 0 || costHeavy[0] != 0 {
		t.Fatalf("cost-heavy objective placed bytes as %v, want all on cheap tier 1", costHeavy)
	}
}
