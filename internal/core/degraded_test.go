package core

import (
	"errors"
	"testing"

	"hcompress/internal/seed"
	"hcompress/internal/tier"
)

// Degraded-mode planning: offline tiers must be masked out of the Place
// DP, and the availability flip must invalidate both the memo table and
// the whole-schema plan cache so a cached schema never targets a dead
// tier.

func takeOffline(f *fixture, tierIdx int) {
	for i := 0; i < 3; i++ {
		f.mon.Observe(0, tierIdx, errors.New("injected"))
	}
}

func TestPlanMasksOfflineTier(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})

	// Warm plan: a small task lands on RAM.
	sc, err := e.Plan(0, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SubTasks[0].Tier != 0 {
		t.Fatalf("warm plan should target RAM, got tier %d", sc.SubTasks[0].Tier)
	}

	// RAM dies. The same planning inputs must now avoid tier 0 — even
	// though the plan cache served the previous schema (the epoch bump
	// from the stamp change invalidates it).
	takeOffline(f, 0)
	sc2, err := e.Plan(0, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sc2.SubTasks {
		if st.Tier == 0 {
			t.Fatalf("schema targets offline tier: %+v", sc2.SubTasks)
		}
	}
}

func TestPlanFailsWhenAllTiersOffline(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	for ti := 0; ti < f.hier.Len(); ti++ {
		takeOffline(f, ti)
	}
	if _, err := e.Plan(0, textAttr(), 1<<20); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace with every tier offline, got %v", err)
	}
}

func TestRecoveredTierIsReplannedOnto(t *testing.T) {
	f := newFixture(t, tier.GB, tier.GB, tier.GB, tier.TB)
	e := f.engine(t, Config{Weights: seed.WeightsEqual})
	takeOffline(f, 0)
	sc, err := e.Plan(0, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SubTasks[0].Tier == 0 {
		t.Fatal("plan targeted offline RAM")
	}
	// A success heals the tier; planning must use it again.
	f.mon.Observe(1, 0, nil)
	sc2, err := e.Plan(1, textAttr(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.SubTasks[0].Tier != 0 {
		t.Fatalf("recovered RAM should be planned onto again, got tier %d", sc2.SubTasks[0].Tier)
	}
}
