// Package core implements the paper's primary contribution: the
// Hierarchical Compression and Data Placement (HCDP) engine of §IV-F.
//
// For each incoming I/O task the engine jointly selects, per 4096-byte
// aligned sub-task, a target tier and a compression library, minimizing
// the weighted cost of equations 3-4:
//
//	t(i,l)   = I/O time of task i on tier l, uncompressed
//	t(i,l,c) = wc*tc + t(i,l) - wr * t(i,l)*(rc-1)/rc + wd*td
//
// through the Match/Place recursion of equations 1-2, subject to the
// constraints of Table I:
//
//  1. Size(p) mod 4096 = 0          (alignment, memoization reuse)
//  2. Length(P) <= Concurrency(L)   (lane bound)
//  3. Length(P) <= Length(L)        (at most one sub-task per tier)
//  4. rc >= 1                       (compression must not expand)
//  5. Size(p) <= Size(l)            (sub-task fits its tier)
//
// The DP is memoized on (remaining size, tier); because sizes are
// alignment-quantized and the engine additionally reuses its memo table
// across tasks while the System Monitor snapshot is stable, the amortized
// planning cost is practically O(1) — the property Fig. 4(a) measures.
package core

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/telemetry"
)

// Align is the sub-task alignment from constraint 1: the RAM page size and
// the block size of modern NVMe devices.
const Align = 4096

// ErrNoSpace is returned when a task cannot be placed anywhere in the
// hierarchy even uncompressed.
var ErrNoSpace = errors.New("hcdp: no tier can hold the task")

// SubTask is one (byte range, tier, codec) assignment within a schema.
type SubTask struct {
	Offset int64    // offset of this piece within the original task
	Length int64    // original (uncompressed) length of the piece
	Tier   int      // destination tier index (0 = highest)
	Codec  codec.ID // selected compression library (None allowed)
	// PredSize is the engine's estimate of the compressed size that will
	// occupy the tier (alignment-rounded).
	PredSize int64
	// PredTime is the modeled duration of this sub-task (equation 3/4).
	PredTime float64
}

// Schema is the engine's output: an ordered set of sub-tasks covering the
// task exactly (§IV-A: "a schema consists of P sub-tasks").
type Schema struct {
	SubTasks []SubTask
	// PredTime is the total modeled task duration.
	PredTime float64
}

// Validate checks the Table I constraints against a hierarchy of nTiers
// tiers with the given total lane concurrency.
func (s Schema) Validate(taskSize int64, nTiers, concurrency int) error {
	if len(s.SubTasks) > nTiers {
		return fmt.Errorf("hcdp: %d sub-tasks exceed %d tiers (constraint 3)", len(s.SubTasks), nTiers)
	}
	if len(s.SubTasks) > concurrency {
		return fmt.Errorf("hcdp: %d sub-tasks exceed concurrency %d (constraint 2)", len(s.SubTasks), concurrency)
	}
	var covered int64
	lastTier := -1
	for k, st := range s.SubTasks {
		if st.Offset != covered {
			return fmt.Errorf("hcdp: sub-task %d offset %d, want %d", k, st.Offset, covered)
		}
		if st.Length <= 0 {
			return fmt.Errorf("hcdp: sub-task %d has non-positive length", k)
		}
		if k < len(s.SubTasks)-1 && st.Length%Align != 0 {
			return fmt.Errorf("hcdp: non-final sub-task %d length %d unaligned (constraint 1)", k, st.Length)
		}
		if st.Tier <= lastTier && k > 0 {
			return fmt.Errorf("hcdp: sub-task tiers not strictly descending")
		}
		lastTier = st.Tier
		covered += st.Length
	}
	if covered != taskSize {
		return fmt.Errorf("hcdp: schema covers %d bytes, task is %d", covered, taskSize)
	}
	return nil
}

// Config tunes the engine; zero value gives the paper's defaults.
type Config struct {
	// Weights are the application's compression priorities (Table II).
	Weights seed.Weights
	// DisableMemo turns off DP memoization (ablation).
	DisableMemo bool
	// DisableCapacityAware turns off the displacement term (ablation):
	// the opportunity cost of occupying fast-tier space. The paper's
	// objective seeks the global minimum "when most of the data fits in
	// higher tiers"; a purely per-task cost cannot see that placing large
	// uncompressed payloads high displaces future data to slow media, so
	// the engine charges each placement the service-time difference its
	// footprint will eventually cost at the bottom of the hierarchy,
	// weighted by the ratio priority. This is what makes the engine
	// "apply heavier compression on RAM than on NVMe SSD".
	DisableCapacityAware bool
	// DisableCompression restricts the engine to placement only
	// (the MTNC baseline uses this).
	DisableCompression bool
	// LoadAware adds the tier's queue backlog to the modeled I/O time.
	LoadAware bool
	// DisablePlanCache turns off the whole-schema plan cache that sits
	// in front of the DP memo (ablation / debugging). The cache is also
	// bypassed automatically when it cannot be correct: under
	// DisableMemo (plans are recomputed each call by design) and under
	// LoadAware (the cost depends on continuously-varying backlog that
	// no fingerprint captures).
	DisablePlanCache bool
	// Codecs restricts selection to these library names (default: all
	// registered codecs).
	Codecs []string
}

// Engine is the HCDP engine. It is safe for concurrent callers: the memo
// table and capacity fingerprint are guarded by an RWMutex so planners
// whose answer is already memoized share a read lock (the common steady
// state), and only a planner that must run the Match/Place recursion
// takes the write lock. SetWeights is atomic with respect to Plan and
// invalidates the memo through a generation counter rather than by
// clearing the table inline.
type Engine struct {
	pred  *predictor.CCP
	mon   *monitor.SystemMonitor
	cfg   Config        // immutable after New
	pool  []codec.Codec // candidate codecs, None excluded; immutable
	price []float64     // per-tier displacement price (sec/byte); immutable
	dollar []float64    // per-tier $ price ($/byte, storage+egress); immutable

	mu        sync.RWMutex // guards w, memo, memoStamp, memoGen, memoEpoch
	w         seed.Weights
	memo      map[memoKey]planVal
	memoStamp []int64 // bucketed remaining-capacity fingerprint
	memoGen   int64   // generation the memo was built under
	memoEpoch int64   // bumped every time the memo table is rebuilt

	// Plan cache: finished schemas keyed by the analysis fingerprint
	// and task size, valid for exactly one memo epoch (see planCache).
	pc planCache

	gen         atomic.Int64 // bumped whenever weights change
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	plansServed atomic.Int64

	tm engineMetrics // nil instruments when telemetry is off
}

// planCacheSize bounds the schema cache; plans are keyed by (type, dist,
// size), so steady-state workloads touch a handful of entries.
const planCacheSize = 128

// planKey is the analysis fingerprint a schema depends on: of the
// analyzer's verdict only Type and Dist feed the cost model (via the
// CCP), and the task size selects the DP root. Capacity fingerprint and
// weight generation are carried by the memo epoch, not the key.
type planKey struct {
	typ  stats.DataType
	dist stats.Dist
	size int64
}

type planEntry struct {
	key    planKey
	epoch  int64  // memo epoch the schema was reconstructed under
	schema Schema // shared, read-only
	hits   int64  // memo entries the original reconstruction consumed
}

// planCache is a small LRU of finished schemas in front of the DP memo.
// An entry is valid only while the memo table it was reconstructed from
// is still live (same epoch): the epoch bumps whenever the memo is
// rebuilt — weight-generation change, capacity-bucket drift — so a hit
// returns byte-for-byte the schema the memo path would have produced.
// It has its own lock (never held together with Engine.mu ordering
// concerns: callers never take Engine.mu while holding it).
type planCache struct {
	mu  sync.Mutex
	lru list.List // of *planEntry, front = most recent
	idx map[planKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

func (p *planCache) get(key planKey, epoch int64) (Schema, int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.idx[key]
	if !ok {
		return Schema{}, 0, false
	}
	e := el.Value.(*planEntry)
	if e.epoch != epoch {
		// Stale epoch: the memo was rebuilt since this schema was
		// cached. Drop it eagerly.
		p.lru.Remove(el)
		delete(p.idx, key)
		return Schema{}, 0, false
	}
	p.lru.MoveToFront(el)
	return e.schema, e.hits, true
}

func (p *planCache) put(key planKey, epoch int64, schema Schema, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idx == nil {
		p.idx = make(map[planKey]*list.Element, planCacheSize)
	}
	if el, ok := p.idx[key]; ok {
		e := el.Value.(*planEntry)
		e.epoch, e.schema, e.hits = epoch, schema, hits
		p.lru.MoveToFront(el)
		return
	}
	for p.lru.Len() >= planCacheSize {
		back := p.lru.Back()
		delete(p.idx, back.Value.(*planEntry).key)
		p.lru.Remove(back)
	}
	p.idx[key] = p.lru.PushFront(&planEntry{key: key, epoch: epoch, schema: schema, hits: hits})
}

// engineMetrics are the HCDP engine's instruments; all fields nil when
// telemetry is off (instrument methods no-op on nil).
type engineMetrics struct {
	memoHits      *telemetry.Counter
	memoMisses    *telemetry.Counter
	plans         *telemetry.Counter
	weightBumps   *telemetry.Counter
	planDepth     *telemetry.Histogram
	planCacheHits *telemetry.Counter
	planCacheMiss *telemetry.Counter
}

// SetTelemetry registers the engine's instruments on reg: memo
// hit/miss, plans served, weight-generation bumps, and the plan-depth
// histogram (sub-tasks per schema). Must be called before the engine is
// shared between goroutines; a nil registry leaves telemetry off.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	e.tm = engineMetrics{
		memoHits:      reg.Counter("hc_hcdp_memo_hits_total", "DP memo entries reused"),
		memoMisses:    reg.Counter("hc_hcdp_memo_misses_total", "DP sub-problems solved from scratch"),
		plans:         reg.Counter("hc_hcdp_plans_total", "schemas planned"),
		weightBumps:   reg.Counter("hc_hcdp_weight_generation_total", "runtime priority-weight changes"),
		planDepth:     reg.Histogram("hc_hcdp_plan_subtasks", "sub-tasks per planned schema", telemetry.DepthBuckets),
		planCacheHits: reg.Counter("hc_hcdp_plan_cache_hits_total", "whole schemas served from the plan cache"),
		planCacheMiss: reg.Counter("hc_hcdp_plan_cache_misses_total", "plans that had to run reconstruction or the DP"),
	}
}

type memoKey struct {
	size int64
	tier int
}

type planVal struct {
	time     float64
	codec    codec.ID
	predSize int64
	useLen   int64 // bytes of the remaining task placed on this tier
	skip     bool  // tier skipped entirely
}

// New creates an engine over a predictor and system monitor.
func New(pred *predictor.CCP, mon *monitor.SystemMonitor, cfg Config) (*Engine, error) {
	e := &Engine{pred: pred, mon: mon, cfg: cfg, w: cfg.Weights.Normalize()}
	if cfg.DisableCompression {
		// Placement-only mode: no codec candidates.
	} else if len(cfg.Codecs) == 0 {
		for _, c := range codec.All() {
			if c.ID() != codec.None {
				e.pool = append(e.pool, c)
			}
		}
	} else {
		for _, name := range cfg.Codecs {
			c, err := codec.ByName(name)
			if err != nil {
				return nil, err
			}
			if c.ID() != codec.None {
				e.pool = append(e.pool, c)
			}
		}
	}
	e.memo = make(map[memoKey]planVal)

	// Displacement prices are a property of the hierarchy alone: the
	// per-byte service-time gap between each tier and the bottom tier.
	hier := mon.Store().Hierarchy()
	e.price = make([]float64, hier.Len())
	last := hier.Tiers[hier.Len()-1]
	lastPerByte := 1 / (last.Bandwidth / float64(maxInt(1, last.Lanes)))
	for i, spec := range hier.Tiers {
		perByte := 1 / (spec.Bandwidth / float64(maxInt(1, spec.Lanes)))
		p := lastPerByte - perByte
		if p < 0 || cfg.DisableCapacityAware {
			p = 0
		}
		e.price[i] = p
	}
	// Dollar prices are likewise static per hierarchy: what one byte
	// placed on tier l costs in storage (one month resident) plus one
	// eventual egress read. They enter the objective only through the
	// Cost weight, so the default zero weight keeps plans bit-identical
	// to the purely time-based DP.
	e.dollar = make([]float64, hier.Len())
	for i, spec := range hier.Tiers {
		e.dollar[i] = (spec.CostPerGBMonth + spec.EgressCostPerGB) / float64(int64(1)<<30)
	}
	return e, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SetWeights changes the priority weights at runtime (§IV-F2: "more
// advanced users can leverage the HCompress API to dynamically change
// these weights at runtime"). The swap is atomic with respect to
// concurrent Plan calls: in-flight planners finish against the old
// weights, and the generation bump invalidates every memoized decision
// so later plans cannot mix the two weightings.
func (e *Engine) SetWeights(w seed.Weights) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.w = w.Normalize()
	e.gen.Add(1)
	e.tm.weightBumps.Inc()
}

// Weights returns the active (normalized) weights.
func (e *Engine) Weights() seed.Weights {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.w
}

// Generation reports the weight-change generation counter; the memo table
// is only valid for the generation it was built under.
func (e *Engine) Generation() int64 { return e.gen.Load() }

// MemoStats reports DP cache behaviour (hits, misses).
func (e *Engine) MemoStats() (hits, misses int64) {
	return e.memoHits.Load(), e.memoMisses.Load()
}

// PlanCacheStats reports whole-schema cache behaviour (hits, misses).
// Both stay zero when the cache is disabled or bypassed.
func (e *Engine) PlanCacheStats() (hits, misses int64) {
	return e.pc.hits.Load(), e.pc.misses.Load()
}

// planCacheUsable reports whether the plan cache can be consulted at
// all under this configuration (see Config.DisablePlanCache).
func (e *Engine) planCacheUsable() bool {
	return !e.cfg.DisableMemo && !e.cfg.DisablePlanCache && !e.cfg.LoadAware
}

// alignUp rounds n up to the alignment quantum.
func alignUp(n int64) int64 {
	if n <= 0 {
		return Align
	}
	return (n + Align - 1) / Align * Align
}

func alignDown(n int64) int64 { return n / Align * Align }

// Plan produces the compression + placement schema for a task of the given
// size and analyzed attributes at virtual time now. It is safe for
// concurrent callers: a task whose schema is already in the plan cache is
// served without touching the DP at all; when the full decision chain for
// this size is memoized under the current capacity fingerprint and weight
// generation, the schema is reconstructed under the shared read lock with
// no exclusive section; otherwise the planner takes the write lock and
// runs the Match/Place recursion.
//
// The returned Schema may be shared with other callers (the plan cache
// hands out one value); callers must treat it as read-only.
func (e *Engine) Plan(now float64, attr analyzer.Result, size int64) (Schema, error) {
	if size <= 0 {
		return Schema{}, fmt.Errorf("hcdp: non-positive task size %d", size)
	}
	statuses := e.mon.Status(now)
	if len(statuses) == 0 {
		return Schema{}, errors.New("hcdp: empty hierarchy")
	}
	// The DP plans in aligned size quanta; the true size is restored on
	// the final sub-task.
	asize := alignUp(size)
	useCache := e.planCacheUsable()
	key := planKey{typ: attr.Type, dist: attr.Dist, size: size}
	var stampArr [8]int64 // stack space for the common hierarchy depths
	stamp := e.capacityStampInto(stampArr[:0], statuses)

	if !e.cfg.DisableMemo {
		e.mu.RLock()
		if e.memoGen == e.gen.Load() && stampEqual(stamp, e.memoStamp) {
			epoch := e.memoEpoch
			if useCache {
				if schema, hits, ok := e.pc.get(key, epoch); ok {
					e.mu.RUnlock()
					e.pc.hits.Add(1)
					e.tm.planCacheHits.Inc()
					e.memoHits.Add(hits)
					e.plansServed.Add(1)
					e.tm.memoHits.Add(hits)
					e.tm.plans.Inc()
					e.tm.planDepth.Observe(float64(len(schema.SubTasks)))
					return schema, nil
				}
			}
			if schema, hits, ok := e.reconstructLocked(size, asize, len(statuses)); ok {
				e.mu.RUnlock()
				if useCache {
					e.pc.misses.Add(1)
					e.tm.planCacheMiss.Inc()
					e.pc.put(key, epoch, schema, hits)
				}
				e.memoHits.Add(hits)
				e.plansServed.Add(1)
				e.tm.memoHits.Add(hits)
				e.tm.plans.Inc()
				e.tm.planDepth.Observe(float64(len(schema.SubTasks)))
				return schema, nil
			}
		}
		e.mu.RUnlock()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshMemoStamp(statuses)
	e.plansServed.Add(1)
	if _, err := e.match(asize, 0, attr, statuses); err != nil {
		return Schema{}, err
	}
	schema, hits, ok := e.reconstructLocked(size, asize, len(statuses))
	if !ok {
		return Schema{}, errors.New("hcdp: internal: missing memo entry during reconstruction")
	}
	if useCache {
		e.pc.misses.Add(1)
		e.tm.planCacheMiss.Inc()
		e.pc.put(key, e.memoEpoch, schema, hits)
	}
	e.tm.plans.Inc()
	e.tm.planDepth.Observe(float64(len(schema.SubTasks)))
	return schema, nil
}

// reconstructLocked replays the memoized decision chain for a task of the
// given (true, aligned) size into a schema. It returns ok=false when any
// link of the chain is absent. Callers must hold e.mu (read or write);
// hits reports how many memo entries the walk consumed.
func (e *Engine) reconstructLocked(size, asize int64, nTiers int) (Schema, int64, bool) {
	var schema Schema
	var hits int64
	remaining := asize
	var offset int64
	l := 0
	for remaining > 0 {
		if l >= nTiers {
			return Schema{}, hits, false
		}
		v, ok := e.memo[memoKey{remaining, l}]
		if !ok {
			return Schema{}, hits, false
		}
		hits++
		if v.skip {
			l++
			continue
		}
		length := v.useLen
		origLen := length
		if offset+length >= asize { // final piece: restore true size
			origLen = size - offset
		}
		schema.SubTasks = append(schema.SubTasks, SubTask{
			Offset:   offset,
			Length:   origLen,
			Tier:     l,
			Codec:    v.codec,
			PredSize: v.predSize,
			PredTime: v.time,
		})
		schema.PredTime += v.time
		offset += origLen
		remaining -= length
		l++
	}
	return schema, hits, true
}

// match implements Match(i, l, c) / Place(i, l, c) jointly: the best cost
// of storing size bytes using tiers l.. (each at most once). It memoizes
// on (size, l) and records the winning decision for reconstruction.
// Callers must hold e.mu exclusively.
func (e *Engine) match(size int64, l int, attr analyzer.Result, statuses []store.TierStatus) (float64, error) {
	if size == 0 {
		return 0, nil
	}
	if l >= len(statuses) {
		return math.Inf(1), ErrNoSpace
	}
	key := memoKey{size, l}
	if !e.cfg.DisableMemo {
		if v, ok := e.memo[key]; ok {
			e.memoHits.Add(1)
			e.tm.memoHits.Add(1)
			return v.time, nil
		}
	}
	e.memoMisses.Add(1)
	e.tm.memoMisses.Add(1)

	best := planVal{time: math.Inf(1)}

	// Choice A: skip this tier entirely — Match(i, l+1, c).
	if sub, err := e.match(size, l+1, attr, statuses); err == nil && sub < best.time {
		best = planVal{time: sub, skip: true}
	}

	// Degraded mode: an offline tier admits only the skip choice, so no
	// schema — fresh or replayed from the plan cache — ever targets it.
	if !statuses[l].Available {
		if math.IsInf(best.time, 1) {
			return best.time, ErrNoSpace
		}
		e.memo[key] = best
		return best.time, nil
	}

	remaining := alignDown(statuses[l].Remaining)

	// Choice B: "no compression" placement (c = 0), whole or split.
	e.consider(&best, size, l, codec.None, 1, e.uncompressedTime(size, l, statuses), remaining, attr, statuses)

	// Choice C: each codec, whole or split — Place(i, l, c) with the
	// cost function of equation 4.
	for _, c := range e.pool {
		cost, ok := e.pred.Predict(attr.Type, attr.Dist, c.Name())
		if !ok {
			continue
		}
		rc := cost.Ratio
		if rc < 1 {
			continue // constraint 4
		}
		e.consider(&best, size, l, c.ID(), rc, e.compressedTime(size, l, cost, statuses), remaining, attr, statuses)
	}

	if math.IsInf(best.time, 1) {
		return best.time, ErrNoSpace
	}
	if !e.cfg.DisableMemo {
		e.memo[key] = best
	} else {
		// Reconstruction still needs the decision trail.
		e.memo[key] = best
	}
	return best.time, nil
}

// consider evaluates placing (part of) size bytes on tier l with the given
// codec/ratio, whose full-task time is fullTime, updating best in place.
func (e *Engine) consider(best *planVal, size int64, l int, id codec.ID, rc, fullTime float64, remaining int64, attr analyzer.Result, statuses []store.TierStatus) {
	compSize := alignUp(int64(math.Ceil(float64(size) / rc)))
	// Displacement: occupying compSize bytes here will eventually push
	// that much future data down to the slowest tier (weighted by the
	// ratio priority, which expresses how much the caller values space).
	fullTime += e.w.Ratio * float64(compSize) * e.price[l]
	// Dollar cost: storage + egress pricing for the bytes placed here,
	// blended into the time objective by the Cost weight. Guarded so a
	// zero weight adds nothing to the float pipeline and existing plans
	// stay bit-identical.
	if e.w.Cost != 0 {
		fullTime += e.w.Cost * float64(compSize) * e.dollar[l]
	}
	if compSize <= remaining {
		// Whole task fits here (constraint 5 satisfied).
		if fullTime < best.time {
			*best = planVal{time: fullTime, codec: id, predSize: compSize, useLen: size}
		}
		return
	}
	// Split: the part that fits stays, the rest recurses to tier l+1
	// (equation 2). Both parts stay 4096-aligned (constraint 1).
	if remaining < Align || l+1 >= len(statuses) {
		return
	}
	origFit := alignDown(int64(float64(remaining) * rc))
	if origFit >= size {
		origFit = size - Align // fitting "almost all" still forces a split
	}
	if origFit < Align {
		return
	}
	partTime := fullTime * float64(origFit) / float64(size)
	rest, err := e.match(size-origFit, l+1, attr, statuses)
	if err != nil {
		return
	}
	total := partTime + rest
	if total < best.time {
		*best = planVal{
			time:     total,
			codec:    id,
			predSize: alignUp(int64(math.Ceil(float64(origFit) / rc))),
			useLen:   origFit,
		}
	}
}

// uncompressedTime is t(i, l) = si/bl plus latency (and queue backlog when
// load-aware).
func (e *Engine) uncompressedTime(size int64, l int, statuses []store.TierStatus) float64 {
	spec := e.mon.Store().Hierarchy().Tiers[l]
	t := spec.ServiceTime(size)
	if e.cfg.LoadAware {
		t += statuses[l].Backlog / float64(spec.Lanes)
	}
	return t
}

// compressedTime is equation 4:
//
//	t(i,l,c) = wc*tc + t(i,l) - wr * t(i,l)*(rc-1)/rc + wd*td
func (e *Engine) compressedTime(size int64, l int, cost seed.CodecCost, statuses []store.TierStatus) float64 {
	mb := float64(size) / (1 << 20)
	tc := mb / cost.CompressMBps
	td := mb / cost.DecompressMBps
	til := e.uncompressedTime(size, l, statuses)
	rc := cost.Ratio
	return e.w.Compression*tc + til - e.w.Ratio*til*(rc-1)/rc + e.w.Decompression*td
}

// capacityStamp buckets the hierarchy's remaining capacities (1/64 of
// each tier's capacity per bucket). Bucketing is what makes sub-problems
// reusable *across* tasks, turning repeated planning into table lookups;
// the slight staleness is bounded by the bucket size and corrected by the
// placement path, which re-checks true capacity.
func (e *Engine) capacityStamp(statuses []store.TierStatus) []int64 {
	return e.capacityStampInto(make([]int64, 0, len(statuses)), statuses)
}

// capacityStampInto appends the stamp to dst, letting hot callers keep
// the fingerprint on the stack.
func (e *Engine) capacityStampInto(dst []int64, statuses []store.TierStatus) []int64 {
	for _, st := range statuses {
		if !st.Available {
			// Masked tier: a marker no occupancy bucket can produce, so an
			// availability flip always changes the stamp, rebuilding the
			// memo and bumping the epoch that keys the plan cache.
			dst = append(dst, -1)
			continue
		}
		bucket := st.Capacity / 64
		if bucket == 0 {
			bucket = 1
		}
		dst = append(dst, st.Remaining/bucket)
	}
	return dst
}

func stampEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refreshMemoStamp invalidates the memo table when the hierarchy's
// remaining capacities have moved out of their buckets since the table was
// built, or when SetWeights bumped the generation counter. Callers must
// hold e.mu exclusively.
func (e *Engine) refreshMemoStamp(statuses []store.TierStatus) {
	if e.cfg.DisableMemo {
		e.memo = make(map[memoKey]planVal)
		e.memoStamp = nil
		e.memoEpoch++
		return
	}
	gen := e.gen.Load()
	stamp := e.capacityStamp(statuses)
	if e.memoGen != gen || !stampEqual(stamp, e.memoStamp) {
		e.memo = make(map[memoKey]planVal)
		e.memoStamp = stamp
		e.memoGen = gen
		// New table, new epoch: every plan-cache entry reconstructed
		// from the old table is now stale (SetWeights invalidation
		// flows through here via the generation counter).
		e.memoEpoch++
	}
}
