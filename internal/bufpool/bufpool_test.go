package bufpool

import (
	"sync"
	"testing"
)

func TestClassSizes(t *testing.T) {
	if ClassSize(0) != MinClass {
		t.Fatalf("class 0 = %d, want %d", ClassSize(0), MinClass)
	}
	if ClassSize(numClass-1) != MaxClass {
		t.Fatalf("last class = %d, want %d", ClassSize(numClass-1), MaxClass)
	}
}

func TestClassForRounding(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {MinClass - 1, 0}, {MinClass, 0},
		{MinClass + 1, 1}, {8 << 10, 1}, {(8 << 10) + 1, 2},
		{1 << 19, 7}, {(1 << 19) + 1, 8}, {MaxClass, 8},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if got := classFor(MaxClass + 1); got != -1 {
		t.Errorf("classFor(MaxClass+1) = %d, want -1", got)
	}
}

func TestGetRoundsUpCapacity(t *testing.T) {
	for _, n := range []int{1, 100, MinClass, MinClass + 1, 1<<16 + 3, MaxClass} {
		buf := Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d): len %d", n, len(buf))
		}
		want := ClassSize(classFor(n))
		if cap(buf) != want {
			t.Fatalf("Get(%d): cap %d, want class size %d", n, cap(buf), want)
		}
		Put(buf)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	_, _, outBefore, putBefore := Stats()
	buf := Get(MaxClass + 1)
	if len(buf) != MaxClass+1 {
		t.Fatalf("oversize len %d", len(buf))
	}
	_, _, outAfter, _ := Stats()
	if outAfter != outBefore+1 {
		t.Fatalf("outsize counter: %d -> %d", outBefore, outAfter)
	}
	// Putting an oversize buffer is a no-op (not pooled, not counted).
	Put(buf)
	_, _, _, putAfter := Stats()
	if putAfter != putBefore {
		t.Fatalf("oversize Put was counted: %d -> %d", putBefore, putAfter)
	}
}

func TestPutRejectsOddCapacity(t *testing.T) {
	_, _, _, putBefore := Stats()
	Put(make([]byte, 5000))            // cap not a power of two
	Put(make([]byte, 100))             // below MinClass
	Put(make([]byte, 2*MaxClass))      // above MaxClass
	Put(nil)                           // empty
	Put(make([]byte, 0, MinClass)[:0]) // zero length but exact class cap: pooled
	_, _, _, putAfter := Stats()
	if putAfter != putBefore+1 {
		t.Fatalf("puts %d -> %d, want exactly one accepted", putBefore, putAfter)
	}
}

func TestRecycleHit(t *testing.T) {
	// A Put/Get pair in the same class should be served from the pool.
	// sync.Pool may drop items under GC pressure, so retry a few times
	// before declaring the pool broken.
	const n = 3 << 10
	for attempt := 0; attempt < 10; attempt++ {
		buf := Get(n)
		Put(buf)
		hitsBefore, _, _, _ := Stats()
		again := Get(n)
		hitsAfter, _, _, _ := Stats()
		Put(again)
		if hitsAfter > hitsBefore {
			return
		}
	}
	t.Fatal("no pool hit across 10 Put/Get cycles")
}

func TestDoublePutGuard(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	buf := Get(MinClass)
	Put(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under SetDebug")
		}
	}()
	Put(buf)
}

func TestDebugGetClearsGuard(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	buf := Get(MinClass)
	Put(buf)
	// Keep getting until the pool hands the same base pointer back (it may
	// serve fresh buffers); a re-Put of the re-Got buffer must not panic.
	for i := 0; i < 64; i++ {
		b := Get(MinClass)
		Put(b)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{1 << 12, 1 << 14, 1 << 16, 9000, 1 << 20}
			for i := 0; i < 500; i++ {
				n := sizes[(seed+i)%len(sizes)]
				buf := Get(n)
				if len(buf) != n {
					t.Errorf("len %d != %d", len(buf), n)
					return
				}
				buf[0] = byte(i)
				buf[n-1] = byte(i)
				Put(buf)
			}
		}(w)
	}
	wg.Wait()
}

func TestScratchGrowRetainsCapacity(t *testing.T) {
	var s Scratch
	b := GrowBytes(&s.Comp, 100)
	if len(b) != 100 {
		t.Fatalf("len %d", len(b))
	}
	big := GrowBytes(&s.Comp, 5000)
	big[4999] = 1
	small := GrowBytes(&s.Comp, 10)
	if cap(small) < 5000 {
		t.Fatalf("capacity shrank: %d", cap(small))
	}
	i := GrowI32(&s.SA, 33)
	i[32] = 7
	u := GrowU16(&s.Probs, 17)
	u[16] = 9
	if len(GrowI32(&s.SA, 2)) != 2 || len(GrowU16(&s.Probs, 3)) != 3 {
		t.Fatal("grow length contract violated")
	}
}
