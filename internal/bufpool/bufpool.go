// Package bufpool is the data plane's buffer arena: a size-classed
// sync.Pool allocator for the byte buffers that flow between codecs, the
// Compression Manager, and the store, plus the per-worker Scratch that
// owns every reusable codec work buffer (see scratch.go).
//
// The arena serves power-of-two classes from 4 KiB to 1 MiB. Requests
// above the largest class fall through to a plain make (counted as
// "outsize") and are dropped on Put, so the pool never retains
// pathological buffers. Requests below 4 KiB round up to the smallest
// class — sub-task payloads are 4096-aligned by the HCDP engine, so in
// practice nothing smaller reaches the arena.
//
// The arena is process-global, like sync.Pool itself: buffers released by
// one client are reusable by another, and idle classes are reclaimed by
// the garbage collector through the usual sync.Pool victim mechanism.
// Hit/miss/outsize counters are kept in atomics and optionally mirrored
// into a telemetry registry via SetTelemetry.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"hcompress/internal/telemetry"
)

const (
	// MinClass and MaxClass bound the pooled buffer sizes.
	MinClass = 4 << 10 // 4 KiB: the HCDP alignment quantum
	MaxClass = 1 << 20 // 1 MiB: the largest codec block size
	minBits  = 12
	numClass = 9 // 4K, 8K, ..., 1M
)

// classes[i] holds buffers of exactly ClassSize(i) bytes. Pools store the
// raw base pointer (one word, so Get/Put never allocate an interface box);
// the slice is reconstructed from the class size on Get.
var classes [numClass]sync.Pool

var (
	hits    atomic.Int64
	misses  atomic.Int64
	outsize atomic.Int64
	puts    atomic.Int64

	tmMu sync.Mutex
	tm   struct {
		hits    *telemetry.Counter
		misses  *telemetry.Counter
		outsize *telemetry.Counter
		puts    *telemetry.Counter
	}
)

// SetTelemetry mirrors the arena's counters into reg. The arena is
// process-global, so when several clients run in one process the most
// recently registered registry receives the deltas; nil detaches.
func SetTelemetry(reg *telemetry.Registry) {
	tmMu.Lock()
	defer tmMu.Unlock()
	if reg == nil {
		tm.hits, tm.misses, tm.outsize, tm.puts = nil, nil, nil, nil
		return
	}
	tm.hits = reg.Counter("hc_bufpool_hits_total", "arena gets served from a pool class")
	tm.misses = reg.Counter("hc_bufpool_misses_total", "arena gets that allocated a fresh class buffer")
	tm.outsize = reg.Counter("hc_bufpool_outsize_total", "arena gets larger than the biggest class (plain make)")
	tm.puts = reg.Counter("hc_bufpool_puts_total", "buffers returned to the arena")
}

// Stats reports the arena's lifetime counters.
func Stats() (hit, miss, out, put int64) {
	return hits.Load(), misses.Load(), outsize.Load(), puts.Load()
}

// ClassSize returns the buffer size of class i.
func ClassSize(i int) int { return 1 << (minBits + i) }

// classFor returns the smallest class holding n bytes, or -1 when n
// exceeds MaxClass.
func classFor(n int) int {
	if n > MaxClass {
		return -1
	}
	if n <= MinClass {
		return 0
	}
	return bits.Len(uint(n-1)) - minBits
}

// Get returns a buffer with len n. The buffer comes from the arena when
// n fits a size class (its capacity is the class size) and from a plain
// make otherwise. Contents are unspecified — callers must overwrite.
func Get(n int) []byte {
	if n < 0 {
		panic("bufpool: negative size")
	}
	ci := classFor(n)
	if ci < 0 {
		outsize.Add(1)
		tm.outsize.Inc()
		return make([]byte, n)
	}
	if p, _ := classes[ci].Get().(unsafe.Pointer); p != nil {
		hits.Add(1)
		tm.hits.Inc()
		if debugging() {
			debugGot(p)
		}
		return unsafe.Slice((*byte)(p), ClassSize(ci))[:n]
	}
	misses.Add(1)
	tm.misses.Inc()
	return make([]byte, n, ClassSize(ci))
}

// Put returns buf to the arena. Only buffers whose capacity is exactly a
// class size are pooled (anything the arena handed out qualifies); other
// buffers — including oversize ones — are left to the garbage collector.
// buf must not be used after Put.
func Put(buf []byte) {
	c := cap(buf)
	if c < MinClass || c > MaxClass || c&(c-1) != 0 {
		return
	}
	ci := classFor(c)
	puts.Add(1)
	tm.puts.Inc()
	p := unsafe.Pointer(&buf[:c][0])
	if debugging() {
		debugPut(p)
	}
	classes[ci].Put(p)
}

// --- double-put guard (tests only) ---

var (
	debugOn  atomic.Bool
	debugMu  sync.Mutex
	debugSet map[unsafe.Pointer]struct{}
)

func debugging() bool { return debugOn.Load() }

// SetDebug toggles the double-put guard: with it on, returning the same
// buffer twice without an intervening Get panics. Intended for tests; the
// guard costs a map operation per arena call.
func SetDebug(on bool) {
	debugMu.Lock()
	defer debugMu.Unlock()
	if on {
		debugSet = make(map[unsafe.Pointer]struct{})
	} else {
		debugSet = nil
	}
	debugOn.Store(on)
}

func debugPut(p unsafe.Pointer) {
	debugMu.Lock()
	defer debugMu.Unlock()
	if debugSet == nil {
		return
	}
	if _, dup := debugSet[p]; dup {
		panic("bufpool: double Put of the same buffer")
	}
	debugSet[p] = struct{}{}
}

func debugGot(p unsafe.Pointer) {
	debugMu.Lock()
	defer debugMu.Unlock()
	if debugSet != nil {
		delete(debugSet, p)
	}
}
