package bufpool

import "sync"

// Scratch owns every reusable work buffer a codec needs, so a worker that
// keeps one Scratch across calls runs the whole codec suite without
// per-call allocation. Fields are grouped by the stage that uses them;
// one Scratch must not be shared by concurrent calls. The zero value is
// ready to use — buffers grow on first use and are retained at their
// high-water mark.
//
// Codecs must leave no state behind between calls beyond buffer capacity:
// every field is length-reset (and re-initialized where contents matter)
// by the call that uses it, which the codec round-trip tests verify by
// interleaving codecs over one shared Scratch.
type Scratch struct {
	// Comp and Dec are the compress- and decompress-destination buffers
	// the Compression Manager hands to codec calls.
	Comp []byte
	Dec  []byte

	// BWT/suffix-array stage (bzip2, bsc).
	SA   []int32 // suffix array
	Rank []int32 // prefix-doubling ranks
	Tmp  []int32 // radix-sort scratch
	Cnt  []int32 // counting-sort buckets
	LF   []int32 // inverse-BWT LF mapping
	BWT  []byte  // forward transform output
	MTF  []byte  // move-to-front output
	RLE  []byte  // zero-run-length output

	// LZ match-search stage (lzma, lzo, brotli, snappy, pithy, quicklz).
	Head []int32 // hash-table heads
	Prev []int32 // hash-chain links

	// Entropy stage: range-coder probability slab (bsc, lzma) and the
	// brotli token buffer.
	Probs  []uint16
	Tokens []uint64
}

// scratchPool serves the compatibility path: codecs invoked through the
// plain Codec interface (no caller-owned Scratch) borrow one here.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the process-wide pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch obtained from GetScratch.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// GrowBytes returns (*buf)[:n], reallocating when capacity is short.
// Contents are unspecified.
func GrowBytes(buf *[]byte, n int) []byte {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

// GrowI32 returns (*buf)[:n] with unspecified contents.
func GrowI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

// GrowU16 returns (*buf)[:n] with unspecified contents.
func GrowU16(buf *[]uint16, n int) []uint16 {
	if cap(*buf) < n {
		*buf = make([]uint16, n)
	}
	return (*buf)[:n]
}
