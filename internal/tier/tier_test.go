package tier

import (
	"strings"
	"testing"
)

func TestAresShape(t *testing.T) {
	h := Ares(64*GB, 192*GB, 2*TB, 100*TB)
	if h.Len() != 4 {
		t.Fatalf("len %d", h.Len())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	names := []string{RAM, NVM, BB, PFS}
	for i, n := range names {
		if h.Tiers[i].Name != n {
			t.Errorf("tier %d = %s want %s", i, h.Tiers[i].Name, n)
		}
	}
	// Bandwidth must strictly decrease down the hierarchy (the property
	// the whole paper rests on).
	for i := 1; i < h.Len(); i++ {
		if h.Tiers[i].Bandwidth >= h.Tiers[i-1].Bandwidth {
			t.Errorf("bandwidth not decreasing at tier %d", i)
		}
		if h.Tiers[i].Latency <= h.Tiers[i-1].Latency {
			t.Errorf("latency not increasing at tier %d", i)
		}
	}
}

func TestIndexAndConcurrency(t *testing.T) {
	h := Ares(GB, GB, GB, GB)
	if h.Index(NVM) != 1 || h.Index(PFS) != 3 || h.Index("tape") != -1 {
		t.Error("Index lookups wrong")
	}
	if h.Concurrency() <= 0 {
		t.Error("Concurrency must be positive")
	}
	want := 0
	for _, s := range h.Tiers {
		want += s.Lanes
	}
	if h.Concurrency() != want {
		t.Errorf("Concurrency %d want %d", h.Concurrency(), want)
	}
	if h.TotalCapacity() != 4*GB {
		t.Errorf("TotalCapacity %d", h.TotalCapacity())
	}
}

func TestValidateRejectsBadHierarchies(t *testing.T) {
	cases := []Hierarchy{
		{},
		{Tiers: []Spec{{Name: "", Capacity: 1, Bandwidth: 1, Lanes: 1}}},
		{Tiers: []Spec{{Name: "a", Capacity: 0, Bandwidth: 1, Lanes: 1}}},
		{Tiers: []Spec{{Name: "a", Capacity: 1, Bandwidth: 0, Lanes: 1}}},
		{Tiers: []Spec{{Name: "a", Capacity: 1, Bandwidth: 1, Lanes: 0}}},
		{Tiers: []Spec{{Name: "a", Capacity: 1, Bandwidth: 1, Lanes: 1, Latency: -1}}},
		{Tiers: []Spec{
			{Name: "a", Capacity: 1, Bandwidth: 1, Lanes: 1},
			{Name: "a", Capacity: 1, Bandwidth: 1, Lanes: 1},
		}},
	}
	for i, h := range cases {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPFSOnly(t *testing.T) {
	h := PFSOnly(10 * TB)
	if h.Len() != 1 || h.Tiers[0].Name != PFS || h.Tiers[0].Capacity != 10*TB {
		t.Fatalf("PFSOnly wrong: %v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceTimeMonotonic(t *testing.T) {
	s := Spec{Name: "x", Capacity: GB, Latency: 1e-3, Bandwidth: 1e9, Lanes: 4}
	if s.ServiceTime(0) != 1e-3 {
		t.Error("zero-byte service time should equal latency")
	}
	if s.ServiceTime(1000) >= s.ServiceTime(100000) {
		t.Error("service time must grow with size")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2 * KB:  "2.0KB",
		3 * MB:  "3.0MB",
		5 * GB:  "5.0GB",
		2 * TB:  "2.0TB",
		1536:    "1.5KB",
		GB + GB: "2.0GB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	h := Ares(GB, GB, GB, GB)
	s := h.String()
	for _, name := range []string{RAM, NVM, BB, PFS} {
		if !strings.Contains(s, name) {
			t.Errorf("String() missing %s: %s", name, s)
		}
	}
}
