// Package tier defines storage-tier specifications and the hierarchy
// presets used across the paper's experiments (Tables III and IV, and the
// per-figure capacity configurations).
//
// Tier order is significant everywhere in HCompress: index 0 is the
// highest (fastest, smallest) tier, mirroring the paper's convention that
// "higher tiers have a smaller index" with l = 0 representing RAM.
package tier

import (
	"fmt"
	"strings"
)

// Well-known tier names used by the presets.
const (
	RAM   = "ram"
	NVM   = "nvme"
	BB    = "burstbuffer"
	PFS   = "pfs"
	Cloud = "cloud"
)

// Payload-backend kinds a Spec may name. The empty string means
// BackendMem.
const (
	BackendMem   = "mem"  // payloads held in process memory (default)
	BackendFile  = "file" // append-only segments + WAL under the store's DataDir
	BackendCloud = "cloud" // modeled object store with $-cost metering
)

// Spec describes one storage tier as the System Monitor and the HCDP
// engine see it: capacity, access latency, aggregate bandwidth, and the
// number of hardware lanes (the paper's Concurrency(L) term). Backend
// selects the payload plane behind the tier, and the two cost fields
// price its use — both feed the Place DP's optional $-cost objective
// term and the cloud backend's cost meter; zero costs keep the tier free
// and the placement objective purely time-based.
type Spec struct {
	Name      string  `json:"name"`
	Capacity  int64   `json:"capacity_bytes"`
	Latency   float64 `json:"latency_sec"`
	Bandwidth float64 `json:"bandwidth_bytes_per_sec"`
	Lanes     int     `json:"lanes"`

	// Backend names the payload plane: "" or "mem", "file", "cloud".
	Backend string `json:"backend,omitempty"`
	// CostPerGBMonth is the storage price of keeping one GB resident for
	// a month (e.g. 0.023 for S3-standard-class object storage).
	CostPerGBMonth float64 `json:"cost_per_gb_month,omitempty"`
	// EgressCostPerGB is the price of reading one GB out of the tier.
	EgressCostPerGB float64 `json:"egress_cost_per_gb,omitempty"`
}

// ServiceTime returns the uncontended time to move n bytes through one
// lane of this tier.
func (s Spec) ServiceTime(n int64) float64 {
	return s.Latency + float64(n)/(s.Bandwidth/float64(max(1, s.Lanes)))
}

func (s Spec) String() string {
	return fmt.Sprintf("%s{cap=%s bw=%s/s lat=%.0fus lanes=%d}",
		s.Name, FormatBytes(s.Capacity), FormatBytes(int64(s.Bandwidth)), s.Latency*1e6, s.Lanes)
}

// Hierarchy is an ordered list of tiers, fastest first.
type Hierarchy struct {
	Tiers []Spec `json:"tiers"`
}

// Len returns the number of tiers.
func (h Hierarchy) Len() int { return len(h.Tiers) }

// Concurrency is the sum of hardware lanes across all tiers — the bound
// the problem formulation places on sub-task counts (constraint 2).
func (h Hierarchy) Concurrency() int {
	total := 0
	for _, t := range h.Tiers {
		total += t.Lanes
	}
	return total
}

// TotalCapacity sums capacity over all tiers.
func (h Hierarchy) TotalCapacity() int64 {
	var total int64
	for _, t := range h.Tiers {
		total += t.Capacity
	}
	return total
}

// Index returns the position of the named tier, or -1.
func (h Hierarchy) Index(name string) int {
	for i, t := range h.Tiers {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks ordering invariants: at least one tier, positive
// capacities and bandwidths, and (by convention) non-increasing bandwidth
// down the hierarchy is *not* required but capacity must be positive.
func (h Hierarchy) Validate() error {
	if len(h.Tiers) == 0 {
		return fmt.Errorf("tier: hierarchy has no tiers")
	}
	seen := map[string]bool{}
	for i, t := range h.Tiers {
		if t.Name == "" {
			return fmt.Errorf("tier: tier %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("tier: duplicate tier name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Capacity <= 0 {
			return fmt.Errorf("tier: %s has non-positive capacity", t.Name)
		}
		if t.Bandwidth <= 0 {
			return fmt.Errorf("tier: %s has non-positive bandwidth", t.Name)
		}
		if t.Lanes <= 0 {
			return fmt.Errorf("tier: %s has non-positive lanes", t.Name)
		}
		if t.Latency < 0 {
			return fmt.Errorf("tier: %s has negative latency", t.Name)
		}
		switch t.Backend {
		case "", BackendMem, BackendFile, BackendCloud:
		default:
			return fmt.Errorf("tier: %s has unknown backend %q", t.Name, t.Backend)
		}
		if t.CostPerGBMonth < 0 {
			return fmt.Errorf("tier: %s has negative storage cost", t.Name)
		}
		if t.EgressCostPerGB < 0 {
			return fmt.Errorf("tier: %s has negative egress cost", t.Name)
		}
	}
	return nil
}

func (h Hierarchy) String() string {
	parts := make([]string, len(h.Tiers))
	for i, t := range h.Tiers {
		parts[i] = t.String()
	}
	return strings.Join(parts, " > ")
}

// Ares returns the testbed hierarchy modeled after the paper's Table III
// (the Ares cluster at IIT): 64 compute nodes with node-local RAM buffers
// and NVMe, 4 burst-buffer nodes with SATA SSDs, and a 24-node OrangeFS
// parallel file system, all on 40 GbE. Capacities are passed per call
// because each figure configures them differently.
//
// Per-device characteristics behind the aggregates:
//
//	RAM  (DDR4):   ~6 GB/s/node streaming,  1 us
//	NVMe:          ~2 GB/s/node,            30 us
//	BB (2xSSD):    ~1 GB/s/node over 40GbE, 400 us (network hop)
//	PFS (2TB HDD): ~50 MB/s/node effective through OrangeFS over the
//	               shared network (seek-bound small-block HDD I/O), 5 ms
func Ares(ramCap, nvmeCap, bbCap, pfsCap int64) Hierarchy {
	const (
		computeNodes = 64
		bbNodes      = 4
		pfsNodes     = 24
	)
	return Hierarchy{Tiers: []Spec{
		{Name: RAM, Capacity: ramCap, Latency: 1e-6, Bandwidth: 6e9 * computeNodes, Lanes: computeNodes * 2},
		{Name: NVM, Capacity: nvmeCap, Latency: 30e-6, Bandwidth: 2e9 * computeNodes, Lanes: computeNodes},
		{Name: BB, Capacity: bbCap, Latency: 400e-6, Bandwidth: 1e9 * bbNodes, Lanes: bbNodes * 4},
		{Name: PFS, Capacity: pfsCap, Latency: 5e-3, Bandwidth: 50e6 * pfsNodes, Lanes: pfsNodes},
	}}
}

// PFSOnly returns a single-tier hierarchy (the paper's BASE configuration:
// vanilla PFS with no buffering).
func PFSOnly(pfsCap int64) Hierarchy {
	h := Ares(1, 1, 1, pfsCap)
	return Hierarchy{Tiers: []Spec{h.Tiers[3]}}
}

// CloudSpec returns a modeled object-store tier: S3-class pricing
// ($0.023/GB-month storage, $0.09/GB egress), a WAN round-trip of
// latency, and enough aggregate bandwidth and lanes that the tier is
// throughput-cheap but latency-expensive — the cold floor demotion
// drains into. Capacity is passed per call (use something effectively
// unbounded relative to the workload).
func CloudSpec(capacity int64) Spec {
	return Spec{
		Name:            Cloud,
		Capacity:        capacity,
		Latency:         50e-3,
		Bandwidth:       10e9,
		Lanes:           64,
		Backend:         BackendCloud,
		CostPerGBMonth:  0.023,
		EgressCostPerGB: 0.09,
	}
}

// Bytes helpers for readable experiment configs.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
	GB = int64(1) << 30
	TB = int64(1) << 40
)

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.1fTB", float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
