// Package bits provides bit-granular readers and writers used by the
// entropy-coding stages of the codec suite (huffman, brotli, bzip2, bsc).
//
// The Writer packs bits LSB-first into a growing byte slice; the Reader
// consumes the same layout. Both are allocation-light: the Writer reuses
// its destination buffer and the Reader operates on a borrowed slice.
package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a Reader runs out of input mid-symbol.
var ErrUnexpectedEOF = errors.New("bits: unexpected end of bitstream")

// Writer accumulates bits LSB-first and flushes them into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // bit accumulator, low bits are oldest
	nacc uint   // number of valid bits in acc
}

// NewWriter returns a Writer that appends to dst (dst may be nil).
func NewWriter(dst []byte) *Writer {
	return &Writer{buf: dst}
}

// Reset discards buffered state and re-targets dst.
func (w *Writer) Reset(dst []byte) {
	w.buf = dst
	w.acc = 0
	w.nacc = 0
}

// WriteBits appends the low n bits of v (0 <= n <= 57).
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 57 {
		panic(fmt.Sprintf("bits: WriteBits n=%d out of range", n))
	}
	w.acc |= (v & (1<<n - 1)) << w.nacc
	w.nacc += n
	// Flush words, not bytes: the byte sequence is identical (low byte
	// first either way), but one 4-byte append replaces four loop trips.
	for w.nacc >= 32 {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(w.acc))
		w.acc >>= 32
		w.nacc -= 32
	}
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteByte appends a full byte (aligned or not).
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if w.nacc%8 != 0 {
		w.WriteBits(0, 8-w.nacc%8)
	}
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() int {
	return len(w.buf)*8 + int(w.nacc)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The Writer remains usable; subsequent writes start bit-aligned.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	src  []byte
	pos  int    // next byte to load
	acc  uint64 // bit accumulator
	nacc uint   // valid bits in acc
}

// NewReader returns a Reader over src. The Reader borrows src.
func NewReader(src []byte) *Reader {
	return &Reader{src: src}
}

// Reset re-targets the reader at src.
func (r *Reader) Reset(src []byte) {
	r.src = src
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

func (r *Reader) fill() {
	// Bits above nacc may hold junk from a previous bulk refill; clear
	// them so the ORs below land on zeroes.
	r.acc &= 1<<r.nacc - 1
	if r.pos+8 <= len(r.src) {
		// Bulk refill: one unaligned 64-bit load tops the accumulator up
		// to >= 57 valid bits — (64-nacc)/8 whole bytes fit, and fill is
		// only entered with nacc <= 56, so at least one byte always lands.
		r.acc |= binary.LittleEndian.Uint64(r.src[r.pos:]) << r.nacc
		adv := (64 - r.nacc) >> 3
		r.pos += int(adv)
		r.nacc += adv * 8
		return
	}
	for r.nacc <= 56 && r.pos < len(r.src) {
		r.acc |= uint64(r.src[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// ReadBits reads n bits (0 <= n <= 57). It returns ErrUnexpectedEOF if the
// stream has fewer than n bits left.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		panic(fmt.Sprintf("bits: ReadBits n=%d out of range", n))
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			return 0, ErrUnexpectedEOF
		}
	}
	v := r.acc & (1<<n - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Peek returns up to n bits without consuming them. Fewer bits may be
// returned near the end of the stream; use Have to check.
func (r *Reader) Peek(n uint) uint64 {
	if r.nacc < n {
		r.fill()
	}
	return r.acc & (1<<n - 1)
}

// Have reports how many bits can still be read.
func (r *Reader) Have() int {
	return int(r.nacc) + (len(r.src)-r.pos)*8
}

// Skip consumes n bits. It returns ErrUnexpectedEOF when fewer remain.
func (r *Reader) Skip(n uint) error {
	_, err := r.ReadBits(n)
	return err
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	drop := r.nacc % 8
	r.acc >>= drop
	r.nacc -= drop
}
