package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripSimple(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0x1234, 16)
	w.WriteBit(1)
	out := w.Bytes()

	r := NewReader(out)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b want 101", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x want ff", v)
	}
	if v, _ := r.ReadBits(16); v != 0x1234 {
		t.Fatalf("got %x want 1234", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("got %d want 1", v)
	}
}

func TestRoundTripRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type item struct {
		v uint64
		n uint
	}
	var items []item
	w := NewWriter(nil)
	for i := 0; i < 10000; i++ {
		n := uint(rng.Intn(57) + 1)
		v := rng.Uint64() & (1<<n - 1)
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		v, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if v != it.v {
			t.Fatalf("item %d: got %x want %x (n=%d)", i, v, it.v, it.n)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(1, 1)
	w.Align()
	w.WriteBits(0xCD, 8)
	out := w.Bytes()
	if len(out) != 2 {
		t.Fatalf("len=%d want 2", len(out))
	}
	r := NewReader(out)
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Fatalf("got %x want cd", v)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0x2A, 8)
	r := NewReader(w.Bytes())
	if p := r.Peek(8); p != 0x2A {
		t.Fatalf("peek got %x", p)
	}
	if v, _ := r.ReadBits(8); v != 0x2A {
		t.Fatalf("read got %x", v)
	}
}

func TestHave(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Have(); got != 24 {
		t.Fatalf("Have=%d want 24", got)
	}
	r.ReadBits(5)
	if got := r.Have(); got != 19 {
		t.Fatalf("Have=%d want 19", got)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		w := NewWriter(nil)
		for _, b := range data {
			w.WriteBits(uint64(b), 8)
		}
		r := NewReader(w.Bytes())
		for _, b := range data {
			v, err := r.ReadBits(8)
			if err != nil || byte(v) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0xFFFF, 16)
	w.Reset(nil)
	w.WriteBits(0x7, 3)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 0x07 {
		t.Fatalf("got %v", out)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(make([]byte, 0, 1<<20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset(w.buf[:0])
		for j := 0; j < 100000; j++ {
			w.WriteBits(uint64(j), 13)
		}
	}
}
