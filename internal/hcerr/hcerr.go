// Package hcerr holds the canonical error taxonomy shared by every
// layer of the pipeline. The sentinels live here — below store, manager,
// monitor, and the public package — so a failure classified at the
// Storage Hardware Interface keeps its identity all the way to the
// client boundary: callers match with errors.Is against the re-exports
// in the root package instead of parsing strings.
package hcerr

import "errors"

var (
	// ErrTierOffline marks a sticky tier failure: the device is down and
	// retrying the same tier is pointless until a recovery probe succeeds.
	ErrTierOffline = errors.New("tier offline")
	// ErrNoCapacity marks a placement that does not fit the target tier.
	ErrNoCapacity = errors.New("tier capacity exceeded")
	// ErrNotFound marks an absent key.
	ErrNotFound = errors.New("key not found")
	// ErrCorrupted marks a stored payload whose CRC32C no longer matches
	// its sub-task header — detected on read, never silently decompressed.
	ErrCorrupted = errors.New("corrupted payload")
	// ErrDegraded marks an operation that only succeeded by abandoning
	// the planned schema (e.g. stored uncompressed on a fallback tier).
	ErrDegraded = errors.New("degraded placement")
	// ErrQuotaExceeded marks a write the service rejected because it
	// would push the tenant's stored bytes past its quota. Nothing was
	// stored; the tenant must delete data (or be granted quota) first.
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrThrottled marks a request rejected by token-bucket admission
	// control: the tenant is over its request rate. Retryable after
	// backoff, unlike ErrQuotaExceeded.
	ErrThrottled = errors.New("tenant throttled")
	// ErrBackendIO marks a tier backend I/O failure: a durable backend's
	// journal append, read, or sync hit a real device error (as opposed
	// to an injected fault or a capacity miss). It feeds the health
	// machine like any other tier failure and is spillable — the write
	// ladder retries the payload on another tier.
	ErrBackendIO = errors.New("backend I/O failure")
)

// transientErr wraps a retryable failure: a blip the caller may clear by
// retrying with backoff (transient outage window, latency-induced
// timeout), as opposed to the sticky ErrTierOffline.
type transientErr struct{ err error }

func (t *transientErr) Error() string { return t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// MarkTransient tags err as retryable. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether any error in err's chain was tagged with
// MarkTransient.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}
