package fanout

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcompress/internal/bufpool"
)

func TestPoolRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			err := p.Run(n, func(s *bufpool.Scratch, i int) error {
				if s == nil {
					t.Error("nil scratch")
				}
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestPoolReturnsLowestIndexedError(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var ran atomic.Int32
		err := p.Run(10, func(_ *bufpool.Scratch, i int) error {
			ran.Add(1)
			switch i {
			case 3:
				return e3
			case 7:
				return e7
			}
			return nil
		})
		if err != e3 {
			t.Errorf("workers=%d: got %v, want the lowest-indexed error %v", workers, err, e3)
		}
		if got := ran.Load(); got != 10 {
			t.Errorf("workers=%d: %d items ran, want all 10 despite errors", workers, got)
		}
		p.Close()
	}
}

func TestPoolNilAndZeroItems(t *testing.T) {
	var p *Pool
	n := 0
	if err := p.Run(3, func(_ *bufpool.Scratch, _ int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("nil pool ran %d items, want 3 inline", n)
	}
	p.Close() // must not panic
	q := NewPool(2)
	defer q.Close()
	if err := q.Run(0, func(_ *bufpool.Scratch, _ int) error { t.Error("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestPoolInterleavesJobs checks the round-robin claim order: with a big
// job already queued and every worker artificially parked, a small job
// submitted later must not wait for the big one to finish.
func TestPoolInterleavesJobs(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const bigN = 256
	var wg sync.WaitGroup
	wg.Add(2)
	release := make(chan struct{})
	var bigDone, smallDone atomic.Int64
	go func() {
		defer wg.Done()
		_ = p.Run(bigN, func(_ *bufpool.Scratch, i int) error {
			<-release
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		bigDone.Store(time.Now().UnixNano())
	}()
	// Give the big job time to be queued before the small one arrives.
	time.Sleep(10 * time.Millisecond)
	go func() {
		defer wg.Done()
		_ = p.Run(4, func(_ *bufpool.Scratch, i int) error {
			<-release
			return nil
		})
		smallDone.Store(time.Now().UnixNano())
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if smallDone.Load() > bigDone.Load() {
		t.Errorf("small job finished after the big one: round-robin interleaving is not happening")
	}
}

func TestPoolCloseStopsWorkersAndRunsInline(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	if err := p.Run(16, func(_ *bufpool.Scratch, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines alive after Close, started with %d", got, before)
	}
	// Run after Close still executes, inline.
	n := 0
	if err := p.Run(5, func(_ *bufpool.Scratch, _ int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("post-Close Run executed %d items, want 5", n)
	}
}

// TestPoolConcurrentSubmitters hammers one pool from many goroutines and
// checks every item of every job runs exactly once.
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const subs = 8
	const jobsPer = 50
	var wg sync.WaitGroup
	for g := 0; g < subs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				n := 1 + (g+j)%33
				var count atomic.Int64
				if err := p.Run(n, func(_ *bufpool.Scratch, _ int) error {
					count.Add(1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if got := count.Load(); got != int64(n) {
					t.Errorf("job ran %d items, want %d", got, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestChunkFor(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{1, 4, 1},
		{15, 4, 1},
		{64, 4, 4},
		{4096, 4, 32}, // capped so interleaving survives
		{100, 1, 25},
	}
	for _, c := range cases {
		if got := chunkFor(c.n, c.workers); got != c.want {
			t.Errorf("chunkFor(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}
