// Package fanout provides a minimal bounded worker pool for fanning a
// fixed-size batch of independent work items across goroutines.
//
// It exists so the Compression Manager can overlap per-sub-task codec CPU
// work (the errgroup pattern) without pulling in external dependencies,
// while keeping results deterministic: callers index results by item and
// ForEach reports the error of the lowest-indexed failing item regardless
// of goroutine scheduling, exactly what a serial loop would have returned.
package fanout

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) using at most par concurrent
// goroutines (par <= 1 runs inline). All items are attempted even when one
// fails, so result slices indexed by i are fully populated for successful
// items; the returned error is the lowest-indexed one, matching the serial
// execution a caller would otherwise perform.
func ForEach(n, par int, fn func(int) error) error {
	return ForEachWorker(n, par, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker's identity exposed: fn is
// called as fn(worker, i) where worker is a stable index in [0, par).
// Each worker runs on one goroutine, so per-worker state (scratch
// buffers, arenas) indexed by the worker id needs no locking.
func ForEachWorker(n, par int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	if par <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
