package fanout

import "context"

// Class is a pool scheduling priority. Two classes exist: Interactive
// work (latency-sensitive reads) is always claimed before Batch work
// (bulk writes, background movement), so a flood of batch sub-tasks
// cannot queue ahead of a read that a caller is blocked on. Within a
// class, claiming stays round-robin across jobs.
//
// Priority affects wall-clock scheduling only. Virtual-time accounting
// is computed per sub-task from the model, so results and traces are
// byte-identical whichever order the pool runs things in — the same
// determinism contract as the pool width.
type Class int

const (
	// Interactive is the default class: claimed first.
	Interactive Class = iota
	// Batch yields to Interactive work whenever both are queued.
	Batch

	numClasses = 2
)

// classKey carries a Class through a context.
type classKey struct{}

// WithClass tags ctx with a scheduling class. Operations executed under
// the returned context submit their pool work at that class; an untagged
// context is Interactive.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassOf extracts the scheduling class from ctx (Interactive when
// untagged or nil).
func ClassOf(ctx context.Context) Class {
	if ctx == nil {
		return Interactive
	}
	if c, ok := ctx.Value(classKey{}).(Class); ok && c >= 0 && c < numClasses {
		return c
	}
	return Interactive
}
