package fanout

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		var sum int64
		if err := ForEach(50, par, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if sum != 50*49/2 {
			t.Errorf("par=%d: sum %d", par, sum)
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	e3 := errors.New("item 3")
	e7 := errors.New("item 7")
	for _, par := range []int{1, 4} {
		err := ForEach(10, par, func(i int) error {
			switch i {
			case 3:
				return e3
			case 7:
				return e7
			}
			return nil
		})
		if err != e3 {
			t.Errorf("par=%d: got %v, want error of item 3", par, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPopulatesByIndex(t *testing.T) {
	out := make([]int, 64)
	if err := ForEach(64, 8, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
