package fanout

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hcompress/internal/bufpool"
)

// TestClassContext pins the context plumbing: untagged contexts default
// to Interactive, WithClass round-trips, and the innermost tag wins.
func TestClassContext(t *testing.T) {
	if got := ClassOf(context.Background()); got != Interactive {
		t.Fatalf("untagged context: class %v, want Interactive", got)
	}
	ctx := WithClass(context.Background(), Batch)
	if got := ClassOf(ctx); got != Batch {
		t.Fatalf("tagged context: class %v, want Batch", got)
	}
	if got := ClassOf(WithClass(ctx, Interactive)); got != Interactive {
		t.Fatalf("re-tagged context: class %v, want Interactive", got)
	}
}

// TestClaimPrefersInteractive is the white-box scheduling gate: with a
// Batch job enqueued first and an Interactive job behind it, claim()
// must hand out every Interactive item before touching the Batch
// queue. No workers are started — the test drives claim() directly, so
// the order is deterministic.
func TestClaimPrefersInteractive(t *testing.T) {
	p := &Pool{workers: 2}
	p.cond = sync.NewCond(&p.mu)
	mk := func(cls Class, n int) *poolJob {
		j := &poolJob{n: n, chunk: 1, cls: cls, done: make(chan struct{}, 1)}
		j.pending.Store(int64(n))
		return j
	}
	batch := mk(Batch, 2)
	inter := mk(Interactive, 2)
	p.jobs[Batch] = append(p.jobs[Batch], batch) // enqueued first...
	p.jobs[Interactive] = append(p.jobs[Interactive], inter)
	p.queued = 4

	var order []Class
	for i := 0; i < 4; i++ {
		j, lo, hi := p.claim()
		if j == nil || hi-lo != 1 {
			t.Fatalf("claim %d: job %v span [%d,%d)", i, j, lo, hi)
		}
		order = append(order, j.cls)
	}
	want := []Class{Interactive, Interactive, Batch, Batch} // ...but claimed last
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("claim order %v, want %v", order, want)
		}
	}
	if p.queued != 0 {
		t.Fatalf("queued = %d after draining", p.queued)
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	if j, _, _ := p.claim(); j != nil {
		t.Fatal("claim on a drained, closed pool returned a job")
	}
}

// TestRunClassExecutesAll: Batch scheduling changes claim order only —
// every item still runs exactly once and the lowest-indexed error is
// returned, same contract as Run.
func TestRunClassExecutesAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	boom := errors.New("item failed")
	var ran atomic.Int64
	err := p.RunClass(Batch, 64, func(s *bufpool.Scratch, i int) error {
		ran.Add(1)
		if i == 5 || i == 40 {
			return boom
		}
		return nil
	})
	if ran.Load() != 64 {
		t.Fatalf("ran %d items, want 64", ran.Load())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the item error", err)
	}
	// An out-of-range class degrades to Interactive rather than panicking.
	if err := p.RunClass(Class(9), 8, func(s *bufpool.Scratch, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
