package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hcompress/internal/bufpool"
	"hcompress/internal/telemetry"
)

// Pool is a shared, persistent worker pool: a fixed set of long-lived
// workers, each with a codec Scratch pinned for its whole lifetime,
// executing work from every in-flight request. Requests submit a
// fixed-size batch of items with Run; items are claimed in chunks, and
// claiming rotates round-robin across the in-flight jobs, so one large
// request cannot starve small ones — the cross-request interleaving a
// per-call goroutine fan-out (ForEachWorker) cannot provide.
//
// The submitting goroutine helps execute its own items while it waits,
// so a request always makes progress even when every worker is busy
// with other requests, and total CPU concurrency stays bounded by
// workers + in-flight requests rather than workers × requests.
//
// Jobs carry a scheduling Class: workers claim Interactive jobs before
// Batch jobs, so latency-sensitive reads overtake queued bulk writes
// (claiming stays round-robin within a class). A submitting goroutine
// always helps its own job regardless of class, so a Batch submission
// still makes progress under an Interactive flood.
//
// A Pool with width 1 spawns no goroutines at all: Run executes inline,
// preserving the fully-serial Parallelism=1 contract.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    [numClasses][]*poolJob // in-flight jobs with unclaimed items, by class
	rr      [numClasses]int        // round-robin cursor into each class's jobs
	queued  int                    // items submitted but not yet claimed
	closed  bool
	workers int
	wg      sync.WaitGroup

	// Telemetry (nil when off; instrument methods no-op on nil).
	depth *telemetry.Gauge
	busy  *telemetry.Gauge
	wait  *telemetry.Histogram
	runs  *telemetry.Counter
}

// poolJob is one Run call's batch of items.
type poolJob struct {
	fn      func(s *bufpool.Scratch, i int) error
	n       int
	next    int // next unclaimed item; guarded by Pool.mu
	chunk   int
	cls     Class
	pending atomic.Int64
	errs    []error       // indexed by item; disjoint writers, read after done
	done    chan struct{} // buffered(1): the last finisher sends one token
	enq     time.Time
	timed   bool
}

// jobPool recycles job shells (and their errs slices and done channels)
// so steady-state Run calls allocate nothing.
var jobPool = sync.Pool{New: func() any { return &poolJob{done: make(chan struct{}, 1)} }}

// NewPool starts a pool of the given width; workers < 1 selects
// GOMAXPROCS. Close must be called to stop the workers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	if workers > 1 {
		p.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go p.worker()
		}
	}
	return p
}

// SetTelemetry registers the pool's instruments on reg: queue depth,
// queue wait, and jobs submitted. Like the other SetTelemetry hooks it
// is a construction-time option — call it before the pool is shared;
// a nil registry leaves telemetry off.
func (p *Pool) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.depth = reg.Gauge("hc_pool_queued", "sub-tasks submitted to the shared worker pool and not yet claimed")
	p.busy = reg.Gauge("hc_pool_workers_busy", "goroutines (workers and helping submitters) currently executing pool chunks")
	p.wait = reg.Histogram("hc_pool_queue_wait_seconds", "time from job submission to each of its work spans starting", telemetry.SecondsBuckets)
	p.runs = reg.Counter("hc_pool_jobs_total", "jobs submitted to the shared worker pool")
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth reports the items submitted but not yet claimed.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// chunkFor sizes the claim quantum: large jobs hand out multi-item
// chunks to keep lock traffic low, but never so large that round-robin
// interleaving degenerates into run-to-completion.
func chunkFor(n, workers int) int {
	c := n / (workers * 4)
	if c < 1 {
		return 1
	}
	if c > 32 {
		return 32
	}
	return c
}

// Run executes fn(scratch, i) for every i in [0, n) and blocks until all
// items complete. The scratch passed to fn is owned by the executing
// worker for the duration of the call — per-worker state needs no
// locking. All items are attempted even when one fails; the returned
// error is the lowest-indexed one, matching serial execution (the
// ForEachWorker contract). A nil, width-1, or closed pool runs inline.
// Run submits at Interactive priority; RunClass selects the class.
func (p *Pool) Run(n int, fn func(s *bufpool.Scratch, i int) error) error {
	return p.RunClass(Interactive, n, fn)
}

// RunClass is Run at an explicit scheduling class: Batch jobs wait while
// Interactive work is queued; everything else about Run's contract holds.
func (p *Pool) RunClass(cls Class, n int, fn func(s *bufpool.Scratch, i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || p.workers <= 1 || n == 1 {
		return runInline(n, fn)
	}
	if cls < 0 || cls >= numClasses {
		cls = Interactive
	}
	j := jobPool.Get().(*poolJob)
	j.fn, j.n, j.next, j.cls = fn, n, 0, cls
	j.chunk = chunkFor(n, p.workers)
	j.pending.Store(int64(n))
	if cap(j.errs) < n {
		j.errs = make([]error, n)
	} else {
		j.errs = j.errs[:n]
		for i := range j.errs {
			j.errs[i] = nil
		}
	}
	j.timed = p.wait != nil
	if j.timed {
		j.enq = time.Now()
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		j.fn = nil
		jobPool.Put(j)
		return runInline(n, fn)
	}
	p.jobs[cls] = append(p.jobs[cls], j)
	p.queued += n
	p.depth.Set(float64(p.queued))
	p.runs.Inc()
	p.mu.Unlock()
	p.cond.Broadcast()

	p.help(j)
	<-j.done

	var first error
	for _, err := range j.errs {
		if err != nil {
			first = err
			break
		}
	}
	j.fn = nil
	jobPool.Put(j)
	return first
}

// runInline is the serial fallback: one borrowed scratch, items in order.
func runInline(n int, fn func(s *bufpool.Scratch, i int) error) error {
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	var first error
	for i := 0; i < n; i++ {
		if err := fn(s, i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// help lets the submitting goroutine execute chunks of its own job while
// the pool's workers interleave it with every other in-flight request.
func (p *Pool) help(j *poolJob) {
	var s *bufpool.Scratch
	for {
		p.mu.Lock()
		lo := j.next
		if lo >= j.n {
			p.mu.Unlock()
			break
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.next = hi
		if hi >= j.n {
			// Taking the final chunk: drop the job from its class queue
			// now. The shell is recycled the moment Run returns, so no
			// stale pointer may remain where a worker could read it.
			q := p.jobs[j.cls]
			for idx := range q {
				if q[idx] == j {
					p.jobs[j.cls] = append(q[:idx], q[idx+1:]...)
					if p.rr[j.cls] > idx {
						p.rr[j.cls]--
					}
					break
				}
			}
		}
		p.queued -= hi - lo
		p.depth.Set(float64(p.queued))
		p.mu.Unlock()
		if s == nil {
			s = bufpool.GetScratch()
		}
		p.runSpan(j, s, lo, hi)
	}
	if s != nil {
		bufpool.PutScratch(s)
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	s := bufpool.GetScratch()
	defer bufpool.PutScratch(s)
	for {
		j, lo, hi := p.claim()
		if j == nil {
			return
		}
		p.runSpan(j, s, lo, hi)
	}
}

// claim blocks until work is available and takes the next chunk:
// Interactive jobs first, then Batch, rotating round-robin across the
// in-flight jobs within the winning class. It returns a nil job only
// when the pool is closed and every queued item has been claimed.
func (p *Pool) claim() (*poolJob, int, int) {
	p.mu.Lock()
	for {
		for cls := Class(0); cls < numClasses; cls++ {
			for len(p.jobs[cls]) > 0 {
				if p.rr[cls] >= len(p.jobs[cls]) {
					p.rr[cls] = 0
				}
				j := p.jobs[cls][p.rr[cls]]
				if j.next >= j.n { // drained by its submitter's help loop
					p.jobs[cls] = append(p.jobs[cls][:p.rr[cls]], p.jobs[cls][p.rr[cls]+1:]...)
					continue
				}
				lo := j.next
				hi := lo + j.chunk
				if hi >= j.n {
					hi = j.n
					j.next = j.n
					p.jobs[cls] = append(p.jobs[cls][:p.rr[cls]], p.jobs[cls][p.rr[cls]+1:]...)
				} else {
					j.next = hi
					p.rr[cls]++
				}
				p.queued -= hi - lo
				p.depth.Set(float64(p.queued))
				p.mu.Unlock()
				return j, lo, hi
			}
		}
		if p.closed {
			p.mu.Unlock()
			return nil, 0, 0
		}
		p.cond.Wait()
	}
}

// runSpan executes one claimed chunk and signals job completion when it
// finishes the last outstanding item.
func (p *Pool) runSpan(j *poolJob, s *bufpool.Scratch, lo, hi int) {
	if j.timed {
		p.wait.Observe(time.Since(j.enq).Seconds())
	}
	p.busy.Add(1)
	defer p.busy.Add(-1)
	for i := lo; i < hi; i++ {
		if err := j.fn(s, i); err != nil {
			j.errs[i] = err
		}
	}
	if j.pending.Add(int64(lo-hi)) == 0 {
		j.done <- struct{}{}
	}
}

// Close stops the workers after every already-submitted job completes.
// Run calls issued after Close execute inline, so Close never strands a
// caller; it is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
