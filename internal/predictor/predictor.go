// Package predictor implements the Compression Cost Predictor (CCP):
// per-codec linear regression models over data attributes that estimate
// the Expected Compression Cost 3-tuple (compression speed, decompression
// speed, ratio), bootstrapped from the profiler's JSON seed and refined at
// runtime through a reinforcement-learning feedback loop (§IV-D).
//
// The feedback loop is batched: compressors report actual costs after
// every operation, but the models only absorb them every n operations
// (n is the seed's feedback_interval), matching the paper's design.
package predictor

import (
	"math"
	"sync"

	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/telemetry"
)

// Target indexes the three predicted quantities.
type Target int

const (
	TargetCompress Target = iota
	TargetDecompress
	TargetRatio
	numTargets
)

// The design is the saturated (type x dist) interaction: 15 cell dummies
// plus the model intercept for the (binary, uniform) baseline cell. An
// additive main-effects model cannot represent per-cell costs exactly
// (compressibility does not decompose into type + distribution effects),
// which systematically biased baseline-cell predictions; the saturated
// design fits every profiled cell while remaining a linear model the RLS
// feedback can update.
const numFeatures = 15

func features(dt stats.DataType, dist stats.Dist) []float64 {
	f := make([]float64, numFeatures)
	cell := int(dt)*4 + int(dist)
	if cell > 0 && cell <= numFeatures {
		f[cell-1] = 1
	}
	return f
}

type modelKey struct {
	codec  string
	target Target
}

type observation struct {
	dt     stats.DataType
	dist   stats.Dist
	codec  string
	actual seed.CodecCost
	run    []seed.CodecCost // batched feedback: a run of same-cell costs (actual unused)
}

// CCP is the predictor. Safe for concurrent use.
type CCP struct {
	mu        sync.Mutex
	models    map[modelKey]*stats.RLS
	interval  int
	pending   []observation
	pendingN  int // observations queued (runs count their length)
	feedbacks int // total observations absorbed
	queued    int // total observations received

	// Telemetry (nil when off). relErr histograms are created lazily per
	// (codec, target) under mu; lookups on the feedback path are batched
	// by the interval so the map access is off the per-op hot path.
	reg        *telemetry.Registry
	relErr     map[modelKey]*telemetry.Histogram
	tmQueued   *telemetry.Counter
	tmAbsorbed *telemetry.Counter
	tmPending  *telemetry.Gauge
	tmBatch    *telemetry.Histogram
}

// SetTelemetry registers the CCP's instruments on reg: feedback queue
// depth and absorption counters, flush batch sizes (the feedback lag in
// operations), and per-codec prediction relative-error histograms.
// Must be called before the CCP is shared between goroutines; a nil
// registry leaves telemetry off.
func (c *CCP) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.reg = reg
	c.relErr = make(map[modelKey]*telemetry.Histogram)
	c.tmQueued = reg.Counter("hc_ccp_feedback_queued_total", "actual-cost observations received")
	c.tmAbsorbed = reg.Counter("hc_ccp_feedback_absorbed_total", "observations folded into the models")
	c.tmPending = reg.Gauge("hc_ccp_feedback_pending", "observations waiting for the next batched model update")
	c.tmBatch = reg.Histogram("hc_ccp_feedback_batch_ops", "operations per feedback flush (the model-update lag)", telemetry.DepthBuckets)
}

var targetNames = [...]string{"compress", "decompress", "ratio"}

// observeRelErr records |predicted-actual|/actual for one target before
// the observation is folded in — the one-step-ahead error behind the
// paper's accuracy (R2) claim, sliced per codec and target. Callers must
// hold c.mu.
func (c *CCP) observeRelErr(k modelKey, f []float64, actual float64) {
	if c.reg == nil || actual <= 0 {
		return
	}
	m, ok := c.models[k]
	if !ok || m.Seen() == 0 {
		return // first observation: no prediction existed to grade
	}
	h, ok := c.relErr[k]
	if !ok {
		h = c.reg.Histogram("hc_ccp_pred_relerr", "one-step-ahead relative prediction error",
			telemetry.RelErrBuckets,
			telemetry.L("codec", k.codec), telemetry.L("target", targetNames[k.target]))
		c.relErr[k] = h
	}
	h.Observe(math.Abs(m.Predict(f)-actual) / actual)
}

// New builds a CCP from a seed: every table entry is folded into the
// regression models as an observation (the "initial seed" bootstrap).
func New(s *seed.Seed) *CCP {
	c := &CCP{
		models:   make(map[modelKey]*stats.RLS),
		interval: s.FeedbackInterval,
	}
	if c.interval <= 0 {
		c.interval = seed.DefaultFeedbackInterval
	}
	for _, dt := range stats.AllTypes() {
		for _, dist := range stats.AllDists() {
			for _, name := range s.CodecNames() {
				if cost, ok := s.Costs[seed.Key(dt, dist, name)]; ok && cost.Valid() {
					c.absorb(observation{dt: dt, dist: dist, codec: name, actual: cost})
				}
			}
		}
	}
	// Seed-derived residuals should not count against runtime accuracy.
	for _, m := range c.models {
		m.ResetAccuracy()
	}
	return c
}

func (c *CCP) model(name string, t Target) *stats.RLS {
	k := modelKey{name, t}
	m, ok := c.models[k]
	if !ok {
		// Slight forgetting lets the model track workload drift — the
		// "reinforcement" part of the loop.
		m = stats.NewRLS(numFeatures, 0.995)
		c.models[k] = m
	}
	return m
}

// absorb folds one observation into the models. Partial tuples are
// allowed: a write-path feedback knows compression speed and ratio but not
// decompression speed (that arrives with the read), so non-positive
// components are skipped.
func (c *CCP) absorb(o observation) {
	f := features(o.dt, o.dist)
	if o.actual.CompressMBps > 0 {
		c.observeRelErr(modelKey{o.codec, TargetCompress}, f, o.actual.CompressMBps)
		c.model(o.codec, TargetCompress).Observe(f, o.actual.CompressMBps)
	}
	if o.actual.DecompressMBps > 0 {
		c.observeRelErr(modelKey{o.codec, TargetDecompress}, f, o.actual.DecompressMBps)
		c.model(o.codec, TargetDecompress).Observe(f, o.actual.DecompressMBps)
	}
	if o.actual.Ratio >= 1 {
		c.observeRelErr(modelKey{o.codec, TargetRatio}, f, o.actual.Ratio)
		c.model(o.codec, TargetRatio).Observe(f, o.actual.Ratio)
	}
	c.feedbacks++
	c.tmAbsorbed.Inc()
}

// Predict returns the ECC for a (type, dist, codec) combination. ok is
// false when the codec has never been seen (no seed entry, no feedback).
func (c *CCP) Predict(dt stats.DataType, dist stats.Dist, codecName string) (seed.CodecCost, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mc, ok := c.models[modelKey{codecName, TargetCompress}]
	if !ok || mc.Seen() == 0 {
		return seed.CodecCost{}, false
	}
	f := features(dt, dist)
	cost := seed.CodecCost{
		CompressMBps:   clamp(mc.Predict(f), 0.1, 1e6),
		DecompressMBps: 0.1,
		Ratio:          1,
	}
	if md, ok := c.models[modelKey{codecName, TargetDecompress}]; ok {
		cost.DecompressMBps = clamp(md.Predict(f), 0.1, 1e6)
	}
	if mr, ok := c.models[modelKey{codecName, TargetRatio}]; ok {
		cost.Ratio = clamp(mr.Predict(f), 1, 1e4)
	}
	return cost, true
}

// Feedback queues an actual measured cost. Models update only when the
// batch reaches the configured interval.
func (c *CCP) Feedback(dt stats.DataType, dist stats.Dist, codecName string, actual seed.CodecCost) {
	if actual.CompressMBps <= 0 && actual.DecompressMBps <= 0 && actual.Ratio < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queued++
	c.tmQueued.Inc()
	c.pending = append(c.pending, observation{dt: dt, dist: dist, codec: codecName, actual: actual})
	c.pendingN++
	c.tmPending.Set(float64(c.pendingN))
	if c.pendingN >= c.interval {
		c.flushLocked()
	}
}

// FeedbackRun queues a run of measured costs for one (type, dist, codec)
// cell — the batch write path produces one run per codec per group. The
// run is absorbed with RLS's collapsed same-regressor update, so a batch
// costs one covariance update per model instead of one per observation.
func (c *CCP) FeedbackRun(dt stats.DataType, dist stats.Dist, codecName string, actuals []seed.CodecCost) {
	n := 0
	for _, a := range actuals {
		if a.CompressMBps > 0 || a.DecompressMBps > 0 || a.Ratio >= 1 {
			n++
		}
	}
	if n == 0 {
		return
	}
	run := make([]seed.CodecCost, 0, n)
	for _, a := range actuals {
		if a.CompressMBps > 0 || a.DecompressMBps > 0 || a.Ratio >= 1 {
			run = append(run, a)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queued += n
	c.tmQueued.Add(int64(n))
	c.pending = append(c.pending, observation{dt: dt, dist: dist, codec: codecName, run: run})
	c.pendingN += n
	c.tmPending.Set(float64(c.pendingN))
	if c.pendingN >= c.interval {
		c.flushLocked()
	}
}

// Flush forces any pending feedback into the models (called at
// finalization before the seed is written back).
func (c *CCP) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
}

func (c *CCP) flushLocked() {
	if c.pendingN > 0 {
		c.tmBatch.Observe(float64(c.pendingN))
	}
	for _, o := range c.pending {
		if o.run != nil {
			c.absorbRun(o)
		} else {
			c.absorb(o)
		}
	}
	c.pending = c.pending[:0]
	c.pendingN = 0
	c.tmPending.Set(0)
}

// absorbRun folds a same-cell run into the models. With telemetry on it
// falls back to per-observation absorption so the relative-error
// histograms grade every one-step-ahead prediction; with telemetry off
// it uses the collapsed same-regressor RLS update.
func (c *CCP) absorbRun(o observation) {
	if c.reg != nil {
		for _, a := range o.run {
			c.absorb(observation{dt: o.dt, dist: o.dist, codec: o.codec, actual: a})
		}
		return
	}
	f := features(o.dt, o.dist)
	var comp, dec, ratio []float64
	for _, a := range o.run {
		if a.CompressMBps > 0 {
			comp = append(comp, a.CompressMBps)
		}
		if a.DecompressMBps > 0 {
			dec = append(dec, a.DecompressMBps)
		}
		if a.Ratio >= 1 {
			ratio = append(ratio, a.Ratio)
		}
	}
	if len(comp) > 0 {
		c.model(o.codec, TargetCompress).ObserveRun(f, comp)
	}
	if len(dec) > 0 {
		c.model(o.codec, TargetDecompress).ObserveRun(f, dec)
	}
	if len(ratio) > 0 {
		c.model(o.codec, TargetRatio).ObserveRun(f, ratio)
	}
	c.feedbacks += len(o.run)
}

// R2 reports the running one-step-ahead R^2 averaged across models that
// have absorbed runtime feedback — the accuracy metric of Fig. 4(b).
func (c *CCP) R2() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum float64
	n := 0
	for _, m := range c.models {
		if m.N() > 0 {
			sum += m.R2()
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Stats reports (queued, absorbed) feedback counts.
func (c *CCP) Stats() (queued, absorbed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued, c.feedbacks
}

// SnapshotCoef exports model coefficients for seed write-back, keyed as
// "codec/target".
func (c *CCP) SnapshotCoef() map[string][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]float64, len(c.models))
	names := [...]string{"compress", "decompress", "ratio"}
	for k, m := range c.models {
		out[k.codec+"/"+names[k.target]] = m.Coef()
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
