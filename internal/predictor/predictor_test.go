package predictor

import (
	"math"
	"testing"

	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

func builtinCCP() *CCP {
	return New(seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB)))
}

func TestPredictFromSeed(t *testing.T) {
	c := builtinCCP()
	cost, ok := c.Predict(stats.TypeText, stats.Normal, "lz4")
	if !ok {
		t.Fatal("no prediction for seeded codec")
	}
	if !cost.Valid() {
		t.Fatalf("invalid prediction %+v", cost)
	}
	// The additive model must keep the seeded spectrum ordering.
	bsc, _ := c.Predict(stats.TypeText, stats.Normal, "bsc")
	if bsc.CompressMBps >= cost.CompressMBps {
		t.Errorf("bsc speed %v >= lz4 speed %v", bsc.CompressMBps, cost.CompressMBps)
	}
	if bsc.Ratio <= cost.Ratio {
		t.Errorf("bsc ratio %v <= lz4 ratio %v", bsc.Ratio, cost.Ratio)
	}
}

func TestPredictUnknownCodec(t *testing.T) {
	c := builtinCCP()
	if _, ok := c.Predict(stats.TypeText, stats.Normal, "zstd"); ok {
		t.Fatal("prediction for unseeded codec")
	}
}

func TestFeedbackBatching(t *testing.T) {
	s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	s.FeedbackInterval = 10
	c := New(s)
	_, before := c.Stats()
	actual := seed.CodecCost{CompressMBps: 500, DecompressMBps: 900, Ratio: 3}
	for i := 0; i < 9; i++ {
		c.Feedback(stats.TypeInt, stats.Gamma, "lz4", actual)
	}
	if q, a := c.Stats(); q != 9 || a != before {
		t.Fatalf("feedback absorbed early: queued=%d absorbed=%d (before=%d)", q, a, before)
	}
	c.Feedback(stats.TypeInt, stats.Gamma, "lz4", actual)
	if _, a := c.Stats(); a != before+10 {
		t.Fatalf("batch not absorbed at interval: %d", a)
	}
}

// TestFeedbackRunMatchesSequential: a run queued through FeedbackRun
// must land the models where the same costs fed one-by-one land them,
// and runs must count observation-by-observation toward the flush
// interval.
func TestFeedbackRunMatchesSequential(t *testing.T) {
	mk := func() *CCP {
		s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
		s.FeedbackInterval = 8
		return New(s)
	}
	seqC, runC := mk(), mk()
	_, before := runC.Stats() // seed bootstrap absorbs count too
	costs := make([]seed.CodecCost, 24)
	for i := range costs {
		costs[i] = seed.CodecCost{CompressMBps: 300 + float64(i), Ratio: 2.5}
	}
	for _, a := range costs {
		seqC.Feedback(stats.TypeInt, stats.Gamma, "lz4", a)
	}
	runC.FeedbackRun(stats.TypeInt, stats.Gamma, "lz4", costs)
	if _, a := runC.Stats(); a != before+24 {
		t.Fatalf("run of 24 over interval 8 absorbed %d (baseline %d)", a, before)
	}
	sp, _ := seqC.Predict(stats.TypeInt, stats.Gamma, "lz4")
	rp, _ := runC.Predict(stats.TypeInt, stats.Gamma, "lz4")
	if math.Abs(sp.CompressMBps-rp.CompressMBps) > 1e-6*sp.CompressMBps ||
		math.Abs(sp.Ratio-rp.Ratio) > 1e-6*sp.Ratio {
		t.Errorf("run prediction %+v differs from sequential %+v", rp, sp)
	}

	// Invalid entries are dropped, not absorbed.
	c := mk()
	c.FeedbackRun(stats.TypeInt, stats.Gamma, "lz4", []seed.CodecCost{{}, {}})
	if q, _ := c.Stats(); q != 0 {
		t.Errorf("invalid run entries queued: %d", q)
	}
}

func TestFeedbackCorrectsModel(t *testing.T) {
	// Seed says lz4 compresses int/gamma at ~900 MB/s; the "real system"
	// disagrees (300 MB/s). After feedback the prediction must move to
	// the observed value — the 83% -> 96% behaviour of §IV-D.
	s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	s.FeedbackInterval = 8
	c := New(s)
	before, _ := c.Predict(stats.TypeInt, stats.Gamma, "lz4")
	for i := 0; i < 200; i++ {
		c.Feedback(stats.TypeInt, stats.Gamma, "lz4",
			seed.CodecCost{CompressMBps: 300, DecompressMBps: 800, Ratio: 2.5})
	}
	c.Flush()
	after, _ := c.Predict(stats.TypeInt, stats.Gamma, "lz4")
	if math.Abs(after.CompressMBps-300) > 60 {
		t.Errorf("prediction %.0f MB/s, want ~300 (seed said %.0f)", after.CompressMBps, before.CompressMBps)
	}
	if math.Abs(after.Ratio-2.5) > 0.5 {
		t.Errorf("ratio %v, want ~2.5", after.Ratio)
	}
}

func TestPartialFeedback(t *testing.T) {
	s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	s.FeedbackInterval = 1
	c := New(s)
	// Decompress-only feedback (read path) must not corrupt the
	// compression-speed model.
	before, _ := c.Predict(stats.TypeText, stats.Uniform, "snappy")
	for i := 0; i < 200; i++ {
		c.Feedback(stats.TypeText, stats.Uniform, "snappy", seed.CodecCost{DecompressMBps: 123})
	}
	after, _ := c.Predict(stats.TypeText, stats.Uniform, "snappy")
	if math.Abs(after.CompressMBps-before.CompressMBps) > 1 {
		t.Errorf("compress model drifted from decompress-only feedback: %v -> %v",
			before.CompressMBps, after.CompressMBps)
	}
	if math.Abs(after.DecompressMBps-123) > 50 {
		t.Errorf("decompress model did not converge: %v", after.DecompressMBps)
	}
	// Entirely empty feedback is ignored.
	q1, _ := c.Stats()
	c.Feedback(stats.TypeText, stats.Uniform, "snappy", seed.CodecCost{})
	if q2, _ := c.Stats(); q2 != q1 {
		t.Error("empty feedback queued")
	}
}

func TestR2ImprovesWithFeedback(t *testing.T) {
	s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	s.FeedbackInterval = 4
	c := New(s)
	// Consistent observations drive the running R^2 up.
	for i := 0; i < 400; i++ {
		c.Feedback(stats.TypeFloat, stats.Normal, "snappy",
			seed.CodecCost{CompressMBps: 700 + float64(i%10), DecompressMBps: 1500, Ratio: 1.4})
	}
	c.Flush()
	if r2 := c.R2(); r2 < 0.80 {
		t.Errorf("R2 after consistent feedback = %.3f, want high", r2)
	}
}

func TestPredictionsClamped(t *testing.T) {
	s := seed.Builtin(tier.Ares(tier.GB, tier.GB, tier.GB, tier.GB))
	s.FeedbackInterval = 1
	c := New(s)
	// Hammer with feedback claiming ratio 0.0001 speeds — the clamp must
	// keep predictions physical.
	for i := 0; i < 100; i++ {
		c.Feedback(stats.TypeBinary, stats.Uniform, "rle",
			seed.CodecCost{CompressMBps: 0.001, DecompressMBps: 0.001, Ratio: 1})
	}
	cost, _ := c.Predict(stats.TypeBinary, stats.Uniform, "rle")
	if cost.CompressMBps < 0.1 || cost.Ratio < 1 {
		t.Errorf("unclamped prediction: %+v", cost)
	}
}

func TestSnapshotCoef(t *testing.T) {
	c := builtinCCP()
	coef := c.SnapshotCoef()
	if len(coef) == 0 {
		t.Fatal("no coefficients")
	}
	if v, ok := coef["lz4/ratio"]; !ok || len(v) != numFeatures+1 {
		t.Errorf("lz4/ratio coef: %v", v)
	}
}

func TestFlushEmptyIsSafe(t *testing.T) {
	c := builtinCCP()
	c.Flush()
	c.Flush()
}

func BenchmarkPredict(b *testing.B) {
	c := builtinCCP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Predict(stats.TypeFloat, stats.Gamma, "snappy")
	}
}

func BenchmarkFeedback(b *testing.B) {
	c := builtinCCP()
	actual := seed.CodecCost{CompressMBps: 500, DecompressMBps: 900, Ratio: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Feedback(stats.TypeInt, stats.Gamma, "lz4", actual)
	}
}
