// Command hcprofiler is the HCompress Profiler (HP) from §IV-A of the
// paper: it benchmarks every compression library against a variety of
// input data (all type x distribution combinations), discovers the storage
// hierarchy's performance signature, and writes the JSON seed that
// bootstraps the library's predictive models.
//
// Usage:
//
//	hcprofiler -o seed.json
//	hcprofiler -o seed.json -bufsize 1048576 -repeats 3
//	hcprofiler -o seed.json -codecs lz4,snappy,zlib
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

func main() {
	var (
		out     = flag.String("o", "hcompress_seed.json", "output seed path")
		bufSize = flag.Int("bufsize", 256<<10, "probe buffer size in bytes")
		repeats = flag.Int("repeats", 1, "timing repeats per combination")
		codecs  = flag.String("codecs", "", "comma-separated codec subset (default: all)")
		ramGB   = flag.Int64("ram-gb", 64, "system signature: RAM tier capacity")
		nvmeGB  = flag.Int64("nvme-gb", 192, "system signature: NVMe tier capacity")
		bbGB    = flag.Int64("bb-gb", 2048, "system signature: burst buffer capacity")
		pfsGB   = flag.Int64("pfs-gb", 1<<20, "system signature: PFS capacity")
		quiet   = flag.Bool("q", false, "suppress the summary table")
	)
	flag.Parse()

	hier := tier.Ares(*ramGB*tier.GB, *nvmeGB*tier.GB, *bbGB*tier.GB, *pfsGB*tier.GB)
	opts := seed.ProfileOptions{BufSize: *bufSize, Repeats: *repeats}
	if *codecs != "" {
		opts.Codecs = strings.Split(*codecs, ",")
	}
	fmt.Fprintf(os.Stderr, "profiling %d-byte probes, %d repeat(s)...\n", opts.BufSize, *repeats)
	s, err := seed.Generate(hier, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcprofiler:", err)
		os.Exit(1)
	}
	if err := s.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "hcprofiler:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d cost entries to %s\n", len(s.Costs), *out)
	if *quiet {
		return
	}

	// Summary: per codec, averaged over distributions, one line per type.
	fmt.Printf("%-9s %-7s %12s %14s %8s\n", "codec", "type", "comp MB/s", "decomp MB/s", "ratio")
	names := s.CodecNames()
	sort.Strings(names)
	for _, name := range names {
		for _, dt := range stats.AllTypes() {
			var c seed.CodecCost
			n := 0
			for _, d := range stats.AllDists() {
				if v, ok := s.Costs[seed.Key(dt, d, name)]; ok {
					c.CompressMBps += v.CompressMBps
					c.DecompressMBps += v.DecompressMBps
					c.Ratio += v.Ratio
					n++
				}
			}
			if n == 0 {
				continue
			}
			fmt.Printf("%-9s %-7s %12.1f %14.1f %8.2f\n",
				name, dt, c.CompressMBps/float64(n), c.DecompressMBps/float64(n), c.Ratio/float64(n))
		}
	}
}
