// Shard-scaling and service-mode throughput harnesses.
//
//	hcbench -shards 4 -parallel 8          # mixed workload through a 4-shard router
//	hcbench -service -shards 2 -parallel 4 # same workload over loopback HTTP
//	hcbench -shardsweep BENCH_shards.json  # ops/s trajectory at 1/2/4/8 shards
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"hcompress"
	"hcompress/internal/service"
	"hcompress/internal/stats"
	"hcompress/internal/workload"
)

// benchTarget is the operation surface the mixed-workload driver needs.
// Both *hcompress.Client (the single-pipeline facade) and
// *hcompress.Router (N key-routed shards) satisfy it, so one loop
// measures both shapes.
type benchTarget interface {
	Compress(t hcompress.Task) (*hcompress.Report, error)
	CompressBatch(tasks []hcompress.Task) ([]*hcompress.Report, error)
	Decompress(key string) (*hcompress.Report, error)
	DecompressBatch(keys []string) ([]*hcompress.Report, error)
	Delete(key string) error
	WriteMetrics(w io.Writer) error
	Snapshot() hcompress.MetricsSnapshot
	SlowOps() []hcompress.SlowOpRecord
	CacheStats() hcompress.CacheStats
	Close() error
}

// mixedResult aggregates one driveMixed run.
type mixedResult struct {
	wall      float64 // seconds
	writeOps  int
	readOps   int
	writeLats [][]time.Duration
	readLats  [][]time.Duration
}

func (r mixedResult) opsPerSec() float64 { return float64(r.writeOps+r.readOps) / r.wall }
func (r mixedResult) mbPerSec(taskSize int) float64 {
	return float64(r.writeOps+r.readOps) * float64(taskSize) / r.wall / 1e6
}

// driveMixed runs the mixed workload: n goroutines, each performing
// tasksPer operations on its own key space. mix selects the write
// fraction (reads replay previously written keys); batch groups
// submissions through the CompressBatch/DecompressBatch APIs. Each
// goroutine keeps a sliding window of live keys and deletes the oldest
// as it advances, so occupancy stays flat without deletes dominating
// the op stream.
//
// zipf selects the read-key distribution: 0 keeps the historical fixed
// middle-of-window pick; s > 0 draws a Zipf(s) rank over the live window
// with rank 0 = the most recently written key, so a skewed read stream
// concentrates on a small hot set the way real reread traffic does.
func driveMixed(c benchTarget, n, tasksPer, taskSize, batch int, mix, zipf float64) (mixedResult, error) {
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, taskSize, 3)

	const window = 64 // live keys per goroutine before the oldest is deleted
	var wg sync.WaitGroup
	errs := make([]error, n)
	res := mixedResult{
		writeLats: make([][]time.Duration, n),
		readLats:  make([][]time.Duration, n),
	}
	writeOps := make([]int, n)
	readOps := make([]int, n)
	begin := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var live []string // keys written and not yet deleted, oldest first
			var pendW []hcompress.Task
			var pendR []string
			var z *workload.Zipf
			if zipf > 0 {
				z = workload.NewZipf(window, zipf, int64(g)+1)
			}
			next := 0 // key sequence number
			flushW := func() error {
				if len(pendW) == 0 {
					return nil
				}
				op := time.Now()
				if batch <= 1 {
					if _, err := c.Compress(pendW[0]); err != nil {
						return err
					}
				} else if _, err := c.CompressBatch(pendW); err != nil {
					return err
				}
				res.writeLats[g] = append(res.writeLats[g], time.Since(op))
				writeOps[g] += len(pendW)
				pendW = pendW[:0]
				return nil
			}
			flushR := func() error {
				if len(pendR) == 0 {
					return nil
				}
				op := time.Now()
				if batch <= 1 {
					rep, err := c.Decompress(pendR[0])
					if err != nil {
						return err
					}
					rep.Release()
				} else {
					reps, err := c.DecompressBatch(pendR)
					if err != nil {
						return err
					}
					for _, rep := range reps {
						rep.Release()
					}
				}
				res.readLats[g] = append(res.readLats[g], time.Since(op))
				readOps[g] += len(pendR)
				pendR = pendR[:0]
				return nil
			}
			writes := 0
			for i := 0; i < tasksPer; i++ {
				if float64(writes) < mix*float64(i+1) || len(live) == 0 {
					key := fmt.Sprintf("p%d-%d", g, next)
					next++
					writes++
					pendW = append(pendW, hcompress.Task{Key: key, Data: data})
					live = append(live, key)
					if len(pendW) >= batch {
						if errs[g] = flushW(); errs[g] != nil {
							return
						}
					}
					// Slide the window: drop the oldest key. Flush only if
					// that key is still a pending (unflushed) write or read —
					// with window >> batch this almost never fires, so batches
					// stay full.
					if len(live) > window {
						old := live[0]
						live = live[1:]
						for _, t := range pendW {
							if t.Key == old {
								if errs[g] = flushW(); errs[g] != nil {
									return
								}
								break
							}
						}
						for _, k := range pendR {
							if k == old {
								if errs[g] = flushW(); errs[g] != nil { // reads may target unflushed writes
									return
								}
								if errs[g] = flushR(); errs[g] != nil {
									return
								}
								break
							}
						}
						if errs[g] = c.Delete(old); errs[g] != nil {
							return
						}
					}
				} else {
					// Read a recently written key: Zipf-ranked from the newest
					// end of the window when skew is requested, the fixed
					// middle key otherwise.
					key := live[len(live)/2]
					if z != nil {
						idx := len(live) - 1 - z.Next()
						if idx < 0 {
							idx = 0
						}
						key = live[idx]
					}
					pendR = append(pendR, key)
					if len(pendR) >= batch {
						if errs[g] = flushW(); errs[g] != nil { // reads may target unflushed writes
							return
						}
						if errs[g] = flushR(); errs[g] != nil {
							return
						}
					}
				}
			}
			if errs[g] = flushW(); errs[g] != nil {
				return
			}
			errs[g] = flushR()
		}(g)
	}
	wg.Wait()
	res.wall = time.Since(begin).Seconds()
	for g, err := range errs {
		if err != nil {
			return res, fmt.Errorf("goroutine %d: %w", g, err)
		}
	}
	for g := 0; g < n; g++ {
		res.writeOps += writeOps[g]
		res.readOps += readOps[g]
	}
	return res, nil
}

// orDefault substitutes def when the flag was left at zero.
func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// sweepPoint is one row of the BENCH_shards.json trajectory.
type sweepPoint struct {
	Shards      int     `json:"shards"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
	WriteOps    int     `json:"write_ops"`
	ReadOps     int     `json:"read_ops"`
}

// sweepReport is the full BENCH_shards.json document.
type sweepReport struct {
	Comment    string       `json:"comment"`
	Date       string       `json:"date"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Goroutines int          `json:"goroutines"`
	TasksPerG  int          `json:"tasks_per_goroutine"`
	TaskBytes  int          `json:"task_bytes"`
	Batch      int          `json:"batch"`
	Mix        float64      `json:"mix"`
	Points     []sweepPoint `json:"points"`
}

// runShardSweep measures aggregate mixed-workload throughput at shard
// counts 1, 2, 4 and 8 — a fresh router per point, same workload — and
// writes the trajectory as JSON to path ('-' for stdout). Every shard
// count runs three times with the repetitions interleaved (1,2,4,8,
// 1,2,4,8, ...) so slow host drift hits all counts alike; the best run
// per count is kept, the standard guard against noisy-neighbor
// interference. Each best point is printed as the sweep finishes.
func runShardSweep(path string, goroutines, tasksPer, taskSize, batch int, mix float64) error {
	const reps = 5
	counts := []int{1, 2, 4, 8}
	rep := sweepReport{
		Comment: "hcbench -shardsweep: aggregate ops/s of the mixed workload vs router shard count, best of 5 interleaved reps; " +
			"single host, per-shard pipelines, scaling reflects added parallel capacity — on a 1-vCPU host (GOMAXPROCS=1) no true speedup is physically available and the trajectory mainly bounds the router's overhead",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Goroutines: goroutines,
		TasksPerG:  tasksPer,
		TaskBytes:  taskSize,
		Batch:      batch,
		Mix:        mix,
	}
	best := make(map[int]sweepPoint, len(counts))
	for r := 0; r < reps; r++ {
		for _, n := range counts {
			rt, err := hcompress.NewRouter(hcompress.Config{}, n)
			if err != nil {
				return err
			}
			res, err := driveMixed(rt, goroutines, tasksPer, taskSize, batch, mix, 0)
			cerr := rt.Close()
			if err != nil {
				return fmt.Errorf("shards=%d: %w", n, err)
			}
			if cerr != nil {
				return fmt.Errorf("shards=%d close: %w", n, cerr)
			}
			pt := sweepPoint{
				Shards:      n,
				OpsPerSec:   res.opsPerSec(),
				MBPerSec:    res.mbPerSec(taskSize),
				WallSeconds: res.wall,
				WriteOps:    res.writeOps,
				ReadOps:     res.readOps,
			}
			fmt.Printf("rep %d shards=%d  wall %.3fs  %.1f ops/s\n", r+1, n, pt.WallSeconds, pt.OpsPerSec)
			if cur, ok := best[n]; !ok || pt.OpsPerSec > cur.OpsPerSec {
				best[n] = pt
			}
		}
	}
	for _, n := range counts {
		pt := best[n]
		rep.Points = append(rep.Points, pt)
		fmt.Printf("best shards=%d  wall %.3fs  %.1f ops/s  %.1f MB/s (%d writes, %d reads)\n",
			n, pt.WallSeconds, pt.OpsPerSec, pt.MBPerSec, pt.WriteOps, pt.ReadOps)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runService runs the mixed workload over loopback HTTP: a router with
// the requested shard count behind the service front-end, one tenant per
// driver goroutine, writes posted to /v1/compress and reads to
// /v1/decompress. It reports aggregate ops/s including the full
// JSON/base64/HTTP round-trip cost, so comparing against -shards shows
// the service-layer overhead directly.
func runService(shards, goroutines, tasksPer, taskSize int, mix float64, slo bool) error {
	rcfg := hcompress.Config{}
	if slo {
		rcfg.EnableTelemetry = true
		rcfg.SlowOpThreshold = 50 * time.Millisecond
		// Sampling is per shard, so size the period to the share of the
		// workload each shard will see — a smoke run of a few dozen ops
		// must still land samples in every shard's ring.
		rcfg.SlowOpSampleEvery = max(1, goroutines*tasksPer/(shards*4))
	}
	r, err := hcompress.NewRouter(rcfg, shards)
	if err != nil {
		return err
	}
	defer r.Close()
	// Benchmark tenants run unthrottled and unmetered: QuotaBytes < 0
	// lifts the byte quota, Burst < 0 disables admission control, so the
	// numbers measure the data path, not the limiter.
	scfg := service.Config{EnableTelemetry: slo}
	for g := 0; g < goroutines; g++ {
		scfg.Tenants = append(scfg.Tenants, service.TenantSpec{
			Name: fmt.Sprintf("bench%d", g), QuotaBytes: -1, Burst: -1,
		})
	}
	srv, err := service.New(r, scfg)
	if err != nil {
		return err
	}
	addr, shutdown, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer shutdown()
	base := "http://" + addr

	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, taskSize, 3)
	const window = 64
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	writeLats := make([][]time.Duration, goroutines)
	readLats := make([][]time.Duration, goroutines)
	writeOps := make([]int, goroutines)
	readOps := make([]int, goroutines)
	begin := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hc := &http.Client{}
			tenant := fmt.Sprintf("bench%d", g)
			post := func(path string, req, resp any) error {
				body, err := json.Marshal(req)
				if err != nil {
					return err
				}
				hr, err := hc.Post(base+path, "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				defer hr.Body.Close()
				if hr.StatusCode != http.StatusOK {
					var e service.ErrorResponse
					_ = json.NewDecoder(hr.Body).Decode(&e)
					return fmt.Errorf("%s: HTTP %d: %s (%s)", path, hr.StatusCode, e.Error, e.Code)
				}
				return json.NewDecoder(hr.Body).Decode(resp)
			}
			var live []string
			next, writes := 0, 0
			for i := 0; i < tasksPer; i++ {
				if float64(writes) < mix*float64(i+1) || len(live) == 0 {
					key := fmt.Sprintf("k%d", next)
					next++
					writes++
					op := time.Now()
					var cr service.CompressResponse
					if errs[g] = post("/v1/compress", service.CompressRequest{
						Tenant: tenant, Key: key, Data: data,
					}, &cr); errs[g] != nil {
						return
					}
					writeLats[g] = append(writeLats[g], time.Since(op))
					writeOps[g]++
					live = append(live, key)
					if len(live) > window {
						old := live[0]
						live = live[1:]
						var dr struct{}
						if errs[g] = post("/v1/delete", service.DeleteRequest{Tenant: tenant, Key: old}, &dr); errs[g] != nil {
							return
						}
					}
				} else {
					key := live[len(live)/2]
					op := time.Now()
					var dr service.DecompressResponse
					if errs[g] = post("/v1/decompress", service.DecompressRequest{
						Tenant: tenant, Key: key,
					}, &dr); errs[g] != nil {
						return
					}
					if len(dr.Data) != taskSize {
						errs[g] = fmt.Errorf("read %q: got %d bytes, want %d", key, len(dr.Data), taskSize)
						return
					}
					readLats[g] = append(readLats[g], time.Since(op))
					readOps[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(begin).Seconds()
	for g, err := range errs {
		if err != nil {
			return fmt.Errorf("tenant bench%d: %w", g, err)
		}
	}
	var wOps, rOps int
	for g := 0; g < goroutines; g++ {
		wOps += writeOps[g]
		rOps += readOps[g]
	}
	ops := wOps + rOps
	fmt.Printf("service addr=%s shards=%d tenants=%d ops/tenant=%d tasksize=%d mix=%.2f\n",
		addr, shards, goroutines, tasksPer, taskSize, mix)
	fmt.Printf("wall %.3fs  %.1f ops/s  %.1f MB/s aggregate over HTTP (%d writes, %d reads)\n",
		wall, float64(ops)/wall, float64(ops)*float64(taskSize)/wall/1e6, wOps, rOps)
	printQuantiles("write", 1, writeLats)
	printQuantiles("read", 1, readLats)
	if slo {
		// CI smoke surface: the SLO report over the wire and the slow-op
		// log with stage breakdowns must both be populated.
		var sr service.SLOResponse
		hr, err := http.Get(base + "/v1/slo")
		if err != nil {
			return err
		}
		err = json.NewDecoder(hr.Body).Decode(&sr)
		hr.Body.Close()
		if err != nil {
			return err
		}
		fmt.Printf("--- /v1/slo (%d series) ---\n", len(sr.SLOs))
		for _, s := range sr.SLOs {
			fmt.Printf("tenant=%-10s class=%-10s good=%d/%d ratio=%.4f burn=%.3f (objective %.4f, target %.0fms, window %.0fs)\n",
				s.Tenant, s.Class, s.Good, s.Total, s.GoodRatio, s.BurnRate,
				s.Objective, s.LatencyTarget*1e3, s.WindowSeconds)
		}
		if len(sr.SLOs) == 0 {
			return fmt.Errorf("-slo: /v1/slo returned no series after %d ops", ops)
		}
		printStageAttribution(r.Snapshot())
		slow := r.SlowOps()
		printTopSlowOps(slow, 10)
		if len(slow) == 0 {
			return fmt.Errorf("-slo: slow-op log empty after %d ops (SlowOpSampleEvery should have sampled)", ops)
		}
	}
	return nil
}
