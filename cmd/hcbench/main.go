// Command hcbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md for the experiment index and paper-vs-measured
// record).
//
// Usage:
//
//	hcbench -exp fig5 -scale 64
//	hcbench -exp all -scale 64
//	hcbench -exp fig7 -scale 32 -profile    # measure codecs first
//	hcbench -parallel 8                     # concurrent-client throughput
//
// -scale divides the paper's rank counts, tier capacities, bandwidths and
// lane counts by the same factor, preserving per-rank behaviour; -scale 1
// replays the paper's exact parameters (slow). With -profile, the truth
// cost table is measured by running this build's codecs instead of using
// the calibrated builtin table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hcompress"
	"hcompress/internal/experiments"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/tier"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig3|fig4a|fig4b|fig5|fig6|fig7|fig8|all")
		scale    = flag.Int("scale", 64, "divide paper scale by this factor (1 = full scale)")
		profile  = flag.Bool("profile", false, "profile this build's codecs for the truth table (slower start)")
		seedOut  = flag.String("seed", "", "optional path to write the truth seed as JSON")
		parallel = flag.Int("parallel", 0, "instead of experiments: drive N goroutines through one client and print aggregate throughput")
		tasks    = flag.Int("tasks", 64, "with -parallel: write+read+delete cycles per goroutine")
		taskSize = flag.Int("tasksize", 1<<20, "with -parallel/-n: bytes per task")
		cycles   = flag.Int("n", 0, "total write+read+delete cycles through one client (implies the throughput harness; default -parallel 1)")
		metrics  = flag.Bool("metrics", false, "with the throughput harness: enable telemetry, print per-op latency quantiles, and dump the Prometheus exposition at exit")
	)
	flag.Parse()
	var err error
	switch {
	case *parallel < 0:
		err = fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	case *cycles < 0:
		err = fmt.Errorf("-n must be >= 1, got %d", *cycles)
	case *parallel > 0 || *cycles > 0:
		p := *parallel
		if p == 0 {
			p = 1
		}
		tasksPer := *tasks
		if *cycles > 0 {
			tasksPer = (*cycles + p - 1) / p
		}
		err = runParallel(p, tasksPer, *taskSize, *metrics)
	default:
		err = run(*exp, *scale, *profile, *seedOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

// runParallel stresses the concurrent client pipeline: n goroutines share
// one Client, each running write+read+delete cycles on its own key space,
// and the aggregate wall-clock throughput is printed. Run with -parallel 1
// first for a serial baseline. With metrics, the client's telemetry
// registry is on: per-op wall-latency quantiles are printed after the run
// and the full Prometheus exposition is dumped to stdout.
func runParallel(n, tasksPer, taskSize int, metrics bool) error {
	c, err := hcompress.New(hcompress.Config{EnableTelemetry: metrics})
	if err != nil {
		return err
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, taskSize, 3)

	var wg sync.WaitGroup
	errs := make([]error, n)
	begin := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < tasksPer; i++ {
				key := fmt.Sprintf("p%d-%d", g, i)
				if _, err := c.Compress(hcompress.Task{Key: key, Data: data}); err != nil {
					errs[g] = err
					return
				}
				if _, err := c.Decompress(key); err != nil {
					errs[g] = err
					return
				}
				if err := c.Delete(key); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(begin).Seconds()
	for g, err := range errs {
		if err != nil {
			return fmt.Errorf("goroutine %d: %w", g, err)
		}
	}
	ops := n * tasksPer
	bytes := float64(ops) * float64(taskSize)
	fmt.Printf("parallel=%d tasks/goroutine=%d tasksize=%d\n", n, tasksPer, taskSize)
	fmt.Printf("wall %.3fs  %.1f cycles/s  %.1f MB/s aggregate (write+read per cycle)\n",
		wall, float64(ops)/wall, bytes/wall/1e6)
	if metrics {
		snap := c.Snapshot()
		for _, op := range []string{"compress", "decompress", "delete"} {
			h, ok := snap.Histograms[fmt.Sprintf("hc_client_op_seconds{op=%q}", op)]
			if !ok || h.Count == 0 {
				continue
			}
			fmt.Printf("%-10s n=%-6d p50=%s p90=%s p99=%s\n",
				op, h.Count, fmtDur(h.P50), fmtDur(h.P90), fmtDur(h.P99))
		}
		fmt.Println("--- prometheus exposition ---")
		if err := c.WriteMetrics(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a latency quantile in seconds with readable units.
func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

func run(exp string, scale int, profile bool, seedOut string) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1")
	}
	var truth *seed.Seed
	hier := tier.Ares(64*tier.GB, 192*tier.GB, 2*tier.TB, 100*tier.TB)
	if profile {
		fmt.Println("profiling codecs (this measures every codec on every data class)...")
		s, err := seed.Generate(hier, seed.ProfileOptions{BufSize: 128 << 10})
		if err != nil {
			return err
		}
		truth = s
	} else {
		truth = seed.Builtin(hier)
	}
	if seedOut != "" {
		if err := truth.Save(seedOut); err != nil {
			return err
		}
		fmt.Printf("wrote truth seed to %s\n", seedOut)
	}

	type runner struct {
		name string
		fn   func() (experiments.Table, error)
	}
	runners := []runner{
		{"fig1", func() (experiments.Table, error) {
			o := experiments.PaperFig1(scale)
			o.Truth = truth
			return experiments.Fig1Motivation(o)
		}},
		{"fig3", func() (experiments.Table, error) {
			return experiments.Fig3Anatomy(experiments.PaperFig3())
		}},
		{"fig4a", func() (experiments.Table, error) {
			return experiments.Fig4aEngine(experiments.PaperFig4a())
		}},
		{"fig4b", func() (experiments.Table, error) {
			return experiments.Fig4bCCP(experiments.PaperFig4b())
		}},
		{"fig5", func() (experiments.Table, error) {
			o := experiments.PaperFig5(scale)
			o.Truth = truth
			return experiments.Fig5CompressionOnTiering(o)
		}},
		{"fig6", func() (experiments.Table, error) {
			o := experiments.PaperFig6(scale)
			o.Truth = truth
			return experiments.Fig6TieringOnCompression(o)
		}},
		{"fig7", func() (experiments.Table, error) {
			o := experiments.PaperFig7(scale)
			o.Truth = truth
			return experiments.Fig7VPIC(o)
		}},
		{"fig8", func() (experiments.Table, error) {
			o := experiments.PaperFig8(scale)
			o.Truth = truth
			return experiments.Fig8Workflow(o)
		}},
	}
	want := strings.ToLower(exp)
	found := false
	for _, r := range runners {
		if want != "all" && want != r.name {
			continue
		}
		found = true
		tb, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		tb.Fprint(os.Stdout)
	}
	if !found {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
