// Command hcbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md for the experiment index and paper-vs-measured
// record).
//
// Usage:
//
//	hcbench -exp fig5 -scale 64
//	hcbench -exp all -scale 64
//	hcbench -exp fig7 -scale 32 -profile    # measure codecs first
//	hcbench -parallel 8                     # concurrent-client throughput
//
// -scale divides the paper's rank counts, tier capacities, bandwidths and
// lane counts by the same factor, preserving per-rank behaviour; -scale 1
// replays the paper's exact parameters (slow). With -profile, the truth
// cost table is measured by running this build's codecs instead of using
// the calibrated builtin table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"hcompress"
	"hcompress/internal/experiments"
	"hcompress/internal/seed"
	"hcompress/internal/tier"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig3|fig4a|fig4b|fig5|fig6|fig7|fig8|all")
		scale    = flag.Int("scale", 64, "divide paper scale by this factor (1 = full scale)")
		profile  = flag.Bool("profile", false, "profile this build's codecs for the truth table (slower start)")
		seedOut  = flag.String("seed", "", "optional path to write the truth seed as JSON")
		parallel = flag.Int("parallel", 0, "instead of experiments: drive N goroutines through one client and print aggregate throughput")
		tasks    = flag.Int("tasks", 64, "with -parallel: operations per goroutine")
		taskSize = flag.Int("tasksize", 1<<20, "with -parallel/-n: bytes per task")
		cycles   = flag.Int("n", 0, "total operations through one client (implies the throughput harness; default -parallel 1)")
		batch    = flag.Int("batch", 1, "with the throughput harness: submit writes/reads in CompressBatch/DecompressBatch groups of this size (1 = per-op)")
		mix      = flag.Float64("mix", 1.0, "with the throughput harness: fraction of operations that are writes (1.0 = write-only, 0.7 = 70% writes / 30% reads)")
		demote   = flag.Duration("demote", 0, "with the throughput harness: background demotion interval (0 = off), e.g. 5ms")
		metrics  = flag.Bool("metrics", false, "with the throughput harness: enable telemetry and dump the Prometheus exposition at exit")
		slo      = flag.Bool("slo", false, "with the throughput harness or -service: full observability (tracing, slow-op log, SLO engine); prints per-stage latency attribution quantiles, the top slow ops, and (with -service) the /v1/slo burn rates")
		faults   = flag.Bool("faults", false, "instead of experiments: run the fault-tolerance availability gate (scripted tier outage; exits non-zero on any write failure)")
		shards   = flag.Int("shards", 1, "with the throughput harness: drive a key-routed router with this many shards instead of a single client")
		service  = flag.Bool("service", false, "instead of experiments: serve the router over loopback HTTP and drive the same mixed workload through the service API (honors -shards/-parallel/-tasks/-tasksize/-mix)")
		sweep    = flag.String("shardsweep", "", "instead of experiments: run the mixed workload at shard counts 1/2/4/8 and write the ops/s trajectory as JSON to this path ('-' for stdout)")
		zipf     = flag.Float64("zipf", 0, "with the throughput harness: pick read keys Zipf(s)-skewed over each goroutine's live window, hottest = most recent (0 = the old fixed middle key; try 0.99)")
		cache    = flag.Float64("cache", 0, "with the throughput harness: ReadCacheFraction — enable the decompressed-block read cache sized at this fraction of tier 0 (0 = off)")
		reads    = flag.String("readbench", "", "instead of experiments: run the zipfian hot-read benchmark (cache-on vs cache-off over an identical key sequence) and write the comparison as JSON to this path ('-' for stdout); honors -zipf and -cache")
		codecb   = flag.String("codecbench", "", "instead of experiments: measure per-codec compress/decompress MB/s and ratio over the standard corpus and append one trajectory point to this JSON path ('-' prints the run to stdout)")
		codecLbl = flag.String("codeclabel", "run", "with -codecbench: label recorded on the appended trajectory point")
		backends = flag.String("backend", "", "instead of experiments: measure TierBackend put/peek throughput for 'mem', 'file', or 'all' (file also times the cold recovered open) and append a point to -backendout")
		costswp  = flag.Bool("costsweep", false, "instead of experiments: sweep Priorities.Cost over a fast-expensive vs cloud-cheap hierarchy and record the per-tier byte placement in -backendout (combines with -backend)")
		bkOut    = flag.String("backendout", "BENCH_backends.json", "with -backend/-costsweep: trajectory JSON path ('-' prints the run to stdout)")
		bkLbl    = flag.String("backendlabel", "run", "with -backend/-costsweep: label recorded on the appended trajectory point")
	)
	flag.Parse()
	var err error
	switch {
	case *faults:
		err = runFaults()
	case *parallel < 0:
		err = fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	case *cycles < 0:
		err = fmt.Errorf("-n must be >= 1, got %d", *cycles)
	case *batch < 1:
		err = fmt.Errorf("-batch must be >= 1, got %d", *batch)
	case *mix < 0 || *mix > 1:
		err = fmt.Errorf("-mix must be in [0, 1], got %g", *mix)
	case *shards < 1:
		err = fmt.Errorf("-shards must be >= 1, got %d", *shards)
	case *zipf < 0:
		err = fmt.Errorf("-zipf must be >= 0, got %g", *zipf)
	case *cache < 0 || *cache > 1:
		err = fmt.Errorf("-cache must be in [0, 1], got %g", *cache)
	case *backends != "" && *backends != "mem" && *backends != "file" && *backends != "all":
		err = fmt.Errorf("-backend must be mem, file or all, got %q", *backends)
	case *backends != "" || *costswp:
		err = runBackendBench(*backends, *costswp, *bkOut, *bkLbl)
	case *codecb != "":
		err = runCodecBench(*codecb, *codecLbl)
	case *reads != "":
		err = runReadBench(*reads, *zipf, *cache)
	case *sweep != "":
		err = runShardSweep(*sweep, orDefault(*parallel, 8), orDefault(*tasks, 64), *taskSize, *batch, *mix)
	case *service:
		err = runService(*shards, orDefault(*parallel, 4), orDefault(*tasks, 64), *taskSize, *mix, *slo)
	case *parallel > 0 || *cycles > 0 || *shards > 1:
		p := *parallel
		if p == 0 {
			p = 1
		}
		tasksPer := *tasks
		if *cycles > 0 {
			tasksPer = (*cycles + p - 1) / p
		}
		err = runParallel(*shards, p, tasksPer, *taskSize, *batch, *mix, *zipf, *cache, *demote, *metrics, *slo)
	default:
		err = run(*exp, *scale, *profile, *seedOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

// runParallel stresses the concurrent data plane: n goroutines share one
// target — the single Client facade, or with shards > 1 a key-routed
// Router — each performing tasksPer operations on its own key space. mix
// selects the write fraction (reads replay previously written keys, with
// zipf > 0 skewing the replay toward recent keys); batch groups
// submissions through the CompressBatch/DecompressBatch APIs; demote
// turns on the background demoter at that interval; cacheFrac > 0 enables
// the decompressed-block read cache. Aggregate ops/s, MB/s and
// client-side latency quantiles are printed; with metrics, the full
// (shard-merged) Prometheus exposition is dumped to stdout as well.
func runParallel(shards, n, tasksPer, taskSize, batch int, mix, zipf, cacheFrac float64, demote time.Duration, metrics, slo bool) error {
	cfg := hcompress.Config{
		EnableTelemetry:   metrics || slo,
		DemotionInterval:  demote,
		ReadCacheFraction: cacheFrac,
	}
	if slo {
		// Full observability, as a production deployment would run it:
		// span trees emitted (and discarded), a latency threshold plus a
		// background sample feeding the slow-op ring.
		cfg.TraceWriter = io.Discard
		cfg.SlowOpThreshold = 50 * time.Millisecond
		cfg.SlowOpSampleEvery = 32
	}
	var c benchTarget
	if shards == 1 {
		cl, err := hcompress.New(cfg)
		if err != nil {
			return err
		}
		c = cl
	} else {
		r, err := hcompress.NewRouter(cfg, shards)
		if err != nil {
			return err
		}
		c = r
	}
	defer c.Close()

	res, err := driveMixed(c, n, tasksPer, taskSize, batch, mix, zipf)
	if err != nil {
		return err
	}
	fmt.Printf("shards=%d parallel=%d ops/goroutine=%d tasksize=%d batch=%d mix=%.2f zipf=%g cache=%g demote=%s\n",
		shards, n, tasksPer, taskSize, batch, mix, zipf, cacheFrac, demote)
	fmt.Printf("wall %.3fs  %.1f ops/s  %.1f MB/s aggregate (%d writes, %d reads)\n",
		res.wall, res.opsPerSec(), res.mbPerSec(taskSize), res.writeOps, res.readOps)
	printQuantiles("write", batch, res.writeLats)
	printQuantiles("read", batch, res.readLats)
	if cacheFrac > 0 {
		printCacheStats(c.CacheStats())
	}
	if slo {
		printStageAttribution(c.Snapshot())
		printTopSlowOps(c.SlowOps(), 10)
	}
	if metrics {
		fmt.Println("--- prometheus exposition ---")
		if err := c.WriteMetrics(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printStageAttribution renders every hc_stage_seconds series from the
// snapshot — where the run's latency went, stage by stage (analyze/plan/
// queue in wall seconds, codec/io/retry in virtual seconds).
func printStageAttribution(snap hcompress.MetricsSnapshot) {
	var names []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "hc_stage_seconds{") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("--- per-stage latency attribution ---")
	fmt.Printf("%-44s %9s %11s %11s %11s %11s\n", "series", "n", "sum ms", "p50 ms", "p90 ms", "p99 ms")
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Printf("%-44s %9d %11.3f %11.4f %11.4f %11.4f\n",
			strings.TrimPrefix(name, "hc_stage_seconds"), h.Count, h.Sum*1e3, h.P50*1e3, h.P90*1e3, h.P99*1e3)
	}
}

// printTopSlowOps prints the worst n entries of the drained slow-op log
// with their stage breakdowns.
func printTopSlowOps(ops []hcompress.SlowOpRecord, n int) {
	if len(ops) == 0 {
		return
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].WallSeconds > ops[j].WallSeconds })
	if len(ops) > n {
		ops = ops[:n]
	}
	fmt.Printf("--- top %d slow ops (wall / analyze / plan / codec / io / retry, ms) ---\n", len(ops))
	for _, op := range ops {
		fmt.Printf("%-10s %-20s %8.3f / %.3f / %.3f / %.3f / %.3f / %.3f  trace=%s tenant=%s\n",
			op.Op, op.Key, op.WallSeconds*1e3, op.AnalyzeSeconds*1e3, op.PlanSeconds*1e3,
			op.CodecSeconds*1e3, op.IOSeconds*1e3, op.RetrySeconds*1e3, op.Trace, op.Tenant)
	}
}

// printQuantiles merges per-goroutine submission latencies and prints
// p50/p90/p99. With batch > 1 each sample covers one batch call.
func printQuantiles(name string, batch int, perG [][]time.Duration) {
	var all []time.Duration
	for _, l := range perG {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	unit := "op"
	if batch > 1 {
		unit = fmt.Sprintf("batch of %d", batch)
	}
	fmt.Printf("%-6s n=%-7d p50=%-10s p90=%-10s p99=%-10s (per %s)\n",
		name, len(all), q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), unit)
}

func run(exp string, scale int, profile bool, seedOut string) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1")
	}
	var truth *seed.Seed
	hier := tier.Ares(64*tier.GB, 192*tier.GB, 2*tier.TB, 100*tier.TB)
	if profile {
		fmt.Println("profiling codecs (this measures every codec on every data class)...")
		s, err := seed.Generate(hier, seed.ProfileOptions{BufSize: 128 << 10})
		if err != nil {
			return err
		}
		truth = s
	} else {
		truth = seed.Builtin(hier)
	}
	if seedOut != "" {
		if err := truth.Save(seedOut); err != nil {
			return err
		}
		fmt.Printf("wrote truth seed to %s\n", seedOut)
	}

	type runner struct {
		name string
		fn   func() (experiments.Table, error)
	}
	runners := []runner{
		{"fig1", func() (experiments.Table, error) {
			o := experiments.PaperFig1(scale)
			o.Truth = truth
			return experiments.Fig1Motivation(o)
		}},
		{"fig3", func() (experiments.Table, error) {
			return experiments.Fig3Anatomy(experiments.PaperFig3())
		}},
		{"fig4a", func() (experiments.Table, error) {
			return experiments.Fig4aEngine(experiments.PaperFig4a())
		}},
		{"fig4b", func() (experiments.Table, error) {
			return experiments.Fig4bCCP(experiments.PaperFig4b())
		}},
		{"fig5", func() (experiments.Table, error) {
			o := experiments.PaperFig5(scale)
			o.Truth = truth
			return experiments.Fig5CompressionOnTiering(o)
		}},
		{"fig6", func() (experiments.Table, error) {
			o := experiments.PaperFig6(scale)
			o.Truth = truth
			return experiments.Fig6TieringOnCompression(o)
		}},
		{"fig7", func() (experiments.Table, error) {
			o := experiments.PaperFig7(scale)
			o.Truth = truth
			return experiments.Fig7VPIC(o)
		}},
		{"fig8", func() (experiments.Table, error) {
			o := experiments.PaperFig8(scale)
			o.Truth = truth
			return experiments.Fig8Workflow(o)
		}},
	}
	want := strings.ToLower(exp)
	found := false
	for _, r := range runners {
		if want != "all" && want != r.name {
			continue
		}
		found = true
		tb, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		tb.Fprint(os.Stdout)
	}
	if !found {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
