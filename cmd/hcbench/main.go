// Command hcbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md for the experiment index and paper-vs-measured
// record).
//
// Usage:
//
//	hcbench -exp fig5 -scale 64
//	hcbench -exp all -scale 64
//	hcbench -exp fig7 -scale 32 -profile    # measure codecs first
//
// -scale divides the paper's rank counts, tier capacities, bandwidths and
// lane counts by the same factor, preserving per-rank behaviour; -scale 1
// replays the paper's exact parameters (slow). With -profile, the truth
// cost table is measured by running this build's codecs instead of using
// the calibrated builtin table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hcompress/internal/experiments"
	"hcompress/internal/seed"
	"hcompress/internal/tier"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig1|fig3|fig4a|fig4b|fig5|fig6|fig7|fig8|all")
		scale   = flag.Int("scale", 64, "divide paper scale by this factor (1 = full scale)")
		profile = flag.Bool("profile", false, "profile this build's codecs for the truth table (slower start)")
		seedOut = flag.String("seed", "", "optional path to write the truth seed as JSON")
	)
	flag.Parse()
	if err := run(*exp, *scale, *profile, *seedOut); err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale int, profile bool, seedOut string) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1")
	}
	var truth *seed.Seed
	hier := tier.Ares(64*tier.GB, 192*tier.GB, 2*tier.TB, 100*tier.TB)
	if profile {
		fmt.Println("profiling codecs (this measures every codec on every data class)...")
		s, err := seed.Generate(hier, seed.ProfileOptions{BufSize: 128 << 10})
		if err != nil {
			return err
		}
		truth = s
	} else {
		truth = seed.Builtin(hier)
	}
	if seedOut != "" {
		if err := truth.Save(seedOut); err != nil {
			return err
		}
		fmt.Printf("wrote truth seed to %s\n", seedOut)
	}

	type runner struct {
		name string
		fn   func() (experiments.Table, error)
	}
	runners := []runner{
		{"fig1", func() (experiments.Table, error) {
			o := experiments.PaperFig1(scale)
			o.Truth = truth
			return experiments.Fig1Motivation(o)
		}},
		{"fig3", func() (experiments.Table, error) {
			return experiments.Fig3Anatomy(experiments.PaperFig3())
		}},
		{"fig4a", func() (experiments.Table, error) {
			return experiments.Fig4aEngine(experiments.PaperFig4a())
		}},
		{"fig4b", func() (experiments.Table, error) {
			return experiments.Fig4bCCP(experiments.PaperFig4b())
		}},
		{"fig5", func() (experiments.Table, error) {
			o := experiments.PaperFig5(scale)
			o.Truth = truth
			return experiments.Fig5CompressionOnTiering(o)
		}},
		{"fig6", func() (experiments.Table, error) {
			o := experiments.PaperFig6(scale)
			o.Truth = truth
			return experiments.Fig6TieringOnCompression(o)
		}},
		{"fig7", func() (experiments.Table, error) {
			o := experiments.PaperFig7(scale)
			o.Truth = truth
			return experiments.Fig7VPIC(o)
		}},
		{"fig8", func() (experiments.Table, error) {
			o := experiments.PaperFig8(scale)
			o.Truth = truth
			return experiments.Fig8Workflow(o)
		}},
	}
	want := strings.ToLower(exp)
	found := false
	for _, r := range runners {
		if want != "all" && want != r.name {
			continue
		}
		found = true
		tb, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		tb.Fprint(os.Stdout)
	}
	if !found {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
