package main

// hcbench -codecbench: the per-codec raw-speed harness behind
// BENCH_codecs.json. It measures compress and decompress MB/s plus ratio
// for every registered codec over the standard four-class corpus (text,
// floats, incompressible, runs) and appends the result as one trajectory
// point, so successive PRs accumulate a per-codec MB/s history in the
// same file.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"hcompress/internal/codec"
	"hcompress/internal/stats"
)

const (
	codecBenchBufSize = 256 << 10
	codecBenchRepeats = 3
)

// codecBenchCorpus builds the standard corpus. Text, floats and
// incompressible come from the profiler's generator; runs is the
// RLE/MTF-friendly class the generator lacks.
func codecBenchCorpus() map[string][]byte {
	runs := make([]byte, 0, codecBenchBufSize)
	v, n := byte(0), 0
	for len(runs) < codecBenchBufSize {
		// Deterministic run lengths 1..512 without an RNG dependency.
		n = (n*131 + 17) % 512
		for k := 0; k <= n%512; k++ {
			runs = append(runs, v)
		}
		v = (v*7 + 13) % 17
	}
	return map[string][]byte{
		"text":           stats.GenBuffer(stats.TypeText, stats.Gamma, codecBenchBufSize, 1),
		"floats":         stats.GenBuffer(stats.TypeFloat, stats.Normal, codecBenchBufSize, 2),
		"incompressible": stats.GenBuffer(stats.TypeBinary, stats.Uniform, codecBenchBufSize, 3),
		"runs":           runs[:codecBenchBufSize],
	}
}

type codecBenchResult struct {
	CompressMBps   float64 `json:"compress_mbps"`
	DecompressMBps float64 `json:"decompress_mbps"`
	Ratio          float64 `json:"ratio"`
}

type codecBenchRun struct {
	Label      string                      `json:"label"`
	Date       string                      `json:"date"`
	GoMaxProcs int                         `json:"gomaxprocs"`
	BufBytes   int                         `json:"buf_bytes_per_class"`
	Repeats    int                         `json:"repeats"`
	Results    map[string]codecBenchResult `json:"results"`
}

type codecBenchFile struct {
	Comment string          `json:"comment"`
	Runs    []codecBenchRun `json:"runs"`
}

// runCodecBench measures every codec and writes (or appends to) the
// trajectory file at path; "-" prints the single run to stdout.
func runCodecBench(path, label string) error {
	corpus := codecBenchCorpus()
	var names []string
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)

	run := codecBenchRun{
		Label:      label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		BufBytes:   codecBenchBufSize,
		Repeats:    codecBenchRepeats,
		Results:    map[string]codecBenchResult{},
	}

	fmt.Printf("%-8s %14s %16s %7s\n", "codec", "compress MB/s", "decompress MB/s", "ratio")
	for _, c := range codec.All() {
		if c.ID() == codec.None {
			continue
		}
		var compTotal, decTotal float64 // seconds, best-of per class, summed
		var inBytes, compBytes int
		var comp, dec []byte
		for _, name := range names {
			in := corpus[name]
			inBytes += len(in)
			best := 0.0
			for r := 0; r < codecBenchRepeats; r++ {
				start := time.Now()
				var err error
				comp, err = c.Compress(comp[:0], in)
				if err != nil {
					return fmt.Errorf("codecbench: %s/%s compress: %w", c.Name(), name, err)
				}
				if el := time.Since(start).Seconds(); r == 0 || el < best {
					best = el
				}
			}
			compTotal += best
			compBytes += len(comp)

			best = 0.0
			for r := 0; r < codecBenchRepeats; r++ {
				start := time.Now()
				var err error
				dec, err = c.Decompress(dec[:0], comp, len(in))
				if err != nil {
					return fmt.Errorf("codecbench: %s/%s decompress: %w", c.Name(), name, err)
				}
				if el := time.Since(start).Seconds(); r == 0 || el < best {
					best = el
				}
			}
			decTotal += best
		}
		mb := float64(inBytes) / (1 << 20)
		res := codecBenchResult{
			CompressMBps:   mb / max(compTotal, 1e-9),
			DecompressMBps: mb / max(decTotal, 1e-9),
			Ratio:          float64(inBytes) / float64(compBytes),
		}
		run.Results[c.Name()] = res
		fmt.Printf("%-8s %14.1f %16.1f %7.2f\n", c.Name(), res.CompressMBps, res.DecompressMBps, res.Ratio)
	}

	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(run)
	}
	file := codecBenchFile{
		Comment: "hcbench -codecbench: per-codec compress/decompress MB/s and ratio over the standard corpus (text, floats, incompressible, runs; best-of-" +
			fmt.Sprint(codecBenchRepeats) + " per class); each run is one trajectory point",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("codecbench: existing %s is not a trajectory file: %w", path, err)
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended trajectory point %q to %s (%d runs)\n", label, path, len(file.Runs))
	return nil
}
