package main

// hcbench -backend / -costsweep: the storage-backend harness behind
// BENCH_backends.json. -backend measures raw Put/Peek throughput of the
// in-memory and file-backed TierBackends (and for the file backend the
// cold recovered-open time), so the durable-write overhead has a
// recorded trajectory; -costsweep drives the public API across a
// fast-expensive → cloud-cheap hierarchy at increasing Priorities.Cost
// weights and records where the bytes land.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hcompress"
	"hcompress/internal/stats"
	"hcompress/internal/store/backend"
	"hcompress/internal/store/durable"
)

const (
	backendBenchPayload = 256 << 10
	backendBenchOps     = 128
)

type backendBenchResult struct {
	PutMBps  float64 `json:"put_mbps"`
	PeekMBps float64 `json:"peek_mbps"`
	// DurableWriteOverheadX is mem put MB/s over this backend's put MB/s
	// (1.0 for mem itself).
	DurableWriteOverheadX float64 `json:"durable_write_overhead_x,omitempty"`
	// RecoveredOpenMs is the cold Open time over the journals the bench
	// wrote; RecoveredEntries what came back. File backend only.
	RecoveredOpenMs  float64 `json:"recovered_open_ms,omitempty"`
	RecoveredEntries int     `json:"recovered_entries,omitempty"`
}

type costSweepPoint struct {
	CostWeight float64          `json:"cost_weight"`
	TierBytes  map[string]int64 `json:"tier_bytes"`
}

type backendBenchRun struct {
	Label     string                        `json:"label"`
	Date      string                        `json:"date"`
	PayloadB  int                           `json:"payload_bytes,omitempty"`
	Ops       int                           `json:"ops,omitempty"`
	Backends  map[string]backendBenchResult `json:"backends,omitempty"`
	CostSweep []costSweepPoint              `json:"costsweep,omitempty"`
}

type backendBenchFile struct {
	Comment string            `json:"comment"`
	Runs    []backendBenchRun `json:"runs"`
}

// benchOneBackend measures sequential Put then Peek throughput over ops
// payloads of payload bytes each.
func benchOneBackend(b backend.TierBackend) (putMBps, peekMBps float64, err error) {
	if err = b.Open(); err != nil {
		return 0, 0, err
	}
	payload := stats.GenBuffer(stats.TypeBinary, stats.Uniform, backendBenchPayload, 7)
	handles := make([]backend.Handle, backendBenchOps)
	start := time.Now()
	for i := range handles {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		h, perr := b.Put(float64(i), fmt.Sprintf("bench-%04d", i), backend.NewRef(cp, nil))
		if perr != nil {
			return 0, 0, perr
		}
		handles[i] = h
	}
	putSecs := time.Since(start).Seconds()
	start = time.Now()
	for i, h := range handles {
		r, perr := b.Peek(float64(i), h)
		if perr != nil {
			return 0, 0, perr
		}
		r.Release()
	}
	peekSecs := time.Since(start).Seconds()
	mb := float64(backendBenchOps*backendBenchPayload) / (1 << 20)
	return mb / max(putSecs, 1e-9), mb / max(peekSecs, 1e-9), nil
}

// runBackendBench measures the selected backends (sel: "mem", "file" or
// "all") and/or the cost sweep, appending one trajectory point to path
// ("-" prints it to stdout).
func runBackendBench(sel string, costsweep bool, path, label string) error {
	run := backendBenchRun{
		Label: label,
		Date:  time.Now().UTC().Format("2006-01-02"),
	}

	if sel != "" {
		run.PayloadB = backendBenchPayload
		run.Ops = backendBenchOps
		run.Backends = map[string]backendBenchResult{}
		var memPut float64
		if sel == "mem" || sel == "all" {
			m := backend.NewMem()
			put, peek, err := benchOneBackend(m)
			if err != nil {
				return fmt.Errorf("backend bench mem: %w", err)
			}
			m.Close()
			memPut = put
			run.Backends["mem"] = backendBenchResult{PutMBps: put, PeekMBps: peek, DurableWriteOverheadX: 1}
		}
		if sel == "file" || sel == "all" {
			dir, err := os.MkdirTemp("", "hcbench-backend-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			d := durable.New(dir, durable.Options{})
			put, peek, err := benchOneBackend(d)
			if err != nil {
				return fmt.Errorf("backend bench file: %w", err)
			}
			if err := d.Close(); err != nil {
				return err
			}
			res := backendBenchResult{PutMBps: put, PeekMBps: peek}
			if memPut > 0 {
				res.DurableWriteOverheadX = memPut / max(put, 1e-9)
			}
			// Cold reopen over everything the bench journaled.
			start := time.Now()
			d2 := durable.New(dir, durable.Options{})
			if err := d2.Open(); err != nil {
				return fmt.Errorf("backend bench recovered open: %w", err)
			}
			res.RecoveredOpenMs = time.Since(start).Seconds() * 1e3
			res.RecoveredEntries = len(d2.Recovered())
			d2.Close()
			run.Backends["file"] = res
		}
		names := make([]string, 0, len(run.Backends))
		for n := range run.Backends {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%-6s %12s %12s %10s %16s\n", "kind", "put MB/s", "peek MB/s", "write ovh", "recovered open")
		for _, n := range names {
			r := run.Backends[n]
			extra := "-"
			if r.RecoveredEntries > 0 {
				extra = fmt.Sprintf("%.1fms/%d keys", r.RecoveredOpenMs, r.RecoveredEntries)
			}
			fmt.Printf("%-6s %12.1f %12.1f %9.2fx %16s\n", n, r.PutMBps, r.PeekMBps, r.DurableWriteOverheadX, extra)
		}
	}

	if costsweep {
		points, err := runCostSweep()
		if err != nil {
			return err
		}
		run.CostSweep = points
	}

	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(run)
	}
	file := backendBenchFile{
		Comment: "hcbench -backend/-costsweep: TierBackend put/peek MB/s (mem vs durable file journal, cold recovered-open time) and the Priorities.Cost sweep's per-tier byte placement; each run is one trajectory point",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("backend bench: existing %s is not a trajectory file: %w", path, err)
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended trajectory point %q to %s (%d runs)\n", label, path, len(file.Runs))
	return nil
}

// runCostSweep compresses an identical workload at increasing cost
// weights and reports the per-tier byte distribution at each weight.
// The objective always keeps the raw I/O time of a placement, so a
// dollar gap only decides between tiers whose service times are close:
// the hierarchy models two NVMe service classes — provisioned-IOPS at
// $1.00/GB-month over general-purpose at $0.08 with a ~10% service-time
// penalty — above a cloud object floor, and the workload is
// incompressible so codec choice cannot absorb the price difference.
func runCostSweep() ([]costSweepPoint, error) {
	weights := []float64{0, 0.25, 0.5, 0.75, 1.0}
	var points []costSweepPoint
	fmt.Printf("%-12s %s\n", "cost weight", "bytes per tier")
	for _, w := range weights {
		tiers := []hcompress.TierSpec{
			{Name: "io-ssd", CapacityBytes: 8 << 30, LatencySec: 1e-4, BandwidthBps: 2e9, Lanes: 8,
				CostPerGBMonth: 1.00},
			{Name: "gp-ssd", CapacityBytes: 32 << 30, LatencySec: 1.5e-4, BandwidthBps: 1.8e9, Lanes: 8,
				CostPerGBMonth: 0.08},
			hcompress.CloudTierSpec(1 << 40),
		}
		rest := (1 - w) / 3
		c, err := hcompress.New(hcompress.Config{
			Tiers:      tiers,
			Priorities: hcompress.Priorities{CompressionSpeed: rest, DecompressionSpeed: rest, Ratio: rest, Cost: w},
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 16; i++ {
			data := stats.GenBuffer(stats.TypeBinary, stats.Uniform, 4<<20, int64(i+1))
			if _, err := c.Compress(hcompress.Task{Key: fmt.Sprintf("sweep-%03d", i), Data: data}); err != nil {
				c.Close()
				return nil, err
			}
		}
		point := costSweepPoint{CostWeight: w, TierBytes: map[string]int64{}}
		var line string
		for _, st := range c.Status() {
			point.TierBytes[st.Name] = st.UsedBytes
			line += fmt.Sprintf("  %s=%d", st.Name, st.UsedBytes)
		}
		points = append(points, point)
		fmt.Printf("%-12.2f%s\n", w, line)
		if err := c.Close(); err != nil {
			return nil, err
		}
	}
	return points, nil
}
