package main

import (
	"bytes"
	"fmt"

	"hcompress"
	"hcompress/internal/stats"
)

// runFaults is the fault-tolerance availability gate: a scripted
// single-tier outage on the virtual timeline during which every write
// must still succeed (spilled or degraded, never failed), followed by a
// recovery phase in which the dead tier must be probed, healed, and
// placed onto again, and a full read-back in which every payload must
// verify. Any violation returns an error (non-zero exit) so CI can gate
// on it. The scenario is deterministic: faults, probes, and backoff all
// live on the virtual clock, which the harness steps explicitly.
func runFaults() error {
	const (
		outageStart = 1.0
		outageEnd   = 5.0
		perPhase    = 8
		taskSize    = 1 << 20
	)
	// A scarce RAM tier ahead of NVMe: tasks of taskSize cannot fit on
	// RAM even compressed, so healthy placement exercises NVMe — the
	// tier the script kills — and recovery is observable as NVMe reuse.
	c, err := hcompress.New(hcompress.Config{
		Tiers: []hcompress.TierSpec{
			{Name: "ram", CapacityBytes: 64 << 10, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
			{Name: "nvme", CapacityBytes: 1 << 30, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2},
			{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4},
		},
		EnableTelemetry: true,
		FaultInjector: &hcompress.FaultInjector{Windows: []hcompress.FaultWindow{
			{Tier: "nvme", StartSec: outageStart, EndSec: outageEnd, Mode: hcompress.FaultOutage},
		}},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, taskSize, 7)

	var keys []string
	degraded := 0
	write := func(phase string, i int) (*hcompress.Report, error) {
		key := fmt.Sprintf("%s-%d", phase, i)
		rep, err := c.Compress(hcompress.Task{Key: key, Data: data})
		if err != nil {
			return nil, fmt.Errorf("phase %s write %d failed: %w", phase, i, err)
		}
		if rep.Degraded != nil {
			degraded++
		}
		keys = append(keys, key)
		return rep, nil
	}
	usedTier := func(rep *hcompress.Report, name string) bool {
		for _, st := range rep.SubTasks {
			if st.Tier == name {
				return true
			}
		}
		return false
	}

	// Phase A: healthy baseline. NVMe must carry sub-tasks.
	sawNVMe := false
	for i := 0; i < perPhase; i++ {
		rep, err := write("healthy", i)
		if err != nil {
			return err
		}
		sawNVMe = sawNVMe || usedTier(rep, "nvme")
	}
	if !sawNVMe {
		return fmt.Errorf("healthy phase never placed on nvme; the outage would be vacuous")
	}

	// Phase B: step into the outage. 100%% write availability is the
	// gate: spills and degraded writes are fine, errors are not. Once
	// the health machine reacts, plans must stop naming the dead tier.
	c.Advance(outageStart + 1)
	for i := 0; i < perPhase; i++ {
		rep, err := write("outage", i)
		if err != nil {
			return fmt.Errorf("availability violated: %w", err)
		}
		if usedTier(rep, "nvme") {
			return fmt.Errorf("outage write %d placed a sub-task on the dead tier", i)
		}
	}
	offline := false
	for _, h := range c.Health() {
		if h.Name == "nvme" && h.State == "offline" {
			offline = true
		}
	}
	if !offline {
		return fmt.Errorf("health machine never took nvme offline: %+v", c.Health())
	}

	// Phase C: step past the outage and the recovery probe. The probe
	// must heal the tier and placement must reuse it.
	c.Advance(outageEnd + 5)
	sawNVMe = false
	for i := 0; i < perPhase; i++ {
		rep, err := write("recovered", i)
		if err != nil {
			return err
		}
		sawNVMe = sawNVMe || usedTier(rep, "nvme")
	}
	if !sawNVMe {
		return fmt.Errorf("recovered nvme never reused by placement")
	}
	for _, h := range c.Health() {
		if h.Name == "nvme" && h.State != "healthy" {
			return fmt.Errorf("nvme not healed after recovery: %+v", h)
		}
	}

	// Read-back: every payload written in any phase must verify (the
	// sub-task CRC gate runs on every read).
	for _, key := range keys {
		rep, err := c.Decompress(key)
		if err != nil {
			return fmt.Errorf("read-back %q: %w", key, err)
		}
		ok := bytes.Equal(rep.Data, data)
		rep.Release()
		if !ok {
			return fmt.Errorf("read-back %q: payload mismatch", key)
		}
	}

	snap := c.Snapshot()
	fmt.Printf("faults gate: %d writes (%d healthy / %d outage / %d recovered), 0 failures, %d degraded\n",
		len(keys), perPhase, perPhase, perPhase, degraded)
	fmt.Printf("retries=%d degraded_writes=%d replans=%d tier_health{nvme}=%v\n",
		snap.Counters["hc_retries_total"], snap.Counters["hc_degraded_writes_total"],
		snap.Counters["hc_client_replans_total"], snap.Gauges[`hc_tier_health{tier="nvme"}`])
	transitions := 0
	for _, ev := range c.FaultEvents() {
		if ev.Tier == "nvme" {
			transitions++
			fmt.Printf("event: nvme %s -> %s at v=%.3fs (streak %d)\n", ev.From, ev.To, ev.VTime, ev.Streak)
		}
	}
	if transitions < 3 {
		return fmt.Errorf("expected at least degraded/offline/healthy transitions, saw %d", transitions)
	}
	fmt.Println("faults gate: PASS")
	return nil
}
